/**
 * @file
 * Integration tests for the end-to-end validation flow (Figure 1):
 * generation -> instrumentation -> execution -> signature collection
 * -> decoding -> collective + conventional checking, plus all the
 * metric plumbing the benches rely on.
 */

#include <gtest/gtest.h>

#include "harness/validation_flow.h"
#include "sim/executor.h"
#include "testgen/generator.h"
#include "testgen/litmus.h"

namespace mtc
{
namespace
{

TEST(ValidationFlow, CleanPlatformEndToEnd)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-64"), 42);

    FlowConfig cfg;
    cfg.iterations = 512;
    cfg.exec = bareMetalConfig(Isa::X86);
    cfg.seed = 7;
    ValidationFlow flow(cfg);
    const FlowResult result = flow.runTest(program);

    EXPECT_EQ(result.iterationsRun, 512u);
    EXPECT_GE(result.uniqueSignatures, 1u);
    EXPECT_LE(result.uniqueSignatures, 512u);
    EXPECT_FALSE(result.anyViolation());
    EXPECT_EQ(result.collective.graphsChecked,
              result.uniqueSignatures);
    EXPECT_EQ(result.conventional.graphsChecked,
              result.uniqueSignatures);
    EXPECT_TRUE(result.violationWitness.empty());

    // Metric plumbing.
    EXPECT_GT(result.originalCycles, 0u);
    EXPECT_GT(result.computeCycles, 0u);
    EXPECT_GT(result.code.originalBytes, 0u);
    EXPECT_GT(result.code.ratio(), 1.0);
    EXPECT_GT(result.intrusive.signatureBytes, 0u);
    EXPECT_GT(result.collectiveMs, 0.0);
    EXPECT_GT(result.conventionalMs, 0.0);
}

TEST(ValidationFlow, UniformPlatformDiversifies)
{
    // The uniform SC reference produces many interleavings even for
    // small iteration counts.
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-50-32"), 1);
    FlowConfig cfg;
    cfg.iterations = 128;
    cfg.exec = scReferenceConfig();
    cfg.exec.exportCoherenceOrder = false;
    ValidationFlow flow(cfg);
    const FlowResult result = flow.runTest(program);
    EXPECT_GT(result.uniqueSignatures, 32u);
    EXPECT_FALSE(result.anyViolation());
}

TEST(ValidationFlow, KeepExecutionsReturnsDecodedSet)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-2-100-32"), 2);
    FlowConfig cfg;
    cfg.iterations = 256;
    cfg.exec = bareMetalConfig(Isa::X86);
    cfg.keepExecutions = true;
    ValidationFlow flow(cfg);
    const FlowResult result = flow.runTest(program);
    EXPECT_EQ(result.executions.size(), result.uniqueSignatures);
    for (const Execution &execution : result.executions)
        EXPECT_EQ(execution.loadValues.size(), program.loads().size());
}

TEST(ValidationFlow, ViolationProducesWitness)
{
    const TestProgram program = generateTest(
        parseConfigName("x86-7-100-32 (16 words/line)"), 3);
    FlowConfig cfg;
    cfg.iterations = 96;
    cfg.exec = bareMetalConfig(Isa::X86);
    cfg.exec.bug = BugKind::LsqNoSquash;
    cfg.exec.bugProbability = 0.5;
    ValidationFlow flow(cfg);
    const FlowResult result = flow.runTest(program);
    ASSERT_TRUE(result.anyViolation());
    EXPECT_FALSE(result.violationWitness.empty());
}

TEST(ValidationFlow, LitmusProgramsSupported)
{
    // The flow works on tiny hand-written programs, not only on
    // generated ones.
    FlowConfig cfg;
    cfg.iterations = 200;
    cfg.exec = bareMetalConfig(Isa::ARMv7);
    ValidationFlow flow(cfg);
    const FlowResult result = flow.runTest(litmus::messagePassing());
    EXPECT_FALSE(result.anyViolation());
    EXPECT_GE(result.uniqueSignatures, 1u);
}

TEST(ValidationFlow, SkippingConventionalSkipsItsCosts)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-2-50-32"), 4);
    FlowConfig cfg;
    cfg.iterations = 128;
    cfg.exec = bareMetalConfig(Isa::X86);
    cfg.runConventional = false;
    ValidationFlow flow(cfg);
    const FlowResult result = flow.runTest(program);
    EXPECT_EQ(result.conventional.graphsChecked, 0u);
    EXPECT_EQ(result.conventionalMs, 0.0);
    EXPECT_GT(result.collective.graphsChecked, 0u);
}

TEST(ValidationFlow, DeterministicAcrossRuns)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-2-100-64"), 5);
    FlowConfig cfg;
    cfg.iterations = 200;
    cfg.exec = bareMetalConfig(Isa::ARMv7);
    cfg.seed = 99;
    FlowResult a = ValidationFlow(cfg).runTest(program);
    FlowResult b = ValidationFlow(cfg).runTest(program);
    EXPECT_EQ(a.uniqueSignatures, b.uniqueSignatures);
    EXPECT_EQ(a.violatingSignatures, b.violatingSignatures);
    EXPECT_EQ(a.originalCycles, b.originalCycles);
}

} // anonymous namespace
} // namespace mtc
