/**
 * @file
 * Unit tests for memory-model definitions: the exact ordering
 * matrices of SC / TSO / RMO, fence semantics, ISA defaults, and
 * name parsing.
 */

#include <gtest/gtest.h>

#include "mcm/isa.h"
#include "mcm/memory_model.h"
#include "support/error.h"

namespace mtc
{
namespace
{

TEST(MemoryModel, ScOrdersEverything)
{
    for (OpKind a : {OpKind::Load, OpKind::Store, OpKind::Fence})
        for (OpKind b : {OpKind::Load, OpKind::Store, OpKind::Fence})
            EXPECT_TRUE(programOrderRequired(MemoryModel::SC, a, b));
}

TEST(MemoryModel, TsoRelaxesOnlyStoreLoad)
{
    using enum OpKind;
    EXPECT_TRUE(programOrderRequired(MemoryModel::TSO, Load, Load));
    EXPECT_TRUE(programOrderRequired(MemoryModel::TSO, Load, Store));
    EXPECT_TRUE(programOrderRequired(MemoryModel::TSO, Store, Store));
    EXPECT_FALSE(programOrderRequired(MemoryModel::TSO, Store, Load));
}

TEST(MemoryModel, RmoRelaxesAllNonFence)
{
    using enum OpKind;
    EXPECT_FALSE(programOrderRequired(MemoryModel::RMO, Load, Load));
    EXPECT_FALSE(programOrderRequired(MemoryModel::RMO, Load, Store));
    EXPECT_FALSE(programOrderRequired(MemoryModel::RMO, Store, Store));
    EXPECT_FALSE(programOrderRequired(MemoryModel::RMO, Store, Load));
}

TEST(MemoryModel, FencesOrderInEveryModel)
{
    for (MemoryModel m :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        for (OpKind k : {OpKind::Load, OpKind::Store, OpKind::Fence}) {
            EXPECT_TRUE(programOrderRequired(m, OpKind::Fence, k));
            EXPECT_TRUE(programOrderRequired(m, k, OpKind::Fence));
        }
    }
}

TEST(MemoryModel, SameAddressCoherenceRules)
{
    using enum OpKind;
    for (MemoryModel m :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        EXPECT_TRUE(sameAddressOrderRequired(m, Store, Store))
            << modelName(m);
        EXPECT_TRUE(sameAddressOrderRequired(m, Load, Store))
            << modelName(m);
        EXPECT_TRUE(sameAddressOrderRequired(m, Load, Load))
            << modelName(m);
    }
    // st->ld same-address is deliberately excluded (store forwarding,
    // paper footnote 4) in the relaxed models; SC keeps it through the
    // plain program-order matrix.
    EXPECT_FALSE(
        sameAddressOrderRequired(MemoryModel::TSO, Store, Load));
    EXPECT_FALSE(
        sameAddressOrderRequired(MemoryModel::RMO, Store, Load));
    EXPECT_TRUE(sameAddressOrderRequired(MemoryModel::SC, Store, Load));
}

TEST(MemoryModel, SameAddressImpliesProgramOrderSuperset)
{
    // Everything required across addresses must also hold at the same
    // address.
    using enum OpKind;
    for (MemoryModel m :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        for (OpKind a : {Load, Store}) {
            for (OpKind b : {Load, Store}) {
                if (programOrderRequired(m, a, b)) {
                    EXPECT_TRUE(sameAddressOrderRequired(m, a, b));
                }
            }
        }
    }
}

TEST(MemoryModel, WeaknessOrder)
{
    EXPECT_TRUE(atLeastAsWeak(MemoryModel::RMO, MemoryModel::TSO));
    EXPECT_TRUE(atLeastAsWeak(MemoryModel::RMO, MemoryModel::SC));
    EXPECT_TRUE(atLeastAsWeak(MemoryModel::TSO, MemoryModel::SC));
    EXPECT_TRUE(atLeastAsWeak(MemoryModel::TSO, MemoryModel::TSO));
    EXPECT_FALSE(atLeastAsWeak(MemoryModel::SC, MemoryModel::TSO));
    EXPECT_FALSE(atLeastAsWeak(MemoryModel::TSO, MemoryModel::RMO));
}

TEST(MemoryModel, NamesRoundTrip)
{
    for (MemoryModel m :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        EXPECT_EQ(parseModel(modelName(m)), m);
    }
    EXPECT_EQ(parseModel("weak"), MemoryModel::RMO);
    EXPECT_EQ(parseModel("tso"), MemoryModel::TSO);
    EXPECT_THROW(parseModel("pso"), ConfigError);
}

TEST(Isa, DefaultsMatchPaperTable1)
{
    EXPECT_EQ(defaultModel(Isa::X86), MemoryModel::TSO);
    EXPECT_EQ(defaultModel(Isa::ARMv7), MemoryModel::RMO);
    EXPECT_EQ(registerBits(Isa::X86), 64u);
    EXPECT_EQ(registerBits(Isa::ARMv7), 32u);
}

TEST(Isa, NamesRoundTrip)
{
    EXPECT_EQ(parseIsa("x86"), Isa::X86);
    EXPECT_EQ(parseIsa("X86-64"), Isa::X86);
    EXPECT_EQ(parseIsa("ARM"), Isa::ARMv7);
    EXPECT_EQ(parseIsa("armv7"), Isa::ARMv7);
    EXPECT_THROW(parseIsa("riscv"), ConfigError);
    EXPECT_EQ(isaName(Isa::X86), "x86");
    EXPECT_EQ(isaName(Isa::ARMv7), "ARM");
}

TEST(OpKindNames, Mnemonics)
{
    EXPECT_EQ(opKindName(OpKind::Load), "ld");
    EXPECT_EQ(opKindName(OpKind::Store), "st");
    EXPECT_EQ(opKindName(OpKind::Fence), "fence");
}

} // anonymous namespace
} // namespace mtc
