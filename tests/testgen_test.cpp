/**
 * @file
 * Unit tests for test configuration, the program IR and its derived
 * indexes, and the constrained-random generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "support/error.h"
#include "testgen/generator.h"
#include "testgen/test_config.h"
#include "testgen/test_program.h"

namespace mtc
{
namespace
{

TEST(TestConfig, NameMatchesPaperConvention)
{
    TestConfig cfg;
    cfg.isa = Isa::ARMv7;
    cfg.numThreads = 2;
    cfg.opsPerThread = 50;
    cfg.numLocations = 32;
    EXPECT_EQ(cfg.name(), "ARM-2-50-32");

    cfg.wordsPerLine = 4;
    EXPECT_EQ(cfg.name(), "ARM-2-50-32 (4 words/line)");
}

TEST(TestConfig, ParseRoundTrip)
{
    for (const char *name :
         {"ARM-2-50-32", "x86-7-200-128", "ARM-4-100-64"}) {
        const TestConfig cfg = parseConfigName(name);
        EXPECT_EQ(cfg.name(), name);
    }
    const TestConfig fs = parseConfigName("x86-4-50-8 (4 words/line)");
    EXPECT_EQ(fs.wordsPerLine, 4u);
    EXPECT_EQ(fs.numLocations, 8u);
}

TEST(TestConfig, ParseRejectsGarbage)
{
    EXPECT_THROW(parseConfigName("ARM-2-50"), ConfigError);
    EXPECT_THROW(parseConfigName("MIPS-2-50-32"), ConfigError);
    EXPECT_THROW(parseConfigName(""), ConfigError);
}

TEST(TestConfig, ValidateRejectsBadParameters)
{
    TestConfig cfg;
    cfg.numThreads = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = TestConfig{};
    cfg.opsPerThread = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = TestConfig{};
    cfg.numLocations = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = TestConfig{};
    cfg.loadFraction = 1.5;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = TestConfig{};
    cfg.wordsPerLine = 17; // 17*4 > 64
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = TestConfig{};
    cfg.fencePercent = 101;
    EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(TestConfig, Figure8GridHas21Configs)
{
    const auto configs = figure8Configs();
    EXPECT_EQ(configs.size(), 21u);
    unsigned arm = 0, x86 = 0;
    for (const auto &cfg : configs)
        (cfg.isa == Isa::ARMv7 ? arm : x86) += 1;
    EXPECT_EQ(arm, 15u);
    EXPECT_EQ(x86, 6u);
    EXPECT_EQ(figure10Configs().size(), 15u);
}

TEST(StoreValue, EncodingRoundTrip)
{
    for (std::uint32_t tid : {0u, 1u, 6u, 100u}) {
        for (std::uint32_t idx : {0u, 1u, 199u, 5000u}) {
            const OpId id{tid, idx};
            const std::uint32_t value = storeValue(id);
            EXPECT_NE(value, kInitValue);
            EXPECT_EQ(storeIdFromValue(value), id);
        }
    }
    EXPECT_THROW(storeIdFromValue(kInitValue), ConfigError);
}

TEST(Generator, DeterministicAndParameterized)
{
    TestConfig cfg = parseConfigName("x86-4-100-64");
    const TestProgram a = generateTest(cfg, 7);
    const TestProgram b = generateTest(cfg, 7);
    const TestProgram c = generateTest(cfg, 8);
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_NE(a.fingerprint(), c.fingerprint());

    EXPECT_EQ(a.numThreads(), 4u);
    EXPECT_EQ(a.numOps(), 400u);
    for (std::uint32_t t = 0; t < a.numThreads(); ++t)
        EXPECT_EQ(a.opsInThread(t), 100u);
}

TEST(Generator, LoadStoreMixRoughlyBalanced)
{
    TestConfig cfg = parseConfigName("ARM-7-200-64");
    const TestProgram program = generateTest(cfg, 3);
    const double loads = program.loads().size();
    const double total = program.numOps();
    EXPECT_NEAR(loads / total, 0.5, 0.08);
}

TEST(Generator, StoreValuesUniqueAndDecodable)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-7-200-128"), 5);
    std::set<std::uint32_t> values;
    for (OpId store : program.stores()) {
        const MemOp &op = program.op(store);
        EXPECT_TRUE(values.insert(op.value).second);
        EXPECT_EQ(storeIdFromValue(op.value), store);
        EXPECT_EQ(program.storeForValue(op.value), store);
    }
    EXPECT_FALSE(program.storeForValue(0xdeadbeef).has_value());
}

TEST(Generator, LocationsInRange)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-2-50-32"), 9);
    for (const auto &body : program.threadBodies()) {
        for (const MemOp &op : body) {
            if (op.kind != OpKind::Fence) {
                EXPECT_LT(op.loc, 32u);
            }
        }
    }
}

TEST(Generator, FencePercent)
{
    TestConfig cfg = parseConfigName("ARM-4-200-64");
    cfg.fencePercent = 20;
    const TestProgram program = generateTest(cfg, 11);
    unsigned fences = 0;
    for (const auto &body : program.threadBodies())
        for (const MemOp &op : body)
            fences += op.kind == OpKind::Fence;
    const double frac = fences / static_cast<double>(program.numOps());
    EXPECT_NEAR(frac, 0.20, 0.06);
}

TEST(Generator, BatchProducesDistinctTests)
{
    const auto batch =
        generateTestBatch(parseConfigName("x86-2-50-32"), 1, 10);
    ASSERT_EQ(batch.size(), 10u);
    std::set<std::uint64_t> prints;
    for (const auto &program : batch)
        prints.insert(program.fingerprint());
    EXPECT_EQ(prints.size(), 10u);
}

TEST(TestProgram, GlobalIndexRoundTrip)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-50-64"), 2);
    for (std::uint32_t g = 0; g < program.numOps(); ++g) {
        const OpId id = program.opIdAt(g);
        EXPECT_EQ(program.globalIndex(id), g);
    }
    EXPECT_THROW(program.opIdAt(program.numOps()), ConfigError);
    EXPECT_THROW(program.globalIndex(OpId{99, 0}), ConfigError);
}

TEST(TestProgram, LoadOrdinalsAreDense)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-2-100-32"), 4);
    const auto &loads = program.loads();
    for (std::uint32_t i = 0; i < loads.size(); ++i)
        EXPECT_EQ(program.loadOrdinal(loads[i]), i);
    // A store has no load ordinal.
    ASSERT_FALSE(program.stores().empty());
    EXPECT_THROW(program.loadOrdinal(program.stores().front()),
                 ConfigError);
}

TEST(TestProgram, StoresPerLocationConsistent)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-100-64"), 6);
    std::size_t total = 0;
    for (std::uint32_t loc = 0; loc < 64; ++loc) {
        for (OpId store : program.storesTo(loc))
            EXPECT_EQ(program.op(store).loc, loc);
        total += program.storesTo(loc).size();
    }
    EXPECT_EQ(total, program.stores().size());
}

TEST(TestProgram, AddressLayoutFalseSharing)
{
    TestConfig cfg = parseConfigName("ARM-2-50-32");

    // No false sharing: each location on its own 64-byte line.
    {
        const TestProgram p = generateTest(cfg, 1);
        EXPECT_EQ(p.numLines(), 32u);
        EXPECT_EQ(p.lineOf(0), 0u);
        EXPECT_EQ(p.lineOf(1), 1u);
        EXPECT_EQ(p.byteAddress(1), 64u);
    }

    // 4 words per line: locations 0..3 share line 0.
    {
        cfg.wordsPerLine = 4;
        const TestProgram p = generateTest(cfg, 1);
        EXPECT_EQ(p.numLines(), 8u);
        EXPECT_EQ(p.lineOf(0), 0u);
        EXPECT_EQ(p.lineOf(3), 0u);
        EXPECT_EQ(p.lineOf(4), 1u);
        EXPECT_EQ(p.byteAddress(1), 4u);
        EXPECT_EQ(p.byteAddress(4), 64u);
    }
}

TEST(TestProgram, RejectsInvalidConstruction)
{
    TestConfig cfg = parseConfigName("x86-2-50-32");

    // Load location out of range.
    {
        std::vector<std::vector<MemOp>> threads(2);
        MemOp bad;
        bad.kind = OpKind::Load;
        bad.loc = 32;
        threads[0].push_back(bad);
        EXPECT_THROW(TestProgram(cfg, std::move(threads)), ConfigError);
    }
    // Store with the init value.
    {
        std::vector<std::vector<MemOp>> threads(2);
        MemOp bad;
        bad.kind = OpKind::Store;
        bad.loc = 0;
        bad.value = kInitValue;
        threads[0].push_back(bad);
        EXPECT_THROW(TestProgram(cfg, std::move(threads)), ConfigError);
    }
    // Duplicate store values.
    {
        std::vector<std::vector<MemOp>> threads(2);
        MemOp st;
        st.kind = OpKind::Store;
        st.loc = 0;
        st.value = 42;
        threads[0].push_back(st);
        threads[1].push_back(st);
        EXPECT_THROW(TestProgram(cfg, std::move(threads)), ConfigError);
    }
}

TEST(TestProgram, ToStringListsOps)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-2-50-32"), 1);
    const std::string text = program.toString();
    EXPECT_NE(text.find("thread 0"), std::string::npos);
    EXPECT_NE(text.find("thread 1"), std::string::npos);
    EXPECT_NE(text.find("ld"), std::string::npos);
    EXPECT_NE(text.find("st"), std::string::npos);
}

} // anonymous namespace
} // namespace mtc
