/**
 * @file
 * Property tests for program-order edge construction: the sparse edge
 * set must have exactly the same transitive closure as the dense
 * all-required-pairs reference, for every model, with and without
 * fences. Also pins down requiredOrder() semantics on concrete ops.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "graph/po_edges.h"
#include "testgen/generator.h"

namespace mtc
{
namespace
{

/** Reachability matrix (bool, V x V) from an edge list. */
std::vector<std::vector<bool>>
closure(std::uint32_t n, const std::vector<Edge> &edges)
{
    std::vector<std::vector<std::uint32_t>> adj(n);
    for (const Edge &e : edges)
        adj[e.from].push_back(e.to);

    std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
    for (std::uint32_t src = 0; src < n; ++src) {
        std::vector<std::uint32_t> stack{src};
        while (!stack.empty()) {
            const std::uint32_t v = stack.back();
            stack.pop_back();
            for (std::uint32_t to : adj[v]) {
                if (!reach[src][to]) {
                    reach[src][to] = true;
                    stack.push_back(to);
                }
            }
        }
    }
    return reach;
}

using Param = std::tuple<MemoryModel, unsigned /*fencePercent*/,
                         std::uint64_t /*seed*/>;

class PoEdgesClosure : public ::testing::TestWithParam<Param>
{
};

TEST_P(PoEdgesClosure, SparseClosureEqualsDenseClosure)
{
    const auto [model, fence_percent, seed] = GetParam();

    TestConfig cfg;
    cfg.isa = Isa::ARMv7;
    cfg.numThreads = 3;
    cfg.opsPerThread = 40;
    cfg.numLocations = 8; // few locations => many same-address pairs
    cfg.fencePercent = fence_percent;
    const TestProgram program = generateTest(cfg, seed);

    const auto sparse = programOrderEdges(program, model);
    const auto dense = programOrderEdgesDense(program, model);
    EXPECT_LE(sparse.size(), dense.size());

    const auto sparse_reach = closure(program.numOps(), sparse);
    const auto dense_reach = closure(program.numOps(), dense);
    for (std::uint32_t i = 0; i < program.numOps(); ++i) {
        for (std::uint32_t j = 0; j < program.numOps(); ++j) {
            EXPECT_EQ(sparse_reach[i][j], dense_reach[i][j])
                << "model " << modelName(model) << " vertices " << i
                << " -> " << j;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, PoEdgesClosure,
    ::testing::Combine(
        ::testing::Values(MemoryModel::SC, MemoryModel::TSO,
                          MemoryModel::RMO),
        ::testing::Values(0u, 10u, 30u),
        ::testing::Values(1ull, 2ull, 3ull)),
    [](const ::testing::TestParamInfo<Param> &info) {
        return modelName(std::get<0>(info.param)) + "_fence" +
            std::to_string(std::get<1>(info.param)) + "_seed" +
            std::to_string(std::get<2>(info.param));
    });

TEST(RequiredOrder, ConcretePairs)
{
    MemOp ld_a{OpKind::Load, 0, 0};
    MemOp ld_b{OpKind::Load, 1, 0};
    MemOp st_a{OpKind::Store, 0, 42};
    MemOp st_b{OpKind::Store, 1, 43};
    MemOp fence{OpKind::Fence, 0, 0};

    // TSO: store->load relaxed across addresses and (forwarding) at
    // the same address.
    EXPECT_FALSE(requiredOrder(MemoryModel::TSO, st_a, ld_b));
    EXPECT_FALSE(requiredOrder(MemoryModel::TSO, st_a, ld_a));
    EXPECT_TRUE(requiredOrder(MemoryModel::TSO, ld_a, st_b));
    EXPECT_TRUE(requiredOrder(MemoryModel::TSO, st_a, st_b));

    // RMO: cross-address free, same-address coherence retained.
    EXPECT_FALSE(requiredOrder(MemoryModel::RMO, ld_a, ld_b));
    EXPECT_TRUE(requiredOrder(MemoryModel::RMO, ld_a, ld_a));
    EXPECT_TRUE(requiredOrder(MemoryModel::RMO, st_a, st_a));
    EXPECT_TRUE(requiredOrder(MemoryModel::RMO, ld_a, st_a));

    // Fences order in every model.
    for (MemoryModel m :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        EXPECT_TRUE(requiredOrder(m, fence, ld_a));
        EXPECT_TRUE(requiredOrder(m, st_a, fence));
    }
}

TEST(PoEdges, ScChainIsLinear)
{
    // Under SC the sparse builder should produce roughly a chain: each
    // op orders before the next, so |edges| is close to ops-1 per
    // thread (same-address categories may add a few extra).
    TestConfig cfg;
    cfg.numThreads = 2;
    cfg.opsPerThread = 30;
    cfg.numLocations = 16;
    const TestProgram program = generateTest(cfg, 4);
    const auto edges = programOrderEdges(program, MemoryModel::SC);
    const auto dense = programOrderEdgesDense(program, MemoryModel::SC);
    EXPECT_LT(edges.size(), dense.size() / 4)
        << "sparse builder should be far smaller than dense";
}

TEST(PoEdges, EdgesStayWithinThread)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-50-64"), 5);
    for (MemoryModel m :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        for (const Edge &e : programOrderEdges(program, m)) {
            EXPECT_EQ(program.opIdAt(e.from).tid,
                      program.opIdAt(e.to).tid);
            EXPECT_LT(program.opIdAt(e.from).idx,
                      program.opIdAt(e.to).idx);
            EXPECT_EQ(e.kind, EdgeKind::ProgramOrder);
        }
    }
}

TEST(PoEdges, RmoEdgeCountSmall)
{
    // RMO orders only same-address pairs (no fences): edge count must
    // be far below the SC chain for a many-location test.
    TestConfig cfg = parseConfigName("ARM-2-100-64");
    const TestProgram program = generateTest(cfg, 6);
    const auto rmo = programOrderEdges(program, MemoryModel::RMO);
    const auto sc = programOrderEdges(program, MemoryModel::SC);
    EXPECT_LT(rmo.size(), sc.size());
}

} // anonymous namespace
} // namespace mtc
