/**
 * @file
 * Tests for write-serialization inference: soundness against the
 * executor's ground-truth coherence order, and detection of
 * contradictory (coherence-violating) observations.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "graph/ws_inference.h"
#include "sim/executor.h"
#include "testgen/generator.h"
#include "testgen/litmus.h"

namespace mtc
{
namespace
{

/** Position of a store in the ground-truth order of @p loc. */
std::int64_t
positionIn(const std::vector<OpId> &order, OpId store)
{
    for (std::size_t i = 0; i < order.size(); ++i)
        if (order[i] == store)
            return static_cast<std::int64_t>(i);
    return -1;
}

using Param = std::tuple<MemoryModel, std::uint64_t /*seed*/>;

class WsInferenceSoundness : public ::testing::TestWithParam<Param>
{
};

TEST_P(WsInferenceSoundness, InferredOrderIsSubsetOfGroundTruth)
{
    const auto [model, seed] = GetParam();

    TestConfig cfg;
    cfg.numThreads = 4;
    cfg.opsPerThread = 40;
    cfg.numLocations = 8;
    const TestProgram program = generateTest(cfg, seed);

    ExecutorConfig exec;
    exec.model = model;
    exec.policy = SchedulingPolicy::UniformRandom;
    exec.reorderWindow = model == MemoryModel::SC ? 1 : 8;
    exec.exportCoherenceOrder = true;
    OperationalExecutor platform(exec);

    Rng rng(seed * 31 + 7);
    for (int run = 0; run < 20; ++run) {
        const Execution execution = platform.run(program, rng);
        WsOrder inferred(program, execution);
        EXPECT_FALSE(inferred.coherenceViolation())
            << "bug-free platform must not contradict itself";

        for (std::uint32_t loc = 0; loc < cfg.numLocations; ++loc) {
            const auto &truth = execution.coherenceOrder[loc];
            for (const auto &[w1, w2] : inferred.orderedPairs(loc)) {
                const std::int64_t p1 = positionIn(truth, w1);
                const std::int64_t p2 = positionIn(truth, w2);
                ASSERT_GE(p1, 0);
                ASSERT_GE(p2, 0);
                EXPECT_LT(p1, p2)
                    << "inferred ws edge contradicts ground truth at loc "
                    << loc;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, WsInferenceSoundness,
    ::testing::Combine(::testing::Values(MemoryModel::SC,
                                         MemoryModel::TSO,
                                         MemoryModel::RMO),
                       ::testing::Values(1ull, 2ull, 3ull, 4ull)),
    [](const ::testing::TestParamInfo<Param> &info) {
        return modelName(std::get<0>(info.param)) + "_seed" +
            std::to_string(std::get<1>(info.param));
    });

TEST(WsInference, GroundTruthConstructorIsTotal)
{
    TestConfig cfg;
    cfg.numThreads = 2;
    cfg.opsPerThread = 20;
    cfg.numLocations = 4;
    const TestProgram program = generateTest(cfg, 5);

    OperationalExecutor platform(scReferenceConfig());
    Rng rng(11);
    const Execution execution = platform.run(program, rng);

    const WsOrder truth = WsOrder::fromGroundTruth(program, execution);
    EXPECT_FALSE(truth.coherenceViolation());
    for (std::uint32_t loc = 0; loc < cfg.numLocations; ++loc) {
        const auto &order = execution.coherenceOrder[loc];
        for (std::size_t i = 0; i < order.size(); ++i) {
            EXPECT_TRUE(truth.before(loc, std::nullopt, order[i]));
            for (std::size_t j = i + 1; j < order.size(); ++j) {
                EXPECT_TRUE(truth.before(loc, order[i], order[j]));
                EXPECT_FALSE(truth.before(loc, order[j], order[i]));
            }
        }
    }
}

TEST(WsInference, GroundTruthRequiresExportedOrder)
{
    const TestProgram program = litmus::corr();
    Execution execution;
    execution.loadValues = {kInitValue, kInitValue};
    EXPECT_THROW(WsOrder::fromGroundTruth(program, execution),
                 ConfigError);
}

TEST(WsInference, CorrViolationDetected)
{
    // T0: st x=V.  T1: ld x; ld x.  Observing V then init contradicts
    // coherence: rule (d) demands ws(V) <= ws(init), but init precedes
    // every store.
    const TestProgram program = litmus::corr();
    const std::uint32_t v = program.op(OpId{0, 0}).value;

    Execution bad;
    bad.loadValues = {v, kInitValue};
    WsOrder order(program, bad);
    EXPECT_TRUE(order.coherenceViolation());

    // The legal orders are fine.
    for (auto values :
         {std::vector<std::uint32_t>{kInitValue, kInitValue},
          std::vector<std::uint32_t>{kInitValue, v},
          std::vector<std::uint32_t>{v, v}}) {
        Execution good;
        good.loadValues = values;
        EXPECT_FALSE(
            WsOrder(program, good).coherenceViolation());
    }
}

TEST(WsInference, ReadingOwnFutureStoreDetected)
{
    // Thread 0: ld x; st x=V. The load observing V reads its own
    // thread's future -> violation.
    TestConfig cfg;
    cfg.numThreads = 1;
    cfg.opsPerThread = 2;
    cfg.numLocations = 1;
    std::vector<std::vector<MemOp>> threads(1);
    MemOp load;
    load.kind = OpKind::Load;
    load.loc = 0;
    MemOp store;
    store.kind = OpKind::Store;
    store.loc = 0;
    store.value = storeValue(OpId{0, 1});
    threads[0] = {load, store};
    const TestProgram program(cfg, std::move(threads));

    Execution bad;
    bad.loadValues = {store.value};
    EXPECT_TRUE(WsOrder(program, bad).coherenceViolation());
}

TEST(WsInference, InitAfterOwnStoreDetected)
{
    // Thread 0: st x=V; ld x. Reading init after own store violates
    // per-location coherence.
    TestConfig cfg;
    cfg.numThreads = 1;
    cfg.opsPerThread = 2;
    cfg.numLocations = 1;
    std::vector<std::vector<MemOp>> threads(1);
    MemOp store;
    store.kind = OpKind::Store;
    store.loc = 0;
    store.value = storeValue(OpId{0, 0});
    MemOp load;
    load.kind = OpKind::Load;
    load.loc = 0;
    threads[0] = {store, load};
    const TestProgram program(cfg, std::move(threads));

    Execution bad;
    bad.loadValues = {kInitValue};
    EXPECT_TRUE(WsOrder(program, bad).coherenceViolation());

    Execution good;
    good.loadValues = {store.value};
    EXPECT_FALSE(WsOrder(program, good).coherenceViolation());
}

TEST(WsInference, UnknownValueDetected)
{
    const TestProgram program = litmus::corr();
    Execution bad;
    bad.loadValues = {0xdeadbeefu, kInitValue};
    EXPECT_TRUE(WsOrder(program, bad).coherenceViolation());
}

TEST(WsInference, SuccessorsOfInit)
{
    // MP: both stores of T0 to distinct locations; successorsOf(init)
    // at each location is exactly the store set.
    const TestProgram program = litmus::messagePassing();
    Execution execution;
    execution.loadValues = {kInitValue, kInitValue};
    WsOrder order(program, execution);
    EXPECT_EQ(order.successorsOf(0, std::nullopt).size(), 1u);
    EXPECT_EQ(order.successorsOf(1, std::nullopt).size(), 1u);
}

TEST(WsInference, RejectsForeignStoreQuery)
{
    const TestProgram program = litmus::messagePassing();
    Execution execution;
    execution.loadValues = {kInitValue, kInitValue};
    WsOrder order(program, execution);
    // OpId{0,0} stores loc 0; querying it against loc 1 must throw.
    EXPECT_THROW(order.before(1, OpId{0, 0}, std::nullopt), ConfigError);
}

} // anonymous namespace
} // namespace mtc
