/**
 * @file
 * Parallel validation engine tests: the engine's one hard promise is
 * that parallelism never changes results. Campaign summaries, flow
 * verdicts, and checker stats must be bit-identical at 1, 2, and 8
 * workers — with and without active fault injection — and the sharded
 * collective checker must return exactly the unsharded verdicts while
 * paying only the predicted extra complete sort per shard. Plus unit
 * coverage for the ThreadPool itself (exception capture, bounded
 * queue, index coverage).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/collective_checker.h"
#include "core/conventional_checker.h"
#include "core/signature_accumulator.h"
#include "graph/graph_builder.h"
#include "harness/campaign.h"
#include "harness/validation_flow.h"
#include "sim/executor.h"
#include "support/thread_pool.h"
#include "testgen/generator.h"

namespace mtc
{
namespace
{

/** Compare every deterministic field of two summaries (wall-clock ms
 * fields are the only legitimate divergence between runs). */
void
expectSummariesIdentical(const ConfigSummary &a, const ConfigSummary &b)
{
    EXPECT_EQ(a.tests, b.tests);
    EXPECT_EQ(a.avgUniqueSignatures, b.avgUniqueSignatures);
    EXPECT_EQ(a.avgSignatureBytes, b.avgSignatureBytes);
    EXPECT_EQ(a.avgUnrelatedAccesses, b.avgUnrelatedAccesses);
    EXPECT_EQ(a.avgCodeRatio, b.avgCodeRatio);
    EXPECT_EQ(a.avgOriginalKB, b.avgOriginalKB);
    EXPECT_EQ(a.avgInstrumentedKB, b.avgInstrumentedKB);
    EXPECT_EQ(a.collectiveWork, b.collectiveWork);
    EXPECT_EQ(a.conventionalWork, b.conventionalWork);
    EXPECT_EQ(a.collectiveGraphs, b.collectiveGraphs);
    EXPECT_EQ(a.collectiveCompleteSorts, b.collectiveCompleteSorts);
    EXPECT_EQ(a.fracComplete, b.fracComplete);
    EXPECT_EQ(a.fracNoResort, b.fracNoResort);
    EXPECT_EQ(a.fracIncremental, b.fracIncremental);
    EXPECT_EQ(a.avgAffectedFraction, b.avgAffectedFraction);
    EXPECT_EQ(a.avgComputationOverhead, b.avgComputationOverhead);
    EXPECT_EQ(a.avgSortingOverhead, b.avgSortingOverhead);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.injected.totalEvents(), b.injected.totalEvents());
    EXPECT_EQ(a.quarantinedSignatures, b.quarantinedSignatures);
    EXPECT_EQ(a.quarantinedIterations, b.quarantinedIterations);
    EXPECT_EQ(a.confirmedViolations, b.confirmedViolations);
    EXPECT_EQ(a.transientViolations, b.transientViolations);
    EXPECT_EQ(a.crashRetries, b.crashRetries);
    EXPECT_EQ(a.testRetriesUsed, b.testRetriesUsed);
    EXPECT_EQ(a.failedTests, b.failedTests);
    EXPECT_EQ(a.degraded, b.degraded);
}

std::vector<ConfigSummary>
campaignAt(unsigned threads, CampaignConfig campaign)
{
    campaign.threads = threads;
    const std::vector<TestConfig> configs = {
        parseConfigName("x86-2-50-32"),
        parseConfigName("ARM-2-50-32"),
        parseConfigName("x86-4-50-64"),
    };
    return runCampaign(configs, campaign);
}

TEST(ParallelCampaign, SummariesBitIdenticalAcrossThreadCounts)
{
    CampaignConfig campaign;
    campaign.iterations = 96;
    campaign.testsPerConfig = 3;

    const auto serial = campaignAt(1, campaign);
    for (unsigned threads : {2u, 8u}) {
        const auto parallel = campaignAt(threads, campaign);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectSummariesIdentical(serial[i], parallel[i]);
    }
}

TEST(ParallelCampaign, IdenticalUnderActiveFaultInjection)
{
    // Fault injection plus K-re-execution confirmation exercises the
    // quarantine, reclassification, and crash-retry paths; they must
    // all stay scheduling-independent.
    CampaignConfig campaign;
    campaign.iterations = 128;
    campaign.testsPerConfig = 2;
    campaign.runConventional = false;
    campaign.fault.bitFlipRate = 0.02;
    campaign.fault.tornStoreRate = 0.01;
    campaign.fault.dropRate = 0.01;
    campaign.fault.duplicateRate = 0.01;
    campaign.recovery.confirmationRuns = 2;

    const auto serial = campaignAt(1, campaign);
    bool any_fault_activity = false;
    for (const ConfigSummary &s : serial)
        any_fault_activity = any_fault_activity ||
            s.injected.totalEvents() || s.quarantinedSignatures;
    EXPECT_TRUE(any_fault_activity)
        << "fault rates too low to exercise the fault paths";

    for (unsigned threads : {2u, 8u}) {
        const auto parallel = campaignAt(threads, campaign);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectSummariesIdentical(serial[i], parallel[i]);
    }
}

TEST(ParallelCampaign, RunConfigMatchesAcrossThreadCounts)
{
    CampaignConfig campaign;
    campaign.iterations = 64;
    campaign.testsPerConfig = 4;
    campaign.runConventional = false;
    const TestConfig cfg = parseConfigName("x86-2-100-32");

    campaign.threads = 1;
    const ConfigSummary serial = runConfig(cfg, campaign);
    campaign.threads = 8;
    const ConfigSummary parallel = runConfig(cfg, campaign);
    expectSummariesIdentical(serial, parallel);
}

TEST(ParallelCampaign, EnvOverridesParseParallelKnobs)
{
    setenv("MTC_THREADS", "4", 1);
    setenv("MTC_SHARD_SIZE", "64", 1);
    const CampaignConfig cfg = CampaignConfig::fromEnv();
    EXPECT_EQ(cfg.threads, 4u);
    EXPECT_EQ(cfg.shardSize, 64u);
    unsetenv("MTC_THREADS");
    unsetenv("MTC_SHARD_SIZE");

    // Zero is meaningful (all hardware threads / unsharded).
    setenv("MTC_THREADS", "0", 1);
    EXPECT_EQ(CampaignConfig::fromEnv().threads, 0u);
    unsetenv("MTC_THREADS");

    setenv("MTC_THREADS", "many", 1);
    EXPECT_THROW((void)CampaignConfig::fromEnv(), ConfigError);
    unsetenv("MTC_THREADS");
}

/** Flow-level determinism: the in-test stages (parallel decode and
 * sharded checking) must give one answer at any worker count. */
TEST(ParallelFlow, RunTestVerdictsAndStatsIdenticalAcrossThreads)
{
    const TestProgram program = generateTest(
        parseConfigName("x86-7-100-32 (16 words/line)"), 3);
    FlowConfig cfg;
    cfg.iterations = 96;
    cfg.exec = bareMetalConfig(Isa::X86);
    cfg.exec.bug = BugKind::LsqNoSquash; // make violations appear
    cfg.exec.bugProbability = 0.5;
    cfg.shardSize = 5;

    cfg.threads = 1;
    const FlowResult serial = ValidationFlow(cfg).runTest(program);
    ASSERT_TRUE(serial.anyViolation());

    for (unsigned threads : {2u, 8u}) {
        cfg.threads = threads;
        const FlowResult parallel =
            ValidationFlow(cfg).runTest(program);
        EXPECT_EQ(parallel.uniqueSignatures, serial.uniqueSignatures);
        EXPECT_EQ(parallel.violatingSignatures,
                  serial.violatingSignatures);
        EXPECT_EQ(parallel.assertionFailures,
                  serial.assertionFailures);
        EXPECT_EQ(parallel.collective.graphsChecked,
                  serial.collective.graphsChecked);
        EXPECT_EQ(parallel.collective.completeSorts,
                  serial.collective.completeSorts);
        EXPECT_EQ(parallel.collective.noResortNeeded,
                  serial.collective.noResortNeeded);
        EXPECT_EQ(parallel.collective.incrementalResorts,
                  serial.collective.incrementalResorts);
        EXPECT_EQ(parallel.collective.verticesProcessed,
                  serial.collective.verticesProcessed);
        EXPECT_EQ(parallel.collective.edgesProcessed,
                  serial.collective.edgesProcessed);
        EXPECT_EQ(parallel.violationWitness, serial.violationWitness);
        EXPECT_EQ(parallel.originalCycles, serial.originalCycles);
        EXPECT_EQ(parallel.sortCycles, serial.sortCycles);
    }
}

/** Property test: for a spread of programs, sharded checking returns
 * exactly the unsharded verdicts (and the conventional checker's) at
 * every shard size, while paying at most one extra complete sort per
 * shard. */
TEST(ShardedChecker, EquivalentToUnshardedAcrossSeeds)
{
    ThreadPool pool(2);
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        const TestConfig cfg = parseConfigName("x86-4-50-64");
        const TestProgram program = generateTest(cfg, seed);

        // Collect a real ordered unique-execution batch through the
        // flow (keepExecutions returns them in ascending-signature
        // order), including violating graphs from an injected bug.
        FlowConfig flow_cfg;
        flow_cfg.iterations = 128;
        flow_cfg.exec = bareMetalConfig(cfg.isa);
        flow_cfg.exec.bug = seed % 2 ? BugKind::LsqNoSquash
                                     : BugKind::None;
        flow_cfg.exec.bugProbability = 0.4;
        flow_cfg.keepExecutions = true;
        flow_cfg.runConventional = false;
        flow_cfg.seed = seed * 7919 + 1;
        const FlowResult flow_result =
            ValidationFlow(flow_cfg).runTest(program);

        std::vector<DynamicEdgeSet> ordered;
        ordered.reserve(flow_result.executions.size());
        for (const Execution &execution : flow_result.executions)
            ordered.push_back(dynamicEdges(program, execution));
        ASSERT_GT(ordered.size(), 2u);

        const MemoryModel model = flow_cfg.exec.model;
        CollectiveChecker unsharded(program, model);
        const std::vector<bool> reference = unsharded.check(ordered);

        ConventionalStats conv_stats;
        const std::vector<bool> conventional =
            ConventionalChecker(program, model)
                .check(ordered, conv_stats);
        EXPECT_EQ(reference, conventional);

        for (std::size_t shard : {std::size_t(1), std::size_t(3),
                                  std::size_t(16), std::size_t(1000)}) {
            CollectiveStats stats;
            const std::vector<bool> verdicts = checkCollectiveSharded(
                program, model, ordered, shard, &pool, stats);
            EXPECT_EQ(verdicts, reference)
                << "shard size " << shard << " seed " << seed;
            EXPECT_EQ(stats.graphsChecked, ordered.size());

            // Shard tax bound: at most one extra complete sort per
            // shard relative to the unsharded run.
            const std::size_t shards = shard >= ordered.size()
                ? 1
                : (ordered.size() + shard - 1) / shard;
            EXPECT_LE(stats.completeSorts,
                      unsharded.stats().completeSorts + shards);
            EXPECT_GE(stats.completeSorts, shards);
        }
    }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { ++hits[i]; });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException)
{
    ThreadPool pool(3);
    std::atomic<int> completed{0};
    try {
        pool.parallelFor(100, [&](std::size_t i) {
            if (i == 17)
                throw std::runtime_error("boom");
            ++completed;
        });
        FAIL() << "exception was swallowed";
    } catch (const std::runtime_error &err) {
        EXPECT_STREQ(err.what(), "boom");
    }
    // Every non-throwing index still ran (slots stay populated).
    EXPECT_EQ(completed.load(), 99);
}

TEST(ThreadPoolTest, BoundedQueueSubmitDoesNotDeadlock)
{
    ThreadPool pool(2, /*queue_capacity=*/2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&] { ++ran; });
    // Destructor drains the queue; recreate scope to force it.
    while (ran.load() < 64)
        std::this_thread::yield();
    EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ResolveThreadsMapsZeroToHardware)
{
    EXPECT_GE(ThreadPool::resolveThreads(0), 1u);
    EXPECT_EQ(ThreadPool::resolveThreads(3), 3u);
}

TEST(SignatureAccumulatorTest, CountsAndSortsLikeAMap)
{
    SignatureAccumulator acc;
    const auto sig = [](std::uint64_t a, std::uint64_t b) {
        return Signature{{a, b}};
    };
    EXPECT_TRUE(acc.record(sig(2, 1)));
    EXPECT_TRUE(acc.record(sig(1, 9)));
    EXPECT_FALSE(acc.record(sig(2, 1), 3));
    EXPECT_TRUE(acc.record(sig(1, 2)));
    EXPECT_EQ(acc.uniqueCount(), 3u);

    const auto unique = acc.takeSortedUnique();
    ASSERT_EQ(unique.size(), 3u);
    EXPECT_EQ(unique[0].signature, sig(1, 2));
    EXPECT_EQ(unique[1].signature, sig(1, 9));
    EXPECT_EQ(unique[2].signature, sig(2, 1));
    EXPECT_EQ(unique[2].iterations, 4u);
    EXPECT_EQ(acc.uniqueCount(), 0u);
}

TEST(SignatureAccumulatorTest, SurvivesGrowthPastInitialCapacity)
{
    SignatureAccumulator acc;
    const std::size_t n = 10000;
    for (std::size_t i = 0; i < n; ++i)
        acc.record(Signature{{i * 2654435761u, i}});
    // Duplicates of every other entry.
    for (std::size_t i = 0; i < n; i += 2)
        acc.record(Signature{{i * 2654435761u, i}});
    EXPECT_EQ(acc.uniqueCount(), n);

    const auto unique = acc.takeSortedUnique();
    ASSERT_EQ(unique.size(), n);
    std::uint64_t total = 0;
    for (std::size_t i = 1; i < n; ++i)
        EXPECT_LT(unique[i - 1].signature, unique[i].signature);
    for (const SignatureCount &entry : unique)
        total += entry.iterations;
    EXPECT_EQ(total, n + n / 2);
}

} // anonymous namespace
} // namespace mtc
