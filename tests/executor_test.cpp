/**
 * @file
 * Tests for the platform substitute (operational executor): model
 * soundness, litmus-test reachability per memory model, store
 * forwarding, coherence-order export, determinism, and configuration
 * validation.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/conventional_checker.h"
#include "graph/graph_builder.h"
#include "sim/executor.h"
#include "testgen/generator.h"
#include "testgen/litmus.h"

namespace mtc
{
namespace
{

/** Collect the set of (load0, load1, ...) outcomes over many runs. */
std::set<std::vector<std::uint32_t>>
outcomes(const TestProgram &program, const ExecutorConfig &cfg,
         unsigned runs, std::uint64_t seed = 1)
{
    OperationalExecutor platform(cfg);
    Rng rng(seed);
    std::set<std::vector<std::uint32_t>> seen;
    for (unsigned i = 0; i < runs; ++i)
        seen.insert(platform.run(program, rng).loadValues);
    return seen;
}

ExecutorConfig
uniformConfig(MemoryModel model, unsigned window = 8)
{
    ExecutorConfig cfg;
    cfg.model = model;
    cfg.policy = SchedulingPolicy::UniformRandom;
    cfg.reorderWindow = model == MemoryModel::SC ? 1 : window;
    return cfg;
}

TEST(Executor, DeterministicGivenSeed)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-100-64"), 3);
    for (SchedulingPolicy policy : {SchedulingPolicy::UniformRandom,
                                    SchedulingPolicy::Timed}) {
        ExecutorConfig cfg = uniformConfig(MemoryModel::RMO);
        cfg.policy = policy;
        OperationalExecutor a(cfg), b(cfg);
        Rng ra(5), rb(5);
        for (int i = 0; i < 5; ++i) {
            EXPECT_EQ(a.run(program, ra).loadValues,
                      b.run(program, rb).loadValues);
        }
    }
}

TEST(Executor, StoreBufferingOutcomeReachableUnderTsoNotSc)
{
    const TestProgram sb = litmus::storeBuffering();
    const std::vector<std::uint32_t> relaxed{kInitValue, kInitValue};

    const auto tso = outcomes(sb, uniformConfig(MemoryModel::TSO), 500);
    EXPECT_TRUE(tso.count(relaxed))
        << "TSO store buffering must allow r0=r1=0";

    const auto sc = outcomes(sb, uniformConfig(MemoryModel::SC), 500);
    EXPECT_FALSE(sc.count(relaxed))
        << "SC must forbid the store-buffering outcome";
}

TEST(Executor, FenceRestoresScForStoreBuffering)
{
    const TestProgram fenced = litmus::storeBufferingFenced();
    const std::vector<std::uint32_t> relaxed{kInitValue, kInitValue};
    for (MemoryModel m :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        EXPECT_FALSE(outcomes(fenced, uniformConfig(m), 500).count(
            relaxed))
            << modelName(m);
    }
}

TEST(Executor, LoadBufferingOutcomeOnlyUnderRmo)
{
    const TestProgram lb = litmus::loadBuffering();
    // Both loads observe the other thread's store.
    const std::vector<std::uint32_t> relaxed{
        lb.op(OpId{1, 1}).value, lb.op(OpId{0, 1}).value};

    EXPECT_TRUE(
        outcomes(lb, uniformConfig(MemoryModel::RMO), 500).count(
            relaxed))
        << "RMO must allow load buffering";
    EXPECT_FALSE(
        outcomes(lb, uniformConfig(MemoryModel::TSO), 500).count(
            relaxed))
        << "TSO must forbid load buffering (paper Figure 2)";
    EXPECT_FALSE(
        outcomes(lb, uniformConfig(MemoryModel::SC), 500).count(
            relaxed));
}

TEST(Executor, MessagePassingRelaxationOnlyUnderRmo)
{
    const TestProgram mp = litmus::messagePassing();
    // flag observed (1), data stale (init).
    const std::vector<std::uint32_t> relaxed{
        mp.op(OpId{0, 1}).value, kInitValue};

    EXPECT_TRUE(
        outcomes(mp, uniformConfig(MemoryModel::RMO), 500).count(
            relaxed));
    EXPECT_FALSE(
        outcomes(mp, uniformConfig(MemoryModel::TSO), 500).count(
            relaxed));
}

TEST(Executor, CorrNeverViolatedOnAnyPlatform)
{
    const TestProgram corr = litmus::corr();
    const std::uint32_t v = corr.op(OpId{0, 0}).value;
    const std::vector<std::uint32_t> bad{v, kInitValue};
    for (MemoryModel m :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        EXPECT_FALSE(outcomes(corr, uniformConfig(m), 500).count(bad))
            << modelName(m) << " platform broke read-read coherence";
    }
}

TEST(Executor, StoreForwardingObserved)
{
    // T0: st x=V; ld x. Under TSO the load always sees V (own store),
    // even though another thread may overwrite x around it... with no
    // other writers the value is always V.
    TestConfig cfg;
    cfg.numThreads = 1;
    cfg.opsPerThread = 2;
    cfg.numLocations = 1;
    std::vector<std::vector<MemOp>> threads(1);
    MemOp store;
    store.kind = OpKind::Store;
    store.loc = 0;
    store.value = storeValue(OpId{0, 0});
    MemOp load;
    load.kind = OpKind::Load;
    load.loc = 0;
    threads[0] = {store, load};
    const TestProgram program(cfg, std::move(threads));

    const auto seen = outcomes(program, uniformConfig(MemoryModel::TSO),
                               100);
    ASSERT_EQ(seen.size(), 1u);
    EXPECT_EQ(*seen.begin(), std::vector<std::uint32_t>{store.value});
}

TEST(Executor, CoherenceOrderExportConsistent)
{
    TestConfig tc = parseConfigName("x86-4-50-16");
    const TestProgram program = generateTest(tc, 6);

    ExecutorConfig cfg = uniformConfig(MemoryModel::TSO);
    cfg.exportCoherenceOrder = true;
    OperationalExecutor platform(cfg);
    Rng rng(9);

    for (int run = 0; run < 10; ++run) {
        const Execution execution = platform.run(program, rng);
        ASSERT_EQ(execution.coherenceOrder.size(), 16u);
        for (std::uint32_t loc = 0; loc < 16; ++loc) {
            const auto &order = execution.coherenceOrder[loc];
            // Exactly the stores to this location, once each.
            std::multiset<OpId> a(order.begin(), order.end());
            const auto &expect = program.storesTo(loc);
            std::multiset<OpId> b(expect.begin(), expect.end());
            EXPECT_EQ(a, b);
            // Same-thread stores appear in program order.
            for (std::size_t i = 0; i + 1 < order.size(); ++i) {
                for (std::size_t j = i + 1; j < order.size(); ++j) {
                    if (order[i].tid == order[j].tid) {
                        EXPECT_LT(order[i].idx, order[j].idx);
                    }
                }
            }
        }
    }
}

TEST(Executor, DurationPopulated)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-2-50-32"), 2);
    ExecutorConfig cfg = bareMetalConfig(Isa::ARMv7);
    OperationalExecutor platform(cfg);
    Rng rng(4);
    const Execution execution = platform.run(program, rng);
    EXPECT_GT(execution.duration, 0u);
}

TEST(Executor, ConfigValidation)
{
    ExecutorConfig cfg;
    cfg.reorderWindow = 0;
    EXPECT_THROW(OperationalExecutor{cfg}, ConfigError);
    cfg = ExecutorConfig{};
    cfg.reorderWindow = 64;
    EXPECT_THROW(OperationalExecutor{cfg}, ConfigError);
    cfg = ExecutorConfig{};
    cfg.bugProbability = 2.0;
    EXPECT_THROW(OperationalExecutor{cfg}, ConfigError);
    cfg = ExecutorConfig{};
    cfg.bug = BugKind::LsqNoSquash;
    cfg.policy = SchedulingPolicy::UniformRandom;
    EXPECT_THROW(OperationalExecutor{cfg}, ConfigError);
}

TEST(Executor, PresetConfigs)
{
    EXPECT_EQ(bareMetalConfig(Isa::X86).model, MemoryModel::TSO);
    EXPECT_EQ(bareMetalConfig(Isa::ARMv7).model, MemoryModel::RMO);
    EXPECT_GT(osConfig(Isa::ARMv7).timing.preemptProbability, 0.0);
    EXPECT_EQ(scReferenceConfig().model, MemoryModel::SC);
    EXPECT_TRUE(scReferenceConfig().exportCoherenceOrder);
}

// ---------------------------------------------------------------------
// Platform soundness sweep: a bug-free platform must never produce an
// execution its own memory model forbids.
// ---------------------------------------------------------------------

using SoundnessParam =
    std::tuple<const char *, MemoryModel, SchedulingPolicy>;

class ExecutorSoundness
    : public ::testing::TestWithParam<SoundnessParam>
{
};

TEST_P(ExecutorSoundness, NeverViolatesOwnModel)
{
    const auto [config_name, model, policy] = GetParam();
    const TestProgram program =
        generateTest(parseConfigName(config_name), 13);

    ExecutorConfig cfg;
    cfg.model = model;
    cfg.policy = policy;
    cfg.reorderWindow = model == MemoryModel::SC ? 1 : 8;
    OperationalExecutor platform(cfg);

    ConventionalChecker checker(program, model);
    ConventionalStats stats;
    Rng rng(17);
    for (int run = 0; run < 60; ++run) {
        const Execution execution = platform.run(program, rng);
        const DynamicEdgeSet edges = dynamicEdges(program, execution);
        EXPECT_FALSE(checker.checkOne(edges, stats))
            << config_name << " under " << modelName(model);
    }
    EXPECT_EQ(stats.violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExecutorSoundness,
    ::testing::Combine(
        ::testing::Values("x86-2-50-32", "x86-4-50-16", "ARM-4-50-16",
                          "ARM-7-50-64"),
        ::testing::Values(MemoryModel::SC, MemoryModel::TSO,
                          MemoryModel::RMO),
        ::testing::Values(SchedulingPolicy::UniformRandom,
                          SchedulingPolicy::Timed)),
    [](const ::testing::TestParamInfo<SoundnessParam> &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_" + modelName(std::get<1>(info.param)) +
            (std::get<2>(info.param) == SchedulingPolicy::Timed
                 ? "_timed"
                 : "_uniform");
    });

} // anonymous namespace
} // namespace mtc
