/**
 * @file
 * Tests for the static load-value analysis (store_maps construction)
 * and the instrumentation plan (weight multipliers, multi-word
 * overflow handling, signature sizing).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/instr_plan.h"
#include "core/load_analysis.h"
#include "support/error.h"
#include "testgen/generator.h"
#include "testgen/litmus.h"

namespace mtc
{
namespace
{

/** Thread 0: st A; ld A; Thread 1: st A; st A; ld A. */
TestProgram
twoThreadProgram()
{
    TestConfig cfg;
    cfg.numThreads = 2;
    cfg.opsPerThread = 3;
    cfg.numLocations = 1;

    auto st = [](OpId id) {
        MemOp op;
        op.kind = OpKind::Store;
        op.loc = 0;
        op.value = storeValue(id);
        return op;
    };
    auto ld = []() {
        MemOp op;
        op.kind = OpKind::Load;
        op.loc = 0;
        return op;
    };

    std::vector<std::vector<MemOp>> threads{
        {st({0, 0}), ld()},
        {st({1, 0}), st({1, 1}), ld()},
    };
    return TestProgram(cfg, std::move(threads));
}

TEST(LoadAnalysis, CandidateSetsExact)
{
    const TestProgram program = twoThreadProgram();
    LoadValueAnalysis analysis(program);
    ASSERT_EQ(analysis.numLoads(), 2u);

    // Thread 0's load: own store first, then the two t1 stores.
    const auto &t0 = analysis.candidates(program.loadOrdinal(OpId{0, 1}));
    ASSERT_EQ(t0.cardinality(), 3u);
    EXPECT_EQ(t0.values[0], storeValue(OpId{0, 0}));
    EXPECT_EQ(t0.values[1], storeValue(OpId{1, 0}));
    EXPECT_EQ(t0.values[2], storeValue(OpId{1, 1}));

    // Thread 1's load: own *latest* store first, then the t0 store.
    const auto &t1 = analysis.candidates(program.loadOrdinal(OpId{1, 2}));
    ASSERT_EQ(t1.cardinality(), 2u);
    EXPECT_EQ(t1.values[0], storeValue(OpId{1, 1}));
    EXPECT_EQ(t1.values[1], storeValue(OpId{0, 0}));

    EXPECT_EQ(analysis.totalCandidates(), 5u);
}

TEST(LoadAnalysis, InitWhenNoOwnStore)
{
    const TestProgram program = litmus::messagePassing();
    LoadValueAnalysis analysis(program);
    // T1's flag load: init + T0's flag store.
    const auto &flag =
        analysis.candidates(program.loadOrdinal(OpId{1, 0}));
    ASSERT_EQ(flag.cardinality(), 2u);
    EXPECT_EQ(flag.values[0], kInitValue);
    EXPECT_EQ(flag.values[1], program.op(OpId{0, 1}).value);
}

TEST(LoadAnalysis, IndexOfFindsValues)
{
    const TestProgram program = twoThreadProgram();
    LoadValueAnalysis analysis(program);
    const auto &set = analysis.candidates(0);
    for (std::uint32_t i = 0; i < set.cardinality(); ++i)
        EXPECT_EQ(set.indexOf(set.values[i]), i);
    EXPECT_FALSE(set.indexOf(0xabcdefu).has_value());
}

TEST(LoadAnalysis, PruningShrinksCandidates)
{
    TestConfig cfg;
    cfg.numThreads = 3;
    cfg.opsPerThread = 100;
    cfg.numLocations = 4; // heavy same-address traffic
    const TestProgram program = generateTest(cfg, 3);

    LoadValueAnalysis full(program);
    AnalysisOptions prune;
    prune.pruneWindow = 2;
    LoadValueAnalysis pruned(program, prune);

    EXPECT_LT(pruned.totalCandidates(), full.totalCandidates());
    // Pruned sets must be subsets of the full sets.
    for (std::uint32_t l = 0; l < full.numLoads(); ++l) {
        const auto &big = full.candidates(l).values;
        for (std::uint32_t v : pruned.candidates(l).values)
            EXPECT_NE(std::find(big.begin(), big.end(), v), big.end());
    }
}

TEST(InstrumentationPlan, MultipliersAreCumulativeProducts)
{
    const TestProgram program = twoThreadProgram();
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis, 64);

    // One load per thread: multiplier 1 each, single word per thread.
    EXPECT_EQ(plan.slot(program.loadOrdinal(OpId{0, 1})).multiplier, 1u);
    EXPECT_EQ(plan.slot(program.loadOrdinal(OpId{1, 2})).multiplier, 1u);
    EXPECT_EQ(plan.wordsForThread(0), 1u);
    EXPECT_EQ(plan.wordsForThread(1), 1u);
    EXPECT_EQ(plan.totalWords(), 2u);
    EXPECT_EQ(plan.wordBase(0), 0u);
    EXPECT_EQ(plan.wordBase(1), 1u);
    EXPECT_EQ(plan.signatureBytes(), 16u);
}

TEST(InstrumentationPlan, SequentialLoadsMultiply)
{
    // One thread with three loads of a location written by 2 other-
    // thread stores + no own store: cardinality 3 each -> multipliers
    // 1, 3, 9.
    TestConfig cfg;
    cfg.numThreads = 2;
    cfg.opsPerThread = 3;
    cfg.numLocations = 1;
    auto ld = [] {
        MemOp op;
        op.kind = OpKind::Load;
        op.loc = 0;
        return op;
    };
    auto st = [](OpId id) {
        MemOp op;
        op.kind = OpKind::Store;
        op.loc = 0;
        op.value = storeValue(id);
        return op;
    };
    std::vector<std::vector<MemOp>> threads{
        {ld(), ld(), ld()},
        {st({1, 0}), st({1, 1})},
    };
    const TestProgram program(cfg, std::move(threads));
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis, 64);

    EXPECT_EQ(plan.slot(0).multiplier, 1u);
    EXPECT_EQ(plan.slot(1).multiplier, 3u);
    EXPECT_EQ(plan.slot(2).multiplier, 9u);
    EXPECT_EQ(plan.wordsForThread(0), 1u);
    // The storeless thread still flushes one always-zero word.
    EXPECT_EQ(plan.wordsForThread(1), 1u);
}

TEST(InstrumentationPlan, OverflowStartsNewWord)
{
    // 32-bit words: cardinality-3 loads overflow after 20 loads
    // (3^21 > 2^32), so 25 loads need a second word.
    TestConfig cfg;
    cfg.numThreads = 2;
    cfg.opsPerThread = 25;
    cfg.numLocations = 1;
    std::vector<std::vector<MemOp>> threads(2);
    for (std::uint32_t i = 0; i < 25; ++i) {
        MemOp ld;
        ld.kind = OpKind::Load;
        ld.loc = 0;
        threads[0].push_back(ld);
        MemOp st;
        st.kind = OpKind::Store;
        st.loc = 0;
        st.value = storeValue(OpId{1, i});
        threads[1].push_back(st);
    }
    const TestProgram program(cfg, std::move(threads));
    LoadValueAnalysis analysis(program);

    InstrumentationPlan plan32(program, analysis, 32);
    EXPECT_GT(plan32.wordsForThread(0), 1u);
    InstrumentationPlan plan64(program, analysis, 64);
    EXPECT_LT(plan64.wordsForThread(0), plan32.wordsForThread(0));

    // Multipliers reset at word boundaries.
    std::uint32_t word = 0;
    for (std::uint32_t l = 0; l < 25; ++l) {
        const LoadSlot &slot = plan32.slot(l);
        if (slot.wordIndex != word) {
            EXPECT_EQ(slot.wordIndex, word + 1);
            EXPECT_EQ(slot.multiplier, 1u);
            word = slot.wordIndex;
        }
    }
}

TEST(InstrumentationPlan, WordBitsValidated)
{
    const TestProgram program = twoThreadProgram();
    LoadValueAnalysis analysis(program);
    auto make_bad_plan = [&] {
        InstrumentationPlan plan16(program, analysis, 16);
    };
    EXPECT_THROW(make_bad_plan(), ConfigError);
    // Defaults follow the ISA: ARM -> 32-bit words.
    TestConfig arm_cfg = program.config();
    arm_cfg.isa = Isa::ARMv7;
    TestProgram arm_program(arm_cfg, program.threadBodies());
    InstrumentationPlan arm_plan(arm_program,
                                 LoadValueAnalysis(arm_program));
    EXPECT_EQ(arm_plan.wordBits(), 32u);
}

TEST(InstrumentationPlan, CardinalityEstimateMatchesPaperExample)
{
    // Section 3.2: S=L=50, A=32, T=2 -> ~2.7e20.
    TestConfig cfg;
    cfg.numThreads = 2;
    cfg.opsPerThread = 100; // 50 loads + 50 stores
    cfg.numLocations = 32;
    const double estimate = InstrumentationPlan::estimateCardinality(cfg);
    EXPECT_GT(estimate, 1e20);
    EXPECT_LT(estimate, 1e21);
}

TEST(InstrumentationPlan, DistinctSlotsForRandomTests)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-100-64"), 8);
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    // Within one (thread, word) the multiplier must equal the product
    // of the cardinalities of the preceding loads in that word — that
    // is exactly what makes weights non-aliasing (paper Figure 3).
    for (std::uint32_t tid = 0; tid < program.numThreads(); ++tid) {
        std::uint64_t expected = 1;
        std::uint32_t word = 0;
        for (OpId load : program.loadsOfThread(tid)) {
            const std::uint32_t ordinal = program.loadOrdinal(load);
            const LoadSlot &slot = plan.slot(ordinal);
            if (slot.wordIndex != word) {
                EXPECT_EQ(slot.wordIndex, word + 1);
                word = slot.wordIndex;
                expected = 1;
            }
            EXPECT_EQ(slot.multiplier, expected);
            expected *= analysis.candidates(ordinal).cardinality();
        }
    }
}

} // anonymous namespace
} // namespace mtc
