/**
 * @file
 * Execution-sandbox tests: the shared frame codec, the async-signal-
 * safe emergency log sink, the process plumbing, the pre-forked worker
 * pool, and the sandboxed campaign mode.
 *
 * The contracts under test are sharp: a sandboxed campaign summary
 * must be bit-identical to the in-process summary at any worker count
 * (plain, fault-injected, and across a journaled resume in either
 * direction); a REAL fatal signal in a worker must be contained,
 * classified, charged to the crash budget, and must not stop any
 * other unit; a worker that wedges non-cooperatively must be
 * SIGKILLed within the documented 2x-deadline bound; rlimit breaches
 * must classify as their own loss kinds; and the strict MTC_SANDBOX*
 * environment parsing must reject garbage.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "harness/campaign.h"
#include "harness/campaign_journal.h"
#include "harness/sandbox.h"
#include "support/framing.h"
#include "support/log.h"
#include "support/process.h"
#include "testgen/generator.h"

namespace mtc
{
namespace
{

namespace fs = std::filesystem;

/** Unique scratch path that cleans up after itself. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : p((fs::temp_directory_path() /
             ("mtc_sbx_" + name + "_" +
              std::to_string(static_cast<std::uint64_t>(::getpid()))))
                .string())
    {
        std::remove(p.c_str());
    }

    ~TempFile() { std::remove(p.c_str()); }

    const std::string &path() const { return p; }

  private:
    std::string p;
};

// ---------------------------------------------------------------------
// Frame codec shared by the journal and the pipe IPC.
// ---------------------------------------------------------------------

TEST(FrameCodec, AppendParseRoundTripsIncludingEmptyPayload)
{
    const std::vector<std::vector<std::uint8_t>> payloads = {
        {}, {0x42}, {1, 2, 3, 4, 5}, std::vector<std::uint8_t>(777, 9)};
    std::vector<std::uint8_t> stream;
    for (const auto &p : payloads)
        appendFrame(stream, p.data(), p.size());

    std::size_t off = 0;
    for (const auto &p : payloads) {
        const FrameView view =
            parseFrame(stream.data() + off, stream.size() - off);
        ASSERT_EQ(view.status, FrameStatus::Complete);
        ASSERT_EQ(view.length, p.size());
        EXPECT_EQ(std::vector<std::uint8_t>(view.payload,
                                            view.payload + view.length),
                  p);
        EXPECT_EQ(view.frameBytes, kFrameHeaderBytes + p.size());
        off += view.frameBytes;
    }
    EXPECT_EQ(off, stream.size());
}

TEST(FrameCodec, TruncationIsIncompleteAtEveryCut)
{
    std::vector<std::uint8_t> stream;
    const std::vector<std::uint8_t> payload = {7, 8, 9};
    appendFrame(stream, payload.data(), payload.size());
    for (std::size_t cut = 0; cut < stream.size(); ++cut)
        EXPECT_EQ(parseFrame(stream.data(), cut).status,
                  FrameStatus::Incomplete)
            << "cut at " << cut;
}

TEST(FrameCodec, CorruptionIsDetected)
{
    std::vector<std::uint8_t> stream;
    const std::vector<std::uint8_t> payload = {10, 20, 30, 40};
    appendFrame(stream, payload.data(), payload.size());

    // Payload bit flip: checksum mismatch.
    auto flipped = stream;
    flipped[kFrameHeaderBytes + 1] ^= 0x01;
    EXPECT_EQ(parseFrame(flipped.data(), flipped.size()).status,
              FrameStatus::Corrupt);

    // Length-word bit flip: the header self-check catches it without
    // consulting the (now meaningless) length.
    auto torn = stream;
    torn[1] ^= 0x01;
    EXPECT_EQ(parseFrame(torn.data(), torn.size()).status,
              FrameStatus::Corrupt);

    // Absurd length word with a *valid* header check (a forger, not a
    // bit flip): corruption via the ceiling, not a gigabyte
    // allocation.
    auto absurd = stream;
    putLe32(absurd.data(), 0xFFFFFFFFu);
    putLe32(absurd.data() + 4, fnv1a32(absurd.data(), 4));
    EXPECT_EQ(parseFrame(absurd.data(), absurd.size()).status,
              FrameStatus::Corrupt);
}

TEST(FrameCodec, PipeRoundTripAndCleanEof)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const std::vector<std::uint8_t> a = {1, 2, 3};
    const std::vector<std::uint8_t> b = {};
    writeFrame(fds[1], a, "test pipe");
    writeFrame(fds[1], b, "test pipe");
    ::close(fds[1]);

    std::vector<std::uint8_t> out;
    EXPECT_TRUE(readFrame(fds[0], out, "test pipe"));
    EXPECT_EQ(out, a);
    EXPECT_TRUE(readFrame(fds[0], out, "test pipe"));
    EXPECT_EQ(out, b);
    // Writer closed between records: clean EOF, not an error.
    EXPECT_FALSE(readFrame(fds[0], out, "test pipe"));
    ::close(fds[0]);
}

TEST(FrameCodec, TornPipeFrameThrows)
{
    std::vector<std::uint8_t> stream;
    const std::vector<std::uint8_t> payload = {5, 6, 7, 8};
    appendFrame(stream, payload.data(), payload.size());

    // The writer dies mid-frame: every proper prefix must read as a
    // torn frame, never as a short success.
    for (std::size_t cut = 1; cut < stream.size(); ++cut) {
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        ASSERT_EQ(::write(fds[1], stream.data(), cut),
                  static_cast<ssize_t>(cut));
        ::close(fds[1]);
        std::vector<std::uint8_t> out;
        EXPECT_THROW(readFrame(fds[0], out, "torn pipe"), FramingError)
            << "cut at " << cut;
        ::close(fds[0]);
    }
}

// ---------------------------------------------------------------------
// Async-signal-safe emergency log sink.
// ---------------------------------------------------------------------

TEST(EmergencyLog, FormatsTextNumbersAndHex)
{
    EmergencyLine line;
    line.text("sig=").num(11).text(" seed=").hex(0xBEEF);
    EXPECT_STREQ(line.cstr(), "sig=11 seed=0xbeef");
    EXPECT_EQ(line.size(), std::string("sig=11 seed=0xbeef").size());

    EmergencyLine zero;
    zero.num(0).text("/").hex(0);
    EXPECT_STREQ(zero.cstr(), "0/0x0");
}

TEST(EmergencyLog, TruncatesInsteadOfOverflowing)
{
    EmergencyLine line;
    const std::string long_text(1000, 'x');
    line.text(long_text.c_str()).num(123456789).hex(0xFFFFFFFFFFFFFFFFull);
    // Fixed 256-byte buffer, one byte reserved for the trailing
    // newline and one for the terminator.
    EXPECT_LT(line.size(), 256u);
    EXPECT_EQ(line.cstr()[line.size()], '\0');
}

TEST(EmergencyLog, WriteToEmitsOneNewlineTerminatedLine)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    EmergencyLine line;
    line.text("crash signal=").num(6);
    line.writeTo(fds[1]);
    ::close(fds[1]);

    char buf[64] = {};
    const ssize_t n = ::read(fds[0], buf, sizeof(buf));
    ::close(fds[0]);
    EXPECT_EQ(std::string(buf, static_cast<std::size_t>(n)),
              "crash signal=6\n");
    // The buffer itself stays newline-free for reuse/printing.
    EXPECT_STREQ(line.cstr(), "crash signal=6");
}

// ---------------------------------------------------------------------
// Process plumbing.
// ---------------------------------------------------------------------

TEST(ProcessPlumbing, WaitChildClassifiesExitAndSignal)
{
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0)
        ::_exit(7);
    ChildExit ex = waitChild(pid);
    EXPECT_FALSE(ex.signaled);
    EXPECT_EQ(ex.exitCode, 7);

    pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::signal(SIGABRT, SIG_DFL);
        ::raise(SIGABRT);
        ::_exit(0);
    }
    ex = waitChild(pid);
    EXPECT_TRUE(ex.signaled);
    EXPECT_EQ(ex.signal, SIGABRT);
}

TEST(ProcessPlumbing, CrashReporterWritesOneLineAndReRaises)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::close(fds[0]);
        installCrashReporter(fds[1]);
        setCrashContext("x86-2-50-32#3", 0xABCDull);
        ::raise(SIGSEGV);
        ::_exit(0); // unreachable: the handler re-raises with SIG_DFL
    }
    ::close(fds[1]);
    const ChildExit ex = waitChild(pid);
    EXPECT_TRUE(ex.signaled);
    EXPECT_EQ(ex.signal, SIGSEGV);

    char buf[256] = {};
    const ssize_t n = ::read(fds[0], buf, sizeof(buf) - 1);
    ::close(fds[0]);
    ASSERT_GT(n, 0);
    const std::string report(buf, static_cast<std::size_t>(n));
    EXPECT_NE(report.find("SIGSEGV"), std::string::npos) << report;
    EXPECT_NE(report.find("x86-2-50-32#3"), std::string::npos) << report;
    EXPECT_NE(report.find("abcd"), std::string::npos) << report;
}

// ---------------------------------------------------------------------
// Worker pool: containment, classification, respawn, hard kill.
// ---------------------------------------------------------------------

using Bytes = std::vector<std::uint8_t>;

SandboxPool::RequestFn
oneBytePerUnit()
{
    return [](std::size_t u) -> std::optional<Bytes> {
        return Bytes{static_cast<std::uint8_t>(u)};
    };
}

TEST(SandboxPoolUnit, DispatchesUnitsAcrossWorkersAndEchoes)
{
    SandboxConfig cfg;
    cfg.workers = 2;
    SandboxPool pool(cfg, [](const Bytes &req, const WorkerEnv &) {
        Bytes resp = req;
        for (auto &byte : resp)
            byte = static_cast<std::uint8_t>(byte + 1);
        return resp;
    });
    std::vector<Bytes> got(8);
    pool.run(
        got.size(), oneBytePerUnit(),
        [&](std::size_t u, const Bytes &p) { got[u] = p; },
        [](std::size_t, const WorkerLoss &) { return false; });
    for (std::size_t u = 0; u < got.size(); ++u) {
        ASSERT_EQ(got[u].size(), 1u) << "unit " << u;
        EXPECT_EQ(got[u][0], u + 1);
    }
    EXPECT_EQ(pool.respawns(), 0u);
}

TEST(SandboxPoolUnit, RealSigsegvIsContainedClassifiedAndRetried)
{
    SandboxConfig cfg;
    cfg.workers = 1;
    SandboxPool pool(cfg, [](const Bytes &req, const WorkerEnv &env) {
        if (req[0] == 1 && env.generation == 0)
            ::raise(SIGSEGV); // a REAL fatal signal, not a throw
        return Bytes{static_cast<std::uint8_t>(env.generation)};
    });

    std::vector<Bytes> got(3);
    std::vector<unsigned> deaths(3, 0);
    WorkerLoss seen;
    pool.run(
        got.size(), oneBytePerUnit(),
        [&](std::size_t u, const Bytes &p) { got[u] = p; },
        [&](std::size_t u, const WorkerLoss &loss) {
            ++deaths[u];
            seen = loss;
            return true; // retry on the respawned worker
        });

    // Only unit 1 lost a worker; the parent survived; the retry ran
    // on generation 1; units 0 and 2 were untouched.
    EXPECT_EQ(deaths[0], 0u);
    EXPECT_EQ(deaths[1], 1u);
    EXPECT_EQ(deaths[2], 0u);
    EXPECT_EQ(seen.kind, WorkerLossKind::Crash);
    EXPECT_EQ(seen.signal, SIGSEGV);
    EXPECT_NE(seen.crashNote.find("SIGSEGV"), std::string::npos)
        << seen.describe();
    ASSERT_EQ(got[1].size(), 1u);
    EXPECT_EQ(got[1][0], 1u); // generation 1 completed it
    EXPECT_EQ(got[0][0], 0u); // ran before the crash
    EXPECT_EQ(got[2][0], 1u); // single slot: also on the respawn
    EXPECT_EQ(pool.respawns(), 1u);
}

TEST(SandboxPoolUnit, AbortAndNonzeroExitClassifyDistinctly)
{
    SandboxConfig cfg;
    cfg.workers = 1;
    SandboxPool pool(cfg, [](const Bytes &req, const WorkerEnv &env) {
        if (env.generation == 0 && req[0] == 0)
            ::abort();
        if (env.generation <= 1 && req[0] == 1)
            ::_exit(23);
        return Bytes{0xAA};
    });

    std::vector<WorkerLoss> losses;
    std::vector<Bytes> got(2);
    pool.run(
        got.size(), oneBytePerUnit(),
        [&](std::size_t u, const Bytes &p) { got[u] = p; },
        [&](std::size_t, const WorkerLoss &loss) {
            losses.push_back(loss);
            return true;
        });

    ASSERT_EQ(losses.size(), 2u);
    EXPECT_EQ(losses[0].kind, WorkerLossKind::Crash);
    EXPECT_EQ(losses[0].signal, SIGABRT);
    EXPECT_EQ(losses[1].kind, WorkerLossKind::ExitCode);
    EXPECT_EQ(losses[1].exitCode, 23);
    EXPECT_EQ(got[0][0], 0xAA);
    EXPECT_EQ(got[1][0], 0xAA);
}

TEST(SandboxPoolUnit, BadAllocClassifiesAsOomBudget)
{
    SandboxConfig cfg;
    cfg.workers = 1;
    SandboxPool pool(cfg, [](const Bytes &, const WorkerEnv &env)
                         -> Bytes {
        if (env.generation == 0)
            throw std::bad_alloc();
        return Bytes{1};
    });

    WorkerLoss seen;
    Bytes got;
    pool.run(
        1, oneBytePerUnit(),
        [&](std::size_t, const Bytes &p) { got = p; },
        [&](std::size_t, const WorkerLoss &loss) {
            seen = loss;
            return true;
        });
    EXPECT_EQ(seen.kind, WorkerLossKind::OomBudget);
    ASSERT_EQ(got.size(), 1u);
}

TEST(SandboxPoolUnit, GiveUpAbandonsOnlyTheLostUnit)
{
    SandboxConfig cfg;
    cfg.workers = 2;
    SandboxPool pool(cfg, [](const Bytes &req, const WorkerEnv &) {
        if (req[0] == 2)
            ::raise(SIGSEGV); // every attempt dies
        return req;
    });
    std::vector<bool> completed(5, false);
    unsigned deaths = 0;
    pool.run(
        completed.size(), oneBytePerUnit(),
        [&](std::size_t u, const Bytes &) { completed[u] = true; },
        [&](std::size_t u, const WorkerLoss &) {
            EXPECT_EQ(u, 2u);
            ++deaths;
            return false; // budget exhausted: give up on this unit
        });
    for (std::size_t u = 0; u < completed.size(); ++u)
        EXPECT_EQ(completed[u], u != 2) << "unit " << u;
    EXPECT_EQ(deaths, 1u);
}

TEST(SandboxPoolUnit, WedgedWorkerIsHardKilledWithinBound)
{
    SandboxConfig cfg;
    cfg.workers = 1;
    cfg.hardDeadlineMs = 300;
    SandboxPool pool(cfg, [](const Bytes &req, const WorkerEnv &env)
                         -> Bytes {
        if (req[0] == 0 && env.generation == 0) {
            // Non-cooperative wedge: ignores everything but SIGKILL.
            for (;;)
                std::this_thread::sleep_for(std::chrono::seconds(1));
        }
        return req;
    });

    WorkerLoss seen;
    std::vector<bool> completed(2, false);
    const auto start = std::chrono::steady_clock::now();
    pool.run(
        completed.size(), oneBytePerUnit(),
        [&](std::size_t u, const Bytes &) { completed[u] = true; },
        [&](std::size_t, const WorkerLoss &loss) {
            seen = loss;
            return false;
        });
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);

    EXPECT_EQ(seen.kind, WorkerLossKind::HardKill);
    EXPECT_FALSE(completed[0]);
    EXPECT_TRUE(completed[1]); // the respawn ran the rest
    // Reclaim bound: well within 2x the hard deadline plus slack for
    // the respawn itself.
    EXPECT_LT(elapsed.count(), 10 * cfg.hardDeadlineMs);
}

TEST(SandboxPoolUnit, CpuBudgetBreachClassifiesAsCpuBudget)
{
    SandboxConfig cfg;
    cfg.workers = 1;
    cfg.cpuLimitS = 1;
    SandboxPool pool(cfg, [](const Bytes &req, const WorkerEnv &env)
                         -> Bytes {
        if (req[0] == 0 && env.generation == 0) {
            volatile std::uint64_t sink = 0;
            for (;;)
                sink = sink + 1; // burn CPU until SIGXCPU
        }
        return req;
    });
    WorkerLoss seen;
    bool completed = false;
    pool.run(
        1, oneBytePerUnit(),
        [&](std::size_t, const Bytes &) { completed = true; },
        [&](std::size_t, const WorkerLoss &loss) {
            seen = loss;
            return true;
        });
    EXPECT_EQ(seen.kind, WorkerLossKind::CpuBudget);
    EXPECT_TRUE(completed);
}

TEST(SandboxPoolUnit, FleetDeathChurnTripsTheBackstop)
{
    SandboxConfig cfg;
    cfg.workers = 1;
    SandboxPool pool(cfg, [](const Bytes &, const WorkerEnv &) -> Bytes {
        ::raise(SIGSEGV); // every attempt, every generation
        return {};
    });
    EXPECT_THROW(
        pool.run(
            2, oneBytePerUnit(),
            [](std::size_t, const Bytes &) {},
            [](std::size_t, const WorkerLoss &) { return true; }),
        SandboxError);
}

// ---------------------------------------------------------------------
// Sandboxed campaigns: bit-identical summaries and real containment.
// ---------------------------------------------------------------------

/** Every deterministic summary field (ms fields excluded: re-run
 * units re-measure wall-clock). */
void
expectSummariesIdentical(const ConfigSummary &a, const ConfigSummary &b)
{
    EXPECT_EQ(a.tests, b.tests);
    EXPECT_EQ(a.avgUniqueSignatures, b.avgUniqueSignatures);
    EXPECT_EQ(a.avgSignatureBytes, b.avgSignatureBytes);
    EXPECT_EQ(a.avgUnrelatedAccesses, b.avgUnrelatedAccesses);
    EXPECT_EQ(a.avgCodeRatio, b.avgCodeRatio);
    EXPECT_EQ(a.avgOriginalKB, b.avgOriginalKB);
    EXPECT_EQ(a.avgInstrumentedKB, b.avgInstrumentedKB);
    EXPECT_EQ(a.collectiveWork, b.collectiveWork);
    EXPECT_EQ(a.conventionalWork, b.conventionalWork);
    EXPECT_EQ(a.collectiveGraphs, b.collectiveGraphs);
    EXPECT_EQ(a.collectiveCompleteSorts, b.collectiveCompleteSorts);
    EXPECT_EQ(a.fracComplete, b.fracComplete);
    EXPECT_EQ(a.fracNoResort, b.fracNoResort);
    EXPECT_EQ(a.fracIncremental, b.fracIncremental);
    EXPECT_EQ(a.avgAffectedFraction, b.avgAffectedFraction);
    EXPECT_EQ(a.avgComputationOverhead, b.avgComputationOverhead);
    EXPECT_EQ(a.avgSortingOverhead, b.avgSortingOverhead);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.injected.totalEvents(), b.injected.totalEvents());
    EXPECT_EQ(a.quarantinedSignatures, b.quarantinedSignatures);
    EXPECT_EQ(a.quarantinedIterations, b.quarantinedIterations);
    EXPECT_EQ(a.confirmedViolations, b.confirmedViolations);
    EXPECT_EQ(a.transientViolations, b.transientViolations);
    EXPECT_EQ(a.crashRetries, b.crashRetries);
    EXPECT_EQ(a.testRetriesUsed, b.testRetriesUsed);
    EXPECT_EQ(a.failedTests, b.failedTests);
    EXPECT_EQ(a.hungTests, b.hungTests);
    EXPECT_EQ(a.hungAttempts, b.hungAttempts);
    EXPECT_EQ(a.skippedTests, b.skippedTests);
    EXPECT_EQ(a.errorEvents, b.errorEvents);
    EXPECT_EQ(a.tripped, b.tripped);
    EXPECT_EQ(a.degraded, b.degraded);
}

std::vector<TestConfig>
sandboxConfigs()
{
    return {parseConfigName("x86-2-50-32"),
            parseConfigName("ARM-2-50-32")};
}

CampaignConfig
smallCampaign()
{
    CampaignConfig campaign;
    campaign.iterations = 64;
    campaign.testsPerConfig = 2;
    campaign.runConventional = false;
    return campaign;
}

CampaignConfig
faultyCampaign()
{
    CampaignConfig campaign = smallCampaign();
    campaign.fault.bitFlipRate = 0.02;
    campaign.fault.tornStoreRate = 0.01;
    campaign.fault.dropRate = 0.01;
    campaign.recovery.confirmationRuns = 2;
    campaign.recovery.crashRetries = 1;
    return campaign;
}

TEST(SandboxCampaign, SummaryBitIdenticalAtAnyWorkerCount)
{
    const CampaignConfig base = smallCampaign();
    const auto baseline = runCampaign(sandboxConfigs(), base);

    for (unsigned workers : {1u, 2u, 8u}) {
        CampaignConfig sandboxed = base;
        sandboxed.mode = ExecutionMode::Sandboxed;
        sandboxed.threads = workers;
        const auto run = runCampaign(sandboxConfigs(), sandboxed);
        ASSERT_EQ(run.size(), baseline.size());
        for (std::size_t i = 0; i < run.size(); ++i)
            expectSummariesIdentical(baseline[i], run[i]);
    }
}

TEST(SandboxCampaign, FaultInjectedSummaryBitIdentical)
{
    const CampaignConfig base = faultyCampaign();
    const auto baseline = runCampaign(sandboxConfigs(), base);

    CampaignConfig sandboxed = base;
    sandboxed.mode = ExecutionMode::Sandboxed;
    sandboxed.threads = 2;
    const auto run = runCampaign(sandboxConfigs(), sandboxed);
    ASSERT_EQ(run.size(), baseline.size());
    for (std::size_t i = 0; i < run.size(); ++i)
        expectSummariesIdentical(baseline[i], run[i]);
}

TEST(SandboxCampaign, JournaledResumeCrossesModesBitIdentically)
{
    const CampaignConfig base = faultyCampaign();
    const auto baseline = runCampaign(sandboxConfigs(), base);

    // Journal an in-process run, tear its tail, resume sandboxed —
    // and the reverse. The journal's identity excludes the execution
    // mode on purpose: where units ran cannot change what they
    // computed.
    TempFile master("resume_master");
    {
        CampaignConfig journaled = base;
        journaled.journalPath = master.path();
        runCampaign(sandboxConfigs(), journaled);
    }
    const auto cut = fs::file_size(master.path()) * 6 / 10 + 3;

    TempFile torn("resume_torn");
    fs::copy_file(master.path(), torn.path(),
                  fs::copy_options::overwrite_existing);
    fs::resize_file(torn.path(), cut);
    CampaignConfig resumed = base;
    resumed.journalPath = torn.path();
    resumed.resume = true;
    resumed.mode = ExecutionMode::Sandboxed;
    resumed.threads = 2;
    const auto after = runCampaign(sandboxConfigs(), resumed);
    ASSERT_EQ(after.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i)
        expectSummariesIdentical(baseline[i], after[i]);

    // Reverse direction: journal written sandboxed, resumed in
    // process.
    TempFile sbx_master("resume_sbx_master");
    {
        CampaignConfig journaled = base;
        journaled.journalPath = sbx_master.path();
        journaled.mode = ExecutionMode::Sandboxed;
        journaled.threads = 2;
        runCampaign(sandboxConfigs(), journaled);
    }
    TempFile sbx_torn("resume_sbx_torn");
    fs::copy_file(sbx_master.path(), sbx_torn.path(),
                  fs::copy_options::overwrite_existing);
    fs::resize_file(sbx_torn.path(),
                    fs::file_size(sbx_master.path()) / 2 + 3);
    CampaignConfig back = base;
    back.journalPath = sbx_torn.path();
    back.resume = true;
    const auto inproc = runCampaign(sandboxConfigs(), back);
    ASSERT_EQ(inproc.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i)
        expectSummariesIdentical(baseline[i], inproc[i]);
}

TEST(SandboxCampaign, DieDrillIsContainedAndChargedToCrashBudget)
{
    CampaignConfig campaign = smallCampaign();
    campaign.mode = ExecutionMode::Sandboxed;
    campaign.threads = 1;
    campaign.dieAfterRuns = 3; // third run of the first unit SIGSEGVs
    campaign.recovery.crashRetries = 1;

    const ConfigSummary summary =
        runConfig(parseConfigName("x86-2-50-32"), campaign);

    // The campaign survived a REAL SIGSEGV: every test completed (the
    // respawned worker is unarmed), the death was charged like an
    // in-flow platform crash.
    EXPECT_EQ(summary.tests, campaign.testsPerConfig);
    EXPECT_EQ(summary.failedTests, 0u);
    EXPECT_GE(summary.crashRetries, 1u);
    EXPECT_GE(summary.violations, 1u); // platform crash flags the test
}

TEST(SandboxCampaign, DieDrillHonorsAlternateSignal)
{
    CampaignConfig campaign = smallCampaign();
    campaign.testsPerConfig = 1;
    campaign.mode = ExecutionMode::Sandboxed;
    campaign.threads = 1;
    campaign.dieAfterRuns = 2;
    campaign.dieSignal = SIGABRT;
    campaign.recovery.crashRetries = 1;

    const ConfigSummary summary =
        runConfig(parseConfigName("x86-2-50-32"), campaign);
    EXPECT_EQ(summary.tests, 1u);
    EXPECT_GE(summary.crashRetries, 1u);
}

TEST(SandboxCampaign, ExhaustedCrashBudgetFailsOnlyTheDyingUnit)
{
    CampaignConfig campaign = smallCampaign();
    campaign.mode = ExecutionMode::Sandboxed;
    campaign.threads = 1;
    campaign.dieAfterRuns = 1;
    campaign.recovery.crashRetries = 0; // first death exhausts it

    const ConfigSummary summary =
        runConfig(parseConfigName("x86-2-50-32"), campaign);
    EXPECT_EQ(summary.failedTests, 1u);
    // The other unit still completed on the same (respawned) fleet.
    EXPECT_EQ(summary.tests, campaign.testsPerConfig - 1);
}

TEST(SandboxCampaign, LeakDrillClassifiesAsOomAndRecovers)
{
    CampaignConfig campaign = smallCampaign();
    campaign.testsPerConfig = 1;
    campaign.mode = ExecutionMode::Sandboxed;
    campaign.threads = 1;
    campaign.leakAfterRuns = 2;
    campaign.recovery.crashRetries = 1;
    // The bomb self-caps below 1 GB, so this passes with or without
    // RLIMIT_AS support (sanitizer builds skip the rlimit).
    if (sandboxMemLimitSupported())
        campaign.sandboxMemMb = 512;

    const ConfigSummary summary =
        runConfig(parseConfigName("x86-2-50-32"), campaign);
    EXPECT_EQ(summary.tests, 1u);
    EXPECT_EQ(summary.failedTests, 0u);
    EXPECT_GE(summary.crashRetries, 1u);
}

TEST(SandboxCampaign, UncooperativeHangIsReclaimedWithinHardBound)
{
    CampaignConfig campaign = smallCampaign();
    campaign.testsPerConfig = 1;
    campaign.testRetries = 0;
    campaign.mode = ExecutionMode::Sandboxed;
    campaign.threads = 1;
    campaign.stallAfterSteps = 40;
    campaign.stallUncooperative = true; // ignores cancellation
    campaign.testTimeoutMs = 250;

    const auto start = std::chrono::steady_clock::now();
    const ConfigSummary summary =
        runConfig(parseConfigName("x86-2-50-32"), campaign);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);

    // The child's cooperative watchdog cannot reclaim this wedge;
    // only the parent's SIGKILL at the hard deadline
    // (2 x timeout x attempts) can — and it is recorded Hung, not
    // retried.
    EXPECT_EQ(summary.hungTests, 1u);
    EXPECT_EQ(summary.tests, 0u);
    // Generous slack over the 500 ms hard deadline for fork+poll.
    EXPECT_LT(elapsed.count(), 5000);
}

TEST(SandboxCampaign, WorkerDeathsFeedTheCircuitBreaker)
{
    CampaignConfig campaign = smallCampaign();
    campaign.testsPerConfig = 4;
    campaign.mode = ExecutionMode::Sandboxed;
    campaign.threads = 1; // deterministic trip point
    campaign.dieAfterRuns = 1;
    campaign.recovery.crashRetries = 0;
    campaign.errorBudget = 1;

    const ConfigSummary summary =
        runConfig(parseConfigName("x86-2-50-32"), campaign);
    EXPECT_TRUE(summary.tripped);
    EXPECT_EQ(summary.failedTests, 1u);
    EXPECT_EQ(summary.skippedTests, 3u);
}

// ---------------------------------------------------------------------
// Strict environment parsing.
// ---------------------------------------------------------------------

TEST(SandboxEnv, SandboxTogglesAndBudgetsParse)
{
    ::setenv("MTC_SANDBOX", "1", 1);
    ::setenv("MTC_SANDBOX_MEM_MB", "512", 1);
    ::setenv("MTC_SANDBOX_CPU_S", "30", 1);
    const CampaignConfig cfg = CampaignConfig::fromEnv();
    EXPECT_EQ(cfg.mode, ExecutionMode::Sandboxed);
    EXPECT_EQ(cfg.sandboxMemMb, 512u);
    EXPECT_EQ(cfg.sandboxCpuS, 30u);

    ::setenv("MTC_SANDBOX", "0", 1);
    EXPECT_EQ(CampaignConfig::fromEnv().mode, ExecutionMode::InProcess);

    ::unsetenv("MTC_SANDBOX");
    ::unsetenv("MTC_SANDBOX_MEM_MB");
    ::unsetenv("MTC_SANDBOX_CPU_S");
}

TEST(SandboxEnv, GarbageIsRejectedWithConfigError)
{
    ::setenv("MTC_SANDBOX", "yes please", 1);
    EXPECT_THROW(CampaignConfig::fromEnv(), ConfigError);
    ::unsetenv("MTC_SANDBOX");

    ::setenv("MTC_SANDBOX_MEM_MB", "lots", 1);
    EXPECT_THROW(CampaignConfig::fromEnv(), ConfigError);
    ::unsetenv("MTC_SANDBOX_MEM_MB");

    ::setenv("MTC_SANDBOX_CPU_S", "-3", 1);
    EXPECT_THROW(CampaignConfig::fromEnv(), ConfigError);
    ::unsetenv("MTC_SANDBOX_CPU_S");
}

} // namespace
} // namespace mtc
