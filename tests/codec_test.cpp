/**
 * @file
 * Property tests for the signature codec: encode/decode bijection over
 * platform-generated executions, distinct signatures for distinct
 * reads-from sets, assertion on impossible values, and robustness
 * against corrupt signatures.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/instr_plan.h"
#include "core/load_analysis.h"
#include "core/signature_codec.h"
#include "sim/executor.h"
#include "testgen/generator.h"
#include "testgen/litmus.h"

namespace mtc
{
namespace
{

using Param = std::tuple<const char * /*config*/, unsigned /*word bits*/,
                         std::uint64_t /*seed*/>;

class CodecRoundTrip : public ::testing::TestWithParam<Param>
{
};

TEST_P(CodecRoundTrip, EncodeDecodeIsIdentityOnReadsFrom)
{
    const auto [config_name, word_bits, seed] = GetParam();
    const TestProgram program =
        generateTest(parseConfigName(config_name), seed);

    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis, word_bits);
    SignatureCodec codec(program, analysis, plan);

    ExecutorConfig exec = bareMetalConfig(program.config().isa);
    OperationalExecutor platform(exec);
    Rng rng(seed * 97 + 3);

    std::set<std::vector<std::uint32_t>> rf_sets;
    std::set<Signature> signatures;
    for (int run = 0; run < 64; ++run) {
        const Execution execution = platform.run(program, rng);
        const EncodeResult encoded = codec.encode(execution);
        const Execution decoded = codec.decode(encoded.signature);
        EXPECT_EQ(decoded.loadValues, execution.loadValues)
            << "decode must invert encode";

        rf_sets.insert(execution.loadValues);
        signatures.insert(encoded.signature);
    }
    // 1:1 mapping between signatures and interleavings (Section 3.1).
    EXPECT_EQ(rf_sets.size(), signatures.size());
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, CodecRoundTrip,
    ::testing::Values(
        Param{"x86-2-50-32", 64, 1}, Param{"x86-4-100-64", 64, 2},
        Param{"ARM-2-100-32", 32, 3}, Param{"ARM-4-50-64", 32, 4},
        Param{"ARM-7-50-64", 32, 5}, Param{"ARM-2-200-32", 32, 6},
        Param{"x86-7-200-64", 64, 7}),
    [](const ::testing::TestParamInfo<Param> &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_w" + std::to_string(std::get<1>(info.param)) +
            "_s" + std::to_string(std::get<2>(info.param));
    });

TEST(Codec, ExhaustiveBijectionOnSmallProgram)
{
    // Enumerate every candidate-index tuple of a small program and
    // check signature uniqueness + decode correctness exhaustively.
    const TestProgram program = litmus::iriw();
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    const std::uint32_t num_loads =
        static_cast<std::uint32_t>(program.loads().size());
    std::vector<std::uint32_t> indices(num_loads, 0);
    std::set<Signature> seen;
    std::uint64_t combos = 0;

    for (;;) {
        Execution execution;
        execution.loadValues.resize(num_loads);
        for (std::uint32_t l = 0; l < num_loads; ++l) {
            execution.loadValues[l] =
                analysis.candidates(l).values[indices[l]];
        }
        const EncodeResult encoded = codec.encode(execution);
        EXPECT_TRUE(seen.insert(encoded.signature).second)
            << "signature collision";
        EXPECT_EQ(codec.decode(encoded.signature).loadValues,
                  execution.loadValues);
        ++combos;

        // Advance the mixed-radix counter.
        std::uint32_t l = 0;
        while (l < num_loads &&
               ++indices[l] == analysis.candidates(l).cardinality()) {
            indices[l] = 0;
            ++l;
        }
        if (l == num_loads)
            break;
    }
    EXPECT_EQ(combos, 16u); // 4 loads x 2 candidates each
}

TEST(Codec, ChainComparisonsCounted)
{
    const TestProgram program = litmus::messagePassing();
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    // Both loads observing candidate 0 costs 1 comparison each.
    Execution init_read;
    init_read.loadValues = {kInitValue, kInitValue};
    EXPECT_EQ(codec.encode(init_read).comparisons, 2u);

    // Observing candidate 1 walks both chain entries.
    Execution stored_read;
    stored_read.loadValues = {program.op(OpId{0, 1}).value,
                              program.op(OpId{0, 0}).value};
    EXPECT_EQ(codec.encode(stored_read).comparisons, 4u);
}

TEST(Codec, AssertionOnImpossibleValue)
{
    const TestProgram program = litmus::messagePassing();
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    Execution bad;
    bad.loadValues = {0x12345u, kInitValue};
    EXPECT_THROW(codec.encode(bad), SignatureAssertError);
}

TEST(Codec, DecodeRejectsCorruptSignatures)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-2-50-32"), 9);
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    // Wrong word count.
    Signature wrong_size;
    wrong_size.words.assign(plan.totalWords() + 1, 0);
    EXPECT_THROW(codec.decode(wrong_size), SignatureDecodeError);

    // A word beyond the maximum possible accumulated weight decodes to
    // an out-of-range index.
    Signature corrupt;
    corrupt.words.assign(plan.totalWords(), 0);
    corrupt.words[0] = ~std::uint64_t(0);
    EXPECT_THROW(codec.decode(corrupt), SignatureDecodeError);
}

TEST(Codec, BitFlipEveryWordQuarantinesOrDecodesValidly)
{
    // Post-silicon robustness sweep: flip every bit of every word of a
    // known-good signature. Each flip must either be rejected with a
    // correctly classified SignatureDecodeError (quarantinable: right
    // word, sane kind) or decode to a *different valid* execution that
    // re-encodes to the flipped signature — never a crash, never a
    // silent wrong result.
    const TestProgram program =
        generateTest(parseConfigName("x86-4-100-64"), 21);
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    ExecutorConfig exec = bareMetalConfig(program.config().isa);
    OperationalExecutor platform(exec);
    Rng rng(2021);
    const Execution execution = platform.run(program, rng);
    const Signature good = codec.encode(execution).signature;
    ASSERT_EQ(codec.decode(good).loadValues, execution.loadValues);

    std::uint64_t quarantined = 0, survived = 0;
    for (std::uint32_t w = 0; w < good.words.size(); ++w) {
        for (unsigned bit = 0; bit < plan.wordBits(); ++bit) {
            Signature flipped = good;
            flipped.words[w] ^= std::uint64_t{1} << bit;
            try {
                const Execution decoded = codec.decode(flipped);
                // Valid decode of a different word array must yield a
                // different execution (the encoding is a bijection) …
                EXPECT_NE(decoded.loadValues, execution.loadValues)
                    << "word " << w << " bit " << bit;
                // … that is itself in-range (re-encodes losslessly).
                EXPECT_EQ(codec.encode(decoded).signature, flipped)
                    << "word " << w << " bit " << bit;
                ++survived;
            } catch (const SignatureDecodeError &err) {
                EXPECT_TRUE(
                    err.kind() == DecodeFaultKind::IndexOverflow ||
                    err.kind() == DecodeFaultKind::ResidueOverflow)
                    << "word " << w << " bit " << bit;
                // The failure must be pinned to the word we corrupted.
                EXPECT_EQ(err.word(), w)
                    << "word " << w << " bit " << bit;
                EXPECT_LT(err.thread(), program.numThreads());
                ++quarantined;
            }
        }
    }
    // High bits overflow the plan's weight range, so both outcomes
    // must occur across a full sweep.
    EXPECT_GT(quarantined, 0u);
    EXPECT_GT(survived, 0u);
}

TEST(Codec, ZeroSignatureDecodesToAllFirstCandidates)
{
    const TestProgram program = litmus::messagePassing();
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    Signature zero;
    zero.words.assign(plan.totalWords(), 0);
    const Execution decoded = codec.decode(zero);
    for (std::uint32_t l = 0; l < decoded.loadValues.size(); ++l)
        EXPECT_EQ(decoded.loadValues[l], analysis.candidates(l).values[0]);
}

TEST(Signature, OrderingAndHash)
{
    Signature a{{1, 2}}, b{{1, 3}}, c{{2, 0}};
    EXPECT_LT(a, b);
    EXPECT_LT(b, c);
    EXPECT_EQ(a, (Signature{{1, 2}}));

    SignatureHash hash;
    EXPECT_EQ(hash(a), hash(Signature{{1, 2}}));
    EXPECT_NE(hash(a), hash(b));

    EXPECT_EQ(a.toString(), "0x1:0x2");
}

TEST(Codec, ThirtyTwoBitWordsStayInRange)
{
    // ARM plans must never accumulate beyond 32 bits per word.
    const TestProgram program =
        generateTest(parseConfigName("ARM-7-100-64"), 10);
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis, 32);
    SignatureCodec codec(program, analysis, plan);

    ExecutorConfig exec = bareMetalConfig(Isa::ARMv7);
    OperationalExecutor platform(exec);
    Rng rng(77);
    for (int run = 0; run < 32; ++run) {
        const EncodeResult encoded =
            codec.encode(platform.run(program, rng));
        for (std::uint64_t word : encoded.signature.words)
            EXPECT_LE(word, 0xffffffffull);
    }
}

TEST(StreamDecoder, DeltaDecodeBitIdenticalOverSortedUniques)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-100-64"), 21);
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    ExecutorConfig exec = bareMetalConfig(Isa::X86);
    OperationalExecutor platform(exec);
    Rng rng(5);
    std::set<Signature> unique;
    for (int run = 0; run < 96; ++run)
        unique.insert(codec.encode(platform.run(program, rng)).signature);
    ASSERT_GT(unique.size(), 4u);

    // Walking the set in ascending order (the flow's presentation
    // order) must reproduce the full decode exactly, and adjacent
    // sorted signatures must actually share slices.
    StreamDecoder stream(codec);
    for (const Signature &signature : unique) {
        const Execution &delta = stream.next(signature);
        EXPECT_EQ(delta.loadValues, codec.decode(signature).loadValues);
    }
    EXPECT_GT(stream.slicesReused(), 0u);
    EXPECT_EQ(stream.slicesReused() + stream.slicesDecoded(),
              static_cast<std::uint64_t>(unique.size()) *
                  program.numThreads());

    // A second pass over the same sequence reuses every slice except
    // the wrap-around from the last signature back to the first.
    const std::uint64_t decoded_before = stream.slicesDecoded();
    for (const Signature &signature : unique) {
        const Execution &delta = stream.next(signature);
        EXPECT_EQ(delta.loadValues, codec.decode(signature).loadValues);
    }
    // Pass 2 sees the same adjacent transitions, so it never decodes
    // more slices than pass 1 (whose first signature was all-cold).
    EXPECT_LE(stream.slicesDecoded() - decoded_before, decoded_before);
}

TEST(StreamDecoder, CorruptSignaturesThrowIdenticallyAndRecover)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-2-50-32"), 9);
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    Signature corrupt;
    corrupt.words.assign(plan.totalWords(), 0);
    corrupt.words[0] = ~std::uint64_t(0);

    std::string bare_what;
    DecodeFaultKind bare_kind{};
    try {
        codec.decode(corrupt);
        FAIL() << "corrupt signature must not decode";
    } catch (const SignatureDecodeError &err) {
        bare_what = err.what();
        bare_kind = err.kind();
    }

    // A clean signature to interleave with the corrupt one: the
    // stream decoder must classify the fault identically every time
    // and keep decoding correctly after each throw.
    OperationalExecutor platform(bareMetalConfig(Isa::X86));
    Rng rng(3);
    const Signature clean =
        codec.encode(platform.run(program, rng)).signature;
    const Execution full = codec.decode(clean);

    StreamDecoder stream(codec);
    for (int attempt = 0; attempt < 3; ++attempt) {
        try {
            stream.next(corrupt);
            FAIL() << "corrupt signature must not stream-decode";
        } catch (const SignatureDecodeError &err) {
            EXPECT_EQ(std::string(err.what()), bare_what);
            EXPECT_EQ(err.kind(), bare_kind);
        }
        EXPECT_EQ(stream.next(clean).loadValues, full.loadValues);
    }

    // Truncation faults classify identically too.
    Signature truncated = clean;
    truncated.words.pop_back();
    try {
        stream.next(truncated);
        FAIL() << "truncated signature must not stream-decode";
    } catch (const SignatureDecodeError &err) {
        EXPECT_EQ(err.kind(), DecodeFaultKind::WordCountMismatch);
    }
}

TEST(StreamDecoder, ChangedThreadsIsASoundSuperset)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-50-64"), 31);
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    OperationalExecutor platform(bareMetalConfig(Isa::ARMv7));
    Rng rng(31);
    std::set<Signature> unique;
    for (int run = 0; run < 48; ++run)
        unique.insert(codec.encode(platform.run(program, rng)).signature);

    StreamDecoder stream(codec);
    Execution prev;
    bool have_prev = false;
    for (const Signature &signature : unique) {
        const Execution &delta = stream.next(signature);
        if (have_prev) {
            // Any load whose value changed belongs to a reported
            // changed thread; threads outside the list are untouched.
            std::vector<bool> changed(program.numThreads(), false);
            for (std::uint32_t tid : stream.changedThreads())
                changed[tid] = true;
            const auto &loads = program.loads();
            for (std::size_t ordinal = 0; ordinal < loads.size();
                 ++ordinal) {
                if (delta.loadValues[ordinal] !=
                    prev.loadValues[ordinal]) {
                    EXPECT_TRUE(changed[loads[ordinal].tid]);
                }
            }
        }
        prev = delta;
        have_prev = true;
    }
}

} // anonymous namespace
} // namespace mtc
