/**
 * @file
 * Unit tests for the shared executor substrate: OrderTable required-
 * predecessor masks and the CompletionBits windowed-completion
 * queries, whose bit arithmetic underpins every executor's
 * eligibility check.
 */

#include <gtest/gtest.h>

#include "sim/order_table.h"
#include "testgen/generator.h"
#include "testgen/litmus.h"

namespace mtc
{
namespace
{

TEST(CompletionBits, WindowAtThreadStart)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-2-50-32"), 1);
    CompletionBits bits;
    bits.reset(program);

    // Nothing completed: for idx 0 every (non-existent) predecessor
    // reads as complete.
    EXPECT_EQ(bits.windowCompleted(0, 0), ~std::uint32_t(0));

    // idx 5: 27 padding bits (low) complete, 5 real ones incomplete.
    const std::uint32_t m5 = bits.windowCompleted(0, 5);
    EXPECT_EQ(m5, (std::uint32_t(1) << 27) - 1);
}

TEST(CompletionBits, MarksReflectInWindow)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-2-200-32"), 2);
    CompletionBits bits;
    bits.reset(program);

    // Complete ops 0..9 and 12; query idx 14.
    for (std::uint32_t i = 0; i < 10; ++i)
        bits.markCompleted(0, i);
    bits.markCompleted(0, 12);

    const std::uint32_t mask = bits.windowCompleted(0, 14);
    // Bit b covers op 14-32+b: op j is bit j+18.
    for (std::uint32_t j = 0; j < 14; ++j) {
        const bool expect =
            j < 10 || j == 12;
        EXPECT_EQ(((mask >> (j + 18)) & 1) != 0, expect) << "op " << j;
    }
    // Padding (ops -18..-1) complete.
    EXPECT_EQ(mask & ((std::uint32_t(1) << 18) - 1),
              (std::uint32_t(1) << 18) - 1);
}

TEST(CompletionBits, DeepIndicesCrossWordBoundaries)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-2-200-32"), 3);
    CompletionBits bits;
    bits.reset(program);

    // Complete everything below 100 except 70 and 95.
    for (std::uint32_t i = 0; i < 100; ++i)
        if (i != 70 && i != 95)
            bits.markCompleted(0, i);

    const std::uint32_t mask = bits.windowCompleted(0, 100);
    // Window covers ops 68..99; op j at bit j-68.
    for (std::uint32_t j = 68; j < 100; ++j) {
        const bool expect = j != 70 && j != 95;
        EXPECT_EQ(((mask >> (j - 68)) & 1) != 0, expect) << "op " << j;
    }
    EXPECT_TRUE(bits.isCompleted(0, 69));
    EXPECT_FALSE(bits.isCompleted(0, 70));
}

TEST(OrderTable, MasksMatchRequiredOrder)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-2-100-16"), 4);
    for (MemoryModel model :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        OrderTable table;
        table.build(program, model);
        const auto &body = program.threadBodies()[0];
        for (std::uint32_t idx = 0; idx < body.size(); ++idx) {
            for (std::uint32_t b = 0; b < kMaxReorderWindow; ++b) {
                const std::int64_t j =
                    static_cast<std::int64_t>(idx) - 32 + b;
                const bool bit =
                    (table.requiredPreds[0][idx] >> b) & 1;
                if (j < 0) {
                    EXPECT_FALSE(bit);
                } else {
                    EXPECT_EQ(bit,
                              requiredOrder(model,
                                            body[static_cast<
                                                std::uint32_t>(j)],
                                            body[idx]))
                        << modelName(model) << " idx " << idx << " j "
                        << j;
                }
            }
        }
    }
}

TEST(OrderTable, ScRequiresAllRecentPredecessors)
{
    const TestProgram sb = litmus::storeBuffering();
    OrderTable table;
    table.build(sb, MemoryModel::SC);
    // SB thread 0: st; ld. Under SC the load's mask requires the store
    // (bit 31 = op idx-1).
    EXPECT_TRUE((table.requiredPreds[0][1] >> 31) & 1);

    table.build(sb, MemoryModel::TSO);
    EXPECT_FALSE((table.requiredPreds[0][1] >> 31) & 1)
        << "TSO relaxes st->ld";
}

} // anonymous namespace
} // namespace mtc
