/**
 * @file
 * Distributed-fabric tests: the TCP transport, the hardened frame
 * reader, the EINTR discipline, the journal flock, the lease table,
 * the wire protocol, and the fabric failure matrix.
 *
 * The failure matrix pins the tentpole invariant from every angle: a
 * distributed campaign summary must be bit-identical to the serial
 * in-process summary at any fleet size — including when a worker dies
 * mid-batch and its leased units are reassigned, when a silent worker
 * is declared dead by the heartbeat timeout, and when the coordinator
 * itself is killed mid-campaign and resumed from its journal. A
 * version-mismatched worker must be rejected at the handshake without
 * disturbing the fleet, and a slow worker must be throttled by the
 * in-flight bound while fast workers drain the queue.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <pthread.h>
#include <unistd.h>

#include "dist/coordinator.h"
#include "dist/lease_table.h"
#include "dist/protocol.h"
#include "dist/worker_client.h"
#include "harness/campaign.h"
#include "harness/campaign_journal.h"
#include "harness/dist_campaign.h"
#include "support/fault_transport.h"
#include "support/framing.h"
#include "support/hmac.h"
#include "support/process.h"
#include "support/socket.h"
#include "support/transport.h"
#include "testgen/test_config.h"

namespace mtc
{
namespace
{

namespace fs = std::filesystem;

/** Unique scratch path that cleans up after itself. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : p((fs::temp_directory_path() /
             ("mtc_dist_" + name + "_" +
              std::to_string(static_cast<std::uint64_t>(::getpid()))))
                .string())
    {
        std::remove(p.c_str());
    }

    ~TempFile() { std::remove(p.c_str()); }

    const std::string &path() const { return p; }

  private:
    std::string p;
};

// ---------------------------------------------------------------------
// Socket + Transport: the framed codec generalized to TCP.
// ---------------------------------------------------------------------

TEST(SocketTransport, FramesRoundTripBothWaysWithCleanEof)
{
    TcpListener listener(0);
    ASSERT_GT(listener.port(), 0);

    const std::vector<std::uint8_t> ping = {1, 2, 3};
    const std::vector<std::uint8_t> pong(4096, 0xab);

    std::thread peer([&] {
        Transport link(connectTcp("127.0.0.1", listener.port()),
                       "peer");
        link.send(ping);
        std::vector<std::uint8_t> got;
        ASSERT_TRUE(link.receive(got));
        EXPECT_EQ(got, pong);
        link.closeSend();
        // The far side half-closed too: clean EOF, not an error.
        EXPECT_FALSE(link.receive(got));
    });

    Transport link(listener.acceptClient(), "server");
    std::vector<std::uint8_t> got;
    ASSERT_TRUE(link.receive(got));
    EXPECT_EQ(got, ping);
    link.send(pong);
    link.closeSend();
    EXPECT_FALSE(link.receive(got));
    peer.join();
}

TEST(SocketTransport, ConnectToDeadPortThrowsSocketError)
{
    std::uint16_t dead_port;
    {
        TcpListener listener(0);
        dead_port = listener.port();
    } // closed: nothing listens there now
    EXPECT_THROW(connectTcp("127.0.0.1", dead_port), SocketError);
}

// ---------------------------------------------------------------------
// Hardened frame reading: forged length prefixes.
// ---------------------------------------------------------------------

TEST(FrameHardening, ForgedLengthBeyondCallerCeilingIsCorrupt)
{
    std::vector<std::uint8_t> stream;
    const std::vector<std::uint8_t> payload(1024, 7);
    appendFrame(stream, payload.data(), payload.size());

    // Fine under the default ceiling...
    EXPECT_EQ(parseFrame(stream.data(), stream.size()).status,
              FrameStatus::Complete);
    // ...but a reader that tightened its ceiling treats the same
    // header as corruption, before any allocation.
    EXPECT_EQ(parseFrame(stream.data(), stream.size(), 512).status,
              FrameStatus::Corrupt);
}

TEST(FrameHardening, ForgedHeaderOnAStreamThrowsBeforeAllocating)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    // Forge a header claiming a ~4 GB payload — with a valid header
    // check, so the length ceiling (not the self-check) rejects it.
    // No payload follows.
    std::uint8_t header[kFrameHeaderBytes];
    putLe32(header, 0xFFFFFFF0u);
    putLe32(header + 4, fnv1a32(header, 4));
    putLe32(header + 8, 0xdeadbeefu);
    ASSERT_EQ(::write(fds[1], header, sizeof header),
              static_cast<ssize_t>(sizeof header));
    ::close(fds[1]);

    std::vector<std::uint8_t> payload;
    EXPECT_THROW(readFrame(fds[0], payload, "forged"), FramingError);
    ::close(fds[0]);
}

TEST(FrameHardening, CorruptLengthWordFailsFastInsteadOfStalling)
{
    // The bug this guards against: a single bit flipped in the length
    // word once made a blocking reader wait for megabytes of payload
    // that were never sent. The header self-check must classify the
    // frame corrupt from the header alone — no payload read, no
    // deadline needed, no stall.
    std::vector<std::uint8_t> frame;
    const std::vector<std::uint8_t> payload(64, 0xab);
    appendFrame(frame, payload.data(), payload.size());
    frame[2] ^= 0x01; // bit 16 of the length: +65536 bytes claimed

    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    ASSERT_EQ(::write(fds[1], frame.data(), frame.size()),
              static_cast<ssize_t>(frame.size()));
    // Deliberately do NOT close the write end: a reader that trusted
    // the corrupt length would block here forever.
    std::vector<std::uint8_t> out;
    try {
        readFrame(fds[0], out, "bitflipped");
        FAIL() << "corrupt length word was accepted";
    } catch (const FramingError &err) {
        EXPECT_NE(std::string(err.what()).find("header check"),
                  std::string::npos)
            << err.what();
    }
    ::close(fds[1]);
    ::close(fds[0]);
}

TEST(FrameHardening, StalledMidFrameReadHitsTheDeadline)
{
    // A frame that starts and never finishes (slow-loris, or a length
    // the self-check could not catch) must resolve as a FramingError
    // within the receive deadline, not pin the reader forever.
    std::vector<std::uint8_t> frame;
    const std::vector<std::uint8_t> payload(256, 0x5a);
    appendFrame(frame, payload.data(), payload.size());

    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    // Header plus half the payload; the rest is withheld.
    const std::size_t sent = kFrameHeaderBytes + 128;
    ASSERT_EQ(::write(fds[1], frame.data(), sent),
              static_cast<ssize_t>(sent));

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::uint8_t> out;
    try {
        readFrame(fds[0], out, "stalled", kMaxFramePayloadBytes, 200);
        FAIL() << "stalled frame was accepted";
    } catch (const FramingError &err) {
        EXPECT_NE(std::string(err.what()).find("stalled"),
                  std::string::npos)
            << err.what();
    }
    const auto waited =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0);
    // Generous upper bound: the point is "bounded", not "precise".
    EXPECT_LT(waited.count(), 5000);

    ::close(fds[1]);
    ::close(fds[0]);
}

TEST(FrameHardening, TransportHonorsTightenedFrameCeiling)
{
    TcpListener listener(0);
    std::thread peer([&] {
        Transport link(connectTcp("127.0.0.1", listener.port()),
                       "peer");
        try {
            link.send(std::vector<std::uint8_t>(2048, 1));
        } catch (const FramingError &) {
            // The server may reset the connection before the whole
            // frame drains; either way the send side is done.
        }
    });
    Transport link(listener.acceptClient(), "server");
    link.setMaxFramePayload(1024);
    std::vector<std::uint8_t> got;
    EXPECT_THROW(link.receive(got), FramingError);
    peer.join();
}

// ---------------------------------------------------------------------
// EINTR discipline: framed I/O under a signal storm.
// ---------------------------------------------------------------------

TEST(EintrDiscipline, FramedSocketIoSurvivesASignalStorm)
{
    // A no-op handler installed WITHOUT SA_RESTART, so every storm
    // signal genuinely interrupts blocking syscalls with EINTR
    // instead of being transparently restarted by the kernel.
    struct sigaction sa{}, old{};
    sa.sa_handler = [](int) {};
    sa.sa_flags = 0;
    sigemptyset(&sa.sa_mask);
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

    TcpListener listener(0);
    constexpr int kFrames = 200;
    const std::vector<std::uint8_t> big(64 * 1024, 0x5c);

    std::atomic<bool> storm_on{true};
    pthread_t reader_handle = ::pthread_self();

    std::thread writer([&] {
        Transport link(connectTcp("127.0.0.1", listener.port()),
                       "writer");
        for (int i = 0; i < kFrames; ++i)
            link.send(big);
        link.closeSend();
        // Hold the socket until the reader drains everything.
        std::vector<std::uint8_t> nothing;
        link.receive(nothing);
    });
    std::thread storm([&] {
        while (storm_on.load()) {
            ::pthread_kill(reader_handle, SIGUSR1);
            ::pthread_kill(writer.native_handle(), SIGUSR1);
            std::this_thread::sleep_for(std::chrono::microseconds(300));
        }
    });

    Transport link(listener.acceptClient(), "reader");
    std::vector<std::uint8_t> got;
    int received = 0;
    while (link.receive(got)) {
        ASSERT_EQ(got, big);
        ++received;
    }
    EXPECT_EQ(received, kFrames);

    storm_on.store(false);
    storm.join();
    link.close(); // unblocks the writer's parked receive
    writer.join();
    ::sigaction(SIGUSR1, &old, nullptr);
}

// ---------------------------------------------------------------------
// Journal flock: one campaign per journal file.
// ---------------------------------------------------------------------

TEST(JournalLock, SecondOpenerGetsConfigErrorWhileFirstIsAlive)
{
    TempFile journal("flock");
    CampaignJournal::Identity identity;
    identity.digest = 42;
    identity.description = "flock test";

    CampaignJournal first(journal.path(), identity, false);
    // Both fresh-open and resume must refuse: truncating (or even
    // reading) a journal another campaign is appending to is the
    // corruption the lock exists to prevent.
    EXPECT_THROW(CampaignJournal(journal.path(), identity, false),
                 ConfigError);
    EXPECT_THROW(CampaignJournal(journal.path(), identity, true),
                 ConfigError);
}

TEST(JournalLock, LockReleasesWithTheJournalObject)
{
    TempFile journal("flock_release");
    CampaignJournal::Identity identity;
    identity.digest = 43;
    identity.description = "flock release test";

    { CampaignJournal first(journal.path(), identity, false); }
    // First holder gone: a fresh campaign opens cleanly.
    EXPECT_NO_THROW(CampaignJournal(journal.path(), identity, false));
}

TEST(JournalLock, RejectedOpenDoesNotLeakTheLock)
{
    TempFile journal("flock_reject");
    CampaignJournal::Identity identity;
    identity.digest = 44;
    identity.description = "flock reject test";

    { CampaignJournal first(journal.path(), identity, false); }

    // A resume under a different campaign identity is rejected from
    // inside the constructor — after the flock is taken. The throw
    // must release the lock, or one bad resume would wedge every
    // later attempt in this process behind "locked by another
    // campaign".
    CampaignJournal::Identity other;
    other.digest = 45;
    other.description = "some other campaign";
    EXPECT_THROW(CampaignJournal(journal.path(), other, true),
                 ConfigError);

    EXPECT_NO_THROW(CampaignJournal(journal.path(), identity, true));
}

// ---------------------------------------------------------------------
// Lease table: no unit lost, no unit double-counted.
// ---------------------------------------------------------------------

TEST(LeaseTableTest, PendingGrantsInDispatchOrder)
{
    LeaseTable table(5);
    EXPECT_EQ(table.pendingCount(), 5u);
    EXPECT_EQ(table.takePending(2),
              (std::vector<std::size_t>{0, 1}));
    EXPECT_EQ(table.takePending(99),
              (std::vector<std::size_t>{2, 3, 4}));
    EXPECT_EQ(table.pendingCount(), 0u);
    EXPECT_FALSE(table.allDone());
}

TEST(LeaseTableTest, FirstResultWinsDuplicatesDetected)
{
    LeaseTable table(3);
    const auto units = table.takePending(2);
    const std::uint64_t lease = table.openLease(
        7, units, LeaseTable::Clock::time_point::max());

    EXPECT_EQ(table.completeUnit(lease, 0), LeaseResult::Accepted);
    EXPECT_TRUE(table.isDone(0));
    // Same unit again under the same (still-open) lease: duplicate.
    EXPECT_EQ(table.completeUnit(lease, 0), LeaseResult::Duplicate);
    // Last unit closes the lease automatically...
    EXPECT_EQ(table.completeUnit(lease, 1), LeaseResult::Accepted);
    EXPECT_EQ(table.openLeaseCount(7), 0u);
    // ...so a stale report quoting it is Duplicate (unit done), and a
    // never-granted lease over a not-done unit is Unknown.
    EXPECT_EQ(table.completeUnit(lease, 1), LeaseResult::Duplicate);
    EXPECT_EQ(table.completeUnit(999, 2), LeaseResult::Unknown);
    EXPECT_FALSE(table.allDone());
}

TEST(LeaseTableTest, RevocationRequeuesUnfinishedUnitsAtTheFront)
{
    LeaseTable table(5);
    const auto batch = table.takePending(3); // {0,1,2}
    const std::uint64_t lease = table.openLease(
        1, batch, LeaseTable::Clock::time_point::max());
    EXPECT_EQ(table.completeUnit(lease, 1), LeaseResult::Accepted);

    // Worker dies: units 0 and 2 must come back, ahead of 3 and 4.
    EXPECT_EQ(table.revokeLease(lease),
              (std::vector<std::size_t>{0, 2}));
    EXPECT_EQ(table.takePending(99),
              (std::vector<std::size_t>{0, 2, 3, 4}));
    // The revoked lease is gone: its late results are not Accepted.
    EXPECT_NE(table.completeUnit(lease, 0), LeaseResult::Accepted);
}

TEST(LeaseTableTest, ExpiryAndCompletionAccounting)
{
    LeaseTable table(4);
    const auto now = LeaseTable::Clock::now();
    const std::uint64_t stale = table.openLease(
        1, table.takePending(2), now - std::chrono::seconds(1));
    const std::uint64_t fresh = table.openLease(
        2, table.takePending(2), now + std::chrono::hours(1));

    EXPECT_EQ(table.expired(now),
              (std::vector<std::uint64_t>{stale}));
    EXPECT_EQ(table.leasesOf(1),
              (std::vector<std::uint64_t>{stale}));

    table.revokeLease(stale);
    for (std::size_t u : {0u, 1u})
        EXPECT_EQ(table.completeUnit(fresh, u + 2),
                  LeaseResult::Accepted)
            << u;
    for (std::size_t u : table.takePending(99))
        table.markDone(u);
    EXPECT_TRUE(table.allDone());
    EXPECT_EQ(table.unitsDone(), 4u);
}

TEST(LeaseTableTest, MarkDoneRemovesTheUnitFromPending)
{
    LeaseTable table(3);
    table.markDone(1); // e.g. journal replay resolved it
    EXPECT_EQ(table.takePending(99),
              (std::vector<std::size_t>{0, 2}));
    EXPECT_TRUE(table.isDone(1));
}

// ---------------------------------------------------------------------
// Wire protocol codec.
// ---------------------------------------------------------------------

TEST(FabricProtocol, MessagesRoundTrip)
{
    HelloMsg hello;
    hello.version = 3;
    hello.name = "rig-07";
    const HelloMsg hello2 = decodeHello(encodeHello(hello));
    EXPECT_EQ(hello2.version, 3u);
    EXPECT_EQ(hello2.name, "rig-07");

    WelcomeMsg welcome;
    welcome.spec = {9, 8, 7};
    EXPECT_EQ(decodeWelcome(encodeWelcome(welcome)).spec,
              welcome.spec);

    RejectMsg reject;
    reject.reason = "version 3, expected 1";
    EXPECT_EQ(decodeReject(encodeReject(reject)).reason,
              reject.reason);

    LeaseMsg lease;
    lease.leaseId = 11;
    lease.units = {{4, {1, 2}}, {5, {}}};
    const LeaseMsg lease2 = decodeLease(encodeLease(lease));
    EXPECT_EQ(lease2.leaseId, 11u);
    ASSERT_EQ(lease2.units.size(), 2u);
    EXPECT_EQ(lease2.units[0].unitIndex, 4u);
    EXPECT_EQ(lease2.units[0].request,
              (std::vector<std::uint8_t>{1, 2}));
    EXPECT_TRUE(lease2.units[1].request.empty());

    ResultMsg result;
    result.leaseId = 11;
    result.unitIndex = 4;
    result.response = {0xaa};
    const ResultMsg result2 = decodeResult(encodeResult(result));
    EXPECT_EQ(result2.leaseId, 11u);
    EXPECT_EQ(result2.unitIndex, 4u);
    EXPECT_EQ(result2.response, (std::vector<std::uint8_t>{0xaa}));

    EXPECT_EQ(peekType(encodeHeartbeat()), FabricMsg::Heartbeat);
    EXPECT_EQ(peekType(encodeDone()), FabricMsg::Done);
}

TEST(FabricProtocol, MalformedPayloadsThrowDistError)
{
    EXPECT_THROW(peekType({}), DistError);
    EXPECT_THROW(peekType({0xff}), DistError);
    // Wrong tag for the decoder.
    EXPECT_THROW(decodeHello(encodeDone()), DistError);
    // Truncated body (current version, so the auth fields are
    // expected and their absence is malformed, not version skew).
    HelloMsg torn_src;
    torn_src.version = kDistProtocolVersion;
    torn_src.name = "worker";
    auto torn = encodeHello(torn_src);
    torn.resize(torn.size() / 2);
    EXPECT_THROW(decodeHello(torn), DistError);
}

TEST(FabricProtocol, CampaignSpecRoundTripsAndRejectsGarbage)
{
    CampaignSpec spec;
    spec.configs = {parseConfigName("x86-2-50-32"),
                    parseConfigName("ARM-4-100-64")};
    spec.campaign.iterations = 96;
    spec.campaign.testsPerConfig = 5;
    spec.campaign.seed = 99;
    spec.campaign.fault.bitFlipRate = 0.01;
    spec.campaign.recovery.crashRetries = 3;
    spec.campaign.testTimeoutMs = 1234;

    const CampaignSpec back =
        decodeCampaignSpec(encodeCampaignSpec(spec));
    ASSERT_EQ(back.configs.size(), 2u);
    EXPECT_EQ(back.configs[0].name(), spec.configs[0].name());
    EXPECT_EQ(back.configs[1].name(), spec.configs[1].name());
    EXPECT_EQ(back.campaign.iterations, 96u);
    EXPECT_EQ(back.campaign.testsPerConfig, 5u);
    EXPECT_EQ(back.campaign.seed, 99u);
    EXPECT_EQ(back.campaign.fault.bitFlipRate, 0.01);
    EXPECT_EQ(back.campaign.recovery.crashRetries, 3u);
    EXPECT_EQ(back.campaign.testTimeoutMs, 1234u);

    EXPECT_THROW(decodeCampaignSpec({1, 2, 3}), DistError);
}

// ---------------------------------------------------------------------
// Coordinator + worker client, in-process (thread workers).
// ---------------------------------------------------------------------

/** Trivial unit semantics for fabric-only tests: the response echoes
 * the request with one byte appended. */
std::vector<std::uint8_t>
echoUnit(std::uint64_t, const std::vector<std::uint8_t> &request)
{
    std::vector<std::uint8_t> response = request;
    response.push_back(0x99);
    return response;
}

TEST(Fabric, VersionMismatchedWorkerRejectedAtHandshake)
{
    FabricConfig cfg;
    cfg.batchSize = 1;
    Coordinator coordinator(cfg, {0xde, 0xad});

    std::atomic<bool> bad_rejected{false};
    std::thread bad([&] {
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "stale-build";
        wc.protocolVersion = kDistProtocolVersion + 7;
        wc.heartbeatMs = 50;
        try {
            runWorkerClient(wc, [](const auto &) {}, echoUnit);
        } catch (const DistError &) {
            bad_rejected.store(true); // fatal, no retry
        }
    });
    std::thread good([&] {
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "good";
        wc.heartbeatMs = 50;
        runWorkerClient(wc, [](const auto &) {}, echoUnit);
    });

    std::vector<bool> seen(4, false);
    coordinator.run(
        4,
        [](std::size_t u) {
            return std::optional<std::vector<std::uint8_t>>(
                std::vector<std::uint8_t>{
                    static_cast<std::uint8_t>(u)});
        },
        [&](std::size_t u, const std::vector<std::uint8_t> &payload) {
            EXPECT_FALSE(seen[u]) << "unit double-counted";
            seen[u] = true;
            ASSERT_EQ(payload.size(), 2u);
            EXPECT_EQ(payload[0], static_cast<std::uint8_t>(u));
            EXPECT_EQ(payload[1], 0x99);
        },
        [](std::size_t, unsigned, const std::string &) {
            return true;
        });
    bad.join();
    good.join();

    EXPECT_TRUE(bad_rejected.load());
    EXPECT_EQ(coordinator.stats().workersRejected, 1u);
    for (std::size_t u = 0; u < seen.size(); ++u)
        EXPECT_TRUE(seen[u]) << "unit " << u << " never resolved";
}

TEST(Fabric, SlowWorkerThrottledByBackpressureNotTheFleet)
{
    FabricConfig cfg;
    cfg.batchSize = 1;
    cfg.maxInFlightPerWorker = 1; // the backpressure bound under test
    Coordinator coordinator(cfg, {});

    constexpr std::size_t kUnits = 8;
    WorkerRunStats fast_stats, slow_stats;
    std::thread fast([&] {
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "fast";
        wc.heartbeatMs = 50;
        // Not instant: on a loaded single-core host an instant worker
        // can drain every unit (closing the listener) before the slow
        // thread's first connect, which the slow client rightly
        // reports as an unreachable coordinator. The campaign must
        // outlive both connects for the throttling claim to mean
        // anything.
        wc.unitDelayMs = 20;
        fast_stats =
            runWorkerClient(wc, [](const auto &) {}, echoUnit);
    });
    std::thread slow([&] {
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "slow";
        wc.heartbeatMs = 50;
        wc.unitDelayMs = 200; // the "slow host" drill
        slow_stats =
            runWorkerClient(wc, [](const auto &) {}, echoUnit);
    });

    std::size_t results = 0;
    coordinator.run(
        kUnits,
        [](std::size_t u) {
            return std::optional<std::vector<std::uint8_t>>(
                std::vector<std::uint8_t>{
                    static_cast<std::uint8_t>(u)});
        },
        [&](std::size_t, const std::vector<std::uint8_t> &) {
            ++results;
        },
        [](std::size_t, unsigned, const std::string &) {
            return true;
        });
    fast.join();
    slow.join();

    // Every unit resolved exactly once, the slow worker held at most
    // its in-flight bound while the fast worker drained the queue,
    // and heartbeats kept the slow worker alive through its delays.
    EXPECT_EQ(results, kUnits);
    EXPECT_EQ(fast_stats.unitsExecuted + slow_stats.unitsExecuted,
              kUnits);
    EXPECT_GT(fast_stats.unitsExecuted, slow_stats.unitsExecuted);
    EXPECT_EQ(coordinator.stats().duplicateResults, 0u);
    EXPECT_GT(coordinator.stats().heartbeats, 0u);
}

TEST(Fabric, SilentWorkerDeclaredDeadAndItsLeaseReassigned)
{
    FabricConfig cfg;
    cfg.batchSize = 2;
    cfg.heartbeatTimeoutMs = 250; // aggressive, for the test
    Coordinator coordinator(cfg, {});

    // A hand-rolled worker that handshakes, accepts a lease, then
    // goes silent — no results, no heartbeats. The coordinator must
    // declare it dead at the liveness timeout and reassign.
    std::thread silent([&] {
        Transport link(connectTcp("127.0.0.1", coordinator.port()),
                       "silent");
        HelloMsg hello;
        hello.name = "silent";
        link.send(encodeHello(hello));
        std::vector<std::uint8_t> msg;
        ASSERT_TRUE(link.receive(msg)); // Welcome
        ASSERT_TRUE(link.receive(msg)); // a Lease it will never serve
        EXPECT_EQ(peekType(msg), FabricMsg::Lease);
        std::this_thread::sleep_for(std::chrono::milliseconds(800));
        link.close();
    });
    std::thread good([&] {
        // Arrives late so the silent worker gets leased first.
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "good";
        wc.heartbeatMs = 50;
        runWorkerClient(wc, [](const auto &) {}, echoUnit);
    });

    std::vector<bool> seen(4, false);
    coordinator.run(
        4,
        [](std::size_t u) {
            return std::optional<std::vector<std::uint8_t>>(
                std::vector<std::uint8_t>{
                    static_cast<std::uint8_t>(u)});
        },
        [&](std::size_t u, const std::vector<std::uint8_t> &) {
            EXPECT_FALSE(seen[u]) << "unit double-counted";
            seen[u] = true;
        },
        [](std::size_t, unsigned, const std::string &) {
            return true;
        });
    silent.join();
    good.join();

    EXPECT_GE(coordinator.stats().workersLost, 1u);
    EXPECT_GE(coordinator.stats().unitsReassigned, 1u);
    for (std::size_t u = 0; u < seen.size(); ++u)
        EXPECT_TRUE(seen[u]) << "unit " << u << " never resolved";
}

// ---------------------------------------------------------------------
// Distributed campaigns: the bit-identity gate.
// ---------------------------------------------------------------------

/** Every deterministic summary field (ms fields excluded: re-run
 * units re-measure wall-clock). */
void
expectSummariesIdentical(const ConfigSummary &a, const ConfigSummary &b)
{
    EXPECT_EQ(a.tests, b.tests);
    EXPECT_EQ(a.avgUniqueSignatures, b.avgUniqueSignatures);
    EXPECT_EQ(a.avgSignatureBytes, b.avgSignatureBytes);
    EXPECT_EQ(a.avgUnrelatedAccesses, b.avgUnrelatedAccesses);
    EXPECT_EQ(a.avgCodeRatio, b.avgCodeRatio);
    EXPECT_EQ(a.avgOriginalKB, b.avgOriginalKB);
    EXPECT_EQ(a.avgInstrumentedKB, b.avgInstrumentedKB);
    EXPECT_EQ(a.collectiveWork, b.collectiveWork);
    EXPECT_EQ(a.conventionalWork, b.conventionalWork);
    EXPECT_EQ(a.collectiveGraphs, b.collectiveGraphs);
    EXPECT_EQ(a.collectiveCompleteSorts, b.collectiveCompleteSorts);
    EXPECT_EQ(a.fracComplete, b.fracComplete);
    EXPECT_EQ(a.fracNoResort, b.fracNoResort);
    EXPECT_EQ(a.fracIncremental, b.fracIncremental);
    EXPECT_EQ(a.avgAffectedFraction, b.avgAffectedFraction);
    EXPECT_EQ(a.avgComputationOverhead, b.avgComputationOverhead);
    EXPECT_EQ(a.avgSortingOverhead, b.avgSortingOverhead);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.injected.totalEvents(), b.injected.totalEvents());
    EXPECT_EQ(a.quarantinedSignatures, b.quarantinedSignatures);
    EXPECT_EQ(a.quarantinedIterations, b.quarantinedIterations);
    EXPECT_EQ(a.confirmedViolations, b.confirmedViolations);
    EXPECT_EQ(a.transientViolations, b.transientViolations);
    EXPECT_EQ(a.crashRetries, b.crashRetries);
    EXPECT_EQ(a.testRetriesUsed, b.testRetriesUsed);
    EXPECT_EQ(a.failedTests, b.failedTests);
    EXPECT_EQ(a.hungTests, b.hungTests);
    EXPECT_EQ(a.hungAttempts, b.hungAttempts);
    EXPECT_EQ(a.skippedTests, b.skippedTests);
    EXPECT_EQ(a.errorEvents, b.errorEvents);
    EXPECT_EQ(a.tripped, b.tripped);
    EXPECT_EQ(a.degraded, b.degraded);
}

std::vector<TestConfig>
fabricConfigs()
{
    return {parseConfigName("x86-2-50-32"),
            parseConfigName("ARM-2-50-32")};
}

CampaignConfig
smallCampaign()
{
    CampaignConfig campaign;
    campaign.iterations = 64;
    campaign.testsPerConfig = 2;
    campaign.runConventional = false;
    return campaign;
}

void
expectCampaignsIdentical(const std::vector<ConfigSummary> &a,
                         const std::vector<ConfigSummary> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(a[i].cfg.name());
        expectSummariesIdentical(a[i], b[i]);
    }
}

TEST(DistributedCampaign, SummaryBitIdenticalAtAnyFleetSize)
{
    const CampaignConfig base = smallCampaign();
    const auto baseline = runCampaign(fabricConfigs(), base);

    for (unsigned workers : {1u, 3u}) {
        SCOPED_TRACE("fleet size " + std::to_string(workers));
        CampaignConfig dist = base;
        dist.mode = ExecutionMode::Distributed;
        dist.distWorkers = workers;
        expectCampaignsIdentical(baseline,
                                 runCampaign(fabricConfigs(), dist));
    }
}

TEST(DistributedCampaign, FaultInjectedSummaryBitIdentical)
{
    CampaignConfig base = smallCampaign();
    base.fault.bitFlipRate = 0.02;
    base.fault.dropRate = 0.01;
    base.recovery.confirmationRuns = 2;
    const auto baseline = runCampaign(fabricConfigs(), base);

    CampaignConfig dist = base;
    dist.mode = ExecutionMode::Distributed;
    dist.distWorkers = 2;
    expectCampaignsIdentical(baseline,
                             runCampaign(fabricConfigs(), dist));
}

TEST(DistributedCampaign, WorkerDeathMidBatchKeepsSummaryBitIdentical)
{
    const CampaignConfig base = smallCampaign();
    const auto baseline = runCampaign(fabricConfigs(), base);

    // Loopback worker 0 _exit()s abruptly after its first result,
    // leaving the rest of its lease unreported. The lease must be
    // revoked, its units reassigned and re-executed — and because a
    // fabric loss is never charged as a platform crash, the summary
    // (crashRetries included) stays bit-identical to serial.
    CampaignConfig dist = base;
    dist.mode = ExecutionMode::Distributed;
    dist.distWorkers = 2;
    dist.distBatch = 2;
    dist.distDrillExitAfter = 1;
    expectCampaignsIdentical(baseline,
                             runCampaign(fabricConfigs(), dist));
}

TEST(DistributedCampaign, CoordinatorCrashResumesFromJournalBitIdentically)
{
    const CampaignConfig base = smallCampaign();
    const auto baseline = runCampaign(fabricConfigs(), base);

    TempFile journal("coord_crash");
    {
        CampaignConfig first = base;
        first.mode = ExecutionMode::Distributed;
        first.distWorkers = 2;
        first.journalPath = journal.path();
        runCampaign(fabricConfigs(), first);
    }
    // Simulate the coordinator dying mid-campaign: chop the journal
    // so only a prefix of unit records (plus possibly a torn tail)
    // survives, exactly what a SIGKILL mid-append leaves behind.
    const std::uintmax_t full = fs::file_size(journal.path());
    fs::resize_file(journal.path(), full * 2 / 3);

    CampaignConfig resumed = base;
    resumed.mode = ExecutionMode::Distributed;
    resumed.distWorkers = 2;
    resumed.journalPath = journal.path();
    resumed.resume = true;
    expectCampaignsIdentical(baseline,
                             runCampaign(fabricConfigs(), resumed));
}

TEST(DistributedCampaign, JournalWrittenSeriallyResumesDistributed)
{
    const CampaignConfig base = smallCampaign();
    const auto baseline = runCampaign(fabricConfigs(), base);

    // The journal identity excludes the execution mode on purpose:
    // where units ran cannot change what they computed, so a serial
    // journal resumes onto the fabric (and replays bit-identically).
    TempFile journal("cross_mode");
    {
        CampaignConfig serial = base;
        serial.journalPath = journal.path();
        runCampaign(fabricConfigs(), serial);
    }
    CampaignConfig dist = base;
    dist.mode = ExecutionMode::Distributed;
    dist.distWorkers = 2;
    dist.journalPath = journal.path();
    dist.resume = true;
    expectCampaignsIdentical(baseline,
                             runCampaign(fabricConfigs(), dist));
}

// ---------------------------------------------------------------------
// Authenticated transport: keyed handshakes, rejections, hardening.
// ---------------------------------------------------------------------

/** A fabric key file on disk (32 printable bytes + newline). */
class TempKeyFile
{
  public:
    explicit TempKeyFile(const std::string &name, char fill = 'k')
        : file("key_" + name)
    {
        std::ofstream out(file.path(), std::ios::binary);
        out << std::string(32, fill) << "\n";
    }

    const std::string &path() const { return file.path(); }
    std::vector<std::uint8_t> key() const
    {
        return loadFabricKey(path());
    }

  private:
    TempFile file;
};

/** Drives a 4-unit echo campaign to completion on @p coordinator. */
void
serveEchoUnits(Coordinator &coordinator, std::size_t units = 4)
{
    std::vector<bool> seen(units, false);
    coordinator.run(
        units,
        [](std::size_t u) {
            return std::optional<std::vector<std::uint8_t>>(
                std::vector<std::uint8_t>{
                    static_cast<std::uint8_t>(u)});
        },
        [&](std::size_t u, const std::vector<std::uint8_t> &payload) {
            EXPECT_FALSE(seen[u]) << "unit double-counted";
            seen[u] = true;
            ASSERT_EQ(payload.size(), 2u);
            EXPECT_EQ(payload[0], static_cast<std::uint8_t>(u));
            EXPECT_EQ(payload[1], 0x99);
        },
        [](std::size_t, unsigned, const std::string &) {
            return true;
        });
    for (std::size_t u = 0; u < seen.size(); ++u)
        EXPECT_TRUE(seen[u]) << "unit " << u << " never resolved";
}

TEST(FabricAuth, KeyedHandshakeServesUnitsOverMacedFrames)
{
    const TempKeyFile keyfile("handshake");
    FabricConfig cfg;
    cfg.batchSize = 1;
    cfg.key = keyfile.key();
    Coordinator coordinator(cfg, {0xaa, 0xbb});

    std::atomic<bool> got_spec{false};
    std::thread worker([&] {
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "keyed";
        wc.heartbeatMs = 50;
        wc.key = keyfile.key();
        runWorkerClient(
            wc,
            [&](const std::vector<std::uint8_t> &spec) {
                got_spec.store(spec ==
                               std::vector<std::uint8_t>{0xaa, 0xbb});
            },
            echoUnit);
    });

    serveEchoUnits(coordinator);
    worker.join();

    EXPECT_TRUE(got_spec.load());
    EXPECT_GE(coordinator.stats().workersConnected, 1u);
    EXPECT_EQ(coordinator.stats().authFailures, 0u);
}

TEST(FabricAuth, KeylessWorkerRejectedByKeyedCoordinatorBeforeAnyLease)
{
    const TempKeyFile keyfile("keyless_reject");
    FabricConfig cfg;
    cfg.batchSize = 1;
    cfg.key = keyfile.key();
    Coordinator coordinator(cfg, {0x01});

    std::atomic<bool> bad_rejected{false};
    WorkerRunStats bad_stats;
    std::thread bad([&] {
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "no-key";
        wc.heartbeatMs = 50;
        try {
            bad_stats =
                runWorkerClient(wc, [](const auto &) {}, echoUnit);
        } catch (const DistError &) {
            bad_rejected.store(true); // Reject is fatal: no retry
        }
    });
    std::thread good([&] {
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "good";
        wc.heartbeatMs = 50;
        wc.key = keyfile.key();
        runWorkerClient(wc, [](const auto &) {}, echoUnit);
    });

    serveEchoUnits(coordinator);
    bad.join();
    good.join();

    EXPECT_TRUE(bad_rejected.load());
    EXPECT_EQ(bad_stats.unitsExecuted, 0u);
    EXPECT_GE(coordinator.stats().authFailures, 1u);
    EXPECT_GE(coordinator.stats().workersRejected, 1u);
}

TEST(FabricAuth, WrongKeyFailsBothProofDirections)
{
    const TempKeyFile keyfile("right", 'r');
    const TempKeyFile wrongfile("wrong", 'w');
    FabricConfig cfg;
    cfg.batchSize = 1;
    cfg.key = keyfile.key();
    Coordinator coordinator(cfg, {0x02});

    // A wrong-key worker detects the coordinator's bad server proof
    // and refuses to reveal its own — mutual authentication, so a
    // rogue coordinator cannot harvest client proofs either.
    std::atomic<bool> bad_refused{false};
    WorkerRunStats bad_stats;
    std::thread bad([&] {
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "wrong-key";
        wc.heartbeatMs = 50;
        wc.key = wrongfile.key();
        try {
            bad_stats =
                runWorkerClient(wc, [](const auto &) {}, echoUnit);
        } catch (const DistError &err) {
            bad_refused.store(
                std::string(err.what()).find("key proof") !=
                std::string::npos);
        }
    });

    // A hand-rolled peer that answers the challenge with a garbage
    // proof: the coordinator must refuse it before any lease.
    std::thread forger([&] {
        Transport link(connectTcp("127.0.0.1", coordinator.port()),
                       "forger");
        HelloMsg hello;
        hello.name = "forger";
        hello.wantAuth = true;
        hello.nonce = randomNonce();
        link.send(encodeHello(hello));
        std::vector<std::uint8_t> msg;
        ASSERT_TRUE(link.receive(msg));
        ASSERT_EQ(peekType(msg), FabricMsg::Challenge);
        link.send(encodeAuthProof(AuthProofMsg{})); // all-zero proof
        // Whatever follows — a Reject or a straight hangup — the
        // session must end without a Lease ever arriving.
        try {
            while (link.receive(msg))
                ASSERT_NE(peekType(msg), FabricMsg::Lease);
        } catch (const FramingError &) {
        }
        link.close();
    });

    std::thread good([&] {
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "good";
        wc.heartbeatMs = 50;
        wc.key = keyfile.key();
        runWorkerClient(wc, [](const auto &) {}, echoUnit);
    });

    serveEchoUnits(coordinator);
    bad.join();
    forger.join();
    good.join();

    EXPECT_TRUE(bad_refused.load());
    EXPECT_EQ(bad_stats.unitsExecuted, 0u);
    EXPECT_GE(coordinator.stats().authFailures, 1u);
}

TEST(FabricAuth, KeyedWorkerRefusesKeylessCoordinator)
{
    FabricConfig cfg;
    cfg.batchSize = 1;
    Coordinator coordinator(cfg, {0x03}); // keyless

    const TempKeyFile keyfile("demanding");
    std::atomic<bool> refused{false};
    std::thread keyed([&] {
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "demanding";
        wc.heartbeatMs = 50;
        wc.key = keyfile.key();
        try {
            runWorkerClient(wc, [](const auto &) {}, echoUnit);
        } catch (const DistError &err) {
            // An honest keyless coordinator refuses outright — the
            // mismatch is a deployment error either way.
            refused.store(std::string(err.what())
                              .find("requires key authentication") !=
                          std::string::npos);
        }
    });
    std::thread good([&] {
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "good";
        wc.heartbeatMs = 50;
        runWorkerClient(wc, [](const auto &) {}, echoUnit);
    });

    serveEchoUnits(coordinator);
    keyed.join();
    good.join();

    EXPECT_TRUE(refused.load());
    EXPECT_GE(coordinator.stats().authFailures, 1u);
}

TEST(FabricAuth, KeyedWorkerRefusesDowngradeToUnauthenticatedWelcome)
{
    // A rogue (or misbuilt) coordinator that skips the challenge and
    // sends a bare Welcome: the keyed worker must refuse to join
    // rather than silently downgrade to an unauthenticated session.
    TcpListener listener(0);
    std::thread rogue([&] {
        Transport link(listener.acceptClient(), "rogue");
        std::vector<std::uint8_t> msg;
        ASSERT_TRUE(link.receive(msg)); // Hello (wantAuth set)
        EXPECT_TRUE(decodeHello(msg).wantAuth);
        WelcomeMsg welcome;
        welcome.spec = {0xde};
        link.send(encodeWelcome(welcome)); // downgrade attempt
        while (true) {
            try {
                if (!link.receive(msg))
                    break;
            } catch (const FramingError &) {
                break;
            }
        }
        link.close();
    });

    const TempKeyFile keyfile("downgrade");
    WorkerClientConfig wc;
    wc.port = listener.port();
    wc.name = "demanding";
    wc.heartbeatMs = 50;
    wc.key = keyfile.key();
    wc.maxReconnects = 0; // one shot: the downgrade must not loop
    wc.backoffBaseMs = 1;
    bool spec_seen = false;
    try {
        runWorkerClient(
            wc, [&](const auto &) { spec_seen = true; }, echoUnit);
        ADD_FAILURE() << "worker joined an unauthenticated session";
    } catch (const DistError &err) {
        EXPECT_NE(std::string(err.what()).find("unauthenticated"),
                  std::string::npos)
            << err.what();
    }
    EXPECT_FALSE(spec_seen);
    rogue.join();
}

TEST(FabricAuth, PreAuthCeilingDropsOversizedFirstFrame)
{
    FabricConfig cfg;
    cfg.batchSize = 1;
    Coordinator coordinator(cfg, {0x04});

    std::thread flooder([&] {
        // An unauthenticated peer's very first frame claims a payload
        // far beyond any legitimate Hello: the coordinator must drop
        // the connection instead of buffering it.
        Transport link(connectTcp("127.0.0.1", coordinator.port()),
                       "flooder");
        const std::vector<std::uint8_t> big(
            kPreAuthFramePayloadBytes * 2, 0x5a);
        std::vector<std::uint8_t> msg;
        bool dropped = false;
        try {
            link.send(big);
            dropped = !link.receive(msg);
        } catch (const FramingError &) {
            dropped = true; // RST mid-conversation is also a drop
        }
        EXPECT_TRUE(dropped);
        link.close();
    });
    std::thread good([&] {
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "good";
        wc.heartbeatMs = 50;
        runWorkerClient(wc, [](const auto &) {}, echoUnit);
    });

    serveEchoUnits(coordinator);
    flooder.join();
    good.join();
}

TEST(FabricAuth, SilentPeerDroppedAtHandshakeDeadline)
{
    FabricConfig cfg;
    cfg.batchSize = 1;
    cfg.handshakeTimeoutMs = 100;
    Coordinator coordinator(cfg, {0x05});

    std::thread lurker([&] {
        // Connects and says nothing: must be evicted at the deadline,
        // not allowed to pin a poll-loop slot forever.
        Transport link(connectTcp("127.0.0.1", coordinator.port()),
                       "lurker");
        std::vector<std::uint8_t> msg;
        bool dropped = false;
        try {
            dropped = !link.receive(msg);
        } catch (const FramingError &) {
            dropped = true;
        }
        EXPECT_TRUE(dropped);
        link.close();
    });
    std::thread good([&] {
        // Arrive after the lurker so its eviction is observable while
        // units are still pending.
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        WorkerClientConfig wc;
        wc.port = coordinator.port();
        wc.name = "good";
        wc.heartbeatMs = 50;
        runWorkerClient(wc, [](const auto &) {}, echoUnit);
    });

    serveEchoUnits(coordinator);
    lurker.join();
    good.join();

    EXPECT_GE(coordinator.stats().handshakeTimeouts, 1u);
}

// ---------------------------------------------------------------------
// Network fault injection: wire-level semantics + the chaos gate.
// ---------------------------------------------------------------------

TEST(NetFaults, DropCorruptAndDuplicateSemanticsOnTheWire)
{
    // drop: the frame vanishes; the peer sees only the clean EOF.
    {
        TcpListener listener(0);
        std::thread peer([&] {
            Transport raw(connectTcp("127.0.0.1", listener.port()),
                          "drop-peer");
            NetFaultConfig nf;
            nf.send.drop = 1.0;
            nf.seed = 42;
            FaultyTransport link(std::move(raw), nf);
            link.send({1, 2, 3});
            EXPECT_EQ(link.stats().sendDrops, 1u);
            link.close();
        });
        Transport server(listener.acceptClient(), "drop-server");
        std::vector<std::uint8_t> got;
        EXPECT_FALSE(server.receive(got));
        peer.join();
    }
    // corrupt: the frame arrives bit-flipped and the checksum catches
    // it — corruption can break a connection, never forge a payload.
    {
        TcpListener listener(0);
        std::thread peer([&] {
            Transport raw(connectTcp("127.0.0.1", listener.port()),
                          "corrupt-peer");
            NetFaultConfig nf;
            nf.send.corrupt = 1.0;
            nf.seed = 42;
            FaultyTransport link(std::move(raw), nf);
            link.send({1, 2, 3});
            link.close();
        });
        Transport server(listener.acceptClient(), "corrupt-server");
        std::vector<std::uint8_t> got;
        EXPECT_THROW(server.receive(got), FramingError);
        peer.join();
    }
    // duplicate (receive side): the same payload is delivered twice.
    {
        TcpListener listener(0);
        std::thread peer([&] {
            Transport link(connectTcp("127.0.0.1", listener.port()),
                           "dup-peer");
            link.send({7, 8, 9});
            link.close();
        });
        Transport raw(listener.acceptClient(), "dup-server");
        NetFaultConfig nf;
        nf.recv.duplicate = 1.0;
        nf.seed = 42;
        FaultyTransport server(std::move(raw), nf);
        std::vector<std::uint8_t> a, b;
        ASSERT_TRUE(server.receive(a));
        ASSERT_TRUE(server.receive(b));
        EXPECT_EQ(a, (std::vector<std::uint8_t>{7, 8, 9}));
        EXPECT_EQ(a, b);
        EXPECT_EQ(server.stats().recvDuplicates, 1u);
        peer.join();
    }
}

TEST(NetFaults, CampaignSummaryBitIdenticalUnderInjectedFaults)
{
    const CampaignConfig base = smallCampaign();
    const auto baseline = runCampaign(fabricConfigs(), base);

    // The chaos gate: seeded drop/dup/corrupt on every fabric
    // connection may slow the campaign down, but the merged summary
    // must not move by a bit — faults can break connections, never
    // results.
    CampaignConfig dist = base;
    dist.mode = ExecutionMode::Distributed;
    dist.distWorkers = 2;
    dist.distNetFault.send.drop = 0.05;
    dist.distNetFault.recv.drop = 0.05;
    dist.distNetFault.send.duplicate = 0.05;
    dist.distNetFault.recv.duplicate = 0.05;
    dist.distNetFault.send.corrupt = 0.03;
    dist.distNetFault.recv.corrupt = 0.03;
    dist.distNetFault.seed = 11;
    expectCampaignsIdentical(baseline,
                             runCampaign(fabricConfigs(), dist));
}

// ---------------------------------------------------------------------
// Byzantine-worker quarantine.
// ---------------------------------------------------------------------

TEST(Byzantine, UnitRecordDigestIgnoresTimingButNotSubstance)
{
    UnitRecord rec;
    rec.configName = "x86-2-50-32";
    rec.testIndex = 3;
    rec.genSeed = 0x1111;
    rec.flowSeed = 0x2222;
    rec.outcome.result.uniqueSignatures = 17;
    rec.outcome.result.collectiveMs = 12.5;

    const std::uint64_t digest =
        unitRecordDigest(encodeUnitRecord(rec));

    // Two honest executions differ only in wall-clock: same digest.
    UnitRecord slower = rec;
    slower.outcome.result.collectiveMs = 99.0;
    slower.outcome.result.decodeMs = 3.25;
    EXPECT_EQ(unitRecordDigest(encodeUnitRecord(slower)), digest);

    // A plausible lie differs in substance: different digest.
    UnitRecord lie = rec;
    lie.outcome.result.uniqueSignatures += 1;
    EXPECT_NE(unitRecordDigest(encodeUnitRecord(lie)), digest);

    // Undecodable bytes still digest (under a distinct seed) instead
    // of throwing — a garbage result must be comparable, not fatal.
    const std::vector<std::uint8_t> garbage = {9, 9, 9};
    EXPECT_NE(unitRecordDigest(garbage), digest);
}

TEST(Byzantine, HonestFleetPassesAuditsWithoutQuarantine)
{
    const CampaignConfig base = smallCampaign();
    const auto baseline = runCampaign(fabricConfigs(), base);

    FabricStats fs;
    CampaignConfig dist = base;
    dist.mode = ExecutionMode::Distributed;
    dist.distWorkers = 2;
    dist.distAuditRate = 1.0;
    dist.distStatsOut = &fs;
    expectCampaignsIdentical(baseline,
                             runCampaign(fabricConfigs(), dist));

    EXPECT_GE(fs.byzantine.auditsScheduled, 1u);
    EXPECT_EQ(fs.byzantine.auditMismatches, 0u);
    EXPECT_TRUE(fs.byzantine.quarantined.empty());
}

TEST(Byzantine, CorruptWorkerQuarantinedAndSummaryBitIdentical)
{
    const CampaignConfig base = smallCampaign();
    const auto baseline = runCampaign(fabricConfigs(), base);

    // The last loopback worker silently corrupts every result —
    // decodable, plausible, checksum-clean. The audit must catch the
    // deviation, quarantine the worker, invalidate whatever it
    // touched, and re-run those units elsewhere — landing on a
    // summary bit-identical to the honest serial run.
    FabricStats fs;
    CampaignConfig dist = base;
    dist.mode = ExecutionMode::Distributed;
    dist.distWorkers = 2;
    dist.distAuditRate = 1.0;
    dist.distDrillCorrupt = true;
    dist.distStatsOut = &fs;
    expectCampaignsIdentical(baseline,
                             runCampaign(fabricConfigs(), dist));

    EXPECT_GE(fs.byzantine.auditMismatches, 1u);
    ASSERT_EQ(fs.byzantine.quarantined.size(), 1u);
    EXPECT_EQ(fs.byzantine.quarantined[0], "loop-1");
}

// ---------------------------------------------------------------------
// Strict env parsing for the fabric knobs.
// ---------------------------------------------------------------------

TEST(FabricEnv, ParseEnvRateAcceptsTheUnitIntervalOnly)
{
    EXPECT_EQ(parseEnvRate("X", "0"), 0.0);
    EXPECT_EQ(parseEnvRate("X", "1"), 1.0);
    EXPECT_EQ(parseEnvRate("X", "0.25"), 0.25);

    for (const char *bad :
         {"", "lots", "0.5x", "-0.1", "1.0001", "2", "nan", "-"}) {
        EXPECT_THROW((void)parseEnvRate("MTC_AUDIT_RATE", bad),
                     ConfigError)
            << "accepted \"" << bad << "\"";
    }
    // The error must name the variable so an operator can find the
    // typo in a 50-line systemd unit.
    try {
        (void)parseEnvRate("MTC_NET_FAULT_DROP", "oops");
        ADD_FAILURE() << "garbage accepted";
    } catch (const ConfigError &err) {
        EXPECT_NE(std::string(err.what()).find("MTC_NET_FAULT_DROP"),
                  std::string::npos);
    }
}

TEST(FabricEnv, NetFaultEnvOverridesBothDirections)
{
    setenv("MTC_NET_FAULT_DROP", "0.25", 1);
    setenv("MTC_NET_FAULT_CORRUPT", "0.125", 1);
    setenv("MTC_NET_FAULT_DELAY_MS", "5", 1);
    setenv("MTC_NET_FAULT_SEED", "9", 1);
    const NetFaultConfig nf = netFaultFromEnv();
    EXPECT_EQ(nf.send.drop, 0.25);
    EXPECT_EQ(nf.recv.drop, 0.25);
    EXPECT_EQ(nf.send.corrupt, 0.125);
    EXPECT_EQ(nf.recv.corrupt, 0.125);
    EXPECT_EQ(nf.delayMs, 5u);
    EXPECT_EQ(nf.seed, 9u);
    EXPECT_TRUE(nf.any());

    setenv("MTC_NET_FAULT_DROP", "1.5", 1);
    EXPECT_THROW((void)netFaultFromEnv(), ConfigError);
    setenv("MTC_NET_FAULT_DROP", "some", 1);
    EXPECT_THROW((void)netFaultFromEnv(), ConfigError);

    unsetenv("MTC_NET_FAULT_DROP");
    unsetenv("MTC_NET_FAULT_CORRUPT");
    unsetenv("MTC_NET_FAULT_DELAY_MS");
    unsetenv("MTC_NET_FAULT_SEED");
    EXPECT_FALSE(netFaultFromEnv().any());
}

TEST(FabricEnv, AuditRateAndKeyFileOverrides)
{
    setenv("MTC_AUDIT_RATE", "0.5", 1);
    setenv("MTC_FABRIC_KEY_FILE", "/some/key/path", 1);
    const CampaignConfig cfg = CampaignConfig::fromEnv();
    EXPECT_EQ(cfg.distAuditRate, 0.5);
    EXPECT_EQ(cfg.distKeyFile, "/some/key/path");

    setenv("MTC_AUDIT_RATE", "plenty", 1);
    EXPECT_THROW((void)CampaignConfig::fromEnv(), ConfigError);
    setenv("MTC_AUDIT_RATE", "1.5", 1);
    EXPECT_THROW((void)CampaignConfig::fromEnv(), ConfigError);
    unsetenv("MTC_AUDIT_RATE");

    // An empty path is a misconfiguration, not "no key".
    setenv("MTC_FABRIC_KEY_FILE", "", 1);
    EXPECT_THROW((void)CampaignConfig::fromEnv(), ConfigError);
    unsetenv("MTC_FABRIC_KEY_FILE");

    EXPECT_EQ(CampaignConfig::fromEnv().distAuditRate, 0.0);
    EXPECT_TRUE(CampaignConfig::fromEnv().distKeyFile.empty());
}

TEST(FabricEnv, LoadFabricKeyRejectsShortKeys)
{
    TempFile shortkey("short_key");
    {
        std::ofstream out(shortkey.path(), std::ios::binary);
        out << "tooshort\n";
    }
    EXPECT_THROW((void)loadFabricKey(shortkey.path()), ConfigError);
    EXPECT_THROW((void)loadFabricKey("/nonexistent/key/file"),
                 ConfigError);

    const TempKeyFile good("load_ok");
    EXPECT_EQ(good.key().size(), 32u);
}

} // anonymous namespace
} // namespace mtc
