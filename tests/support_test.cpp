/**
 * @file
 * Unit tests for the support library: RNG, statistics accumulators,
 * timers, and table/CSV rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "support/error.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/timer.h"

namespace mtc
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a() == b();
    EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextBelowCoversRange)
{
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBelow(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowZeroThrows)
{
    Rng rng(1);
    EXPECT_THROW(rng.nextBelow(0), ConfigError);
}

TEST(Rng, NextInRangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.nextInRange(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_THROW(rng.nextInRange(9, 5), ConfigError);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliRoughlyCalibrated)
{
    Rng rng(13);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.nextBool(0.25);
    EXPECT_NEAR(hits / static_cast<double>(trials), 0.25, 0.02);
}

TEST(Rng, PickAndShuffle)
{
    Rng rng(17);
    std::vector<int> items{1, 2, 3, 4, 5};
    for (int i = 0; i < 50; ++i) {
        const int &picked = rng.pick(items);
        EXPECT_GE(picked, 1);
        EXPECT_LE(picked, 5);
    }
    std::vector<int> shuffled = items;
    rng.shuffle(shuffled);
    std::multiset<int> a(items.begin(), items.end());
    std::multiset<int> b(shuffled.begin(), shuffled.end());
    EXPECT_EQ(a, b);

    std::vector<int> empty;
    EXPECT_THROW(rng.pick(empty), ConfigError);
}

TEST(Rng, SplitDecorrelates)
{
    Rng parent(21);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += parent() == child();
    EXPECT_LT(equal, 4);
}

TEST(RunningStat, MeanVarianceMinMax)
{
    RunningStat stat;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.add(x);
    EXPECT_EQ(stat.count(), 8u);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_DOUBLE_EQ(stat.variance(), 4.0);
    EXPECT_DOUBLE_EQ(stat.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(stat.minimum(), 2.0);
    EXPECT_DOUBLE_EQ(stat.maximum(), 9.0);
    EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.variance(), 0.0);
    EXPECT_EQ(stat.minimum(), 0.0);
    EXPECT_EQ(stat.maximum(), 0.0);
}

TEST(RunningStat, MergeMatchesSequential)
{
    RunningStat all, left, right;
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble() * 100.0;
        all.add(x);
        (i < 400 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
    EXPECT_DOUBLE_EQ(left.minimum(), all.minimum());
    EXPECT_DOUBLE_EQ(left.maximum(), all.maximum());
}

TEST(RunningStat, MergeWithEmpty)
{
    RunningStat a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram hist(10, 4); // buckets [0,10) [10,20) [20,30) [30,40)
    for (std::uint64_t x : {0ull, 5ull, 9ull, 10ull, 25ull, 39ull, 40ull,
                            1000ull}) {
        hist.add(x);
    }
    EXPECT_EQ(hist.count(), 8u);
    EXPECT_EQ(hist.bucketCount(0), 3u);
    EXPECT_EQ(hist.bucketCount(1), 1u);
    EXPECT_EQ(hist.bucketCount(2), 1u);
    EXPECT_EQ(hist.bucketCount(3), 1u);
    EXPECT_EQ(hist.overflowCount(), 2u);
    EXPECT_THROW(hist.bucketCount(4), ConfigError);
    EXPECT_NE(hist.render().find("0-9: 3"), std::string::npos);
}

TEST(Histogram, InvalidConstruction)
{
    EXPECT_THROW(Histogram(0, 4), ConfigError);
    EXPECT_THROW(Histogram(4, 0), ConfigError);
}

TEST(GeometricMean, Basics)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geometricMean({1.0, 10.0, 100.0}), 10.0, 1e-9);
    EXPECT_THROW(geometricMean({}), ConfigError);
    EXPECT_THROW(geometricMean({1.0, 0.0}), ConfigError);
}

TEST(TablePrinter, AlignmentAndCsv)
{
    TablePrinter table({"name", "value"});
    table.addRow({"a", "1"});
    table.addRow({"long-name", "22"});
    EXPECT_EQ(table.numRows(), 2u);

    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("long-name"), std::string::npos);

    const std::string csv = table.toCsv();
    EXPECT_EQ(csv, "name,value\na,1\nlong-name,22\n");

    EXPECT_THROW(table.addRow({"only-one-cell"}), ConfigError);
    EXPECT_THROW(TablePrinter({}), ConfigError);
}

TEST(TablePrinter, Formatting)
{
    EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::fmt(std::uint64_t(42)), "42");
    EXPECT_EQ(TablePrinter::pct(0.935, 1), "93.5%");
}

TEST(TablePrinter, CsvQuotesCommas)
{
    TablePrinter table({"a"});
    table.addRow({"x,y"});
    EXPECT_EQ(table.toCsv(), "a\n\"x,y\"\n");
}

TEST(WallTimer, AccumulatesAndResets)
{
    WallTimer timer;
    timer.start();
    // Burn a little time.
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + std::sqrt(static_cast<double>(i));
    timer.stop();
    const double first = timer.seconds();
    EXPECT_GT(first, 0.0);

    {
        ScopedTimer scope(timer);
        for (int i = 0; i < 100000; ++i)
            sink = sink + std::sqrt(static_cast<double>(i));
    }
    EXPECT_GT(timer.seconds(), first);
    EXPECT_GT(timer.milliseconds(), 0.0);

    timer.reset();
    EXPECT_EQ(timer.seconds(), 0.0);
}

} // anonymous namespace
} // namespace mtc
