/**
 * @file
 * Unit tests for the constraint-graph container, Kahn topological
 * sort, and cycle extraction / reporting.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/constraint_graph.h"
#include "graph/cycle_report.h"
#include "graph/topo_sort.h"
#include "support/error.h"
#include "testgen/litmus.h"

namespace mtc
{
namespace
{

TEST(ConstraintGraph, AddAndQueryEdges)
{
    ConstraintGraph graph(4);
    graph.addEdge(0, 1, EdgeKind::ProgramOrder);
    graph.addEdge(1, 2, EdgeKind::ReadsFrom);
    graph.addEdge(2, 3, EdgeKind::FromRead);

    EXPECT_EQ(graph.numVertices(), 4u);
    EXPECT_EQ(graph.numEdges(), 3u);
    EXPECT_TRUE(graph.hasEdge(0, 1));
    EXPECT_FALSE(graph.hasEdge(1, 0));
    EXPECT_EQ(graph.edgeKind(1, 2), EdgeKind::ReadsFrom);
    EXPECT_THROW(graph.edgeKind(3, 0), ConfigError);

    const auto degrees = graph.inDegrees();
    EXPECT_EQ(degrees[0], 0u);
    EXPECT_EQ(degrees[1], 1u);
}

TEST(ConstraintGraph, DuplicatesCollapsedSelfLoopsRejected)
{
    ConstraintGraph graph(3);
    graph.addEdge(0, 1, EdgeKind::ProgramOrder);
    graph.addEdge(0, 1, EdgeKind::ReadsFrom); // duplicate pair ignored
    EXPECT_EQ(graph.numEdges(), 1u);
    EXPECT_EQ(graph.edgeKind(0, 1), EdgeKind::ProgramOrder);

    EXPECT_THROW(graph.addEdge(1, 1, EdgeKind::ProgramOrder),
                 ConfigError);
    EXPECT_THROW(graph.addEdge(0, 5, EdgeKind::ProgramOrder),
                 ConfigError);
}

TEST(TopoSort, LinearChain)
{
    ConstraintGraph graph(5);
    for (std::uint32_t v = 0; v + 1 < 5; ++v)
        graph.addEdge(v, v + 1, EdgeKind::ProgramOrder);
    const TopoResult result = topologicalSort(graph);
    EXPECT_TRUE(result.acyclic);
    EXPECT_EQ(result.order, (std::vector<std::uint32_t>{0, 1, 2, 3, 4}));
    EXPECT_EQ(result.verticesProcessed, 5u);
    EXPECT_EQ(result.edgesProcessed, 4u);
}

TEST(TopoSort, RespectsAllEdges)
{
    // Diamond + cross edges.
    ConstraintGraph graph(6);
    graph.addEdge(0, 1, EdgeKind::ProgramOrder);
    graph.addEdge(0, 2, EdgeKind::ProgramOrder);
    graph.addEdge(1, 3, EdgeKind::ReadsFrom);
    graph.addEdge(2, 3, EdgeKind::WriteSerialization);
    graph.addEdge(3, 4, EdgeKind::FromRead);
    graph.addEdge(2, 5, EdgeKind::ProgramOrder);

    const TopoResult result = topologicalSort(graph);
    ASSERT_TRUE(result.acyclic);
    std::vector<std::uint32_t> pos(6);
    for (std::uint32_t p = 0; p < result.order.size(); ++p)
        pos[result.order[p]] = p;
    for (std::uint32_t from = 0; from < 6; ++from)
        for (std::uint32_t to : graph.successors(from))
            EXPECT_LT(pos[from], pos[to]);
}

TEST(TopoSort, DetectsCycle)
{
    ConstraintGraph graph(4);
    graph.addEdge(0, 1, EdgeKind::ProgramOrder);
    graph.addEdge(1, 2, EdgeKind::ReadsFrom);
    graph.addEdge(2, 0, EdgeKind::FromRead);
    graph.addEdge(2, 3, EdgeKind::ProgramOrder);

    const TopoResult result = topologicalSort(graph);
    EXPECT_FALSE(result.acyclic);
    EXPECT_LT(result.order.size(), 4u);
}

TEST(TopoSort, EmptyAndSingleton)
{
    EXPECT_TRUE(topologicalSort(ConstraintGraph(0)).acyclic);
    const TopoResult one = topologicalSort(ConstraintGraph(1));
    EXPECT_TRUE(one.acyclic);
    EXPECT_EQ(one.order.size(), 1u);
}

TEST(FindCycle, ReturnsActualCycle)
{
    ConstraintGraph graph(5);
    graph.addEdge(0, 1, EdgeKind::ProgramOrder);
    graph.addEdge(1, 2, EdgeKind::ReadsFrom);
    graph.addEdge(2, 3, EdgeKind::FromRead);
    graph.addEdge(3, 1, EdgeKind::WriteSerialization); // cycle 1-2-3
    graph.addEdge(0, 4, EdgeKind::ProgramOrder);

    const auto cycle = findCycle(graph);
    ASSERT_FALSE(cycle.empty());
    // Every consecutive pair (and the wrap-around) must be an edge.
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        EXPECT_TRUE(
            graph.hasEdge(cycle[i], cycle[(i + 1) % cycle.size()]));
    }
    // The cycle must involve the 1-2-3 loop.
    EXPECT_NE(std::find(cycle.begin(), cycle.end(), 1u), cycle.end());
}

TEST(FindCycle, EmptyOnDag)
{
    ConstraintGraph graph(3);
    graph.addEdge(0, 1, EdgeKind::ProgramOrder);
    graph.addEdge(1, 2, EdgeKind::ProgramOrder);
    EXPECT_TRUE(findCycle(graph).empty());
}

TEST(DescribeCycle, RendersKindsAndOps)
{
    // Use the LB litmus program so vertices map to real ops:
    // vertices: t0 ld(0)=0, t0 st(1)=1, t1 ld(1)=2, t1 st(0)=3.
    const TestProgram program = litmus::loadBuffering();
    ConstraintGraph graph(program.numOps());
    graph.addEdge(0, 1, EdgeKind::ProgramOrder);
    graph.addEdge(1, 2, EdgeKind::ReadsFrom);
    graph.addEdge(2, 3, EdgeKind::ProgramOrder);
    graph.addEdge(3, 0, EdgeKind::ReadsFrom);

    const auto cycle = findCycle(graph);
    ASSERT_EQ(cycle.size(), 4u);
    const std::string text = describeCycle(program, graph, cycle);
    EXPECT_NE(text.find("--rf-->"), std::string::npos);
    EXPECT_NE(text.find("--po-->"), std::string::npos);
    EXPECT_NE(text.find("[t0 op0] ld loc0"), std::string::npos);
    EXPECT_EQ(describeCycle(program, graph, {}), "(no cycle)");
}

TEST(EdgeKindNames, AllNamed)
{
    EXPECT_EQ(edgeKindName(EdgeKind::ProgramOrder), "po");
    EXPECT_EQ(edgeKindName(EdgeKind::ReadsFrom), "rf");
    EXPECT_EQ(edgeKindName(EdgeKind::FromRead), "fr");
    EXPECT_EQ(edgeKindName(EdgeKind::WriteSerialization), "ws");
}

} // anonymous namespace
} // namespace mtc
