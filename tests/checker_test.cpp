/**
 * @file
 * Tests for the conventional and collective checkers. The central
 * property: for any batch of unique executions in ascending-signature
 * order, the collective checker's verdicts equal the conventional
 * checker's, graph by graph — including batches containing genuine
 * violations (obtained by checking a weak platform against a stronger
 * model, exactly how silicon reordering bugs manifest).
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/collective_checker.h"
#include "core/conventional_checker.h"
#include "core/instr_plan.h"
#include "core/load_analysis.h"
#include "core/signature_codec.h"
#include "graph/graph_builder.h"
#include "sim/executor.h"
#include "testgen/generator.h"
#include "testgen/litmus.h"

namespace mtc
{
namespace
{

/** Unique executions of @p program under @p platform_model, as edge
 * sets in ascending signature order (the collective checker's input
 * contract). */
std::vector<DynamicEdgeSet>
orderedEdgeSets(const TestProgram &program, MemoryModel platform_model,
                unsigned runs, std::uint64_t seed)
{
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    ExecutorConfig exec;
    exec.model = platform_model;
    exec.policy = SchedulingPolicy::UniformRandom;
    exec.reorderWindow = platform_model == MemoryModel::SC ? 1 : 8;
    OperationalExecutor platform(exec);
    Rng rng(seed);

    std::map<Signature, Execution> unique;
    for (unsigned i = 0; i < runs; ++i) {
        Execution execution = platform.run(program, rng);
        EncodeResult encoded = codec.encode(execution);
        unique.emplace(std::move(encoded.signature),
                       std::move(execution));
    }

    std::vector<DynamicEdgeSet> sets;
    sets.reserve(unique.size());
    for (const auto &[signature, execution] : unique)
        sets.push_back(dynamicEdges(program, execution));
    return sets;
}

using Param = std::tuple<const char *, MemoryModel /*platform*/,
                         MemoryModel /*checked*/, std::uint64_t>;

class CheckerEquivalence : public ::testing::TestWithParam<Param>
{
};

TEST_P(CheckerEquivalence, CollectiveMatchesConventional)
{
    const auto [config_name, platform_model, checked_model, seed] =
        GetParam();
    const TestProgram program =
        generateTest(parseConfigName(config_name), seed);

    const auto sets =
        orderedEdgeSets(program, platform_model, 150, seed * 7 + 1);
    ASSERT_FALSE(sets.empty());

    ConventionalChecker conventional(program, checked_model);
    ConventionalStats conv_stats;
    const std::vector<bool> expected =
        conventional.check(sets, conv_stats);

    CollectiveChecker collective(program, checked_model);
    const std::vector<bool> actual = collective.check(sets);

    EXPECT_EQ(actual, expected);
    EXPECT_EQ(collective.stats().violations, conv_stats.violations);
    EXPECT_EQ(collective.stats().graphsChecked, sets.size());

    // When the platform is weaker than the checked model, violations
    // must actually occur (otherwise this test proves nothing).
    if (atLeastAsWeak(platform_model, checked_model) &&
        platform_model != checked_model) {
        EXPECT_GT(conv_stats.violations, 0u)
            << "expected violations when checking "
            << modelName(platform_model) << " behaviour against "
            << modelName(checked_model);
    } else if (platform_model == checked_model) {
        EXPECT_EQ(conv_stats.violations, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CheckerEquivalence,
    ::testing::Values(
        // Matching platform/checker: all pass.
        Param{"x86-4-50-16", MemoryModel::TSO, MemoryModel::TSO, 1},
        Param{"ARM-4-50-16", MemoryModel::RMO, MemoryModel::RMO, 2},
        Param{"x86-2-100-32", MemoryModel::SC, MemoryModel::SC, 3},
        // Weak platform vs strong model: violations detected.
        Param{"x86-4-50-16", MemoryModel::RMO, MemoryModel::TSO, 4},
        Param{"x86-4-50-16", MemoryModel::RMO, MemoryModel::SC, 5},
        Param{"x86-2-50-8", MemoryModel::TSO, MemoryModel::SC, 6},
        Param{"ARM-7-50-32", MemoryModel::RMO, MemoryModel::TSO, 7},
        // Strong platform vs weak model: all pass.
        Param{"x86-2-50-8", MemoryModel::SC, MemoryModel::RMO, 8}),
    [](const ::testing::TestParamInfo<Param> &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_on" + modelName(std::get<1>(info.param)) +
            "_vs" + modelName(std::get<2>(info.param)) + "_s" +
            std::to_string(std::get<3>(info.param));
    });

TEST(CollectiveChecker, FirstGraphIsCompleteSort)
{
    const TestProgram program = litmus::storeBuffering();
    const auto sets =
        orderedEdgeSets(program, MemoryModel::TSO, 50, 3);
    CollectiveChecker checker(program, MemoryModel::TSO);
    checker.check(sets);
    EXPECT_GE(checker.stats().completeSorts, 1u);
    EXPECT_EQ(checker.stats().completeSorts +
                  checker.stats().noResortNeeded +
                  checker.stats().incrementalResorts,
              checker.stats().graphsChecked);
}

TEST(CollectiveChecker, AffectedFractionWithinUnit)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-100-32"), 11);
    const auto sets =
        orderedEdgeSets(program, MemoryModel::TSO, 200, 12);
    CollectiveChecker checker(program, MemoryModel::TSO);
    checker.check(sets);
    const auto &fraction = checker.stats().affectedFraction;
    if (fraction.count()) {
        EXPECT_GT(fraction.minimum(), 0.0);
        EXPECT_LE(fraction.maximum(), 1.0);
    }
}

TEST(CollectiveChecker, WorkBelowConventionalOnRealBatches)
{
    // The headline claim (Figure 9): collective checking performs
    // less sorting work than conventional checking on batches with
    // structural similarity.
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-100-64"), 13);
    const auto sets =
        orderedEdgeSets(program, MemoryModel::RMO, 300, 14);
    ASSERT_GT(sets.size(), 10u);

    ConventionalChecker conventional(program, MemoryModel::RMO);
    ConventionalStats conv_stats;
    conventional.check(sets, conv_stats);

    CollectiveChecker collective(program, MemoryModel::RMO);
    collective.check(sets);

    const std::uint64_t conv_work =
        conv_stats.verticesProcessed + conv_stats.edgesProcessed;
    const std::uint64_t coll_work =
        collective.stats().verticesProcessed +
        collective.stats().edgesProcessed;
    EXPECT_LT(coll_work, conv_work);
}

TEST(CollectiveChecker, RecoversAfterViolation)
{
    // Alternate violating and clean graphs: every verdict must still
    // match the conventional checker (recovery via complete sort).
    const TestProgram program = litmus::loadBuffering();
    LoadValueAnalysis analysis(program);

    const std::uint32_t v0 = program.op(OpId{0, 1}).value; // st y by t0
    const std::uint32_t v1 = program.op(OpId{1, 1}).value; // st x by t1

    std::vector<Execution> executions;
    // LB outcomes: (ld x, ld y) pairs.
    for (auto values : {std::vector<std::uint32_t>{v1, v0},      // cycle
                        std::vector<std::uint32_t>{0, 0},        // ok
                        std::vector<std::uint32_t>{v1, 0},       // ok
                        std::vector<std::uint32_t>{0, v0}}) {    // ok
        Execution e;
        e.loadValues = values;
        executions.push_back(e);
    }

    std::vector<DynamicEdgeSet> sets;
    for (const auto &e : executions)
        sets.push_back(dynamicEdges(program, e));

    ConventionalChecker conventional(program, MemoryModel::TSO);
    ConventionalStats conv_stats;
    const auto expected = conventional.check(sets, conv_stats);

    CollectiveChecker collective(program, MemoryModel::TSO);
    const auto actual = collective.check(sets);
    EXPECT_EQ(actual, expected);
    EXPECT_TRUE(expected[0]);
    EXPECT_FALSE(expected[1]);
    EXPECT_GT(collective.stats().completeSorts, 1u)
        << "a violating graph forces the next check to re-sort fully";
}

TEST(ConventionalChecker, CoherenceViolationShortCircuits)
{
    const TestProgram program = litmus::corr();
    Execution bad;
    bad.loadValues = {program.op(OpId{0, 0}).value, kInitValue};
    const DynamicEdgeSet edges = dynamicEdges(program, bad);
    EXPECT_TRUE(edges.coherenceViolation);

    ConventionalChecker checker(program, MemoryModel::RMO);
    ConventionalStats stats;
    EXPECT_TRUE(checker.checkOne(edges, stats));
    EXPECT_EQ(stats.violations, 1u);

    CollectiveChecker collective(program, MemoryModel::RMO);
    EXPECT_TRUE(collective.checkNext(edges));
}

} // anonymous namespace
} // namespace mtc
