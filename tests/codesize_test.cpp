/**
 * @file
 * Tests for the code-size and intrusiveness models (Figures 11/12
 * inputs) and the perturbation model (Figure 10 input).
 */

#include <gtest/gtest.h>

#include "core/codesize.h"
#include "core/instr_plan.h"
#include "core/load_analysis.h"
#include "core/perturbation.h"
#include "core/signature_codec.h"
#include "testgen/generator.h"
#include "testgen/litmus.h"

namespace mtc
{
namespace
{

TEST(CodeSize, InstrumentedGrowsWithCandidates)
{
    // Fewer locations -> more candidates per load -> more added code.
    TestConfig small = parseConfigName("x86-4-100-16");
    TestConfig large = parseConfigName("x86-4-100-128");

    const TestProgram p_small = generateTest(small, 1);
    const TestProgram p_large = generateTest(large, 1);

    LoadValueAnalysis a_small(p_small), a_large(p_large);
    InstrumentationPlan plan_small(p_small, a_small);
    InstrumentationPlan plan_large(p_large, a_large);

    const CodeSizeReport r_small = codeSize(p_small, a_small, plan_small);
    const CodeSizeReport r_large = codeSize(p_large, a_large, plan_large);

    EXPECT_GT(r_small.ratio(), r_large.ratio());
    EXPECT_GT(r_small.instrumentedBytes, r_small.originalBytes);
}

TEST(CodeSize, RatioWithinPaperBallpark)
{
    // The paper reports ratios between 1.95x and 8.16x across its
    // configurations; ours should land in a comparable band.
    for (const char *name : {"ARM-2-50-64", "ARM-7-200-64",
                             "x86-2-50-32", "x86-4-200-64"}) {
        const TestProgram program =
            generateTest(parseConfigName(name), 2);
        LoadValueAnalysis analysis(program);
        InstrumentationPlan plan(program, analysis);
        const double ratio = codeSize(program, analysis, plan).ratio();
        EXPECT_GT(ratio, 1.3) << name;
        EXPECT_LT(ratio, 15.0) << name;
    }
}

TEST(CodeSize, RegisterFlushBaselineSmallButNonzero)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-100-64"), 3);
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);

    const CodeSizeReport flush = codeSizeRegisterFlush(program);
    const CodeSizeReport ours = codeSize(program, analysis, plan);
    EXPECT_GT(flush.instrumentedBytes, flush.originalBytes);
    // Register flushing adds far less *code* than signature chains...
    EXPECT_LT(flush.instrumentedBytes, ours.instrumentedBytes);
}

TEST(CodeSize, IsaEncodingsDiffer)
{
    const InstructionCosts x86 = InstructionCosts::forIsa(Isa::X86);
    const InstructionCosts arm = InstructionCosts::forIsa(Isa::ARMv7);
    EXPECT_NE(x86.loadBytes, arm.loadBytes);
    EXPECT_GT(x86.perCandidate, 0u);
    EXPECT_GT(arm.perCandidate, 0u);
}

TEST(Intrusiveness, SignatureWordsVsRegisterFlush)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-7-200-64"), 4);
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    const IntrusivenessReport report = intrusiveness(program, plan);

    EXPECT_EQ(report.flushStores, program.loads().size());
    EXPECT_EQ(report.signatureWords, plan.totalWords());
    EXPECT_EQ(report.signatureBytes, plan.signatureBytes());
    // MTraceCheck's unrelated accesses are a small fraction of the
    // register-flushing baseline (paper: 3.9%-11.5%).
    EXPECT_GT(report.normalizedUnrelated(), 0.0);
    EXPECT_LT(report.normalizedUnrelated(), 0.35);
}

TEST(Intrusiveness, GrowsWithContention)
{
    // Higher contention (more threads, fewer locations) -> bigger
    // signatures -> more unrelated accesses (paper Section 6.3).
    const TestProgram low =
        generateTest(parseConfigName("ARM-2-100-64"), 5);
    const TestProgram high =
        generateTest(parseConfigName("ARM-7-200-64"), 5);

    LoadValueAnalysis a_low(low), a_high(high);
    InstrumentationPlan plan_low(low, a_low);
    InstrumentationPlan plan_high(high, a_high);

    EXPECT_LT(intrusiveness(low, plan_low).normalizedUnrelated(),
              intrusiveness(high, plan_high).normalizedUnrelated());
}

TEST(Perturbation, StablePatternsPredictWell)
{
    const TestProgram program = litmus::messagePassing();
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    SignatureCodec codec(program, analysis, plan);

    PerturbationModel stable(program, analysis);
    Execution execution;
    execution.loadValues = {kInitValue, kInitValue};
    execution.duration = 1000;
    const EncodeResult encoded = codec.encode(execution);
    for (int i = 0; i < 10; ++i)
        stable.record(execution, encoded, plan.totalWords());

    PerturbationModel noisy(program, analysis);
    Execution other;
    other.loadValues = {program.op(OpId{0, 1}).value, kInitValue};
    other.duration = 1000;
    const EncodeResult other_encoded = codec.encode(other);
    for (int i = 0; i < 5; ++i) {
        noisy.record(execution, encoded, plan.totalWords());
        noisy.record(other, other_encoded, plan.totalWords());
    }

    EXPECT_EQ(stable.originalCycles(), 10000u);
    EXPECT_LT(stable.signatureComputationCycles(),
              noisy.signatureComputationCycles())
        << "alternating outcomes must pay mispredictions";
    EXPECT_GT(stable.computationOverhead(), 0.0);
}

TEST(Perturbation, SortingCyclesAccounted)
{
    const TestProgram program = litmus::messagePassing();
    LoadValueAnalysis analysis(program);
    PerturbationModel model(program, analysis);
    EXPECT_EQ(model.sortingOverhead(), 0.0);

    Execution execution;
    execution.loadValues = {kInitValue, kInitValue};
    execution.duration = 500;
    LoadValueAnalysis analysis2(program);
    InstrumentationPlan plan(program, analysis2);
    SignatureCodec codec(program, analysis2, plan);
    model.record(execution, codec.encode(execution), plan.totalWords());
    model.recordSortComparisons(100);
    EXPECT_GT(model.signatureSortingCycles(), 0u);
    EXPECT_GT(model.sortingOverhead(), 0.0);
}

} // anonymous namespace
} // namespace mtc
