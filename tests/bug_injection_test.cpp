/**
 * @file
 * Failure-injection tests (paper Section 7): each injected bug must be
 * observable through the MTraceCheck flow, and the bug-free platform
 * must stay clean under identical conditions.
 */

#include <gtest/gtest.h>

#include "harness/validation_flow.h"
#include "sim/executor.h"
#include "support/error.h"
#include "testgen/generator.h"

namespace mtc
{
namespace
{

FlowConfig
bugFlow(BugKind bug, double probability, std::uint32_t cache_lines,
        std::uint64_t iterations)
{
    FlowConfig cfg;
    cfg.iterations = iterations;
    cfg.exec = bareMetalConfig(Isa::X86);
    cfg.exec.bug = bug;
    cfg.exec.bugProbability = probability;
    cfg.exec.timing.cacheLines = cache_lines;
    cfg.runConventional = true;
    return cfg;
}

TEST(BugInjection, LsqNoSquashDetected)
{
    TestConfig tc = parseConfigName("x86-7-200-32 (16 words/line)");
    bool detected = false;
    Rng seeder(1);
    for (unsigned t = 0; t < 6 && !detected; ++t) {
        const TestProgram program = generateTest(tc, seeder());
        FlowConfig cfg = bugFlow(BugKind::LsqNoSquash, 0.2, 0, 128);
        cfg.seed = seeder();
        ValidationFlow flow(cfg);
        const FlowResult result = flow.runTest(program);
        detected = result.anyViolation();
        if (result.violatingSignatures) {
            EXPECT_FALSE(result.violationWitness.empty());
        }
    }
    EXPECT_TRUE(detected) << "LSQ bug escaped 6 tests x 128 iterations";
}

TEST(BugInjection, StaleLoadOnUpgradeDetectedWithFalseSharing)
{
    // Bug 1 needs an own store to the same *line* in flight, which is
    // why the paper's configuration packs 4 words per line.
    TestConfig tc = parseConfigName("x86-4-50-8 (4 words/line)");
    bool detected = false;
    Rng seeder(2);
    for (unsigned t = 0; t < 10 && !detected; ++t) {
        const TestProgram program = generateTest(tc, seeder());
        FlowConfig cfg =
            bugFlow(BugKind::StaleLoadOnUpgrade, 0.5, 0, 128);
        cfg.seed = seeder();
        ValidationFlow flow(cfg);
        detected = flow.runTest(program).anyViolation();
    }
    EXPECT_TRUE(detected);
}

TEST(BugInjection, PutxGetxRaceCrashesPlatform)
{
    TestConfig tc = parseConfigName("x86-7-200-64 (4 words/line)");
    const TestProgram program = generateTest(tc, 3);

    // Direct platform-level observation: the run must deadlock.
    ExecutorConfig exec = bareMetalConfig(Isa::X86);
    exec.bug = BugKind::PutxGetxRace;
    exec.bugProbability = 1.0;
    exec.timing.cacheLines = 4; // tiny L1 intensifies evictions
    OperationalExecutor platform(exec);
    Rng rng(5);
    bool crashed = false;
    for (int i = 0; i < 50 && !crashed; ++i) {
        try {
            platform.run(program, rng);
        } catch (const ProtocolDeadlockError &) {
            crashed = true;
        }
    }
    EXPECT_TRUE(crashed);

    // And the flow reports it as a platform crash, not a hang.
    FlowConfig cfg = bugFlow(BugKind::PutxGetxRace, 1.0, 4, 64);
    ValidationFlow flow(cfg);
    const FlowResult result = flow.runTest(program);
    EXPECT_GT(result.platformCrashes, 0u);
    EXPECT_TRUE(result.anyViolation());
}

TEST(BugInjection, ControlRunStaysClean)
{
    // Same configurations, no bug: zero violations of any kind.
    for (const char *name :
         {"x86-7-200-32 (16 words/line)", "x86-4-50-8 (4 words/line)",
          "x86-7-200-64 (4 words/line)"}) {
        const TestProgram program =
            generateTest(parseConfigName(name), 7);
        FlowConfig cfg = bugFlow(BugKind::None, 0.0, 0, 128);
        ValidationFlow flow(cfg);
        const FlowResult result = flow.runTest(program);
        EXPECT_FALSE(result.anyViolation()) << name;
        EXPECT_EQ(result.violatingSignatures, 0u) << name;
        EXPECT_EQ(result.assertionFailures, 0u) << name;
    }
}

TEST(BugInjection, ControlCleanWithTinyCache)
{
    // Capacity evictions alone (no injected bug) must not deadlock or
    // produce violations.
    const TestProgram program =
        generateTest(parseConfigName("x86-4-100-64 (4 words/line)"), 8);
    FlowConfig cfg = bugFlow(BugKind::None, 0.0, 4, 64);
    ValidationFlow flow(cfg);
    const FlowResult result = flow.runTest(program);
    EXPECT_FALSE(result.anyViolation());
    EXPECT_EQ(result.platformCrashes, 0u);
}

TEST(BugInjection, BothCheckersAgreeOnBuggyRuns)
{
    TestConfig tc = parseConfigName("x86-7-100-32 (16 words/line)");
    const TestProgram program = generateTest(tc, 9);
    FlowConfig cfg = bugFlow(BugKind::LsqNoSquash, 0.3, 0, 96);
    ValidationFlow flow(cfg);
    // runTest cross-checks collective vs conventional internally and
    // warns on disagreement; here we assert the counts line up.
    const FlowResult result = flow.runTest(program);
    EXPECT_EQ(result.collective.violations,
              result.conventional.violations);
}

} // anonymous namespace
} // namespace mtc
