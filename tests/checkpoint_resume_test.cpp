/**
 * @file
 * Crash-resilience tests: the journaled checkpoint/resume pipeline,
 * the hang watchdog, and the per-config circuit breaker.
 *
 * The journal's contract is sharp enough to test exactly: a campaign
 * SIGKILLed at any byte — including mid-record — must resume to a
 * summary bit-identical (deterministic fields) to an uninterrupted
 * run, at any thread count, with fault injection active. The torn
 * tail is exercised at every byte offset of the final record; the
 * watchdog must reclaim an injected infinite stall well inside twice
 * its deadline; the breaker must skip exactly the remaining units and
 * account for what it saw.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "harness/campaign.h"
#include "harness/campaign_journal.h"
#include "harness/watchdog.h"
#include "support/cancellation.h"
#include "support/journal.h"
#include "support/process.h"
#include "support/thread_pool.h"
#include "testgen/generator.h"

namespace mtc
{
namespace
{

namespace fs = std::filesystem;

/** Unique scratch path that cleans up after itself. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : p((fs::temp_directory_path() /
             ("mtc_ckpt_" + name + "_" +
              std::to_string(static_cast<std::uint64_t>(
                  ::getpid()))))
                .string())
    {
        std::remove(p.c_str());
    }

    ~TempFile() { std::remove(p.c_str()); }

    const std::string &path() const { return p; }

  private:
    std::string p;
};

std::uint64_t
fileSize(const std::string &path)
{
    return static_cast<std::uint64_t>(fs::file_size(path));
}

// ---------------------------------------------------------------------
// Framing layer: ByteWriter/ByteReader and the torn-tail recovery.
// ---------------------------------------------------------------------

TEST(JournalFraming, ByteCodecRoundTripsEveryFieldBitExact)
{
    ByteWriter w;
    w.u8(0xAB);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.f64(0.1); // not exactly representable: must round-trip the bits
    w.f64(-0.0);
    w.str("");
    w.str(std::string("nul\0inside", 10));

    ByteReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.f64(), 0.1);
    const double neg_zero = r.f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_EQ(r.str(), "");
    EXPECT_EQ(r.str(), std::string("nul\0inside", 10));
    EXPECT_TRUE(r.exhausted());
}

TEST(JournalFraming, ReaderThrowsOnUnderrun)
{
    ByteWriter w;
    w.u32(7);
    ByteReader r(w.bytes());
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_THROW(r.u64(), JournalError);
}

TEST(JournalFraming, WriteReadRoundTrip)
{
    TempFile file("roundtrip");
    const std::vector<std::vector<std::uint8_t>> payloads = {
        {}, {1}, {2, 3, 4}, std::vector<std::uint8_t>(1000, 0x5A)};
    {
        JournalWriter writer(file.path(), 2);
        for (const auto &p : payloads)
            writer.append(p);
        EXPECT_EQ(writer.recordsWritten(), payloads.size());
    }
    const JournalRecovery recovery = readJournal(file.path());
    EXPECT_EQ(recovery.droppedBytes, 0u);
    EXPECT_EQ(recovery.validBytes, fileSize(file.path()));
    ASSERT_EQ(recovery.records.size(), payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i)
        EXPECT_EQ(recovery.records[i], payloads[i]);
}

TEST(JournalFraming, MissingFileReadsAsEmpty)
{
    const JournalRecovery recovery =
        readJournal("/nonexistent/dir/never.mtcj");
    EXPECT_TRUE(recovery.records.empty());
    EXPECT_EQ(recovery.validBytes, 0u);
}

TEST(JournalFraming, TornTailRecoveredAtEveryByteOffset)
{
    TempFile master("torn_master");
    const std::vector<std::uint8_t> p0 = {10, 11, 12};
    const std::vector<std::uint8_t> p1 = {20};
    const std::vector<std::uint8_t> p2 = {30, 31, 32, 33, 34};
    {
        JournalWriter writer(master.path());
        writer.append(p0);
        writer.append(p1);
        writer.append(p2);
    }
    const std::uint64_t full = fileSize(master.path());
    const std::uint64_t prefix2 = (kFrameHeaderBytes + p0.size()) +
                                  (kFrameHeaderBytes +
                                   p1.size()); // intact first two
    ASSERT_EQ(full, prefix2 + kFrameHeaderBytes + p2.size());

    // A SIGKILL can cut the file anywhere inside the final frame: in
    // the length word, the checksum, or the payload. Every cut must
    // recover exactly the first two records and report the tail.
    for (std::uint64_t cut = prefix2; cut < full; ++cut) {
        TempFile torn("torn_cut" + std::to_string(cut));
        fs::copy_file(master.path(), torn.path(),
                      fs::copy_options::overwrite_existing);
        fs::resize_file(torn.path(), cut);

        JournalRecovery recovery = readJournal(torn.path());
        ASSERT_EQ(recovery.records.size(), 2u) << "cut at " << cut;
        EXPECT_EQ(recovery.records[0], p0);
        EXPECT_EQ(recovery.records[1], p1);
        EXPECT_EQ(recovery.validBytes, prefix2);
        EXPECT_EQ(recovery.droppedBytes, cut - prefix2);

        // Recovery truncates the tail and appending continues cleanly.
        truncateToValidPrefix(torn.path(), recovery);
        EXPECT_EQ(fileSize(torn.path()), prefix2);
        {
            JournalWriter writer(torn.path());
            writer.append(p2);
        }
        const JournalRecovery again = readJournal(torn.path());
        ASSERT_EQ(again.records.size(), 3u);
        EXPECT_EQ(again.records[2], p2);
        EXPECT_EQ(again.droppedBytes, 0u);
    }
}

TEST(JournalFraming, CorruptedChecksumDropsTail)
{
    TempFile file("corrupt");
    {
        JournalWriter writer(file.path());
        writer.append({1, 2, 3});
        writer.append({4, 5, 6});
    }
    // Flip one payload byte of the second record; its checksum now
    // fails and the reader must stop after the first record.
    std::fstream f(file.path(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(static_cast<std::streamoff>(kFrameHeaderBytes + 3 +
                                        kFrameHeaderBytes + 1));
    f.put(static_cast<char>(0x7F));
    f.close();

    const JournalRecovery recovery = readJournal(file.path());
    ASSERT_EQ(recovery.records.size(), 1u);
    EXPECT_EQ(recovery.records[0], (std::vector<std::uint8_t>{1, 2, 3}));
    EXPECT_GT(recovery.droppedBytes, 0u);
}

// ---------------------------------------------------------------------
// Record layer: unit records and campaign identity.
// ---------------------------------------------------------------------

UnitRecord
sampleRecord()
{
    UnitRecord record;
    record.configName = "x86-4-50-64";
    record.testIndex = 7;
    record.genSeed = 0x1111111111111111ull;
    record.flowSeed = 0x2222222222222222ull;
    record.outcome.status = TestStatus::Ok;
    record.outcome.ok = true;
    record.outcome.retriesUsed = 1;
    record.outcome.hungAttempts = 2;

    FlowResult &r = record.outcome.result;
    r.iterationsRun = 4096;
    r.uniqueSignatures = 123;
    r.signatureSetDigest = 0xfeedfacecafebeefull;
    r.assertionFailures = 1;
    r.platformCrashes = 2;
    r.violatingSignatures = 3;
    r.collective.graphsChecked = 123;
    r.collective.completeSorts = 4;
    r.collective.noResortNeeded = 60;
    r.collective.incrementalResorts = 59;
    r.collective.affectedFraction =
        RunningStat::fromSumCount(17.25, 59);
    r.collective.verticesProcessed = 1000;
    r.collective.edgesProcessed = 2000;
    r.conventional.graphsChecked = 123;
    r.conventional.verticesProcessed = 5000;
    r.conventional.edgesProcessed = 9000;
    r.collectiveMs = 1.5;
    r.conventionalMs = 12.25;
    r.decodeMs = 0.125;
    r.originalCycles = 11;
    r.computeCycles = 22;
    r.sortCycles = 33;
    r.computationOverhead = 0.4;
    r.sortingOverhead = 0.6;
    r.intrusive.testLoads = 100;
    r.intrusive.testStores = 101;
    r.intrusive.flushStores = 102;
    r.intrusive.signatureWords = 103;
    r.intrusive.signatureBytes = 104;
    r.code.originalBytes = 2048;
    r.code.instrumentedBytes = 4096;
    r.violationWitness = "cycle: a -> b -> a";
    r.fault.injected.bitFlips = 5;
    r.fault.injected.corruptedIterations = 4;
    r.fault.recordedIterations = 4100;
    r.fault.quarantined.resize(3);
    r.fault.quarantinedIterations = 9;
    r.fault.decodedSignatures = 120;
    r.fault.confirmedViolations = 2;
    r.fault.transientViolations = 1;
    r.fault.confirmationRunsUsed = 6;
    r.fault.crashRetries = 1;
    r.fault.note = "degraded: something happened";
    r.profile.totalNs = 777;
    r.profile.ns[2] = 555;
    r.profile.count[2] = 3;
    return record;
}

TEST(UnitRecordCodec, RoundTripsEveryJournaledField)
{
    const UnitRecord a = sampleRecord();
    const UnitRecord b = decodeUnitRecord(encodeUnitRecord(a));

    EXPECT_EQ(b.configName, a.configName);
    EXPECT_EQ(b.testIndex, a.testIndex);
    EXPECT_EQ(b.genSeed, a.genSeed);
    EXPECT_EQ(b.flowSeed, a.flowSeed);
    EXPECT_EQ(b.outcome.status, a.outcome.status);
    EXPECT_EQ(b.outcome.ok, a.outcome.ok);
    EXPECT_EQ(b.outcome.retriesUsed, a.outcome.retriesUsed);
    EXPECT_EQ(b.outcome.hungAttempts, a.outcome.hungAttempts);

    const FlowResult &x = a.outcome.result;
    const FlowResult &y = b.outcome.result;
    EXPECT_EQ(y.iterationsRun, x.iterationsRun);
    EXPECT_EQ(y.uniqueSignatures, x.uniqueSignatures);
    EXPECT_EQ(y.signatureSetDigest, x.signatureSetDigest);
    EXPECT_EQ(y.assertionFailures, x.assertionFailures);
    EXPECT_EQ(y.platformCrashes, x.platformCrashes);
    EXPECT_EQ(y.violatingSignatures, x.violatingSignatures);
    EXPECT_EQ(y.collective.graphsChecked, x.collective.graphsChecked);
    EXPECT_EQ(y.collective.completeSorts, x.collective.completeSorts);
    EXPECT_EQ(y.collective.noResortNeeded, x.collective.noResortNeeded);
    EXPECT_EQ(y.collective.incrementalResorts,
              x.collective.incrementalResorts);
    EXPECT_EQ(y.collective.affectedFraction.sum(),
              x.collective.affectedFraction.sum());
    EXPECT_EQ(y.collective.affectedFraction.count(),
              x.collective.affectedFraction.count());
    EXPECT_EQ(y.collective.verticesProcessed,
              x.collective.verticesProcessed);
    EXPECT_EQ(y.collective.edgesProcessed, x.collective.edgesProcessed);
    EXPECT_EQ(y.conventional.graphsChecked,
              x.conventional.graphsChecked);
    EXPECT_EQ(y.conventional.verticesProcessed,
              x.conventional.verticesProcessed);
    EXPECT_EQ(y.conventional.edgesProcessed,
              x.conventional.edgesProcessed);
    EXPECT_EQ(y.collectiveMs, x.collectiveMs);
    EXPECT_EQ(y.conventionalMs, x.conventionalMs);
    EXPECT_EQ(y.decodeMs, x.decodeMs);
    EXPECT_EQ(y.originalCycles, x.originalCycles);
    EXPECT_EQ(y.computeCycles, x.computeCycles);
    EXPECT_EQ(y.sortCycles, x.sortCycles);
    EXPECT_EQ(y.computationOverhead, x.computationOverhead);
    EXPECT_EQ(y.sortingOverhead, x.sortingOverhead);
    EXPECT_EQ(y.intrusive.testLoads, x.intrusive.testLoads);
    EXPECT_EQ(y.intrusive.signatureBytes, x.intrusive.signatureBytes);
    EXPECT_EQ(y.code.originalBytes, x.code.originalBytes);
    EXPECT_EQ(y.code.instrumentedBytes, x.code.instrumentedBytes);
    EXPECT_EQ(y.violationWitness, x.violationWitness);
    EXPECT_EQ(y.fault.injected.bitFlips, x.fault.injected.bitFlips);
    EXPECT_EQ(y.fault.injected.corruptedIterations,
              x.fault.injected.corruptedIterations);
    EXPECT_EQ(y.fault.recordedIterations, x.fault.recordedIterations);
    EXPECT_EQ(y.fault.quarantinedCount(), x.fault.quarantinedCount());
    EXPECT_EQ(y.fault.quarantinedIterations,
              x.fault.quarantinedIterations);
    EXPECT_EQ(y.fault.decodedSignatures, x.fault.decodedSignatures);
    EXPECT_EQ(y.fault.confirmedViolations, x.fault.confirmedViolations);
    EXPECT_EQ(y.fault.transientViolations, x.fault.transientViolations);
    EXPECT_EQ(y.fault.confirmationRunsUsed,
              x.fault.confirmationRunsUsed);
    EXPECT_EQ(y.fault.crashRetries, x.fault.crashRetries);
    EXPECT_EQ(y.fault.note, x.fault.note);
    EXPECT_EQ(y.profile.totalNs, x.profile.totalNs);
    EXPECT_EQ(y.profile.ns, x.profile.ns);
    EXPECT_EQ(y.profile.count, x.profile.count);
}

TEST(CampaignJournalFile, RejectsForeignIdentityOnResume)
{
    TempFile file("identity");
    CampaignJournal::Identity mine{0x1234, "mine"};
    CampaignJournal::Identity other{0x9999, "other"};
    {
        CampaignJournal journal(file.path(), mine, false);
        journal.append(sampleRecord());
    }
    EXPECT_NO_THROW(CampaignJournal(file.path(), mine, true));
    EXPECT_THROW(CampaignJournal(file.path(), other, true),
                 ConfigError);
}

TEST(CampaignJournalFile, ForkedWorkerDoesNotInheritTheFlock)
{
    // The flock lives on the open-file description, which forked
    // workers inherit: a SIGKILLed campaign's still-dying fleet must
    // not keep the journal locked against the resume taking over.
    // Re-enact the race deterministically: a "campaign" process takes
    // the lock, forks a "worker" that drops parent-only fds, then
    // dies without running a single destructor; the worker outlives
    // it, and the journal must still be immediately lockable.
    TempFile file("forklock");
    CampaignJournal::Identity id{5, "x"};

    int hold[2]; // keeps the worker alive until the test is done
    ASSERT_EQ(::pipe(hold), 0);
    int ready[2]; // signals "worker forked, campaign about to die"
    ASSERT_EQ(::pipe(ready), 0);

    const pid_t campaign = ::fork();
    ASSERT_GE(campaign, 0);
    if (campaign == 0) {
        ::close(ready[0]);
        ::close(hold[1]);
        CampaignJournal journal(file.path(), id, false);
        const pid_t worker = ::fork();
        if (worker == 0) {
            closeParentOnlyFds(); // what every real worker child does
            ::close(ready[1]);
            std::uint8_t b;
            (void)!::read(hold[0], &b, 1); // parked until test end
            ::_exit(0);
        }
        ::close(hold[0]);
        const std::uint8_t ok = worker > 0 ? 1 : 0;
        (void)!::write(ready[1], &ok, 1);
        ::_exit(ok ? 0 : 1); // skip destructors: SIGKILL stand-in
    }
    ::close(ready[1]);
    ::close(hold[0]);
    std::uint8_t ok = 0;
    ASSERT_EQ(::read(ready[0], &ok, 1), 1);
    ::close(ready[0]);
    ASSERT_EQ(ok, 1);
    const ChildExit ce = waitChild(campaign);
    ASSERT_FALSE(ce.signaled);
    ASSERT_EQ(ce.exitCode, 0);

    // Campaign dead, worker alive. Without the parent-only registry
    // this throws "locked by another campaign".
    EXPECT_NO_THROW(CampaignJournal(file.path(), id, true));

    ::close(hold[1]); // unparks the worker; init reaps it
}

TEST(CampaignJournalFile, ResumeOfMissingOrEmptyJournalThrows)
{
    TempFile file("missing");
    CampaignJournal::Identity id{1, "x"};
    EXPECT_THROW(CampaignJournal(file.path(), id, true), ConfigError);
    std::ofstream(file.path()).close(); // exists but empty
    EXPECT_THROW(CampaignJournal(file.path(), id, true), ConfigError);
}

TEST(CampaignJournalFile, FreshOpenDiscardsStaleFile)
{
    TempFile file("stale");
    CampaignJournal::Identity id{42, "x"};
    {
        CampaignJournal journal(file.path(), id, false);
        journal.append(sampleRecord());
    }
    {
        // Re-opening fresh must not leave the old unit visible.
        CampaignJournal journal(file.path(), id, false);
    }
    CampaignJournal resumed(file.path(), id, true);
    EXPECT_EQ(resumed.replayedUnits(), 0u);
    EXPECT_EQ(resumed.find("x86-4-50-64", 7), nullptr);
}

TEST(CampaignJournalFile, FindReplaysAppendedUnits)
{
    TempFile file("find");
    CampaignJournal::Identity id{7, "x"};
    {
        CampaignJournal journal(file.path(), id, false);
        UnitRecord rec = sampleRecord();
        journal.append(rec);
        rec.testIndex = 8;
        rec.outcome.result.uniqueSignatures = 999;
        journal.append(rec);
    }
    CampaignJournal resumed(file.path(), id, true);
    EXPECT_EQ(resumed.replayedUnits(), 2u);
    ASSERT_NE(resumed.find("x86-4-50-64", 7), nullptr);
    ASSERT_NE(resumed.find("x86-4-50-64", 8), nullptr);
    EXPECT_EQ(resumed.find("x86-4-50-64", 8)
                  ->outcome.result.uniqueSignatures,
              999u);
    EXPECT_EQ(resumed.find("x86-4-50-64", 9), nullptr);
    EXPECT_EQ(resumed.find("ARM-4-50-64", 7), nullptr);
}

// ---------------------------------------------------------------------
// Campaign checkpoint/resume: bit-identical summaries after a kill.
// ---------------------------------------------------------------------

/** Every deterministic summary field (ms fields excluded: re-run
 * units re-measure wall-clock). */
void
expectSummariesIdentical(const ConfigSummary &a, const ConfigSummary &b)
{
    EXPECT_EQ(a.tests, b.tests);
    EXPECT_EQ(a.avgUniqueSignatures, b.avgUniqueSignatures);
    EXPECT_EQ(a.avgSignatureBytes, b.avgSignatureBytes);
    EXPECT_EQ(a.avgUnrelatedAccesses, b.avgUnrelatedAccesses);
    EXPECT_EQ(a.avgCodeRatio, b.avgCodeRatio);
    EXPECT_EQ(a.avgOriginalKB, b.avgOriginalKB);
    EXPECT_EQ(a.avgInstrumentedKB, b.avgInstrumentedKB);
    EXPECT_EQ(a.collectiveWork, b.collectiveWork);
    EXPECT_EQ(a.conventionalWork, b.conventionalWork);
    EXPECT_EQ(a.collectiveGraphs, b.collectiveGraphs);
    EXPECT_EQ(a.collectiveCompleteSorts, b.collectiveCompleteSorts);
    EXPECT_EQ(a.fracComplete, b.fracComplete);
    EXPECT_EQ(a.fracNoResort, b.fracNoResort);
    EXPECT_EQ(a.fracIncremental, b.fracIncremental);
    EXPECT_EQ(a.avgAffectedFraction, b.avgAffectedFraction);
    EXPECT_EQ(a.avgComputationOverhead, b.avgComputationOverhead);
    EXPECT_EQ(a.avgSortingOverhead, b.avgSortingOverhead);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.injected.totalEvents(), b.injected.totalEvents());
    EXPECT_EQ(a.quarantinedSignatures, b.quarantinedSignatures);
    EXPECT_EQ(a.quarantinedIterations, b.quarantinedIterations);
    EXPECT_EQ(a.confirmedViolations, b.confirmedViolations);
    EXPECT_EQ(a.transientViolations, b.transientViolations);
    EXPECT_EQ(a.crashRetries, b.crashRetries);
    EXPECT_EQ(a.testRetriesUsed, b.testRetriesUsed);
    EXPECT_EQ(a.failedTests, b.failedTests);
    EXPECT_EQ(a.hungTests, b.hungTests);
    EXPECT_EQ(a.hungAttempts, b.hungAttempts);
    EXPECT_EQ(a.skippedTests, b.skippedTests);
    EXPECT_EQ(a.errorEvents, b.errorEvents);
    EXPECT_EQ(a.tripped, b.tripped);
    EXPECT_EQ(a.degraded, b.degraded);
}

std::vector<TestConfig>
resumeConfigs()
{
    return {parseConfigName("x86-2-50-32"),
            parseConfigName("ARM-2-50-32")};
}

CampaignConfig
faultyCampaign()
{
    CampaignConfig campaign;
    campaign.iterations = 96;
    campaign.testsPerConfig = 3;
    campaign.runConventional = false;
    campaign.fault.bitFlipRate = 0.02;
    campaign.fault.tornStoreRate = 0.01;
    campaign.fault.dropRate = 0.01;
    campaign.fault.duplicateRate = 0.01;
    campaign.recovery.confirmationRuns = 2;
    campaign.recovery.crashRetries = 1;
    return campaign;
}

TEST(CheckpointResume, ResumeAfterMidRecordKillIsBitIdentical)
{
    const CampaignConfig base = faultyCampaign();
    const auto baseline = runCampaign(resumeConfigs(), base);

    // Produce the full journal, as the killed run would have up to
    // the cut.
    TempFile master("campaign_master");
    {
        CampaignConfig journaled = base;
        journaled.journalPath = master.path();
        const auto run = runCampaign(resumeConfigs(), journaled);
        ASSERT_EQ(run.size(), baseline.size());
        for (std::size_t i = 0; i < run.size(); ++i)
            expectSummariesIdentical(baseline[i], run[i]);
    }

    // "SIGKILL" the journal mid-record — drop ~40% of the file and
    // leave a torn frame at the cut — then resume at several thread
    // counts. Replayed units must splice with re-run units into the
    // very same summary.
    const std::uint64_t cut = fileSize(master.path()) * 6 / 10 + 3;
    for (unsigned threads : {1u, 2u, 8u}) {
        TempFile torn("campaign_cut_t" + std::to_string(threads));
        fs::copy_file(master.path(), torn.path(),
                      fs::copy_options::overwrite_existing);
        fs::resize_file(torn.path(), cut);

        CampaignConfig resumed = base;
        resumed.journalPath = torn.path();
        resumed.resume = true;
        resumed.threads = threads;
        const auto after = runCampaign(resumeConfigs(), resumed);
        ASSERT_EQ(after.size(), baseline.size());
        for (std::size_t i = 0; i < baseline.size(); ++i)
            expectSummariesIdentical(baseline[i], after[i]);
    }
}

TEST(CheckpointResume, FullyJournaledResumeReplaysWallClockToo)
{
    TempFile file("campaign_full");
    CampaignConfig campaign;
    campaign.iterations = 64;
    campaign.testsPerConfig = 2;
    campaign.journalPath = file.path();

    const auto original = runConfig(parseConfigName("x86-2-50-32"),
                                    campaign);
    campaign.resume = true;
    campaign.threads = 4;
    const auto replayed = runConfig(parseConfigName("x86-2-50-32"),
                                    campaign);
    expectSummariesIdentical(original, replayed);
    // Every unit was replayed, so even the nondeterministic wall-clock
    // sums reproduce the original run's measurements exactly.
    EXPECT_EQ(replayed.collectiveMs, original.collectiveMs);
    EXPECT_EQ(replayed.conventionalMs, original.conventionalMs);
}

TEST(CheckpointResume, ResumeUnderDifferentKnobsIsRejected)
{
    TempFile file("campaign_identity");
    CampaignConfig campaign;
    campaign.iterations = 48;
    campaign.testsPerConfig = 1;
    campaign.journalPath = file.path();
    runConfig(parseConfigName("x86-2-50-32"), campaign);

    campaign.resume = true;
    campaign.iterations = 64; // different result stream
    EXPECT_THROW(runConfig(parseConfigName("x86-2-50-32"), campaign),
                 ConfigError);

    // Operational knobs may change freely between run and resume.
    campaign.iterations = 48;
    campaign.threads = 8;
    campaign.testTimeoutMs = 60'000;
    campaign.errorBudget = 100;
    EXPECT_NO_THROW(
        runConfig(parseConfigName("x86-2-50-32"), campaign));
}

// ---------------------------------------------------------------------
// Watchdog: hung runs are reclaimed and reported.
// ---------------------------------------------------------------------

TEST(WatchdogUnit, FiresAfterDeadline)
{
    Watchdog watchdog;
    CancellationToken token;
    const auto guard =
        watchdog.watch(token, std::chrono::milliseconds(30));
    const auto start = std::chrono::steady_clock::now();
    while (!token.stopRequested() &&
           std::chrono::steady_clock::now() - start <
               std::chrono::seconds(5)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(token.stopRequested());
    EXPECT_EQ(watchdog.firedCount(), 1u);
}

TEST(WatchdogUnit, GuardDestructionDisarms)
{
    Watchdog watchdog;
    CancellationToken token;
    {
        const auto guard =
            watchdog.watch(token, std::chrono::milliseconds(200));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    EXPECT_FALSE(token.stopRequested());
    EXPECT_EQ(watchdog.firedCount(), 0u);
}

TEST(WatchdogCampaign, InjectedInfiniteStallIsReclaimedWithinBound)
{
    CampaignConfig campaign;
    campaign.iterations = 64;
    campaign.testsPerConfig = 2;
    campaign.testRetries = 0;
    campaign.runConventional = false;
    campaign.stallAfterSteps = 40; // wedge every run
    campaign.testTimeoutMs = 200;

    const auto start = std::chrono::steady_clock::now();
    const ConfigSummary summary =
        runConfig(parseConfigName("x86-2-50-32"), campaign);
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);

    EXPECT_EQ(summary.tests, 0u);
    EXPECT_EQ(summary.hungTests, 2u);
    EXPECT_EQ(summary.hungAttempts, 2u);
    EXPECT_EQ(summary.failedTests, 0u);
    // Acceptance bound: each wedged unit reclaimed within 2x its
    // deadline (serial campaign: two units back to back).
    EXPECT_LT(elapsed.count(), 2 * 2 * 200);
}

TEST(WatchdogCampaign, HungAttemptRetriesAndRecovers)
{
    // Retried attempts re-generate with fresh seeds but the platform
    // drill wedges unconditionally, so with a retry budget of 2 every
    // unit burns 3 hung attempts and still ends Hung.
    CampaignConfig campaign;
    campaign.iterations = 32;
    campaign.testsPerConfig = 1;
    campaign.testRetries = 2;
    campaign.runConventional = false;
    campaign.stallAfterSteps = 40;
    campaign.testTimeoutMs = 100;

    const ConfigSummary summary =
        runConfig(parseConfigName("x86-2-50-32"), campaign);
    EXPECT_EQ(summary.hungTests, 1u);
    EXPECT_EQ(summary.hungAttempts, 3u);
    EXPECT_EQ(summary.testRetriesUsed, 2u);
}

// ---------------------------------------------------------------------
// Circuit breaker: a poisoned config stops burning wall-clock.
// ---------------------------------------------------------------------

TEST(CircuitBreaker, TripsAfterBudgetAndSkipsRemainingUnits)
{
    CampaignConfig campaign;
    campaign.iterations = 64;
    campaign.testsPerConfig = 4;
    campaign.testRetries = 0;
    campaign.runConventional = false;
    campaign.stallAfterSteps = 40;
    campaign.testTimeoutMs = 150;
    campaign.errorBudget = 1;
    campaign.threads = 1; // deterministic trip point

    const ConfigSummary summary =
        runConfig(parseConfigName("x86-2-50-32"), campaign);
    EXPECT_TRUE(summary.tripped);
    EXPECT_TRUE(summary.degraded);
    EXPECT_EQ(summary.hungTests, 1u);
    EXPECT_EQ(summary.skippedTests, 3u);
    EXPECT_GE(summary.errorEvents, campaign.errorBudget);
    EXPECT_NE(summary.error.find("circuit breaker"),
              std::string::npos);
}

TEST(CircuitBreaker, BudgetZeroNeverTrips)
{
    CampaignConfig campaign;
    campaign.iterations = 32;
    campaign.testsPerConfig = 2;
    campaign.testRetries = 0;
    campaign.runConventional = false;
    campaign.stallAfterSteps = 40;
    campaign.testTimeoutMs = 100;
    campaign.errorBudget = 0;

    const ConfigSummary summary =
        runConfig(parseConfigName("x86-2-50-32"), campaign);
    EXPECT_FALSE(summary.tripped);
    EXPECT_EQ(summary.skippedTests, 0u);
    EXPECT_EQ(summary.hungTests, 2u);
}

TEST(CircuitBreaker, BreakerIsPerConfig)
{
    // Only the first config is wedged: the breaker must trip it alone
    // while the healthy config completes all its tests.
    CampaignConfig campaign;
    campaign.iterations = 48;
    campaign.testsPerConfig = 3;
    campaign.testRetries = 0;
    campaign.runConventional = false;
    campaign.errorBudget = 1;
    campaign.threads = 1;

    // The drill wedges every config equally, so vary by config size
    // instead: give the wedging campaign one poisoned config followed
    // by a healthy one by running them in separate calls and checking
    // independence of the books.
    CampaignConfig wedged = campaign;
    wedged.stallAfterSteps = 40;
    wedged.testTimeoutMs = 150;

    const auto summaries = runCampaign(
        {parseConfigName("x86-2-50-32")}, wedged);
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_TRUE(summaries[0].tripped);

    const auto healthy =
        runCampaign({parseConfigName("ARM-2-50-32")}, campaign);
    ASSERT_EQ(healthy.size(), 1u);
    EXPECT_FALSE(healthy[0].tripped);
    EXPECT_EQ(healthy[0].tests, 3u);
}

// ---------------------------------------------------------------------
// ThreadPool cancellation path.
// ---------------------------------------------------------------------

TEST(ThreadPoolStop, DrainFalseDiscardsQueuedTasks)
{
    std::atomic<unsigned> executed{0};
    ThreadPool pool(1, 64);
    // Park the single worker so everything else stays queued.
    pool.submit([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
    });
    for (int i = 0; i < 32; ++i)
        pool.submit([&] { ++executed; });
    pool.stop(false);
    // The parked task ran; the 32 queued tasks were discarded.
    EXPECT_EQ(executed.load(), 0u);

    // Idempotent, and submit() after stop drops the task silently.
    pool.stop(false);
    pool.submit([&] { ++executed; });
    EXPECT_EQ(executed.load(), 0u);
}

TEST(ThreadPoolStop, DrainTrueRunsEverythingFirst)
{
    std::atomic<unsigned> executed{0};
    {
        ThreadPool pool(2, 8);
        for (int i = 0; i < 64; ++i)
            pool.submit([&] { ++executed; });
        pool.stop(true);
    }
    EXPECT_EQ(executed.load(), 64u);
}

// ---------------------------------------------------------------------
// Environment knobs.
// ---------------------------------------------------------------------

TEST(CampaignEnv, JournalAndTimeoutOverrides)
{
    ::setenv("MTC_JOURNAL", "/tmp/run.mtcj", 1);
    ::setenv("MTC_TEST_TIMEOUT_MS", "1500", 1);
    const CampaignConfig cfg = CampaignConfig::fromEnv();
    EXPECT_EQ(cfg.journalPath, "/tmp/run.mtcj");
    EXPECT_EQ(cfg.testTimeoutMs, 1500u);
    ::unsetenv("MTC_JOURNAL");
    ::unsetenv("MTC_TEST_TIMEOUT_MS");
}

TEST(CampaignEnv, EmptyJournalAndGarbledTimeoutRejected)
{
    ::setenv("MTC_JOURNAL", "", 1);
    EXPECT_THROW(CampaignConfig::fromEnv(), ConfigError);
    ::unsetenv("MTC_JOURNAL");

    ::setenv("MTC_TEST_TIMEOUT_MS", "soon", 1);
    EXPECT_THROW(CampaignConfig::fromEnv(), ConfigError);
    ::setenv("MTC_TEST_TIMEOUT_MS", "-5", 1);
    EXPECT_THROW(CampaignConfig::fromEnv(), ConfigError);
    ::unsetenv("MTC_TEST_TIMEOUT_MS");

    // Zero stays legal: it means "no watchdog".
    ::setenv("MTC_TEST_TIMEOUT_MS", "0", 1);
    EXPECT_EQ(CampaignConfig::fromEnv().testTimeoutMs, 0u);
    ::unsetenv("MTC_TEST_TIMEOUT_MS");
}

} // namespace
} // namespace mtc
