/**
 * @file
 * Offline checking tests: dump→check byte-identity across execution
 * modes and checker thread counts, torn-trace recovery to the longest
 * intact prefix at every byte offset, checkpointed resume of a killed
 * check, and classification of tampered, duplicated, and foreign
 * records.
 *
 * "Byte-identical" is asserted on the exact bytes the report layer
 * folds into the printed digests (campaign_report.h's foldSummary), so
 * these tests compare what the CI smoke byte-diffs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/trace_format.h"
#include "harness/campaign.h"
#include "harness/campaign_journal.h"
#include "harness/campaign_report.h"
#include "harness/trace_check.h"
#include "support/journal.h"

namespace mtc
{
namespace
{

namespace fs = std::filesystem;

/** Unique scratch path that cleans up after itself. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : p((fs::temp_directory_path() /
             ("mtc_tchk_" + name + "_" +
              std::to_string(static_cast<std::uint64_t>(::getpid()))))
                .string())
    {
        std::remove(p.c_str());
    }

    ~TempFile() { std::remove(p.c_str()); }

    const std::string &path() const { return p; }

  private:
    std::string p;
};

/** The exact byte stream behind a printed per-config digest. */
std::vector<std::uint8_t>
digestBytes(const ConfigSummary &summary)
{
    ByteWriter w;
    foldSummary(w, summary);
    return w.bytes();
}

void
expectReportIdentical(const std::vector<ConfigSummary> &inline_run,
                      const std::vector<ConfigSummary> &offline,
                      const std::string &what)
{
    ASSERT_EQ(inline_run.size(), offline.size()) << what;
    for (std::size_t i = 0; i < inline_run.size(); ++i)
        EXPECT_EQ(digestBytes(inline_run[i]), digestBytes(offline[i]))
            << what << ": config " << inline_run[i].cfg.name();
}

std::vector<TestConfig>
smallConfigs()
{
    return {parseConfigName("x86-2-50-32"),
            parseConfigName("ARM-2-50-32")};
}

/** Small but eventful: fault injection plus confirmation, so the
 * offline verifier re-derives quarantine ledgers and transient
 * verdicts, not just clean streams. */
CampaignConfig
faultyCampaign()
{
    CampaignConfig campaign;
    campaign.iterations = 64;
    campaign.testsPerConfig = 2;
    campaign.runConventional = false;
    campaign.fault.bitFlipRate = 0.02;
    campaign.fault.tornStoreRate = 0.01;
    campaign.fault.dropRate = 0.01;
    campaign.fault.duplicateRate = 0.01;
    campaign.recovery.confirmationRuns = 2;
    campaign.recovery.crashRetries = 1;
    return campaign;
}

// ---------------------------------------------------------------------
// Byte-identity: modes x checker threads.
// ---------------------------------------------------------------------

TEST(TraceCheck, DumpCheckByteIdenticalAcrossModesAndThreads)
{
    const CampaignConfig base = faultyCampaign();
    const auto inline_run = runCampaign(smallConfigs(), base);

    const struct
    {
        ExecutionMode mode;
        const char *name;
    } modes[] = {
        {ExecutionMode::InProcess, "in-process"},
        {ExecutionMode::Sandboxed, "sandboxed"},
        {ExecutionMode::Distributed, "distributed"},
    };
    for (const auto &m : modes) {
        TempFile trace(std::string("modes_") + m.name);
        CampaignConfig producer = base;
        producer.mode = m.mode;
        producer.dumpTracePath = trace.path();
        const auto produced = runCampaign(smallConfigs(), producer);
        expectReportIdentical(inline_run, produced,
                              std::string(m.name) + " producer");

        for (const unsigned threads : {1u, 2u, 8u}) {
            TraceCheckOptions opt;
            opt.tracePath = trace.path();
            opt.threads = threads;
            const TraceCheckReport report = checkTrace(opt);
            EXPECT_FALSE(report.anyFault())
                << m.name << " threads=" << threads;
            EXPECT_EQ(report.unitsVerified, 4u);
            EXPECT_EQ(report.missingUnits, 0u);
            expectReportIdentical(inline_run, report.summaries,
                                  std::string(m.name) + " check t" +
                                      std::to_string(threads));
        }

        // The barrier pipeline must reproduce the same bytes too.
        TraceCheckOptions barrier;
        barrier.tracePath = trace.path();
        barrier.streamCheck = false;
        expectReportIdentical(inline_run, checkTrace(barrier).summaries,
                              std::string(m.name) + " barrier check");
    }
}

// ---------------------------------------------------------------------
// Torn traces: longest intact prefix at every byte offset.
// ---------------------------------------------------------------------

TEST(TraceCheck, TornTraceCheckedToLongestPrefixAtEveryByteOffset)
{
    CampaignConfig campaign;
    campaign.iterations = 32;
    campaign.testsPerConfig = 2;
    campaign.runConventional = false;

    TempFile master("torn_master");
    campaign.dumpTracePath = master.path();
    const auto inline_run =
        runCampaign({parseConfigName("x86-2-50-32")}, campaign);

    const JournalRecovery layout = readJournal(master.path());
    ASSERT_EQ(layout.records.size(), 3u); // header + 2 units
    std::vector<std::uint64_t> ends;
    std::uint64_t at = 0;
    for (const auto &rec : layout.records) {
        at += kFrameHeaderBytes + rec.size();
        ends.push_back(at);
    }
    const std::uint64_t total = ends.back();
    ASSERT_EQ(total, fs::file_size(master.path()));

    for (std::uint64_t cut = 0; cut <= total; ++cut) {
        TempFile torn("torn_cut" + std::to_string(cut));
        fs::copy_file(master.path(), torn.path(),
                      fs::copy_options::overwrite_existing);
        fs::resize_file(torn.path(), cut);

        TraceCheckOptions opt;
        opt.tracePath = torn.path();
        if (cut < ends[0]) {
            // No intact header: fatal in any mode, and classified.
            try {
                (void)checkTrace(opt);
                FAIL() << "headerless prefix checked at cut " << cut;
            } catch (const TraceError &err) {
                EXPECT_EQ(err.kind(), TraceFaultKind::Truncated)
                    << "cut at " << cut;
            }
            continue;
        }
        const std::size_t intact =
            cut >= ends[2] ? 2 : cut >= ends[1] ? 1 : 0;
        const TraceCheckReport report = checkTrace(opt);
        EXPECT_EQ(report.unitsVerified, intact) << "cut at " << cut;
        EXPECT_EQ(report.missingUnits, 2 - intact) << "cut at " << cut;
        EXPECT_EQ(report.anyFault(), cut != total) << "cut at " << cut;
        ASSERT_EQ(report.summaries.size(), 1u);
        if (intact == 2) {
            expectReportIdentical(inline_run, report.summaries,
                                  "cut at " + std::to_string(cut));
        } else {
            // Partial coverage: the verified prefix is summarized, the
            // torn remainder counts as skipped — never as clean.
            EXPECT_EQ(report.summaries[0].tests, intact)
                << "cut at " << cut;
            EXPECT_EQ(report.summaries[0].skippedTests, 2 - intact)
                << "cut at " << cut;
        }

        // Strict mode refuses the same torn prefix outright.
        if (cut != total) {
            TraceCheckOptions strict = opt;
            strict.strict = true;
            EXPECT_THROW((void)checkTrace(strict), TraceError)
                << "cut at " << cut;
        }
    }
}

// ---------------------------------------------------------------------
// Checkpointed resume.
// ---------------------------------------------------------------------

TEST(TraceCheck, ResumeReplaysCheckpointedVerdictsBitIdentically)
{
    const CampaignConfig base = faultyCampaign();
    TempFile trace("resume_trace");
    CampaignConfig producer = base;
    producer.dumpTracePath = trace.path();
    const auto inline_run = runCampaign(smallConfigs(), producer);

    TempFile ckpt("resume_ckpt");
    TraceCheckOptions opt;
    opt.tracePath = trace.path();
    opt.checkpointPath = ckpt.path();
    const TraceCheckReport first = checkTrace(opt);
    EXPECT_EQ(first.unitsVerified, 4u);
    EXPECT_EQ(first.unitsReplayed, 0u);
    expectReportIdentical(inline_run, first.summaries, "first pass");

    // A completed checkpoint replays every verdict.
    opt.resume = true;
    const TraceCheckReport full = checkTrace(opt);
    EXPECT_EQ(full.unitsReplayed, 4u);
    EXPECT_EQ(full.unitsVerified, 0u);
    expectReportIdentical(inline_run, full.summaries, "full resume");

    // "SIGKILL" the checker: tear the checkpoint mid-record. The
    // resumed check replays the intact verdicts, re-checks the rest,
    // and still reproduces the same bytes.
    const std::uint64_t torn_size =
        fs::file_size(ckpt.path()) * 6 / 10 + 3;
    fs::resize_file(ckpt.path(), torn_size);
    const TraceCheckReport resumed = checkTrace(opt);
    EXPECT_GT(resumed.unitsReplayed, 0u);
    EXPECT_GT(resumed.unitsVerified, 0u);
    EXPECT_EQ(resumed.unitsReplayed + resumed.unitsVerified, 4u);
    expectReportIdentical(inline_run, resumed.summaries, "torn resume");

    // A checkpoint for another trace is rebuilt, not trusted.
    TempFile other_trace("resume_other");
    CampaignConfig other = base;
    other.seed = base.seed + 1;
    other.dumpTracePath = other_trace.path();
    const auto other_inline = runCampaign(smallConfigs(), other);
    TraceCheckOptions cross;
    cross.tracePath = other_trace.path();
    cross.checkpointPath = ckpt.path();
    cross.resume = true;
    const TraceCheckReport rebuilt = checkTrace(cross);
    EXPECT_EQ(rebuilt.unitsReplayed, 0u);
    EXPECT_EQ(rebuilt.unitsVerified, 4u);
    expectReportIdentical(other_inline, rebuilt.summaries,
                          "foreign checkpoint");
}

// ---------------------------------------------------------------------
// Tampered, duplicated, and foreign records.
// ---------------------------------------------------------------------

/** Rewrite @p path from whole frame payloads (journal layer). */
void
rewriteFrames(const std::string &path,
              const std::vector<std::vector<std::uint8_t>> &frames)
{
    std::remove(path.c_str());
    JournalWriter writer(path);
    for (const auto &frame : frames)
        writer.append(frame);
}

std::vector<std::vector<std::uint8_t>>
dumpSmallTrace(const std::string &path, std::uint64_t seed = 2017)
{
    CampaignConfig campaign;
    campaign.iterations = 32;
    campaign.testsPerConfig = 2;
    campaign.runConventional = false;
    campaign.seed = seed;
    campaign.dumpTracePath = path;
    (void)runCampaign({parseConfigName("x86-2-50-32")}, campaign);
    return readJournal(path).records;
}

TEST(TraceCheck, TamperedUnitQuarantinedAsFingerprintMismatch)
{
    TempFile trace("tamper");
    auto frames = dumpSmallTrace(trace.path());
    ASSERT_EQ(frames.size(), 3u);

    // Re-frame unit 1 with a plausible lie: same stream, wrong count.
    // The frame checksum is valid again after re-framing, so only the
    // offline recomputation can catch it.
    UnitRecord unit = decodeUnitRecord(std::vector<std::uint8_t>(
        frames[2].begin() + 1, frames[2].end()));
    unit.outcome.result.violatingSignatures += 1;
    std::vector<std::uint8_t> payload = {kTraceUnitTag};
    const auto body = encodeUnitRecord(unit);
    payload.insert(payload.end(), body.begin(), body.end());
    frames[2] = payload;
    rewriteFrames(trace.path(), frames);

    TraceCheckOptions opt;
    opt.tracePath = trace.path();
    const TraceCheckReport report = checkTrace(opt);
    EXPECT_EQ(report.unitsVerified, 1u);
    EXPECT_EQ(report.quarantinedRecords, 1u);
    ASSERT_EQ(report.faults.size(), 1u);
    EXPECT_EQ(report.faults[0].kind,
              TraceFaultKind::FingerprintMismatch);
    ASSERT_EQ(report.summaries.size(), 1u);
    EXPECT_EQ(report.summaries[0].tests, 1u);
    EXPECT_EQ(report.summaries[0].skippedTests, 1u);

    TraceCheckOptions strict = opt;
    strict.strict = true;
    try {
        (void)checkTrace(strict);
        FAIL() << "tampered unit passed strict";
    } catch (const TraceError &err) {
        EXPECT_EQ(err.kind(), TraceFaultKind::FingerprintMismatch);
    }
}

TEST(TraceCheck, DuplicateRecordClassifiedCorruptFirstKept)
{
    TempFile trace("dup");
    auto frames = dumpSmallTrace(trace.path());
    frames.push_back(frames[1]); // duplicate unit 0 at the tail
    rewriteFrames(trace.path(), frames);

    TraceCheckOptions opt;
    opt.tracePath = trace.path();
    const TraceCheckReport report = checkTrace(opt);
    EXPECT_EQ(report.duplicateUnits, 1u);
    EXPECT_EQ(report.unitsVerified, 2u); // first copies win, both check
    ASSERT_EQ(report.faults.size(), 1u);
    EXPECT_EQ(report.faults[0].kind, TraceFaultKind::Corrupt);
    ASSERT_EQ(report.summaries.size(), 1u);
    EXPECT_EQ(report.summaries[0].tests, 2u);
}

TEST(TraceCheck, ForeignHeaderDigestRejectedAsFingerprintMismatch)
{
    TempFile trace("foreign");
    auto frames = dumpSmallTrace(trace.path());

    TraceHeader header = decodeTraceHeader(std::vector<std::uint8_t>(
        frames[0].begin() + 1, frames[0].end()));
    header.identityDigest ^= 0x1; // an edited or mixed-up trace
    frames[0] = encodeTraceHeader(header);
    rewriteFrames(trace.path(), frames);

    TraceCheckOptions opt;
    opt.tracePath = trace.path();
    try {
        (void)checkTrace(opt); // fatal even in degraded mode
        FAIL() << "foreign trace checked";
    } catch (const TraceError &err) {
        EXPECT_EQ(err.kind(), TraceFaultKind::FingerprintMismatch);
    }
}

TEST(TraceCheck, UnitFromAnotherCampaignRejectedBySeedBinding)
{
    // Splice a unit dumped under a different campaign seed into an
    // otherwise valid trace: the record decodes, the config matches,
    // but its plan-bound seeds disagree with the spec's derivation.
    TempFile trace("splice"), donor("splice_donor");
    auto frames = dumpSmallTrace(trace.path());
    const auto donor_frames = dumpSmallTrace(donor.path(), 4242);
    frames[1] = donor_frames[1];
    rewriteFrames(trace.path(), frames);

    TraceCheckOptions opt;
    opt.tracePath = trace.path();
    const TraceCheckReport report = checkTrace(opt);
    EXPECT_EQ(report.unitsVerified, 1u);
    ASSERT_GE(report.faults.size(), 1u);
    EXPECT_EQ(report.faults[0].kind,
              TraceFaultKind::FingerprintMismatch);
    // The rejected record's slot is missing, not silently adopted.
    EXPECT_EQ(report.missingUnits, 1u);
}

} // anonymous namespace
} // namespace mtc
