/**
 * @file
 * Structural tests of the litmus-test library: thread shapes,
 * locations, and store values of each classic test.
 */

#include <gtest/gtest.h>

#include "testgen/litmus.h"

namespace mtc
{
namespace
{

TEST(Litmus, StoreBufferingShape)
{
    const TestProgram p = litmus::storeBuffering();
    ASSERT_EQ(p.numThreads(), 2u);
    EXPECT_EQ(p.op(OpId{0, 0}).kind, OpKind::Store);
    EXPECT_EQ(p.op(OpId{0, 1}).kind, OpKind::Load);
    EXPECT_EQ(p.op(OpId{1, 0}).kind, OpKind::Store);
    EXPECT_EQ(p.op(OpId{1, 1}).kind, OpKind::Load);
    // Each thread stores x and loads y (and vice versa).
    EXPECT_EQ(p.op(OpId{0, 0}).loc, 0u);
    EXPECT_EQ(p.op(OpId{0, 1}).loc, 1u);
    EXPECT_EQ(p.op(OpId{1, 0}).loc, 1u);
    EXPECT_EQ(p.op(OpId{1, 1}).loc, 0u);
    EXPECT_EQ(p.loads().size(), 2u);
    EXPECT_EQ(p.stores().size(), 2u);
}

TEST(Litmus, StoreBufferingFencedHasFences)
{
    const TestProgram p = litmus::storeBufferingFenced();
    EXPECT_EQ(p.op(OpId{0, 1}).kind, OpKind::Fence);
    EXPECT_EQ(p.op(OpId{1, 1}).kind, OpKind::Fence);
}

TEST(Litmus, LoadBufferingShape)
{
    const TestProgram p = litmus::loadBuffering();
    EXPECT_EQ(p.op(OpId{0, 0}).kind, OpKind::Load);
    EXPECT_EQ(p.op(OpId{0, 1}).kind, OpKind::Store);
    // T0 loads x, stores y; T1 loads y, stores x.
    EXPECT_EQ(p.op(OpId{0, 0}).loc, 0u);
    EXPECT_EQ(p.op(OpId{0, 1}).loc, 1u);
    EXPECT_EQ(p.op(OpId{1, 0}).loc, 1u);
    EXPECT_EQ(p.op(OpId{1, 1}).loc, 0u);
}

TEST(Litmus, MessagePassingShape)
{
    const TestProgram p = litmus::messagePassing();
    // T0: st data; st flag.  T1: ld flag; ld data.
    EXPECT_EQ(p.op(OpId{0, 0}).loc, 0u);
    EXPECT_EQ(p.op(OpId{0, 1}).loc, 1u);
    EXPECT_EQ(p.op(OpId{1, 0}).loc, 1u);
    EXPECT_EQ(p.op(OpId{1, 1}).loc, 0u);
    EXPECT_EQ(p.op(OpId{1, 0}).kind, OpKind::Load);
}

TEST(Litmus, CorrSingleLocation)
{
    const TestProgram p = litmus::corr();
    EXPECT_EQ(p.config().numLocations, 1u);
    EXPECT_EQ(p.storesTo(0).size(), 1u);
    EXPECT_EQ(p.loadsOfThread(1).size(), 2u);
}

TEST(Litmus, IriwShape)
{
    const TestProgram p = litmus::iriw();
    ASSERT_EQ(p.numThreads(), 4u);
    EXPECT_EQ(p.stores().size(), 2u);
    EXPECT_EQ(p.loads().size(), 4u);
    // Readers access the two locations in opposite orders.
    EXPECT_EQ(p.op(OpId{2, 0}).loc, 0u);
    EXPECT_EQ(p.op(OpId{2, 1}).loc, 1u);
    EXPECT_EQ(p.op(OpId{3, 0}).loc, 1u);
    EXPECT_EQ(p.op(OpId{3, 1}).loc, 0u);
}

TEST(Litmus, WrcShape)
{
    const TestProgram p = litmus::wrc();
    ASSERT_EQ(p.numThreads(), 3u);
    EXPECT_EQ(p.op(OpId{1, 0}).kind, OpKind::Load);
    EXPECT_EQ(p.op(OpId{1, 1}).kind, OpKind::Store);
}

TEST(Litmus, AllProgramsIndexConsistently)
{
    for (const TestProgram &p :
         {litmus::storeBuffering(), litmus::storeBufferingFenced(),
          litmus::loadBuffering(), litmus::messagePassing(),
          litmus::corr(), litmus::iriw(), litmus::wrc()}) {
        for (std::uint32_t g = 0; g < p.numOps(); ++g)
            EXPECT_EQ(p.globalIndex(p.opIdAt(g)), g);
        for (OpId store : p.stores())
            EXPECT_EQ(p.storeForValue(p.op(store).value), store);
    }
}

TEST(Litmus, IsaSelectable)
{
    EXPECT_EQ(litmus::storeBuffering(Isa::ARMv7).config().isa,
              Isa::ARMv7);
    EXPECT_EQ(litmus::iriw(Isa::X86).config().isa, Isa::X86);
}

} // anonymous namespace
} // namespace mtc
