/**
 * @file
 * Streaming checking pipeline equivalences: the sorted-stream delta
 * decode, the incremental edge derivation, and the diff-fed collective
 * checker must each be bit-identical to their from-scratch forms — and
 * the whole streamed flow must reproduce the barrier flow's summaries,
 * quarantine ordering, and digests at every window, thread count, and
 * fault mix.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/collective_checker.h"
#include "core/load_analysis.h"
#include "core/signature_codec.h"
#include "graph/graph_builder.h"
#include "harness/validation_flow.h"
#include "sim/executor.h"
#include "testgen/generator.h"

namespace mtc
{
namespace
{

/** Sorted unique signatures of a short campaign on @p program. */
std::vector<Signature>
sortedUniques(const TestProgram &program, const SignatureCodec &codec,
              const ExecutorConfig &exec, std::uint64_t seed, int runs)
{
    OperationalExecutor platform(exec);
    Rng rng(seed);
    RunArena arena;
    std::set<Signature> unique;
    for (int i = 0; i < runs; ++i) {
        platform.runInto(program, rng, arena);
        unique.insert(codec.encode(arena.execution).signature);
    }
    return {unique.begin(), unique.end()};
}

void
expectSameStats(const CollectiveStats &a, const CollectiveStats &b)
{
    EXPECT_EQ(a.graphsChecked, b.graphsChecked);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.completeSorts, b.completeSorts);
    EXPECT_EQ(a.noResortNeeded, b.noResortNeeded);
    EXPECT_EQ(a.incrementalResorts, b.incrementalResorts);
    EXPECT_EQ(a.affectedFraction.count(), b.affectedFraction.count());
    EXPECT_EQ(a.affectedFraction.sum(), b.affectedFraction.sum());
    EXPECT_EQ(a.verticesProcessed, b.verticesProcessed);
    EXPECT_EQ(a.edgesProcessed, b.edgesProcessed);
}

void
expectSameFlowResult(const FlowResult &a, const FlowResult &b)
{
    EXPECT_EQ(a.iterationsRun, b.iterationsRun);
    EXPECT_EQ(a.uniqueSignatures, b.uniqueSignatures);
    EXPECT_EQ(a.signatureSetDigest, b.signatureSetDigest);
    EXPECT_EQ(a.violatingSignatures, b.violatingSignatures);
    EXPECT_EQ(a.violationWitness, b.violationWitness);
    expectSameStats(a.collective, b.collective);
    EXPECT_EQ(a.conventional.graphsChecked,
              b.conventional.graphsChecked);
    EXPECT_EQ(a.conventional.violations, b.conventional.violations);
    EXPECT_EQ(a.fault.decodedSignatures, b.fault.decodedSignatures);
    EXPECT_EQ(a.fault.quarantinedIterations,
              b.fault.quarantinedIterations);
    ASSERT_EQ(a.fault.quarantined.size(), b.fault.quarantined.size());
    for (std::size_t i = 0; i < a.fault.quarantined.size(); ++i) {
        const QuarantinedSignature &qa = a.fault.quarantined[i];
        const QuarantinedSignature &qb = b.fault.quarantined[i];
        EXPECT_EQ(qa.signature, qb.signature);
        EXPECT_EQ(qa.iterations, qb.iterations);
        EXPECT_EQ(qa.kind, qb.kind);
        EXPECT_EQ(qa.thread, qb.thread);
        EXPECT_EQ(qa.word, qb.word);
        EXPECT_EQ(qa.detail, qb.detail);
    }
}

// --- Incremental edge derivation ≡ from-scratch dynamicEdges ----------

class IncrementalEdges : public ::testing::TestWithParam<const char *>
{};

TEST_P(IncrementalEdges, MatchesFromScratchDerivation)
{
    const TestConfig cfg = parseConfigName(GetParam());
    const TestProgram program = generateTest(cfg, 23);
    const LoadValueAnalysis analysis(program);
    const InstrumentationPlan plan(program, analysis);
    const SignatureCodec codec(program, analysis, plan);
    const ExecutorConfig exec = bareMetalConfig(cfg.isa);
    const std::vector<Signature> sorted =
        sortedUniques(program, codec, exec, 91, 96);
    ASSERT_GT(sorted.size(), 3u);

    StreamDecoder stream(codec);
    WsOrder ws;
    EdgeDeriver deriver(program);
    EdgeDiff diff;
    std::vector<Edge> maintained; // full list kept current via diffs
    std::vector<Edge> scratch;
    for (const Signature &signature : sorted) {
        const Execution &exec_delta = stream.next(signature);
        const std::vector<std::uint32_t> &changed =
            stream.changedThreads();
        ws.inferDelta(program, exec_delta, changed.data(),
                      changed.size());
        deriver.derive(exec_delta, ws, changed.data(), changed.size(),
                       diff);
        applyEdgeDiff(maintained, diff, scratch);

        // Oracle: full decode, fresh inference, from-scratch edges.
        const DynamicEdgeSet oracle =
            dynamicEdges(program, codec.decode(signature));
        std::vector<Edge> oracle_sorted = oracle.edges;
        std::sort(oracle_sorted.begin(), oracle_sorted.end());
        EXPECT_EQ(maintained, oracle_sorted);
        EXPECT_EQ(diff.coherenceViolation, oracle.coherenceViolation);
    }
}

INSTANTIATE_TEST_SUITE_P(Models, IncrementalEdges,
                         ::testing::Values("x86-4-100-64",
                                           "ARM-7-100-64",
                                           "ARM-4-50-16"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

// --- checkNextDiff ≡ checkNext ----------------------------------------

TEST(StreamingChecker, DiffFedCheckerMatchesFullListChecker)
{
    const TestConfig cfg = parseConfigName("ARM-4-100-64");
    const TestProgram program = generateTest(cfg, 4);
    const LoadValueAnalysis analysis(program);
    const InstrumentationPlan plan(program, analysis);
    const SignatureCodec codec(program, analysis, plan);
    const std::vector<Signature> sorted = sortedUniques(
        program, codec, bareMetalConfig(cfg.isa), 17, 128);
    ASSERT_GT(sorted.size(), 3u);

    StreamDecoder stream(codec);
    WsOrder ws;
    EdgeDeriver deriver(program);
    EdgeDiff diff;
    CollectiveChecker diffed(program, MemoryModel::RMO);
    CollectiveChecker full(program, MemoryModel::RMO);
    DynamicEdgeSet full_edges;
    std::vector<Edge> scratch;
    for (const Signature &signature : sorted) {
        const Execution &exec = stream.next(signature);
        const std::vector<std::uint32_t> &changed =
            stream.changedThreads();
        ws.inferDelta(program, exec, changed.data(), changed.size());
        deriver.derive(exec, ws, changed.data(), changed.size(), diff);
        applyEdgeDiff(full_edges.edges, diff, scratch);
        full_edges.coherenceViolation = diff.coherenceViolation;
        EXPECT_EQ(diffed.checkNextDiff(diff),
                  full.checkNext(full_edges));
    }
    expectSameStats(diffed.stats(), full.stats());
}

// --- Streamed flow ≡ barrier flow -------------------------------------

FlowConfig
faultedFlow(std::uint64_t iterations)
{
    FlowConfig cfg;
    cfg.iterations = iterations;
    cfg.seed = 77;
    cfg.exec = bareMetalConfig(Isa::ARMv7);
    cfg.fault.bitFlipRate = 0.03;
    cfg.fault.truncationRate = 0.02;
    return cfg;
}

TEST(StreamingFlow, FaultedQuarantineIdenticalToBarrier)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-100-64"), 13);

    FlowConfig streamed_cfg = faultedFlow(512);
    streamed_cfg.streamCheck = true;
    FlowConfig barrier_cfg = faultedFlow(512);
    barrier_cfg.streamCheck = false;

    const FlowResult streamed =
        ValidationFlow(streamed_cfg).runTest(program);
    const FlowResult barrier =
        ValidationFlow(barrier_cfg).runTest(program);

    // A faulted readout must quarantine something for this test to
    // mean anything.
    ASSERT_GT(streamed.fault.quarantined.size(), 0u);
    expectSameFlowResult(streamed, barrier);

    // Streaming accounting only exists on the streaming side.
    EXPECT_GT(streamed.sliceReuses + streamed.sliceDecodes, 0u);
    EXPECT_EQ(barrier.sliceReuses + barrier.sliceDecodes, 0u);
}

TEST(StreamingFlow, WindowsAndThreadsAreBitIdentical)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-100-64"), 29);

    FlowConfig base;
    base.iterations = 384;
    base.seed = 5;
    base.exec = bareMetalConfig(Isa::X86);
    base.shardSize = 16; // exercise shard boundaries mid-stream

    FlowConfig barrier_cfg = base;
    barrier_cfg.streamCheck = false;
    const FlowResult barrier =
        ValidationFlow(barrier_cfg).runTest(program);

    for (std::size_t window : {std::size_t(1), std::size_t(7),
                               std::size_t(64), std::size_t(0)}) {
        for (unsigned threads : {1u, 2u}) {
            FlowConfig cfg = base;
            cfg.streamCheck = true;
            cfg.streamWindow = window;
            cfg.threads = threads;
            const FlowResult streamed =
                ValidationFlow(cfg).runTest(program);
            expectSameFlowResult(streamed, barrier);
        }
    }
}

TEST(StreamingFlow, KeptExecutionsMatchBarrier)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-50-16"), 3);
    FlowConfig cfg;
    cfg.iterations = 256;
    cfg.seed = 11;
    cfg.exec = bareMetalConfig(Isa::ARMv7);
    cfg.keepExecutions = true;

    FlowConfig barrier_cfg = cfg;
    barrier_cfg.streamCheck = false;
    const FlowResult streamed = ValidationFlow(cfg).runTest(program);
    const FlowResult barrier =
        ValidationFlow(barrier_cfg).runTest(program);

    ASSERT_EQ(streamed.executions.size(), barrier.executions.size());
    ASSERT_GT(streamed.executions.size(), 0u);
    for (std::size_t i = 0; i < streamed.executions.size(); ++i) {
        EXPECT_EQ(streamed.executions[i].loadValues,
                  barrier.executions[i].loadValues);
    }
}

} // anonymous namespace
} // namespace mtc
