/**
 * @file
 * Tests for the campaign runner: configuration aggregation, platform
 * variant selection, and environment-variable scaling.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "harness/campaign.h"

namespace mtc
{
namespace
{

TEST(Campaign, RunConfigAggregates)
{
    CampaignConfig campaign;
    campaign.iterations = 128;
    campaign.testsPerConfig = 2;

    const ConfigSummary summary =
        runConfig(parseConfigName("x86-2-50-32"), campaign);
    EXPECT_EQ(summary.tests, 2u);
    EXPECT_GE(summary.avgUniqueSignatures, 1.0);
    EXPECT_GT(summary.avgSignatureBytes, 0.0);
    EXPECT_GT(summary.avgCodeRatio, 1.0);
    EXPECT_GT(summary.avgUnrelatedAccesses, 0.0);
    EXPECT_GT(summary.collectiveMs, 0.0);
    EXPECT_GT(summary.conventionalMs, 0.0);
    EXPECT_EQ(summary.violations, 0u);

    // The classification fractions partition the graphs.
    EXPECT_NEAR(summary.fracComplete + summary.fracNoResort +
                    summary.fracIncremental,
                1.0, 1e-9);

    // Collective is the headline: less work than conventional.
    EXPECT_LE(summary.workRatio(), 1.0);
}

TEST(Campaign, PlatformVariants)
{
    const TestConfig cfg = parseConfigName("ARM-2-50-32");
    const ExecutorConfig bare =
        platformFor(cfg, PlatformVariant::BareMetal);
    const ExecutorConfig linux_like =
        platformFor(cfg, PlatformVariant::Linux);
    EXPECT_EQ(bare.model, MemoryModel::RMO);
    EXPECT_EQ(bare.timing.preemptProbability, 0.0);
    EXPECT_GT(linux_like.timing.preemptProbability, 0.0);

    const ExecutorConfig x86 = platformFor(
        parseConfigName("x86-2-50-32"), PlatformVariant::BareMetal);
    EXPECT_EQ(x86.model, MemoryModel::TSO);
}

TEST(Campaign, EnvOverrides)
{
    setenv("MTC_ITERATIONS", "777", 1);
    setenv("MTC_TESTS", "9", 1);
    setenv("MTC_SEED", "123456", 1);
    const CampaignConfig cfg = CampaignConfig::fromEnv();
    EXPECT_EQ(cfg.iterations, 777u);
    EXPECT_EQ(cfg.testsPerConfig, 9u);
    EXPECT_EQ(cfg.seed, 123456u);
    unsetenv("MTC_ITERATIONS");
    unsetenv("MTC_TESTS");
    unsetenv("MTC_SEED");

    const CampaignConfig defaults = CampaignConfig::fromEnv();
    EXPECT_EQ(defaults.iterations, CampaignConfig{}.iterations);
}

TEST(Campaign, EnvOverridesRejectGarbage)
{
    // strtoull's silent 0 for garbage used to turn MTC_ITERATIONS=abc
    // into a campaign measuring nothing; now it must fail fast with a
    // ConfigError naming the variable.
    const auto expect_rejected = [](const char *name,
                                    const char *value) {
        setenv(name, value, 1);
        try {
            (void)CampaignConfig::fromEnv();
            ADD_FAILURE() << name << "=" << value << " was accepted";
        } catch (const ConfigError &err) {
            EXPECT_NE(std::string(err.what()).find(name),
                      std::string::npos)
                << "error must name the variable: " << err.what();
        }
        unsetenv(name);
    };

    expect_rejected("MTC_ITERATIONS", "abc");
    expect_rejected("MTC_ITERATIONS", "0");
    expect_rejected("MTC_ITERATIONS", "12x");
    expect_rejected("MTC_ITERATIONS", "-5");
    expect_rejected("MTC_ITERATIONS", "");
    expect_rejected("MTC_TESTS", "lots");
    expect_rejected("MTC_TESTS", "0");
    expect_rejected("MTC_SEED", "two");

    // Seed zero is a legitimate seed and must still be accepted.
    setenv("MTC_SEED", "0", 1);
    EXPECT_EQ(CampaignConfig::fromEnv().seed, 0u);
    unsetenv("MTC_SEED");
}

TEST(Campaign, LinuxVariantRuns)
{
    CampaignConfig campaign;
    campaign.iterations = 64;
    campaign.testsPerConfig = 1;
    campaign.variant = PlatformVariant::Linux;
    campaign.runConventional = false;
    const ConfigSummary summary =
        runConfig(parseConfigName("ARM-2-50-32"), campaign);
    EXPECT_EQ(summary.tests, 1u);
    EXPECT_EQ(summary.violations, 0u);
}

TEST(Campaign, RunCampaignCoversAllConfigs)
{
    CampaignConfig campaign;
    campaign.iterations = 32;
    campaign.testsPerConfig = 1;
    campaign.runConventional = false;
    const std::vector<TestConfig> configs = {
        parseConfigName("x86-2-50-32"), parseConfigName("ARM-2-50-32")};
    const auto summaries = runCampaign(configs, campaign);
    ASSERT_EQ(summaries.size(), 2u);
    EXPECT_EQ(summaries[0].cfg.isa, Isa::X86);
    EXPECT_EQ(summaries[1].cfg.isa, Isa::ARMv7);
}

} // anonymous namespace
} // namespace mtc
