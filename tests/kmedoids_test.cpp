/**
 * @file
 * Tests for the k-medoids limit study machinery: distance matrix
 * properties and PAM clustering behaviour.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/kmedoids.h"
#include "sim/executor.h"
#include "support/error.h"
#include "testgen/generator.h"

namespace mtc
{
namespace
{

std::vector<Execution>
makeExecutions(const char *config_name, unsigned runs, std::uint64_t seed)
{
    const TestProgram program =
        generateTest(parseConfigName(config_name), seed);
    OperationalExecutor platform(scReferenceConfig());
    Rng rng(seed + 1);
    std::set<std::vector<std::uint32_t>> seen;
    std::vector<Execution> unique;
    for (unsigned i = 0; i < runs; ++i) {
        Execution execution = platform.run(program, rng);
        if (seen.insert(execution.loadValues).second)
            unique.push_back(std::move(execution));
    }
    return unique;
}

TEST(DistanceMatrix, SymmetricWithZeroDiagonal)
{
    const auto executions = makeExecutions("x86-2-50-16", 100, 3);
    ASSERT_GE(executions.size(), 3u);
    DistanceMatrix matrix(executions);
    EXPECT_EQ(matrix.size(), executions.size());
    for (std::uint32_t i = 0; i < matrix.size(); ++i) {
        EXPECT_EQ(matrix.at(i, i), 0u);
        for (std::uint32_t j = 0; j < matrix.size(); ++j)
            EXPECT_EQ(matrix.at(i, j), matrix.at(j, i));
    }
}

TEST(DistanceMatrix, MatchesRfDistance)
{
    const auto executions = makeExecutions("x86-2-50-16", 50, 5);
    DistanceMatrix matrix(executions);
    for (std::uint32_t i = 0; i < matrix.size(); ++i)
        for (std::uint32_t j = 0; j < matrix.size(); ++j)
            EXPECT_EQ(matrix.at(i, j),
                      executions[i].rfDistance(executions[j]));
}

TEST(KMedoids, TotalDistanceNonIncreasingInK)
{
    const auto executions = makeExecutions("x86-4-50-16", 200, 7);
    ASSERT_GE(executions.size(), 30u);
    DistanceMatrix matrix(executions);
    Rng rng(1);
    std::uint64_t last = ~std::uint64_t(0);
    for (std::uint32_t k : {1u, 2u, 5u, 10u, 30u}) {
        const KMedoidsResult result = kMedoids(matrix, k, rng);
        EXPECT_LE(result.totalDistance, last)
            << "more medoids cannot increase the assignment cost";
        last = result.totalDistance;
    }
}

TEST(KMedoids, KEqualsNGivesZero)
{
    const auto executions = makeExecutions("x86-2-50-16", 60, 9);
    DistanceMatrix matrix(executions);
    Rng rng(2);
    const KMedoidsResult result = kMedoids(
        matrix, static_cast<std::uint32_t>(executions.size()), rng);
    EXPECT_EQ(result.totalDistance, 0u);
    EXPECT_EQ(result.medoids.size(), executions.size());
}

TEST(KMedoids, MedoidsAreDistinctValidIndices)
{
    const auto executions = makeExecutions("x86-4-50-16", 150, 11);
    DistanceMatrix matrix(executions);
    Rng rng(3);
    const KMedoidsResult result = kMedoids(matrix, 10, rng);
    std::set<std::uint32_t> unique(result.medoids.begin(),
                                   result.medoids.end());
    EXPECT_EQ(unique.size(), result.medoids.size());
    for (std::uint32_t m : result.medoids)
        EXPECT_LT(m, matrix.size());
    EXPECT_GE(result.iterations, 1u);
}

TEST(KMedoids, KLargerThanNClamped)
{
    const auto executions = makeExecutions("x86-2-50-16", 30, 13);
    DistanceMatrix matrix(executions);
    Rng rng(4);
    const KMedoidsResult result = kMedoids(matrix, 10000, rng);
    EXPECT_EQ(result.medoids.size(), executions.size());
    EXPECT_EQ(result.totalDistance, 0u);
}

TEST(KMedoids, EmptySetThrows)
{
    std::vector<Execution> empty;
    DistanceMatrix matrix(empty);
    Rng rng(5);
    EXPECT_THROW(kMedoids(matrix, 1, rng), ConfigError);
}

TEST(KMedoids, SingletonTrivial)
{
    std::vector<Execution> one(1);
    one[0].loadValues = {1, 2, 3};
    DistanceMatrix matrix(one);
    Rng rng(6);
    const KMedoidsResult result = kMedoids(matrix, 1, rng);
    EXPECT_EQ(result.medoids, std::vector<std::uint32_t>{0});
    EXPECT_EQ(result.totalDistance, 0u);
}

} // anonymous namespace
} // namespace mtc
