/**
 * @file
 * Tests for the silicon-fault injection layer and the fault-tolerant
 * signature-checking pipeline: injector determinism and ledger
 * accounting, bit-identical behavior at zero fault rates, quarantine
 * reconciliation under heavy corruption, the K-re-execution
 * confirmation protocol (no false negatives for a real injected MCM
 * bug at 1% corruption), crash-retry recovery, and campaign survival
 * over poisoned configurations.
 */

#include <gtest/gtest.h>

#include "harness/campaign.h"
#include "harness/validation_flow.h"
#include "sim/executor.h"
#include "sim/fault_injector.h"
#include "testgen/generator.h"

namespace mtc
{
namespace
{

FaultConfig
heavyFaults()
{
    FaultConfig fault;
    fault.bitFlipRate = 0.05;
    fault.tornStoreRate = 0.02;
    fault.truncationRate = 0.01;
    fault.dropRate = 0.02;
    fault.duplicateRate = 0.02;
    return fault;
}

TEST(FaultInjector, DisabledByDefault)
{
    EXPECT_FALSE(FaultConfig{}.enabled());
    EXPECT_TRUE(heavyFaults().enabled());

    // A zero-rate injector is a pure pass-through.
    FaultInjector injector(FaultConfig{}, {2, 2});
    Signature clean{{7, 8, 9, 10}};
    for (int i = 0; i < 16; ++i) {
        const FaultedReadout readout = injector.read(clean);
        EXPECT_EQ(readout.copies, 1u);
        EXPECT_FALSE(readout.corrupted);
        EXPECT_EQ(readout.signature, clean);
    }
    EXPECT_EQ(injector.counts().totalEvents(), 0u);
}

TEST(FaultInjector, DeterministicAndLedgerConsistent)
{
    const FaultConfig fault = heavyFaults();
    FaultInjector a(fault, {3, 2, 1});
    FaultInjector b(fault, {3, 2, 1});

    Rng rng(11);
    std::uint64_t corrupted = 0, dropped = 0, recorded = 0;
    const int iterations = 2000;
    for (int i = 0; i < iterations; ++i) {
        Signature clean;
        for (int w = 0; w < 6; ++w)
            clean.words.push_back(rng() >> 8);
        const FaultedReadout ra = a.read(clean);
        const FaultedReadout rb = b.read(clean);
        EXPECT_EQ(ra.copies, rb.copies);
        EXPECT_EQ(ra.signature, rb.signature);
        corrupted += ra.corrupted ? 1 : 0;
        dropped += ra.dropped() ? 1 : 0;
        recorded += ra.copies;
    }
    EXPECT_EQ(a.counts().corruptedIterations, corrupted);
    EXPECT_EQ(a.counts().dropped, dropped);
    EXPECT_EQ(recorded, std::uint64_t(iterations) -
                  a.counts().dropped + a.counts().duplicated);

    // At these rates, thousands of iterations must show every model.
    EXPECT_GT(a.counts().bitFlips, 0u);
    EXPECT_GT(a.counts().tornStores, 0u);
    EXPECT_GT(a.counts().truncations, 0u);
    EXPECT_GT(a.counts().dropped, 0u);
    EXPECT_GT(a.counts().duplicated, 0u);
}

TEST(FaultFlow, ZeroRatesBitIdenticalToBasePipeline)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-64"), 42);

    FlowConfig base;
    base.iterations = 256;
    base.exec = bareMetalConfig(Isa::X86);
    base.seed = 7;

    // Same flow with the fault/recovery subsystem explicitly present
    // but all rates zero (and an aggressive recovery policy, which
    // must be inert without faults).
    FlowConfig gated = base;
    gated.fault = FaultConfig{};
    gated.recovery.confirmationRuns = 8;
    gated.recovery.crashRetries = 3;

    const FlowResult a = ValidationFlow(base).runTest(program);
    const FlowResult b = ValidationFlow(gated).runTest(program);

    EXPECT_EQ(a.uniqueSignatures, b.uniqueSignatures);
    EXPECT_EQ(a.violatingSignatures, b.violatingSignatures);
    EXPECT_EQ(a.assertionFailures, b.assertionFailures);
    EXPECT_EQ(a.iterationsRun, b.iterationsRun);
    EXPECT_EQ(a.originalCycles, b.originalCycles);
    EXPECT_EQ(a.computeCycles, b.computeCycles);
    EXPECT_EQ(a.collective.graphsChecked, b.collective.graphsChecked);
    EXPECT_EQ(a.collective.verticesProcessed,
              b.collective.verticesProcessed);

    // And no fault activity of any kind is recorded.
    EXPECT_EQ(b.fault.injected.totalEvents(), 0u);
    EXPECT_EQ(b.fault.quarantinedCount(), 0u);
    EXPECT_EQ(b.fault.confirmationRunsUsed, 0u);
    EXPECT_EQ(b.fault.recordedIterations, b.iterationsRun);
}

TEST(FaultFlow, QuarantineReconcilesWithInjection)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-100-64"), 5);

    FlowConfig cfg;
    cfg.iterations = 512;
    cfg.exec = bareMetalConfig(Isa::X86);
    cfg.seed = 13;
    cfg.fault = heavyFaults();

    const FlowResult r = ValidationFlow(cfg).runTest(program);
    const FaultReport &report = r.fault;

    // Ledger vs. pipeline reconciliation: what reached the host is
    // what ran, minus losses, plus duplicates ...
    EXPECT_EQ(report.recordedIterations,
              r.iterationsRun - report.injected.dropped +
                  report.injected.duplicated);
    // ... and every recorded iteration was either checked or
    // quarantined (unique signatures partition likewise).
    EXPECT_EQ(r.uniqueSignatures,
              report.decodedSignatures + report.quarantinedCount());
    EXPECT_LE(report.quarantinedIterations, report.recordedIterations);

    // At a 5% per-word flip rate over 512 iterations corruption is
    // certain, and some of it must be detected by the decoder.
    EXPECT_GT(report.injected.corruptedIterations, 0u);
    ASSERT_GT(report.quarantinedCount(), 0u);

    // Quarantine classification points at real plan coordinates.
    LoadValueAnalysis analysis(program);
    InstrumentationPlan plan(program, analysis);
    for (const QuarantinedSignature &q : report.quarantined) {
        EXPECT_GT(q.iterations, 0u);
        EXPECT_LT(q.thread, program.numThreads());
        EXPECT_LT(q.word, plan.totalWords());
        EXPECT_FALSE(q.detail.empty());
        EXPECT_TRUE(q.kind == DecodeFaultKind::IndexOverflow ||
                    q.kind == DecodeFaultKind::ResidueOverflow ||
                    q.kind == DecodeFaultKind::WordCountMismatch);
    }

    // Confirmation accounting: cyclic signatures either survived the
    // K-re-execution protocol (confirmed, and counted as such) or
    // were reclassified as transient — never both, never silently
    // dropped. (At this extreme 5% rate a repeatable platform *can*
    // reproduce the same corruption, so confirmed corruption-born
    // violations are possible; the invariant is the bookkeeping.)
    if (r.violatingSignatures) {
        EXPECT_EQ(r.fault.confirmedViolations, r.violatingSignatures);
        EXPECT_EQ(r.fault.transientViolations, 0u);
        EXPECT_GT(r.fault.confirmationRunsUsed, 0u);
    } else if (r.fault.transientViolations) {
        EXPECT_EQ(r.fault.confirmedViolations, 0u);
        EXPECT_GT(r.fault.confirmationRunsUsed, 0u);
        EXPECT_FALSE(r.fault.note.empty());
    }
    EXPECT_EQ(r.platformCrashes, 0u);
    EXPECT_EQ(r.assertionFailures, 0u);
}

TEST(FaultFlow, InjectedBugConfirmedUnderOnePercentCorruption)
{
    // Acceptance: a reproducible MCM bug (Table 3 bug 2) must still be
    // reported as a *confirmed* violation with 1% signature
    // corruption — quarantine must not introduce false negatives.
    TestConfig tc = parseConfigName("x86-7-200-32 (16 words/line)");
    bool confirmed = false;
    Rng seeder(1);
    for (unsigned t = 0; t < 6 && !confirmed; ++t) {
        const TestProgram program = generateTest(tc, seeder());
        FlowConfig cfg;
        cfg.iterations = 128;
        cfg.exec = bareMetalConfig(Isa::X86);
        cfg.exec.bug = BugKind::LsqNoSquash;
        cfg.exec.bugProbability = 0.2;
        cfg.seed = seeder();
        cfg.fault.bitFlipRate = 0.01;
        const FlowResult r = ValidationFlow(cfg).runTest(program);
        if (r.violatingSignatures) {
            confirmed = true;
            EXPECT_EQ(r.fault.confirmedViolations,
                      r.violatingSignatures);
            EXPECT_GT(r.fault.confirmationRunsUsed, 0u);
        } else if (r.assertionFailures) {
            confirmed = true; // caught by the chain tail, also a detect
        }
    }
    EXPECT_TRUE(confirmed)
        << "bug 2 escaped 6 tests x 128 iterations under 1% corruption";
}

TEST(FaultFlow, CrashRetriesKeepCollectingIterations)
{
    TestConfig tc = parseConfigName("x86-7-200-64 (4 words/line)");
    const TestProgram program = generateTest(tc, 3);

    FlowConfig cfg;
    cfg.iterations = 64;
    cfg.exec = bareMetalConfig(Isa::X86);
    cfg.exec.bug = BugKind::PutxGetxRace;
    cfg.exec.bugProbability = 1.0;
    cfg.exec.timing.cacheLines = 4;
    cfg.fault.bitFlipRate = 1e-9; // arm the fault subsystem

    const FlowResult base = ValidationFlow(cfg).runTest(program);
    ASSERT_GT(base.platformCrashes, 0u);

    cfg.recovery.crashRetries = 8;
    const FlowResult retried = ValidationFlow(cfg).runTest(program);
    EXPECT_GT(retried.platformCrashes, 0u);
    EXPECT_GT(retried.fault.crashRetries, 0u);
    EXPECT_LE(retried.fault.crashRetries, 8u);
    EXPECT_GE(retried.iterationsRun, base.iterationsRun);
    EXPECT_TRUE(retried.anyViolation()); // crashes still reported
}

TEST(FaultCampaign, SurvivesHeavyFaultsAndReconciles)
{
    CampaignConfig campaign;
    campaign.iterations = 128;
    campaign.testsPerConfig = 2;
    campaign.runConventional = false;
    campaign.fault = heavyFaults();

    const std::vector<TestConfig> configs = {
        parseConfigName("x86-4-50-64"), parseConfigName("ARM-2-100-32")};
    const auto summaries = runCampaign(configs, campaign);
    ASSERT_EQ(summaries.size(), 2u);
    for (const ConfigSummary &summary : summaries) {
        EXPECT_FALSE(summary.degraded);
        EXPECT_EQ(summary.tests, 2u);
        EXPECT_EQ(summary.failedTests, 0u);
        EXPECT_GT(summary.injected.totalEvents(), 0u);
        // Clean DUT, no crashes or chain assertions: every reported
        // violation must have gone through confirmation, and every
        // unconfirmed cyclic signature must be accounted transient.
        EXPECT_EQ(summary.violations, summary.confirmedViolations);
        EXPECT_GT(summary.quarantinedSignatures +
                      summary.transientViolations +
                      summary.injected.corruptedIterations,
                  0u);
    }
}

TEST(FaultCampaign, PoisonedConfigDoesNotKillCampaign)
{
    TestConfig poisoned;
    poisoned.numThreads = 0; // generateTest rejects this
    const std::vector<TestConfig> configs = {
        parseConfigName("x86-2-50-32"), poisoned,
        parseConfigName("ARM-2-50-32")};

    CampaignConfig campaign;
    campaign.iterations = 32;
    campaign.testsPerConfig = 1;
    campaign.runConventional = false;

    const auto summaries = runCampaign(configs, campaign);
    ASSERT_EQ(summaries.size(), 3u);
    EXPECT_EQ(summaries[0].tests, 1u);
    EXPECT_EQ(summaries[2].tests, 1u);
    // The poisoned config burned its retry budget and was skipped.
    EXPECT_EQ(summaries[1].tests, 0u);
    EXPECT_EQ(summaries[1].failedTests, campaign.testsPerConfig);
    EXPECT_GT(summaries[1].testRetriesUsed, 0u);
}

TEST(FaultFlow, CrashedConfirmationDrawsOnCrashRetryBudget)
{
    // Regression: a confirmation re-execution that crashed used to
    // read as "violation not reproduced", silently consuming one of
    // the K discriminating runs and biasing genuine violations toward
    // the transient-corruption verdict. A crashed confirmation run
    // must instead draw on the crash-retry budget and be replaced by
    // a fresh attempt; only an exhausted budget abandons confirmation,
    // and then the degradation note says so.
    TestConfig tc = parseConfigName("x86-7-200-32 (16 words/line)");
    Rng seeder(1);
    bool exercised = false;
    for (unsigned t = 0; t < 8 && !exercised; ++t) {
        const TestProgram program = generateTest(tc, seeder());
        FlowConfig cfg;
        cfg.iterations = 128;
        cfg.exec = bareMetalConfig(Isa::X86);
        cfg.exec.bug = BugKind::LsqNoSquash;
        cfg.exec.bugProbability = 0.2;
        cfg.seed = seeder();
        cfg.fault.bitFlipRate = 0.01;
        cfg.recovery.confirmationRuns = 4;

        const FlowResult baseline = ValidationFlow(cfg).runTest(program);
        // Want a genuine, reproducible violation (confirmed in the
        // clean-platform baseline) with a crash-free test loop so the
        // crash drill lands exactly on the first confirmation run.
        if (!baseline.fault.confirmedViolations ||
            baseline.platformCrashes)
            continue;
        exercised = true;

        // The platform serves the test loop (cfg.iterations runs)
        // first, then confirmation: run iterations+1 is the first
        // confirmation re-execution.
        FlowConfig crashing = cfg;
        crashing.exec.crashOnRun = cfg.iterations + 1;

        // Budget available: the crashed attempt is retried and the
        // violation is still confirmed — no false transient.
        crashing.recovery.crashRetries = 2;
        const FlowResult retried =
            ValidationFlow(crashing).runTest(program);
        EXPECT_EQ(retried.violatingSignatures,
                  baseline.violatingSignatures);
        EXPECT_GE(retried.fault.crashRetries, 1u);
        EXPECT_EQ(retried.fault.confirmedViolations,
                  retried.violatingSignatures);
        EXPECT_EQ(retried.fault.transientViolations, 0u);

        // Budget exhausted: confirmation is abandoned, the violation
        // is reclassified, and the note records the crash instead of
        // passing the reclassification off as a clean non-reproduction.
        crashing.recovery.crashRetries = 0;
        const FlowResult starved =
            ValidationFlow(crashing).runTest(program);
        EXPECT_EQ(starved.fault.confirmedViolations, 0u);
        // Reclassification removes the signatures from the violation
        // count and books them as transients instead.
        EXPECT_EQ(starved.violatingSignatures, 0u);
        EXPECT_EQ(starved.fault.transientViolations,
                  baseline.violatingSignatures);
        EXPECT_NE(starved.fault.note.find(
                      "confirmation cut short by a platform crash"),
                  std::string::npos)
            << "note: " << starved.fault.note;
    }
    EXPECT_TRUE(exercised)
        << "no confirmed crash-free baseline in 8 seeds";
}

} // anonymous namespace
} // namespace mtc
