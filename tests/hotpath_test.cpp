/**
 * @file
 * Hot-path guarantees: arena reuse is bit-identical to per-run arenas
 * across platforms, policies, bugs, faults, and worker counts; the
 * steady-state iteration loop performs no heap allocations; the phase
 * profiler accounts its scopes; and the O(1) forwarding table matches
 * a brute-force scan.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <vector>

#include "core/load_analysis.h"
#include "core/signature_accumulator.h"
#include "core/signature_codec.h"
#include "graph/graph_builder.h"
#include "harness/validation_flow.h"
#include "sim/coherent_executor.h"
#include "sim/executor.h"
#include "sim/order_table.h"
#include "support/profiler.h"
#include "testgen/generator.h"

// --- Global allocation counter ---------------------------------------
// Counting overloads of the global allocator so tests can assert that a
// window of code touched the heap a bounded number of times (zero for
// the steady-state iteration loop).

namespace
{
std::atomic<std::uint64_t> g_allocations{0};
}

void *
operator new(std::size_t size)
{
    g_allocations.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace mtc
{
namespace
{

std::uint64_t
allocationsNow()
{
    return g_allocations.load(std::memory_order_relaxed);
}

// --- Arena reuse is bit-identical to fresh arenas ---------------------

/** Everything a flow result reports that must not depend on arena
 * reuse. */
void
expectSameOutcome(const TestProgram &program, FlowConfig cfg)
{
    cfg.reuseArena = true;
    const FlowResult reused = ValidationFlow(cfg).runTest(program);
    cfg.reuseArena = false;
    const FlowResult fresh = ValidationFlow(cfg).runTest(program);

    EXPECT_EQ(reused.iterationsRun, fresh.iterationsRun);
    EXPECT_EQ(reused.uniqueSignatures, fresh.uniqueSignatures);
    EXPECT_EQ(reused.violatingSignatures, fresh.violatingSignatures);
    EXPECT_EQ(reused.assertionFailures, fresh.assertionFailures);
    EXPECT_EQ(reused.platformCrashes, fresh.platformCrashes);
    EXPECT_EQ(reused.violationWitness, fresh.violationWitness);
    EXPECT_EQ(reused.collective.graphsChecked,
              fresh.collective.graphsChecked);
    EXPECT_EQ(reused.collective.violations, fresh.collective.violations);
    EXPECT_EQ(reused.collective.verticesProcessed,
              fresh.collective.verticesProcessed);
    EXPECT_EQ(reused.collective.edgesProcessed,
              fresh.collective.edgesProcessed);
    EXPECT_EQ(reused.fault.injected.totalEvents(),
              fresh.fault.injected.totalEvents());
    EXPECT_EQ(reused.fault.quarantinedCount(),
              fresh.fault.quarantinedCount());
    EXPECT_EQ(reused.fault.confirmedViolations,
              fresh.fault.confirmedViolations);
    EXPECT_EQ(reused.fault.transientViolations,
              fresh.fault.transientViolations);
    EXPECT_EQ(reused.fault.recordedIterations,
              fresh.fault.recordedIterations);
}

FlowConfig
smallFlow(std::uint64_t seed)
{
    FlowConfig cfg;
    cfg.iterations = 64;
    cfg.seed = seed;
    cfg.runConventional = false;
    return cfg;
}

FaultConfig
noisyReadout()
{
    FaultConfig fault;
    fault.bitFlipRate = 0.01;
    fault.tornStoreRate = 0.01;
    fault.truncationRate = 0.01;
    fault.dropRate = 0.02;
    fault.duplicateRate = 0.02;
    return fault;
}

TEST(ArenaReuse, OperationalPoliciesAndFaults)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-16"), 31);
    for (SchedulingPolicy policy : {SchedulingPolicy::UniformRandom,
                                    SchedulingPolicy::Timed}) {
        for (bool faulted : {false, true}) {
            FlowConfig cfg = smallFlow(404);
            cfg.exec = bareMetalConfig(Isa::X86);
            cfg.exec.policy = policy;
            if (policy == SchedulingPolicy::UniformRandom)
                cfg.exec.timing = TimingParams{};
            if (faulted)
                cfg.fault = noisyReadout();
            expectSameOutcome(program, cfg);
        }
    }
}

TEST(ArenaReuse, EveryInjectedBugKind)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-8"), 17);
    for (BugKind bug : {BugKind::LsqNoSquash,
                        BugKind::StaleLoadOnUpgrade,
                        BugKind::PutxGetxRace}) {
        FlowConfig cfg = smallFlow(77);
        cfg.exec = bareMetalConfig(Isa::X86);
        cfg.exec.bug = bug;
        cfg.exec.bugProbability = 0.3;
        // Capacity evictions arm the PUTX/GETX race window.
        cfg.exec.timing.cacheLines = 2;
        cfg.recovery.crashRetries = 2;
        expectSameOutcome(program, cfg);
    }
}

TEST(ArenaReuse, CoherentPlatform)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-50-16"), 23);
    for (bool faulted : {false, true}) {
        FlowConfig cfg = smallFlow(505);
        cfg.coherent = gem5LikeConfig();
        cfg.coherent->model = MemoryModel::TSO;
        if (faulted)
            cfg.fault = noisyReadout();
        expectSameOutcome(program, cfg);
    }
}

TEST(ArenaReuse, ParallelCampaignWorkers)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-100-64"), 9);
    for (unsigned threads : {1u, 4u}) {
        FlowConfig cfg = smallFlow(606);
        cfg.iterations = 128;
        cfg.exec = bareMetalConfig(Isa::ARMv7);
        cfg.threads = threads;
        expectSameOutcome(program, cfg);
    }
}

// --- Steady-state allocation freedom ----------------------------------

TEST(ZeroAllocation, OperationalRunAndEncodeSteadyState)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-16"), 3);
    const LoadValueAnalysis analysis(program);
    const InstrumentationPlan plan(program, analysis);
    const SignatureCodec codec(program, analysis, plan);

    for (SchedulingPolicy policy : {SchedulingPolicy::UniformRandom,
                                    SchedulingPolicy::Timed}) {
        ExecutorConfig exec = bareMetalConfig(Isa::X86);
        exec.policy = policy;
        OperationalExecutor platform(exec);
        Rng rng(12);
        RunArena arena;
        EncodeResult encoded;
        for (int warm = 0; warm < 3; ++warm) {
            platform.runInto(program, rng, arena);
            codec.encodeInto(arena.execution, encoded);
        }

        const std::uint64_t before = allocationsNow();
        for (int i = 0; i < 10; ++i) {
            platform.runInto(program, rng, arena);
            codec.encodeInto(arena.execution, encoded);
        }
        EXPECT_EQ(allocationsNow() - before, 0u)
            << "policy " << static_cast<int>(policy);
    }
}

TEST(ZeroAllocation, BatchedRunAndEncodeSteadyState)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-16"), 3);
    const LoadValueAnalysis analysis(program);
    const InstrumentationPlan plan(program, analysis);
    const SignatureCodec codec(program, analysis, plan);
    constexpr std::uint32_t kLanes = 8;

    for (SchedulingPolicy policy : {SchedulingPolicy::UniformRandom,
                                    SchedulingPolicy::Timed}) {
        ExecutorConfig exec = bareMetalConfig(Isa::X86);
        exec.policy = policy;
        OperationalExecutor platform(exec);
        Rng master(12);
        BatchRunArena batch;
        EncodeResult encoded;
        std::vector<Rng> rngs;
        rngs.reserve(kLanes);
        std::vector<LaneStatus> status(kLanes);
        const auto dispatch = [&] {
            rngs.clear();
            for (std::uint32_t l = 0; l < kLanes; ++l)
                rngs.emplace_back(master());
            status.assign(kLanes, LaneStatus::Completed);
            platform.runBatchInto(program, rngs.data(), kLanes, batch,
                                  nullptr, status.data());
            for (std::uint32_t l = 0; l < kLanes; ++l) {
                ASSERT_EQ(status[l], LaneStatus::Completed);
                codec.encodeInto(batch.executions[l], encoded);
            }
        };
        for (int warm = 0; warm < 3; ++warm)
            dispatch();

        const std::uint64_t before = allocationsNow();
        for (int i = 0; i < 5; ++i)
            dispatch();
        EXPECT_EQ(allocationsNow() - before, 0u)
            << "policy " << static_cast<int>(policy);
    }
}

TEST(ZeroAllocation, AccumulatorReRecord)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-16"), 3);
    const LoadValueAnalysis analysis(program);
    const InstrumentationPlan plan(program, analysis);
    const SignatureCodec codec(program, analysis, plan);
    OperationalExecutor platform(bareMetalConfig(Isa::X86));
    Rng rng(12);
    RunArena arena;
    EncodeResult encoded;
    platform.runInto(program, rng, arena);
    codec.encodeInto(arena.execution, encoded);

    SignatureAccumulator acc;
    acc.record(encoded.signature);

    const std::uint64_t before = allocationsNow();
    for (int i = 0; i < 10; ++i)
        acc.record(encoded.signature);
    EXPECT_EQ(allocationsNow() - before, 0u);
    EXPECT_EQ(acc.uniqueCount(), 1u);
}

TEST(ZeroAllocation, CoherentArenaReuseBeatsFreshArenas)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-16"), 5);
    CoherentExecutor platform(gem5LikeConfig());

    // Warm the shared order-table cache before counting either mode.
    {
        Rng rng(3);
        RunArena arena;
        platform.runInto(program, rng, arena);
    }

    Rng fresh_rng(7);
    const std::uint64_t fresh_before = allocationsNow();
    for (int i = 0; i < 20; ++i) {
        RunArena arena;
        platform.runInto(program, fresh_rng, arena);
    }
    const std::uint64_t fresh_allocs = allocationsNow() - fresh_before;

    Rng reuse_rng(7);
    RunArena arena;
    for (int warm = 0; warm < 5; ++warm)
        platform.runInto(program, reuse_rng, arena);
    const std::uint64_t reuse_before = allocationsNow();
    for (int i = 0; i < 20; ++i)
        platform.runInto(program, reuse_rng, arena);
    const std::uint64_t reuse_allocs = allocationsNow() - reuse_before;

    // The coherent machine circulates message/queue capacities, so an
    // occasional growth allocation is legitimate; reuse must still be
    // far below per-run reconstruction.
    EXPECT_LT(reuse_allocs * 10, fresh_allocs)
        << "reuse " << reuse_allocs << " vs fresh " << fresh_allocs;
}

TEST(ZeroAllocation, DecodeAndEdgeDerivationSteadyState)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-16"), 3);
    const LoadValueAnalysis analysis(program);
    const InstrumentationPlan plan(program, analysis);
    const SignatureCodec codec(program, analysis, plan);
    OperationalExecutor platform(bareMetalConfig(Isa::X86));
    Rng rng(12);
    RunArena arena;
    EncodeResult encoded;
    platform.runInto(program, rng, arena);
    codec.encodeInto(arena.execution, encoded);

    Execution decoded;
    std::vector<std::uint64_t> word_scratch;
    WsOrder ws;
    DynamicEdgeSet edges;
    for (int warm = 0; warm < 3; ++warm) {
        codec.decodeInto(encoded.signature, decoded, word_scratch);
        ws.infer(program, decoded);
        dynamicEdgesInto(program, decoded, ws, edges);
    }

    const std::uint64_t before = allocationsNow();
    for (int i = 0; i < 10; ++i) {
        codec.decodeInto(encoded.signature, decoded, word_scratch);
        ws.infer(program, decoded);
        dynamicEdgesInto(program, decoded, ws, edges);
    }
    EXPECT_EQ(allocationsNow() - before, 0u);
}

TEST(ZeroAllocation, StreamingCheckSteadyState)
{
    // The whole streaming post-execution path — delta decode,
    // incremental ws inference, edge-diff derivation, and the diff-fed
    // collective checker — must be allocation-free once its buffers
    // have seen the signature sequence.
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-16"), 7);
    const LoadValueAnalysis analysis(program);
    const InstrumentationPlan plan(program, analysis);
    const SignatureCodec codec(program, analysis, plan);
    OperationalExecutor platform(bareMetalConfig(Isa::X86));
    Rng rng(21);
    RunArena arena;
    std::set<Signature> unique;
    for (int i = 0; i < 64; ++i) {
        platform.runInto(program, rng, arena);
        unique.insert(codec.encode(arena.execution).signature);
    }
    const std::vector<Signature> sorted(unique.begin(), unique.end());
    ASSERT_GT(sorted.size(), 2u);

    StreamDecoder stream(codec);
    WsOrder ws;
    EdgeDeriver deriver(program);
    EdgeDiff diff;
    CollectiveChecker checker(program, MemoryModel::TSO);
    const auto pass = [&] {
        for (const Signature &signature : sorted) {
            const Execution &exec = stream.next(signature);
            const std::vector<std::uint32_t> &changed =
                stream.changedThreads();
            ws.inferDelta(program, exec, changed.data(),
                          changed.size());
            deriver.derive(exec, ws, changed.data(), changed.size(),
                           diff);
            checker.checkNextDiff(diff);
        }
    };
    pass(); // cold: every slice decodes, every unit builds
    pass(); // warm: capacities stabilized (incl. the wrap-around)
    const std::uint64_t before = allocationsNow();
    pass();
    EXPECT_EQ(allocationsNow() - before, 0u);
}

// --- Reusable decode paths match their one-shot forms -----------------

TEST(HotPathEquivalence, DecodeIntoMatchesDecode)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-50-32"), 41);
    const LoadValueAnalysis analysis(program);
    const InstrumentationPlan plan(program, analysis);
    const SignatureCodec codec(program, analysis, plan);
    OperationalExecutor platform(bareMetalConfig(Isa::ARMv7));
    Rng rng(2);
    RunArena arena;
    Execution decoded;
    std::vector<std::uint64_t> word_scratch;
    for (int i = 0; i < 16; ++i) {
        platform.runInto(program, rng, arena);
        const EncodeResult encoded = codec.encode(arena.execution);
        codec.decodeInto(encoded.signature, decoded, word_scratch);
        EXPECT_EQ(decoded.loadValues,
                  codec.decode(encoded.signature).loadValues);
        EXPECT_EQ(decoded.loadValues, arena.execution.loadValues);
    }
}

TEST(HotPathEquivalence, ReinferredWsOrderMatchesFresh)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-16"), 19);
    OperationalExecutor platform(bareMetalConfig(Isa::X86));
    Rng rng(8);
    RunArena arena;
    WsOrder reused;
    for (int i = 0; i < 8; ++i) {
        platform.runInto(program, rng, arena);
        reused.infer(program, arena.execution);
        const WsOrder fresh(program, arena.execution);
        EXPECT_EQ(reused.coherenceViolation(),
                  fresh.coherenceViolation());
        for (std::uint32_t loc = 0;
             loc < program.config().numLocations; ++loc) {
            EXPECT_EQ(reused.successorsOf(loc, std::nullopt),
                      fresh.successorsOf(loc, std::nullopt));
            EXPECT_EQ(reused.orderedPairs(loc),
                      fresh.orderedPairs(loc));
        }
        EXPECT_EQ(dynamicEdges(program, arena.execution).edges,
                  dynamicEdges(program, arena.execution, fresh).edges);
    }
}

// --- O(1) forwarding table --------------------------------------------

TEST(OrderTable, PriorStoreMatchesBruteForce)
{
    for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
        const TestProgram program =
            generateTest(parseConfigName("ARM-4-100-64"), seed);
        OrderTable table;
        table.build(program, MemoryModel::RMO);

        const auto &threads = program.threadBodies();
        for (std::uint32_t tid = 0; tid < threads.size(); ++tid) {
            const auto &body = threads[tid];
            for (std::uint32_t idx = 0; idx < body.size(); ++idx) {
                std::uint32_t expected = kNoPriorStore;
                if (body[idx].kind != OpKind::Fence) {
                    for (std::uint32_t j = idx; j-- > 0;) {
                        if (body[j].kind == OpKind::Store &&
                            body[j].loc == body[idx].loc) {
                            expected = j;
                            break;
                        }
                    }
                }
                ASSERT_EQ(table.priorStore[tid][idx], expected)
                    << "t" << tid << " op" << idx;
            }
        }
    }
}

// --- Phase profiler ---------------------------------------------------

TEST(Profiler, DisabledScopesNeverRecord)
{
    PhaseProfiler prof(false);
    {
        auto scope = prof.scope(Phase::Execute);
        auto inner = prof.scope(Phase::Encode);
    }
    const PhaseBreakdown breakdown = prof.take();
    EXPECT_FALSE(breakdown.enabled());
    EXPECT_EQ(breakdown.sumNs(), 0u);
    EXPECT_EQ(breakdown.totalNs, 0u);
    EXPECT_EQ(breakdown.coverage(), 0.0);
}

TEST(Profiler, ScopesAccountWithinTotal)
{
    PhaseProfiler prof(true);
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 50; ++i) {
        auto scope = prof.scope(Phase::Execute);
        for (int j = 0; j < 1000; ++j)
            sink += static_cast<std::uint64_t>(j);
    }
    {
        auto scope = prof.scope(Phase::Check);
        for (int j = 0; j < 1000; ++j)
            sink += static_cast<std::uint64_t>(j);
    }
    const PhaseBreakdown breakdown = prof.take();
    EXPECT_TRUE(breakdown.enabled());
    EXPECT_EQ(breakdown.phaseCount(Phase::Execute), 50u);
    EXPECT_EQ(breakdown.phaseCount(Phase::Check), 1u);
    EXPECT_EQ(breakdown.phaseCount(Phase::Decode), 0u);
    EXPECT_GT(breakdown.phaseNs(Phase::Execute), 0u);
    // Scopes are disjoint here, so their sum is bounded by the
    // profiler's own lifetime.
    EXPECT_LE(breakdown.sumNs(), breakdown.totalNs);
    EXPECT_GT(breakdown.coverage(), 0.0);
    EXPECT_LE(breakdown.coverage(), 1.0);
}

TEST(Profiler, MergeAddsCountersAndTotals)
{
    PhaseBreakdown a;
    a.ns[static_cast<std::size_t>(Phase::Execute)] = 100;
    a.count[static_cast<std::size_t>(Phase::Execute)] = 2;
    a.totalNs = 150;
    PhaseBreakdown b;
    b.ns[static_cast<std::size_t>(Phase::Execute)] = 50;
    b.count[static_cast<std::size_t>(Phase::Execute)] = 1;
    b.ns[static_cast<std::size_t>(Phase::Decode)] = 25;
    b.count[static_cast<std::size_t>(Phase::Decode)] = 1;
    b.totalNs = 100;

    a.merge(b);
    EXPECT_EQ(a.phaseNs(Phase::Execute), 150u);
    EXPECT_EQ(a.phaseCount(Phase::Execute), 3u);
    EXPECT_EQ(a.phaseNs(Phase::Decode), 25u);
    EXPECT_EQ(a.totalNs, 250u);
    EXPECT_EQ(a.sumNs(), 175u);
}

TEST(Profiler, FlowProfileCoversItsWallClock)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-16"), 29);
    FlowConfig cfg = smallFlow(99);
    cfg.exec = bareMetalConfig(Isa::X86);
    cfg.profile = true;
    cfg.batch = 1; // one Execute dispatch per iteration
    const FlowResult result = ValidationFlow(cfg).runTest(program);
    ASSERT_TRUE(result.profile.enabled());
    EXPECT_EQ(result.profile.phaseCount(Phase::Execute),
              result.iterationsRun);
    EXPECT_EQ(result.profile.phaseCount(Phase::BatchDispatch),
              result.iterationsRun);
    EXPECT_EQ(result.profile.phaseCount(Phase::Instrument), 1u);
    EXPECT_LE(result.profile.sumNs(), result.profile.totalNs);
    // The flow is phase-timed wall to wall; anything below ~80%
    // coverage would mean a phase lost its scope.
    EXPECT_GT(result.profile.coverage(), 0.8);

    cfg.profile = false;
    const FlowResult off = ValidationFlow(cfg).runTest(program);
    EXPECT_FALSE(off.profile.enabled());
    EXPECT_EQ(off.uniqueSignatures, result.uniqueSignatures);
}

// --- FaultReport accounting (satellite fixes) -------------------------

TEST(FaultReport, QuarantinedCountDerivesFromList)
{
    FaultReport report;
    EXPECT_EQ(report.quarantinedCount(), 0u);
    report.quarantined.push_back(QuarantinedSignature{});
    report.quarantined.push_back(QuarantinedSignature{});
    EXPECT_EQ(report.quarantinedCount(), 2u);
}

TEST(FaultReport, AnyFaultActivityCoversConfirmationRuns)
{
    FaultReport report;
    EXPECT_FALSE(report.anyFaultActivity());

    // A confirmed violation burns re-executions even when nothing was
    // reclassified; that platform time must count as fault activity.
    report.confirmationRunsUsed = 2;
    EXPECT_TRUE(report.anyFaultActivity());

    report = FaultReport{};
    report.transientViolations = 1;
    EXPECT_TRUE(report.anyFaultActivity());

    report = FaultReport{};
    report.quarantined.push_back(QuarantinedSignature{});
    EXPECT_TRUE(report.anyFaultActivity());

    report = FaultReport{};
    report.crashRetries = 1;
    EXPECT_TRUE(report.anyFaultActivity());
}

} // anonymous namespace
} // namespace mtc
