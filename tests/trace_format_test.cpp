/**
 * @file
 * Trace interchange format tests: codec round-trips, the version
 * handshake, forward-compatible skip of unknown record kinds, torn-
 * tail recovery at every byte offset, and the seeded fault-injection
 * sweep the format's threat model promises — bit-flip, truncate-at-
 * offset, record-drop, record-duplicate — every mutation landing in a
 * classified TraceError (or a clean decode), never a crash, hang, or
 * unbounded allocation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/trace_format.h"
#include "harness/campaign_journal.h"
#include "support/framing.h"
#include "support/journal.h"
#include "support/rng.h"

namespace mtc
{
namespace
{

namespace fs = std::filesystem;

/** Unique scratch path that cleans up after itself. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : p((fs::temp_directory_path() /
             ("mtc_trace_" + name + "_" +
              std::to_string(static_cast<std::uint64_t>(::getpid()))))
                .string())
    {
        std::remove(p.c_str());
    }

    ~TempFile() { std::remove(p.c_str()); }

    const std::string &path() const { return p; }

  private:
    std::string p;
};

TraceHeader
sampleHeader()
{
    TraceHeader h;
    h.identityDigest = 0xfeedfacecafebeefull;
    h.description = "seed=7 iterations=64 tests=2 configs=x86-2-50-32";
    h.spec = {0x10, 0x20, 0x30, 0x00, 0xff};
    return h;
}

TraceCheckpointRecord
sampleCheckpoint()
{
    TraceCheckpointRecord cp;
    cp.configName = "x86-2-50-32";
    cp.testIndex = 3;
    cp.payloadDigest = 0x1122334455667788ull;
    cp.quarantined = 1;
    cp.note = "fingerprint-mismatch: stats disagree";
    return cp;
}

/** Strip the self-carried kind byte off an encoded header payload —
 * decodeTraceHeader consumes the body readTraceFile hands it. */
std::vector<std::uint8_t>
headerBody(const TraceHeader &h)
{
    std::vector<std::uint8_t> payload = encodeTraceHeader(h);
    return std::vector<std::uint8_t>(payload.begin() + 1, payload.end());
}

// ---------------------------------------------------------------------
// Record codecs.
// ---------------------------------------------------------------------

TEST(TraceHeaderCodec, RoundTripsEveryField)
{
    const TraceHeader a = sampleHeader();
    const std::vector<std::uint8_t> payload = encodeTraceHeader(a);
    ASSERT_FALSE(payload.empty());
    EXPECT_EQ(payload[0], kTraceHeaderTag);

    const TraceHeader b = decodeTraceHeader(headerBody(a));
    EXPECT_EQ(b.version, kTraceVersion);
    EXPECT_EQ(b.identityDigest, a.identityDigest);
    EXPECT_EQ(b.description, a.description);
    EXPECT_EQ(b.spec, a.spec);
}

TEST(TraceHeaderCodec, BadMagicClassifiedCorrupt)
{
    std::vector<std::uint8_t> body = headerBody(sampleHeader());
    body[0] ^= 0xff; // magic is the first body field
    try {
        (void)decodeTraceHeader(body);
        FAIL() << "corrupt magic decoded";
    } catch (const TraceError &err) {
        EXPECT_EQ(err.kind(), TraceFaultKind::Corrupt);
    }
}

TEST(TraceHeaderCodec, FutureVersionClassifiedVersionSkew)
{
    TraceHeader h = sampleHeader();
    h.version = kTraceVersion + 1;
    try {
        (void)decodeTraceHeader(headerBody(h));
        FAIL() << "future version decoded";
    } catch (const TraceError &err) {
        EXPECT_EQ(err.kind(), TraceFaultKind::VersionSkew);
    }
}

TEST(TraceHeaderCodec, ForgedSpecLengthBoundedBeforeAllocation)
{
    // Declare a 4 GiB spec in a 30-byte body: the decoder must bound
    // the read by the bytes present and classify, not allocate.
    ByteWriter w;
    w.u32(kTraceMagic);
    w.u32(kTraceVersion);
    w.u64(0);
    w.str("");
    w.u32(0xffffffffu);
    try {
        (void)decodeTraceHeader(w.bytes());
        FAIL() << "forged length decoded";
    } catch (const TraceError &err) {
        EXPECT_EQ(err.kind(), TraceFaultKind::Truncated);
    }
}

TEST(TraceHeaderCodec, TruncatedAndTrailingBytesClassified)
{
    const std::vector<std::uint8_t> body = headerBody(sampleHeader());
    try {
        (void)decodeTraceHeader(std::vector<std::uint8_t>(
            body.begin(), body.begin() + 10));
        FAIL() << "truncated body decoded";
    } catch (const TraceError &err) {
        EXPECT_EQ(err.kind(), TraceFaultKind::Truncated);
    }

    std::vector<std::uint8_t> padded = body;
    padded.push_back(0x00);
    try {
        (void)decodeTraceHeader(padded);
        FAIL() << "trailing bytes decoded";
    } catch (const TraceError &err) {
        EXPECT_EQ(err.kind(), TraceFaultKind::Corrupt);
    }
}

TEST(TraceCheckpointCodec, RoundTripsBothVerdicts)
{
    for (const std::uint8_t verdict : {0, 1}) {
        TraceCheckpointRecord a = sampleCheckpoint();
        a.quarantined = verdict;
        const TraceCheckpointRecord b =
            decodeTraceCheckpoint(encodeTraceCheckpoint(a));
        EXPECT_EQ(b.configName, a.configName);
        EXPECT_EQ(b.testIndex, a.testIndex);
        EXPECT_EQ(b.payloadDigest, a.payloadDigest);
        EXPECT_EQ(b.quarantined, a.quarantined);
        EXPECT_EQ(b.note, a.note);
    }
}

TEST(TraceCheckpointCodec, OutOfRangeVerdictClassifiedCorrupt)
{
    TraceCheckpointRecord cp = sampleCheckpoint();
    cp.quarantined = 2;
    try {
        (void)decodeTraceCheckpoint(encodeTraceCheckpoint(cp));
        FAIL() << "verdict byte 2 decoded";
    } catch (const TraceError &err) {
        EXPECT_EQ(err.kind(), TraceFaultKind::Corrupt);
    }
}

TEST(TraceFaultNames, StableLowercaseNames)
{
    EXPECT_STREQ(traceFaultName(TraceFaultKind::Truncated), "truncated");
    EXPECT_STREQ(traceFaultName(TraceFaultKind::Corrupt), "corrupt");
    EXPECT_STREQ(traceFaultName(TraceFaultKind::VersionSkew),
                 "version-skew");
    EXPECT_STREQ(traceFaultName(TraceFaultKind::FingerprintMismatch),
                 "fingerprint-mismatch");
}

// ---------------------------------------------------------------------
// File layer: writer/reader, handshake, forward compatibility.
// ---------------------------------------------------------------------

UnitRecord
sampleUnit(std::uint32_t index)
{
    UnitRecord u;
    u.configName = "x86-2-50-32";
    u.testIndex = index;
    u.genSeed = 0x1000 + index;
    u.flowSeed = 0x2000 + index;
    u.outcome.status = TestStatus::Ok;
    u.outcome.ok = true;
    u.outcome.result.iterationsRun = 32;
    u.outcome.result.uniqueSignatures = index + 1;
    return u;
}

TEST(TraceFileIo, WriteReadRoundTripInOrder)
{
    TempFile file("roundtrip");
    const TraceHeader header = sampleHeader();
    {
        TraceWriter writer(file.path(), header);
        writer.append(kTraceUnitTag, encodeUnitRecord(sampleUnit(0)));
        writer.append(kTraceUnitTag, encodeUnitRecord(sampleUnit(1)));
        writer.append(kTraceCheckpointTag,
                      encodeTraceCheckpoint(sampleCheckpoint()));
        writer.sync();
    }
    const TraceFile trace = readTraceFile(file.path());
    EXPECT_EQ(trace.header.identityDigest, header.identityDigest);
    EXPECT_EQ(trace.header.description, header.description);
    EXPECT_EQ(trace.header.spec, header.spec);
    EXPECT_EQ(trace.droppedBytes, 0u);
    EXPECT_EQ(trace.unknownSkipped, 0u);
    EXPECT_EQ(trace.malformedRecords, 0u);
    ASSERT_EQ(trace.records.size(), 3u);
    EXPECT_EQ(trace.records[0].kind, kTraceUnitTag);
    EXPECT_EQ(trace.records[1].kind, kTraceUnitTag);
    EXPECT_EQ(trace.records[2].kind, kTraceCheckpointTag);
    EXPECT_EQ(decodeUnitRecord(trace.records[1].body).testIndex, 1u);
    EXPECT_EQ(decodeTraceCheckpoint(trace.records[2].body).note,
              sampleCheckpoint().note);
}

TEST(TraceFileIo, FreshWriterDiscardsStaleFile)
{
    TempFile file("stale");
    {
        TraceWriter writer(file.path(), sampleHeader());
        writer.append(kTraceUnitTag, encodeUnitRecord(sampleUnit(0)));
    }
    {
        TraceWriter writer(file.path(), sampleHeader());
    }
    EXPECT_TRUE(readTraceFile(file.path()).records.empty());
}

TEST(TraceFileIo, UnknownRecordKindsSkippedNotFatal)
{
    TempFile file("unknown");
    {
        TraceWriter writer(file.path(), sampleHeader());
        writer.append(kTraceUnitTag, encodeUnitRecord(sampleUnit(0)));
        writer.append(99, {0xde, 0xad}); // a future producer's kind
        writer.append(kTraceUnitTag, encodeUnitRecord(sampleUnit(1)));
        writer.sync();
    }
    const TraceFile trace = readTraceFile(file.path());
    EXPECT_EQ(trace.unknownSkipped, 1u);
    ASSERT_EQ(trace.records.size(), 2u);
    EXPECT_EQ(decodeUnitRecord(trace.records[1].body).testIndex, 1u);
}

TEST(TraceFileIo, MissingAndEmptyFilesClassifiedTruncated)
{
    TempFile file("empty");
    {
        std::FILE *f = std::fopen(file.path().c_str(), "wb");
        ASSERT_NE(f, nullptr);
        std::fclose(f);
    }
    for (const std::string &path :
         {std::string("/nonexistent/dir/never.trace"), file.path()}) {
        try {
            (void)readTraceFile(path);
            FAIL() << "missing/empty file read: " << path;
        } catch (const TraceError &err) {
            EXPECT_EQ(err.kind(), TraceFaultKind::Truncated);
        }
    }
}

TEST(TraceFileIo, NonHeaderFirstRecordClassifiedCorrupt)
{
    TempFile file("noheader");
    {
        JournalWriter writer(file.path());
        std::vector<std::uint8_t> payload = {kTraceUnitTag};
        const auto body = encodeUnitRecord(sampleUnit(0));
        payload.insert(payload.end(), body.begin(), body.end());
        writer.append(payload);
    }
    try {
        (void)readTraceFile(file.path());
        FAIL() << "headerless trace read";
    } catch (const TraceError &err) {
        EXPECT_EQ(err.kind(), TraceFaultKind::Corrupt);
    }
}

TEST(TraceFileIo, VersionSkewRejectedAtHandshake)
{
    TempFile file("skew");
    TraceHeader h = sampleHeader();
    h.version = kTraceVersion + 7;
    {
        // TraceWriter always stamps the current version, so forge the
        // file through the raw journal layer.
        JournalWriter writer(file.path());
        writer.append(encodeTraceHeader(h));
    }
    try {
        (void)readTraceFile(file.path());
        FAIL() << "version-skewed trace read";
    } catch (const TraceError &err) {
        EXPECT_EQ(err.kind(), TraceFaultKind::VersionSkew);
    }
}

TEST(TraceFileIo, TornTailRecoveredAtEveryByteOffset)
{
    TempFile master("torn_master");
    {
        TraceWriter writer(master.path(), sampleHeader());
        writer.append(kTraceUnitTag, encodeUnitRecord(sampleUnit(0)));
        writer.append(kTraceUnitTag, encodeUnitRecord(sampleUnit(1)));
        writer.sync();
    }
    // Frame boundaries from the journal layer: header, unit 0, unit 1.
    const JournalRecovery layout = readJournal(master.path());
    ASSERT_EQ(layout.records.size(), 3u);
    std::vector<std::uint64_t> ends; // cumulative end of each frame
    std::uint64_t at = 0;
    for (const auto &rec : layout.records) {
        at += kFrameHeaderBytes + rec.size();
        ends.push_back(at);
    }
    const std::uint64_t total = ends.back();
    ASSERT_EQ(total, fs::file_size(master.path()));

    for (std::uint64_t cut = 0; cut < total; ++cut) {
        TempFile torn("torn_cut" + std::to_string(cut));
        fs::copy_file(master.path(), torn.path(),
                      fs::copy_options::overwrite_existing);
        fs::resize_file(torn.path(), cut);

        if (cut < ends[0]) {
            // Tear inside the header frame: no intact first record.
            try {
                (void)readTraceFile(torn.path());
                FAIL() << "headerless prefix read at cut " << cut;
            } catch (const TraceError &err) {
                EXPECT_EQ(err.kind(), TraceFaultKind::Truncated)
                    << "cut at " << cut;
            }
            continue;
        }
        const TraceFile trace = readTraceFile(torn.path());
        const std::size_t expect_units =
            cut >= ends[2] ? 2 : cut >= ends[1] ? 1 : 0;
        ASSERT_EQ(trace.records.size(), expect_units)
            << "cut at " << cut;
        for (std::size_t i = 0; i < expect_units; ++i)
            EXPECT_EQ(decodeUnitRecord(trace.records[i].body).testIndex,
                      i);
        EXPECT_EQ(trace.validBytes, ends[expect_units]);
        EXPECT_EQ(trace.droppedBytes, cut - ends[expect_units]);
    }
}

// ---------------------------------------------------------------------
// Seeded fault-injection sweep over whole trace files: bit-flip,
// truncate-at-offset, record-drop, record-duplicate (mirroring the
// FaultInjector's models at file granularity). Contract: readTraceFile
// plus a full decode of every surviving record either succeeds or
// throws a classified TraceError — never anything else.
// ---------------------------------------------------------------------

enum class FileMutation : std::uint8_t
{
    BitFlip = 0,
    TruncateAtOffset,
    RecordDrop,
    RecordDuplicate,
};

void
rewriteFrames(const std::string &path,
              const std::vector<std::vector<std::uint8_t>> &frames)
{
    std::remove(path.c_str());
    JournalWriter writer(path);
    for (const auto &frame : frames)
        writer.append(frame);
}

TEST(TraceFuzz, EveryFileMutationLandsInAClassifiedOutcome)
{
    TempFile master("fuzz_master");
    {
        TraceWriter writer(master.path(), sampleHeader());
        for (std::uint32_t i = 0; i < 4; ++i)
            writer.append(kTraceUnitTag,
                          encodeUnitRecord(sampleUnit(i)));
        writer.append(kTraceCheckpointTag,
                      encodeTraceCheckpoint(sampleCheckpoint()));
        writer.sync();
    }
    const JournalRecovery layout = readJournal(master.path());
    const std::uint64_t total = fs::file_size(master.path());

    Rng rng(0x7ace);
    unsigned decoded = 0, classified = 0;
    for (unsigned round = 0; round < 600; ++round) {
        TempFile probe("fuzz_round" + std::to_string(round));
        const auto mutation =
            static_cast<FileMutation>(rng.nextBelow(4));
        switch (mutation) {
        case FileMutation::BitFlip: {
            fs::copy_file(master.path(), probe.path(),
                          fs::copy_options::overwrite_existing);
            std::fstream f(probe.path(), std::ios::in | std::ios::out |
                                             std::ios::binary);
            const std::uint64_t at = rng.nextBelow(total);
            f.seekg(static_cast<std::streamoff>(at));
            char byte = 0;
            f.get(byte);
            f.seekp(static_cast<std::streamoff>(at));
            f.put(static_cast<char>(
                byte ^ static_cast<char>(1u << rng.nextBelow(8))));
            break;
        }
        case FileMutation::TruncateAtOffset: {
            fs::copy_file(master.path(), probe.path(),
                          fs::copy_options::overwrite_existing);
            fs::resize_file(probe.path(), rng.nextBelow(total));
            break;
        }
        case FileMutation::RecordDrop: {
            auto frames = layout.records;
            frames.erase(frames.begin() +
                         static_cast<std::ptrdiff_t>(
                             rng.nextBelow(frames.size())));
            rewriteFrames(probe.path(), frames);
            break;
        }
        case FileMutation::RecordDuplicate: {
            auto frames = layout.records;
            const std::size_t at = rng.nextBelow(frames.size());
            frames.insert(frames.begin() +
                              static_cast<std::ptrdiff_t>(at),
                          frames[at]);
            rewriteFrames(probe.path(), frames);
            break;
        }
        }

        try {
            const TraceFile trace = readTraceFile(probe.path());
            for (const TraceRecord &rec : trace.records) {
                if (rec.kind == kTraceUnitTag)
                    (void)decodeUnitRecord(rec.body);
                else if (rec.kind == kTraceCheckpointTag)
                    (void)decodeTraceCheckpoint(rec.body);
            }
            ++decoded;
        } catch (const TraceError &) {
            ++classified; // the sanctioned failure mode
        } catch (const JournalError &) {
            ++classified; // unit-record bodies keep their own class
        }
    }
    // The sweep must exercise both sides of the contract.
    EXPECT_GT(decoded, 0u);
    EXPECT_GT(classified, 0u);
}

TEST(TraceFuzz, SweepIsDeterministicForAGivenSeed)
{
    const std::vector<std::uint8_t> body = headerBody(sampleHeader());
    const auto run_sweep = [&body](std::uint64_t seed) {
        Rng rng(seed);
        std::uint64_t digest = 0xcbf29ce484222325ull;
        for (unsigned round = 0; round < 500; ++round) {
            std::vector<std::uint8_t> mutated = body;
            const std::size_t at = rng.nextBelow(mutated.size());
            mutated[at] ^=
                static_cast<std::uint8_t>(1u << rng.nextBelow(8));
            std::uint8_t outcome;
            try {
                (void)decodeTraceHeader(mutated);
                outcome = 1;
            } catch (const TraceError &err) {
                outcome = static_cast<std::uint8_t>(
                    2 + static_cast<unsigned>(err.kind()));
            }
            digest = (digest ^ outcome) * 0x100000001b3ull;
        }
        return digest;
    };
    EXPECT_EQ(run_sweep(11), run_sweep(11));
    EXPECT_NE(run_sweep(11), run_sweep(13));
}

} // anonymous namespace
} // namespace mtc
