/**
 * @file
 * Seeded mutation fuzz over the fabric's wire surface.
 *
 * Every byte a coordinator or worker reads off a socket passes
 * through exactly two layers: the frame codec (parseFrame) and the
 * protocol codecs (decode* / decodeCampaignSpec / decodeUnitRecord /
 * decodeUnitRequest). An adversarial or fault-mangled peer can hand
 * those layers anything, so the contract under fuzz is strict:
 *
 *  - parseFrame classifies every input as Complete, Incomplete, or
 *    Corrupt — it never throws and never reads past its buffer;
 *  - a decoder either succeeds or throws its documented error type
 *    (DistError for protocol payloads, JournalError for unit
 *    records) — never a std::length_error from a forged length
 *    prefix, never a crash.
 *
 * The sweep is seeded and deterministic: a failure reproduces from
 * the test log's seed alone.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/trace_format.h"
#include "dist/protocol.h"
#include "harness/campaign_journal.h"
#include "harness/dist_campaign.h"
#include "support/framing.h"
#include "support/journal.h"
#include "support/rng.h"
#include "testgen/test_config.h"

namespace mtc
{
namespace
{

/** One seeded mutation: flip, overwrite, truncate, extend, zero a
 * region, or forge a little-endian u32 (a length prefix, if the
 * offset happens to land on one). */
std::vector<std::uint8_t>
mutate(Rng &rng, std::vector<std::uint8_t> bytes)
{
    const std::uint64_t kind = rng.nextBelow(6);
    if (bytes.empty() && kind != 3)
        return bytes;
    switch (kind) {
    case 0: { // single bit flip
        const std::size_t at = rng.nextBelow(bytes.size());
        bytes[at] ^= static_cast<std::uint8_t>(1u << rng.nextBelow(8));
        break;
    }
    case 1: { // overwrite one byte
        bytes[rng.nextBelow(bytes.size())] =
            static_cast<std::uint8_t>(rng.nextBelow(256));
        break;
    }
    case 2: { // truncate
        bytes.resize(rng.nextBelow(bytes.size()));
        break;
    }
    case 3: { // extend with noise
        const std::size_t extra = 1 + rng.nextBelow(32);
        for (std::size_t i = 0; i < extra; ++i)
            bytes.push_back(
                static_cast<std::uint8_t>(rng.nextBelow(256)));
        break;
    }
    case 4: { // zero a region
        std::size_t at = rng.nextBelow(bytes.size());
        std::size_t len = 1 + rng.nextBelow(8);
        for (; len > 0 && at < bytes.size(); --len, ++at)
            bytes[at] = 0;
        break;
    }
    default: { // forge a u32 (worst case: a length field)
        if (bytes.size() >= 4) {
            const std::size_t at = rng.nextBelow(bytes.size() - 3);
            const std::uint32_t forged =
                rng.nextBool(0.5)
                    ? 0xffffffffu
                    : static_cast<std::uint32_t>(rng.nextBelow(1u << 30));
            bytes[at] = static_cast<std::uint8_t>(forged);
            bytes[at + 1] = static_cast<std::uint8_t>(forged >> 8);
            bytes[at + 2] = static_cast<std::uint8_t>(forged >> 16);
            bytes[at + 3] = static_cast<std::uint8_t>(forged >> 24);
        }
        break;
    }
    }
    return bytes;
}

/** A representative corpus of every message the protocol can emit. */
std::vector<std::vector<std::uint8_t>>
protocolCorpus()
{
    std::vector<std::vector<std::uint8_t>> corpus;

    HelloMsg hello;
    hello.name = "fuzz-worker";
    corpus.push_back(encodeHello(hello));
    hello.wantAuth = true;
    hello.nonce.fill(0xa5);
    corpus.push_back(encodeHello(hello));

    WelcomeMsg welcome;
    welcome.spec.assign(64, 0x42);
    corpus.push_back(encodeWelcome(welcome));

    RejectMsg reject;
    reject.reason = "fuzz says no";
    corpus.push_back(encodeReject(reject));

    LeaseMsg lease;
    lease.leaseId = 0x1122334455667788ull;
    for (std::uint64_t u = 0; u < 3; ++u) {
        LeaseUnit unit;
        unit.unitIndex = u;
        unit.request = {static_cast<std::uint8_t>(u), 0x10, 0x20};
        lease.units.push_back(unit);
    }
    corpus.push_back(encodeLease(lease));

    ResultMsg result;
    result.leaseId = 0x99;
    result.unitIndex = 7;
    result.response.assign(48, 0x17);
    corpus.push_back(encodeResult(result));

    corpus.push_back(encodeHeartbeat());
    corpus.push_back(encodeDone());

    ChallengeMsg challenge;
    challenge.nonce.fill(0x3c);
    challenge.proof.fill(0xc3);
    corpus.push_back(encodeChallenge(challenge));

    AuthProofMsg proof;
    proof.proof.fill(0x7e);
    corpus.push_back(encodeAuthProof(proof));

    return corpus;
}

constexpr unsigned kRounds = 4000;

TEST(DistFuzz, ParseFrameClassifiesEveryMutation)
{
    Rng rng(0xf0a2);
    const std::vector<std::vector<std::uint8_t>> payloads = {
        {},
        {0x01},
        std::vector<std::uint8_t>(64, 0xaa),
        std::vector<std::uint8_t>(4096, 0x55),
    };
    for (unsigned round = 0; round < kRounds; ++round) {
        std::vector<std::uint8_t> stream;
        const auto &payload = payloads[rng.nextBelow(payloads.size())];
        appendFrame(stream, payload.data(), payload.size());
        stream = mutate(rng, std::move(stream));

        const FrameView view =
            parseFrame(stream.data(), stream.size(), 8192);
        switch (view.status) {
        case FrameStatus::Complete:
            // A surviving frame must stay inside the buffer and
            // carry the checksum-verified payload length.
            ASSERT_LE(view.length, 8192u);
            ASSERT_LE(view.frameBytes, stream.size());
            break;
        case FrameStatus::Incomplete:
        case FrameStatus::Corrupt:
            break; // classified; nothing more to hold
        default:
            FAIL() << "unclassified frame status in round " << round;
        }
    }
}

TEST(DistFuzz, ProtocolDecodersThrowOnlyDistError)
{
    Rng rng(0xbeef);
    const auto corpus = protocolCorpus();
    std::uint64_t decoded = 0, rejected = 0;
    for (unsigned round = 0; round < kRounds; ++round) {
        const auto mutated =
            mutate(rng, corpus[rng.nextBelow(corpus.size())]);
        // Decode under every decoder, not just the matching one:
        // peekType dispatch can be confused by a flipped tag byte, so
        // each decoder must also classify foreign message types.
        try {
            (void)peekType(mutated);
            ++decoded;
        } catch (const DistError &) {
            ++rejected;
        }
        try {
            switch (rng.nextBelow(7)) {
            case 0:
                (void)decodeHello(mutated);
                break;
            case 1:
                (void)decodeWelcome(mutated);
                break;
            case 2:
                (void)decodeReject(mutated);
                break;
            case 3:
                (void)decodeLease(mutated);
                break;
            case 4:
                (void)decodeResult(mutated);
                break;
            case 5:
                (void)decodeChallenge(mutated);
                break;
            default:
                (void)decodeAuthProof(mutated);
                break;
            }
            ++decoded;
        } catch (const DistError &) {
            ++rejected; // the one sanctioned failure mode
        }
    }
    // The sweep must exercise both sides of the contract: mutations
    // that decode (benign flips) and mutations that are refused.
    EXPECT_GT(decoded, 0u);
    EXPECT_GT(rejected, 0u);
}

TEST(DistFuzz, CampaignSpecDecoderThrowsOnlyDistError)
{
    CampaignSpec spec;
    spec.configs = {parseConfigName("x86-2-50-32"),
                    parseConfigName("ARM-4-100-64")};
    spec.campaign.iterations = 128;
    spec.campaign.testsPerConfig = 3;
    spec.campaign.seed = 7;
    const std::vector<std::uint8_t> good = encodeCampaignSpec(spec);

    Rng rng(0x5bec);
    std::uint64_t rejected = 0;
    for (unsigned round = 0; round < kRounds; ++round) {
        try {
            (void)decodeCampaignSpec(mutate(rng, good));
        } catch (const DistError &) {
            ++rejected;
        }
    }
    EXPECT_GT(rejected, 0u);
}

TEST(DistFuzz, UnitCodecsThrowOnlyClassifiedErrors)
{
    UnitRecord record;
    record.configName = "x86-2-50-32";
    record.testIndex = 5;
    record.genSeed = 0xdead;
    record.flowSeed = 0xbeef;
    record.outcome.result.uniqueSignatures = 3;
    const std::vector<std::uint8_t> rec_bytes =
        encodeUnitRecord(record);
    const std::vector<std::uint8_t> req_bytes =
        encodeUnitRequest(1, 2);

    Rng rng(0x0eca);
    for (unsigned round = 0; round < kRounds; ++round) {
        try {
            (void)decodeUnitRecord(mutate(rng, rec_bytes));
        } catch (const JournalError &) {
            // the documented rejection for torn unit records
        }
        try {
            (void)decodeUnitRequest(mutate(rng, req_bytes));
        } catch (const DistError &) {
        }
        // The audit digest must never throw at all: garbage digests
        // under a distinct seed (see unitRecordDigest).
        (void)unitRecordDigest(mutate(rng, rec_bytes));
    }
}

TEST(DistFuzz, TraceCodecsThrowOnlyTraceError)
{
    // The trace interchange surface (offline checking) reads the same
    // kind of outside-the-process bytes the fabric does, so it gets
    // the same sweep: header bodies, signature-stream (unit) bodies,
    // and checkpoint bodies, each decoded under every trace decoder.
    TraceHeader header;
    header.identityDigest = 0xfeedfacecafebeefull;
    header.description = "seed=7 iterations=64 tests=2";
    header.spec.assign(48, 0x42);
    const std::vector<std::uint8_t> header_payload =
        encodeTraceHeader(header);
    const std::vector<std::uint8_t> header_body(
        header_payload.begin() + 1, header_payload.end());

    UnitRecord unit;
    unit.configName = "x86-2-50-32";
    unit.testIndex = 1;
    unit.genSeed = 0xdead;
    unit.flowSeed = 0xbeef;
    unit.outcome.result.uniqueSignatures = 2;
    unit.outcome.result.signatureStream.resize(2);
    unit.outcome.result.signatureStream[0].signature.words = {1, 2};
    unit.outcome.result.signatureStream[0].iterations = 3;
    unit.outcome.result.signatureStream[1].signature.words = {4, 5};
    unit.outcome.result.signatureStream[1].iterations = 7;
    const std::vector<std::uint8_t> unit_body = encodeUnitRecord(unit);

    TraceCheckpointRecord ckpt;
    ckpt.configName = "x86-2-50-32";
    ckpt.testIndex = 1;
    ckpt.payloadDigest = 0x77;
    ckpt.quarantined = 1;
    ckpt.note = "fingerprint-mismatch: drill";
    const std::vector<std::uint8_t> ckpt_body =
        encodeTraceCheckpoint(ckpt);

    const std::vector<std::vector<std::uint8_t>> corpus = {
        header_body, unit_body, ckpt_body};

    Rng rng(0x7f02);
    std::uint64_t decoded = 0, rejected = 0;
    for (unsigned round = 0; round < kRounds; ++round) {
        const auto mutated =
            mutate(rng, corpus[rng.nextBelow(corpus.size())]);
        // Every decoder sees every corpus entry: a flipped kind byte
        // routes records to the wrong decoder in real ingestion, so
        // foreign bodies must classify too.
        try {
            switch (rng.nextBelow(3)) {
            case 0:
                (void)decodeTraceHeader(mutated);
                break;
            case 1:
                (void)decodeTraceCheckpoint(mutated);
                break;
            default:
                (void)decodeUnitRecord(mutated);
                break;
            }
            ++decoded;
        } catch (const TraceError &) {
            ++rejected; // trace decoders' documented rejection
        } catch (const JournalError &) {
            ++rejected; // unit records keep their journal class
        }
    }
    EXPECT_GT(decoded, 0u);
    EXPECT_GT(rejected, 0u);
}

TEST(DistFuzz, SweepIsDeterministicForAGivenSeed)
{
    const auto corpus = protocolCorpus();
    const auto run_sweep = [&corpus](std::uint64_t seed) {
        Rng rng(seed);
        std::uint64_t outcome_digest = 0xcbf29ce484222325ull;
        for (unsigned round = 0; round < 500; ++round) {
            const auto mutated =
                mutate(rng, corpus[rng.nextBelow(corpus.size())]);
            std::uint8_t outcome;
            try {
                (void)decodeHello(mutated);
                outcome = 1;
            } catch (const DistError &) {
                outcome = 2;
            }
            outcome_digest =
                (outcome_digest ^ outcome) * 0x100000001b3ull;
            outcome_digest ^= fnv1a64(mutated.data(), mutated.size());
        }
        return outcome_digest;
    };
    EXPECT_EQ(run_sweep(123), run_sweep(123));
    EXPECT_NE(run_sweep(123), run_sweep(321));
}

} // anonymous namespace
} // namespace mtc
