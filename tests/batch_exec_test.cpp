/**
 * @file
 * Batched lockstep engine guarantees. The one hard promise of the
 * batch engine is bit-identity: lane i of runBatchInto() must consume
 * RNG stream i draw-for-draw exactly as scalar runInto() would, at
 * every batch width, on every policy/ISA/config, under crash drills,
 * injected protocol deadlocks, and cancellation. On top of that, the
 * flow's batched inner loop and the campaign layers must produce
 * bit-identical summaries at any --batch x --threads x execution-mode
 * combination, including journaled resume. These tests are also the
 * cross-lane aliasing regression net for the SoA run state: any lane
 * reading another lane's slice breaks per-lane equality with the
 * scalar engine immediately.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "harness/campaign.h"
#include "harness/validation_flow.h"
#include "sim/coherent_executor.h"
#include "sim/executor.h"
#include "support/cancellation.h"
#include "support/error.h"
#include "testgen/generator.h"
#include "testgen/test_config.h"

namespace mtc
{
namespace
{

namespace fs = std::filesystem;

/** Unique scratch path that cleans up after itself. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : p((fs::temp_directory_path() /
             ("mtc_batch_" + name + "_" +
              std::to_string(static_cast<std::uint64_t>(::getpid()))))
                .string())
    {
        std::remove(p.c_str());
    }

    ~TempFile() { std::remove(p.c_str()); }

    const std::string &path() const { return p; }

  private:
    std::string p;
};

/** What one scalar runInto() produced for one lane seed. */
struct ScalarOutcome
{
    bool crashed = false;
    std::string crashWhat;
    Execution execution;
    std::uint64_t nextDraw = 0; ///< first RNG draw after the run
};

/** Reference results: one scalar run per lane seed, in lane order. */
std::vector<ScalarOutcome>
scalarReference(const TestProgram &program, const ExecutorConfig &exec,
                const std::vector<std::uint64_t> &seeds)
{
    OperationalExecutor platform(exec);
    std::vector<ScalarOutcome> outcomes(seeds.size());
    RunArena arena;
    for (std::size_t i = 0; i < seeds.size(); ++i) {
        Rng rng(seeds[i]);
        try {
            platform.runInto(program, rng, arena, nullptr);
            outcomes[i].execution = arena.execution;
        } catch (const ProtocolDeadlockError &err) {
            outcomes[i].crashed = true;
            outcomes[i].crashWhat = err.what();
        }
        outcomes[i].nextDraw = rng();
    }
    return outcomes;
}

/** Lane seeds exactly as the flow derives them: one master draw per
 * iteration, in iteration order. */
std::vector<std::uint64_t>
laneSeeds(std::uint64_t master_seed, std::size_t lanes)
{
    Rng master(master_seed);
    std::vector<std::uint64_t> seeds(lanes);
    for (std::size_t i = 0; i < lanes; ++i)
        seeds[i] = master();
    return seeds;
}

struct EngineCase
{
    const char *label;
    const char *testConfig;
    ExecutorConfig exec;
};

/** Both policies, both ISAs, bare-metal and OS-jitter variants, plus
 * the SC reference simulator (UniformRandom with exported coherence
 * order). */
std::vector<EngineCase>
engineMatrix()
{
    return {
        {"bare-x86", "x86-4-50-16", bareMetalConfig(Isa::X86)},
        {"bare-arm", "ARM-4-50-16", bareMetalConfig(Isa::ARMv7)},
        {"os-x86", "x86-4-50-16", osConfig(Isa::X86)},
        {"os-arm", "ARM-4-50-16", osConfig(Isa::ARMv7)},
        {"sc-reference", "x86-4-50-16", scReferenceConfig()},
    };
}

// --- Engine-level bit-identity ----------------------------------------

TEST(BatchEngine, LanesBitIdenticalToScalarAcrossMatrix)
{
    for (const EngineCase &c : engineMatrix()) {
        const TestProgram program =
            generateTest(parseConfigName(c.testConfig), 7);
        for (std::uint32_t lanes : {1u, 2u, 7u, 32u}) {
            const std::vector<std::uint64_t> seeds =
                laneSeeds(2017, lanes);
            const std::vector<ScalarOutcome> scalar =
                scalarReference(program, c.exec, seeds);

            OperationalExecutor platform(c.exec);
            std::vector<Rng> rngs;
            for (std::uint64_t seed : seeds)
                rngs.emplace_back(seed);
            BatchRunArena batch;
            std::vector<LaneStatus> status(lanes);
            platform.runBatchInto(program, rngs.data(), lanes, batch,
                                  nullptr, status.data());

            for (std::uint32_t l = 0; l < lanes; ++l) {
                ASSERT_FALSE(scalar[l].crashed)
                    << c.label << " lane " << l;
                ASSERT_EQ(status[l], LaneStatus::Completed)
                    << c.label << " lane " << l << " of " << lanes;
                EXPECT_EQ(batch.executions[l].loadValues,
                          scalar[l].execution.loadValues)
                    << c.label << " lane " << l << " of " << lanes;
                EXPECT_EQ(batch.executions[l].duration,
                          scalar[l].execution.duration)
                    << c.label << " lane " << l << " of " << lanes;
                EXPECT_EQ(batch.executions[l].coherenceOrder,
                          scalar[l].execution.coherenceOrder)
                    << c.label << " lane " << l << " of " << lanes;
                // Draw-for-draw identity: the lane's stream must stand
                // exactly where the scalar run left it.
                EXPECT_EQ(rngs[l](), scalar[l].nextDraw)
                    << c.label << " lane " << l << " of " << lanes;
            }
        }
    }
}

TEST(BatchEngine, InjectedDeadlocksCrashTheSameLanesAsScalar)
{
    // Partial-probability PUTX/GETX races: some lanes deadlock, some
    // complete. The crash pattern, the crash messages, and every
    // surviving lane's results and RNG position must match the scalar
    // engine exactly.
    ExecutorConfig exec = bareMetalConfig(Isa::X86);
    exec.bug = BugKind::PutxGetxRace;
    exec.bugProbability = 0.02;
    exec.timing.cacheLines = 4; // tiny L1 intensifies evictions
    const TestProgram program = generateTest(
        parseConfigName("x86-7-200-64 (4 words/line)"), 11);

    const std::uint32_t lanes = 32;
    const std::vector<std::uint64_t> seeds = laneSeeds(31337, lanes);
    const std::vector<ScalarOutcome> scalar =
        scalarReference(program, exec, seeds);

    std::size_t crashed = 0;
    for (const ScalarOutcome &o : scalar)
        crashed += o.crashed ? 1 : 0;
    ASSERT_GT(crashed, 0u) << "bug probability too low for this seed";
    ASSERT_LT(crashed, static_cast<std::size_t>(lanes))
        << "bug probability too high for this seed";

    OperationalExecutor platform(exec);
    std::vector<Rng> rngs;
    for (std::uint64_t seed : seeds)
        rngs.emplace_back(seed);
    BatchRunArena batch;
    std::vector<LaneStatus> status(lanes);
    platform.runBatchInto(program, rngs.data(), lanes, batch, nullptr,
                          status.data());

    for (std::uint32_t l = 0; l < lanes; ++l) {
        if (scalar[l].crashed) {
            EXPECT_EQ(status[l], LaneStatus::Crashed) << "lane " << l;
            EXPECT_EQ(batch.crashMessage(l), scalar[l].crashWhat)
                << "lane " << l;
        } else {
            ASSERT_EQ(status[l], LaneStatus::Completed) << "lane " << l;
            EXPECT_EQ(batch.executions[l].loadValues,
                      scalar[l].execution.loadValues)
                << "lane " << l;
            EXPECT_EQ(rngs[l](), scalar[l].nextDraw) << "lane " << l;
        }
    }
}

TEST(BatchEngine, CrashDrillLaneConsumesNoRngAndLeavesOthersIntact)
{
    // crashOnRun counts platform runs; in a batch, lane N-1 is the Nth
    // run. The drilled lane must crash without touching its RNG stream
    // (scalar runInto throws before any draw) and every other lane
    // must match a drill-free scalar run.
    ExecutorConfig exec = bareMetalConfig(Isa::ARMv7);
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-50-16"), 23);
    const std::uint32_t lanes = 6;
    const std::vector<std::uint64_t> seeds = laneSeeds(99, lanes);
    const std::vector<ScalarOutcome> clean =
        scalarReference(program, exec, seeds);

    ExecutorConfig drilled = exec;
    drilled.crashOnRun = 3;
    OperationalExecutor platform(drilled);
    std::vector<Rng> rngs;
    for (std::uint64_t seed : seeds)
        rngs.emplace_back(seed);
    BatchRunArena batch;
    std::vector<LaneStatus> status(lanes);
    platform.runBatchInto(program, rngs.data(), lanes, batch, nullptr,
                          status.data());

    for (std::uint32_t l = 0; l < lanes; ++l) {
        if (l == 2) {
            EXPECT_EQ(status[l], LaneStatus::Crashed);
            EXPECT_NE(batch.crashMessage(l).find("crash drill"),
                      std::string::npos);
            // The lane never ran: its stream is still at the origin.
            Rng untouched(seeds[l]);
            EXPECT_EQ(rngs[l](), untouched());
            continue;
        }
        ASSERT_EQ(status[l], LaneStatus::Completed) << "lane " << l;
        EXPECT_EQ(batch.executions[l].loadValues,
                  clean[l].execution.loadValues)
            << "lane " << l;
        EXPECT_EQ(rngs[l](), clean[l].nextDraw) << "lane " << l;
    }
}

TEST(BatchEngine, CancellationMarksOnlyActiveLanesHung)
{
    // A pre-fired watchdog token abandons every lane that actually
    // runs — but a lane retired at dispatch (here: the crash drill)
    // keeps its own status and message, and results of an earlier,
    // uncancelled dispatch are unaffected.
    ExecutorConfig exec = bareMetalConfig(Isa::X86);
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-16"), 5);
    const std::uint32_t lanes = 4;
    const std::vector<std::uint64_t> seeds = laneSeeds(4242, lanes);

    ExecutorConfig drilled = exec;
    drilled.crashOnRun = 2;
    OperationalExecutor platform(drilled);

    // Dispatch 1: no cancellation; everything but the drilled lane
    // completes.
    std::vector<Rng> rngs;
    for (std::uint64_t seed : seeds)
        rngs.emplace_back(seed);
    BatchRunArena batch;
    std::vector<LaneStatus> first(lanes);
    platform.runBatchInto(program, rngs.data(), lanes, batch, nullptr,
                          first.data());
    ASSERT_EQ(first[1], LaneStatus::Crashed);
    std::vector<Execution> kept;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        if (l != 1) {
            ASSERT_EQ(first[l], LaneStatus::Completed);
            kept.push_back(batch.executions[l]);
        }
    }

    // Dispatch 2: token already fired. The drill is spent, so every
    // lane is active — and every lane must be marked Hung with the
    // watchdog's message, while dispatch 1's statuses and copied
    // results stay what they were.
    CancellationToken cancel;
    cancel.requestStop();
    std::vector<Rng> rngs2;
    for (std::uint64_t seed : seeds)
        rngs2.emplace_back(seed);
    std::vector<LaneStatus> second(lanes);
    platform.runBatchInto(program, rngs2.data(), lanes, batch, &cancel,
                          second.data());
    for (std::uint32_t l = 0; l < lanes; ++l)
        EXPECT_EQ(second[l], LaneStatus::Hung) << "lane " << l;
    EXPECT_NE(batch.hangMessage().find("deadline"), std::string::npos);
    EXPECT_EQ(first[1], LaneStatus::Crashed);
    ASSERT_EQ(kept.size(), 3u);
    for (const Execution &e : kept)
        EXPECT_FALSE(e.loadValues.empty());

    // Crash drill + cancellation in one dispatch: the drilled lane is
    // retired before stepping and must stay Crashed, not Hung.
    OperationalExecutor fresh(drilled);
    std::vector<Rng> rngs3;
    for (std::uint64_t seed : seeds)
        rngs3.emplace_back(seed);
    std::vector<LaneStatus> third(lanes);
    fresh.runBatchInto(program, rngs3.data(), lanes, batch, &cancel,
                       third.data());
    for (std::uint32_t l = 0; l < lanes; ++l) {
        EXPECT_EQ(third[l],
                  l == 1 ? LaneStatus::Crashed : LaneStatus::Hung)
            << "lane " << l;
    }
}

// --- Flow-level batch-width invariance --------------------------------

void
expectFlowsIdentical(const FlowResult &a, const FlowResult &b,
                     const std::string &label)
{
    EXPECT_EQ(a.iterationsRun, b.iterationsRun) << label;
    EXPECT_EQ(a.uniqueSignatures, b.uniqueSignatures) << label;
    EXPECT_EQ(a.signatureSetDigest, b.signatureSetDigest) << label;
    EXPECT_EQ(a.violatingSignatures, b.violatingSignatures) << label;
    EXPECT_EQ(a.assertionFailures, b.assertionFailures) << label;
    EXPECT_EQ(a.platformCrashes, b.platformCrashes) << label;
    EXPECT_EQ(a.fault.recordedIterations, b.fault.recordedIterations)
        << label;
    EXPECT_EQ(a.fault.quarantinedCount(), b.fault.quarantinedCount())
        << label;
    EXPECT_EQ(a.fault.transientViolations, b.fault.transientViolations)
        << label;
    EXPECT_EQ(a.collective.edgesProcessed, b.collective.edgesProcessed)
        << label;
}

TEST(BatchFlow, SummariesInvariantAcrossBatchWidths)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-100-64"), 13);
    FlowConfig base;
    base.iterations = 256;
    base.seed = 77;
    base.exec = bareMetalConfig(Isa::X86);
    base.runConventional = false;

    FlowConfig scalar_cfg = base;
    scalar_cfg.batch = 1;
    const FlowResult scalar = ValidationFlow(scalar_cfg).runTest(program);
    EXPECT_GT(scalar.uniqueSignatures, 1u);

    for (std::uint32_t width : {0u, 2u, 7u, 32u}) {
        FlowConfig cfg = base;
        cfg.batch = width;
        const FlowResult batched = ValidationFlow(cfg).runTest(program);
        expectFlowsIdentical(scalar, batched,
                             "batch " + std::to_string(width));
    }
}

TEST(BatchFlow, InvariantUnderFaultInjectionAndConfirmation)
{
    const TestProgram program =
        generateTest(parseConfigName("ARM-4-50-32"), 17);
    FlowConfig base;
    base.iterations = 192;
    base.seed = 3;
    base.exec = osConfig(Isa::ARMv7);
    base.runConventional = false;
    base.fault.bitFlipRate = 0.02;
    base.fault.dropRate = 0.01;
    base.fault.duplicateRate = 0.01;
    base.recovery.confirmationRuns = 2;

    FlowConfig scalar_cfg = base;
    scalar_cfg.batch = 1;
    const FlowResult scalar = ValidationFlow(scalar_cfg).runTest(program);
    EXPECT_TRUE(scalar.fault.injected.totalEvents() ||
                scalar.fault.quarantinedCount())
        << "fault rates too low to exercise the fault paths";

    for (std::uint32_t width : {7u, 32u}) {
        FlowConfig cfg = base;
        cfg.batch = width;
        const FlowResult batched = ValidationFlow(cfg).runTest(program);
        expectFlowsIdentical(scalar, batched,
                             "batch " + std::to_string(width));
    }
}

TEST(BatchFlow, CoherentPlatformBatchesThroughGenericFallback)
{
    // The message-level platform has no lockstep engine; its batches
    // run through Platform's sequential per-lane fallback, which must
    // be just as bit-identical.
    const TestProgram program =
        generateTest(parseConfigName("x86-2-50-32"), 19);
    FlowConfig base;
    base.iterations = 64;
    base.seed = 21;
    base.coherent = gem5LikeConfig();
    base.runConventional = false;

    FlowConfig scalar_cfg = base;
    scalar_cfg.batch = 1;
    const FlowResult scalar = ValidationFlow(scalar_cfg).runTest(program);
    FlowConfig batched_cfg = base;
    batched_cfg.batch = 8;
    const FlowResult batched =
        ValidationFlow(batched_cfg).runTest(program);
    expectFlowsIdentical(scalar, batched, "coherent batch 8");
}

// --- Campaign-level invariance ----------------------------------------

/** Compare every deterministic field of two summaries (wall-clock ms
 * fields are the only legitimate divergence between runs). */
void
expectSummariesIdentical(const ConfigSummary &a, const ConfigSummary &b)
{
    EXPECT_EQ(a.tests, b.tests);
    EXPECT_EQ(a.avgUniqueSignatures, b.avgUniqueSignatures);
    EXPECT_EQ(a.avgSignatureBytes, b.avgSignatureBytes);
    EXPECT_EQ(a.avgUnrelatedAccesses, b.avgUnrelatedAccesses);
    EXPECT_EQ(a.avgCodeRatio, b.avgCodeRatio);
    EXPECT_EQ(a.collectiveWork, b.collectiveWork);
    EXPECT_EQ(a.conventionalWork, b.conventionalWork);
    EXPECT_EQ(a.collectiveGraphs, b.collectiveGraphs);
    EXPECT_EQ(a.collectiveCompleteSorts, b.collectiveCompleteSorts);
    EXPECT_EQ(a.avgComputationOverhead, b.avgComputationOverhead);
    EXPECT_EQ(a.avgSortingOverhead, b.avgSortingOverhead);
    EXPECT_EQ(a.violations, b.violations);
    EXPECT_EQ(a.injected.totalEvents(), b.injected.totalEvents());
    EXPECT_EQ(a.quarantinedSignatures, b.quarantinedSignatures);
    EXPECT_EQ(a.quarantinedIterations, b.quarantinedIterations);
    EXPECT_EQ(a.confirmedViolations, b.confirmedViolations);
    EXPECT_EQ(a.transientViolations, b.transientViolations);
    EXPECT_EQ(a.crashRetries, b.crashRetries);
    EXPECT_EQ(a.testRetriesUsed, b.testRetriesUsed);
    EXPECT_EQ(a.failedTests, b.failedTests);
    EXPECT_EQ(a.degraded, b.degraded);
}

std::vector<TestConfig>
campaignConfigs()
{
    return {parseConfigName("x86-2-50-32"),
            parseConfigName("ARM-2-50-32")};
}

CampaignConfig
baseCampaign()
{
    CampaignConfig campaign;
    campaign.iterations = 64;
    campaign.testsPerConfig = 2;
    campaign.runConventional = false;
    return campaign;
}

TEST(BatchCampaign, SummariesInvariantAcrossBatchThreadsAndMode)
{
    CampaignConfig baseline_cfg = baseCampaign();
    baseline_cfg.batch = 1;
    const auto baseline = runCampaign(campaignConfigs(), baseline_cfg);

    struct Variant
    {
        std::uint32_t batch;
        unsigned threads;
        ExecutionMode mode;
    };
    const std::vector<Variant> variants = {
        {8, 1, ExecutionMode::InProcess},
        {32, 4, ExecutionMode::InProcess},
        {8, 2, ExecutionMode::Sandboxed},
    };
    for (const Variant &v : variants) {
        CampaignConfig campaign = baseCampaign();
        campaign.batch = v.batch;
        campaign.threads = v.threads;
        campaign.mode = v.mode;
        const auto run = runCampaign(campaignConfigs(), campaign);
        ASSERT_EQ(run.size(), baseline.size());
        for (std::size_t i = 0; i < baseline.size(); ++i)
            expectSummariesIdentical(baseline[i], run[i]);
    }
}

TEST(BatchCampaign, JournaledResumeInvariantAcrossBatchWidths)
{
    // A journal written at one batch width must resume — and replay to
    // a bit-identical summary — at another: batch is operational, not
    // part of the campaign identity.
    const auto baseline = runCampaign(campaignConfigs(), [] {
        CampaignConfig c = baseCampaign();
        c.batch = 1;
        return c;
    }());

    TempFile journal("resume_width");
    CampaignConfig writer = baseCampaign();
    writer.batch = 8;
    writer.journalPath = journal.path();
    const auto first = runCampaign(campaignConfigs(), writer);
    ASSERT_EQ(first.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i)
        expectSummariesIdentical(baseline[i], first[i]);

    CampaignConfig resumer = baseCampaign();
    resumer.batch = 32;
    resumer.threads = 2;
    resumer.journalPath = journal.path();
    resumer.resume = true;
    const auto resumed = runCampaign(campaignConfigs(), resumer);
    ASSERT_EQ(resumed.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i)
        expectSummariesIdentical(baseline[i], resumed[i]);
}

TEST(BatchCampaign, DistributedSummaryMatchesScalarInProcess)
{
    // Distributed workers rebuild their flows from the shipped spec
    // (which excludes operational knobs), so their default batched
    // loop must reproduce the coordinator-side scalar summary.
    const auto baseline = runCampaign(campaignConfigs(), [] {
        CampaignConfig c = baseCampaign();
        c.batch = 1;
        return c;
    }());

    CampaignConfig dist = baseCampaign();
    dist.batch = 8;
    dist.mode = ExecutionMode::Distributed;
    dist.distWorkers = 2;
    const auto run = runCampaign(campaignConfigs(), dist);
    ASSERT_EQ(run.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i)
        expectSummariesIdentical(baseline[i], run[i]);
}

} // anonymous namespace
} // namespace mtc
