/**
 * @file
 * Exit codes are an external contract shared by three CLI tools, CI
 * scripts, and the README table. This test pins both halves: the
 * numeric constants (so a refactor cannot silently renumber a verdict
 * someone's regression farm matches on) and the README's "Exit codes"
 * table (so documentation drift — the table once predated codes 5 and
 * 6 — fails a test instead of confusing an operator).
 *
 * The README path is baked in at configure time (MTC_README_PATH), so
 * the test runs from any build directory.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "harness/campaign_report.h"
#include "harness/exit_codes.h"

namespace mtc
{
namespace
{

TEST(ExitCodes, NumericValuesAreFrozen)
{
    EXPECT_EQ(kExitClean, 0);
    EXPECT_EQ(kExitConfigError, 1);
    EXPECT_EQ(kExitViolation, 2);
    EXPECT_EQ(kExitCorruptionOnly, 3);
    EXPECT_EQ(kExitPlatformCrash, 4);
    EXPECT_EQ(kExitHang, 5);
    EXPECT_EQ(kExitBreakerTripped, 6);
    EXPECT_EQ(kExitTraceFault, 7);
}

TEST(ExitCodes, CampaignMappingHonorsSeverityPriority)
{
    CampaignTotals t;
    EXPECT_EQ(campaignExitCode(t), kExitClean);

    t.quarantined = 1;
    EXPECT_EQ(campaignExitCode(t), kExitCorruptionOnly);
    t.failed = 1;
    EXPECT_EQ(campaignExitCode(t), kExitPlatformCrash);
    t.hung = 1;
    EXPECT_EQ(campaignExitCode(t), kExitHang);
    t.tripped = true;
    EXPECT_EQ(campaignExitCode(t), kExitBreakerTripped);
    t.violations = 1;
    EXPECT_EQ(campaignExitCode(t), kExitViolation);

    CampaignTotals transient_only;
    transient_only.transient = 2;
    EXPECT_EQ(campaignExitCode(transient_only), kExitCorruptionOnly);
    CampaignTotals degraded_only;
    degraded_only.degraded = true;
    EXPECT_EQ(campaignExitCode(degraded_only), kExitPlatformCrash);
    CampaignTotals confirmed_only;
    confirmed_only.confirmed = 1;
    EXPECT_EQ(campaignExitCode(confirmed_only), kExitViolation);
}

/** Rows of the README's exit-code table: code -> full row text. */
std::map<int, std::string>
readmeExitCodeRows()
{
    std::ifstream readme(MTC_README_PATH);
    EXPECT_TRUE(readme.is_open())
        << "cannot open " << MTC_README_PATH;

    std::map<int, std::string> rows;
    std::string line;
    bool in_section = false;
    while (std::getline(readme, line)) {
        if (line.rfind("## ", 0) == 0)
            in_section = line == "## Exit codes";
        if (!in_section || line.rfind("| ", 0) != 0)
            continue;
        // A data row starts "| <integer> |".
        std::istringstream cells(line);
        char bar = 0;
        int code = -1;
        cells >> bar >> code;
        if (bar != '|' || cells.fail())
            continue;
        EXPECT_EQ(rows.count(code), 0u)
            << "duplicate README row for exit code " << code;
        rows[code] = line;
    }
    return rows;
}

TEST(ExitCodes, ReadmeTableCoversEveryCodeWithItsMeaning)
{
    const std::map<int, std::string> rows = readmeExitCodeRows();
    ASSERT_EQ(rows.size(), 8u)
        << "README '## Exit codes' table must document codes 0..7";

    const struct
    {
        int code;
        const char *keyword;
    } expected[] = {
        {kExitClean, "clean"},
        {kExitConfigError, "config error"},
        {kExitViolation, "violation"},
        {kExitCorruptionOnly, "corruption"},
        {kExitPlatformCrash, "crash"},
        {kExitHang, "hung"},
        {kExitBreakerTripped, "breaker"},
        {kExitTraceFault, "trace fault"},
    };
    for (const auto &e : expected) {
        const auto it = rows.find(e.code);
        ASSERT_NE(it, rows.end()) << "no README row for code "
                                  << e.code;
        EXPECT_NE(it->second.find(e.keyword), std::string::npos)
            << "README row for code " << e.code
            << " does not mention \"" << e.keyword
            << "\": " << it->second;
    }
    // Code 7 is mtc_check-only; the row must say which tool emits it.
    EXPECT_NE(rows.at(kExitTraceFault).find("mtc_check"),
              std::string::npos);
}

} // anonymous namespace
} // namespace mtc
