/**
 * @file
 * Tests for the message-level MESI directory-coherence platform:
 * model soundness under protocol races, litmus reachability, data
 * correctness, capacity evictions, determinism, and the protocol-level
 * bug injections.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/conventional_checker.h"
#include "graph/graph_builder.h"
#include "sim/coherent_executor.h"
#include "support/error.h"
#include "testgen/generator.h"
#include "testgen/litmus.h"

namespace mtc
{
namespace
{

using SoundnessParam = std::tuple<const char *, MemoryModel,
                                  std::uint32_t /*cacheLines*/>;

class CoherentSoundness
    : public ::testing::TestWithParam<SoundnessParam>
{
};

TEST_P(CoherentSoundness, NeverViolatesOwnModel)
{
    const auto [config_name, model, cache_lines] = GetParam();
    const TestProgram program =
        generateTest(parseConfigName(config_name), 21);

    CoherentConfig cfg;
    cfg.model = model;
    cfg.reorderWindow = model == MemoryModel::SC ? 1 : 8;
    cfg.cacheLines = cache_lines;
    CoherentExecutor platform(cfg);

    ConventionalChecker checker(program, model);
    ConventionalStats stats;
    Rng rng(31);
    for (int run = 0; run < 40; ++run) {
        const Execution execution = platform.run(program, rng);
        const DynamicEdgeSet edges = dynamicEdges(program, execution);
        EXPECT_FALSE(checker.checkOne(edges, stats))
            << config_name << " under " << modelName(model);
    }
    EXPECT_EQ(stats.violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoherentSoundness,
    ::testing::Values(
        SoundnessParam{"x86-2-50-8", MemoryModel::TSO, 0},
        SoundnessParam{"x86-4-50-16", MemoryModel::TSO, 0},
        SoundnessParam{"x86-7-100-32 (16 words/line)", MemoryModel::TSO,
                       0},
        SoundnessParam{"x86-4-100-64 (4 words/line)", MemoryModel::TSO,
                       4},
        SoundnessParam{"ARM-4-50-16", MemoryModel::RMO, 0},
        SoundnessParam{"x86-2-50-8", MemoryModel::SC, 0}),
    [](const ::testing::TestParamInfo<SoundnessParam> &info) {
        std::string name = std::get<0>(info.param);
        std::string clean;
        for (char c : name)
            if (std::isalnum(static_cast<unsigned char>(c)))
                clean += c;
        return clean + modelName(std::get<1>(info.param)) + "c" +
            std::to_string(std::get<2>(info.param));
    });

TEST(CoherentExecutor, DeterministicGivenSeed)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-16"), 5);
    CoherentConfig cfg = gem5LikeConfig();
    CoherentExecutor a(cfg), b(cfg);
    Rng ra(9), rb(9);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(a.run(program, ra).loadValues,
                  b.run(program, rb).loadValues);
}

TEST(CoherentExecutor, StoreBufferingReachableUnderTso)
{
    const TestProgram sb = litmus::storeBuffering();
    CoherentExecutor platform(gem5LikeConfig());
    Rng rng(1);
    std::set<std::vector<std::uint32_t>> outcomes;
    for (int i = 0; i < 1000; ++i)
        outcomes.insert(platform.run(sb, rng).loadValues);
    EXPECT_TRUE(outcomes.count({kInitValue, kInitValue}))
        << "TSO store buffering must be observable";
}

TEST(CoherentExecutor, FencedStoreBufferingForbidden)
{
    const TestProgram fenced = litmus::storeBufferingFenced();
    CoherentExecutor platform(gem5LikeConfig());
    Rng rng(2);
    for (int i = 0; i < 500; ++i) {
        const Execution e = platform.run(fenced, rng);
        EXPECT_FALSE(e.loadValues[0] == kInitValue &&
                     e.loadValues[1] == kInitValue)
            << "fences must forbid the relaxed outcome";
    }
}

TEST(CoherentExecutor, MessagePassingIntactUnderTso)
{
    const TestProgram mp = litmus::messagePassing();
    const std::uint32_t flag = mp.op(OpId{0, 1}).value;
    CoherentExecutor platform(gem5LikeConfig());
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const Execution e = platform.run(mp, rng);
        if (e.loadValues[0] == flag) {
            EXPECT_NE(e.loadValues[1], kInitValue)
                << "TSO forbids flag-set/data-stale";
        }
    }
}

TEST(CoherentExecutor, SingleThreadReadsOwnStores)
{
    // Sequential per-thread semantics: a single core must observe its
    // own writes through any number of evictions.
    TestConfig cfg;
    cfg.numThreads = 1;
    cfg.opsPerThread = 60;
    cfg.numLocations = 16;
    cfg.wordsPerLine = 4;
    const TestProgram program = generateTest(cfg, 8);

    CoherentConfig coh = gem5LikeConfig();
    coh.cacheLines = 2; // force evictions
    CoherentExecutor platform(coh);
    Rng rng(4);
    const Execution e = platform.run(program, rng);

    // Replay sequentially to compute expected values.
    std::vector<std::uint32_t> mem(cfg.numLocations, kInitValue);
    const auto &body = program.threadBodies()[0];
    for (std::uint32_t idx = 0; idx < body.size(); ++idx) {
        if (body[idx].kind == OpKind::Store) {
            mem[body[idx].loc] = body[idx].value;
        } else if (body[idx].kind == OpKind::Load) {
            EXPECT_EQ(e.loadValues[program.loadOrdinal(OpId{0, idx})],
                      mem[body[idx].loc])
                << "op " << idx;
        }
    }
}

TEST(CoherentExecutor, CoherenceOrderExportConsistent)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-8"), 11);
    CoherentConfig cfg = gem5LikeConfig();
    cfg.exportCoherenceOrder = true;
    CoherentExecutor platform(cfg);
    Rng rng(12);
    const Execution e = platform.run(program, rng);
    ASSERT_EQ(e.coherenceOrder.size(), 8u);
    for (std::uint32_t loc = 0; loc < 8; ++loc) {
        std::multiset<OpId> got(e.coherenceOrder[loc].begin(),
                                e.coherenceOrder[loc].end());
        const auto &want = program.storesTo(loc);
        EXPECT_EQ(got, std::multiset<OpId>(want.begin(), want.end()));
    }
}

TEST(CoherentExecutor, ConfigValidation)
{
    CoherentConfig cfg;
    cfg.reorderWindow = 0;
    EXPECT_THROW(CoherentExecutor{cfg}, ConfigError);
    cfg = CoherentConfig{};
    cfg.bugProbability = -1.0;
    EXPECT_THROW(CoherentExecutor{cfg}, ConfigError);
}

TEST(CoherentBugs, LsqNoSquashDetected)
{
    const TestProgram program = generateTest(
        parseConfigName("x86-7-200-32 (16 words/line)"), 3);
    CoherentConfig cfg = gem5LikeConfig();
    cfg.bug = BugKind::LsqNoSquash;
    cfg.bugProbability = 0.5;
    CoherentExecutor platform(cfg);
    ConventionalChecker checker(program, cfg.model);
    ConventionalStats stats;
    Rng rng(1);
    bool detected = false;
    for (int i = 0; i < 30 && !detected; ++i) {
        const Execution e = platform.run(program, rng);
        detected = checker.checkOne(dynamicEdges(program, e), stats);
    }
    EXPECT_TRUE(detected);
}

TEST(CoherentBugs, StaleLoadOnUpgradeDetected)
{
    const TestProgram program =
        generateTest(parseConfigName("x86-4-50-8 (4 words/line)"), 4);
    CoherentConfig cfg = gem5LikeConfig();
    cfg.bug = BugKind::StaleLoadOnUpgrade;
    cfg.bugProbability = 1.0;
    CoherentExecutor platform(cfg);
    ConventionalChecker checker(program, cfg.model);
    ConventionalStats stats;
    Rng rng(2);
    bool detected = false;
    for (int i = 0; i < 150 && !detected; ++i) {
        const Execution e = platform.run(program, rng);
        detected = checker.checkOne(dynamicEdges(program, e), stats);
    }
    EXPECT_TRUE(detected);
}

TEST(CoherentBugs, PutxGetxRaceDeadlocks)
{
    const TestProgram program = generateTest(
        parseConfigName("x86-7-200-64 (4 words/line)"), 5);
    CoherentConfig cfg = gem5LikeConfig();
    cfg.bug = BugKind::PutxGetxRace;
    cfg.bugProbability = 1.0;
    cfg.cacheLines = 4;
    CoherentExecutor platform(cfg);
    Rng rng(3);
    bool crashed = false;
    for (int i = 0; i < 10 && !crashed; ++i) {
        try {
            platform.run(program, rng);
        } catch (const ProtocolDeadlockError &) {
            crashed = true;
        }
    }
    EXPECT_TRUE(crashed);
}

TEST(CoherentBugs, ControlStaysClean)
{
    // Same contended configurations, no bug, tiny cache: no
    // violations, no crashes.
    for (const char *name :
         {"x86-7-100-32 (16 words/line)", "x86-4-50-8 (4 words/line)"}) {
        const TestProgram program =
            generateTest(parseConfigName(name), 7);
        CoherentConfig cfg = gem5LikeConfig();
        cfg.cacheLines = 4;
        CoherentExecutor platform(cfg);
        ConventionalChecker checker(program, cfg.model);
        ConventionalStats stats;
        Rng rng(5);
        for (int i = 0; i < 40; ++i) {
            const Execution e = platform.run(program, rng);
            EXPECT_FALSE(checker.checkOne(dynamicEdges(program, e),
                                          stats))
                << name;
        }
    }
}

} // anonymous namespace
} // namespace mtc
