/**
 * @file
 * Ground-truth litmus outcome matrix: hand-built executions of the
 * classic litmus tests checked against each memory model. These pin
 * the checker's semantics to the architectural folklore: which
 * outcomes SC, TSO, and RMO each forbid.
 */

#include <gtest/gtest.h>

#include "core/conventional_checker.h"
#include "graph/graph_builder.h"
#include "testgen/litmus.h"

namespace mtc
{
namespace
{

/** Does @p model reject the execution with these load values? */
bool
rejected(const TestProgram &program,
         const std::vector<std::uint32_t> &load_values, MemoryModel model)
{
    Execution execution;
    execution.loadValues = load_values;
    ConventionalChecker checker(program, model);
    ConventionalStats stats;
    return checker.checkOne(dynamicEdges(program, execution), stats);
}

TEST(LitmusOutcomes, StoreBuffering)
{
    const TestProgram sb = litmus::storeBuffering();
    const std::uint32_t x = sb.op(OpId{0, 0}).value;
    const std::uint32_t y = sb.op(OpId{1, 0}).value;
    // loads(): [t0 ld y, t1 ld x].

    // Both loads zero: forbidden only under SC.
    EXPECT_TRUE(rejected(sb, {0, 0}, MemoryModel::SC));
    EXPECT_FALSE(rejected(sb, {0, 0}, MemoryModel::TSO));
    EXPECT_FALSE(rejected(sb, {0, 0}, MemoryModel::RMO));

    // All other outcomes allowed everywhere.
    for (auto values :
         {std::vector<std::uint32_t>{y, x},
          std::vector<std::uint32_t>{y, 0},
          std::vector<std::uint32_t>{0, x}}) {
        for (MemoryModel m :
             {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
            EXPECT_FALSE(rejected(sb, values, m)) << modelName(m);
        }
    }
}

TEST(LitmusOutcomes, StoreBufferingFenced)
{
    const TestProgram sb = litmus::storeBufferingFenced();
    // With full fences, the both-zero outcome is forbidden under
    // every model.
    for (MemoryModel m :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        EXPECT_TRUE(rejected(sb, {0, 0}, m)) << modelName(m);
    }
}

TEST(LitmusOutcomes, LoadBuffering)
{
    const TestProgram lb = litmus::loadBuffering();
    const std::uint32_t st_y = lb.op(OpId{0, 1}).value;
    const std::uint32_t st_x = lb.op(OpId{1, 1}).value;
    // loads(): [t0 ld x, t1 ld y]. Both observing the other thread's
    // store is the paper's Figure 2 outcome: invalid under TSO.
    EXPECT_TRUE(rejected(lb, {st_x, st_y}, MemoryModel::SC));
    EXPECT_TRUE(rejected(lb, {st_x, st_y}, MemoryModel::TSO));
    EXPECT_FALSE(rejected(lb, {st_x, st_y}, MemoryModel::RMO));

    EXPECT_FALSE(rejected(lb, {0, 0}, MemoryModel::SC));
    EXPECT_FALSE(rejected(lb, {st_x, 0}, MemoryModel::TSO));
}

TEST(LitmusOutcomes, MessagePassing)
{
    const TestProgram mp = litmus::messagePassing();
    const std::uint32_t data = mp.op(OpId{0, 0}).value;
    const std::uint32_t flag = mp.op(OpId{0, 1}).value;
    // loads(): [t1 ld flag, t1 ld data].

    // Flag set but data stale: forbidden under SC/TSO, allowed RMO.
    EXPECT_TRUE(rejected(mp, {flag, 0}, MemoryModel::SC));
    EXPECT_TRUE(rejected(mp, {flag, 0}, MemoryModel::TSO));
    EXPECT_FALSE(rejected(mp, {flag, 0}, MemoryModel::RMO));

    // The sane outcomes pass everywhere.
    for (auto values :
         {std::vector<std::uint32_t>{flag, data},
          std::vector<std::uint32_t>{0, data},
          std::vector<std::uint32_t>{0, 0}}) {
        for (MemoryModel m :
             {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
            EXPECT_FALSE(rejected(mp, values, m)) << modelName(m);
        }
    }
}

TEST(LitmusOutcomes, CoRR)
{
    const TestProgram corr = litmus::corr();
    const std::uint32_t v = corr.op(OpId{0, 0}).value;
    // New value then old value: coherence violation everywhere.
    for (MemoryModel m :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        EXPECT_TRUE(rejected(corr, {v, 0}, m)) << modelName(m);
        EXPECT_FALSE(rejected(corr, {0, v}, m)) << modelName(m);
        EXPECT_FALSE(rejected(corr, {v, v}, m)) << modelName(m);
        EXPECT_FALSE(rejected(corr, {0, 0}, m)) << modelName(m);
    }
}

TEST(LitmusOutcomes, Iriw)
{
    const TestProgram iriw = litmus::iriw();
    const std::uint32_t x = iriw.op(OpId{0, 0}).value;
    const std::uint32_t y = iriw.op(OpId{1, 0}).value;
    // loads(): [t2 ld x, t2 ld y, t3 ld y, t3 ld x].
    // Readers disagreeing on the write order: t2 sees x not y, t3
    // sees y not x.
    const std::vector<std::uint32_t> disagree{x, 0, y, 0};
    EXPECT_TRUE(rejected(iriw, disagree, MemoryModel::SC));
    EXPECT_TRUE(rejected(iriw, disagree, MemoryModel::TSO));
    EXPECT_FALSE(rejected(iriw, disagree, MemoryModel::RMO))
        << "RMO (non-multi-copy-atomic reasoning via ld->ld relaxation)"
           " admits IRIW";

    // Agreeing observations pass everywhere.
    const std::vector<std::uint32_t> agree{x, y, y, x};
    for (MemoryModel m :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        EXPECT_FALSE(rejected(iriw, agree, m));
    }
}

TEST(LitmusOutcomes, Wrc)
{
    const TestProgram wrc = litmus::wrc();
    const std::uint32_t x = wrc.op(OpId{0, 0}).value;
    const std::uint32_t y = wrc.op(OpId{1, 1}).value;
    // loads(): [t1 ld x, t2 ld y, t2 ld x].
    // t1 saw x and published y; t2 saw y but not x: causality broken.
    const std::vector<std::uint32_t> broken{x, y, 0};
    EXPECT_TRUE(rejected(wrc, broken, MemoryModel::SC));
    EXPECT_TRUE(rejected(wrc, broken, MemoryModel::TSO));
    EXPECT_FALSE(rejected(wrc, broken, MemoryModel::RMO));

    const std::vector<std::uint32_t> causal{x, y, x};
    for (MemoryModel m :
         {MemoryModel::SC, MemoryModel::TSO, MemoryModel::RMO}) {
        EXPECT_FALSE(rejected(wrc, causal, m));
    }
}

} // anonymous namespace
} // namespace mtc
