/**
 * @file
 * End-to-end tests of the static-pruning extension (paper Section 8):
 * bounding candidate sets shrinks signatures and instrumented code,
 * and a sufficiently conservative prune window never trips the
 * runtime assertion on the bug-free platform. Aggressive pruning, by
 * design, may assert — the paper's trade-off between instrumentation
 * footprint and coverage.
 */

#include <gtest/gtest.h>

#include "harness/validation_flow.h"
#include "sim/executor.h"
#include "testgen/generator.h"

namespace mtc
{
namespace
{

TEST(StaticPruning, ShrinksSignatureAndCode)
{
    TestConfig tc = parseConfigName("ARM-7-200-32");
    const TestProgram program = generateTest(tc, 5);

    LoadValueAnalysis full(program);
    AnalysisOptions opt;
    opt.pruneWindow = 2;
    LoadValueAnalysis pruned(program, opt);

    InstrumentationPlan full_plan(program, full);
    InstrumentationPlan pruned_plan(program, pruned);
    EXPECT_LE(pruned_plan.signatureBytes(), full_plan.signatureBytes());

    const CodeSizeReport full_code = codeSize(program, full, full_plan);
    const CodeSizeReport pruned_code =
        codeSize(program, pruned, pruned_plan);
    EXPECT_LT(pruned_code.instrumentedBytes,
              full_code.instrumentedBytes);
}

TEST(StaticPruning, ConservativeWindowStaysAssertionFree)
{
    // With a prune window at the platform's reorder depth, every value
    // the platform can actually produce stays in the candidate sets.
    TestConfig tc = parseConfigName("x86-4-100-16");
    const TestProgram program = generateTest(tc, 6);

    FlowConfig cfg;
    cfg.iterations = 256;
    cfg.exec = bareMetalConfig(Isa::X86);
    cfg.analysis.pruneWindow = 16;
    ValidationFlow flow(cfg);
    const FlowResult result = flow.runTest(program);
    EXPECT_EQ(result.assertionFailures, 0u);
    EXPECT_FALSE(result.anyViolation());
}

TEST(StaticPruning, FlowStillChecksCorrectly)
{
    // Pruned instrumentation must still detect injected bugs.
    TestConfig tc = parseConfigName("x86-7-100-32 (16 words/line)");
    const TestProgram program = generateTest(tc, 7);

    FlowConfig cfg;
    cfg.iterations = 128;
    cfg.exec = bareMetalConfig(Isa::X86);
    cfg.exec.bug = BugKind::LsqNoSquash;
    cfg.exec.bugProbability = 0.5;
    cfg.analysis.pruneWindow = 8;
    ValidationFlow flow(cfg);
    const FlowResult result = flow.runTest(program);
    // A stale load now either decodes to a cyclic graph or falls
    // outside the pruned candidate set and trips the assertion; both
    // count as detection.
    EXPECT_TRUE(result.anyViolation());
}

} // anonymous namespace
} // namespace mtc
