#include "dist/worker_client.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <memory>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "support/hmac.h"
#include "support/log.h"
#include "support/rng.h"
#include "support/socket.h"
#include "support/transport.h"

namespace mtc
{

namespace
{

/** See the coordinator's SigpipeGuard: EPIPE, not process death. */
class SigpipeGuard
{
  public:
    SigpipeGuard() { old = ::signal(SIGPIPE, SIG_IGN); }
    ~SigpipeGuard() { ::signal(SIGPIPE, old); }

  private:
    void (*old)(int) = nullptr;
};

/**
 * Heartbeat sender: pings the link every period until stopped. Sends
 * share a mutex with the main loop's Result sends — the Transport is
 * thread-compatible, not thread-safe. A send failure just ends the
 * thread; the main loop sees the dead link on its own.
 */
class Heartbeat
{
  public:
    Heartbeat(Transport &link_arg, std::mutex &send_mtx_arg,
              std::uint64_t period_ms)
        : link(link_arg), sendMtx(send_mtx_arg)
    {
        if (period_ms == 0)
            return;
        thread = std::thread([this, period_ms] {
            std::unique_lock<std::mutex> lock(mtx);
            while (!cv.wait_for(
                lock, std::chrono::milliseconds(period_ms),
                [this] { return stop; })) {
                try {
                    const std::lock_guard<std::mutex> send(sendMtx);
                    link.send(encodeHeartbeat());
                } catch (const FramingError &) {
                    return; // link died; the main loop will notice
                }
            }
        });
    }

    ~Heartbeat()
    {
        {
            const std::lock_guard<std::mutex> lock(mtx);
            stop = true;
        }
        cv.notify_all();
        if (thread.joinable())
            thread.join();
    }

  private:
    Transport &link;
    std::mutex &sendMtx;
    std::mutex mtx;
    std::condition_variable cv;
    bool stop = false;
    std::thread thread;
};

} // anonymous namespace

WorkerRunStats
runWorkerClient(const WorkerClientConfig &cfg,
                const WorkerSpecFn &spec_fn, const WorkerUnitFn &unit_fn)
{
    const SigpipeGuard sigpipe;

    WorkerRunStats stats;
    unsigned failures = 0; ///< consecutive connect failures / lost sessions
    unsigned handshakes = 0;
    std::uint64_t backoff = std::max<std::uint64_t>(cfg.backoffBaseMs, 1);
    std::uint64_t sent = 0; ///< results sent, for the exit drill

    const auto back_off = [&](const std::string &why) {
        ++failures;
        if (failures > cfg.maxReconnects)
            return false;
        debug("worker '" + cfg.name + "': " + why + "; retrying in " +
              std::to_string(backoff) + "ms (" +
              std::to_string(failures) + "/" +
              std::to_string(cfg.maxReconnects) + ")");
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff = std::min(backoff * 2, std::max<std::uint64_t>(
                                            cfg.backoffCapMs, 1));
        return true;
    };

    std::uint64_t session_counter = 0; ///< per-session fault seeding
    std::string last_anomaly; ///< most recent non-fatal handshake oddity

    for (;;) {
        int fd = -1;
        try {
            fd = connectTcp(cfg.host, cfg.port);
        } catch (const SocketError &err) {
            if (back_off(std::string("connect failed: ") + err.what()))
                continue;
            if (handshakes > 0)
                return stats; // campaign likely over; see file comment
            throw DistError("worker '" + cfg.name +
                            "': cannot reach coordinator at " +
                            cfg.host + ":" + std::to_string(cfg.port));
        }
        Transport base(fd, "worker '" + cfg.name + "' link");
        std::unique_ptr<Transport> link_ptr;
        if (cfg.netFault.any()) {
            NetFaultConfig nf = cfg.netFault;
            std::uint64_t s =
                nf.seed ^ (0xbb67ae8584caa73bull * ++session_counter);
            nf.seed = splitMix64(s);
            link_ptr = std::make_unique<FaultyTransport>(
                std::move(base), nf);
        } else {
            link_ptr = std::make_unique<Transport>(std::move(base));
        }
        Transport &link = *link_ptr;
        const bool keyed = !cfg.key.empty();
        // In keyed mode nothing big arrives before auth completes
        // (Challenge / Reject / Done), so hold the conservative
        // ceiling until the session key is armed. Keyless mode gets
        // the campaign spec in the handshake reply itself.
        link.setMaxFramePayload(
            keyed ? std::min(kPreAuthFramePayloadBytes,
                             cfg.maxFrameBytes)
                  : cfg.maxFrameBytes);
        // Symmetric to the coordinator side: a frame that starts must
        // finish within the fabric deadline or the connection is torn
        // down and retried, instead of this worker hanging forever on
        // a coordinator whose frame got mangled in flight.
        link.setReceiveDeadlineMs(kFabricFrameDeadlineMs);

        // Handshake. A Reject is fatal (a version mismatch or a ban
        // does not heal by retrying), as is an authentication dead
        // end (wrong key, keyless coordinator answering a keyless
        // worker's demands); a dead connection is not. Crucially, an
        // *unexpected* reply is also not fatal: pre-auth frames are
        // unauthenticated, so a single injected / duplicated /
        // reordered frame must never be able to kill a worker for
        // good — it costs one reconnect out of the budget, and a
        // coordinator that really keeps misbehaving exhausts the
        // budget with the anomaly preserved in the final error.
        struct SessionRetry
        {
            std::string why;
        };
        bool session_ok = false;
        try {
            HelloMsg hello;
            hello.version = cfg.protocolVersion;
            hello.name = cfg.name;
            hello.wantAuth = keyed;
            if (keyed)
                hello.nonce = randomNonce();
            link.send(encodeHello(hello));
            std::vector<std::uint8_t> reply;
            if (link.receive(reply)) {
                FabricMsg type = peekType(reply);
                if (type == FabricMsg::Done) {
                    // We arrived after the campaign resolved (e.g. a
                    // fully journal-replayed resume): clean exit, not
                    // an error and not a reconnect.
                    return stats;
                }
                if (type == FabricMsg::Reject) {
                    throw DistError(
                        "worker '" + cfg.name + "' rejected: " +
                        decodeReject(reply).reason);
                }
                if (keyed) {
                    if (type == FabricMsg::Welcome)
                        throw SessionRetry{
                            "coordinator answered without "
                            "authenticating (it has no fabric key, "
                            "or the challenge was lost in transit); "
                            "refusing to join unauthenticated"};
                    if (type != FabricMsg::Challenge)
                        throw SessionRetry{
                            "unexpected handshake reply"};
                    const ChallengeMsg ch = decodeChallenge(reply);
                    const auto expect = fabricServerProof(
                        cfg.key, hello.nonce, ch.nonce);
                    if (!constantTimeEqual(ch.proof.data(),
                                           expect.data(),
                                           kFabricProofBytes))
                        throw DistError(
                            "worker '" + cfg.name +
                            "': coordinator failed its key proof "
                            "(wrong or stale key file?)");
                    AuthProofMsg ap;
                    ap.proof = fabricClientProof(
                        cfg.key, hello.nonce, ch.nonce, cfg.name);
                    link.send(encodeAuthProof(ap));
                    link.enableFrameAuth(
                        fabricSessionKey(cfg.key, hello.nonce,
                                         ch.nonce),
                        /*is_client=*/true);
                    link.setMaxFramePayload(cfg.maxFrameBytes);
                    std::vector<std::uint8_t> welcome;
                    if (!link.receive(welcome))
                        throw FramingError(
                            "coordinator hung up mid-handshake");
                    type = peekType(welcome);
                    if (type == FabricMsg::Reject)
                        throw DistError(
                            "worker '" + cfg.name + "' rejected: " +
                            decodeReject(welcome).reason);
                    if (type != FabricMsg::Welcome)
                        throw SessionRetry{
                            "unexpected post-auth reply"};
                    spec_fn(decodeWelcome(welcome).spec);
                    session_ok = true;
                } else {
                    if (type == FabricMsg::Challenge)
                        throw DistError(
                            "worker '" + cfg.name +
                            "': coordinator requires a fabric key "
                            "(--fabric-key-file) and this worker has "
                            "none");
                    if (type != FabricMsg::Welcome)
                        throw SessionRetry{
                            "unexpected handshake reply"};
                    spec_fn(decodeWelcome(reply).spec);
                    session_ok = true;
                }
            }
        } catch (const SessionRetry &retry) {
            last_anomaly = retry.why;
        } catch (const AuthError &) {
            // The post-auth stream failed its MAC/sequence check:
            // indistinguishable from an injected fault or a torn
            // connection — reconnect, don't die.
        } catch (const FramingError &) {
            // Fall through: handshake died mid-flight.
        }
        if (!session_ok) {
            if (back_off("handshake did not complete" +
                         (last_anomaly.empty()
                              ? std::string()
                              : " (" + last_anomaly + ")")))
                continue;
            if (handshakes > 0)
                return stats;
            throw DistError(
                "worker '" + cfg.name +
                "': handshake never completed" +
                (last_anomaly.empty()
                     ? std::string()
                     : "; last anomaly: " + last_anomaly));
        }
        if (handshakes++ > 0)
            ++stats.reconnects;
        failures = 0;
        backoff = std::max<std::uint64_t>(cfg.backoffBaseMs, 1);

        std::mutex send_mtx;
        bool done = false;
        {
            const Heartbeat heartbeat(link, send_mtx, cfg.heartbeatMs);
            try {
                for (;;) {
                    std::vector<std::uint8_t> msg;
                    if (!link.receive(msg))
                        break; // lost the coordinator; reconnect
                    const FabricMsg type = peekType(msg);
                    if (type == FabricMsg::Done) {
                        done = true;
                        break;
                    }
                    if (type != FabricMsg::Lease) {
                        // A duplicated / replayed frame (chaos drill
                        // or a confused peer), not a reason to die:
                        // drop the session and reconnect on budget.
                        warn("worker '" + cfg.name +
                             "': unexpected mid-session message; "
                             "dropping session");
                        break;
                    }
                    const LeaseMsg lease = decodeLease(msg);
                    for (const LeaseUnit &unit : lease.units) {
                        if (cfg.unitDelayMs) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(
                                    cfg.unitDelayMs));
                        }
                        ResultMsg res;
                        res.leaseId = lease.leaseId;
                        res.unitIndex = unit.unitIndex;
                        res.response =
                            unit_fn(unit.unitIndex, unit.request);
                        {
                            const std::lock_guard<std::mutex> send(
                                send_mtx);
                            link.send(encodeResult(res));
                        }
                        ++stats.unitsExecuted;
                        ++sent;
                        if (cfg.exitAfterUnits &&
                            sent >= cfg.exitAfterUnits) {
                            // Crash drill: die abruptly mid-batch,
                            // leaving the rest of the lease
                            // unreported. No unwinding, no goodbyes —
                            // the closest _exit gets to a SIGKILL.
                            ::_exit(17);
                        }
                    }
                }
            } catch (const FramingError &) {
                // Torn mid-session; treat as a lost connection.
            }
        } // heartbeat joins here, before the link goes away
        link.close();
        if (done)
            return stats;
        if (!back_off("session lost"))
            return stats; // at least one handshake succeeded
    }
}

} // namespace mtc
