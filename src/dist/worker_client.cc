#include "dist/worker_client.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "support/log.h"
#include "support/socket.h"
#include "support/transport.h"

namespace mtc
{

namespace
{

/** See the coordinator's SigpipeGuard: EPIPE, not process death. */
class SigpipeGuard
{
  public:
    SigpipeGuard() { old = ::signal(SIGPIPE, SIG_IGN); }
    ~SigpipeGuard() { ::signal(SIGPIPE, old); }

  private:
    void (*old)(int) = nullptr;
};

/**
 * Heartbeat sender: pings the link every period until stopped. Sends
 * share a mutex with the main loop's Result sends — the Transport is
 * thread-compatible, not thread-safe. A send failure just ends the
 * thread; the main loop sees the dead link on its own.
 */
class Heartbeat
{
  public:
    Heartbeat(Transport &link_arg, std::mutex &send_mtx_arg,
              std::uint64_t period_ms)
        : link(link_arg), sendMtx(send_mtx_arg)
    {
        if (period_ms == 0)
            return;
        thread = std::thread([this, period_ms] {
            std::unique_lock<std::mutex> lock(mtx);
            while (!cv.wait_for(
                lock, std::chrono::milliseconds(period_ms),
                [this] { return stop; })) {
                try {
                    const std::lock_guard<std::mutex> send(sendMtx);
                    link.send(encodeHeartbeat());
                } catch (const FramingError &) {
                    return; // link died; the main loop will notice
                }
            }
        });
    }

    ~Heartbeat()
    {
        {
            const std::lock_guard<std::mutex> lock(mtx);
            stop = true;
        }
        cv.notify_all();
        if (thread.joinable())
            thread.join();
    }

  private:
    Transport &link;
    std::mutex &sendMtx;
    std::mutex mtx;
    std::condition_variable cv;
    bool stop = false;
    std::thread thread;
};

} // anonymous namespace

WorkerRunStats
runWorkerClient(const WorkerClientConfig &cfg,
                const WorkerSpecFn &spec_fn, const WorkerUnitFn &unit_fn)
{
    const SigpipeGuard sigpipe;

    WorkerRunStats stats;
    unsigned failures = 0; ///< consecutive connect failures / lost sessions
    unsigned handshakes = 0;
    std::uint64_t backoff = std::max<std::uint64_t>(cfg.backoffBaseMs, 1);
    std::uint64_t sent = 0; ///< results sent, for the exit drill

    const auto back_off = [&](const std::string &why) {
        ++failures;
        if (failures > cfg.maxReconnects)
            return false;
        debug("worker '" + cfg.name + "': " + why + "; retrying in " +
              std::to_string(backoff) + "ms (" +
              std::to_string(failures) + "/" +
              std::to_string(cfg.maxReconnects) + ")");
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff = std::min(backoff * 2, std::max<std::uint64_t>(
                                            cfg.backoffCapMs, 1));
        return true;
    };

    for (;;) {
        int fd = -1;
        try {
            fd = connectTcp(cfg.host, cfg.port);
        } catch (const SocketError &err) {
            if (back_off(std::string("connect failed: ") + err.what()))
                continue;
            if (handshakes > 0)
                return stats; // campaign likely over; see file comment
            throw DistError("worker '" + cfg.name +
                            "': cannot reach coordinator at " +
                            cfg.host + ":" + std::to_string(cfg.port));
        }
        Transport link(fd, "worker '" + cfg.name + "' link");
        link.setMaxFramePayload(cfg.maxFrameBytes);

        // Handshake. A Reject is fatal (a version mismatch or a ban
        // does not heal by retrying); a dead connection is not.
        bool session_ok = false;
        try {
            HelloMsg hello;
            hello.version = cfg.protocolVersion;
            hello.name = cfg.name;
            link.send(encodeHello(hello));
            std::vector<std::uint8_t> reply;
            if (link.receive(reply)) {
                const FabricMsg type = peekType(reply);
                if (type == FabricMsg::Done) {
                    // We arrived after the campaign resolved (e.g. a
                    // fully journal-replayed resume): clean exit, not
                    // an error and not a reconnect.
                    return stats;
                }
                if (type == FabricMsg::Reject) {
                    throw DistError(
                        "worker '" + cfg.name + "' rejected: " +
                        decodeReject(reply).reason);
                }
                if (type != FabricMsg::Welcome)
                    throw DistError("worker '" + cfg.name +
                                    "': unexpected handshake reply");
                spec_fn(decodeWelcome(reply).spec);
                session_ok = true;
            }
        } catch (const FramingError &) {
            // Fall through: handshake died mid-flight.
        }
        if (!session_ok) {
            if (back_off("handshake did not complete"))
                continue;
            if (handshakes > 0)
                return stats;
            throw DistError("worker '" + cfg.name +
                            "': handshake never completed");
        }
        if (handshakes++ > 0)
            ++stats.reconnects;
        failures = 0;
        backoff = std::max<std::uint64_t>(cfg.backoffBaseMs, 1);

        std::mutex send_mtx;
        bool done = false;
        {
            const Heartbeat heartbeat(link, send_mtx, cfg.heartbeatMs);
            try {
                for (;;) {
                    std::vector<std::uint8_t> msg;
                    if (!link.receive(msg))
                        break; // lost the coordinator; reconnect
                    const FabricMsg type = peekType(msg);
                    if (type == FabricMsg::Done) {
                        done = true;
                        break;
                    }
                    if (type != FabricMsg::Lease)
                        throw DistError("worker '" + cfg.name +
                                        "': unexpected " +
                                        "mid-session message");
                    const LeaseMsg lease = decodeLease(msg);
                    for (const LeaseUnit &unit : lease.units) {
                        if (cfg.unitDelayMs) {
                            std::this_thread::sleep_for(
                                std::chrono::milliseconds(
                                    cfg.unitDelayMs));
                        }
                        ResultMsg res;
                        res.leaseId = lease.leaseId;
                        res.unitIndex = unit.unitIndex;
                        res.response =
                            unit_fn(unit.unitIndex, unit.request);
                        {
                            const std::lock_guard<std::mutex> send(
                                send_mtx);
                            link.send(encodeResult(res));
                        }
                        ++stats.unitsExecuted;
                        ++sent;
                        if (cfg.exitAfterUnits &&
                            sent >= cfg.exitAfterUnits) {
                            // Crash drill: die abruptly mid-batch,
                            // leaving the rest of the lease
                            // unreported. No unwinding, no goodbyes —
                            // the closest _exit gets to a SIGKILL.
                            ::_exit(17);
                        }
                    }
                }
            } catch (const FramingError &) {
                // Torn mid-session; treat as a lost connection.
            }
        } // heartbeat joins here, before the link goes away
        link.close();
        if (done)
            return stats;
        if (!back_off("session lost"))
            return stats; // at least one handshake succeeded
    }
}

} // namespace mtc
