/**
 * @file
 * Fault-tolerant campaign coordinator: the server side of the
 * distributed fabric.
 *
 * The coordinator owns the campaign plan. Workers connect over TCP,
 * handshake (protocol version checked, campaign spec shipped down),
 * and are streamed *leases* — batches of opaque unit requests. The
 * client callbacks mirror SandboxPool exactly (request / result /
 * loss), so the campaign engine drives a fleet of machines with the
 * same code shape it uses for a fleet of forked children, and the
 * merged summary is bit-identical to a serial in-process run at any
 * fleet size: per-unit seeds are fixed by the plan, results land in
 * per-unit slots, and the fold happens in unit order after run().
 *
 * Robustness properties (see tests/dist_test.cpp for the matrix):
 *  - liveness is heartbeat-based: a silent worker past the timeout is
 *    presumed dead, its leases revoked, its units reassigned;
 *  - a worker death mid-batch (socket EOF, torn frame) forfeits only
 *    its unreported units — one Result per unit, not per lease;
 *  - revoked units re-executing elsewhere cannot double-count: the
 *    lease table's per-unit done flag drops stale duplicates;
 *  - handshakes from mismatched protocol versions are rejected;
 *  - backpressure: at most maxInFlightPerWorker open leases per
 *    worker, so a slow worker throttles itself, not the fleet;
 *  - per-worker error budgets: a worker name that keeps dying is
 *    banned and its reconnects refused (the fabric's circuit
 *    breaker), while its units migrate to healthy workers.
 *
 * Single-threaded poll loop; no threads are created, so a client may
 * fork loopback workers after constructing the Coordinator (the same
 * fork-before-threads discipline the sandbox pool relies on).
 */

#ifndef MTC_DIST_COORDINATOR_H
#define MTC_DIST_COORDINATOR_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dist/protocol.h"
#include "support/fault_transport.h"
#include "support/framing.h"
#include "support/socket.h"

namespace mtc
{

/** Coordinator knobs. */
struct FabricConfig
{
    /** TCP port to listen on; 0 = ephemeral (read back via port()). */
    std::uint16_t port = 0;

    /** Bind address. Loopback by default: crossing machines is an
     * explicit operator decision, not a default exposure. */
    std::string host = "127.0.0.1";

    /** Units per lease. Small batches bound the blast radius of a
     * worker death; large ones amortize round trips. */
    unsigned batchSize = 2;

    /** Open leases per worker — the backpressure bound. */
    unsigned maxInFlightPerWorker = 2;

    /** A worker silent this long is presumed dead; 0 disables. */
    std::uint64_t heartbeatTimeoutMs = 10000;

    /** A lease unfinished this long is revoked and its units
     * reassigned (the worker stays connected); 0 disables. */
    std::uint64_t leaseTimeoutMs = 0;

    /** Worker losses tolerated per worker name before its reconnects
     * are refused; 0 = unlimited. */
    unsigned workerLossBudget = 0;

    /** With units pending but zero connected workers for this long,
     * run() throws instead of waiting forever (loopback fleets that
     * all died and gave up reconnecting); 0 = wait indefinitely,
     * which is right for external fleets an operator attaches. */
    std::uint64_t stallTimeoutMs = 0;

    /** Per-frame payload ceiling on worker connections (applied once
     * a connection is handshaken; before that the far tighter
     * kPreAuthFramePayloadBytes ceiling holds). */
    std::uint32_t maxFrameBytes = kMaxFramePayloadBytes;

    /** Version to require in handshakes. Exposed for tests; leave at
     * the default everywhere else. */
    std::uint32_t protocolVersion = kDistProtocolVersion;

    /** Pre-shared fabric key (loadFabricKey). Empty = keyless
     * loopback mode: no challenge, no per-frame MACs. When set, every
     * worker must prove possession before any lease, and all
     * post-handshake frames carry MAC + sequence numbers. */
    std::vector<std::uint8_t> key;

    /** A connection that has not completed its handshake within this
     * window is dropped — a silent peer cannot pin a poll-loop slot.
     * 0 disables. */
    std::uint64_t handshakeTimeoutMs = 5000;

    /** Seeded network faults injected on every accepted connection
     * (chaos drills); inert when no rate is set. */
    NetFaultConfig netFault;

    /** Fraction of units re-executed by a second worker and
     * cross-compared (Byzantine audit); 0 disables. */
    double auditRate = 0.0;

    /** Seed for the deterministic audit sample. */
    std::uint64_t auditSeed = 0;
};

/** Byzantine-audit counters (all zero when auditing is off). */
struct ByzantineStats
{
    unsigned auditsScheduled = 0; ///< units double-leased for audit
    unsigned auditsPassed = 0;    ///< digests agreed
    unsigned auditMismatches = 0; ///< digests disagreed
    unsigned auditsSkipped = 0;   ///< no auditor or arbiter; trusted
    unsigned localArbitrations = 0; ///< coordinator re-executed a unit
    unsigned resultsInvalidated = 0; ///< results voided by conviction
    std::vector<std::string> quarantined; ///< convicted worker names
};

/** Fabric-level counters for reporting and tests. */
struct FabricStats
{
    unsigned workersConnected = 0; ///< handshakes accepted
    unsigned workersRejected = 0;  ///< handshakes refused
    unsigned workersLost = 0;      ///< accepted workers later lost
    unsigned leasesGranted = 0;
    unsigned leasesRevoked = 0;    ///< by loss or lease timeout
    unsigned unitsReassigned = 0;  ///< units re-queued after a loss
    unsigned duplicateResults = 0; ///< stale results dropped
    unsigned heartbeats = 0;
    unsigned authFailures = 0;     ///< wrong-key / keyless rejections
    unsigned handshakeTimeouts = 0; ///< silent pre-Hello peers dropped
    ByzantineStats byzantine;
};

/** See file comment. */
class Coordinator
{
  public:
    /** Request/result/loss callbacks — the SandboxPool contract. The
     * loss callback additionally receives the per-unit loss count and
     * a reason; returning true re-queues the unit, false abandons it
     * (the client records the failure). */
    using RequestFn = std::function<std::optional<
        std::vector<std::uint8_t>>(std::size_t unit)>;
    using ResultFn =
        std::function<void(std::size_t unit,
                           const std::vector<std::uint8_t> &payload)>;
    using LossFn = std::function<bool(std::size_t unit, unsigned losses,
                                      const std::string &why)>;

    /**
     * Byzantine-audit callbacks. The fabric stays payload-agnostic:
     * it cannot compare two unit results itself, so the client
     * supplies a deterministic digest (wall-clock fields excluded)
     * and, optionally, a local re-execution arbiter that returns the
     * ground-truth payload for a unit. With no arbiter, conviction
     * falls back to majority-over-time: a worker on the losing side
     * of two digest mismatches is quarantined.
     */
    struct AuditHooks
    {
        std::function<std::uint64_t(
            std::size_t unit, const std::vector<std::uint8_t> &payload)>
            digest;
        std::function<std::vector<std::uint8_t>(std::size_t unit)>
            arbiter;
    };

    /**
     * Bind the listening socket (so port() is known before any worker
     * is launched) and stage @p spec for Welcome messages.
     * @throws SocketError if the port cannot be bound.
     */
    Coordinator(FabricConfig cfg, std::vector<std::uint8_t> spec);

    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    /** Bound TCP port (the ephemeral port when cfg.port was 0). */
    std::uint16_t port() const { return listener.port(); }

    /** The listening descriptor. A client that forks loopback workers
     * MUST close this in each child: an inherited copy keeps the
     * listening socket alive after run() closes it, so a late worker's
     * connect would be queued (never accepted, never refused) instead
     * of getting the definitive reset that ends its reconnect loop. */
    int listenerFd() const { return listener.fd(); }

    /**
     * Serve the campaign: accept workers, stream leases, merge
     * results, until every unit of 0..@p unit_count-1 is resolved.
     * Broadcasts Done and disconnects everyone before returning.
     *
     * @throws DistError if progress becomes impossible (every unit's
     *         loss budget can still be absorbed, but a campaign with
     *         pending units and every worker name banned is stuck).
     */
    void run(std::size_t unit_count, const RequestFn &request,
             const ResultFn &result, const LossFn &loss);

    /** run() with Byzantine auditing: when cfg.auditRate > 0 and
     * hooks.digest is set, a deterministic sample of units is
     * re-executed by a second worker and cross-compared; a convicted
     * deviator is quarantined, its unverified results invalidated and
     * re-executed, so the merged campaign matches an honest serial
     * run bit-for-bit. */
    void run(std::size_t unit_count, const RequestFn &request,
             const ResultFn &result, const LossFn &loss,
             const AuditHooks &hooks);

    const FabricStats &stats() const { return fabricStats; }

  private:
    FabricConfig cfg;
    std::vector<std::uint8_t> spec;
    TcpListener listener;
    FabricStats fabricStats;
};

} // namespace mtc

#endif // MTC_DIST_COORDINATOR_H
