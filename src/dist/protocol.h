/**
 * @file
 * Wire protocol for the distributed campaign fabric.
 *
 * The coordinator and its workers exchange framed messages (one
 * message per frame, src/support/transport.h) whose payloads are
 * ByteWriter-encoded with a one-byte type tag up front:
 *
 *   worker -> coordinator:  Hello, Result, Heartbeat, AuthProof
 *   coordinator -> worker:  Welcome, Reject, Lease, Done, Challenge
 *
 * The fabric is payload-agnostic, exactly like the sandbox pool: a
 * Lease carries opaque unit request blobs, a Result carries one
 * opaque response blob. What those bytes mean (campaign unit records)
 * is the harness layer's business (src/harness/dist_campaign.h), so
 * this library depends only on mtc_support.
 *
 * Versioning: Hello carries kDistProtocolVersion; the coordinator
 * rejects mismatches at the handshake with a Reject message rather
 * than letting a stale worker binary desync the stream mid-campaign.
 *
 * Authentication (optional, pre-shared key): when both sides hold a
 * fabric key, the handshake becomes a mutual HMAC challenge/response
 * folded into the Hello/Welcome exchange:
 *
 *   worker:      Hello { version, name, wantAuth, clientNonce }
 *   coordinator: Challenge { serverNonce, serverProof }
 *   worker:      AuthProof { clientProof }      (after verifying)
 *   coordinator: Welcome { spec }               (after verifying)
 *
 * serverProof = HMAC(key, "mtc-fabric-server" || cNonce || sNonce)
 * proves the coordinator holds the key BEFORE the worker proves
 * itself, so a wrong-key coordinator is detected client-side too.
 * clientProof binds the worker name so a proof cannot be replayed
 * under another identity. Both sides then derive a session key
 * (domain "mtc-fabric-session") and arm the per-frame MAC + sequence
 * envelope (Transport::enableFrameAuth) for everything after
 * AuthProof. Keyless loopback mode skips all of this: a Hello with
 * wantAuth=false on a keyless coordinator gets a plain Welcome.
 */

#ifndef MTC_DIST_PROTOCOL_H
#define MTC_DIST_PROTOCOL_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"

namespace mtc
{

/** Protocol-level failure in the distributed fabric (malformed
 * message, handshake rejection, fabric infrastructure fault). */
class DistError : public Error
{
  public:
    explicit DistError(const std::string &what_arg) : Error(what_arg)
    {}
};

/** Bump on any wire-format change; handshakes cross-check it.
 * v2: Hello gained wantAuth + clientNonce; Challenge/AuthProof added
 * for the pre-shared-key handshake. */
constexpr std::uint32_t kDistProtocolVersion = 2;

/**
 * Frame-payload ceiling applied to a connection until its handshake
 * completes: a peer that has not yet proven anything must not be able
 * to drive a large allocation with a forged length word. Hello,
 * Challenge, and AuthProof are all far below this.
 */
constexpr std::uint32_t kPreAuthFramePayloadBytes = 4096;

/**
 * Receive deadline applied to every fabric transport: once a frame's
 * first byte arrives, the rest must follow within this window
 * (Transport::setReceiveDeadlineMs). The coordinator's event loop is
 * single-threaded, so a peer that starts a frame and withholds the
 * tail — a slow-loris, or a corrupted length word — would otherwise
 * freeze the very loop whose timers are supposed to evict it. Ten
 * seconds is orders of magnitude above any honest frame (unit records
 * are a few KB on a local link) yet still bounds the damage.
 */
constexpr std::uint32_t kFabricFrameDeadlineMs = 10000;

/** First payload byte of every fabric message. */
enum class FabricMsg : std::uint8_t
{
    Hello = 1,     ///< worker: version + name, opens the session
    Welcome = 2,   ///< coordinator: handshake accepted + campaign spec
    Reject = 3,    ///< coordinator: handshake refused (reason string)
    Lease = 4,     ///< coordinator: a batch of units to execute
    Result = 5,    ///< worker: one completed unit of a lease
    Heartbeat = 6, ///< worker: liveness signal
    Done = 7,      ///< coordinator: campaign complete, disconnect
    Challenge = 8, ///< coordinator: auth nonce + proof of key
    AuthProof = 9  ///< worker: proof of key possession
};

/** Classify a raw payload without decoding it.
 * @throws DistError on an empty payload or an unknown tag. */
FabricMsg peekType(const std::vector<std::uint8_t> &payload);

/** Handshake nonce / proof sizes. */
constexpr std::size_t kFabricNonceBytes = 16;
constexpr std::size_t kFabricProofBytes = 32;

struct HelloMsg
{
    std::uint32_t version = kDistProtocolVersion;
    std::string name; ///< worker identity for logs and error budgets
    bool wantAuth = false; ///< worker holds a key, expects a Challenge
    std::array<std::uint8_t, kFabricNonceBytes> nonce{}; ///< client nonce
};

struct WelcomeMsg
{
    /** Opaque campaign spec the worker needs before executing units
     * (the harness encodes configs + campaign knobs here). */
    std::vector<std::uint8_t> spec;
};

struct RejectMsg
{
    std::string reason;
};

/** Coordinator's half of the key handshake: its nonce plus proof that
 * it holds the fabric key (computed over both nonces). */
struct ChallengeMsg
{
    std::array<std::uint8_t, kFabricNonceBytes> nonce{};
    std::array<std::uint8_t, kFabricProofBytes> proof{};
};

/** Worker's proof of key possession, bound to its Hello name. */
struct AuthProofMsg
{
    std::array<std::uint8_t, kFabricProofBytes> proof{};
};

/** One leased unit: its global index plus the opaque request blob. */
struct LeaseUnit
{
    std::uint64_t unitIndex = 0;
    std::vector<std::uint8_t> request;
};

struct LeaseMsg
{
    std::uint64_t leaseId = 0;
    std::vector<LeaseUnit> units;
};

/** One Result per completed unit — not per lease — so the coordinator
 * sees partial progress and a mid-batch death forfeits only the units
 * still unreported. */
struct ResultMsg
{
    std::uint64_t leaseId = 0;
    std::uint64_t unitIndex = 0;
    std::vector<std::uint8_t> response;
};

std::vector<std::uint8_t> encodeHello(const HelloMsg &msg);
std::vector<std::uint8_t> encodeWelcome(const WelcomeMsg &msg);
std::vector<std::uint8_t> encodeReject(const RejectMsg &msg);
std::vector<std::uint8_t> encodeLease(const LeaseMsg &msg);
std::vector<std::uint8_t> encodeResult(const ResultMsg &msg);
std::vector<std::uint8_t> encodeHeartbeat();
std::vector<std::uint8_t> encodeDone();
std::vector<std::uint8_t> encodeChallenge(const ChallengeMsg &msg);
std::vector<std::uint8_t> encodeAuthProof(const AuthProofMsg &msg);

/** Decoders throw DistError on a wrong tag or malformed payload. */
HelloMsg decodeHello(const std::vector<std::uint8_t> &payload);
WelcomeMsg decodeWelcome(const std::vector<std::uint8_t> &payload);
RejectMsg decodeReject(const std::vector<std::uint8_t> &payload);
LeaseMsg decodeLease(const std::vector<std::uint8_t> &payload);
ResultMsg decodeResult(const std::vector<std::uint8_t> &payload);
ChallengeMsg decodeChallenge(const std::vector<std::uint8_t> &payload);
AuthProofMsg decodeAuthProof(const std::vector<std::uint8_t> &payload);

/**
 * Handshake proof / session-key derivation, shared by both ends.
 * Domain-separated HMACs over the two handshake nonces: the server
 * proof lets the worker verify the coordinator before revealing its
 * own proof; the client proof additionally binds the worker name so
 * one worker's proof cannot be replayed as another's.
 */
std::array<std::uint8_t, kFabricProofBytes> fabricServerProof(
    const std::vector<std::uint8_t> &key,
    const std::array<std::uint8_t, kFabricNonceBytes> &client_nonce,
    const std::array<std::uint8_t, kFabricNonceBytes> &server_nonce);
std::array<std::uint8_t, kFabricProofBytes> fabricClientProof(
    const std::vector<std::uint8_t> &key,
    const std::array<std::uint8_t, kFabricNonceBytes> &client_nonce,
    const std::array<std::uint8_t, kFabricNonceBytes> &server_nonce,
    const std::string &worker_name);
std::vector<std::uint8_t> fabricSessionKey(
    const std::vector<std::uint8_t> &key,
    const std::array<std::uint8_t, kFabricNonceBytes> &client_nonce,
    const std::array<std::uint8_t, kFabricNonceBytes> &server_nonce);

} // namespace mtc

#endif // MTC_DIST_PROTOCOL_H
