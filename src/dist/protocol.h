/**
 * @file
 * Wire protocol for the distributed campaign fabric.
 *
 * The coordinator and its workers exchange framed messages (one
 * message per frame, src/support/transport.h) whose payloads are
 * ByteWriter-encoded with a one-byte type tag up front:
 *
 *   worker -> coordinator:  Hello, Result, Heartbeat
 *   coordinator -> worker:  Welcome, Reject, Lease, Done
 *
 * The fabric is payload-agnostic, exactly like the sandbox pool: a
 * Lease carries opaque unit request blobs, a Result carries one
 * opaque response blob. What those bytes mean (campaign unit records)
 * is the harness layer's business (src/harness/dist_campaign.h), so
 * this library depends only on mtc_support.
 *
 * Versioning: Hello carries kDistProtocolVersion; the coordinator
 * rejects mismatches at the handshake with a Reject message rather
 * than letting a stale worker binary desync the stream mid-campaign.
 */

#ifndef MTC_DIST_PROTOCOL_H
#define MTC_DIST_PROTOCOL_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"

namespace mtc
{

/** Protocol-level failure in the distributed fabric (malformed
 * message, handshake rejection, fabric infrastructure fault). */
class DistError : public Error
{
  public:
    explicit DistError(const std::string &what_arg) : Error(what_arg)
    {}
};

/** Bump on any wire-format change; handshakes cross-check it. */
constexpr std::uint32_t kDistProtocolVersion = 1;

/** First payload byte of every fabric message. */
enum class FabricMsg : std::uint8_t
{
    Hello = 1,     ///< worker: version + name, opens the session
    Welcome = 2,   ///< coordinator: handshake accepted + campaign spec
    Reject = 3,    ///< coordinator: handshake refused (reason string)
    Lease = 4,     ///< coordinator: a batch of units to execute
    Result = 5,    ///< worker: one completed unit of a lease
    Heartbeat = 6, ///< worker: liveness signal
    Done = 7       ///< coordinator: campaign complete, disconnect
};

/** Classify a raw payload without decoding it.
 * @throws DistError on an empty payload or an unknown tag. */
FabricMsg peekType(const std::vector<std::uint8_t> &payload);

struct HelloMsg
{
    std::uint32_t version = kDistProtocolVersion;
    std::string name; ///< worker identity for logs and error budgets
};

struct WelcomeMsg
{
    /** Opaque campaign spec the worker needs before executing units
     * (the harness encodes configs + campaign knobs here). */
    std::vector<std::uint8_t> spec;
};

struct RejectMsg
{
    std::string reason;
};

/** One leased unit: its global index plus the opaque request blob. */
struct LeaseUnit
{
    std::uint64_t unitIndex = 0;
    std::vector<std::uint8_t> request;
};

struct LeaseMsg
{
    std::uint64_t leaseId = 0;
    std::vector<LeaseUnit> units;
};

/** One Result per completed unit — not per lease — so the coordinator
 * sees partial progress and a mid-batch death forfeits only the units
 * still unreported. */
struct ResultMsg
{
    std::uint64_t leaseId = 0;
    std::uint64_t unitIndex = 0;
    std::vector<std::uint8_t> response;
};

std::vector<std::uint8_t> encodeHello(const HelloMsg &msg);
std::vector<std::uint8_t> encodeWelcome(const WelcomeMsg &msg);
std::vector<std::uint8_t> encodeReject(const RejectMsg &msg);
std::vector<std::uint8_t> encodeLease(const LeaseMsg &msg);
std::vector<std::uint8_t> encodeResult(const ResultMsg &msg);
std::vector<std::uint8_t> encodeHeartbeat();
std::vector<std::uint8_t> encodeDone();

/** Decoders throw DistError on a wrong tag or malformed payload. */
HelloMsg decodeHello(const std::vector<std::uint8_t> &payload);
WelcomeMsg decodeWelcome(const std::vector<std::uint8_t> &payload);
RejectMsg decodeReject(const std::vector<std::uint8_t> &payload);
LeaseMsg decodeLease(const std::vector<std::uint8_t> &payload);
ResultMsg decodeResult(const std::vector<std::uint8_t> &payload);

} // namespace mtc

#endif // MTC_DIST_PROTOCOL_H
