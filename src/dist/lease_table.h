/**
 * @file
 * Lease accounting for the distributed campaign fabric.
 *
 * The coordinator shards a campaign's flat unit list 0..n-1 into
 * *leases*: short-lived grants of a unit batch to one worker. The
 * table is the single source of truth for the fabric's two robustness
 * invariants:
 *
 *   no unit lost      — a unit leaves `pending` only into an open
 *                       lease or the done set; revoking a lease
 *                       (worker death, lease timeout) returns its
 *                       unfinished units for reassignment;
 *   no double count   — a global per-unit done flag makes the first
 *                       result win; a stale duplicate (a revoked
 *                       lease's worker limping in late, a unit
 *                       re-executed after reassignment) is detected
 *                       and dropped by the caller.
 *
 * Pure bookkeeping: no I/O, no time source (callers pass deadlines as
 * steady_clock points), trivially unit-testable.
 */

#ifndef MTC_DIST_LEASE_TABLE_H
#define MTC_DIST_LEASE_TABLE_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

namespace mtc
{

/** Verdict on a reported unit result. */
enum class LeaseResult : std::uint8_t
{
    Accepted,      ///< first result for this unit; count it
    AcceptedAudit, ///< audit re-execution result; cross-check it
    Duplicate, ///< unit already done (stale lease / reassignment race)
    Unknown    ///< lease id was never granted or already closed
};

/** See file comment. Single-threaded (the coordinator's poll loop). */
class LeaseTable
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit LeaseTable(std::size_t unit_count);

    /** Units not done and not in any open lease, in dispatch order. */
    std::size_t pendingCount() const { return pending.size(); }

    /** Done AND no audit still open: an audited unit's result is held
     * by the coordinator until its cross-check resolves, so the
     * campaign must not end while one is outstanding. */
    bool allDone() const
    {
        return doneCount == unitCount && auditOpen == 0;
    }

    std::size_t unitsDone() const { return doneCount; }

    /** Pop up to @p max pending units for granting. */
    std::vector<std::size_t> takePending(std::size_t max);

    /** Return units to the front of the pending queue (dispatch-order
     * position is what keeps retried units ahead of fresh work, the
     * same policy as the sandbox pool). */
    void requeueFront(const std::vector<std::size_t> &units);

    /** Mark a unit done outside any lease (journal replay, tripped
     * breaker, a loss the client gave up on). */
    void markDone(std::size_t unit);

    bool isDone(std::size_t unit) const { return done[unit]; }

    /**
     * Open a lease over @p units for @p owner (an opaque connection
     * id). @p deadline is the expiry instant; pass Clock::time_point
     * ::max() when lease timeouts are off. An audit lease re-executes
     * already-done units for cross-checking; its results come back as
     * AcceptedAudit and never touch the done set.
     * @return the new lease id (monotonic, never reused).
     */
    std::uint64_t openLease(std::uint64_t owner,
                            const std::vector<std::size_t> &units,
                            Clock::time_point deadline,
                            bool is_audit = false);

    /**
     * Record a result for @p unit under @p lease. Accepted marks the
     * unit done and removes it from the lease; a lease whose units
     * are all done is closed automatically. AcceptedAudit reports an
     * audit re-execution; the unit stays in audit-open state until
     * resolveAudit() or reopenUnit().
     */
    LeaseResult completeUnit(std::uint64_t lease, std::size_t unit);

    /**
     * Flag a just-completed @p unit for audit re-execution: it joins
     * the audit queue and allDone() blocks until the audit resolves.
     * No-op if the unit is not done or already under audit.
     */
    void requireAudit(std::size_t unit);

    /** Audit verdict is in (pass, arbitrated, or skipped): the unit's
     * audit-open state clears and allDone() can see past it. */
    void resolveAudit(std::size_t unit);

    /**
     * Invalidate a unit's result (its producer was convicted): done
     * flag cleared, any audit state cancelled, the unit returns to
     * the front of the pending queue for honest re-execution.
     */
    void reopenUnit(std::size_t unit);

    /**
     * Pop up to @p max audit-queued units for which @p eligible
     * returns true (the coordinator filters out the primary worker:
     * an audit by its own author proves nothing).
     */
    std::vector<std::size_t>
    takeAuditPending(std::size_t max,
                     const std::function<bool(std::size_t)> &eligible);

    /** Audit-queued units awaiting a grant. */
    std::size_t auditQueuedCount() const { return auditQueue.size(); }

    /** Units in any audit state (queued or audit-leased). */
    std::size_t auditOpenCount() const { return auditOpen; }

    /**
     * Revoke @p lease: its not-yet-done units go back to the front of
     * the pending queue. @return those units (for the caller's loss
     * accounting), empty if the lease is unknown.
     */
    std::vector<std::size_t> revokeLease(std::uint64_t lease);

    /** Open lease ids owned by @p owner (a dying connection). */
    std::vector<std::uint64_t> leasesOf(std::uint64_t owner) const;

    /** Whether @p lease is an open audit lease. */
    bool leaseIsAudit(std::uint64_t lease) const;

    /** Open lease ids whose deadline passed at @p now. */
    std::vector<std::uint64_t> expired(Clock::time_point now) const;

    /** Open leases held by @p owner (backpressure accounting). */
    std::size_t openLeaseCount(std::uint64_t owner) const;

  private:
    struct Lease
    {
        std::uint64_t owner = 0;
        std::vector<std::size_t> units;
        Clock::time_point deadline{};
        bool isAudit = false;
    };

    /** Audit lifecycle of one unit. */
    enum class AuditState : std::uint8_t
    {
        None = 0,   ///< not under audit
        Queued = 1, ///< awaiting an audit lease
        Leased = 2  ///< granted to an auditor
    };

    std::size_t unitCount;
    std::size_t doneCount = 0;
    std::vector<bool> done;
    std::deque<std::size_t> pending;
    std::map<std::uint64_t, Lease> leases;
    std::uint64_t nextLeaseId = 1;
    std::vector<AuditState> auditState;
    std::deque<std::size_t> auditQueue;
    std::size_t auditOpen = 0;
};

} // namespace mtc

#endif // MTC_DIST_LEASE_TABLE_H
