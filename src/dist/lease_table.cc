#include "dist/lease_table.h"

#include <algorithm>

namespace mtc
{

LeaseTable::LeaseTable(std::size_t unit_count)
    : unitCount(unit_count), done(unit_count, false),
      auditState(unit_count, AuditState::None)
{
    for (std::size_t u = 0; u < unit_count; ++u)
        pending.push_back(u);
}

std::vector<std::size_t>
LeaseTable::takePending(std::size_t max)
{
    std::vector<std::size_t> units;
    while (!pending.empty() && units.size() < max) {
        units.push_back(pending.front());
        pending.pop_front();
    }
    return units;
}

void
LeaseTable::requeueFront(const std::vector<std::size_t> &units)
{
    // Reverse order so units.front() ends up at pending.front().
    for (auto it = units.rbegin(); it != units.rend(); ++it)
        pending.push_front(*it);
}

void
LeaseTable::markDone(std::size_t unit)
{
    if (done[unit])
        return;
    done[unit] = true;
    ++doneCount;
    // A unit given up on after a revocation re-queued it must not be
    // granted again.
    const auto it = std::find(pending.begin(), pending.end(), unit);
    if (it != pending.end())
        pending.erase(it);
}

std::uint64_t
LeaseTable::openLease(std::uint64_t owner,
                      const std::vector<std::size_t> &units,
                      Clock::time_point deadline, bool is_audit)
{
    const std::uint64_t id = nextLeaseId++;
    Lease lease;
    lease.owner = owner;
    lease.units = units;
    lease.deadline = deadline;
    lease.isAudit = is_audit;
    if (is_audit) {
        for (const std::size_t unit : units)
            auditState[unit] = AuditState::Leased;
    }
    leases.emplace(id, std::move(lease));
    return id;
}

LeaseResult
LeaseTable::completeUnit(std::uint64_t lease, std::size_t unit)
{
    if (unit >= unitCount)
        return LeaseResult::Unknown;
    const auto it = leases.find(lease);
    if (it == leases.end()) {
        // The lease was revoked (worker presumed dead, or timed out)
        // and this is its owner limping in late. If the unit has been
        // re-executed already the flag catches it; if not, the result
        // is still stale — the reassignment owns the unit now.
        return done[unit] ? LeaseResult::Duplicate
                          : LeaseResult::Unknown;
    }
    std::vector<std::size_t> &units = it->second.units;
    const auto pos = std::find(units.begin(), units.end(), unit);
    if (pos == units.end())
        return done[unit] ? LeaseResult::Duplicate
                          : LeaseResult::Unknown;
    if (it->second.isAudit) {
        // An audit re-execution: the unit is already done (by its
        // primary); this result exists only to be cross-checked.
        units.erase(pos);
        if (units.empty())
            leases.erase(it);
        return auditState[unit] == AuditState::Leased
                   ? LeaseResult::AcceptedAudit
                   : LeaseResult::Duplicate; // audit was cancelled
    }
    if (done[unit]) {
        // Reassignment race: another lease finished this unit first.
        units.erase(pos);
        if (units.empty())
            leases.erase(it);
        return LeaseResult::Duplicate;
    }
    done[unit] = true;
    ++doneCount;
    units.erase(pos);
    if (units.empty())
        leases.erase(it);
    return LeaseResult::Accepted;
}

std::vector<std::size_t>
LeaseTable::revokeLease(std::uint64_t lease)
{
    const auto it = leases.find(lease);
    if (it == leases.end())
        return {};
    if (it->second.isAudit) {
        // Unfinished audit units go back to the audit queue, not the
        // pending queue: their primary results are still held and
        // still need a cross-check.
        std::vector<std::size_t> lost;
        for (const std::size_t unit : it->second.units) {
            if (auditState[unit] == AuditState::Leased) {
                auditState[unit] = AuditState::Queued;
                auditQueue.push_front(unit);
                lost.push_back(unit);
            }
        }
        leases.erase(it);
        return lost;
    }
    std::vector<std::size_t> lost;
    for (const std::size_t unit : it->second.units) {
        if (!done[unit])
            lost.push_back(unit);
    }
    leases.erase(it);
    requeueFront(lost);
    return lost;
}

void
LeaseTable::requireAudit(std::size_t unit)
{
    if (unit >= unitCount || !done[unit] ||
        auditState[unit] != AuditState::None)
        return;
    auditState[unit] = AuditState::Queued;
    auditQueue.push_back(unit);
    ++auditOpen;
}

void
LeaseTable::resolveAudit(std::size_t unit)
{
    if (unit >= unitCount || auditState[unit] == AuditState::None)
        return;
    if (auditState[unit] == AuditState::Queued) {
        const auto it =
            std::find(auditQueue.begin(), auditQueue.end(), unit);
        if (it != auditQueue.end())
            auditQueue.erase(it);
    }
    auditState[unit] = AuditState::None;
    --auditOpen;
}

void
LeaseTable::reopenUnit(std::size_t unit)
{
    if (unit >= unitCount)
        return;
    if (auditState[unit] != AuditState::None) {
        resolveAudit(unit); // clears queue membership and auditOpen
        // If an auditor still holds the unit in an open audit lease,
        // pull it out: its eventual result must read as stale.
        for (auto it = leases.begin(); it != leases.end();) {
            Lease &lease = it->second;
            if (lease.isAudit) {
                const auto pos = std::find(lease.units.begin(),
                                           lease.units.end(), unit);
                if (pos != lease.units.end())
                    lease.units.erase(pos);
                if (lease.units.empty()) {
                    it = leases.erase(it);
                    continue;
                }
            }
            ++it;
        }
    }
    if (done[unit]) {
        done[unit] = false;
        --doneCount;
    }
    pending.push_front(unit);
}

std::vector<std::size_t>
LeaseTable::takeAuditPending(
    std::size_t max, const std::function<bool(std::size_t)> &eligible)
{
    std::vector<std::size_t> units;
    for (auto it = auditQueue.begin();
         it != auditQueue.end() && units.size() < max;) {
        if (eligible(*it)) {
            units.push_back(*it);
            it = auditQueue.erase(it);
        } else {
            ++it;
        }
    }
    return units;
}

bool
LeaseTable::leaseIsAudit(std::uint64_t lease) const
{
    const auto it = leases.find(lease);
    return it != leases.end() && it->second.isAudit;
}

std::vector<std::uint64_t>
LeaseTable::leasesOf(std::uint64_t owner) const
{
    std::vector<std::uint64_t> ids;
    for (const auto &[id, lease] : leases) {
        if (lease.owner == owner)
            ids.push_back(id);
    }
    return ids;
}

std::vector<std::uint64_t>
LeaseTable::expired(Clock::time_point now) const
{
    std::vector<std::uint64_t> ids;
    for (const auto &[id, lease] : leases) {
        if (lease.deadline <= now)
            ids.push_back(id);
    }
    return ids;
}

std::size_t
LeaseTable::openLeaseCount(std::uint64_t owner) const
{
    std::size_t n = 0;
    for (const auto &[id, lease] : leases) {
        if (lease.owner == owner)
            ++n;
    }
    return n;
}

} // namespace mtc
