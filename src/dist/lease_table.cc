#include "dist/lease_table.h"

#include <algorithm>

namespace mtc
{

LeaseTable::LeaseTable(std::size_t unit_count)
    : unitCount(unit_count), done(unit_count, false)
{
    for (std::size_t u = 0; u < unit_count; ++u)
        pending.push_back(u);
}

std::vector<std::size_t>
LeaseTable::takePending(std::size_t max)
{
    std::vector<std::size_t> units;
    while (!pending.empty() && units.size() < max) {
        units.push_back(pending.front());
        pending.pop_front();
    }
    return units;
}

void
LeaseTable::requeueFront(const std::vector<std::size_t> &units)
{
    // Reverse order so units.front() ends up at pending.front().
    for (auto it = units.rbegin(); it != units.rend(); ++it)
        pending.push_front(*it);
}

void
LeaseTable::markDone(std::size_t unit)
{
    if (done[unit])
        return;
    done[unit] = true;
    ++doneCount;
    // A unit given up on after a revocation re-queued it must not be
    // granted again.
    const auto it = std::find(pending.begin(), pending.end(), unit);
    if (it != pending.end())
        pending.erase(it);
}

std::uint64_t
LeaseTable::openLease(std::uint64_t owner,
                      const std::vector<std::size_t> &units,
                      Clock::time_point deadline)
{
    const std::uint64_t id = nextLeaseId++;
    Lease lease;
    lease.owner = owner;
    lease.units = units;
    lease.deadline = deadline;
    leases.emplace(id, std::move(lease));
    return id;
}

LeaseResult
LeaseTable::completeUnit(std::uint64_t lease, std::size_t unit)
{
    if (unit >= unitCount)
        return LeaseResult::Unknown;
    const auto it = leases.find(lease);
    if (it == leases.end()) {
        // The lease was revoked (worker presumed dead, or timed out)
        // and this is its owner limping in late. If the unit has been
        // re-executed already the flag catches it; if not, the result
        // is still stale — the reassignment owns the unit now.
        return done[unit] ? LeaseResult::Duplicate
                          : LeaseResult::Unknown;
    }
    std::vector<std::size_t> &units = it->second.units;
    const auto pos = std::find(units.begin(), units.end(), unit);
    if (pos == units.end())
        return done[unit] ? LeaseResult::Duplicate
                          : LeaseResult::Unknown;
    if (done[unit]) {
        // Reassignment race: another lease finished this unit first.
        units.erase(pos);
        if (units.empty())
            leases.erase(it);
        return LeaseResult::Duplicate;
    }
    done[unit] = true;
    ++doneCount;
    units.erase(pos);
    if (units.empty())
        leases.erase(it);
    return LeaseResult::Accepted;
}

std::vector<std::size_t>
LeaseTable::revokeLease(std::uint64_t lease)
{
    const auto it = leases.find(lease);
    if (it == leases.end())
        return {};
    std::vector<std::size_t> lost;
    for (const std::size_t unit : it->second.units) {
        if (!done[unit])
            lost.push_back(unit);
    }
    leases.erase(it);
    requeueFront(lost);
    return lost;
}

std::vector<std::uint64_t>
LeaseTable::leasesOf(std::uint64_t owner) const
{
    std::vector<std::uint64_t> ids;
    for (const auto &[id, lease] : leases) {
        if (lease.owner == owner)
            ids.push_back(id);
    }
    return ids;
}

std::vector<std::uint64_t>
LeaseTable::expired(Clock::time_point now) const
{
    std::vector<std::uint64_t> ids;
    for (const auto &[id, lease] : leases) {
        if (lease.deadline <= now)
            ids.push_back(id);
    }
    return ids;
}

std::size_t
LeaseTable::openLeaseCount(std::uint64_t owner) const
{
    std::size_t n = 0;
    for (const auto &[id, lease] : leases) {
        if (lease.owner == owner)
            ++n;
    }
    return n;
}

} // namespace mtc
