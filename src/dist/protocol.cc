#include "dist/protocol.h"

#include <algorithm>

#include "support/hmac.h"
#include "support/journal.h"

namespace mtc
{

namespace
{

void
putBlob(ByteWriter &w, const std::vector<std::uint8_t> &blob)
{
    w.u32(static_cast<std::uint32_t>(blob.size()));
    for (const std::uint8_t b : blob)
        w.u8(b);
}

std::vector<std::uint8_t>
getBlob(ByteReader &r)
{
    const std::uint32_t n = r.u32();
    if (n > r.remaining())
        throw JournalError("blob length exceeds its payload");
    std::vector<std::uint8_t> blob;
    blob.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
        blob.push_back(r.u8());
    return blob;
}

/** Check the tag and position the reader past it. */
ByteReader
open(const std::vector<std::uint8_t> &payload, FabricMsg want,
     const char *what)
{
    if (peekType(payload) != want)
        throw DistError(std::string("fabric: expected a ") + what +
                        " message, got tag " +
                        std::to_string(payload.front()));
    ByteReader r(payload);
    r.u8(); // consume the tag
    return r;
}

} // anonymous namespace

FabricMsg
peekType(const std::vector<std::uint8_t> &payload)
{
    if (payload.empty())
        throw DistError("fabric: empty message payload");
    const std::uint8_t tag = payload.front();
    if (tag < static_cast<std::uint8_t>(FabricMsg::Hello) ||
        tag > static_cast<std::uint8_t>(FabricMsg::AuthProof))
        throw DistError("fabric: unknown message tag " +
                        std::to_string(tag));
    return static_cast<FabricMsg>(tag);
}

std::vector<std::uint8_t>
encodeHello(const HelloMsg &msg)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(FabricMsg::Hello));
    w.u32(msg.version);
    w.str(msg.name);
    w.u8(msg.wantAuth ? 1 : 0);
    for (const std::uint8_t b : msg.nonce)
        w.u8(b);
    return w.bytes();
}

HelloMsg
decodeHello(const std::vector<std::uint8_t> &payload)
{
    try {
        ByteReader r = open(payload, FabricMsg::Hello, "Hello");
        HelloMsg msg;
        msg.version = r.u32();
        msg.name = r.str();
        // The auth fields exist from v2 on. A v1 Hello still decodes
        // cleanly so a version-skewed worker gets a descriptive
        // Reject instead of a malformed-payload connection drop.
        if (msg.version >= 2) {
            msg.wantAuth = r.u8() != 0;
            for (std::uint8_t &b : msg.nonce)
                b = r.u8();
        }
        return msg;
    } catch (const JournalError &err) {
        throw DistError(std::string("fabric: malformed Hello: ") +
                        err.what());
    }
}

std::vector<std::uint8_t>
encodeWelcome(const WelcomeMsg &msg)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(FabricMsg::Welcome));
    putBlob(w, msg.spec);
    return w.bytes();
}

WelcomeMsg
decodeWelcome(const std::vector<std::uint8_t> &payload)
{
    try {
        ByteReader r = open(payload, FabricMsg::Welcome, "Welcome");
        WelcomeMsg msg;
        msg.spec = getBlob(r);
        return msg;
    } catch (const JournalError &err) {
        throw DistError(std::string("fabric: malformed Welcome: ") +
                        err.what());
    }
}

std::vector<std::uint8_t>
encodeReject(const RejectMsg &msg)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(FabricMsg::Reject));
    w.str(msg.reason);
    return w.bytes();
}

RejectMsg
decodeReject(const std::vector<std::uint8_t> &payload)
{
    try {
        ByteReader r = open(payload, FabricMsg::Reject, "Reject");
        RejectMsg msg;
        msg.reason = r.str();
        return msg;
    } catch (const JournalError &err) {
        throw DistError(std::string("fabric: malformed Reject: ") +
                        err.what());
    }
}

std::vector<std::uint8_t>
encodeLease(const LeaseMsg &msg)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(FabricMsg::Lease));
    w.u64(msg.leaseId);
    w.u32(static_cast<std::uint32_t>(msg.units.size()));
    for (const LeaseUnit &unit : msg.units) {
        w.u64(unit.unitIndex);
        putBlob(w, unit.request);
    }
    return w.bytes();
}

LeaseMsg
decodeLease(const std::vector<std::uint8_t> &payload)
{
    try {
        ByteReader r = open(payload, FabricMsg::Lease, "Lease");
        LeaseMsg msg;
        msg.leaseId = r.u64();
        const std::uint32_t count = r.u32();
        // Bound the reserve by what the payload could possibly hold
        // (a unit is at least 12 bytes encoded): a forged count must
        // fail as truncation inside the loop, not as an allocation.
        msg.units.reserve(std::min<std::size_t>(
            count, r.remaining() / 12));
        for (std::uint32_t i = 0; i < count; ++i) {
            LeaseUnit unit;
            unit.unitIndex = r.u64();
            unit.request = getBlob(r);
            msg.units.push_back(std::move(unit));
        }
        return msg;
    } catch (const JournalError &err) {
        throw DistError(std::string("fabric: malformed Lease: ") +
                        err.what());
    }
}

std::vector<std::uint8_t>
encodeResult(const ResultMsg &msg)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(FabricMsg::Result));
    w.u64(msg.leaseId);
    w.u64(msg.unitIndex);
    putBlob(w, msg.response);
    return w.bytes();
}

ResultMsg
decodeResult(const std::vector<std::uint8_t> &payload)
{
    try {
        ByteReader r = open(payload, FabricMsg::Result, "Result");
        ResultMsg msg;
        msg.leaseId = r.u64();
        msg.unitIndex = r.u64();
        msg.response = getBlob(r);
        return msg;
    } catch (const JournalError &err) {
        throw DistError(std::string("fabric: malformed Result: ") +
                        err.what());
    }
}

std::vector<std::uint8_t>
encodeHeartbeat()
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(FabricMsg::Heartbeat));
    return w.bytes();
}

std::vector<std::uint8_t>
encodeDone()
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(FabricMsg::Done));
    return w.bytes();
}

std::vector<std::uint8_t>
encodeChallenge(const ChallengeMsg &msg)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(FabricMsg::Challenge));
    for (const std::uint8_t b : msg.nonce)
        w.u8(b);
    for (const std::uint8_t b : msg.proof)
        w.u8(b);
    return w.bytes();
}

ChallengeMsg
decodeChallenge(const std::vector<std::uint8_t> &payload)
{
    try {
        ByteReader r = open(payload, FabricMsg::Challenge, "Challenge");
        ChallengeMsg msg;
        for (std::uint8_t &b : msg.nonce)
            b = r.u8();
        for (std::uint8_t &b : msg.proof)
            b = r.u8();
        return msg;
    } catch (const JournalError &err) {
        throw DistError(std::string("fabric: malformed Challenge: ") +
                        err.what());
    }
}

std::vector<std::uint8_t>
encodeAuthProof(const AuthProofMsg &msg)
{
    ByteWriter w;
    w.u8(static_cast<std::uint8_t>(FabricMsg::AuthProof));
    for (const std::uint8_t b : msg.proof)
        w.u8(b);
    return w.bytes();
}

AuthProofMsg
decodeAuthProof(const std::vector<std::uint8_t> &payload)
{
    try {
        ByteReader r = open(payload, FabricMsg::AuthProof, "AuthProof");
        AuthProofMsg msg;
        for (std::uint8_t &b : msg.proof)
            b = r.u8();
        return msg;
    } catch (const JournalError &err) {
        throw DistError(std::string("fabric: malformed AuthProof: ") +
                        err.what());
    }
}

namespace
{

std::array<std::uint8_t, kFabricProofBytes>
fabricHmac(const std::vector<std::uint8_t> &key, const char *domain,
           const std::array<std::uint8_t, kFabricNonceBytes> &c_nonce,
           const std::array<std::uint8_t, kFabricNonceBytes> &s_nonce,
           const std::string &extra)
{
    std::vector<std::uint8_t> msg;
    for (const char *p = domain; *p; ++p)
        msg.push_back(static_cast<std::uint8_t>(*p));
    msg.insert(msg.end(), c_nonce.begin(), c_nonce.end());
    msg.insert(msg.end(), s_nonce.begin(), s_nonce.end());
    msg.insert(msg.end(), extra.begin(), extra.end());
    return hmacSha256(key, msg.data(), msg.size());
}

} // anonymous namespace

std::array<std::uint8_t, kFabricProofBytes>
fabricServerProof(
    const std::vector<std::uint8_t> &key,
    const std::array<std::uint8_t, kFabricNonceBytes> &client_nonce,
    const std::array<std::uint8_t, kFabricNonceBytes> &server_nonce)
{
    return fabricHmac(key, "mtc-fabric-server", client_nonce,
                      server_nonce, "");
}

std::array<std::uint8_t, kFabricProofBytes>
fabricClientProof(
    const std::vector<std::uint8_t> &key,
    const std::array<std::uint8_t, kFabricNonceBytes> &client_nonce,
    const std::array<std::uint8_t, kFabricNonceBytes> &server_nonce,
    const std::string &worker_name)
{
    return fabricHmac(key, "mtc-fabric-client", client_nonce,
                      server_nonce, worker_name);
}

std::vector<std::uint8_t>
fabricSessionKey(
    const std::vector<std::uint8_t> &key,
    const std::array<std::uint8_t, kFabricNonceBytes> &client_nonce,
    const std::array<std::uint8_t, kFabricNonceBytes> &server_nonce)
{
    const auto digest = fabricHmac(key, "mtc-fabric-session",
                                   client_nonce, server_nonce, "");
    return std::vector<std::uint8_t>(digest.begin(), digest.end());
}

} // namespace mtc
