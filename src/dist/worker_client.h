/**
 * @file
 * Worker side of the distributed campaign fabric.
 *
 * A worker connects to the coordinator, handshakes (protocol version,
 * worker name), receives the opaque campaign spec, then executes
 * leased units and streams one Result per unit. Liveness is active: a
 * heartbeat thread pings while units run, so a coordinator never
 * confuses "slow unit" with "dead worker" inside the heartbeat
 * window.
 *
 * Connection loss is survivable: the client reconnects with capped
 * exponential backoff and re-handshakes; the coordinator's lease
 * table guarantees whatever the dead session left unreported is
 * reassigned, and anything this client re-reports after a revocation
 * is dropped as a stale duplicate. Exhausting reconnects after at
 * least one good session returns cleanly — the likeliest cause is
 * the campaign finishing and the coordinator going away.
 *
 * Payload-agnostic like the rest of the fabric: the unit callback
 * maps request bytes to response bytes, and the spec callback hands
 * the campaign spec to whoever can decode it (the harness layer).
 */

#ifndef MTC_DIST_WORKER_CLIENT_H
#define MTC_DIST_WORKER_CLIENT_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dist/protocol.h"
#include "support/fault_transport.h"
#include "support/framing.h"

namespace mtc
{

/** Worker-side knobs. */
struct WorkerClientConfig
{
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;

    /** Identity reported in Hello; the coordinator's per-worker loss
     * budget is keyed on it, so keep it stable across reconnects. */
    std::string name = "worker";

    /** Heartbeat period; 0 disables (tests only — a silent worker
     * trips the coordinator's liveness timeout). */
    std::uint64_t heartbeatMs = 2000;

    /** Consecutive connection failures (or lost sessions) tolerated
     * before giving up. */
    unsigned maxReconnects = 5;

    /** Reconnect backoff: base delay, doubled per attempt, capped. */
    std::uint64_t backoffBaseMs = 100;
    std::uint64_t backoffCapMs = 5000;

    /** Per-frame payload ceiling on the coordinator connection. */
    std::uint32_t maxFrameBytes = kMaxFramePayloadBytes;

    /** Version to claim in Hello. Exposed for the handshake-rejection
     * tests; leave at the default everywhere else. */
    std::uint32_t protocolVersion = kDistProtocolVersion;

    /** Pre-shared fabric key (loadFabricKey). Empty = keyless. When
     * set, the worker demands the challenge/response handshake and
     * treats a keyless or wrong-key coordinator as fatal, and all
     * post-handshake frames carry MAC + sequence numbers. */
    std::vector<std::uint8_t> key;

    /** Seeded network faults injected on this worker's connection
     * (chaos drills); inert when no rate is set. */
    NetFaultConfig netFault;

    /** Failure drill: sleep this long before each unit (a "slow
     * worker" for the backpressure tests); 0 = off. */
    std::uint64_t unitDelayMs = 0;

    /** Failure drill: _exit() abruptly after sending this many
     * results, mid-lease — the "worker dies mid-batch" scenario;
     * 0 = off. */
    std::uint64_t exitAfterUnits = 0;
};

/** What a completed worker run did. */
struct WorkerRunStats
{
    std::uint64_t unitsExecuted = 0;
    unsigned reconnects = 0; ///< successful re-handshakes after the first
};

/** Receives the campaign spec after each successful handshake. */
using WorkerSpecFn =
    std::function<void(const std::vector<std::uint8_t> &spec)>;

/** Executes one unit: request bytes in, response bytes out. */
using WorkerUnitFn = std::function<std::vector<std::uint8_t>(
    std::uint64_t unit_index, const std::vector<std::uint8_t> &request)>;

/**
 * Serve the coordinator until it says Done (normal return), the
 * handshake is rejected (@throws DistError — fatal, do not retry a
 * version mismatch), or reconnects are exhausted (DistError if no
 * session ever succeeded, clean return otherwise; see file comment).
 */
WorkerRunStats runWorkerClient(const WorkerClientConfig &cfg,
                               const WorkerSpecFn &spec_fn,
                               const WorkerUnitFn &unit_fn);

} // namespace mtc

#endif // MTC_DIST_WORKER_CLIENT_H
