#include "dist/coordinator.h"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include <poll.h>

#include "dist/lease_table.h"
#include "support/log.h"
#include "support/transport.h"

namespace mtc
{

namespace
{

/** Dead workers raise EPIPE on our next send; we want the errno path
 * (a classified loss), not process death. Restores on scope exit so
 * run() can throw without leaving the disposition changed. */
class SigpipeGuard
{
  public:
    SigpipeGuard() { old = ::signal(SIGPIPE, SIG_IGN); }
    ~SigpipeGuard() { ::signal(SIGPIPE, old); }

  private:
    void (*old)(int) = nullptr;
};

} // anonymous namespace

Coordinator::Coordinator(FabricConfig cfg_arg,
                         std::vector<std::uint8_t> spec_arg)
    : cfg(cfg_arg), spec(std::move(spec_arg)),
      listener(cfg_arg.port, cfg_arg.host)
{
    if (cfg.batchSize == 0)
        cfg.batchSize = 1;
    if (cfg.maxInFlightPerWorker == 0)
        cfg.maxInFlightPerWorker = 1;
}

Coordinator::~Coordinator() = default;

void
Coordinator::run(std::size_t unit_count, const RequestFn &request,
                 const ResultFn &result, const LossFn &loss)
{
    using Clock = LeaseTable::Clock;

    struct Conn
    {
        Transport link;
        std::string name; ///< from Hello; empty until handshaken
        bool ready = false;
        Clock::time_point lastSeen{};
    };

    const SigpipeGuard sigpipe;

    LeaseTable table(unit_count);
    std::map<std::uint64_t, Conn> conns;
    std::uint64_t nextConnId = 1;
    std::vector<unsigned> lossCounts(unit_count, 0);
    std::map<std::string, unsigned> nameLosses;
    std::set<std::string> banned;

    // One loss event per unit the dying lease still owed. The client
    // decides retry vs give-up; revokeLease already re-queued, so a
    // give-up only needs the done mark.
    const auto charge_lost = [&](const std::vector<std::size_t> &units,
                                 const std::string &why) {
        for (const std::size_t unit : units) {
            ++lossCounts[unit];
            if (loss(unit, lossCounts[unit], why)) {
                ++fabricStats.unitsReassigned;
            } else {
                table.markDone(unit);
            }
        }
    };

    const auto drop_conn = [&](std::uint64_t id,
                               const std::string &why) {
        const auto it = conns.find(id);
        if (it == conns.end())
            return;
        Conn &c = it->second;
        const bool was_ready = c.ready;
        const std::string name =
            c.name.empty() ? "conn#" + std::to_string(id) : c.name;
        std::vector<std::size_t> lost_units;
        for (const std::uint64_t lease : table.leasesOf(id)) {
            const std::vector<std::size_t> units =
                table.revokeLease(lease);
            lost_units.insert(lost_units.end(), units.begin(),
                              units.end());
            ++fabricStats.leasesRevoked;
        }
        c.link.close();
        conns.erase(it);
        if (was_ready) {
            ++fabricStats.workersLost;
            warn("fabric: lost worker '" + name + "' (" + why + "); " +
                 std::to_string(lost_units.size()) +
                 " unit(s) to reassign");
            if (cfg.workerLossBudget) {
                const unsigned losses = ++nameLosses[name];
                if (losses >= cfg.workerLossBudget &&
                    banned.insert(name).second) {
                    warn("fabric: worker '" + name +
                         "' exhausted its loss budget (" +
                         std::to_string(losses) +
                         "); refusing its reconnects");
                }
            }
        }
        charge_lost(lost_units, why);
    };

    // Handshake refusal: the connection never became a worker, so no
    // leases to revoke and no loss budget to charge.
    const auto refuse = [&](std::uint64_t id,
                            const std::string &reason) {
        const auto it = conns.find(id);
        if (it == conns.end())
            return;
        warn("fabric: rejecting worker: " + reason);
        RejectMsg rej;
        rej.reason = reason;
        try {
            it->second.link.send(encodeReject(rej));
        } catch (const FramingError &) {
            // It hung up before hearing the verdict; same outcome.
        }
        it->second.link.close();
        conns.erase(it);
        ++fabricStats.workersRejected;
    };

    const auto handle_hello =
        [&](std::uint64_t id, const std::vector<std::uint8_t> &payload) {
            const HelloMsg hello = decodeHello(payload);
            if (hello.version != cfg.protocolVersion) {
                refuse(id,
                       "protocol version mismatch: coordinator speaks " +
                           std::to_string(cfg.protocolVersion) +
                           ", worker '" + hello.name + "' speaks " +
                           std::to_string(hello.version));
                return;
            }
            if (banned.count(hello.name)) {
                refuse(id, "worker '" + hello.name +
                               "' exhausted its loss budget");
                return;
            }
            Conn &c = conns.at(id);
            c.name = hello.name;
            c.ready = true;
            ++fabricStats.workersConnected;
            WelcomeMsg welcome;
            welcome.spec = spec;
            try {
                c.link.send(encodeWelcome(welcome));
            } catch (const FramingError &err) {
                drop_conn(id, std::string("welcome send failed: ") +
                                  err.what());
            }
        };

    // Fill every handshaken worker to its in-flight bound, units in
    // dispatch order. With no worker available, still resolve the
    // leading units that need no execution (journal replay, tripped
    // breaker) so a fully-replayed campaign finishes without one.
    const auto grant_leases = [&]() {
        std::vector<std::uint64_t> ready_ids;
        for (const auto &[id, c] : conns) {
            if (c.ready)
                ready_ids.push_back(id);
        }
        if (ready_ids.empty()) {
            while (table.pendingCount() > 0) {
                const std::vector<std::size_t> front =
                    table.takePending(1);
                const std::optional<std::vector<std::uint8_t>> req =
                    request(front[0]);
                if (!req) {
                    table.markDone(front[0]);
                    continue;
                }
                table.requeueFront(front);
                break;
            }
            return;
        }
        for (const std::uint64_t id : ready_ids) {
            if (conns.find(id) == conns.end())
                continue; // dropped by an earlier send failure
            while (table.openLeaseCount(id) <
                       cfg.maxInFlightPerWorker &&
                   table.pendingCount() > 0) {
                LeaseMsg msg;
                std::vector<std::size_t> granted;
                while (granted.size() < cfg.batchSize &&
                       table.pendingCount() > 0) {
                    const std::size_t unit = table.takePending(1)[0];
                    const std::optional<std::vector<std::uint8_t>>
                        req = request(unit);
                    if (!req) {
                        table.markDone(unit);
                        continue;
                    }
                    LeaseUnit lu;
                    lu.unitIndex = unit;
                    lu.request = *req;
                    msg.units.push_back(std::move(lu));
                    granted.push_back(unit);
                }
                if (granted.empty())
                    break;
                const Clock::time_point deadline = cfg.leaseTimeoutMs
                    ? Clock::now() +
                        std::chrono::milliseconds(cfg.leaseTimeoutMs)
                    : Clock::time_point::max();
                msg.leaseId = table.openLease(id, granted, deadline);
                ++fabricStats.leasesGranted;
                try {
                    conns.at(id).link.send(encodeLease(msg));
                } catch (const FramingError &err) {
                    drop_conn(id, std::string("lease send failed: ") +
                                      err.what());
                    break;
                }
            }
        }
    };

    Clock::time_point idle_since = Clock::now();
    while (!table.allDone()) {
        grant_leases();
        if (table.allDone())
            break;

        std::vector<pollfd> pfds;
        std::vector<std::uint64_t> poll_ids;
        pfds.push_back({listener.fd(), POLLIN, 0});
        poll_ids.push_back(0);
        for (const auto &[id, c] : conns) {
            pfds.push_back({c.link.receiveFd(), POLLIN, 0});
            poll_ids.push_back(id);
        }
        const int rc = ::poll(pfds.data(), pfds.size(), 50);
        if (rc < 0 && errno != EINTR)
            throw DistError(std::string("fabric poll failed: ") +
                            std::strerror(errno));

        if (rc > 0 && (pfds[0].revents & POLLIN)) {
            try {
                const int fd = listener.acceptClient();
                Conn c;
                c.link = Transport(fd, "fabric worker link");
                c.link.setMaxFramePayload(cfg.maxFrameBytes);
                c.lastSeen = Clock::now();
                conns.emplace(nextConnId++, std::move(c));
            } catch (const SocketError &err) {
                warn(std::string("fabric: accept failed: ") +
                     err.what());
            }
        }

        for (std::size_t i = 1; rc > 0 && i < pfds.size(); ++i) {
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            const std::uint64_t id = poll_ids[i];
            const auto it = conns.find(id);
            if (it == conns.end())
                continue; // dropped earlier this round
            Conn &c = it->second;
            std::vector<std::uint8_t> payload;
            bool got = false;
            try {
                got = c.link.receive(payload);
            } catch (const FramingError &err) {
                drop_conn(id, std::string("framing fault: ") +
                                  err.what());
                continue;
            }
            if (!got) {
                drop_conn(id, "connection closed");
                continue;
            }
            c.lastSeen = Clock::now();
            try {
                const FabricMsg type = peekType(payload);
                if (!c.ready) {
                    if (type != FabricMsg::Hello) {
                        drop_conn(id, "message before handshake");
                        continue;
                    }
                    handle_hello(id, payload);
                    continue;
                }
                switch (type) {
                  case FabricMsg::Result: {
                    const ResultMsg res = decodeResult(payload);
                    if (res.unitIndex >= unit_count) {
                        drop_conn(id, "result for out-of-range unit");
                        break;
                    }
                    switch (table.completeUnit(res.leaseId,
                                               res.unitIndex)) {
                      case LeaseResult::Accepted:
                        result(res.unitIndex, res.response);
                        break;
                      case LeaseResult::Duplicate:
                      case LeaseResult::Unknown:
                        // A revoked lease's owner limping in late;
                        // the reassignment owns the unit now.
                        ++fabricStats.duplicateResults;
                        break;
                    }
                    break;
                  }
                  case FabricMsg::Heartbeat:
                    ++fabricStats.heartbeats;
                    break;
                  default:
                    drop_conn(id, "unexpected message type");
                    break;
                }
            } catch (const DistError &err) {
                drop_conn(id, err.what());
            }
        }

        const Clock::time_point now = Clock::now();
        if (cfg.heartbeatTimeoutMs) {
            std::vector<std::uint64_t> silent;
            for (const auto &[id, c] : conns) {
                if (now - c.lastSeen >
                    std::chrono::milliseconds(cfg.heartbeatTimeoutMs))
                    silent.push_back(id);
            }
            for (const std::uint64_t id : silent)
                drop_conn(id, "heartbeat timeout");
        }
        if (cfg.leaseTimeoutMs) {
            for (const std::uint64_t lease : table.expired(now)) {
                const std::vector<std::size_t> units =
                    table.revokeLease(lease);
                ++fabricStats.leasesRevoked;
                warn("fabric: lease " + std::to_string(lease) +
                     " expired; reassigning " +
                     std::to_string(units.size()) + " unit(s)");
                charge_lost(units, "lease timeout");
            }
        }
        if (!conns.empty()) {
            idle_since = now;
        } else if (cfg.stallTimeoutMs &&
                   now - idle_since >
                       std::chrono::milliseconds(cfg.stallTimeoutMs)) {
            throw DistError(
                "fabric: " + std::to_string(table.pendingCount()) +
                " unit(s) pending but no worker has been connected "
                "for " +
                std::to_string(cfg.stallTimeoutMs) + "ms; giving up");
        }
    }

    for (auto &[id, c] : conns) {
        if (c.ready) {
            try {
                c.link.send(encodeDone());
            } catch (const FramingError &) {
                // It died after its last unit; nothing left to say.
            }
        }
        c.link.close();
    }
    conns.clear();

    // A campaign can resolve before late workers are ever accepted —
    // a fully journal-replayed resume finishes without executing a
    // single unit, and a small remainder can drain while a worker is
    // still connecting. Those connections sit in the accept backlog
    // waiting for a Welcome that will never come, while our caller
    // waits on the workers: a deadlock. Answer each queued connection
    // with Done, then close the listener so anything later is refused
    // outright instead of queued unanswered.
    for (int drained = 0; drained < 64; ++drained) {
        pollfd pfd{listener.fd(), POLLIN, 0};
        if (::poll(&pfd, 1, 0) <= 0 || !(pfd.revents & POLLIN))
            break;
        try {
            Transport late(listener.acceptClient(),
                           "fabric late worker link");
            try {
                late.send(encodeDone());
            } catch (const FramingError &) {
                // It hung up first; the close below says the same.
            }
            late.close();
        } catch (const SocketError &) {
            break;
        }
    }
    listener.close();
}

} // namespace mtc
