#include "dist/coordinator.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include <poll.h>

#include "dist/lease_table.h"
#include "support/hmac.h"
#include "support/log.h"
#include "support/rng.h"
#include "support/transport.h"

namespace mtc
{

namespace
{

/** Dead workers raise EPIPE on our next send; we want the errno path
 * (a classified loss), not process death. Restores on scope exit so
 * run() can throw without leaving the disposition changed. */
class SigpipeGuard
{
  public:
    SigpipeGuard() { old = ::signal(SIGPIPE, SIG_IGN); }
    ~SigpipeGuard() { ::signal(SIGPIPE, old); }

  private:
    void (*old)(int) = nullptr;
};

} // anonymous namespace

Coordinator::Coordinator(FabricConfig cfg_arg,
                         std::vector<std::uint8_t> spec_arg)
    : cfg(cfg_arg), spec(std::move(spec_arg)),
      listener(cfg_arg.port, cfg_arg.host)
{
    if (cfg.batchSize == 0)
        cfg.batchSize = 1;
    if (cfg.maxInFlightPerWorker == 0)
        cfg.maxInFlightPerWorker = 1;
}

Coordinator::~Coordinator() = default;

void
Coordinator::run(std::size_t unit_count, const RequestFn &request,
                 const ResultFn &result, const LossFn &loss)
{
    run(unit_count, request, result, loss, AuditHooks{});
}

void
Coordinator::run(std::size_t unit_count, const RequestFn &request,
                 const ResultFn &result, const LossFn &loss,
                 const AuditHooks &hooks)
{
    using Clock = LeaseTable::Clock;

    struct Conn
    {
        std::unique_ptr<Transport> link;
        std::string name; ///< worker identity once Ready
        std::string pendingName; ///< from Hello, until proof verifies
        enum class Phase : std::uint8_t
        {
            AwaitHello,
            AwaitProof,
            Ready
        } phase = Phase::AwaitHello;
        Clock::time_point lastSeen{};
        Clock::time_point acceptedAt{};
        std::array<std::uint8_t, kFabricNonceBytes> clientNonce{};
        std::array<std::uint8_t, kFabricNonceBytes> serverNonce{};
    };

    /** Held primary result of a unit awaiting its audit verdict. */
    struct AuditInfo
    {
        std::vector<std::uint8_t> payload;
        std::uint64_t digest = 0;
        std::string primaryName;
    };

    const SigpipeGuard sigpipe;

    LeaseTable table(unit_count);
    std::map<std::uint64_t, Conn> conns;
    std::uint64_t nextConnId = 1;
    std::vector<unsigned> lossCounts(unit_count, 0);
    std::map<std::string, unsigned> nameLosses;
    std::set<std::string> banned;

    const bool auditing = cfg.auditRate > 0.0 && bool(hooks.digest);
    std::map<std::size_t, AuditInfo> audits;
    std::vector<std::string> unitSource(unit_count);
    std::vector<bool> unitVerified(unit_count, false);
    std::set<std::string> quarantined;
    std::map<std::string, unsigned> mismatchCounts;

    /** Deterministic audit sample: same seed, same campaign → same
     * audited units, so chaos drills are reproducible. */
    const auto sampled = [&](std::size_t unit) {
        if (!auditing)
            return false;
        if (cfg.auditRate >= 1.0)
            return true;
        std::uint64_t s = cfg.auditSeed ^
                          (0x9e3779b97f4a7c15ull *
                           (static_cast<std::uint64_t>(unit) + 1));
        const double draw =
            static_cast<double>(splitMix64(s) >> 11) * 0x1.0p-53;
        return draw < cfg.auditRate;
    };

    // One loss event per unit the dying lease still owed. The client
    // decides retry vs give-up; revokeLease already re-queued, so a
    // give-up only needs the done mark.
    const auto charge_lost = [&](const std::vector<std::size_t> &units,
                                 const std::string &why) {
        for (const std::size_t unit : units) {
            ++lossCounts[unit];
            if (loss(unit, lossCounts[unit], why)) {
                ++fabricStats.unitsReassigned;
            } else {
                table.markDone(unit);
            }
        }
    };

    const auto drop_conn = [&](std::uint64_t id,
                               const std::string &why) {
        const auto it = conns.find(id);
        if (it == conns.end())
            return;
        Conn &c = it->second;
        const bool was_ready = c.phase == Conn::Phase::Ready;
        const std::string name =
            c.name.empty() ? "conn#" + std::to_string(id) : c.name;
        std::vector<std::size_t> lost_units;
        for (const std::uint64_t lease : table.leasesOf(id)) {
            // An unfinished audit lease re-queues inside the table
            // (its units' primary results are still held); only
            // primary units feed the unit-loss budget.
            const bool is_audit = table.leaseIsAudit(lease);
            const std::vector<std::size_t> units =
                table.revokeLease(lease);
            ++fabricStats.leasesRevoked;
            if (!is_audit)
                lost_units.insert(lost_units.end(), units.begin(),
                                  units.end());
        }
        c.link->close();
        conns.erase(it);
        if (was_ready) {
            ++fabricStats.workersLost;
            warn("fabric: lost worker '" + name + "' (" + why + "); " +
                 std::to_string(lost_units.size()) +
                 " unit(s) to reassign");
            if (cfg.workerLossBudget) {
                const unsigned losses = ++nameLosses[name];
                if (losses >= cfg.workerLossBudget &&
                    banned.insert(name).second) {
                    warn("fabric: worker '" + name +
                         "' exhausted its loss budget (" +
                         std::to_string(losses) +
                         "); refusing its reconnects");
                }
            }
        }
        charge_lost(lost_units, why);
    };

    // Handshake refusal: the connection never became a worker, so no
    // leases to revoke and no loss budget to charge.
    const auto refuse = [&](std::uint64_t id,
                            const std::string &reason) {
        const auto it = conns.find(id);
        if (it == conns.end())
            return;
        warn("fabric: rejecting worker: " + reason);
        RejectMsg rej;
        rej.reason = reason;
        try {
            it->second.link->send(encodeReject(rej));
        } catch (const FramingError &) {
            // It hung up before hearing the verdict; same outcome.
        }
        it->second.link->close();
        conns.erase(it);
        ++fabricStats.workersRejected;
    };

    /** Quarantine @p name: drop its connections, refuse reconnects,
     * void every unverified result it produced (those units return
     * to the pending queue for honest re-execution). */
    const std::function<void(const std::string &)> convict =
        [&](const std::string &name) {
            if (name.empty() || !quarantined.insert(name).second)
                return;
            fabricStats.byzantine.quarantined.push_back(name);
            warn("fabric: quarantining worker '" + name +
                 "' — Byzantine behavior detected; invalidating its "
                 "unverified results");
            std::vector<std::uint64_t> ids;
            for (const auto &[id, c] : conns) {
                if (c.name == name || c.pendingName == name)
                    ids.push_back(id);
            }
            for (const std::uint64_t id : ids)
                drop_conn(id, "quarantined");
            for (std::size_t u = 0; u < unit_count; ++u) {
                if (unitSource[u] == name && !unitVerified[u] &&
                    table.isDone(u)) {
                    table.reopenUnit(u);
                    unitSource[u].clear();
                    ++fabricStats.byzantine.resultsInvalidated;
                }
            }
            for (auto it = audits.begin(); it != audits.end();) {
                if (it->second.primaryName == name) {
                    table.reopenUnit(it->first);
                    ++fabricStats.byzantine.resultsInvalidated;
                    it = audits.erase(it);
                } else {
                    ++it;
                }
            }
        };

    /** Hand a unit result to the client. A payload the harness
     * rejects (undecodable, seed mismatch) is Byzantine by
     * definition: the unit re-executes and its producer is convicted
     * instead of the whole campaign dying. */
    const auto deliver = [&](std::size_t unit,
                             const std::vector<std::uint8_t> &payload,
                             const std::string &producer) {
        try {
            result(unit, payload);
            unitSource[unit] = producer;
        } catch (const DistError &err) {
            warn("fabric: result for unit " + std::to_string(unit) +
                 (producer.empty() ? std::string()
                                   : " from '" + producer + "'") +
                 " rejected: " + err.what());
            unitVerified[unit] = false;
            unitSource[unit].clear();
            table.reopenUnit(unit);
            convict(producer);
        }
    };

    /** Resolve a queued audit without a second worker: re-execute
     * locally when the client gave us an arbiter, otherwise trust the
     * primary (counted, so the report shows the coverage gap). */
    const auto local_resolve = [&](std::size_t unit) {
        const auto it = audits.find(unit);
        if (it == audits.end()) {
            table.resolveAudit(unit);
            return;
        }
        AuditInfo info = std::move(it->second);
        audits.erase(it);
        table.resolveAudit(unit);
        if (hooks.arbiter) {
            ++fabricStats.byzantine.localArbitrations;
            const std::vector<std::uint8_t> truth =
                hooks.arbiter(unit);
            if (hooks.digest(unit, truth) == info.digest) {
                ++fabricStats.byzantine.auditsPassed;
                unitVerified[unit] = true;
                deliver(unit, info.payload, info.primaryName);
            } else {
                ++fabricStats.byzantine.auditMismatches;
                warn("fabric: local arbitration convicts worker '" +
                     info.primaryName + "' on unit " +
                     std::to_string(unit));
                unitVerified[unit] = true;
                deliver(unit, truth, "");
                convict(info.primaryName);
            }
        } else {
            ++fabricStats.byzantine.auditsSkipped;
            deliver(unit, info.payload, info.primaryName);
        }
    };

    /** Digest mismatch between primary and auditor: someone is lying.
     * A local re-execution is the decisive vote; without one, both
     * parties take a strike and the unit re-executes (two strikes
     * convict — majority over time). */
    const auto arbitrate = [&](std::size_t unit, AuditInfo info,
                               const std::vector<std::uint8_t>
                                   &audit_payload,
                               std::uint64_t audit_digest,
                               const std::string &auditor) {
        ++fabricStats.byzantine.auditMismatches;
        warn("fabric: audit mismatch on unit " + std::to_string(unit) +
             ": primary '" + info.primaryName + "' vs auditor '" +
             auditor + "'");
        if (hooks.arbiter) {
            ++fabricStats.byzantine.localArbitrations;
            const std::vector<std::uint8_t> truth =
                hooks.arbiter(unit);
            const std::uint64_t truth_digest =
                hooks.digest(unit, truth);
            table.resolveAudit(unit);
            if (truth_digest == info.digest) {
                unitVerified[unit] = true;
                deliver(unit, info.payload, info.primaryName);
                convict(auditor);
            } else if (truth_digest == audit_digest) {
                unitVerified[unit] = true;
                deliver(unit, audit_payload, auditor);
                convict(info.primaryName);
            } else {
                // Neither matches the local ground truth: deliver the
                // local result and convict both reporters.
                unitVerified[unit] = true;
                deliver(unit, truth, "");
                convict(info.primaryName);
                convict(auditor);
            }
        } else {
            const unsigned p = ++mismatchCounts[info.primaryName];
            const unsigned a = ++mismatchCounts[auditor];
            table.reopenUnit(unit); // discard both, re-execute
            if (p >= 2)
                convict(info.primaryName);
            if (a >= 2)
                convict(auditor);
        }
    };

    const auto handle_hello =
        [&](std::uint64_t id, const std::vector<std::uint8_t> &payload) {
            const HelloMsg hello = decodeHello(payload);
            if (hello.version != cfg.protocolVersion) {
                refuse(id,
                       "protocol version mismatch: coordinator speaks " +
                           std::to_string(cfg.protocolVersion) +
                           ", worker '" + hello.name + "' speaks " +
                           std::to_string(hello.version));
                return;
            }
            if (banned.count(hello.name)) {
                refuse(id, "worker '" + hello.name +
                               "' exhausted its loss budget");
                return;
            }
            if (quarantined.count(hello.name)) {
                refuse(id, "worker '" + hello.name +
                               "' is quarantined for Byzantine "
                               "behavior");
                return;
            }
            Conn &c = conns.at(id);
            if (!cfg.key.empty()) {
                if (!hello.wantAuth) {
                    ++fabricStats.authFailures;
                    refuse(id, "this fabric requires key "
                               "authentication; worker '" +
                                   hello.name +
                                   "' connected without a key");
                    return;
                }
                c.pendingName = hello.name;
                c.clientNonce = hello.nonce;
                c.serverNonce = randomNonce();
                ChallengeMsg ch;
                ch.nonce = c.serverNonce;
                ch.proof = fabricServerProof(cfg.key, c.clientNonce,
                                             c.serverNonce);
                try {
                    c.link->send(encodeChallenge(ch));
                } catch (const FramingError &err) {
                    drop_conn(id,
                              std::string("challenge send failed: ") +
                                  err.what());
                    return;
                }
                c.phase = Conn::Phase::AwaitProof;
                return;
            }
            if (hello.wantAuth) {
                ++fabricStats.authFailures;
                refuse(id, "worker '" + hello.name +
                               "' requires key authentication but "
                               "this coordinator has no fabric key");
                return;
            }
            c.name = hello.name;
            c.phase = Conn::Phase::Ready;
            c.link->setMaxFramePayload(cfg.maxFrameBytes);
            ++fabricStats.workersConnected;
            WelcomeMsg welcome;
            welcome.spec = spec;
            try {
                c.link->send(encodeWelcome(welcome));
            } catch (const FramingError &err) {
                drop_conn(id, std::string("welcome send failed: ") +
                                  err.what());
            }
        };

    const auto handle_proof =
        [&](std::uint64_t id, const std::vector<std::uint8_t> &payload) {
            const AuthProofMsg proof = decodeAuthProof(payload);
            Conn &c = conns.at(id);
            const auto expect = fabricClientProof(
                cfg.key, c.clientNonce, c.serverNonce, c.pendingName);
            if (!constantTimeEqual(proof.proof.data(), expect.data(),
                                   kFabricProofBytes)) {
                ++fabricStats.authFailures;
                refuse(id, "fabric key proof mismatch for worker '" +
                               c.pendingName +
                               "' (wrong or stale key file?)");
                return;
            }
            c.link->enableFrameAuth(
                fabricSessionKey(cfg.key, c.clientNonce,
                                 c.serverNonce),
                /*is_client=*/false);
            c.link->setMaxFramePayload(cfg.maxFrameBytes);
            c.name = c.pendingName;
            c.phase = Conn::Phase::Ready;
            ++fabricStats.workersConnected;
            WelcomeMsg welcome;
            welcome.spec = spec;
            try {
                c.link->send(encodeWelcome(welcome));
            } catch (const FramingError &err) {
                drop_conn(id, std::string("welcome send failed: ") +
                                  err.what());
            }
        };

    // Fill every handshaken worker to its in-flight bound, units in
    // dispatch order. Audit leases go first (they gate completion and
    // there are few); then fresh work. With no worker available,
    // still resolve the leading units that need no execution (journal
    // replay, tripped breaker) so a fully-replayed campaign finishes
    // without one.
    const auto grant_leases = [&]() {
        std::vector<std::uint64_t> ready_ids;
        for (const auto &[id, c] : conns) {
            if (c.phase == Conn::Phase::Ready)
                ready_ids.push_back(id);
        }
        if (ready_ids.empty()) {
            while (table.pendingCount() > 0) {
                const std::vector<std::size_t> front =
                    table.takePending(1);
                const std::optional<std::vector<std::uint8_t>> req =
                    request(front[0]);
                if (!req) {
                    table.markDone(front[0]);
                    continue;
                }
                table.requeueFront(front);
                break;
            }
        }
        for (const std::uint64_t id : ready_ids) {
            const auto cit = conns.find(id);
            if (cit == conns.end())
                continue; // dropped by an earlier send failure
            const std::string cname = cit->second.name;
            // Audit grants: a unit's auditor must not be its primary.
            while (table.openLeaseCount(id) <
                       cfg.maxInFlightPerWorker &&
                   table.auditQueuedCount() > 0) {
                const std::vector<std::size_t> taken =
                    table.takeAuditPending(
                        cfg.batchSize, [&](std::size_t u) {
                            const auto ait = audits.find(u);
                            return ait != audits.end() &&
                                   ait->second.primaryName != cname;
                        });
                if (taken.empty())
                    break;
                LeaseMsg msg;
                std::vector<std::size_t> granted;
                for (const std::size_t unit : taken) {
                    const std::optional<std::vector<std::uint8_t>>
                        req = request(unit);
                    if (!req) {
                        // The client cannot re-issue the request
                        // (shouldn't happen for an executed unit);
                        // settle the audit locally.
                        local_resolve(unit);
                        continue;
                    }
                    LeaseUnit lu;
                    lu.unitIndex = unit;
                    lu.request = *req;
                    msg.units.push_back(std::move(lu));
                    granted.push_back(unit);
                }
                if (granted.empty())
                    continue;
                const Clock::time_point deadline = cfg.leaseTimeoutMs
                    ? Clock::now() +
                        std::chrono::milliseconds(cfg.leaseTimeoutMs)
                    : Clock::time_point::max();
                msg.leaseId = table.openLease(id, granted, deadline,
                                              /*is_audit=*/true);
                ++fabricStats.leasesGranted;
                try {
                    conns.at(id).link->send(encodeLease(msg));
                } catch (const FramingError &err) {
                    drop_conn(id, std::string("lease send failed: ") +
                                      err.what());
                    break;
                }
            }
            if (conns.find(id) == conns.end())
                continue;
            while (table.openLeaseCount(id) <
                       cfg.maxInFlightPerWorker &&
                   table.pendingCount() > 0) {
                LeaseMsg msg;
                std::vector<std::size_t> granted;
                while (granted.size() < cfg.batchSize &&
                       table.pendingCount() > 0) {
                    const std::size_t unit = table.takePending(1)[0];
                    const std::optional<std::vector<std::uint8_t>>
                        req = request(unit);
                    if (!req) {
                        table.markDone(unit);
                        continue;
                    }
                    LeaseUnit lu;
                    lu.unitIndex = unit;
                    lu.request = *req;
                    msg.units.push_back(std::move(lu));
                    granted.push_back(unit);
                }
                if (granted.empty())
                    break;
                const Clock::time_point deadline = cfg.leaseTimeoutMs
                    ? Clock::now() +
                        std::chrono::milliseconds(cfg.leaseTimeoutMs)
                    : Clock::time_point::max();
                msg.leaseId = table.openLease(id, granted, deadline);
                ++fabricStats.leasesGranted;
                try {
                    conns.at(id).link->send(encodeLease(msg));
                } catch (const FramingError &err) {
                    drop_conn(id, std::string("lease send failed: ") +
                                      err.what());
                    break;
                }
            }
        }
        // Audits no connected worker is eligible to take (every live
        // worker IS the primary — single-worker fleets, or the rest
        // of the fleet died): settle them now rather than stalling
        // the campaign on a grant that can never happen.
        if (table.auditQueuedCount() > 0) {
            std::set<std::string> names;
            for (const auto &[id, c] : conns) {
                if (c.phase == Conn::Phase::Ready)
                    names.insert(c.name);
            }
            const std::vector<std::size_t> stranded =
                table.takeAuditPending(
                    static_cast<std::size_t>(-1), [&](std::size_t u) {
                        const auto ait = audits.find(u);
                        if (ait == audits.end())
                            return true;
                        for (const std::string &n : names) {
                            if (n != ait->second.primaryName)
                                return false; // an auditor exists
                        }
                        return true;
                    });
            for (const std::size_t unit : stranded)
                local_resolve(unit);
        }
    };

    Clock::time_point idle_since = Clock::now();
    while (!table.allDone()) {
        grant_leases();
        if (table.allDone())
            break;

        std::vector<pollfd> pfds;
        std::vector<std::uint64_t> poll_ids;
        pfds.push_back({listener.fd(), POLLIN, 0});
        poll_ids.push_back(0);
        for (const auto &[id, c] : conns) {
            pfds.push_back({c.link->receiveFd(), POLLIN, 0});
            poll_ids.push_back(id);
        }
        const int rc = ::poll(pfds.data(), pfds.size(), 50);
        if (rc < 0 && errno != EINTR)
            throw DistError(std::string("fabric poll failed: ") +
                            std::strerror(errno));

        if (rc > 0 && (pfds[0].revents & POLLIN)) {
            try {
                const int fd = listener.acceptClient();
                Transport base(fd, "fabric worker link");
                Conn c;
                if (cfg.netFault.any()) {
                    NetFaultConfig nf = cfg.netFault;
                    std::uint64_t s =
                        nf.seed ^
                        (0x6a09e667f3bcc909ull * nextConnId);
                    nf.seed = splitMix64(s);
                    c.link = std::make_unique<FaultyTransport>(
                        std::move(base), nf);
                } else {
                    c.link =
                        std::make_unique<Transport>(std::move(base));
                }
                // Until this peer proves anything it gets the
                // conservative ceiling: a forged length word must not
                // drive a large allocation pre-handshake.
                c.link->setMaxFramePayload(
                    std::min(kPreAuthFramePayloadBytes,
                             cfg.maxFrameBytes));
                // This loop is the fabric's only thread: a started
                // frame must finish promptly or be declared dead, or
                // every timer below stops firing.
                c.link->setReceiveDeadlineMs(kFabricFrameDeadlineMs);
                c.lastSeen = Clock::now();
                c.acceptedAt = c.lastSeen;
                conns.emplace(nextConnId++, std::move(c));
            } catch (const SocketError &err) {
                warn(std::string("fabric: accept failed: ") +
                     err.what());
            }
        }

        for (std::size_t i = 1; rc > 0 && i < pfds.size(); ++i) {
            if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            const std::uint64_t id = poll_ids[i];
            const auto it = conns.find(id);
            if (it == conns.end())
                continue; // dropped earlier this round
            Conn &c = it->second;
            std::vector<std::uint8_t> payload;
            bool got = false;
            try {
                got = c.link->receive(payload);
            } catch (const FramingError &err) {
                drop_conn(id, std::string("framing fault: ") +
                                  err.what());
                continue;
            }
            if (!got) {
                drop_conn(id, "connection closed");
                continue;
            }
            c.lastSeen = Clock::now();
            try {
                const FabricMsg type = peekType(payload);
                if (c.phase == Conn::Phase::AwaitHello) {
                    if (type != FabricMsg::Hello) {
                        drop_conn(id, "message before handshake");
                        continue;
                    }
                    handle_hello(id, payload);
                    continue;
                }
                if (c.phase == Conn::Phase::AwaitProof) {
                    if (type != FabricMsg::AuthProof) {
                        ++fabricStats.authFailures;
                        drop_conn(id, "message before authentication");
                        continue;
                    }
                    handle_proof(id, payload);
                    continue;
                }
                switch (type) {
                  case FabricMsg::Result: {
                    const ResultMsg res = decodeResult(payload);
                    if (res.unitIndex >= unit_count) {
                        drop_conn(id, "result for out-of-range unit");
                        break;
                    }
                    // convict()/deliver() below can drop this very
                    // connection; the reference dies with it.
                    const std::string worker_name = c.name;
                    switch (table.completeUnit(res.leaseId,
                                               res.unitIndex)) {
                      case LeaseResult::Accepted:
                        if (sampled(res.unitIndex)) {
                            AuditInfo info;
                            info.payload = res.response;
                            info.digest = hooks.digest(res.unitIndex,
                                                       res.response);
                            info.primaryName = worker_name;
                            audits.emplace(res.unitIndex,
                                           std::move(info));
                            table.requireAudit(res.unitIndex);
                            ++fabricStats.byzantine.auditsScheduled;
                        } else {
                            deliver(res.unitIndex, res.response,
                                    worker_name);
                        }
                        break;
                      case LeaseResult::AcceptedAudit: {
                        const auto ait = audits.find(res.unitIndex);
                        if (ait == audits.end()) {
                            table.resolveAudit(res.unitIndex);
                            break;
                        }
                        const std::uint64_t audit_digest =
                            hooks.digest(res.unitIndex, res.response);
                        AuditInfo info = std::move(ait->second);
                        audits.erase(ait);
                        if (audit_digest == info.digest) {
                            ++fabricStats.byzantine.auditsPassed;
                            table.resolveAudit(res.unitIndex);
                            unitVerified[res.unitIndex] = true;
                            deliver(res.unitIndex, info.payload,
                                    info.primaryName);
                        } else {
                            arbitrate(res.unitIndex, std::move(info),
                                      res.response, audit_digest,
                                      worker_name);
                        }
                        break;
                      }
                      case LeaseResult::Duplicate:
                      case LeaseResult::Unknown:
                        // A revoked lease's owner limping in late;
                        // the reassignment owns the unit now.
                        ++fabricStats.duplicateResults;
                        break;
                    }
                    break;
                  }
                  case FabricMsg::Heartbeat:
                    ++fabricStats.heartbeats;
                    break;
                  default:
                    drop_conn(id, "unexpected message type");
                    break;
                }
            } catch (const DistError &err) {
                drop_conn(id, err.what());
            }
        }

        const Clock::time_point now = Clock::now();
        if (cfg.handshakeTimeoutMs) {
            std::vector<std::uint64_t> stale;
            for (const auto &[id, c] : conns) {
                if (c.phase != Conn::Phase::Ready &&
                    now - c.acceptedAt >
                        std::chrono::milliseconds(
                            cfg.handshakeTimeoutMs))
                    stale.push_back(id);
            }
            for (const std::uint64_t id : stale) {
                ++fabricStats.handshakeTimeouts;
                drop_conn(id, "handshake timeout");
            }
        }
        if (cfg.heartbeatTimeoutMs) {
            std::vector<std::uint64_t> silent;
            for (const auto &[id, c] : conns) {
                if (now - c.lastSeen >
                    std::chrono::milliseconds(cfg.heartbeatTimeoutMs))
                    silent.push_back(id);
            }
            for (const std::uint64_t id : silent)
                drop_conn(id, "heartbeat timeout");
        }
        if (cfg.leaseTimeoutMs) {
            for (const std::uint64_t lease : table.expired(now)) {
                const bool is_audit = table.leaseIsAudit(lease);
                const std::vector<std::size_t> units =
                    table.revokeLease(lease);
                ++fabricStats.leasesRevoked;
                warn("fabric: lease " + std::to_string(lease) +
                     " expired; reassigning " +
                     std::to_string(units.size()) + " unit(s)");
                if (!is_audit)
                    charge_lost(units, "lease timeout");
            }
        }
        if (!conns.empty()) {
            idle_since = now;
        } else if (cfg.stallTimeoutMs &&
                   now - idle_since >
                       std::chrono::milliseconds(cfg.stallTimeoutMs)) {
            throw DistError(
                "fabric: " + std::to_string(table.pendingCount()) +
                " unit(s) pending but no worker has been connected "
                "for " +
                std::to_string(cfg.stallTimeoutMs) + "ms; giving up");
        }
    }

    for (auto &[id, c] : conns) {
        if (c.phase == Conn::Phase::Ready) {
            try {
                c.link->send(encodeDone());
            } catch (const FramingError &) {
                // It died after its last unit; nothing left to say.
            }
        }
        c.link->close();
    }
    conns.clear();

    // A campaign can resolve before late workers are ever accepted —
    // a fully journal-replayed resume finishes without executing a
    // single unit, and a small remainder can drain while a worker is
    // still connecting. Those connections sit in the accept backlog
    // waiting for a Welcome that will never come, while our caller
    // waits on the workers: a deadlock. Answer each queued connection
    // with Done, then close the listener so anything later is refused
    // outright instead of queued unanswered.
    for (int drained = 0; drained < 64; ++drained) {
        pollfd pfd{listener.fd(), POLLIN, 0};
        if (::poll(&pfd, 1, 0) <= 0 || !(pfd.revents & POLLIN))
            break;
        try {
            Transport late(listener.acceptClient(),
                           "fabric late worker link");
            late.setReceiveDeadlineMs(kFabricFrameDeadlineMs);
            try {
                late.send(encodeDone());
            } catch (const FramingError &) {
                // It hung up first; the close below says the same.
            }
            late.close();
        } catch (const SocketError &) {
            break;
        }
    }
    listener.close();
}

} // namespace mtc
