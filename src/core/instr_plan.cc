#include "core/instr_plan.h"

#include <cmath>

#include "support/error.h"

namespace mtc
{

InstrumentationPlan::InstrumentationPlan(const TestProgram &program,
                                         const LoadValueAnalysis &analysis,
                                         unsigned word_bits)
{
    bits = word_bits ? word_bits : registerBits(program.config().isa);
    if (bits != 32 && bits != 64)
        throw ConfigError("signature words must be 32 or 64 bits");
    const std::uint64_t capacity = bits == 64
        ? ~std::uint64_t(0)
        : std::uint64_t(0xffffffffu);

    slots.resize(program.loads().size());
    wordsPerThread.assign(program.numThreads(), 0);

    for (std::uint32_t tid = 0; tid < program.numThreads(); ++tid) {
        std::uint32_t word = 0;
        std::uint64_t multiplier = 1;
        for (OpId load_id : program.loadsOfThread(tid)) {
            const std::uint32_t ordinal = program.loadOrdinal(load_id);
            const std::uint64_t cardinality =
                analysis.candidates(ordinal).cardinality();
            if (cardinality == 0)
                throw ConfigError("load with empty candidate set");

            // Would this load's maximum weight overflow the word? The
            // word's maximum accumulated value after this load is
            // multiplier*cardinality - 1.
            if (cardinality > capacity / multiplier) {
                // Start a fresh word, resetting the multipliers.
                ++word;
                multiplier = 1;
                if (cardinality > capacity) {
                    throw ConfigError(
                        "single load cardinality exceeds word capacity");
                }
            }
            slots[ordinal] = LoadSlot{word, multiplier};
            multiplier *= cardinality;
        }
        // Threads with no loads still store one (always-zero) word —
        // Figure 4: "it always stores sig=0 to memory".
        wordsPerThread[tid] = word + 1;
    }

    wordBases.assign(program.numThreads(), 0);
    total = 0;
    for (std::uint32_t tid = 0; tid < program.numThreads(); ++tid) {
        wordBases[tid] = total;
        total += wordsPerThread[tid];
    }
}

double
InstrumentationPlan::estimateCardinality(const TestConfig &cfg)
{
    const double stores_per_thread =
        cfg.opsPerThread * (1.0 - cfg.loadFraction);
    const double loads_per_thread = cfg.opsPerThread * cfg.loadFraction;
    const double per_load = 1.0 +
        stores_per_thread / cfg.numLocations * (cfg.numThreads - 1);
    return std::pow(per_load, loads_per_thread);
}

} // namespace mtc
