#include "core/perturbation.h"

namespace mtc
{

PerturbationModel::PerturbationModel(const TestProgram &program,
                                     const LoadValueAnalysis &analysis,
                                     PerturbationParams params_arg)
    : prog(program), loadAnalysis(analysis), params(params_arg),
      lastIndex(program.loads().size(), -1)
{
}

void
PerturbationModel::record(const Execution &execution,
                          const EncodeResult &encoded,
                          std::uint32_t signature_words)
{
    original += execution.duration;

    // Chain work executes inside each thread, concurrently with the
    // other threads' chains, while `duration` is the parallel wall
    // clock of the run — so the per-iteration chain cost is charged
    // per thread (threads are balanced by construction).
    std::uint64_t iteration_cycles =
        encoded.comparisons * params.cyclesPerComparison +
        static_cast<std::uint64_t>(signature_words) *
            params.wordStoreCycles;

    // Last-outcome branch predictor across iterations of the test
    // loop: a changed candidate index redirects the chain and pays a
    // misprediction.
    for (std::uint32_t ordinal = 0;
         ordinal < execution.loadValues.size(); ++ordinal) {
        const auto index = loadAnalysis.candidates(ordinal).indexOf(
            execution.loadValues[ordinal]);
        if (!index)
            continue; // assertion path, accounted by the caller
        const std::int64_t now = static_cast<std::int64_t>(*index);
        if (lastIndex[ordinal] >= 0 && lastIndex[ordinal] != now)
            iteration_cycles += params.mispredictPenalty;
        lastIndex[ordinal] = now;
    }

    compute += iteration_cycles / prog.numThreads();
}

void
PerturbationModel::recordSortComparisons(std::uint64_t comparisons)
{
    sorting += comparisons * params.cyclesPerSortCompare;
}

double
PerturbationModel::computationOverhead() const
{
    return original ? static_cast<double>(compute) / original : 0.0;
}

double
PerturbationModel::sortingOverhead() const
{
    return original ? static_cast<double>(sorting) / original : 0.0;
}

} // namespace mtc
