/**
 * @file
 * Static load-value analysis (step 1 of the paper's Figure 3).
 *
 * For every load the analysis collects the set of values the load
 * could legally observe: the most recent program-order-earlier store
 * of the same thread to that address (or the initial value if there is
 * none), plus every store to that address from every other thread.
 * Constrained-random tests are fully disambiguated by construction
 * (unique store IDs), so the analysis is exact — the paper's "perfect
 * memory disambiguation".
 *
 * The candidate *order* is part of the instrumented-code contract:
 * candidate index i receives weight i x multiplier, and the decoder's
 * store_maps table is this same list.
 */

#ifndef MTC_CORE_LOAD_ANALYSIS_H
#define MTC_CORE_LOAD_ANALYSIS_H

#include <cstdint>
#include <optional>
#include <vector>

#include "testgen/test_program.h"

namespace mtc
{

/** Candidate values of one load, index-addressable (store_maps row). */
struct LoadCandidateSet
{
    /** Observable values; values[0] is the same-thread fallback
     * (forwarded own store or the initial value). */
    std::vector<std::uint32_t> values;

    /** Index of @p value in the set, or nullopt (assertion fires). */
    std::optional<std::uint32_t>
    indexOf(std::uint32_t value) const
    {
        for (std::uint32_t i = 0; i < values.size(); ++i)
            if (values[i] == value)
                return i;
        return std::nullopt;
    }

    std::uint32_t
    cardinality() const
    {
        return static_cast<std::uint32_t>(values.size());
    }
};

/** Options for the static-pruning extension (paper Section 8). */
struct AnalysisOptions
{
    /**
     * When non-zero, other-thread stores are only considered
     * observable if fewer than this many same-thread stores to the
     * same address separate them from the end of their thread —
     * a stand-in for bounding reordering by LSQ depth. 0 disables
     * pruning (the paper's conservative default).
     */
    std::uint32_t pruneWindow = 0;
};

/**
 * Per-load candidate tables for one test program. Rows are indexed by
 * TestProgram load ordinal.
 */
class LoadValueAnalysis
{
  public:
    explicit LoadValueAnalysis(const TestProgram &program,
                               AnalysisOptions options = {});

    const LoadCandidateSet &
    candidates(std::uint32_t load_ordinal) const
    {
        return sets.at(load_ordinal);
    }

    std::size_t numLoads() const { return sets.size(); }

    /** Total candidate entries across all loads (code-size input). */
    std::uint64_t totalCandidates() const { return total; }

  private:
    std::vector<LoadCandidateSet> sets;
    std::uint64_t total = 0;
};

} // namespace mtc

#endif // MTC_CORE_LOAD_ANALYSIS_H
