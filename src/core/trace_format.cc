#include "core/trace_format.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/framing.h"

namespace mtc
{

namespace
{

/** Decoders below bound every length-prefixed read by the bytes
 * actually present, so a forged count is classified Truncated before
 * any allocation attempt. */
void
boundOrThrow(std::size_t want, std::size_t have, const char *what)
{
    if (want > have)
        throw TraceError(TraceFaultKind::Truncated,
                         std::string(what) + " truncated: " +
                             std::to_string(want) +
                             " bytes declared, " + std::to_string(have) +
                             " present");
}

/** Re-classify a ByteReader underrun as a trace truncation. */
template <typename Fn>
auto
classified(const char *what, Fn &&fn)
{
    try {
        return fn();
    } catch (const JournalError &err) {
        throw TraceError(TraceFaultKind::Truncated,
                         std::string(what) + " truncated: " + err.what());
    }
}

} // anonymous namespace

const char *
traceFaultName(TraceFaultKind kind)
{
    switch (kind) {
    case TraceFaultKind::Truncated:
        return "truncated";
    case TraceFaultKind::Corrupt:
        return "corrupt";
    case TraceFaultKind::VersionSkew:
        return "version-skew";
    case TraceFaultKind::FingerprintMismatch:
        return "fingerprint-mismatch";
    }
    return "unknown";
}

std::vector<std::uint8_t>
encodeTraceHeader(const TraceHeader &header)
{
    ByteWriter w;
    w.u8(kTraceHeaderTag);
    w.u32(kTraceMagic);
    w.u32(header.version);
    w.u64(header.identityDigest);
    w.str(header.description);
    w.u32(static_cast<std::uint32_t>(header.spec.size()));
    for (const std::uint8_t b : header.spec)
        w.u8(b);
    return w.bytes();
}

TraceHeader
decodeTraceHeader(const std::vector<std::uint8_t> &body)
{
    return classified("trace header", [&] {
        ByteReader r(body);
        if (r.u32() != kTraceMagic)
            throw TraceError(TraceFaultKind::Corrupt,
                             "trace header: bad magic (not a trace file)");
        TraceHeader h;
        h.version = r.u32();
        if (h.version != kTraceVersion)
            throw TraceError(
                TraceFaultKind::VersionSkew,
                "trace format version " + std::to_string(h.version) +
                    ", this build reads version " +
                    std::to_string(kTraceVersion));
        h.identityDigest = r.u64();
        h.description = r.str();
        const std::uint32_t spec_len = r.u32();
        boundOrThrow(spec_len, r.remaining(), "trace header spec");
        h.spec.resize(spec_len);
        for (std::uint32_t i = 0; i < spec_len; ++i)
            h.spec[i] = r.u8();
        if (!r.exhausted())
            throw TraceError(TraceFaultKind::Corrupt,
                             "trace header: trailing bytes after spec");
        return h;
    });
}

std::vector<std::uint8_t>
encodeTraceCheckpoint(const TraceCheckpointRecord &record)
{
    // Body only — TraceWriter::append() owns the kind tag, exactly as
    // for unit records. (The header is the one self-tagged payload,
    // because readTraceFile must recognise it before any decode.)
    ByteWriter w;
    w.str(record.configName);
    w.u32(record.testIndex);
    w.u64(record.payloadDigest);
    w.u8(record.quarantined);
    w.str(record.note);
    return w.bytes();
}

TraceCheckpointRecord
decodeTraceCheckpoint(const std::vector<std::uint8_t> &body)
{
    return classified("trace checkpoint record", [&] {
        ByteReader r(body);
        TraceCheckpointRecord rec;
        rec.configName = r.str();
        rec.testIndex = r.u32();
        rec.payloadDigest = r.u64();
        rec.quarantined = r.u8();
        if (rec.quarantined > 1)
            throw TraceError(
                TraceFaultKind::Corrupt,
                "trace checkpoint record: verdict byte out of range");
        rec.note = r.str();
        if (!r.exhausted())
            throw TraceError(TraceFaultKind::Corrupt,
                             "trace checkpoint record: trailing bytes");
        return rec;
    });
}

namespace
{

/** Truncate-or-create @p path so a fresh dump never inherits stale
 * frames from a previous run at the same path. */
void
truncateForFreshTrace(const std::string &path)
{
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        throw JournalError("trace open failed: " + path + ": " +
                           std::strerror(errno));
    ::close(fd);
}

const std::string &
freshTracePath(const std::string &path)
{
    truncateForFreshTrace(path);
    return path;
}

} // anonymous namespace

TraceWriter::TraceWriter(const std::string &path,
                         const TraceHeader &header, unsigned fsync_every)
    : writer(freshTracePath(path), fsync_every)
{
    writer.append(encodeTraceHeader(header));
    writer.sync();
}

TraceWriter::TraceWriter(const std::string &path, unsigned fsync_every)
    : writer(path, fsync_every)
{}

void
TraceWriter::append(std::uint8_t kind,
                    const std::vector<std::uint8_t> &body)
{
    std::vector<std::uint8_t> payload;
    payload.reserve(body.size() + 1);
    payload.push_back(kind);
    payload.insert(payload.end(), body.begin(), body.end());
    writer.append(payload);
}

void
TraceWriter::sync()
{
    writer.sync();
}

TraceFile
readTraceFile(const std::string &path)
{
    const JournalRecovery recovery = readJournal(path);
    if (recovery.records.empty())
        throw TraceError(TraceFaultKind::Truncated,
                         "trace file " + path +
                             " is missing, empty, or torn before its "
                             "first record");

    const std::vector<std::uint8_t> &first = recovery.records.front();
    if (first.empty() || first[0] != kTraceHeaderTag)
        throw TraceError(TraceFaultKind::Corrupt,
                         "trace file " + path +
                             " does not start with a header record");

    TraceFile out;
    out.header = decodeTraceHeader(std::vector<std::uint8_t>(
        first.begin() + 1, first.end()));
    out.validBytes = recovery.validBytes;
    out.droppedBytes = recovery.droppedBytes;

    for (std::size_t i = 1; i < recovery.records.size(); ++i) {
        const std::vector<std::uint8_t> &payload = recovery.records[i];
        if (payload.empty()) {
            ++out.malformedRecords;
            continue;
        }
        const std::uint8_t kind = payload[0];
        if (kind != kTraceUnitTag && kind != kTraceCheckpointTag) {
            // Forward compatibility: a newer producer's record kinds
            // are skipped, not fatal — the version handshake already
            // guaranteed the kinds we DO know decode identically.
            ++out.unknownSkipped;
            continue;
        }
        TraceRecord rec;
        rec.kind = kind;
        rec.body.assign(payload.begin() + 1, payload.end());
        out.records.push_back(std::move(rec));
    }
    return out;
}

} // namespace mtc
