/**
 * @file
 * Conventional MCM checking: one full topological sort per unique
 * constraint graph (the paper's baseline, Section 2 / Figure 9).
 *
 * Vertex structures (the static program-order skeleton) are built once
 * and recycled across graphs while edge structures are rebuilt per
 * graph, mirroring how the paper adapted GNU tsort for its baseline
 * measurements.
 */

#ifndef MTC_CORE_CONVENTIONAL_CHECKER_H
#define MTC_CORE_CONVENTIONAL_CHECKER_H

#include <cstdint>
#include <vector>

#include "graph/graph_builder.h"
#include "mcm/memory_model.h"
#include "testgen/test_program.h"

namespace mtc
{

/** Work/result accounting of a batch check. */
struct ConventionalStats
{
    std::uint64_t graphsChecked = 0;
    std::uint64_t violations = 0;
    std::uint64_t verticesProcessed = 0;
    std::uint64_t edgesProcessed = 0;
};

/** Per-graph checker bound to one test program. */
class ConventionalChecker
{
  public:
    ConventionalChecker(const TestProgram &program, MemoryModel model);

    /**
     * Check a batch of dynamic edge sets (one per unique execution).
     *
     * @return violation verdict per edge set (true = MCM violation).
     */
    std::vector<bool> check(const std::vector<DynamicEdgeSet> &batch,
                            ConventionalStats &stats) const;

    /** Check a single execution's edge set. */
    bool checkOne(const DynamicEdgeSet &edges,
                  ConventionalStats &stats) const;

  private:
    const TestProgram &prog;
    std::vector<Edge> staticEdges;
};

} // namespace mtc

#endif // MTC_CORE_CONVENTIONAL_CHECKER_H
