#include "core/signature.h"

#include <sstream>

namespace mtc
{

std::string
Signature::toString() const
{
    std::ostringstream os;
    os << std::hex;
    for (std::size_t i = 0; i < words.size(); ++i)
        os << (i ? ":" : "") << "0x" << words[i];
    return os.str();
}

} // namespace mtc
