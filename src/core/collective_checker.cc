#include "core/collective_checker.h"

#include <algorithm>

#include "graph/po_edges.h"
#include "support/error.h"
#include "support/thread_pool.h"

namespace mtc
{

void
CollectiveStats::merge(const CollectiveStats &other)
{
    graphsChecked += other.graphsChecked;
    violations += other.violations;
    completeSorts += other.completeSorts;
    noResortNeeded += other.noResortNeeded;
    incrementalResorts += other.incrementalResorts;
    affectedFraction.merge(other.affectedFraction);
    verticesProcessed += other.verticesProcessed;
    edgesProcessed += other.edgesProcessed;
}

CollectiveChecker::CollectiveChecker(const TestProgram &program,
                                     MemoryModel model)
    : prog(program), numVertices(program.numOps()),
      dynAdj(numVertices),
      windowEpoch(numVertices, 0), windowIndeg(numVertices, 0)
{
    // Build the immutable static adjacency directly in CSR form:
    // degree count, prefix sum, then a second pass placing neighbours
    // with per-vertex cursors (preserving programOrderEdges order).
    const std::vector<Edge> po_edges = programOrderEdges(program, model);
    staticOff.assign(numVertices + 1, 0);
    for (const Edge &edge : po_edges)
        ++staticOff[edge.from + 1];
    for (std::uint32_t v = 0; v < numVertices; ++v)
        staticOff[v + 1] += staticOff[v];
    staticNbr.resize(po_edges.size());
    std::vector<std::uint32_t> cursor(staticOff.begin(),
                                      staticOff.end() - 1);
    for (const Edge &edge : po_edges)
        staticNbr[cursor[edge.from]++] = edge.to;

    isLoad.assign(numVertices, false);
    for (std::uint32_t v = 0; v < numVertices; ++v)
        isLoad[v] = program.op(program.opIdAt(v)).kind == OpKind::Load;

    storeQueue.reserve(numVertices);
    loadQueue.reserve(numVertices);
    orderScratch.reserve(numVertices);
}

namespace
{

std::uint64_t
edgeKey(const Edge &e)
{
    return (static_cast<std::uint64_t>(e.from) << 32) | e.to;
}

} // namespace

const std::vector<Edge> &
CollectiveChecker::applyDiff(const std::vector<Edge> &next)
{
    // Both lists are sorted by (from, to): merge to find additions and
    // removals.
    addedScratch.clear();

    std::size_t i = 0, j = 0;
    while (i < currentEdges.size() || j < next.size()) {
        if (j == next.size() ||
            (i < currentEdges.size() &&
             edgeKey(currentEdges[i]) < edgeKey(next[j]))) {
            // Removed edge: releases a constraint, never invalidates.
            // Swap-and-pop instead of erase(find(...)): the find is
            // unavoidable without an index, but erase's element shift
            // made diff application quadratic in the successor-list
            // length on dense tests. Successor order is irrelevant to
            // correctness (it only biases which of several valid
            // topological orders the sort produces).
            auto &succ = dynAdj[currentEdges[i].from];
            auto it = std::find(succ.begin(), succ.end(),
                                currentEdges[i].to);
            *it = succ.back();
            succ.pop_back();
            ++i;
        } else if (i == currentEdges.size() ||
                   edgeKey(next[j]) < edgeKey(currentEdges[i])) {
            dynAdj[next[j].from].push_back(next[j].to);
            addedScratch.push_back(next[j]);
            ++j;
        } else {
            ++i;
            ++j;
        }
    }
    currentEdges = next;
    return addedScratch;
}

void
CollectiveChecker::applyDiffLists(const std::vector<Edge> &removed,
                                  const std::vector<Edge> &added)
{
    // Merge the (disjoint, sorted) lists and apply in ascending key
    // order — the exact removal/insertion interleaving applyDiff()
    // performs, so the resulting successor-list layout (and with it
    // every Kahn tie-break downstream) is bit-identical.
    std::size_t i = 0, j = 0;
    while (i < removed.size() || j < added.size()) {
        if (j == added.size() ||
            (i < removed.size() &&
             edgeKey(removed[i]) < edgeKey(added[j]))) {
            auto &succ = dynAdj[removed[i].from];
            auto it =
                std::find(succ.begin(), succ.end(), removed[i].to);
            *it = succ.back();
            succ.pop_back();
            ++i;
        } else {
            dynAdj[added[j].from].push_back(added[j].to);
            ++j;
        }
    }
}

bool
CollectiveChecker::fullSort()
{
    ++stat.completeSorts;

    // Work accounting matches topologicalSort(): vertices dequeued and
    // edges relaxed; in-degree building is not separately charged.
    fullIndeg.assign(numVertices, 0);
    for (std::uint32_t to : staticNbr)
        ++fullIndeg[to];
    for (std::uint32_t v = 0; v < numVertices; ++v) {
        for (std::uint32_t to : dynAdj[v])
            ++fullIndeg[to];
    }

    // Two-bucket Kahn preferring stores over loads: like the paper's
    // observation about tsort, placing stores as early as the
    // constraints allow makes most *new* reads-from edges forward, so
    // subsequent graphs skip re-sorting entirely.
    storeQueue.clear();
    loadQueue.clear();
    auto enqueue = [&](std::uint32_t v) {
        (isLoad[v] ? loadQueue : storeQueue).push_back(v);
    };
    for (std::uint32_t v = 0; v < numVertices; ++v)
        if (fullIndeg[v] == 0)
            enqueue(v);

    orderScratch.clear();
    std::size_t store_head = 0, load_head = 0;
    while (store_head < storeQueue.size() ||
           load_head < loadQueue.size()) {
        const std::uint32_t v = store_head < storeQueue.size()
            ? storeQueue[store_head++]
            : loadQueue[load_head++];
        ++stat.verticesProcessed;
        orderScratch.push_back(v);
        const auto relax = [&](std::uint32_t to) {
            ++stat.edgesProcessed;
            if (--fullIndeg[to] == 0)
                enqueue(to);
        };
        for (std::uint32_t e = staticOff[v]; e < staticOff[v + 1]; ++e)
            relax(staticNbr[e]);
        for (std::uint32_t to : dynAdj[v])
            relax(to);
    }

    if (orderScratch.size() != numVertices) {
        orderValid = false;
        return false;
    }

    orderArr.swap(orderScratch);
    pos.assign(numVertices, 0);
    for (std::uint32_t p = 0; p < numVertices; ++p)
        pos[orderArr[p]] = p;
    orderValid = true;
    return true;
}

bool
CollectiveChecker::windowedResort(std::uint32_t lead, std::uint32_t trail)
{
    // Membership + in-window in-degrees via epoch stamping.
    ++epoch;
    const std::uint32_t window_size = trail - lead + 1;
    for (std::uint32_t p = lead; p <= trail; ++p) {
        const std::uint32_t v = orderArr[p];
        windowEpoch[v] = epoch;
        windowIndeg[v] = 0;
    }
    for (std::uint32_t p = lead; p <= trail; ++p) {
        const std::uint32_t v = orderArr[p];
        const auto count = [&](std::uint32_t to) {
            if (windowEpoch[to] == epoch)
                ++windowIndeg[to];
        };
        for (std::uint32_t e = staticOff[v]; e < staticOff[v + 1]; ++e)
            count(staticNbr[e]);
        for (std::uint32_t to : dynAdj[v])
            count(to);
    }

    windowQueue.clear();
    for (std::uint32_t p = lead; p <= trail; ++p) {
        const std::uint32_t v = orderArr[p];
        if (windowIndeg[v] == 0)
            windowQueue.push_back(v);
    }

    windowSubOrder.clear();
    std::size_t head = 0;
    while (head < windowQueue.size()) {
        const std::uint32_t v = windowQueue[head++];
        ++stat.verticesProcessed;
        windowSubOrder.push_back(v);
        // Every successor is touched (charged), but only in-window
        // targets participate in the sort.
        const auto relax = [&](std::uint32_t to) {
            ++stat.edgesProcessed;
            if (windowEpoch[to] != epoch)
                return;
            if (--windowIndeg[to] == 0)
                windowQueue.push_back(to);
        };
        for (std::uint32_t e = staticOff[v]; e < staticOff[v + 1]; ++e)
            relax(staticNbr[e]);
        for (std::uint32_t to : dynAdj[v])
            relax(to);
    }

    if (windowSubOrder.size() != window_size) {
        orderValid = false; // cycle inside the window
        return false;
    }

    // Write the new sub-order back into the same position slots.
    // Cross-boundary edges stay forward: predecessors of the window
    // occupy positions < lead, successors positions > trail.
    for (std::uint32_t k = 0; k < window_size; ++k) {
        orderArr[lead + k] = windowSubOrder[k];
        pos[windowSubOrder[k]] = lead + k;
    }
    return true;
}

bool
CollectiveChecker::checkNext(const DynamicEdgeSet &edges)
{
    ++stat.graphsChecked;
    const std::vector<Edge> &added = applyDiff(edges.edges);
    return finishCheck(added, edges.coherenceViolation);
}

bool
CollectiveChecker::checkNextDiff(const EdgeDiff &diff)
{
    ++stat.graphsChecked;
    applyDiffLists(diff.removed, diff.added);
    return finishCheck(diff.added, diff.coherenceViolation);
}

bool
CollectiveChecker::finishCheck(const std::vector<Edge> &added,
                               bool coherence_violation)
{
    if (coherence_violation) {
        // Contradictory ws constraints: flagged without sorting. The
        // maintained order may no longer be valid for this graph, so
        // the next graph starts from a complete sort.
        ++stat.violations;
        orderValid = false;
        return true;
    }

    if (!orderValid) {
        // First graph, or recovery after a violating graph.
        const bool ok = fullSort();
        if (!ok)
            ++stat.violations;
        return !ok;
    }

    // Classify added edges against the current order.
    std::uint32_t lead = numVertices, trail = 0;
    for (const Edge &edge : added) {
        if (pos[edge.from] > pos[edge.to]) { // backward
            lead = std::min(lead, pos[edge.to]);
            trail = std::max(trail, pos[edge.from]);
        }
    }

    if (lead > trail) {
        ++stat.noResortNeeded; // all added edges forward
        return false;
    }

    ++stat.incrementalResorts;
    stat.affectedFraction.add(static_cast<double>(trail - lead + 1) /
                              numVertices);
    const bool ok = windowedResort(lead, trail);
    if (!ok)
        ++stat.violations;
    return !ok;
}

std::vector<bool>
CollectiveChecker::check(const std::vector<DynamicEdgeSet> &ordered)
{
    return check(ordered.data(), ordered.size());
}

std::vector<bool>
CollectiveChecker::check(const DynamicEdgeSet *ordered,
                         std::size_t count)
{
    std::vector<bool> verdicts;
    verdicts.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        verdicts.push_back(checkNext(ordered[i]));
    return verdicts;
}

void
CollectiveChecker::reset()
{
    for (auto &succ : dynAdj)
        succ.clear();
    currentEdges.clear();
    orderValid = false;
    stat = CollectiveStats{};
}

std::vector<bool>
checkCollectiveSharded(const TestProgram &program, MemoryModel model,
                       const std::vector<DynamicEdgeSet> &ordered,
                       std::size_t shard_size, ThreadPool *pool,
                       CollectiveStats &stats)
{
    if (shard_size == 0 || shard_size >= ordered.size()) {
        CollectiveChecker checker(program, model);
        std::vector<bool> verdicts = checker.check(ordered);
        stats.merge(checker.stats());
        return verdicts;
    }

    const std::size_t shards =
        (ordered.size() + shard_size - 1) / shard_size;
    std::vector<std::vector<bool>> shard_verdicts(shards);
    std::vector<CollectiveStats> shard_stats(shards);

    // Each shard is an independent checker over a contiguous slice of
    // the (already ascending) signature sequence; any worker may pick
    // up any shard because results land in per-shard slots that are
    // merged in shard order below.
    const auto run_shard = [&](std::size_t s) {
        const std::size_t begin = s * shard_size;
        const std::size_t end =
            std::min(begin + shard_size, ordered.size());
        CollectiveChecker checker(program, model);
        shard_verdicts[s] =
            checker.check(ordered.data() + begin, end - begin);
        shard_stats[s] = checker.stats();
    };

    if (pool && pool->size() > 1) {
        pool->parallelFor(shards, run_shard);
    } else {
        for (std::size_t s = 0; s < shards; ++s)
            run_shard(s);
    }

    std::vector<bool> verdicts;
    verdicts.reserve(ordered.size());
    for (std::size_t s = 0; s < shards; ++s) {
        verdicts.insert(verdicts.end(), shard_verdicts[s].begin(),
                        shard_verdicts[s].end());
        stats.merge(shard_stats[s]);
    }
    return verdicts;
}

} // namespace mtc
