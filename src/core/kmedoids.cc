#include "core/kmedoids.h"

#include <algorithm>
#include <limits>

#include "support/error.h"

namespace mtc
{

DistanceMatrix::DistanceMatrix(const std::vector<Execution> &executions)
    : n(static_cast<std::uint32_t>(executions.size()))
{
    data.assign(static_cast<std::size_t>(n) * n, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
        for (std::uint32_t j = i + 1; j < n; ++j) {
            const std::uint32_t d = executions[i].rfDistance(executions[j]);
            data[static_cast<std::size_t>(i) * n + j] = d;
            data[static_cast<std::size_t>(j) * n + i] = d;
        }
    }
}

namespace
{

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

/** Nearest / second-nearest medoid distance per point. */
struct Assignment
{
    std::vector<std::uint32_t> nearest;       ///< distance
    std::vector<std::uint32_t> nearestMedoid; ///< medoid index in list
    std::vector<std::uint32_t> second;        ///< distance

    std::uint64_t
    total() const
    {
        std::uint64_t sum = 0;
        for (std::uint32_t d : nearest)
            sum += d;
        return sum;
    }

    void
    rebuild(const DistanceMatrix &matrix,
            const std::vector<std::uint32_t> &medoids)
    {
        const std::uint32_t n = matrix.size();
        nearest.assign(n, kInf);
        nearestMedoid.assign(n, 0);
        second.assign(n, kInf);
        for (std::uint32_t p = 0; p < n; ++p) {
            for (std::uint32_t mi = 0; mi < medoids.size(); ++mi) {
                const std::uint32_t d = matrix.at(p, medoids[mi]);
                if (d < nearest[p]) {
                    second[p] = nearest[p];
                    nearest[p] = d;
                    nearestMedoid[p] = mi;
                } else if (d < second[p]) {
                    second[p] = d;
                }
            }
        }
    }
};

} // anonymous namespace

KMedoidsResult
kMedoids(const DistanceMatrix &matrix, std::uint32_t k, Rng &rng,
         std::uint32_t max_iter)
{
    const std::uint32_t n = matrix.size();
    if (n == 0)
        throw ConfigError("k-medoids over an empty execution set");
    k = std::min(k, n);
    (void)rng; // deterministic PAM; kept for interface stability

    KMedoidsResult result;
    std::vector<bool> is_medoid(n, false);

    // BUILD: repeatedly add the point that reduces total cost most,
    // tracked incrementally via the nearest-distance array.
    std::vector<std::uint32_t> nearest(n, kInf);
    for (std::uint32_t chosen = 0; chosen < k; ++chosen) {
        std::int64_t best_gain = std::numeric_limits<std::int64_t>::min();
        std::uint32_t best_candidate = 0;
        for (std::uint32_t c = 0; c < n; ++c) {
            if (is_medoid[c])
                continue;
            std::int64_t gain = 0;
            if (chosen == 0) {
                // First medoid: pick the point with least total cost.
                for (std::uint32_t p = 0; p < n; ++p)
                    gain -= matrix.at(p, c);
            } else {
                for (std::uint32_t p = 0; p < n; ++p) {
                    const std::uint32_t d = matrix.at(p, c);
                    if (d < nearest[p])
                        gain += nearest[p] - d;
                }
            }
            if (gain > best_gain) {
                best_gain = gain;
                best_candidate = c;
            }
        }
        is_medoid[best_candidate] = true;
        result.medoids.push_back(best_candidate);
        for (std::uint32_t p = 0; p < n; ++p) {
            nearest[p] =
                std::min(nearest[p], matrix.at(p, best_candidate));
        }
    }

    Assignment assign;
    assign.rebuild(matrix, result.medoids);
    result.totalDistance = assign.total();

    // SWAP descent with O(n) delta evaluation per (medoid, candidate):
    // replacing medoid mi by candidate c changes each point's cost to
    //   min(d(p,c), nearest-excluding-mi(p))
    // where nearest-excluding-mi is `second` if mi currently serves p.
    for (std::uint32_t iter = 0; iter < max_iter; ++iter) {
        ++result.iterations;
        std::int64_t best_delta = 0;
        std::int64_t best_mi = -1;
        std::uint32_t best_c = 0;

        for (std::uint32_t mi = 0; mi < result.medoids.size(); ++mi) {
            for (std::uint32_t c = 0; c < n; ++c) {
                if (is_medoid[c])
                    continue;
                std::int64_t delta = 0;
                for (std::uint32_t p = 0; p < n; ++p) {
                    const std::uint32_t d_c = matrix.at(p, c);
                    const std::uint32_t base = assign.nearest[p];
                    const std::uint32_t fallback =
                        assign.nearestMedoid[p] == mi ? assign.second[p]
                                                      : base;
                    delta += static_cast<std::int64_t>(
                                 std::min(d_c, fallback)) -
                        static_cast<std::int64_t>(base);
                }
                if (delta < best_delta) {
                    best_delta = delta;
                    best_mi = mi;
                    best_c = c;
                }
            }
        }

        if (best_mi < 0)
            break; // local optimum
        is_medoid[result.medoids[best_mi]] = false;
        is_medoid[best_c] = true;
        result.medoids[static_cast<std::size_t>(best_mi)] = best_c;
        assign.rebuild(matrix, result.medoids);
        result.totalDistance = assign.total();
    }
    return result;
}

} // namespace mtc
