/**
 * @file
 * Signature accumulation hot path of the test loop.
 *
 * Every iteration of the test loop records one signature. The original
 * harness accumulated them in a comparison-counting std::map — a
 * red-black tree paying O(log u) signature comparisons plus a node
 * allocation per iteration, which dominated the host-side cost of
 * signature collection long before any checking started. This
 * accumulator replaces it with a single-writer, allocation-light
 * open-addressing hash table: unique signatures live contiguously in
 * an arena (insertion order), a power-of-two slot array maps hashes to
 * arena indices by linear probing, and the ascending-signature order
 * the collective checker needs is produced by one final sort instead
 * of being maintained on every insert.
 *
 * No locks, no nodes, no tree rebalancing: a record() is one hash, a
 * short probe run, and a counter bump. (The structure is single-writer
 * by design — the test loop is inherently serial because the platform
 * and RNG are stateful; the engine's parallelism lives above and below
 * this loop.)
 */

#ifndef MTC_CORE_SIGNATURE_ACCUMULATOR_H
#define MTC_CORE_SIGNATURE_ACCUMULATOR_H

#include <cstdint>
#include <vector>

#include "core/signature.h"

namespace mtc
{

/** One unique signature and how many iterations produced it. */
struct SignatureCount
{
    Signature signature;
    std::uint64_t iterations = 0;
};

/** Open-addressing signature -> iteration-count accumulator. */
class SignatureAccumulator
{
  public:
    SignatureAccumulator();

    /**
     * Record @p copies observations of @p signature.
     * @return true iff the signature was new.
     */
    bool record(const Signature &signature, std::uint64_t copies = 1);

    /** Number of distinct signatures recorded so far. */
    std::size_t uniqueCount() const { return arena.size(); }

    /**
     * Steal the accumulated entries, sorted by ascending signature —
     * the presentation order the collective checker requires. The
     * accumulator is empty afterwards.
     */
    std::vector<SignatureCount> takeSortedUnique();

  private:
    void grow();

    std::vector<SignatureCount> arena; ///< insertion-ordered uniques
    std::vector<std::uint64_t> hashes; ///< parallel to arena
    std::vector<std::uint32_t> slots;  ///< arena index + 1; 0 = empty
    std::size_t mask = 0;              ///< slots.size() - 1
};

} // namespace mtc

#endif // MTC_CORE_SIGNATURE_ACCUMULATOR_H
