#include "core/codesize.h"

namespace mtc
{

InstructionCosts
InstructionCosts::forIsa(Isa isa)
{
    if (isa == Isa::X86) {
        return InstructionCosts{
            /*loadBytes=*/7,       // mov r32, [base+disp32]
            /*storeBytes=*/11,     // mov dword [base+disp32], imm32
            /*fenceBytes=*/3,      // mfence
            /*perCandidate=*/15,   // cmp r,imm32; jne; add r64,imm32; jmp
            /*chainTail=*/6,       // assertion trap + pad
            /*wordInit=*/3,        // xor r64, r64
            /*wordStore=*/8,       // mov [base+disp32], r64
            /*flushStoreBytes=*/8, // mov [base+disp32], r32 + advance
        };
    }
    // ARMv7: fixed 4-byte encodings; 32-bit immediates need movw+movt.
    return InstructionCosts{
        /*loadBytes=*/8,        // ldr + offset arithmetic
        /*storeBytes=*/12,      // movw; movt; str
        /*fenceBytes=*/4,       // dmb
        /*perCandidate=*/16,    // movw/cmp; bne; add; b
        /*chainTail=*/8,        // bkpt path
        /*wordInit=*/4,         // mov r, #0
        /*wordStore=*/8,        // str + address update
        /*flushStoreBytes=*/8,  // str + pointer bump
    };
}

namespace
{

std::uint64_t
originalBytes(const TestProgram &program, const InstructionCosts &costs)
{
    std::uint64_t bytes = 0;
    for (const auto &body : program.threadBodies()) {
        for (const MemOp &mem_op : body) {
            switch (mem_op.kind) {
              case OpKind::Load:
                bytes += costs.loadBytes;
                break;
              case OpKind::Store:
                bytes += costs.storeBytes;
                break;
              case OpKind::Fence:
                bytes += costs.fenceBytes;
                break;
            }
        }
    }
    return bytes;
}

} // anonymous namespace

CodeSizeReport
codeSize(const TestProgram &program, const LoadValueAnalysis &analysis,
         const InstrumentationPlan &plan)
{
    const InstructionCosts costs =
        InstructionCosts::forIsa(program.config().isa);

    CodeSizeReport report;
    report.originalBytes = originalBytes(program, costs);

    std::uint64_t added = 0;
    for (std::uint32_t ordinal = 0; ordinal < program.loads().size();
         ++ordinal) {
        added += static_cast<std::uint64_t>(
                     analysis.candidates(ordinal).cardinality()) *
                costs.perCandidate +
            costs.chainTail;
    }
    // Per signature word: one init at the start, one store at the end.
    added += static_cast<std::uint64_t>(plan.totalWords()) *
        (costs.wordInit + costs.wordStore);

    report.instrumentedBytes = report.originalBytes + added;
    return report;
}

CodeSizeReport
codeSizeRegisterFlush(const TestProgram &program)
{
    const InstructionCosts costs =
        InstructionCosts::forIsa(program.config().isa);

    CodeSizeReport report;
    report.originalBytes = originalBytes(program, costs);
    report.instrumentedBytes = report.originalBytes +
        static_cast<std::uint64_t>(program.loads().size()) *
            costs.flushStoreBytes;
    return report;
}

IntrusivenessReport
intrusiveness(const TestProgram &program, const InstrumentationPlan &plan)
{
    IntrusivenessReport report;
    report.testLoads = program.loads().size();
    report.testStores = program.stores().size();
    report.flushStores = report.testLoads;
    report.signatureWords = plan.totalWords();
    report.signatureBytes = plan.signatureBytes();
    return report;
}

} // namespace mtc
