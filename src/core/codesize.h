/**
 * @file
 * Instruction-accurate code-size model (paper Figure 12) and the
 * intrusiveness metric (Figure 11).
 *
 * We have no assembler in the loop, so sizes are computed from
 * per-ISA instruction-encoding byte costs: fixed 4-byte instructions
 * on ARMv7 (immediates needing movw/movt pairs), variable-length
 * encodings on x86-64. Only the *test routine* is measured, excluding
 * initialization and signature sorting, matching the paper's
 * methodology.
 *
 * The intrusiveness metric counts memory accesses unrelated to the
 * test: MTraceCheck stores only the signature words at the end of a
 * run, whereas the register-flushing baseline of TSOtool stores every
 * loaded value; their ratio is Figure 11's y-axis.
 */

#ifndef MTC_CORE_CODESIZE_H
#define MTC_CORE_CODESIZE_H

#include <cstdint>

#include "core/instr_plan.h"
#include "core/load_analysis.h"
#include "mcm/isa.h"
#include "testgen/test_program.h"

namespace mtc
{

/** Per-ISA instruction-encoding byte costs. */
struct InstructionCosts
{
    std::uint32_t loadBytes;       ///< test load (addr in base+disp)
    std::uint32_t storeBytes;      ///< test store incl. value setup
    std::uint32_t fenceBytes;      ///< mfence / dmb
    std::uint32_t perCandidate;    ///< cmp + branch + add + skip
    std::uint32_t chainTail;       ///< trailing assertion
    std::uint32_t wordInit;        ///< zero one signature register
    std::uint32_t wordStore;       ///< flush one signature word
    std::uint32_t flushStoreBytes; ///< baseline: store one loaded value

    static InstructionCosts forIsa(Isa isa);
};

/** Code-size measurement of one instrumented test. */
struct CodeSizeReport
{
    std::uint64_t originalBytes = 0;
    std::uint64_t instrumentedBytes = 0; ///< original + added code

    double
    ratio() const
    {
        return originalBytes
            ? static_cast<double>(instrumentedBytes) / originalBytes
            : 0.0;
    }
};

/** Measure the test routine under the program's ISA encodings. */
CodeSizeReport codeSize(const TestProgram &program,
                        const LoadValueAnalysis &analysis,
                        const InstrumentationPlan &plan);

/** Code size of the register-flushing baseline instrumentation. */
CodeSizeReport codeSizeRegisterFlush(const TestProgram &program);

/** Intrusiveness accounting for Figure 11. */
struct IntrusivenessReport
{
    std::uint64_t testLoads = 0;
    std::uint64_t testStores = 0;

    /** Register-flushing baseline: one store per load. */
    std::uint64_t flushStores = 0;

    /** MTraceCheck: signature words written at the end of the run. */
    std::uint64_t signatureWords = 0;

    /** Execution-signature footprint (Figure 11 bar annotations). */
    std::uint64_t signatureBytes = 0;

    /**
     * Memory accesses unrelated to the test, normalized against the
     * register-flushing baseline (Figure 11's y-axis).
     */
    double
    normalizedUnrelated() const
    {
        return flushStores
            ? static_cast<double>(signatureWords) / flushStores
            : 0.0;
    }
};

/** Compute Figure 11's metrics for one instrumented test. */
IntrusivenessReport intrusiveness(const TestProgram &program,
                                  const InstrumentationPlan &plan);

} // namespace mtc

#endif // MTC_CORE_CODESIZE_H
