/**
 * @file
 * Signature encoding (the semantics of the instrumented test code,
 * paper Figure 4) and decoding (Algorithm 1).
 *
 * Encoding mirrors what the branch/add chains compute on the device:
 * after each load, the observed value is matched against the load's
 * candidate list; candidate i adds i x multiplier to the thread's
 * current signature word, and an unmatched value triggers the chain's
 * tail assertion (SignatureAssertError) — "obvious errors (e.g., a
 * program-order violation) can be caught instantly without running a
 * constraint-graph checking".
 *
 * Decoding inverts the weights word by word, walking each word's loads
 * from last to first: index = sig / multiplier; sig %= multiplier.
 */

#ifndef MTC_CORE_SIGNATURE_CODEC_H
#define MTC_CORE_SIGNATURE_CODEC_H

#include <cstdint>

#include "core/instr_plan.h"
#include "core/load_analysis.h"
#include "core/signature.h"
#include "support/error.h"
#include "testgen/execution.h"

namespace mtc
{

/** Why a signature failed to decode — the classification a
 * post-silicon harness needs to tell a flaky readout lane (one bad
 * word) from a wedged core (whole stream malformed). */
enum class DecodeFaultKind : std::uint8_t
{
    /** The word array has the wrong length for this test's plan. */
    WordCountMismatch,

    /** A word decoded a candidate index beyond the load's candidate
     * set (the word's high part was corrupted). */
    IndexOverflow,

    /** Non-zero residue after peeling every load's weight off a word
     * (the word's low part was corrupted). */
    ResidueOverflow,
};

/** Human-readable name of a DecodeFaultKind. */
const char *decodeFaultKindName(DecodeFaultKind kind);

/** A signature failed to decode (corrupt word or residue). Carries the
 * failure classification so callers can quarantine instead of abort:
 * which kind, which thread's stream, and which global word index. */
class SignatureDecodeError : public Error
{
  public:
    explicit SignatureDecodeError(const std::string &what_arg)
        : Error(what_arg)
    {}

    SignatureDecodeError(const std::string &what_arg,
                         DecodeFaultKind kind_arg, std::uint32_t tid,
                         std::uint32_t word_arg)
        : Error(what_arg), faultKind(kind_arg), faultTid(tid),
          faultWord(word_arg)
    {}

    DecodeFaultKind kind() const { return faultKind; }

    /** Thread whose stream failed (0 for WordCountMismatch). */
    std::uint32_t thread() const { return faultTid; }

    /** Global word index of the failure (0 for WordCountMismatch). */
    std::uint32_t word() const { return faultWord; }

  private:
    DecodeFaultKind faultKind = DecodeFaultKind::WordCountMismatch;
    std::uint32_t faultTid = 0;
    std::uint32_t faultWord = 0;
};

/** Encoding outcome plus the work the instrumented code performed. */
struct EncodeResult
{
    Signature signature;

    /**
     * Branch-chain comparisons executed (candidate index + 1 summed
     * over loads); input to the perturbation model of Figure 10.
     */
    std::uint64_t comparisons = 0;
};

/**
 * Per-unique-prefix decode memo: signature words are per-thread (a
 * thread's loads only ever weight that thread's own words), so two
 * unique signatures that share thread t's word slice decode thread t
 * identically. Campaigns revisit the same per-thread slices constantly
 * — uniqueness is of the whole signature tuple, and the per-thread
 * marginals are far smaller than their product — so memoizing
 * slice -> decoded-thread-values skips the div/mod peel loop for every
 * repeated slice.
 *
 * How much slices repeat is a property of the memory model: on
 * TSO-like programs hit rates run >90%, while weak-model reordering
 * can make nearly every slice unique — and there, hashing and
 * inserting slices that never recur costs more than decoding them.
 * Each per-thread table therefore watches its own hit rate over a
 * probation window and retires itself when memoization is a net loss
 * for its thread (retired lookups count as misses).
 *
 * The memo is bound to one program (keyed by fingerprint) and rebinds
 * automatically when a codec for a different program uses it. Only
 * slices that decoded cleanly (including the residue check) are
 * stored, so corrupt signatures throw identically on every decode.
 * Results are bit-identical with or without a memo.
 */
class DecodeMemo
{
  public:
    /** Thread-slice lookups that hit (cumulative across binds). */
    std::uint64_t hits() const { return hitCount; }

    /** Thread-slice lookups that missed and decoded in full. */
    std::uint64_t misses() const { return missCount; }

    /** Distinct thread slices currently cached. */
    std::uint64_t entries() const;

  private:
    friend class SignatureCodec;

    struct ThreadTable
    {
        std::uint32_t wordCount = 0; ///< slice width (words)
        std::uint32_t loadCount = 0; ///< decoded values per slice
        std::uint32_t mask = 0;      ///< slots.size() - 1 (pow2)
        std::uint32_t count = 0;     ///< live entries
        /**
         * Adaptive bail-out: slice sharing is a property of the
         * memory model — near-universal on TSO-like programs, but
         * weak-model reordering can make almost every slice unique,
         * where hashing + inserting costs more than just decoding.
         * Each table watches its own hit rate during a probation
         * window and retires itself (dead = true, storage released)
         * when memoization is a net loss for its thread.
         */
        bool dead = false;
        std::uint64_t lookups = 0;
        std::uint64_t tableHits = 0;
        /** Open-addressed buckets: entry index + 1, 0 = empty. */
        std::vector<std::uint32_t> slots;
        std::vector<std::uint64_t> hashes; ///< [entry]
        std::vector<std::uint64_t> words;  ///< [entry * wordCount]
        std::vector<std::uint32_t> values; ///< [entry * loadCount]
    };

    std::uint64_t boundFingerprint = 0;
    bool bound = false;
    std::uint64_t hitCount = 0;
    std::uint64_t missCount = 0;
    std::vector<ThreadTable> threads;
};

/** Encoder/decoder bound to one instrumented test. */
class SignatureCodec
{
  public:
    /** All three references must outlive the codec. */
    SignatureCodec(const TestProgram &program,
                   const LoadValueAnalysis &analysis,
                   const InstrumentationPlan &plan);

    /**
     * Compute the execution signature the instrumented test would have
     * produced for @p execution.
     *
     * @throws SignatureAssertError if a load observed a value outside
     *         its candidate set (the instrumented chain's assertion).
     */
    EncodeResult encode(const Execution &execution) const;

    /**
     * Like encode(), but writes into @p out, reusing its word buffer
     * (zero heap allocations once the buffer has reached the plan's
     * word count) — the per-iteration entry point of the hot path.
     */
    void encodeInto(const Execution &execution, EncodeResult &out) const;

    /**
     * Reconstruct the reads-from set (as an Execution value vector)
     * from @p signature — the paper's Algorithm 1, extended to
     * multi-word signatures.
     *
     * @throws SignatureDecodeError on malformed signatures.
     */
    Execution decode(const Signature &signature) const;

    /**
     * Like decode(), but writes into @p out using @p word_scratch as
     * the peeling buffer — both reused across calls, so decoding a
     * test's unique signatures is allocation-free in steady state.
     * With a @p memo, repeated per-thread word slices skip the peel
     * loop entirely (bit-identical results; the memo rebinds itself if
     * it was last used with a different program). @p out is
     * unspecified when this throws.
     */
    void decodeInto(const Signature &signature, Execution &out,
                    std::vector<std::uint64_t> &word_scratch,
                    DecodeMemo *memo = nullptr) const;

  private:
    /** Everything decode/encode touch per load, flattened out of the
     * plan/analysis object graph once at construction. */
    struct LoadMeta
    {
        std::uint32_t word = 0;        ///< global word index
        std::uint64_t multiplier = 1;  ///< weight multiplier
        std::uint32_t cardinality = 0; ///< candidate count
        std::uint32_t opIdx = 0;       ///< source op (diagnostics)
        const std::uint32_t *candidates = nullptr; ///< value array
    };

    void prepareMemo(DecodeMemo &memo) const;
    void memoInsert(DecodeMemo::ThreadTable &table, std::uint64_t hash,
                    const std::uint64_t *slice,
                    const std::uint32_t *ordinals,
                    const Execution &out) const;

    const TestProgram &prog;
    const LoadValueAnalysis &loadAnalysis;
    const InstrumentationPlan &plan;

    std::vector<LoadMeta> loadMeta; ///< [load ordinal]
    /** Load ordinals of each thread in program order. */
    std::vector<std::vector<std::uint32_t>> threadOrdinals;
};

} // namespace mtc

#endif // MTC_CORE_SIGNATURE_CODEC_H
