/**
 * @file
 * Signature encoding (the semantics of the instrumented test code,
 * paper Figure 4) and decoding (Algorithm 1).
 *
 * Encoding mirrors what the branch/add chains compute on the device:
 * after each load, the observed value is matched against the load's
 * candidate list; candidate i adds i x multiplier to the thread's
 * current signature word, and an unmatched value triggers the chain's
 * tail assertion (SignatureAssertError) — "obvious errors (e.g., a
 * program-order violation) can be caught instantly without running a
 * constraint-graph checking".
 *
 * Decoding inverts the weights word by word, walking each word's loads
 * from last to first: index = sig / multiplier; sig %= multiplier.
 */

#ifndef MTC_CORE_SIGNATURE_CODEC_H
#define MTC_CORE_SIGNATURE_CODEC_H

#include <cstdint>

#include "core/instr_plan.h"
#include "core/load_analysis.h"
#include "core/signature.h"
#include "support/error.h"
#include "testgen/execution.h"

namespace mtc
{

/** Why a signature failed to decode — the classification a
 * post-silicon harness needs to tell a flaky readout lane (one bad
 * word) from a wedged core (whole stream malformed). */
enum class DecodeFaultKind : std::uint8_t
{
    /** The word array has the wrong length for this test's plan. */
    WordCountMismatch,

    /** A word decoded a candidate index beyond the load's candidate
     * set (the word's high part was corrupted). */
    IndexOverflow,

    /** Non-zero residue after peeling every load's weight off a word
     * (the word's low part was corrupted). */
    ResidueOverflow,
};

/** Human-readable name of a DecodeFaultKind. */
const char *decodeFaultKindName(DecodeFaultKind kind);

/** A signature failed to decode (corrupt word or residue). Carries the
 * failure classification so callers can quarantine instead of abort:
 * which kind, which thread's stream, and which global word index. */
class SignatureDecodeError : public Error
{
  public:
    explicit SignatureDecodeError(const std::string &what_arg)
        : Error(what_arg)
    {}

    SignatureDecodeError(const std::string &what_arg,
                         DecodeFaultKind kind_arg, std::uint32_t tid,
                         std::uint32_t word_arg)
        : Error(what_arg), faultKind(kind_arg), faultTid(tid),
          faultWord(word_arg)
    {}

    DecodeFaultKind kind() const { return faultKind; }

    /** Thread whose stream failed (0 for WordCountMismatch). */
    std::uint32_t thread() const { return faultTid; }

    /** Global word index of the failure (0 for WordCountMismatch). */
    std::uint32_t word() const { return faultWord; }

  private:
    DecodeFaultKind faultKind = DecodeFaultKind::WordCountMismatch;
    std::uint32_t faultTid = 0;
    std::uint32_t faultWord = 0;
};

/** Encoding outcome plus the work the instrumented code performed. */
struct EncodeResult
{
    Signature signature;

    /**
     * Branch-chain comparisons executed (candidate index + 1 summed
     * over loads); input to the perturbation model of Figure 10.
     */
    std::uint64_t comparisons = 0;
};

/** Encoder/decoder bound to one instrumented test. */
class SignatureCodec
{
  public:
    /** All three references must outlive the codec. */
    SignatureCodec(const TestProgram &program,
                   const LoadValueAnalysis &analysis,
                   const InstrumentationPlan &plan);

    /**
     * Compute the execution signature the instrumented test would have
     * produced for @p execution.
     *
     * @throws SignatureAssertError if a load observed a value outside
     *         its candidate set (the instrumented chain's assertion).
     */
    EncodeResult encode(const Execution &execution) const;

    /**
     * Like encode(), but writes into @p out, reusing its word buffer
     * (zero heap allocations once the buffer has reached the plan's
     * word count) — the per-iteration entry point of the hot path.
     */
    void encodeInto(const Execution &execution, EncodeResult &out) const;

    /**
     * Reconstruct the reads-from set (as an Execution value vector)
     * from @p signature — the paper's Algorithm 1, extended to
     * multi-word signatures.
     *
     * @throws SignatureDecodeError on malformed signatures.
     */
    Execution decode(const Signature &signature) const;

    /**
     * Like decode(), but writes into @p out using @p word_scratch as
     * the peeling buffer — both reused across calls, so decoding a
     * test's unique signatures is allocation-free in steady state.
     * @p out is unspecified when this throws.
     */
    void decodeInto(const Signature &signature, Execution &out,
                    std::vector<std::uint64_t> &word_scratch) const;

  private:
    const TestProgram &prog;
    const LoadValueAnalysis &loadAnalysis;
    const InstrumentationPlan &plan;
};

} // namespace mtc

#endif // MTC_CORE_SIGNATURE_CODEC_H
