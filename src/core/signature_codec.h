/**
 * @file
 * Signature encoding (the semantics of the instrumented test code,
 * paper Figure 4) and decoding (Algorithm 1).
 *
 * Encoding mirrors what the branch/add chains compute on the device:
 * after each load, the observed value is matched against the load's
 * candidate list; candidate i adds i x multiplier to the thread's
 * current signature word, and an unmatched value triggers the chain's
 * tail assertion (SignatureAssertError) — "obvious errors (e.g., a
 * program-order violation) can be caught instantly without running a
 * constraint-graph checking".
 *
 * Decoding inverts the weights word by word, walking each word's loads
 * from last to first: index = sig / multiplier; sig %= multiplier.
 */

#ifndef MTC_CORE_SIGNATURE_CODEC_H
#define MTC_CORE_SIGNATURE_CODEC_H

#include <cstdint>

#include "core/instr_plan.h"
#include "core/load_analysis.h"
#include "core/signature.h"
#include "support/error.h"
#include "testgen/execution.h"

namespace mtc
{

/** Why a signature failed to decode — the classification a
 * post-silicon harness needs to tell a flaky readout lane (one bad
 * word) from a wedged core (whole stream malformed). */
enum class DecodeFaultKind : std::uint8_t
{
    /** The word array has the wrong length for this test's plan. */
    WordCountMismatch,

    /** A word decoded a candidate index beyond the load's candidate
     * set (the word's high part was corrupted). */
    IndexOverflow,

    /** Non-zero residue after peeling every load's weight off a word
     * (the word's low part was corrupted). */
    ResidueOverflow,
};

/** Human-readable name of a DecodeFaultKind. */
const char *decodeFaultKindName(DecodeFaultKind kind);

/** A signature failed to decode (corrupt word or residue). Carries the
 * failure classification so callers can quarantine instead of abort:
 * which kind, which thread's stream, and which global word index. */
class SignatureDecodeError : public Error
{
  public:
    explicit SignatureDecodeError(const std::string &what_arg)
        : Error(what_arg)
    {}

    SignatureDecodeError(const std::string &what_arg,
                         DecodeFaultKind kind_arg, std::uint32_t tid,
                         std::uint32_t word_arg)
        : Error(what_arg), faultKind(kind_arg), faultTid(tid),
          faultWord(word_arg)
    {}

    DecodeFaultKind kind() const { return faultKind; }

    /** Thread whose stream failed (0 for WordCountMismatch). */
    std::uint32_t thread() const { return faultTid; }

    /** Global word index of the failure (0 for WordCountMismatch). */
    std::uint32_t word() const { return faultWord; }

  private:
    DecodeFaultKind faultKind = DecodeFaultKind::WordCountMismatch;
    std::uint32_t faultTid = 0;
    std::uint32_t faultWord = 0;
};

/** Encoding outcome plus the work the instrumented code performed. */
struct EncodeResult
{
    Signature signature;

    /**
     * Branch-chain comparisons executed (candidate index + 1 summed
     * over loads); input to the perturbation model of Figure 10.
     */
    std::uint64_t comparisons = 0;
};

/** Encoder/decoder bound to one instrumented test. */
class SignatureCodec
{
  public:
    /** All three references must outlive the codec. */
    SignatureCodec(const TestProgram &program,
                   const LoadValueAnalysis &analysis,
                   const InstrumentationPlan &plan);

    /**
     * Compute the execution signature the instrumented test would have
     * produced for @p execution.
     *
     * @throws SignatureAssertError if a load observed a value outside
     *         its candidate set (the instrumented chain's assertion).
     */
    EncodeResult encode(const Execution &execution) const;

    /**
     * Like encode(), but writes into @p out, reusing its word buffer
     * (zero heap allocations once the buffer has reached the plan's
     * word count) — the per-iteration entry point of the hot path.
     */
    void encodeInto(const Execution &execution, EncodeResult &out) const;

    /**
     * Reconstruct the reads-from set (as an Execution value vector)
     * from @p signature — the paper's Algorithm 1, extended to
     * multi-word signatures.
     *
     * @throws SignatureDecodeError on malformed signatures.
     */
    Execution decode(const Signature &signature) const;

    /**
     * Like decode(), but writes into @p out using @p word_scratch as
     * the peeling buffer — both reused across calls, so decoding a
     * test's unique signatures is allocation-free in steady state.
     * @p out is unspecified when this throws.
     */
    void decodeInto(const Signature &signature, Execution &out,
                    std::vector<std::uint64_t> &word_scratch) const;

  private:
    friend class StreamDecoder;

    /** Everything decode/encode touch per load, flattened out of the
     * plan/analysis object graph once at construction. */
    struct LoadMeta
    {
        std::uint32_t word = 0;        ///< global word index
        std::uint64_t multiplier = 1;  ///< weight multiplier
        std::uint32_t cardinality = 0; ///< candidate count
        std::uint32_t opIdx = 0;       ///< source op (diagnostics)
        const std::uint32_t *candidates = nullptr; ///< value array
    };

    /**
     * Peel one thread's word slice into @p out.loadValues (Algorithm 1
     * for a single thread). Throws SignatureDecodeError exactly as the
     * corresponding slice of decodeInto() would; @p out's values for
     * this thread are unspecified when it throws.
     */
    void decodeThreadSlice(std::uint32_t tid,
                           const std::uint64_t *slice, Execution &out,
                           std::vector<std::uint64_t> &word_scratch)
        const;

    const TestProgram &prog;
    const LoadValueAnalysis &loadAnalysis;
    const InstrumentationPlan &plan;

    std::vector<LoadMeta> loadMeta; ///< [load ordinal]
    /** Load ordinals of each thread in program order. */
    std::vector<std::vector<std::uint32_t>> threadOrdinals;
};

/**
 * Delta decoder over an ascending signature stream (the collective
 * checker's sorted unique sequence). Signature words are per-thread —
 * a thread's loads only ever weight that thread's own words — so when
 * adjacent sorted signatures share thread t's word slice, thread t
 * decodes identically and the previously decoded values are reused in
 * place. Sorting concentrates differences in the trailing threads, so
 * in practice most slices of most signatures are reused.
 *
 * Unlike the retired per-slice decode memo this never hashes or
 * stores anything beyond the previous signature, so it wins on
 * weak-model streams too: the probe is one word-compare per thread
 * slice against the immediately preceding signature.
 *
 * Fault behavior matches full decode exactly: a corrupt slice throws
 * the same SignatureDecodeError (kind, thread, word, message) as
 * decodeInto(), because identical words peel identically and a reused
 * slice is by definition one that previously decoded cleanly. After a
 * throw the decoder stays usable — the failed thread's slice is
 * re-decoded from scratch on the next call, and execution() must not
 * be read until the next successful next().
 */
class StreamDecoder
{
  public:
    /** @p codec_arg must outlive the decoder. */
    explicit StreamDecoder(const SignatureCodec &codec_arg);

    /**
     * Decode @p signature, reusing per-thread slices unchanged since
     * the previous call. Returns the decoded execution, valid until
     * the next call.
     *
     * @throws SignatureDecodeError exactly as decodeInto() would.
     */
    const Execution &next(const Signature &signature);

    /**
     * Threads whose decoded values may differ from the previous
     * *successful* next() (ascending tid order). A sound superset:
     * every thread re-decoded since then is listed, including threads
     * touched by intervening failed calls, even if its values came
     * out equal.
     */
    const std::vector<std::uint32_t> &changedThreads() const
    {
        return changed;
    }

    /** Per-thread slices reused verbatim from the previous signature. */
    std::uint64_t slicesReused() const { return reused; }

    /** Per-thread slices that went through the full peel loop. */
    std::uint64_t slicesDecoded() const { return decodedSlices; }

  private:
    const SignatureCodec &codec;
    Execution exec;
    std::vector<std::uint64_t> word_scratch;
    std::vector<std::uint64_t> prevWords; ///< last decoded words
    std::vector<std::uint8_t> sliceValid; ///< [tid] prevWords live
    std::vector<std::uint8_t> dirty; ///< [tid] decoded since last success
    std::vector<std::uint32_t> changed;
    std::uint64_t reused = 0;
    std::uint64_t decodedSlices = 0;
};

} // namespace mtc

#endif // MTC_CORE_SIGNATURE_CODEC_H
