/**
 * @file
 * Instrumentation plan: weight assignment and signature-word layout
 * (paper Sections 3.1-3.2, steps 2-3 of Figure 3).
 *
 * For each thread, loads are visited in program order. A load whose
 * candidate set has cardinality c contributes weights {0, m, 2m, ...,
 * (c-1)m} where m is the running multiplier; the multiplier then
 * becomes m*c. When m*c would exceed the target register's capacity,
 * the plan "adds another register ... and starts over the signature
 * computation in the new register, resetting the weight multipliers"
 * — a new signature word. This guarantees the weight encoding is a
 * bijection between signature values and candidate-index tuples,
 * which is what makes Algorithm-1 decoding exact.
 */

#ifndef MTC_CORE_INSTR_PLAN_H
#define MTC_CORE_INSTR_PLAN_H

#include <cstdint>
#include <vector>

#include "core/load_analysis.h"
#include "mcm/isa.h"
#include "testgen/test_program.h"

namespace mtc
{

/** Placement of one load's weight within the signature. */
struct LoadSlot
{
    /** Word (register) index within the load's thread. */
    std::uint32_t wordIndex = 0;

    /** Weight multiplier: observed candidate index i adds i*mult. */
    std::uint64_t multiplier = 1;
};

/** Complete signature layout for one instrumented test. */
class InstrumentationPlan
{
  public:
    /**
     * Build the plan.
     *
     * @param program  The test under instrumentation.
     * @param analysis Its load-candidate tables.
     * @param word_bits Signature register width: 64 (x86-64) or 32
     *                 (ARMv7); defaults from the program's ISA.
     */
    InstrumentationPlan(const TestProgram &program,
                        const LoadValueAnalysis &analysis,
                        unsigned word_bits = 0);

    /** Slot for a load (indexed by TestProgram load ordinal). */
    const LoadSlot &
    slot(std::uint32_t load_ordinal) const
    {
        return slots.at(load_ordinal);
    }

    /** Signature words thread @p tid produces. */
    std::uint32_t
    wordsForThread(std::uint32_t tid) const
    {
        return wordsPerThread.at(tid);
    }

    /** First word index of thread @p tid within the execution
     * signature (prefix sum of wordsForThread). */
    std::uint32_t
    wordBase(std::uint32_t tid) const
    {
        return wordBases.at(tid);
    }

    /** Total words in an execution signature. */
    std::uint32_t totalWords() const { return total; }

    /** Signature register width in bits (32 or 64). */
    unsigned wordBits() const { return bits; }

    /** Execution-signature size in bytes (paper Figure 11 annotation):
     * total words times the register byte width. */
    std::uint64_t
    signatureBytes() const
    {
        return static_cast<std::uint64_t>(total) * (bits / 8);
    }

    /**
     * Theoretical per-thread signature cardinality estimate from the
     * paper's Section 3.2 formula, {1 + S/A*(T-1)}^L, for comparison
     * against the exact plan.
     */
    static double estimateCardinality(const TestConfig &cfg);

  private:
    std::vector<LoadSlot> slots;
    std::vector<std::uint32_t> wordsPerThread;
    std::vector<std::uint32_t> wordBases;
    std::uint32_t total = 0;
    unsigned bits = 64;
};

} // namespace mtc

#endif // MTC_CORE_INSTR_PLAN_H
