/**
 * @file
 * Execution-overhead (perturbation) model for Figure 10.
 *
 * The paper breaks bare-metal test time into (1) the original test,
 * (2) the signature-computation code, and (3) signature sorting.
 * Component (2)'s cost is dominated by branch behaviour: "with branch
 * predictors in place, MTraceCheck only slightly increases test
 * execution time" when few distinct interleavings occur (the chains
 * are perfectly predicted), but diverse interleavings make the added
 * branches mispredict.
 *
 * We model a per-load last-outcome branch predictor across iterations:
 * every executed chain comparison costs a cycle, and a load whose
 * observed candidate index differs from the previous iteration's pays
 * a misprediction penalty. Signature sorting is costed from the
 * comparison count of a balanced-BST insert, which the harness models
 * analytically per recorded iteration (floor(log2(unique)) + 1
 * comparisons against the uniques seen so far) — the device keeps a
 * sorted structure even though the host-side accumulator is a hash
 * table.
 */

#ifndef MTC_CORE_PERTURBATION_H
#define MTC_CORE_PERTURBATION_H

#include <cstdint>
#include <vector>

#include "core/load_analysis.h"
#include "core/signature_codec.h"
#include "testgen/execution.h"

namespace mtc
{

/** Cycle costs of the perturbation model. */
struct PerturbationParams
{
    std::uint64_t cyclesPerComparison = 1;  ///< cmp+branch, predicted
    std::uint64_t mispredictPenalty = 14;   ///< pipeline refill
    std::uint64_t cyclesPerSortCompare = 8; ///< BST node visit
    std::uint64_t wordStoreCycles = 4;      ///< flush one sig word
};

/** Accumulates the Figure-10 time components across iterations. */
class PerturbationModel
{
  public:
    PerturbationModel(const TestProgram &program,
                      const LoadValueAnalysis &analysis,
                      PerturbationParams params = {});

    /**
     * Account one iteration: the platform-reported original duration
     * plus the instrumented chains' dynamic cost for @p execution.
     */
    void record(const Execution &execution, const EncodeResult &encoded,
                std::uint32_t signature_words);

    /** Account signature-sorting work (BST comparisons) once known. */
    void recordSortComparisons(std::uint64_t comparisons);

    std::uint64_t originalCycles() const { return original; }
    std::uint64_t signatureComputationCycles() const { return compute; }
    std::uint64_t signatureSortingCycles() const { return sorting; }

    /** Fraction of original time spent computing signatures. */
    double computationOverhead() const;

    /** Fraction of original time spent sorting signatures. */
    double sortingOverhead() const;

  private:
    const TestProgram &prog;
    const LoadValueAnalysis &loadAnalysis;
    PerturbationParams params;

    /** Previous iteration's candidate index per load (predictor). */
    std::vector<std::int64_t> lastIndex;

    std::uint64_t original = 0;
    std::uint64_t compute = 0;
    std::uint64_t sorting = 0;
};

} // namespace mtc

#endif // MTC_CORE_PERTURBATION_H
