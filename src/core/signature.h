/**
 * @file
 * Memory-access-interleaving signature value type (paper Section 3).
 *
 * An execution signature is the concatenation of per-thread signature
 * words: thread 0's words first (most significant position), and
 * within a thread the first word most significant — exactly the data
 * layout the paper selects in Section 4.1 so that numerically adjacent
 * signatures decode to structurally similar constraint graphs. Words
 * are stored in std::uint64_t regardless of the target register width;
 * on 32-bit ISAs only the low 32 bits are ever populated.
 */

#ifndef MTC_CORE_SIGNATURE_H
#define MTC_CORE_SIGNATURE_H

#include <compare>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mtc
{

/** Execution signature: ordered signature words (see file comment). */
struct Signature
{
    std::vector<std::uint64_t> words;

    /**
     * Lexicographic comparison; since all signatures of one test have
     * the same word count, this realizes the paper's "sort execution
     * signatures in ascending order".
     */
    auto operator<=>(const Signature &) const = default;

    /** Hex rendering for reports, e.g.\ "0x20:0x84". */
    std::string toString() const;
};

/** FNV-1a style hash so signatures can key unordered containers. */
struct SignatureHash
{
    std::size_t
    operator()(const Signature &sig) const
    {
        std::size_t h = 1469598103934665603ull;
        for (std::uint64_t word : sig.words) {
            h ^= std::hash<std::uint64_t>{}(word);
            h *= 1099511628211ull;
        }
        return h;
    }
};

} // namespace mtc

#endif // MTC_CORE_SIGNATURE_H
