#include "core/load_analysis.h"

#include <unordered_map>

#include "support/error.h"

namespace mtc
{

LoadValueAnalysis::LoadValueAnalysis(const TestProgram &program,
                                     AnalysisOptions options)
{
    sets.resize(program.loads().size());

    // Precompute, per location, how many later same-thread stores to
    // the same location follow each store (for the pruning option).
    const std::uint32_t num_locs = program.config().numLocations;
    std::vector<std::unordered_map<std::uint64_t, std::uint32_t>>
        overwrite_rank(num_locs);
    if (options.pruneWindow > 0) {
        for (std::uint32_t loc = 0; loc < num_locs; ++loc) {
            const auto &stores = program.storesTo(loc);
            // storesTo is (tid, idx)-ordered: count per thread from the
            // back.
            for (std::size_t i = stores.size(); i-- > 0;) {
                std::uint32_t later = 0;
                for (std::size_t j = i + 1; j < stores.size(); ++j) {
                    if (stores[j].tid != stores[i].tid)
                        break;
                    ++later;
                }
                overwrite_rank[loc][(std::uint64_t(stores[i].tid) << 32) |
                                    stores[i].idx] = later;
            }
        }
    }

    const auto &threads = program.threadBodies();
    for (std::uint32_t tid = 0; tid < threads.size(); ++tid) {
        // Track the last own store per location while walking the
        // thread in program order.
        std::vector<std::uint32_t> last_own(num_locs, kInitValue);
        for (std::uint32_t idx = 0; idx < threads[tid].size(); ++idx) {
            const MemOp &mem_op = threads[tid][idx];
            if (mem_op.kind == OpKind::Store) {
                last_own[mem_op.loc] = mem_op.value;
                continue;
            }
            if (mem_op.kind != OpKind::Load)
                continue;

            LoadCandidateSet set;
            set.values.push_back(last_own[mem_op.loc]);
            for (OpId store : program.storesTo(mem_op.loc)) {
                if (store.tid == tid)
                    continue;
                if (options.pruneWindow > 0) {
                    const auto it = overwrite_rank[mem_op.loc].find(
                        (std::uint64_t(store.tid) << 32) | store.idx);
                    if (it != overwrite_rank[mem_op.loc].end() &&
                        it->second >= options.pruneWindow) {
                        continue; // dead past any realistic LSQ depth
                    }
                }
                set.values.push_back(program.op(store).value);
            }

            const std::uint32_t ordinal =
                program.loadOrdinal(OpId{tid, idx});
            total += set.values.size();
            sets[ordinal] = std::move(set);
        }
    }
}

} // namespace mtc
