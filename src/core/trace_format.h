/**
 * @file
 * Versioned trace interchange format for offline checking.
 *
 * A trace file decouples signature collection from signature checking:
 * a campaign (or, eventually, real silicon plus a log converter) dumps
 * one header record followed by per-test signature-stream records, and
 * `mtc_check` replays the streaming collective checker over them later,
 * on another machine, against the same deterministic verdicts. The file
 * reuses the length + FNV-1a frame codec (src/support/framing.h), so a
 * trace shares the journal's recovery discipline: the reader keeps the
 * longest prefix of intact frames and classifies everything else.
 *
 * Layout: every frame payload is `[u8 record kind][body bytes]`. The
 * first record must be a header (kind 1) carrying the format version,
 * a fingerprint of every result-determining campaign knob, and the
 * opaque producer spec blob from which the consumer re-derives test
 * programs. Record kinds this build does not know are skipped, not
 * rejected — a newer producer may append new record kinds without
 * breaking old consumers, as long as the format version matches.
 *
 * Threat model: trace files are integrity-checked, not authenticated.
 * Frame checksums and the header fingerprint catch disk rot, torn
 * writes, version skew, and accidental file mix-ups; they do not
 * defend against an adversary who can rewrite the file and recompute
 * its checksums. (Authenticated transport exists at the fabric layer;
 * files at rest inherit whatever trust their storage grants them.)
 * What this layer does guarantee, even for adversarial bytes, is
 * bounded behavior: every decoder bounds its allocations by the bytes
 * actually present and every failure is a classified TraceError —
 * never a crash, a hang, or an unbounded allocation.
 */

#ifndef MTC_CORE_TRACE_FORMAT_H
#define MTC_CORE_TRACE_FORMAT_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/journal.h"

namespace mtc
{

/** Classification of a trace-file ingestion failure. */
enum class TraceFaultKind : std::uint8_t
{
    Truncated,           ///< file/record ends before its declared content
    Corrupt,             ///< structurally invalid bytes (bad magic, tag, field)
    VersionSkew,         ///< produced by an incompatible format version
    FingerprintMismatch, ///< content disagrees with its recorded digest
};

/** Stable lower-case name for reports ("truncated", ...). */
const char *traceFaultName(TraceFaultKind kind);

/** A classified trace-file ingestion failure. */
class TraceError : public Error
{
  public:
    TraceError(TraceFaultKind kind_arg, const std::string &what_arg)
        : Error(what_arg), faultKind(kind_arg)
    {}

    TraceFaultKind kind() const { return faultKind; }

  private:
    TraceFaultKind faultKind;
};

/** Trace record kinds (first payload byte of every frame). */
constexpr std::uint8_t kTraceHeaderTag = 1;     ///< campaign fingerprint + spec
constexpr std::uint8_t kTraceUnitTag = 2;       ///< one unit's signature stream
constexpr std::uint8_t kTraceCheckpointTag = 3; ///< checker progress marker

/** Header magic, "MTCT" — rejects non-trace files immediately. */
constexpr std::uint32_t kTraceMagic = 0x4D544354;

/** Format version; bump on any incompatible layout change. */
constexpr std::uint32_t kTraceVersion = 1;

/**
 * First record of every trace: fingerprints every result-determining
 * knob so a consumer can refuse to check a trace against the wrong
 * campaign, and carries the opaque producer spec from which programs
 * and plans are re-derived (the harness owns that blob's codec).
 */
struct TraceHeader
{
    std::uint32_t version = kTraceVersion;

    /** Digest of the result-determining campaign identity (the same
     * fold the journal uses); recomputed from @ref spec on ingest and
     * a mismatch is classified FingerprintMismatch. */
    std::uint64_t identityDigest = 0;

    /** Human-readable identity ("seed=... iterations=..."). */
    std::string description;

    /** Opaque producer blob (an encoded CampaignSpec for campaign
     * traces; a binding digest for checkpoint files). */
    std::vector<std::uint8_t> spec;
};

/** Encode @p header as a header-record payload (kind byte included). */
std::vector<std::uint8_t> encodeTraceHeader(const TraceHeader &header);

/**
 * Decode a header-record body (kind byte already stripped).
 * @throws TraceError classified Truncated / Corrupt / VersionSkew.
 */
TraceHeader decodeTraceHeader(const std::vector<std::uint8_t> &body);

/**
 * Checker progress marker: one per unit verified by `mtc_check`, so a
 * killed check resumes without redoing finished work. The digest binds
 * the verdict to the exact unit-record bytes it covers — a checkpoint
 * replayed against an edited trace re-checks instead of trusting a
 * stale verdict.
 */
struct TraceCheckpointRecord
{
    std::string configName;
    std::uint32_t testIndex = 0;

    /** FNV-1a64 of the covered unit record's body bytes. */
    std::uint64_t payloadDigest = 0;

    /** 0 = verified clean; 1 = quarantined (see @ref note). */
    std::uint8_t quarantined = 0;

    /** Classification note for quarantined units. */
    std::string note;
};

/** Encode @p record as a checkpoint-record body (no kind byte:
 * TraceWriter::append() owns the tag, as for unit records). */
std::vector<std::uint8_t>
encodeTraceCheckpoint(const TraceCheckpointRecord &record);

/**
 * Decode a checkpoint-record body (kind byte already stripped).
 * @throws TraceError classified Truncated / Corrupt.
 */
TraceCheckpointRecord
decodeTraceCheckpoint(const std::vector<std::uint8_t> &body);

/**
 * Append-only trace writer (batched-fsync journal underneath).
 *
 * The two-constructor split mirrors the two producer situations: a
 * fresh dump truncates whatever was at @p path and stamps the header;
 * a resumed checkpoint writer appends behind an existing valid prefix
 * the caller has already read and truncated.
 */
class TraceWriter
{
  public:
    /** Start a fresh trace at @p path: truncate, write @p header.
     * @throws JournalError on I/O failure. */
    TraceWriter(const std::string &path, const TraceHeader &header,
                unsigned fsync_every = 8);

    /** Append to an existing trace; no header is written. The caller
     * must have validated the file (readTraceFile) and truncated any
     * torn tail (truncateToValidPrefix) first. */
    explicit TraceWriter(const std::string &path,
                         unsigned fsync_every = 8);

    /** Append one record of @p kind. @throws JournalError on I/O. */
    void append(std::uint8_t kind, const std::vector<std::uint8_t> &body);

    /** Force an fsync (end-of-dump barrier). */
    void sync();

  private:
    JournalWriter writer;
};

/** One non-header record of a trace file. */
struct TraceRecord
{
    std::uint8_t kind = 0;
    std::vector<std::uint8_t> body; ///< payload minus the kind byte
};

/** A read-and-recovered trace file. */
struct TraceFile
{
    TraceHeader header;

    /** Records of known kinds, in file order. */
    std::vector<TraceRecord> records;

    /** Byte length of the intact frame prefix. */
    std::uint64_t validBytes = 0;

    /** Bytes dropped behind the last intact frame (torn tail). */
    std::uint64_t droppedBytes = 0;

    /** Records of unknown kinds skipped for forward compatibility. */
    std::uint64_t unknownSkipped = 0;

    /** Intact frames whose payload was empty (no kind byte) — a
     * producer bug or forged file, never emitted by this writer. */
    std::uint64_t malformedRecords = 0;
};

/**
 * Read @p path, recover to the longest intact frame prefix, and
 * perform the header handshake.
 *
 * A torn tail — the expected product of a producer killed mid-dump —
 * is recovered, not thrown: intact records before the tear are
 * returned and @ref TraceFile::droppedBytes reports the loss, so the
 * caller can check the longest intact prefix and decide (strict vs
 * degraded) whether partial coverage is acceptable.
 *
 * @throws TraceError Truncated for a missing/empty file, Corrupt when
 *         the first record is not a well-formed header, VersionSkew on
 *         a format-version mismatch.
 */
TraceFile readTraceFile(const std::string &path);

} // namespace mtc

#endif // MTC_CORE_TRACE_FORMAT_H
