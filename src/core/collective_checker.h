/**
 * @file
 * Collective constraint-graph checking (the paper's Section 4).
 *
 * Executions are presented in ascending signature order; adjacent
 * signatures decode to graphs that differ in few observed edges. The
 * checker maintains the current graph's dynamic edge set and a valid
 * topological order, and for each next graph:
 *
 *  1. diffs the sorted dynamic edge lists (added / removed edges);
 *  2. classifies added edges against the current topological
 *     positions — if none is backward, the order is still valid and
 *     re-sorting is skipped entirely;
 *  3. otherwise computes the leading boundary (smallest position
 *     adjacent to a new backward edge) and trailing boundary (largest
 *     such position) and re-sorts only the vertices between them,
 *     writing the new sub-order back into the same position slots
 *     (Figure 7). Failure to sort the window proves a cycle, i.e. an
 *     MCM violation for that signature.
 *
 * Removed and forward edges never invalidate the order (they only
 * release constraints), so they are applied without sorting. After a
 * violating graph no valid order exists; the next graph is checked
 * with one complete sort (counted in the stats as such).
 */

#ifndef MTC_CORE_COLLECTIVE_CHECKER_H
#define MTC_CORE_COLLECTIVE_CHECKER_H

#include <cstdint>
#include <vector>

#include "graph/graph_builder.h"
#include "mcm/memory_model.h"
#include "support/stats.h"
#include "testgen/test_program.h"

namespace mtc
{

/** Work/result accounting of a collective batch check (Figure 14). */
struct CollectiveStats
{
    std::uint64_t graphsChecked = 0;
    std::uint64_t violations = 0;

    /** Graphs checked with a complete sort (the first one, plus
     * recovery sorts after violating graphs, plus one per shard when
     * the batch is sharded — the paper's parallelization tax). */
    std::uint64_t completeSorts = 0;

    /** Graphs whose added edges were all forward: no re-sorting. */
    std::uint64_t noResortNeeded = 0;

    /** Graphs checked by windowed incremental re-sorting. */
    std::uint64_t incrementalResorts = 0;

    /** Fraction of vertices inside the re-sort window, per
     * incremental graph (Figure 14's line plot). */
    RunningStat affectedFraction;

    std::uint64_t verticesProcessed = 0;
    std::uint64_t edgesProcessed = 0;

    /** Fold another batch's accounting into this one. Counters add and
     * the affected-fraction accumulator merges, so sharded checking
     * reports exactly the work its shards performed. */
    void merge(const CollectiveStats &other);
};

/**
 * Collective checker bound to one test program. Stateful: feed it the
 * unique executions' edge sets in ascending-signature order.
 */
class CollectiveChecker
{
  public:
    CollectiveChecker(const TestProgram &program, MemoryModel model);

    /**
     * Check the next graph in signature order.
     * @return true iff this execution violates the MCM.
     */
    bool checkNext(const DynamicEdgeSet &edges);

    /**
     * Check the next graph presented as a sorted edge diff versus the
     * previously checked graph (the streaming pipeline's entry
     * point): removed must be a subset of the current edge set, added
     * disjoint from it, both sorted by (from, to). Verdicts, stats,
     * and the maintained order are bit-identical to checkNext() with
     * the corresponding full list — the diff is applied in the same
     * merged key order, so even the successor-list layout (which
     * biases Kahn tie-breaking) matches. Do not mix with checkNext()
     * on one checker without reset(): this variant does not maintain
     * the full-list mirror checkNext() diffs against.
     */
    bool checkNextDiff(const EdgeDiff &diff);

    /** Check a whole ordered batch; verdict per edge set. */
    std::vector<bool> check(const std::vector<DynamicEdgeSet> &ordered);

    /** As above over a borrowed contiguous range (sharded checking
     * slices one batch without copying edge sets). */
    std::vector<bool> check(const DynamicEdgeSet *ordered,
                            std::size_t count);

    /**
     * Forget all dynamic edges, the maintained order, and the
     * accounting, keeping buffer capacities — the streaming shard
     * boundary: merge stats() into the campaign totals first, then
     * reset and feed the boundary signature's full edge set as an
     * added-only diff.
     */
    void reset();

    const CollectiveStats &stats() const { return stat; }

  private:
    bool fullSort();
    bool windowedResort(std::uint32_t lead, std::uint32_t trail);

    /** Apply the edge-list diff to the dynamic adjacency and return
     * the added edges (valid until the next call). */
    const std::vector<Edge> &applyDiff(const std::vector<Edge> &next);

    /** Apply pre-diffed removed/added lists in merged key order. */
    void applyDiffLists(const std::vector<Edge> &removed,
                        const std::vector<Edge> &added);

    /** Shared tail of checkNext()/checkNextDiff(): sort recovery,
     * added-edge classification, windowed re-sort, accounting. */
    bool finishCheck(const std::vector<Edge> &added,
                     bool coherence_violation);

    const TestProgram &prog;
    std::uint32_t numVertices;

    std::vector<bool> isLoad; ///< store-priority sort heuristic

    /** Static (program-order) adjacency in CSR layout: the successor
     * list of vertex v is staticNbr[staticOff[v] .. staticOff[v+1]).
     * The static graph is immutable after construction, and both sort
     * kernels walk it for every processed vertex, so one flat array
     * beats a vector-of-vectors' double indirection on the hot path. */
    std::vector<std::uint32_t> staticOff;
    std::vector<std::uint32_t> staticNbr;

    std::vector<std::vector<std::uint32_t>> dynAdj;
    std::vector<Edge> currentEdges; ///< sorted dynamic edge list

    std::vector<std::uint32_t> orderArr; ///< position -> vertex
    std::vector<std::uint32_t> pos;      ///< vertex -> position
    bool orderValid = false;

    // Scratch buffers for the windowed sort (epoch-stamped membership
    // avoids O(V) clears per window).
    std::vector<std::uint32_t> windowEpoch;
    std::vector<std::uint32_t> windowIndeg;
    std::uint32_t epoch = 0;

    // Hoisted sort/diff scratch: the check phase of a warmed checker
    // touches no allocator (asserted by the hotpath steady-state
    // tests).
    std::vector<std::uint32_t> fullIndeg;
    std::vector<std::uint32_t> storeQueue;
    std::vector<std::uint32_t> loadQueue;
    std::vector<std::uint32_t> orderScratch;
    std::vector<std::uint32_t> windowQueue;
    std::vector<std::uint32_t> windowSubOrder;
    std::vector<Edge> addedScratch;

    CollectiveStats stat;
};

class ThreadPool;

/**
 * Check an ordered batch with the unique-signature sequence cut into
 * contiguous shards of @p shard_size edge sets, one CollectiveChecker
 * per shard, run concurrently on @p pool (serially when @p pool is
 * null). Each shard starts without a maintained order and therefore
 * pays one extra complete sort — exactly the tradeoff the paper's
 * parallelization note predicts — but shards share no state, so the
 * verdicts are identical to an unsharded check and the merged stats
 * are identical for a given shard size at any worker count.
 *
 * @p shard_size 0 (or >= the batch) degenerates to one unsharded
 * checker. Verdicts are returned in batch order; @p stats receives the
 * merged accounting of all shards.
 */
std::vector<bool> checkCollectiveSharded(
    const TestProgram &program, MemoryModel model,
    const std::vector<DynamicEdgeSet> &ordered, std::size_t shard_size,
    ThreadPool *pool, CollectiveStats &stats);

} // namespace mtc

#endif // MTC_CORE_COLLECTIVE_CHECKER_H
