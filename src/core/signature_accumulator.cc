#include "core/signature_accumulator.h"

#include <algorithm>

namespace mtc
{

namespace
{

constexpr std::size_t kInitialSlots = 64; // power of two

} // anonymous namespace

SignatureAccumulator::SignatureAccumulator()
    : slots(kInitialSlots, 0), mask(kInitialSlots - 1)
{
}

bool
SignatureAccumulator::record(const Signature &signature,
                             std::uint64_t copies)
{
    const std::uint64_t hash = SignatureHash{}(signature);
    std::size_t probe = hash & mask;
    while (slots[probe]) {
        const std::uint32_t idx = slots[probe] - 1;
        if (hashes[idx] == hash &&
            arena[idx].signature == signature) {
            arena[idx].iterations += copies;
            return false;
        }
        probe = (probe + 1) & mask;
    }

    arena.push_back({signature, copies});
    hashes.push_back(hash);
    slots[probe] = static_cast<std::uint32_t>(arena.size());
    // Keep the load factor below 0.7 so probe runs stay short.
    if (arena.size() * 10 >= slots.size() * 7)
        grow();
    return true;
}

void
SignatureAccumulator::grow()
{
    const std::size_t new_size = slots.size() * 2;
    slots.assign(new_size, 0);
    mask = new_size - 1;
    for (std::size_t idx = 0; idx < arena.size(); ++idx) {
        std::size_t probe = hashes[idx] & mask;
        while (slots[probe])
            probe = (probe + 1) & mask;
        slots[probe] = static_cast<std::uint32_t>(idx + 1);
    }
}

std::vector<SignatureCount>
SignatureAccumulator::takeSortedUnique()
{
    std::vector<SignatureCount> result = std::move(arena);
    arena.clear();
    hashes.clear();
    slots.assign(kInitialSlots, 0);
    mask = kInitialSlots - 1;
    std::sort(result.begin(), result.end(),
              [](const SignatureCount &a, const SignatureCount &b) {
                  return a.signature < b.signature;
              });
    return result;
}

} // namespace mtc
