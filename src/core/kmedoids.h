/**
 * @file
 * k-medoids clustering of executions by reads-from distance
 * (the paper's Section 4.1 limit study, Figure 6).
 *
 * The study asks: could a handful of representative graphs stand in
 * for the whole set? Distance between executions is the number of
 * differing reads-from relationships. We implement PAM-style
 * clustering (greedy initialization + swap descent); the paper cites
 * the classic k-medoids formulation and notes its computational cost
 * is what disqualifies it as a practical checker component.
 */

#ifndef MTC_CORE_KMEDOIDS_H
#define MTC_CORE_KMEDOIDS_H

#include <cstdint>
#include <vector>

#include "support/rng.h"
#include "testgen/execution.h"

namespace mtc
{

/** Result of one clustering run. */
struct KMedoidsResult
{
    /** Indices (into the execution list) of the chosen medoids. */
    std::vector<std::uint32_t> medoids;

    /**
     * Sum over executions of the rf-distance to the nearest medoid —
     * the "number of different reads-from relationships" axis of
     * Figure 6.
     */
    std::uint64_t totalDistance = 0;

    /** PAM swap iterations until convergence. */
    std::uint32_t iterations = 0;
};

/** Precomputed pairwise rf-distance matrix. */
class DistanceMatrix
{
  public:
    explicit DistanceMatrix(const std::vector<Execution> &executions);

    std::uint32_t
    at(std::uint32_t i, std::uint32_t j) const
    {
        return data[static_cast<std::size_t>(i) * n + j];
    }

    std::uint32_t size() const { return n; }

  private:
    std::uint32_t n;
    std::vector<std::uint32_t> data;
};

/**
 * PAM k-medoids over a distance matrix.
 *
 * @param matrix   Pairwise distances.
 * @param k        Number of medoids (clamped to the matrix size).
 * @param rng      Used only to break ties deterministically.
 * @param max_iter Swap-descent iteration cap.
 */
KMedoidsResult kMedoids(const DistanceMatrix &matrix, std::uint32_t k,
                        Rng &rng, std::uint32_t max_iter = 50);

} // namespace mtc

#endif // MTC_CORE_KMEDOIDS_H
