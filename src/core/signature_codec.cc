#include "core/signature_codec.h"

#include <sstream>

namespace mtc
{

const char *
decodeFaultKindName(DecodeFaultKind kind)
{
    switch (kind) {
    case DecodeFaultKind::WordCountMismatch:
        return "word-count-mismatch";
    case DecodeFaultKind::IndexOverflow:
        return "index-overflow";
    case DecodeFaultKind::ResidueOverflow:
        return "residue-overflow";
    }
    return "unknown";
}

SignatureCodec::SignatureCodec(const TestProgram &program,
                               const LoadValueAnalysis &analysis,
                               const InstrumentationPlan &plan_arg)
    : prog(program), loadAnalysis(analysis), plan(plan_arg)
{
}

EncodeResult
SignatureCodec::encode(const Execution &execution) const
{
    EncodeResult result;
    result.signature.words.assign(plan.totalWords(), 0);

    const auto &loads = prog.loads();
    for (std::uint32_t ordinal = 0; ordinal < loads.size(); ++ordinal) {
        const std::uint32_t value = execution.loadValues.at(ordinal);
        const LoadCandidateSet &set = loadAnalysis.candidates(ordinal);
        const auto index = set.indexOf(value);
        if (!index) {
            std::ostringstream os;
            os << "instrumented assertion fired: load t"
               << loads[ordinal].tid << " op" << loads[ordinal].idx
               << " observed unexpected value " << value;
            throw SignatureAssertError(os.str());
        }
        // The branch chain compares candidates 0..index.
        result.comparisons += *index + 1;

        const LoadSlot &slot = plan.slot(ordinal);
        const std::uint32_t word =
            plan.wordBase(loads[ordinal].tid) + slot.wordIndex;
        result.signature.words[word] +=
            static_cast<std::uint64_t>(*index) * slot.multiplier;
    }
    return result;
}

Execution
SignatureCodec::decode(const Signature &signature) const
{
    if (signature.words.size() != plan.totalWords()) {
        throw SignatureDecodeError(
            "signature word count mismatch",
            DecodeFaultKind::WordCountMismatch, 0, 0);
    }

    Execution execution;
    execution.loadValues.assign(prog.loads().size(), kInitValue);

    for (std::uint32_t tid = 0; tid < prog.numThreads(); ++tid) {
        const auto &thread_loads = prog.loadsOfThread(tid);
        // Working copies of this thread's words; weights are peeled off
        // from the last load of each word to the first (Algorithm 1).
        std::vector<std::uint64_t> words(
            signature.words.begin() + plan.wordBase(tid),
            signature.words.begin() + plan.wordBase(tid) +
                plan.wordsForThread(tid));

        for (std::size_t i = thread_loads.size(); i-- > 0;) {
            const std::uint32_t ordinal =
                prog.loadOrdinal(thread_loads[i]);
            const LoadSlot &slot = plan.slot(ordinal);
            std::uint64_t &word = words.at(slot.wordIndex);

            const std::uint64_t index = word / slot.multiplier;
            word %= slot.multiplier;

            const LoadCandidateSet &set =
                loadAnalysis.candidates(ordinal);
            if (index >= set.cardinality()) {
                std::ostringstream os;
                os << "corrupt signature: load t" << tid << " op"
                   << thread_loads[i].idx << " decoded index " << index
                   << " of " << set.cardinality();
                throw SignatureDecodeError(
                    os.str(), DecodeFaultKind::IndexOverflow, tid,
                    plan.wordBase(tid) + slot.wordIndex);
            }
            execution.loadValues[ordinal] =
                set.values[static_cast<std::uint32_t>(index)];
        }

        for (std::uint32_t w = 0; w < words.size(); ++w) {
            if (words[w] != 0) {
                std::ostringstream os;
                os << "corrupt signature: non-zero residue 0x"
                   << std::hex << words[w] << std::dec << " in word "
                   << (plan.wordBase(tid) + w) << " after decode";
                throw SignatureDecodeError(
                    os.str(), DecodeFaultKind::ResidueOverflow, tid,
                    plan.wordBase(tid) + w);
            }
        }
    }
    return execution;
}

} // namespace mtc
