#include "core/signature_codec.h"

#include <cstring>
#include <sstream>

#include "support/simd.h"

namespace mtc
{

const char *
decodeFaultKindName(DecodeFaultKind kind)
{
    switch (kind) {
    case DecodeFaultKind::WordCountMismatch:
        return "word-count-mismatch";
    case DecodeFaultKind::IndexOverflow:
        return "index-overflow";
    case DecodeFaultKind::ResidueOverflow:
        return "residue-overflow";
    }
    return "unknown";
}

SignatureCodec::SignatureCodec(const TestProgram &program,
                               const LoadValueAnalysis &analysis,
                               const InstrumentationPlan &plan_arg)
    : prog(program), loadAnalysis(analysis), plan(plan_arg)
{
    const auto &loads = prog.loads();
    loadMeta.resize(loads.size());
    for (std::uint32_t ordinal = 0; ordinal < loads.size(); ++ordinal) {
        const LoadSlot &slot = plan.slot(ordinal);
        const LoadCandidateSet &set = loadAnalysis.candidates(ordinal);
        LoadMeta &meta = loadMeta[ordinal];
        meta.word = plan.wordBase(loads[ordinal].tid) + slot.wordIndex;
        meta.multiplier = slot.multiplier;
        meta.cardinality = set.cardinality();
        meta.opIdx = loads[ordinal].idx;
        meta.candidates = set.values.data();
    }
    threadOrdinals.resize(prog.numThreads());
    for (std::uint32_t tid = 0; tid < prog.numThreads(); ++tid) {
        const auto &thread_loads = prog.loadsOfThread(tid);
        threadOrdinals[tid].resize(thread_loads.size());
        for (std::size_t i = 0; i < thread_loads.size(); ++i)
            threadOrdinals[tid][i] = prog.loadOrdinal(thread_loads[i]);
    }
}

EncodeResult
SignatureCodec::encode(const Execution &execution) const
{
    EncodeResult result;
    encodeInto(execution, result);
    return result;
}

void
SignatureCodec::encodeInto(const Execution &execution,
                           EncodeResult &result) const
{
    result.comparisons = 0;
    result.signature.words.assign(plan.totalWords(), 0);

    const std::uint32_t num_loads =
        static_cast<std::uint32_t>(loadMeta.size());
    for (std::uint32_t ordinal = 0; ordinal < num_loads; ++ordinal) {
        const LoadMeta &meta = loadMeta[ordinal];
        const std::uint32_t value = execution.loadValues.at(ordinal);
        const std::uint32_t index =
            firstIndexOfU32(meta.candidates, meta.cardinality, value);
        if (index == meta.cardinality) {
            const auto &loads = prog.loads();
            std::ostringstream os;
            os << "instrumented assertion fired: load t"
               << loads[ordinal].tid << " op" << loads[ordinal].idx
               << " observed unexpected value " << value;
            throw SignatureAssertError(os.str());
        }
        // The branch chain compares candidates 0..index.
        result.comparisons += index + 1;
        result.signature.words[meta.word] +=
            static_cast<std::uint64_t>(index) * meta.multiplier;
    }
}

Execution
SignatureCodec::decode(const Signature &signature) const
{
    Execution execution;
    std::vector<std::uint64_t> word_scratch;
    decodeInto(signature, execution, word_scratch);
    return execution;
}

void
SignatureCodec::decodeThreadSlice(
    std::uint32_t tid, const std::uint64_t *slice, Execution &out,
    std::vector<std::uint64_t> &word_scratch) const
{
    const std::vector<std::uint32_t> &ordinals = threadOrdinals[tid];
    const std::uint32_t word_base = plan.wordBase(tid);
    const std::uint32_t thread_words = plan.wordsForThread(tid);

    // Working copy of this thread's words; weights are peeled off
    // from the last load of the thread to the first (Algorithm 1).
    word_scratch.assign(slice, slice + thread_words);

    for (std::size_t i = ordinals.size(); i-- > 0;) {
        const std::uint32_t ordinal = ordinals[i];
        const LoadMeta &meta = loadMeta[ordinal];
        std::uint64_t &word = word_scratch[meta.word - word_base];

        const std::uint64_t index = word / meta.multiplier;
        word %= meta.multiplier;

        if (index >= meta.cardinality) {
            std::ostringstream os;
            os << "corrupt signature: load t" << tid << " op"
               << meta.opIdx << " decoded index " << index << " of "
               << meta.cardinality;
            throw SignatureDecodeError(os.str(),
                                       DecodeFaultKind::IndexOverflow,
                                       tid, meta.word);
        }
        out.loadValues[ordinal] =
            meta.candidates[static_cast<std::uint32_t>(index)];
    }

    for (std::uint32_t w = 0; w < thread_words; ++w) {
        if (word_scratch[w] != 0) {
            std::ostringstream os;
            os << "corrupt signature: non-zero residue 0x" << std::hex
               << word_scratch[w] << std::dec << " in word "
               << (word_base + w) << " after decode";
            throw SignatureDecodeError(
                os.str(), DecodeFaultKind::ResidueOverflow, tid,
                word_base + w);
        }
    }
}

void
SignatureCodec::decodeInto(const Signature &signature, Execution &out,
                           std::vector<std::uint64_t> &word_scratch)
    const
{
    if (signature.words.size() != plan.totalWords()) {
        throw SignatureDecodeError(
            "signature word count mismatch",
            DecodeFaultKind::WordCountMismatch, 0, 0);
    }

    out.loadValues.assign(prog.loads().size(), kInitValue);
    out.duration = 0;
    out.coherenceOrder.clear();

    for (std::uint32_t tid = 0; tid < prog.numThreads(); ++tid) {
        decodeThreadSlice(tid, signature.words.data() + plan.wordBase(tid),
                          out, word_scratch);
    }
}

StreamDecoder::StreamDecoder(const SignatureCodec &codec_arg)
    : codec(codec_arg)
{
    const TestProgram &prog = codec.prog;
    exec.loadValues.assign(prog.loads().size(), kInitValue);
    exec.duration = 0;
    prevWords.assign(codec.plan.totalWords(), 0);
    sliceValid.assign(prog.numThreads(), 0);
    dirty.assign(prog.numThreads(), 0);
    changed.reserve(prog.numThreads());
}

const Execution &
StreamDecoder::next(const Signature &signature)
{
    const InstrumentationPlan &plan = codec.plan;
    if (signature.words.size() != plan.totalWords()) {
        throw SignatureDecodeError(
            "signature word count mismatch",
            DecodeFaultKind::WordCountMismatch, 0, 0);
    }

    const std::uint32_t num_threads = codec.prog.numThreads();
    for (std::uint32_t tid = 0; tid < num_threads; ++tid) {
        const std::uint32_t word_base = plan.wordBase(tid);
        const std::uint32_t thread_words = plan.wordsForThread(tid);
        const std::uint64_t *slice = signature.words.data() + word_base;
        if (sliceValid[tid] &&
            firstDiffU64(prevWords.data() + word_base, slice,
                         thread_words) == thread_words) {
            ++reused;
            continue;
        }
        // Mark before decoding: a throwing slice may have partially
        // overwritten this thread's values, and the next successful
        // call must re-derive everything those values feed.
        dirty[tid] = 1;
        sliceValid[tid] = 0;
        codec.decodeThreadSlice(tid, slice, exec, word_scratch);
        std::memcpy(prevWords.data() + word_base, slice,
                    sizeof(std::uint64_t) * thread_words);
        sliceValid[tid] = 1;
        ++decodedSlices;
    }

    changed.clear();
    for (std::uint32_t tid = 0; tid < num_threads; ++tid) {
        if (dirty[tid]) {
            changed.push_back(tid);
            dirty[tid] = 0;
        }
    }
    return exec;
}

} // namespace mtc
