#include "core/signature_codec.h"

#include <sstream>

namespace mtc
{

const char *
decodeFaultKindName(DecodeFaultKind kind)
{
    switch (kind) {
    case DecodeFaultKind::WordCountMismatch:
        return "word-count-mismatch";
    case DecodeFaultKind::IndexOverflow:
        return "index-overflow";
    case DecodeFaultKind::ResidueOverflow:
        return "residue-overflow";
    }
    return "unknown";
}

SignatureCodec::SignatureCodec(const TestProgram &program,
                               const LoadValueAnalysis &analysis,
                               const InstrumentationPlan &plan_arg)
    : prog(program), loadAnalysis(analysis), plan(plan_arg)
{
}

EncodeResult
SignatureCodec::encode(const Execution &execution) const
{
    EncodeResult result;
    encodeInto(execution, result);
    return result;
}

void
SignatureCodec::encodeInto(const Execution &execution,
                           EncodeResult &result) const
{
    result.comparisons = 0;
    result.signature.words.assign(plan.totalWords(), 0);

    const auto &loads = prog.loads();
    for (std::uint32_t ordinal = 0; ordinal < loads.size(); ++ordinal) {
        const std::uint32_t value = execution.loadValues.at(ordinal);
        const LoadCandidateSet &set = loadAnalysis.candidates(ordinal);
        const auto index = set.indexOf(value);
        if (!index) {
            std::ostringstream os;
            os << "instrumented assertion fired: load t"
               << loads[ordinal].tid << " op" << loads[ordinal].idx
               << " observed unexpected value " << value;
            throw SignatureAssertError(os.str());
        }
        // The branch chain compares candidates 0..index.
        result.comparisons += *index + 1;

        const LoadSlot &slot = plan.slot(ordinal);
        const std::uint32_t word =
            plan.wordBase(loads[ordinal].tid) + slot.wordIndex;
        result.signature.words[word] +=
            static_cast<std::uint64_t>(*index) * slot.multiplier;
    }
}

Execution
SignatureCodec::decode(const Signature &signature) const
{
    Execution execution;
    std::vector<std::uint64_t> word_scratch;
    decodeInto(signature, execution, word_scratch);
    return execution;
}

void
SignatureCodec::decodeInto(const Signature &signature, Execution &out,
                           std::vector<std::uint64_t> &word_scratch) const
{
    if (signature.words.size() != plan.totalWords()) {
        throw SignatureDecodeError(
            "signature word count mismatch",
            DecodeFaultKind::WordCountMismatch, 0, 0);
    }

    out.loadValues.assign(prog.loads().size(), kInitValue);
    out.duration = 0;
    out.coherenceOrder.clear();
    // Working copy of the signature words; weights are peeled off from
    // the last load of each word to the first (Algorithm 1).
    word_scratch.assign(signature.words.begin(), signature.words.end());

    for (std::uint32_t tid = 0; tid < prog.numThreads(); ++tid) {
        const auto &thread_loads = prog.loadsOfThread(tid);
        const std::uint32_t word_base = plan.wordBase(tid);

        for (std::size_t i = thread_loads.size(); i-- > 0;) {
            const std::uint32_t ordinal =
                prog.loadOrdinal(thread_loads[i]);
            const LoadSlot &slot = plan.slot(ordinal);
            std::uint64_t &word =
                word_scratch[word_base + slot.wordIndex];

            const std::uint64_t index = word / slot.multiplier;
            word %= slot.multiplier;

            const LoadCandidateSet &set =
                loadAnalysis.candidates(ordinal);
            if (index >= set.cardinality()) {
                std::ostringstream os;
                os << "corrupt signature: load t" << tid << " op"
                   << thread_loads[i].idx << " decoded index " << index
                   << " of " << set.cardinality();
                throw SignatureDecodeError(
                    os.str(), DecodeFaultKind::IndexOverflow, tid,
                    word_base + slot.wordIndex);
            }
            out.loadValues[ordinal] =
                set.values[static_cast<std::uint32_t>(index)];
        }

        const std::uint32_t thread_words = plan.wordsForThread(tid);
        for (std::uint32_t w = 0; w < thread_words; ++w) {
            if (word_scratch[word_base + w] != 0) {
                std::ostringstream os;
                os << "corrupt signature: non-zero residue 0x"
                   << std::hex << word_scratch[word_base + w] << std::dec
                   << " in word " << (word_base + w) << " after decode";
                throw SignatureDecodeError(
                    os.str(), DecodeFaultKind::ResidueOverflow, tid,
                    word_base + w);
            }
        }
    }
}

} // namespace mtc
