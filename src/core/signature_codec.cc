#include "core/signature_codec.h"

#include <cstring>
#include <sstream>

#include "support/simd.h"

namespace mtc
{

namespace
{

/** Buckets a fresh memo thread-table starts with (power of two). */
constexpr std::uint32_t kMemoInitialSlots = 256;

/**
 * Adaptive bail-out window: after this many lookups a thread table
 * that hit on fewer than half of them retires itself — on weak-model
 * programs almost every slice is unique, and hashing + inserting
 * unique slices costs about twice what plainly decoding them does.
 */
constexpr std::uint64_t kMemoProbationLookups = 512;

/** FNV-1a over a thread's signature-word slice, finalized so the low
 * bits (the bucket index) mix the whole words. */
std::uint64_t
sliceHash(const std::uint64_t *slice, std::uint32_t n)
{
    std::uint64_t h = 1469598103934665603ull;
    for (std::uint32_t i = 0; i < n; ++i) {
        h ^= slice[i];
        h *= 1099511628211ull;
    }
    h ^= h >> 32;
    return h;
}

} // namespace

const char *
decodeFaultKindName(DecodeFaultKind kind)
{
    switch (kind) {
    case DecodeFaultKind::WordCountMismatch:
        return "word-count-mismatch";
    case DecodeFaultKind::IndexOverflow:
        return "index-overflow";
    case DecodeFaultKind::ResidueOverflow:
        return "residue-overflow";
    }
    return "unknown";
}

std::uint64_t
DecodeMemo::entries() const
{
    std::uint64_t total = 0;
    for (const ThreadTable &table : threads)
        total += table.count;
    return total;
}

SignatureCodec::SignatureCodec(const TestProgram &program,
                               const LoadValueAnalysis &analysis,
                               const InstrumentationPlan &plan_arg)
    : prog(program), loadAnalysis(analysis), plan(plan_arg)
{
    const auto &loads = prog.loads();
    loadMeta.resize(loads.size());
    for (std::uint32_t ordinal = 0; ordinal < loads.size(); ++ordinal) {
        const LoadSlot &slot = plan.slot(ordinal);
        const LoadCandidateSet &set = loadAnalysis.candidates(ordinal);
        LoadMeta &meta = loadMeta[ordinal];
        meta.word = plan.wordBase(loads[ordinal].tid) + slot.wordIndex;
        meta.multiplier = slot.multiplier;
        meta.cardinality = set.cardinality();
        meta.opIdx = loads[ordinal].idx;
        meta.candidates = set.values.data();
    }
    threadOrdinals.resize(prog.numThreads());
    for (std::uint32_t tid = 0; tid < prog.numThreads(); ++tid) {
        const auto &thread_loads = prog.loadsOfThread(tid);
        threadOrdinals[tid].resize(thread_loads.size());
        for (std::size_t i = 0; i < thread_loads.size(); ++i)
            threadOrdinals[tid][i] = prog.loadOrdinal(thread_loads[i]);
    }
}

EncodeResult
SignatureCodec::encode(const Execution &execution) const
{
    EncodeResult result;
    encodeInto(execution, result);
    return result;
}

void
SignatureCodec::encodeInto(const Execution &execution,
                           EncodeResult &result) const
{
    result.comparisons = 0;
    result.signature.words.assign(plan.totalWords(), 0);

    const std::uint32_t num_loads =
        static_cast<std::uint32_t>(loadMeta.size());
    for (std::uint32_t ordinal = 0; ordinal < num_loads; ++ordinal) {
        const LoadMeta &meta = loadMeta[ordinal];
        const std::uint32_t value = execution.loadValues.at(ordinal);
        const std::uint32_t index =
            firstIndexOfU32(meta.candidates, meta.cardinality, value);
        if (index == meta.cardinality) {
            const auto &loads = prog.loads();
            std::ostringstream os;
            os << "instrumented assertion fired: load t"
               << loads[ordinal].tid << " op" << loads[ordinal].idx
               << " observed unexpected value " << value;
            throw SignatureAssertError(os.str());
        }
        // The branch chain compares candidates 0..index.
        result.comparisons += index + 1;
        result.signature.words[meta.word] +=
            static_cast<std::uint64_t>(index) * meta.multiplier;
    }
}

Execution
SignatureCodec::decode(const Signature &signature) const
{
    Execution execution;
    std::vector<std::uint64_t> word_scratch;
    decodeInto(signature, execution, word_scratch);
    return execution;
}

void
SignatureCodec::prepareMemo(DecodeMemo &memo) const
{
    if (memo.bound && memo.boundFingerprint == prog.fingerprint())
        return;
    memo.threads.assign(prog.numThreads(), {});
    for (std::uint32_t tid = 0; tid < prog.numThreads(); ++tid) {
        DecodeMemo::ThreadTable &table = memo.threads[tid];
        table.wordCount = plan.wordsForThread(tid);
        table.loadCount =
            static_cast<std::uint32_t>(threadOrdinals[tid].size());
        table.slots.assign(kMemoInitialSlots, 0);
        table.mask = kMemoInitialSlots - 1;
    }
    memo.boundFingerprint = prog.fingerprint();
    memo.bound = true;
}

void
SignatureCodec::memoInsert(DecodeMemo::ThreadTable &table,
                           std::uint64_t hash,
                           const std::uint64_t *slice,
                           const std::uint32_t *ordinals,
                           const Execution &out) const
{
    // Grow at ~70% occupancy; reinsert from the stored hashes.
    if ((table.count + 1) * 10 >
        static_cast<std::uint64_t>(table.slots.size()) * 7) {
        const std::uint32_t new_size =
            static_cast<std::uint32_t>(table.slots.size()) * 2;
        table.slots.assign(new_size, 0);
        table.mask = new_size - 1;
        for (std::uint32_t e = 0; e < table.count; ++e) {
            std::uint32_t i = static_cast<std::uint32_t>(
                table.hashes[e] & table.mask);
            while (table.slots[i] != 0)
                i = (i + 1) & table.mask;
            table.slots[i] = e + 1;
        }
    }
    const std::uint32_t entry = table.count++;
    table.hashes.push_back(hash);
    table.words.insert(table.words.end(), slice,
                       slice + table.wordCount);
    for (std::uint32_t i = 0; i < table.loadCount; ++i)
        table.values.push_back(out.loadValues[ordinals[i]]);
    std::uint32_t i = static_cast<std::uint32_t>(hash & table.mask);
    while (table.slots[i] != 0)
        i = (i + 1) & table.mask;
    table.slots[i] = entry + 1;
}

void
SignatureCodec::decodeInto(const Signature &signature, Execution &out,
                           std::vector<std::uint64_t> &word_scratch,
                           DecodeMemo *memo) const
{
    if (signature.words.size() != plan.totalWords()) {
        throw SignatureDecodeError(
            "signature word count mismatch",
            DecodeFaultKind::WordCountMismatch, 0, 0);
    }

    out.loadValues.assign(prog.loads().size(), kInitValue);
    out.duration = 0;
    out.coherenceOrder.clear();
    if (memo)
        prepareMemo(*memo);

    for (std::uint32_t tid = 0; tid < prog.numThreads(); ++tid) {
        const std::vector<std::uint32_t> &ordinals =
            threadOrdinals[tid];
        const std::uint32_t word_base = plan.wordBase(tid);
        const std::uint32_t thread_words = plan.wordsForThread(tid);
        const std::uint64_t *slice = signature.words.data() + word_base;

        std::uint64_t hash = 0;
        DecodeMemo::ThreadTable *table = nullptr;
        if (memo && thread_words > 0 && !memo->threads[tid].dead) {
            table = &memo->threads[tid];
            ++table->lookups;
            hash = sliceHash(slice, thread_words);
            std::uint32_t i =
                static_cast<std::uint32_t>(hash & table->mask);
            bool hit = false;
            while (table->slots[i] != 0) {
                const std::uint32_t entry = table->slots[i] - 1;
                if (table->hashes[entry] == hash &&
                    std::memcmp(table->words.data() +
                                    static_cast<std::size_t>(entry) *
                                        table->wordCount,
                                slice,
                                sizeof(std::uint64_t) *
                                    table->wordCount) == 0) {
                    const std::uint32_t *vals = table->values.data() +
                        static_cast<std::size_t>(entry) *
                            table->loadCount;
                    for (std::uint32_t k = 0; k < table->loadCount;
                         ++k)
                        out.loadValues[ordinals[k]] = vals[k];
                    hit = true;
                    break;
                }
                i = (i + 1) & table->mask;
            }
            if (hit) {
                ++memo->hitCount;
                ++table->tableHits;
                continue;
            }
            ++memo->missCount;
            if (table->lookups == kMemoProbationLookups &&
                table->tableHits * 2 < table->lookups) {
                table->dead = true;
                table->count = 0;
                table->slots = {};
                table->hashes = {};
                table->words = {};
                table->values = {};
                table = nullptr;
            }
        } else if (memo && thread_words > 0) {
            ++memo->missCount; // retired table: decode directly
        }

        // Working copy of this thread's words; weights are peeled off
        // from the last load of the thread to the first (Algorithm 1).
        word_scratch.assign(slice, slice + thread_words);

        for (std::size_t i = ordinals.size(); i-- > 0;) {
            const std::uint32_t ordinal = ordinals[i];
            const LoadMeta &meta = loadMeta[ordinal];
            std::uint64_t &word = word_scratch[meta.word - word_base];

            const std::uint64_t index = word / meta.multiplier;
            word %= meta.multiplier;

            if (index >= meta.cardinality) {
                std::ostringstream os;
                os << "corrupt signature: load t" << tid << " op"
                   << meta.opIdx << " decoded index " << index << " of "
                   << meta.cardinality;
                throw SignatureDecodeError(os.str(),
                                           DecodeFaultKind::IndexOverflow,
                                           tid, meta.word);
            }
            out.loadValues[ordinal] =
                meta.candidates[static_cast<std::uint32_t>(index)];
        }

        for (std::uint32_t w = 0; w < thread_words; ++w) {
            if (word_scratch[w] != 0) {
                std::ostringstream os;
                os << "corrupt signature: non-zero residue 0x"
                   << std::hex << word_scratch[w] << std::dec
                   << " in word " << (word_base + w) << " after decode";
                throw SignatureDecodeError(
                    os.str(), DecodeFaultKind::ResidueOverflow, tid,
                    word_base + w);
            }
        }

        // Only cleanly decoded slices are memoized, so a corrupt slice
        // re-throws identically however often it is decoded.
        if (table)
            memoInsert(*table, hash, slice, ordinals.data(), out);
    }
}

} // namespace mtc
