#include "core/conventional_checker.h"

#include "graph/po_edges.h"
#include "graph/topo_sort.h"

namespace mtc
{

ConventionalChecker::ConventionalChecker(const TestProgram &program,
                                         MemoryModel model)
    : prog(program), staticEdges(programOrderEdges(program, model))
{
}

bool
ConventionalChecker::checkOne(const DynamicEdgeSet &edges,
                              ConventionalStats &stats) const
{
    ++stats.graphsChecked;
    if (edges.coherenceViolation) {
        // The ws constraints already contradict each other; no sort
        // can succeed and none is attempted.
        ++stats.violations;
        return true;
    }

    ConstraintGraph graph(prog.numOps());
    graph.addEdges(staticEdges);
    graph.addEdges(edges.edges);

    const TopoResult result = topologicalSort(graph);
    stats.verticesProcessed += result.verticesProcessed;
    stats.edgesProcessed += result.edgesProcessed;
    if (!result.acyclic) {
        ++stats.violations;
        return true;
    }
    return false;
}

std::vector<bool>
ConventionalChecker::check(const std::vector<DynamicEdgeSet> &batch,
                           ConventionalStats &stats) const
{
    std::vector<bool> verdicts;
    verdicts.reserve(batch.size());
    for (const DynamicEdgeSet &edges : batch)
        verdicts.push_back(checkOne(edges, stats));
    return verdicts;
}

} // namespace mtc
