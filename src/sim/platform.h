/**
 * @file
 * Abstract interface of a platform under validation.
 *
 * The validation flow (mtc::harness) only needs "run this test once,
 * give me the loaded values"; everything else — scheduling policy,
 * coherence modelling, injected bugs — lives behind this interface so
 * new platform models can be plugged in without touching the
 * instrumentation or checking layers.
 *
 * Hot-path contract: a flow runs the same program thousands of times,
 * so Platform exposes two entry points. `run()` is the convenient
 * one-shot form; `runInto()` threads a caller-owned RunArena through
 * the execution so the platform's per-run working state (and the
 * Execution output buffers) are reset in place instead of reallocated
 * — after warm-up an iteration performs no heap allocations. Both
 * forms draw the identical Rng sequence and produce bit-identical
 * Executions.
 */

#ifndef MTC_SIM_PLATFORM_H
#define MTC_SIM_PLATFORM_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/cancellation.h"
#include "support/error.h"
#include "support/rng.h"
#include "testgen/execution.h"
#include "testgen/test_program.h"

namespace mtc
{

/**
 * Reusable per-run storage. The arena owns the Execution output buffer
 * and an opaque slot where the executing platform parks its private
 * working state (schedulers, cache models, message queues) between
 * runs. One arena serves one platform at a time; handing it to a
 * different platform type simply replaces the slot.
 */
class RunArena
{
  public:
    /** Output buffer the platform writes each run's results into. */
    Execution execution;

    /** Base class of platform-private reusable state. */
    struct State
    {
        virtual ~State() = default;
    };

    /**
     * The platform's persistent state of type @p T, created default-
     * constructed on first use (or when a different platform type used
     * the arena in between).
     */
    template <typename T>
    T &
    stateAs()
    {
        T *typed = dynamic_cast<T *>(slot.get());
        if (!typed) {
            auto owned = std::make_unique<T>();
            typed = owned.get();
            slot = std::move(owned);
        }
        return *typed;
    }

  private:
    std::unique_ptr<State> slot;
};

/** Terminal state of one lane of a batched execution. */
enum class LaneStatus : std::uint8_t
{
    /** The lane ran to completion; its Execution slot is valid. */
    Completed,

    /** The lane's platform run crashed (injected protocol deadlock or
     * crash drill); BatchRunArena::crashMessage(lane) says why. The
     * lane's Execution slot is unspecified; other lanes are
     * unaffected. */
    Crashed,

    /** The lane was abandoned: the cancellation token fired (or a
     * stall drill wedged the batch) while it was still active. Lanes
     * that had already completed keep their results. */
    Hung,
};

/**
 * Reusable storage for a batch of B lockstep runs of one program: one
 * Execution output buffer per lane, per-lane crash/hang diagnostics,
 * and an opaque slot where the platform parks its lane-contiguous
 * structure-of-arrays run state between batches. Like RunArena, one
 * batch arena serves one platform at a time, and reusing it across
 * batches keeps the steady-state loop allocation-free.
 */
class BatchRunArena
{
  public:
    /** Per-lane output buffers; sized by the platform on each run. */
    std::vector<Execution> executions;

    /** Why a Crashed lane crashed (empty for other statuses). */
    const std::string &
    crashMessage(std::uint32_t lane) const
    {
        return crashMessages.at(lane);
    }

    /** Why the batch's Hung lanes were abandoned (the message the
     * scalar path would have thrown as TestHungError). */
    const std::string &hangMessage() const { return hangText; }

    /** Platform-private persistent state (see RunArena::stateAs). */
    template <typename T>
    T &
    stateAs()
    {
        T *typed = dynamic_cast<T *>(slot.get());
        if (!typed) {
            auto owned = std::make_unique<T>();
            typed = owned.get();
            slot = std::move(owned);
        }
        return *typed;
    }

    /** Diagnostic bookkeeping the executing platform maintains. */
    void
    beginBatch(std::uint32_t lanes)
    {
        executions.resize(lanes);
        crashMessages.resize(lanes);
        for (std::uint32_t i = 0; i < lanes; ++i)
            crashMessages[i].clear();
        hangText.clear();
    }

    void
    recordCrash(std::uint32_t lane, std::string message)
    {
        crashMessages[lane] = std::move(message);
    }

    void
    recordHang(std::string message)
    {
        hangText = std::move(message);
    }

    /** Scratch arena for the generic (scalar-loop) fallback path. */
    RunArena &fallbackArena() { return scratch; }

  private:
    std::unique_ptr<RunArena::State> slot;
    std::vector<std::string> crashMessages;
    std::string hangText;
    RunArena scratch;
};

/** A platform that can execute test programs. */
class Platform
{
  public:
    virtual ~Platform() = default;

    /**
     * Execute @p program once into a fresh arena.
     *
     * @param program Test to run (must outlive the call only).
     * @param rng     Source of platform non-determinism.
     * @return        Observed loads (and optional coherence order).
     * @throws ProtocolDeadlockError if an injected bug wedges the
     *         platform (Section 7, bug 3).
     */
    Execution
    run(const TestProgram &program, Rng &rng)
    {
        RunArena arena;
        runInto(program, rng, arena);
        return std::move(arena.execution);
    }

    /**
     * Execute @p program once, reusing @p arena's buffers. The result
     * is left in `arena.execution`; its previous contents are
     * overwritten. Reusing one arena across iterations makes the
     * steady-state run loop allocation-free.
     */
    void
    runInto(const TestProgram &program, Rng &rng, RunArena &arena)
    {
        runInto(program, rng, arena, nullptr);
    }

    /**
     * Cancellable form: the scheduler loop polls @p cancel between
     * steps and abandons a run whose watchdog deadline expired.
     *
     * @param cancel Cooperative stop token, or nullptr (never stop).
     * @throws TestHungError when the token fires mid-run; the arena
     *         stays reusable (the next reset reinitializes it).
     */
    virtual void runInto(const TestProgram &program, Rng &rng,
                         RunArena &arena,
                         const CancellationToken *cancel) = 0;

    /**
     * Execute @p num_lanes independent runs of @p program as one
     * batch. Lane i consumes `rngs[i]` draw-for-draw exactly as a
     * scalar runInto() with that stream would — batched and scalar
     * execution are bit-identical per lane — and leaves its result in
     * `batch.executions[i]`.
     *
     * Failures are reported per lane through @p status instead of
     * thrown: a crashed lane (injected deadlock, crash drill) is
     * marked Crashed with its message in batch.crashMessage(lane) and
     * the remaining lanes keep running; when the cancellation token
     * fires, every still-active lane is marked Hung (completed lanes
     * keep their results and status) and the batch returns. Hard
     * failures that are not per-lane semantics — real fatal signals,
     * allocation bombs, internal PlatformErrors — still propagate.
     *
     * The base implementation is a sequential per-lane loop over
     * runInto(), so every platform gets correct batched semantics;
     * platforms with a lockstep engine override it.
     */
    virtual void
    runBatchInto(const TestProgram &program, Rng *rngs,
                 std::uint32_t num_lanes, BatchRunArena &batch,
                 const CancellationToken *cancel, LaneStatus *status)
    {
        batch.beginBatch(num_lanes);
        RunArena &scratch = batch.fallbackArena();
        for (std::uint32_t i = 0; i < num_lanes; ++i) {
            try {
                runInto(program, rngs[i], scratch, cancel);
                std::swap(batch.executions[i], scratch.execution);
                status[i] = LaneStatus::Completed;
            } catch (const TestHungError &err) {
                batch.recordHang(err.what());
                for (std::uint32_t j = i; j < num_lanes; ++j)
                    status[j] = LaneStatus::Hung;
                return;
            } catch (const ProtocolDeadlockError &err) {
                batch.recordCrash(i, err.what());
                status[i] = LaneStatus::Crashed;
            }
        }
    }
};

} // namespace mtc

#endif // MTC_SIM_PLATFORM_H
