/**
 * @file
 * Abstract interface of a platform under validation.
 *
 * The validation flow (mtc::harness) only needs "run this test once,
 * give me the loaded values"; everything else — scheduling policy,
 * coherence modelling, injected bugs — lives behind this interface so
 * new platform models can be plugged in without touching the
 * instrumentation or checking layers.
 */

#ifndef MTC_SIM_PLATFORM_H
#define MTC_SIM_PLATFORM_H

#include "support/rng.h"
#include "testgen/execution.h"
#include "testgen/test_program.h"

namespace mtc
{

/** A platform that can execute test programs. */
class Platform
{
  public:
    virtual ~Platform() = default;

    /**
     * Execute @p program once.
     *
     * @param program Test to run (must outlive the call only).
     * @param rng     Source of platform non-determinism.
     * @return        Observed loads (and optional coherence order).
     * @throws ProtocolDeadlockError if an injected bug wedges the
     *         platform (Section 7, bug 3).
     */
    virtual Execution run(const TestProgram &program, Rng &rng) = 0;
};

} // namespace mtc

#endif // MTC_SIM_PLATFORM_H
