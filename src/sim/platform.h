/**
 * @file
 * Abstract interface of a platform under validation.
 *
 * The validation flow (mtc::harness) only needs "run this test once,
 * give me the loaded values"; everything else — scheduling policy,
 * coherence modelling, injected bugs — lives behind this interface so
 * new platform models can be plugged in without touching the
 * instrumentation or checking layers.
 *
 * Hot-path contract: a flow runs the same program thousands of times,
 * so Platform exposes two entry points. `run()` is the convenient
 * one-shot form; `runInto()` threads a caller-owned RunArena through
 * the execution so the platform's per-run working state (and the
 * Execution output buffers) are reset in place instead of reallocated
 * — after warm-up an iteration performs no heap allocations. Both
 * forms draw the identical Rng sequence and produce bit-identical
 * Executions.
 */

#ifndef MTC_SIM_PLATFORM_H
#define MTC_SIM_PLATFORM_H

#include <memory>
#include <utility>

#include "support/cancellation.h"
#include "support/rng.h"
#include "testgen/execution.h"
#include "testgen/test_program.h"

namespace mtc
{

/**
 * Reusable per-run storage. The arena owns the Execution output buffer
 * and an opaque slot where the executing platform parks its private
 * working state (schedulers, cache models, message queues) between
 * runs. One arena serves one platform at a time; handing it to a
 * different platform type simply replaces the slot.
 */
class RunArena
{
  public:
    /** Output buffer the platform writes each run's results into. */
    Execution execution;

    /** Base class of platform-private reusable state. */
    struct State
    {
        virtual ~State() = default;
    };

    /**
     * The platform's persistent state of type @p T, created default-
     * constructed on first use (or when a different platform type used
     * the arena in between).
     */
    template <typename T>
    T &
    stateAs()
    {
        T *typed = dynamic_cast<T *>(slot.get());
        if (!typed) {
            auto owned = std::make_unique<T>();
            typed = owned.get();
            slot = std::move(owned);
        }
        return *typed;
    }

  private:
    std::unique_ptr<State> slot;
};

/** A platform that can execute test programs. */
class Platform
{
  public:
    virtual ~Platform() = default;

    /**
     * Execute @p program once into a fresh arena.
     *
     * @param program Test to run (must outlive the call only).
     * @param rng     Source of platform non-determinism.
     * @return        Observed loads (and optional coherence order).
     * @throws ProtocolDeadlockError if an injected bug wedges the
     *         platform (Section 7, bug 3).
     */
    Execution
    run(const TestProgram &program, Rng &rng)
    {
        RunArena arena;
        runInto(program, rng, arena);
        return std::move(arena.execution);
    }

    /**
     * Execute @p program once, reusing @p arena's buffers. The result
     * is left in `arena.execution`; its previous contents are
     * overwritten. Reusing one arena across iterations makes the
     * steady-state run loop allocation-free.
     */
    void
    runInto(const TestProgram &program, Rng &rng, RunArena &arena)
    {
        runInto(program, rng, arena, nullptr);
    }

    /**
     * Cancellable form: the scheduler loop polls @p cancel between
     * steps and abandons a run whose watchdog deadline expired.
     *
     * @param cancel Cooperative stop token, or nullptr (never stop).
     * @throws TestHungError when the token fires mid-run; the arena
     *         stays reusable (the next reset reinitializes it).
     */
    virtual void runInto(const TestProgram &program, Rng &rng,
                         RunArena &arena,
                         const CancellationToken *cancel) = 0;
};

} // namespace mtc

#endif // MTC_SIM_PLATFORM_H
