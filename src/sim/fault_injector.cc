#include "sim/fault_injector.h"

#include <numeric>

namespace mtc
{

InjectionCounts &
InjectionCounts::operator+=(const InjectionCounts &other)
{
    bitFlips += other.bitFlips;
    tornStores += other.tornStores;
    truncations += other.truncations;
    dropped += other.dropped;
    duplicated += other.duplicated;
    corruptedIterations += other.corruptedIterations;
    return *this;
}

FaultInjector::FaultInjector(const FaultConfig &cfg_arg,
                             std::vector<std::uint32_t> thread_word_counts)
    : cfg(cfg_arg), threadWords(std::move(thread_word_counts)),
      rng(cfg_arg.seed)
{
    if (threadWords.empty())
        throw ConfigError("FaultInjector needs a per-thread word layout");
    wordBases.resize(threadWords.size());
    std::exclusive_scan(threadWords.begin(), threadWords.end(),
                        wordBases.begin(), std::uint32_t{0});
    totalWords = wordBases.back() + threadWords.back();
    lastFlushed.words.assign(totalWords, 0);
}

FaultedReadout
FaultInjector::read(const Signature &clean)
{
    FaultedReadout readout;
    readInto(clean, readout);
    return readout;
}

void
FaultInjector::readInto(const Signature &clean, FaultedReadout &readout)
{
    if (clean.words.size() != totalWords) {
        throw ConfigError(
            "FaultInjector: signature word count does not match the "
            "thread layout");
    }

    readout.copies = 1;
    readout.corrupted = false;
    readout.signature.words.assign(clean.words.begin(),
                                   clean.words.end());

    // Loss happens before the host buffer sees anything; a dropped
    // iteration cannot also be corrupted or duplicated.
    if (cfg.dropRate > 0.0 && rng.nextBool(cfg.dropRate)) {
        ++ledger.dropped;
        readout.copies = 0;
        readout.signature.words.clear();
        return;
    }

    // Torn store: a suffix of the word array keeps whatever the host
    // buffer held from the previous flush.
    if (cfg.tornStoreRate > 0.0 && totalWords > 1 &&
        rng.nextBool(cfg.tornStoreRate)) {
        ++ledger.tornStores;
        const std::size_t cut =
            static_cast<std::size_t>(rng.nextInRange(1, totalWords - 1));
        for (std::size_t w = cut; w < readout.signature.words.size(); ++w)
            readout.signature.words[w] = lastFlushed.words[w];
    }

    // Truncated stream: one core hung, its words from a random slot on
    // were never written and read back as zero.
    if (cfg.truncationRate > 0.0 && rng.nextBool(cfg.truncationRate)) {
        ++ledger.truncations;
        const std::size_t tid = rng.pickIndex(threadWords.size());
        const std::uint32_t first = static_cast<std::uint32_t>(
            rng.nextBelow(threadWords[tid] ? threadWords[tid] : 1));
        for (std::uint32_t w = first; w < threadWords[tid]; ++w)
            readout.signature.words[wordBases[tid] + w] = 0;
    }

    // Bit flips, independently per word.
    if (cfg.bitFlipRate > 0.0) {
        for (std::uint64_t &word : readout.signature.words) {
            if (rng.nextBool(cfg.bitFlipRate)) {
                ++ledger.bitFlips;
                word ^= std::uint64_t{1} << rng.nextBelow(64);
            }
        }
    }

    readout.corrupted = readout.signature.words != clean.words;
    if (readout.corrupted)
        ++ledger.corruptedIterations;

    if (cfg.duplicateRate > 0.0 && rng.nextBool(cfg.duplicateRate)) {
        ++ledger.duplicated;
        readout.copies = 2;
    }

    // What the buffer ends up holding is what a later torn store can
    // re-expose.
    lastFlushed.words.assign(readout.signature.words.begin(),
                             readout.signature.words.end());
}

} // namespace mtc
