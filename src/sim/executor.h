/**
 * @file
 * The multicore platform substitute: an operational relaxed-memory
 * executor with uniform-random and timed (silicon-like) scheduling.
 *
 * The executor maintains, per thread, a window of in-flight operations
 * and performs one model-eligible operation at a time. Eligibility
 * uses the same requiredOrder() predicate as the checker's
 * program-order edges, so the bug-free platform provably never
 * produces an execution the checker's model forbids. Store-to-load
 * forwarding is modelled: a load with an incomplete program-order-
 * earlier same-address store in its own thread reads that store's
 * value (the reason same-address st->ld edges are excluded from the
 * constraint graphs, paper footnote 4).
 *
 * See executor_config.h for the two scheduling policies and the
 * Section-7 bug-injection hooks.
 */

#ifndef MTC_SIM_EXECUTOR_H
#define MTC_SIM_EXECUTOR_H

#include "sim/executor_config.h"
#include "sim/platform.h"

namespace mtc
{

/** Platform model executing one test program at a time. */
class OperationalExecutor : public Platform
{
  public:
    explicit OperationalExecutor(ExecutorConfig cfg_arg);

    /** The active configuration. */
    const ExecutorConfig &config() const { return cfg; }

    using Platform::runInto;
    void runInto(const TestProgram &program, Rng &rng, RunArena &arena,
                 const CancellationToken *cancel) override;

    /** Lockstep batch engine: B lanes advance through one shared
     * instruction-dispatch loop over lane-contiguous SoA run state,
     * bit-identical per lane to scalar runInto() (see executor.cc). */
    void runBatchInto(const TestProgram &program, Rng *rngs,
                      std::uint32_t num_lanes, BatchRunArena &batch,
                      const CancellationToken *cancel,
                      LaneStatus *status) override;

  private:
    ExecutorConfig cfg;

    /** runInto() calls served so far (the crashOnRun drill's clock). */
    std::uint64_t runsStarted = 0;
};

/**
 * Convenience: a platform configured like the paper's bare-metal
 * silicon for @p isa — Timed policy, the ISA's architected memory
 * model, silicon-like window sizes.
 */
ExecutorConfig bareMetalConfig(Isa isa);

/**
 * Convenience: the paper's OS-interference variant of
 * bareMetalConfig() (Linux runs in Section 6.1).
 */
ExecutorConfig osConfig(Isa isa);

/**
 * Convenience: the uniform-random SC reference simulator used for the
 * k-medoids limit study (Section 4.1).
 */
ExecutorConfig scReferenceConfig();

} // namespace mtc

#endif // MTC_SIM_EXECUTOR_H
