/**
 * @file
 * Precomputed intra-thread ordering constraints shared by the platform
 * models.
 *
 * For each op idx, a 32-bit mask over the 32 program-order-preceding
 * ops (bit b stands for op idx-32+b) that must complete before idx may
 * perform, per requiredOrder(). Built once per (program, model) and
 * reused across iterations; eligibility testing against it is the hot
 * path of every executor.
 */

#ifndef MTC_SIM_ORDER_TABLE_H
#define MTC_SIM_ORDER_TABLE_H

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/po_edges.h"
#include "mcm/memory_model.h"
#include "testgen/test_program.h"

namespace mtc
{

/** Maximum supported reorder window (ordering masks are 32-bit). */
constexpr std::uint32_t kMaxReorderWindow = 32;

/** priorStore sentinel: no program-order-earlier same-location store. */
constexpr std::uint32_t kNoPriorStore =
    std::numeric_limits<std::uint32_t>::max();

/** Required-predecessor masks for one (program, model) pair. */
struct OrderTable
{
    std::vector<std::vector<std::uint32_t>> requiredPreds;

    /**
     * priorStore[tid][idx]: index of the nearest program-order-earlier
     * store of thread @p tid to the same location as op idx, or
     * kNoPriorStore. Store-to-load forwarding only ever consults the
     * *nearest* prior same-location store (a completed one masks every
     * older one), so this table makes forwardedValue O(1) instead of
     * an O(idx) backward scan per load. Model-independent, but built
     * here so it rides the existing per-(program, model) cache.
     */
    std::vector<std::vector<std::uint32_t>> priorStore;

    void
    build(const TestProgram &program, MemoryModel model)
    {
        const auto &threads = program.threadBodies();
        requiredPreds.assign(threads.size(), {});
        priorStore.assign(threads.size(), {});
        std::vector<std::uint32_t> last_store;
        for (std::size_t tid = 0; tid < threads.size(); ++tid) {
            const auto &body = threads[tid];
            requiredPreds[tid].assign(body.size(), 0);
            priorStore[tid].assign(body.size(), kNoPriorStore);
            last_store.assign(program.config().numLocations,
                              kNoPriorStore);
            for (std::uint32_t idx = 0; idx < body.size(); ++idx) {
                std::uint32_t mask = 0;
                for (std::uint32_t b = 0; b < kMaxReorderWindow; ++b) {
                    const std::int64_t j =
                        static_cast<std::int64_t>(idx) - 32 + b;
                    if (j < 0)
                        continue;
                    if (requiredOrder(model, body[j], body[idx]))
                        mask |= std::uint32_t(1) << b;
                }
                requiredPreds[tid][idx] = mask;
                if (body[idx].kind != OpKind::Fence) {
                    priorStore[tid][idx] = last_store[body[idx].loc];
                    if (body[idx].kind == OpKind::Store)
                        last_store[body[idx].loc] = idx;
                }
            }
        }
    }
};

/** loadOrdinal sentinel in FlatOrderTable: op is not a load. */
constexpr std::uint32_t kNotALoad =
    std::numeric_limits<std::uint32_t>::max();

/**
 * Flattened, lane-shareable program metadata for the batched lockstep
 * engine: every per-op table an executor consults on its hot path —
 * required-predecessor masks, nearest-prior-store indexes, op kind/
 * location/value, and load ordinals — laid out as flat arrays indexed
 * by `opOffset[tid] + idx`. The data depends only on the (program,
 * model) pair, so one FlatOrderTable serves every lane of a batch (and
 * every iteration of a test): the vector<vector<...>> indirections and
 * the loadOrdinal hash lookup are paid once per table build instead of
 * once per access.
 */
struct FlatOrderTable
{
    /** Prefix sums of thread sizes; opOffset[numThreads] = totalOps. */
    std::vector<std::uint32_t> opOffset;

    std::vector<std::uint32_t> requiredPreds; ///< [flat op]
    std::vector<std::uint32_t> priorStore;    ///< [flat op]
    std::vector<std::uint8_t> opKind;         ///< [flat op] (OpKind)
    std::vector<std::uint32_t> opLoc;         ///< [flat op]
    std::vector<std::uint32_t> opValue;       ///< [flat op]
    /** Load ordinal of a flat op, or kNotALoad. */
    std::vector<std::uint32_t> loadOrdinal;
    /** loc -> cache line (lineOf() hoisted off the hot path). */
    std::vector<std::uint32_t> locLine;
    /** Cache line of a flat op's location (locLine[opLoc[fo]] fused
     * into one load; 0 for fences, which never consult it). */
    std::vector<std::uint32_t> opLine;

    std::uint32_t totalOps = 0;

    std::uint32_t
    flatIndex(std::uint32_t tid, std::uint32_t idx) const
    {
        return opOffset[tid] + idx;
    }

    void
    build(const TestProgram &program, const OrderTable &table)
    {
        const auto &threads = program.threadBodies();
        const std::uint32_t num_threads = program.numThreads();
        opOffset.assign(num_threads + 1, 0);
        for (std::uint32_t t = 0; t < num_threads; ++t) {
            opOffset[t + 1] = opOffset[t] +
                static_cast<std::uint32_t>(threads[t].size());
        }
        totalOps = opOffset[num_threads];
        requiredPreds.resize(totalOps);
        priorStore.resize(totalOps);
        opKind.resize(totalOps);
        opLoc.resize(totalOps);
        opValue.resize(totalOps);
        loadOrdinal.resize(totalOps);
        for (std::uint32_t t = 0; t < num_threads; ++t) {
            const auto &body = threads[t];
            for (std::uint32_t idx = 0; idx < body.size(); ++idx) {
                const std::uint32_t fo = opOffset[t] + idx;
                requiredPreds[fo] = table.requiredPreds[t][idx];
                priorStore[fo] = table.priorStore[t][idx];
                opKind[fo] = static_cast<std::uint8_t>(body[idx].kind);
                opLoc[fo] = body[idx].loc;
                opValue[fo] = body[idx].value;
                loadOrdinal[fo] = body[idx].kind == OpKind::Load
                    ? program.loadOrdinal(OpId{t, idx})
                    : kNotALoad;
            }
        }
        const std::uint32_t num_locs = program.config().numLocations;
        locLine.resize(num_locs);
        for (std::uint32_t loc = 0; loc < num_locs; ++loc)
            locLine[loc] = program.lineOf(loc);
        opLine.resize(totalOps);
        for (std::uint32_t fo = 0; fo < totalOps; ++fo) {
            opLine[fo] = opKind[fo] ==
                    static_cast<std::uint8_t>(OpKind::Fence)
                ? 0
                : locLine[opLoc[fo]];
        }
    }
};

/**
 * Per-thread completion bitset with O(1) window queries, the companion
 * of OrderTable. Completion bits for ops before idx-32 are implied by
 * the reorder window (every in-flight op is within 32 of the head).
 */
class CompletionBits
{
  public:
    void
    reset(const TestProgram &program)
    {
        const auto &threads = program.threadBodies();
        words.resize(threads.size());
        for (std::size_t t = 0; t < threads.size(); ++t)
            words[t].assign((threads[t].size() + 63) / 64, 0);
    }

    bool
    isCompleted(std::uint32_t tid, std::uint32_t idx) const
    {
        return (words[tid][idx >> 6] >> (idx & 63)) & 1;
    }

    void
    markCompleted(std::uint32_t tid, std::uint32_t idx)
    {
        words[tid][idx >> 6] |= std::uint64_t(1) << (idx & 63);
    }

    /**
     * Completion mask over ops [idx-32, idx): bit b covers op
     * idx-32+b; bits for negative indices read as "complete".
     */
    std::uint32_t
    windowCompleted(std::uint32_t tid, std::uint32_t idx) const
    {
        const auto &thread_words = words[tid];
        auto grab64 = [&](std::uint32_t start) -> std::uint64_t {
            const std::uint32_t word = start >> 6;
            const std::uint32_t off = start & 63;
            std::uint64_t v =
                word < thread_words.size() ? thread_words[word] >> off
                                           : 0;
            if (off && word + 1 < thread_words.size())
                v |= thread_words[word + 1] << (64 - off);
            return v;
        };
        if (idx >= kMaxReorderWindow)
            return static_cast<std::uint32_t>(
                grab64(idx - kMaxReorderWindow));
        if (idx == 0)
            return ~std::uint32_t(0); // whole window predates index 0
        const std::uint32_t real = static_cast<std::uint32_t>(grab64(0))
            << (kMaxReorderWindow - idx);
        const std::uint32_t pad =
            (std::uint32_t(1) << (kMaxReorderWindow - idx)) - 1;
        return real | pad;
    }

  private:
    std::vector<std::vector<std::uint64_t>> words;
};

/**
 * Multi-lane completion bitset: CompletionBits' semantics over a flat
 * lane-contiguous array, the structure-of-arrays form the batched
 * lockstep engine keeps its per-lane completion state in. Every
 * thread's bits occupy a fixed `wordStride` span (sized for the
 * longest thread; a shorter thread's surplus words stay zero, which
 * reads identically to CompletionBits' out-of-range behavior), so
 * lane/thread addressing is pure arithmetic with no per-thread vector
 * hops. reset() refills in place — capacity survives across batches.
 */
class LaneCompletionBits
{
  public:
    void
    reset(const TestProgram &program, std::uint32_t lanes)
    {
        numThreads = program.numThreads();
        std::uint32_t max_ops = 0;
        for (std::uint32_t t = 0; t < numThreads; ++t)
            max_ops = std::max(max_ops, program.opsInThread(t));
        wordStride = (max_ops + 63) / 64;
        words.assign(static_cast<std::size_t>(lanes) * numThreads *
                         wordStride,
                     0);
    }

    /** Zero one lane's bits (per-lane re-reset between batches). */
    void
    resetLane(std::uint32_t lane)
    {
        std::uint64_t *base =
            words.data() +
            static_cast<std::size_t>(lane) * numThreads * wordStride;
        for (std::size_t w = 0;
             w < static_cast<std::size_t>(numThreads) * wordStride; ++w)
            base[w] = 0;
    }

    const std::uint64_t *
    threadWords(std::uint32_t lane, std::uint32_t tid) const
    {
        return words.data() +
            (static_cast<std::size_t>(lane) * numThreads + tid) *
            wordStride;
    }

    bool
    isCompleted(std::uint32_t lane, std::uint32_t tid,
                std::uint32_t idx) const
    {
        return (threadWords(lane, tid)[idx >> 6] >> (idx & 63)) & 1;
    }

    void
    markCompleted(std::uint32_t lane, std::uint32_t tid,
                  std::uint32_t idx)
    {
        std::uint64_t *row = words.data() +
            (static_cast<std::size_t>(lane) * numThreads + tid) *
            wordStride;
        row[idx >> 6] |= std::uint64_t(1) << (idx & 63);
    }

    /** Same contract as CompletionBits::windowCompleted. */
    std::uint32_t
    windowCompleted(std::uint32_t lane, std::uint32_t tid,
                    std::uint32_t idx) const
    {
        const std::uint64_t *row = threadWords(lane, tid);
        auto grab64 = [&](std::uint32_t start) -> std::uint64_t {
            const std::uint32_t word = start >> 6;
            const std::uint32_t off = start & 63;
            std::uint64_t v = word < wordStride ? row[word] >> off : 0;
            if (off && word + 1 < wordStride)
                v |= row[word + 1] << (64 - off);
            return v;
        };
        if (idx >= kMaxReorderWindow)
            return static_cast<std::uint32_t>(
                grab64(idx - kMaxReorderWindow));
        if (idx == 0)
            return ~std::uint32_t(0);
        const std::uint32_t real = static_cast<std::uint32_t>(grab64(0))
            << (kMaxReorderWindow - idx);
        const std::uint32_t pad =
            (std::uint32_t(1) << (kMaxReorderWindow - idx)) - 1;
        return real | pad;
    }

  private:
    std::vector<std::uint64_t> words;
    std::uint32_t wordStride = 0;
    std::uint32_t numThreads = 0;
};

} // namespace mtc

#endif // MTC_SIM_ORDER_TABLE_H
