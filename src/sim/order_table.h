/**
 * @file
 * Precomputed intra-thread ordering constraints shared by the platform
 * models.
 *
 * For each op idx, a 32-bit mask over the 32 program-order-preceding
 * ops (bit b stands for op idx-32+b) that must complete before idx may
 * perform, per requiredOrder(). Built once per (program, model) and
 * reused across iterations; eligibility testing against it is the hot
 * path of every executor.
 */

#ifndef MTC_SIM_ORDER_TABLE_H
#define MTC_SIM_ORDER_TABLE_H

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/po_edges.h"
#include "mcm/memory_model.h"
#include "testgen/test_program.h"

namespace mtc
{

/** Maximum supported reorder window (ordering masks are 32-bit). */
constexpr std::uint32_t kMaxReorderWindow = 32;

/** priorStore sentinel: no program-order-earlier same-location store. */
constexpr std::uint32_t kNoPriorStore =
    std::numeric_limits<std::uint32_t>::max();

/** Required-predecessor masks for one (program, model) pair. */
struct OrderTable
{
    std::vector<std::vector<std::uint32_t>> requiredPreds;

    /**
     * priorStore[tid][idx]: index of the nearest program-order-earlier
     * store of thread @p tid to the same location as op idx, or
     * kNoPriorStore. Store-to-load forwarding only ever consults the
     * *nearest* prior same-location store (a completed one masks every
     * older one), so this table makes forwardedValue O(1) instead of
     * an O(idx) backward scan per load. Model-independent, but built
     * here so it rides the existing per-(program, model) cache.
     */
    std::vector<std::vector<std::uint32_t>> priorStore;

    void
    build(const TestProgram &program, MemoryModel model)
    {
        const auto &threads = program.threadBodies();
        requiredPreds.assign(threads.size(), {});
        priorStore.assign(threads.size(), {});
        std::vector<std::uint32_t> last_store;
        for (std::size_t tid = 0; tid < threads.size(); ++tid) {
            const auto &body = threads[tid];
            requiredPreds[tid].assign(body.size(), 0);
            priorStore[tid].assign(body.size(), kNoPriorStore);
            last_store.assign(program.config().numLocations,
                              kNoPriorStore);
            for (std::uint32_t idx = 0; idx < body.size(); ++idx) {
                std::uint32_t mask = 0;
                for (std::uint32_t b = 0; b < kMaxReorderWindow; ++b) {
                    const std::int64_t j =
                        static_cast<std::int64_t>(idx) - 32 + b;
                    if (j < 0)
                        continue;
                    if (requiredOrder(model, body[j], body[idx]))
                        mask |= std::uint32_t(1) << b;
                }
                requiredPreds[tid][idx] = mask;
                if (body[idx].kind != OpKind::Fence) {
                    priorStore[tid][idx] = last_store[body[idx].loc];
                    if (body[idx].kind == OpKind::Store)
                        last_store[body[idx].loc] = idx;
                }
            }
        }
    }
};

/**
 * Per-thread completion bitset with O(1) window queries, the companion
 * of OrderTable. Completion bits for ops before idx-32 are implied by
 * the reorder window (every in-flight op is within 32 of the head).
 */
class CompletionBits
{
  public:
    void
    reset(const TestProgram &program)
    {
        const auto &threads = program.threadBodies();
        words.resize(threads.size());
        for (std::size_t t = 0; t < threads.size(); ++t)
            words[t].assign((threads[t].size() + 63) / 64, 0);
    }

    bool
    isCompleted(std::uint32_t tid, std::uint32_t idx) const
    {
        return (words[tid][idx >> 6] >> (idx & 63)) & 1;
    }

    void
    markCompleted(std::uint32_t tid, std::uint32_t idx)
    {
        words[tid][idx >> 6] |= std::uint64_t(1) << (idx & 63);
    }

    /**
     * Completion mask over ops [idx-32, idx): bit b covers op
     * idx-32+b; bits for negative indices read as "complete".
     */
    std::uint32_t
    windowCompleted(std::uint32_t tid, std::uint32_t idx) const
    {
        const auto &thread_words = words[tid];
        auto grab64 = [&](std::uint32_t start) -> std::uint64_t {
            const std::uint32_t word = start >> 6;
            const std::uint32_t off = start & 63;
            std::uint64_t v =
                word < thread_words.size() ? thread_words[word] >> off
                                           : 0;
            if (off && word + 1 < thread_words.size())
                v |= thread_words[word + 1] << (64 - off);
            return v;
        };
        if (idx >= kMaxReorderWindow)
            return static_cast<std::uint32_t>(
                grab64(idx - kMaxReorderWindow));
        if (idx == 0)
            return ~std::uint32_t(0); // whole window predates index 0
        const std::uint32_t real = static_cast<std::uint32_t>(grab64(0))
            << (kMaxReorderWindow - idx);
        const std::uint32_t pad =
            (std::uint32_t(1) << (kMaxReorderWindow - idx)) - 1;
        return real | pad;
    }

  private:
    std::vector<std::vector<std::uint64_t>> words;
};

} // namespace mtc

#endif // MTC_SIM_ORDER_TABLE_H
