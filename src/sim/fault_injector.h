/**
 * @file
 * Silicon-fault injector for the execution→signature readout path.
 *
 * MTraceCheck is a post-silicon framework: the signatures it checks
 * come off a device that is by definition suspect. The platform models
 * under `sim/` perturb the *execution* (scheduling, coherence, injected
 * design bugs); this layer perturbs the *readout* — everything between
 * the instrumented test finishing an iteration and the host seeing its
 * signature words. Fault models, each rate-controlled and drawn from a
 * dedicated deterministic stream:
 *
 *  - bit flips in individual signature words (flaky readout lane,
 *    single-event upset in the signature register file);
 *  - torn multi-word signature stores: the store of this iteration's
 *    words is only partially flushed, so a suffix keeps the previous
 *    iteration's (or the initial) contents;
 *  - truncated per-thread signature streams: one core hangs mid-test
 *    and its words from a random point onward are never written;
 *  - lost iterations: a signature never reaches the host buffer;
 *  - duplicated iterations: a buffer glitch records a signature twice.
 *
 * The injector keeps an exact ledger of everything it did
 * (InjectionCounts) so downstream layers — quarantine in the decode
 * stage, the K-re-execution confirmation protocol, campaign summaries
 * — can be reconciled against ground truth in tests and benches.
 */

#ifndef MTC_SIM_FAULT_INJECTOR_H
#define MTC_SIM_FAULT_INJECTOR_H

#include <cstdint>
#include <vector>

#include "core/signature.h"
#include "support/rng.h"

namespace mtc
{

/** Rates of the readout fault models (all default to a fault-free
 * path, which keeps every downstream layer bit-identical to the
 * pre-fault pipeline). */
struct FaultConfig
{
    /** Per signature-word probability of flipping one random bit. */
    double bitFlipRate = 0.0;

    /** Per-iteration probability that the multi-word signature store
     * is torn: words from a random cut point onward keep the value of
     * the previously flushed signature. */
    double tornStoreRate = 0.0;

    /** Per-iteration probability that one thread's signature stream is
     * truncated (core hang): its words from a random point on read as
     * zero. */
    double truncationRate = 0.0;

    /** Per-iteration probability the signature is lost entirely. */
    double dropRate = 0.0;

    /** Per-iteration probability the signature is recorded twice. */
    double duplicateRate = 0.0;

    /** Seed of the injector's private random stream. */
    std::uint64_t seed = 0xfa017ull;

    bool
    enabled() const
    {
        return bitFlipRate > 0.0 || tornStoreRate > 0.0 ||
            truncationRate > 0.0 || dropRate > 0.0 ||
            duplicateRate > 0.0;
    }
};

/** Ground-truth ledger of injected faults. */
struct InjectionCounts
{
    std::uint64_t bitFlips = 0;    ///< words with a flipped bit
    std::uint64_t tornStores = 0;  ///< iterations with a torn store
    std::uint64_t truncations = 0; ///< iterations with a hung thread
    std::uint64_t dropped = 0;     ///< iterations lost
    std::uint64_t duplicated = 0;  ///< iterations recorded twice

    /** Iterations whose recorded signature differs from the clean one
     * (bit flip / torn store / truncation that actually changed a
     * word; drops and duplicates leave words intact). */
    std::uint64_t corruptedIterations = 0;

    std::uint64_t
    totalEvents() const
    {
        return bitFlips + tornStores + truncations + dropped +
            duplicated;
    }

    InjectionCounts &operator+=(const InjectionCounts &other);
};

/** What the host observed for one iteration after the faulty readout. */
struct FaultedReadout
{
    /** Signature as read back (valid only when !dropped). */
    Signature signature;

    /** How many times the host buffer recorded it (0 = lost, 1 =
     * normal, 2 = duplicated). */
    unsigned copies = 1;

    /** The recorded words differ from the clean signature. */
    bool corrupted = false;

    bool
    dropped() const
    {
        return copies == 0;
    }
};

/**
 * Stateful per-test readout fault injector. Deterministic: equal
 * (config, layout, sequence of clean signatures) give equal faults.
 */
class FaultInjector
{
  public:
    /**
     * @param cfg               Fault rates and seed.
     * @param thread_word_counts Signature words produced by each
     *                          thread, in thread order; the per-thread
     *                          layout is needed by the truncation
     *                          model. The sum is the total word count.
     */
    FaultInjector(const FaultConfig &cfg,
                  std::vector<std::uint32_t> thread_word_counts);

    /** Pass one iteration's clean signature through the faulty path. */
    FaultedReadout read(const Signature &clean);

    /**
     * Like read(), but reuses @p out's word buffer (zero heap
     * allocations at steady state). Fault decisions consume the same
     * random stream as read(), so mixing the two entry points within
     * one injector keeps determinism.
     */
    void readInto(const Signature &clean, FaultedReadout &out);

    const InjectionCounts &counts() const { return ledger; }

    bool enabled() const { return cfg.enabled(); }

  private:
    FaultConfig cfg;
    std::vector<std::uint32_t> threadWords;
    std::vector<std::uint32_t> wordBases; ///< prefix sums of threadWords
    std::uint32_t totalWords = 0;
    Rng rng;
    InjectionCounts ledger;

    /** Last signature that reached the host intact-or-torn; the torn
     * model re-exposes its suffix. */
    Signature lastFlushed;
};

} // namespace mtc

#endif // MTC_SIM_FAULT_INJECTOR_H
