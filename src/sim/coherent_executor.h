/**
 * @file
 * Message-level MESI(-style MSI) directory-coherence platform.
 *
 * While OperationalExecutor models coherence as latency classes, this
 * platform simulates the actual protocol the paper's gem5 case studies
 * exercise: per-core L1 controllers with transient states, a blocking
 * directory, explicit request / forward / invalidate / ack messages on
 * a latency-jittered network, capacity evictions with writeback
 * buffers, and speculative loads that are squashed and replayed when
 * their line is invalidated in flight (the LSQ behaviour whose absence
 * is bug 2, and whose protocol-window variant is bug 1 — the Peekaboo
 * problem). Bug 3 drops a forward that races with the owner's eviction
 * (the PUTX/GETX race), wedging the requester exactly like the paper's
 * "protocol deadlock" crash.
 *
 * Protocol sketch (blocking directory, MSI with direct cache-to-cache
 * transfer):
 *
 *   GetS:  dir I -> Data;          dir S -> Data, add sharer;
 *          dir M -> FwdGetS to owner; owner Data->req, Data(wb)->dir.
 *   GetM:  dir I -> Data(acks=0);  dir S -> Inv sharers, Data(acks=n);
 *          dir M -> FwdGetM to owner; owner Data->req, FwdAck->dir.
 *   PutM:  dir M (from owner) -> PutAck; stale/raced PutM -> PutAck.
 *
 * Invalidation acks flow directly to the requester. An owner that has
 * evicted keeps the line in a writeback buffer until PutAck and serves
 * forwards from it — unless bug 3 is injected, in which case the
 * forward is lost.
 */

#ifndef MTC_SIM_COHERENT_EXECUTOR_H
#define MTC_SIM_COHERENT_EXECUTOR_H

#include <array>
#include <cstdint>

#include "mcm/memory_model.h"
#include "sim/executor_config.h"
#include "sim/platform.h"

namespace mtc
{

/** Coherence-protocol message types. */
enum class MsgType : std::uint8_t
{
    GetS,    ///< cache -> dir: read request
    GetM,    ///< cache -> dir: write/upgrade request
    PutM,    ///< cache -> dir: dirty eviction (the paper's PUTX)
    FwdGetS, ///< dir -> owner: serve a reader, downgrade to S
    FwdGetM, ///< dir -> owner: transfer ownership
    Inv,     ///< dir -> sharer: invalidate, ack the requester
    Data,    ///< data response (from dir or owner)
    DataWb,  ///< owner -> dir: downgrade writeback copy
    FwdAck,  ///< owner -> dir: ownership-transfer confirmation
    InvAck,  ///< sharer -> requester
    PutAck,  ///< dir -> evicting owner
    SbDrain, ///< core-internal: store buffer hands a GetM to the NoC
};

/**
 * Fixed-capacity cache-line image riding with Data / DataWb / PutM
 * messages. Inline storage keeps message construction and queueing
 * heap-free (the coherent hot path sends thousands of messages per
 * run); the capacity covers every wordsPerLine the test-config
 * validation admits at the default line geometry, and the executor
 * rejects larger geometries up front.
 */
struct LinePayload
{
    static constexpr std::uint32_t kMaxWords = 16;

    std::array<std::uint32_t, kMaxWords> words{};

    std::uint32_t &operator[](std::size_t i) { return words[i]; }
    std::uint32_t operator[](std::size_t i) const { return words[i]; }
};

/** One protocol message in flight. */
struct CohMessage
{
    MsgType type = MsgType::GetS;
    std::uint32_t line = 0;
    std::int32_t src = 0;       ///< core id or kDirectoryId
    std::int32_t dst = 0;
    std::int32_t requester = 0; ///< forwarded requester / ack target
    std::uint32_t ackCount = 0; ///< with Data: InvAcks to await

    /** Line contents riding with Data / DataWb / PutM messages. */
    LinePayload payload;
};

/** Pseudo core-id of the directory. */
constexpr std::int32_t kDirectoryId = -1;

/** Configuration of the coherent platform. */
struct CoherentConfig
{
    MemoryModel model = MemoryModel::TSO;

    /** Per-thread out-of-order window (see OrderTable). */
    std::uint32_t reorderWindow = 8;

    /** Per-core L1 capacity in lines (0 = unbounded, no evictions). */
    std::uint32_t cacheLines = 0;

    std::uint64_t hitLatency = 2;        ///< L1 hit
    std::uint64_t networkLatency = 12;   ///< per message hop
    std::uint64_t networkJitterMax = 6;  ///< uniform [0, max] per hop
    std::uint64_t dirLatency = 10;       ///< directory occupancy

    /** Store-buffer drain delay: stores sit in the buffer while their
     * ownership request is deferred, letting program-order-later loads
     * issue first — the mechanism behind the classic store-buffering
     * relaxation. */
    std::uint64_t storeBufferDelay = 24;

    bool exportCoherenceOrder = false;

    BugKind bug = BugKind::None;
    double bugProbability = 1.0;

    /** Guard against protocol livelock in the simulator itself. */
    std::uint64_t maxEvents = 50'000'000;

    /**
     * Liveness drill: after this many delivered protocol events the
     * machine wedges (spins until a cancellation token fires, then
     * raises TestHungError). 0 = never. See
     * ExecutorConfig::stallAfterSteps — only meaningful under a
     * watchdog.
     */
    std::uint64_t stallAfterSteps = 0;
};

/** The coherent multicore platform (see file comment). */
class CoherentExecutor : public Platform
{
  public:
    explicit CoherentExecutor(CoherentConfig cfg_arg);

    const CoherentConfig &config() const { return cfg; }

    using Platform::runInto;
    void runInto(const TestProgram &program, Rng &rng, RunArena &arena,
                 const CancellationToken *cancel) override;

  private:
    CoherentConfig cfg;
};

/** Gem5-study stand-in: x86-TSO cores on the MESI directory. */
CoherentConfig gem5LikeConfig();

} // namespace mtc

#endif // MTC_SIM_COHERENT_EXECUTOR_H
