#include "sim/coherent_executor.h"

#include <algorithm>
#include <limits>
#include <tuple>
#include <vector>

#include "sim/order_table.h"
#include "support/error.h"

namespace mtc
{

namespace
{

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/** L1 line states, stable + transient (classic MSI notation). */
enum class CState : std::uint8_t
{
    I,
    S,
    M,
    IS_D,  ///< GetS issued, awaiting Data
    IM_AD, ///< GetM issued, awaiting Data and acks
    IM_A,  ///< Data arrived, awaiting remaining InvAcks
    SM_AD, ///< upgrade issued from S (the Peekaboo window)
    SM_A,
};

inline bool
isValidState(CState s)
{
    return s == CState::S || s == CState::M;
}

inline bool
inUpgradeWindow(CState s)
{
    return s == CState::SM_AD || s == CState::SM_A;
}

inline bool
awaitingOwnership(CState s)
{
    return s == CState::IM_AD || s == CState::IM_A ||
        s == CState::SM_AD || s == CState::SM_A;
}

/** Directory stable states. */
enum class DirState : std::uint8_t
{
    I,
    S,
    M,
};

struct Event
{
    std::uint64_t time;
    std::uint64_t seq;
    CohMessage msg;

    bool
    operator>(const Event &other) const
    {
        return std::tie(time, seq) > std::tie(other.time, other.seq);
    }
};

/**
 * FIFO of stalled protocol messages backed by a reusable vector (a
 * deque would release its blocks on clear, reallocating every run).
 */
struct MsgFifo
{
    std::vector<CohMessage> items;
    std::size_t next = 0;

    bool empty() const { return next >= items.size(); }

    std::size_t size() const { return items.size() - next; }

    void push(const CohMessage &msg) { items.push_back(msg); }

    CohMessage
    pop()
    {
        CohMessage msg = items[next++];
        if (next == items.size()) {
            items.clear();
            next = 0;
        }
        return msg;
    }

    void
    clear()
    {
        items.clear();
        next = 0;
    }
};

constexpr std::uint64_t kWatchdogInterval = 100'000;

/**
 * The whole coherent machine, parked in a RunArena between runs.
 * reset() re-fills every container in place (assign/resize/clear keep
 * capacity), so a steady-state run allocates nothing: messages carry
 * inline payloads, the event queue is a reusable vector-heap, the
 * point-to-point FIFO table and memory image are flat arrays, and
 * writeback buffers live inside their cache-line entries.
 */
class Machine : public RunArena::State
{
  public:
    void
    reset(const TestProgram &program_arg, const CoherentConfig &cfg_arg,
          const OrderTable &order_arg, Rng &rng_arg, Execution &out)
    {
        program = &program_arg;
        cfg = &cfg_arg;
        order = &order_arg;
        rng = &rng_arg;
        result = &out;

        numThreads = program->numThreads();
        numLines = program->numLines();
        wordsPerLine = program->config().wordsPerLine;
        if (wordsPerLine > LinePayload::kMaxWords) {
            throw ConfigError(
                "coherent platform supports at most 16 words per line");
        }

        completion.reset(*program);
        const auto &threads = program->threadBodies();
        head.assign(numThreads, 0);
        coreTime.assign(numThreads, 0);
        opStates.resize(numThreads);
        remaining = 0;
        for (std::uint32_t t = 0; t < numThreads; ++t) {
            remaining += threads[t].size();
            opStates[t].assign(threads[t].size(), OpState{});
        }

        caches.resize(numThreads);
        for (auto &cache : caches) {
            cache.lines.resize(numLines);
            for (auto &line : cache.lines) {
                line.state = CState::I;
                line.data.words.fill(kInitValue);
                line.acksNeeded = 0;
                line.acksReceived = 0;
                line.dataSeen = false;
                line.invWhileFill = false;
                line.resident = false;
                line.epoch = 0;
                line.lastTouch = 0;
                line.requesterIdx = -1;
                line.wbValid = false;
                line.deferredFwds.clear();
            }
            cache.residentCount = 0;
        }

        directory.resize(numLines);
        for (DirEntry &entry : directory) {
            entry.state = DirState::I;
            entry.owner = -1;
            entry.sharers = 0;
            entry.busy = false;
            entry.pending.clear();
            entry.heldPuts.clear();
        }
        memData.assign(
            static_cast<std::size_t>(numLines) * wordsPerLine,
            kInitValue);

        eventQueue.clear();
        lastDelivery.assign(
            static_cast<std::size_t>(numThreads + 1) * (numThreads + 1),
            kNever);
        pendingFwdService.clear();

        now = 0;
        commitCount = 0;
        seqCounter = 0;
        touchCounter = 0;
        forwardsDropped = false;

        result->loadValues.assign(program->loads().size(), kInitValue);
        result->duration = 0;
        if (cfg->exportCoherenceOrder) {
            result->coherenceOrder.resize(
                program->config().numLocations);
            for (auto &per_loc : result->coherenceOrder)
                per_loc.clear();
        } else {
            result->coherenceOrder.clear();
        }
    }

    /** Arm (or clear) the watchdog stop token for the next run(). */
    void
    armCancellation(const CancellationToken *token)
    {
        cancel = token;
    }

    void
    run()
    {
        for (std::uint32_t t = 0; t < numThreads; ++t)
            progressCore(t);

        std::uint64_t events_handled = 0;
        std::uint64_t commits_at_last_check = 0;
        std::uint64_t next_watchdog = kWatchdogInterval;
        while (remaining > 0) {
            // Liveness layer: bail out when the campaign watchdog
            // fired, and honor the injected-stall drill (a wedge the
            // protocol-level progress watchdog below cannot see,
            // because it stops delivering events entirely).
            if (cancel && cancel->stopRequested()) {
                throw TestHungError(
                    "run abandoned by watchdog: test deadline expired");
            }
            if (cfg->stallAfterSteps &&
                events_handled >= cfg->stallAfterSteps)
                stallUntilCancelled(cancel);
            // A deadlocked platform may still generate traffic forever
            // (live lines ping-pong between cores whose stuck heads
            // keep them ineligible), so wedge detection watches commit
            // progress, not queue emptiness alone.
            const bool watchdog_fired = events_handled >= next_watchdog &&
                commitCount == commits_at_last_check;
            if (eventQueue.empty() || watchdog_fired) {
                if (cfg->bug == BugKind::PutxGetxRace &&
                    forwardsDropped) {
                    throw ProtocolDeadlockError(
                        "ownership request lost in PUTX/GETX race: "
                        "platform deadlocked");
                }
                throw PlatformError(
                    "coherence protocol wedged with no injected bug "
                    "(simulator defect)\n" +
                    describeWedge());
            }
            if (events_handled >= next_watchdog) {
                commits_at_last_check = commitCount;
                next_watchdog = events_handled + kWatchdogInterval;
            }
            if (++events_handled > cfg->maxEvents) {
                throw PlatformError("coherence event budget exhausted\n" +
                                    describeWedge());
            }

            const Event event = popEvent();
            now = std::max(now, event.time);
            deliver(event.msg);

            for (std::uint32_t t = 0; t < numThreads; ++t)
                progressCore(t);
            serveDeferredForwards();
        }

        result->duration = now;
        for (std::uint32_t t = 0; t < numThreads; ++t)
            result->duration = std::max(result->duration, coreTime[t]);
    }

    /** Render the stuck state for the wedge diagnostic. */
    std::string
    describeWedge() const
    {
        std::string text;
        for (std::uint32_t t = 0; t < numThreads; ++t) {
            const auto &body = program->threadBodies()[t];
            if (head[t] >= body.size())
                continue;
            const MemOp &op = body[head[t]];
            const std::uint32_t line_idx = op.kind == OpKind::Fence
                ? 0
                : program->lineOf(op.loc);
            const CacheLineEntry &line = caches[t].lines[line_idx];
            const DirEntry &entry = directory[line_idx];
            text += "core " + std::to_string(t) + " head op" +
                std::to_string(head[t]) + " " + opKindName(op.kind) +
                " line " + std::to_string(line_idx) + " cstate " +
                std::to_string(static_cast<int>(line.state)) +
                " acks " + std::to_string(line.acksReceived) + "/" +
                std::to_string(line.acksNeeded) + " dataSeen " +
                std::to_string(line.dataSeen) + " deferred " +
                std::to_string(line.deferredFwds.size()) +
                " | dir state " +
                std::to_string(static_cast<int>(entry.state)) +
                " owner " + std::to_string(entry.owner) + " busy " +
                std::to_string(entry.busy) + " pending " +
                std::to_string(entry.pending.size()) + "\n";
        }
        return text;
    }

  private:
    // --- structures ---------------------------------------------------

    struct CacheLineEntry
    {
        CState state = CState::I;
        LinePayload data;
        std::uint32_t acksNeeded = 0;
        std::uint32_t acksReceived = 0;
        bool dataSeen = false;     ///< Data arrived, may await acks
        bool invWhileFill = false; ///< Inv hit IS_D: one-shot fill
        bool resident = false;     ///< counted against capacity
        std::uint64_t epoch = 0;   ///< bumped on gain/loss of data
        std::uint64_t lastTouch = 0;
        /** Load that initiated an outstanding GetS (one-shot fills). */
        std::int32_t requesterIdx = -1;
        /** Writeback buffer: an evicted-M copy awaiting PutAck. */
        bool wbValid = false;
        LinePayload wbData;
        /** Forwards that raced ahead of our ownership Data. */
        std::vector<CohMessage> deferredFwds;
    };

    struct L1
    {
        std::vector<CacheLineEntry> lines;
        std::uint32_t residentCount = 0;
    };

    struct DirEntry
    {
        DirState state = DirState::I;
        std::int32_t owner = -1;
        std::uint32_t sharers = 0;
        bool busy = false;
        MsgFifo pending;  ///< stalled requests
        MsgFifo heldPuts; ///< PutM raced with a forward
    };

    struct OpState
    {
        bool captured = false;
        bool forwarded = false;
        std::uint32_t capturedValue = 0;
        std::uint64_t capturedEpoch = 0;
    };

    // --- event queue (vector min-heap, capacity reused) ----------------

    void
    pushEvent(Event event)
    {
        eventQueue.push_back(std::move(event));
        std::push_heap(eventQueue.begin(), eventQueue.end(),
                       std::greater<Event>{});
    }

    Event
    popEvent()
    {
        std::pop_heap(eventQueue.begin(), eventQueue.end(),
                      std::greater<Event>{});
        Event event = std::move(eventQueue.back());
        eventQueue.pop_back();
        return event;
    }

    // --- memory image ---------------------------------------------------

    std::uint32_t *
    memLine(std::uint32_t line)
    {
        return memData.data() +
            static_cast<std::size_t>(line) * wordsPerLine;
    }

    void
    memTake(std::uint32_t line, const LinePayload &payload)
    {
        std::copy_n(payload.words.data(), wordsPerLine, memLine(line));
    }

    LinePayload
    memPayload(std::uint32_t line)
    {
        LinePayload payload;
        std::copy_n(memLine(line), wordsPerLine, payload.words.data());
        return payload;
    }

    // --- network --------------------------------------------------------

    /** Schedule a core-internal event: no network hop, no FIFO. */
    void
    schedule(CohMessage msg, std::uint64_t delay)
    {
        pushEvent(Event{now + delay, seqCounter++, std::move(msg)});
    }

    void
    send(CohMessage msg)
    {
        const std::uint64_t hop = cfg->networkLatency +
            (cfg->networkJitterMax
                 ? rng->nextBelow(cfg->networkJitterMax + 1)
                 : 0);
        std::uint64_t at = now + hop;
        // Point-to-point FIFO ordering, which the protocol relies on
        // for Data-before-Inv from a single sender.
        const std::size_t key =
            static_cast<std::size_t>(
                static_cast<std::uint32_t>(msg.src + 1)) *
                (numThreads + 1) +
            static_cast<std::uint32_t>(msg.dst + 1);
        std::uint64_t &last = lastDelivery[key];
        if (last != kNever)
            at = std::max(at, last + 1);
        last = at;
        pushEvent(Event{at, seqCounter++, std::move(msg)});
    }

    void
    deliver(const CohMessage &msg)
    {
        if (msg.dst == kDirectoryId)
            directoryHandle(msg);
        else
            cacheHandle(static_cast<std::uint32_t>(msg.dst), msg);
    }

    // --- directory ------------------------------------------------------

    void
    directoryHandle(const CohMessage &msg)
    {
        DirEntry &entry = directory[msg.line];
        switch (msg.type) {
          case MsgType::GetS:
          case MsgType::GetM:
            if (entry.busy) {
                entry.pending.push(msg);
                return;
            }
            directoryRequest(msg);
            return;
          case MsgType::PutM:
            directoryPutM(msg);
            return;
          case MsgType::DataWb:
            // Owner downgraded for a reader: memory takes the copy.
            memTake(msg.line, msg.payload);
            entry.state = DirState::S;
            entry.sharers |=
                (std::uint32_t(1)
                 << static_cast<std::uint32_t>(msg.src)) |
                (std::uint32_t(1)
                 << static_cast<std::uint32_t>(msg.requester));
            entry.owner = -1;
            unbusy(msg.line);
            return;
          case MsgType::FwdAck:
            // Ownership moved to msg.requester.
            entry.state = DirState::M;
            entry.owner = msg.requester;
            entry.sharers = 0;
            unbusy(msg.line);
            return;
          default:
            throw PlatformError("unexpected message at directory");
        }
    }

    void
    directoryRequest(const CohMessage &msg)
    {
        DirEntry &entry = directory[msg.line];
        const std::uint32_t req_bit = std::uint32_t(1)
            << static_cast<std::uint32_t>(msg.src);

        if (msg.type == MsgType::GetS) {
            switch (entry.state) {
              case DirState::I:
                sendDirData(msg.line, msg.src, 0);
                entry.state = DirState::S;
                entry.sharers = req_bit;
                return;
              case DirState::S:
                sendDirData(msg.line, msg.src, 0);
                entry.sharers |= req_bit;
                return;
              case DirState::M:
                entry.busy = true;
                send(CohMessage{MsgType::FwdGetS, msg.line,
                                kDirectoryId, entry.owner, msg.src, 0,
                                {}});
                return;
            }
        }

        // GetM.
        switch (entry.state) {
          case DirState::I:
            sendDirData(msg.line, msg.src, 0);
            entry.state = DirState::M;
            entry.owner = msg.src;
            entry.sharers = 0;
            return;
          case DirState::S: {
            const std::uint32_t invalidatees = entry.sharers & ~req_bit;
            std::uint32_t acks = 0;
            for (std::uint32_t t = 0; t < numThreads; ++t) {
                if ((invalidatees >> t) & 1) {
                    ++acks;
                    send(CohMessage{MsgType::Inv, msg.line,
                                    kDirectoryId,
                                    static_cast<std::int32_t>(t),
                                    msg.src, 0, {}});
                }
            }
            sendDirData(msg.line, msg.src, acks);
            entry.state = DirState::M;
            entry.owner = msg.src;
            entry.sharers = 0;
            return;
          }
          case DirState::M:
            entry.busy = true;
            send(CohMessage{MsgType::FwdGetM, msg.line, kDirectoryId,
                            entry.owner, msg.src, 0, {}});
            return;
        }
    }

    void
    directoryPutM(const CohMessage &msg)
    {
        DirEntry &entry = directory[msg.line];
        if (entry.busy) {
            // The PutM raced with a forward already sent to this owner;
            // acknowledge only once the transfer resolves, so the owner
            // keeps its writeback buffer long enough to serve the
            // forward.
            entry.heldPuts.push(msg);
            return;
        }
        if (entry.state == DirState::M && entry.owner == msg.src) {
            memTake(msg.line, msg.payload);
            entry.state = DirState::I;
            entry.owner = -1;
        }
        // Stale PutM (ownership already moved on): acknowledge anyway.
        send(CohMessage{MsgType::PutAck, msg.line, kDirectoryId, msg.src,
                        msg.src, 0, {}});
    }

    void
    unbusy(std::uint32_t line)
    {
        DirEntry &entry = directory[line];
        entry.busy = false;
        while (!entry.heldPuts.empty()) {
            const CohMessage put = entry.heldPuts.pop();
            directoryPutM(put);
        }
        // Drain stalled requests until one re-busies the entry (an
        // immediately-satisfiable request must not strand the rest).
        while (!entry.busy && !entry.pending.empty()) {
            const CohMessage next = entry.pending.pop();
            directoryRequest(next);
        }
    }

    /** Data from the directory carries memory's copy. */
    void
    sendDirData(std::uint32_t line, std::int32_t dst, std::uint32_t acks)
    {
        send(CohMessage{MsgType::Data, line, kDirectoryId, dst, dst,
                        acks, memPayload(line)});
    }

    // --- L1 caches -------------------------------------------------------

    void
    cacheHandle(std::uint32_t tid, const CohMessage &msg)
    {
        L1 &cache = caches[tid];
        CacheLineEntry &line = cache.lines[msg.line];

        switch (msg.type) {
          case MsgType::Data:
            handleDataArrival(tid, msg);
            return;
          case MsgType::InvAck:
            ++line.acksReceived;
            maybeFinishUpgrade(tid, msg.line);
            return;
          case MsgType::Inv:
            handleInv(tid, msg);
            return;
          case MsgType::FwdGetS:
          case MsgType::FwdGetM:
            if (line.state == CState::M || line.wbValid) {
                // Current owner, or past owner still holding the
                // writeback buffer (the PUTX/GETX race window).
                if (msg.type == MsgType::FwdGetS)
                    handleFwdGetS(tid, msg);
                else
                    handleFwdGetM(tid, msg);
            } else if (awaitingOwnership(line.state) ||
                       line.state == CState::IS_D) {
                // The forward raced ahead of the Data that makes us
                // owner; service it once ownership arrives.
                line.deferredFwds.push_back(msg);
            } else {
                throw PlatformError(
                    "forward for a line the owner lost");
            }
            return;
          case MsgType::PutAck:
            line.wbValid = false;
            return;
          case MsgType::SbDrain:
            send(CohMessage{MsgType::GetM, msg.line,
                            static_cast<std::int32_t>(tid),
                            kDirectoryId,
                            static_cast<std::int32_t>(tid), 0, {}});
            return;
          default:
            throw PlatformError("unexpected message at cache");
        }
    }

    void
    handleDataArrival(std::uint32_t tid, const CohMessage &msg)
    {
        CacheLineEntry &line = caches[tid].lines[msg.line];

        if (line.state == CState::IS_D && line.invWhileFill) {
            // The fill raced with an invalidation (the Peekaboo
            // window). The data may satisfy the initiating load only
            // if it is the *oldest* uncommitted load of this line in
            // this core: the payload is coherence-later than anything
            // already committed, and every younger speculative load is
            // squashed by the epoch bump below. (Satisfying a younger
            // load here is exactly the ld->ld reordering of bug 1.)
            // This one-shot also guarantees forward progress for a
            // head load under invalidation storms.
            line.invWhileFill = false;
            if (line.requesterIdx >= 0 &&
                oldestUncommittedLoadOfLine(tid, msg.line) ==
                    line.requesterIdx) {
                oneShotCapture(
                    tid, static_cast<std::uint32_t>(line.requesterIdx),
                    msg.line, msg.payload);
            }
            line.requesterIdx = -1;
            line.state = CState::I;
            ++line.epoch;
            return;
        }

        line.data = msg.payload;
        line.dataSeen = true;
        line.acksNeeded = msg.ackCount;
        ++line.epoch;

        switch (line.state) {
          case CState::IS_D:
            allocate(tid, msg.line);
            line.state = CState::S;
            line.requesterIdx = -1;
            line.dataSeen = false;
            break;
          case CState::IM_AD:
          case CState::SM_AD:
            allocate(tid, msg.line);
            maybeFinishUpgrade(tid, msg.line);
            break;
          default:
            throw PlatformError("data arrived in unexpected state");
        }
    }

    void
    maybeFinishUpgrade(std::uint32_t tid, std::uint32_t line_idx)
    {
        CacheLineEntry &line = caches[tid].lines[line_idx];
        if (!awaitingOwnership(line.state))
            return;
        if (!line.dataSeen || line.acksReceived < line.acksNeeded)
            return;
        line.state = CState::M;
        line.acksReceived = 0;
        line.acksNeeded = 0;
        line.dataSeen = false;

        // Forwards that raced ahead of our ownership are served only
        // after the local cores have had one progress pass: the store
        // that requested this line must get a chance to perform first,
        // or two contending writers livelock stealing the line from
        // each other before either commits (the MSHR
        // perform-before-relinquish rule). An *ineligible* store still
        // loses the line, which avoids cross-line blocking deadlocks.
        if (!line.deferredFwds.empty())
            pendingFwdService.emplace_back(tid, line_idx);
    }

    void
    handleInv(std::uint32_t tid, const CohMessage &msg)
    {
        CacheLineEntry &line = caches[tid].lines[msg.line];
        switch (line.state) {
          case CState::S:
            line.state = CState::I;
            deallocate(tid, msg.line);
            ++line.epoch;
            break;
          case CState::SM_AD:
          case CState::SM_A:
            // Lost the S copy while upgrading (the bug-1 window); the
            // upgrade still completes when Data/acks arrive.
            ++line.epoch;
            break;
          case CState::IS_D:
            // Data may still be in flight from an owner: mark the fill
            // one-shot.
            line.invWhileFill = true;
            ++line.epoch;
            break;
          default:
            // Stale Inv for a silently evicted line.
            break;
        }
        send(CohMessage{MsgType::InvAck, msg.line,
                        static_cast<std::int32_t>(tid), msg.requester,
                        msg.requester, 0, {}});
    }

    void
    handleFwdGetS(std::uint32_t tid, const CohMessage &msg)
    {
        L1 &cache = caches[tid];
        CacheLineEntry &line = cache.lines[msg.line];
        if (line.state == CState::M) {
            send(CohMessage{MsgType::Data, msg.line,
                            static_cast<std::int32_t>(tid),
                            msg.requester, msg.requester, 0, line.data});
            send(CohMessage{MsgType::DataWb, msg.line,
                            static_cast<std::int32_t>(tid), kDirectoryId,
                            msg.requester, 0, line.data});
            line.state = CState::S;
            return;
        }
        serveFromWriteback(tid, msg, /*transfer_ownership=*/false);
    }

    void
    handleFwdGetM(std::uint32_t tid, const CohMessage &msg)
    {
        L1 &cache = caches[tid];
        CacheLineEntry &line = cache.lines[msg.line];
        if (line.state == CState::M) {
            send(CohMessage{MsgType::Data, msg.line,
                            static_cast<std::int32_t>(tid),
                            msg.requester, msg.requester, 0, line.data});
            send(CohMessage{MsgType::FwdAck, msg.line,
                            static_cast<std::int32_t>(tid), kDirectoryId,
                            msg.requester, 0, {}});
            line.state = CState::I;
            deallocate(tid, msg.line);
            ++line.epoch;
            return;
        }
        serveFromWriteback(tid, msg, /*transfer_ownership=*/true);
    }

    void
    serveFromWriteback(std::uint32_t tid, const CohMessage &msg,
                       bool transfer_ownership)
    {
        L1 &cache = caches[tid];
        CacheLineEntry &line = cache.lines[msg.line];
        if (!line.wbValid)
            throw PlatformError("forward for a line the owner lost");

        // Bug 3: the forward raced with the writeback and is dropped;
        // the requester (and the busy directory entry) starve.
        if (cfg->bug == BugKind::PutxGetxRace &&
            rng->nextBool(cfg->bugProbability)) {
            forwardsDropped = true;
            return;
        }

        send(CohMessage{MsgType::Data, msg.line,
                        static_cast<std::int32_t>(tid), msg.requester,
                        msg.requester, 0, line.wbData});
        if (transfer_ownership) {
            send(CohMessage{MsgType::FwdAck, msg.line,
                            static_cast<std::int32_t>(tid), kDirectoryId,
                            msg.requester, 0, {}});
        } else {
            send(CohMessage{MsgType::DataWb, msg.line,
                            static_cast<std::int32_t>(tid), kDirectoryId,
                            msg.requester, 0, line.wbData});
        }
    }

    // --- capacity --------------------------------------------------------

    void
    allocate(std::uint32_t tid, std::uint32_t line_idx)
    {
        L1 &cache = caches[tid];
        CacheLineEntry &line = cache.lines[line_idx];
        line.lastTouch = ++touchCounter;
        if (line.resident)
            return;
        line.resident = true;
        ++cache.residentCount;
        if (cfg->cacheLines == 0 ||
            cache.residentCount <= cfg->cacheLines) {
            return;
        }

        // Evict the LRU stable line other than the new one.
        std::int64_t victim = -1;
        std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
        for (std::uint32_t l = 0; l < numLines; ++l) {
            if (l == line_idx)
                continue;
            const CacheLineEntry &cand = cache.lines[l];
            if (cand.resident && isValidState(cand.state) &&
                cand.lastTouch < oldest) {
                oldest = cand.lastTouch;
                victim = l;
            }
        }
        if (victim < 0)
            return; // everything transient; tolerate overflow

        CacheLineEntry &evicted =
            cache.lines[static_cast<std::uint32_t>(victim)];
        if (evicted.state == CState::M) {
            evicted.wbValid = true;
            evicted.wbData = evicted.data;
            send(CohMessage{MsgType::PutM,
                            static_cast<std::uint32_t>(victim),
                            static_cast<std::int32_t>(tid), kDirectoryId,
                            static_cast<std::int32_t>(tid), 0,
                            evicted.data});
        }
        // S lines drop silently; stale sharer bits are benign because
        // stale invalidations are acked regardless.
        evicted.state = CState::I;
        evicted.resident = false;
        ++evicted.epoch;
        --cache.residentCount;
    }

    void
    deallocate(std::uint32_t tid, std::uint32_t line_idx)
    {
        L1 &cache = caches[tid];
        CacheLineEntry &line = cache.lines[line_idx];
        if (line.resident) {
            line.resident = false;
            --cache.residentCount;
        }
    }

    // --- core engine ---------------------------------------------------

    bool
    isEligible(std::uint32_t tid, std::uint32_t idx) const
    {
        if (idx >= head[tid] + cfg->reorderWindow)
            return false;
        return (order->requiredPreds[tid][idx] &
                ~completion.windowCompleted(tid, idx)) == 0;
    }

    /**
     * Store-buffer forwarding via the precomputed nearest-prior-store
     * table (O(1); see OrderTable::priorStore).
     */
    std::optional<std::uint32_t>
    forwardedValue(std::uint32_t tid, std::uint32_t idx) const
    {
        const std::uint32_t prior = order->priorStore[tid][idx];
        if (prior == kNoPriorStore)
            return std::nullopt;
        if (!completion.isCompleted(tid, prior))
            return program->threadBodies()[tid][prior].value;
        return std::nullopt;
    }

    /** Oldest uncommitted load of @p line_idx in @p tid, or -1. */
    std::int32_t
    oldestUncommittedLoadOfLine(std::uint32_t tid,
                                std::uint32_t line_idx) const
    {
        const auto &body = program->threadBodies()[tid];
        for (std::uint32_t idx = head[tid]; idx < body.size(); ++idx) {
            if (completion.isCompleted(tid, idx))
                continue;
            const MemOp &op = body[idx];
            if (op.kind == OpKind::Load &&
                program->lineOf(op.loc) == line_idx) {
                return static_cast<std::int32_t>(idx);
            }
        }
        return -1;
    }

    /** Bind a raced fill's payload to the initiating load. */
    void
    oneShotCapture(std::uint32_t tid, std::uint32_t idx,
                   std::uint32_t line_idx, const LinePayload &payload)
    {
        if (completion.isCompleted(tid, idx))
            return;
        OpState &op_state = opStates[tid][idx];
        const MemOp &op = program->threadBodies()[tid][idx];
        if (op.kind != OpKind::Load ||
            program->lineOf(op.loc) != line_idx) {
            return;
        }
        op_state.captured = true;
        op_state.forwarded = false;
        op_state.capturedValue = payload[op.loc % wordsPerLine];
        // The caller bumps the epoch right after this capture; match
        // it so the commit-time squash check accepts the value (it was
        // legitimately read at fill time).
        op_state.capturedEpoch =
            caches[tid].lines[line_idx].epoch + 1;
    }

    /** Serve forwards deferred until after the local progress pass. */
    void
    serveDeferredForwards()
    {
        while (!pendingFwdService.empty()) {
            const auto [tid, line_idx] = pendingFwdService.back();
            pendingFwdService.pop_back();
            CacheLineEntry &line = caches[tid].lines[line_idx];
            // Swap through a member scratch vector so both buffers
            // keep their capacity (a local would free on destruction).
            fwdScratch.clear();
            fwdScratch.swap(line.deferredFwds);
            for (const CohMessage &fwd : fwdScratch) {
                // Re-dispatch through the normal path: the line may
                // have changed state again since deferral.
                cacheHandle(tid, fwd);
            }
        }
    }

    void
    progressCore(std::uint32_t tid)
    {
        const auto &body = program->threadBodies()[tid];
        bool advanced = true;
        while (advanced) {
            advanced = false;
            const std::uint32_t end = std::min<std::uint32_t>(
                static_cast<std::uint32_t>(body.size()),
                head[tid] + cfg->reorderWindow);
            for (std::uint32_t idx = head[tid]; idx < end; ++idx) {
                if (completion.isCompleted(tid, idx))
                    continue;
                advanced |= tryOp(tid, idx);
            }
        }
    }

    /** Advance one op: speculative capture, request issue, or commit.
     * Returns true when the op committed. */
    bool
    tryOp(std::uint32_t tid, std::uint32_t idx)
    {
        const MemOp &op = program->threadBodies()[tid][idx];
        OpState &op_state = opStates[tid][idx];

        if (op.kind == OpKind::Fence) {
            if (!isEligible(tid, idx))
                return false;
            commit(tid, idx);
            return true;
        }

        const std::uint32_t line_idx = program->lineOf(op.loc);
        CacheLineEntry &line = caches[tid].lines[line_idx];

        if (op.kind == OpKind::Store) {
            if (line.state == CState::M) {
                if (!isEligible(tid, idx))
                    return false;
                line.data[op.loc % wordsPerLine] = op.value;
                line.lastTouch = ++touchCounter;
                if (cfg->exportCoherenceOrder) {
                    result->coherenceOrder[op.loc].push_back(
                        OpId{tid, idx});
                }
                commit(tid, idx);
                return true;
            }
            issueWriteRequest(tid, line_idx);
            return false;
        }

        // Load: speculative execution (no eligibility needed).
        if (!op_state.captured) {
            const auto forwarded = forwardedValue(tid, idx);
            if (forwarded) {
                op_state.captured = true;
                op_state.forwarded = true;
                op_state.capturedValue = *forwarded;
            } else if (isValidState(line.state)) {
                op_state.captured = true;
                op_state.capturedValue =
                    line.data[op.loc % wordsPerLine];
                op_state.capturedEpoch = line.epoch;
                line.lastTouch = ++touchCounter;
            } else {
                issueReadRequest(tid, line_idx,
                                 static_cast<std::int32_t>(idx));
                return false;
            }
        }

        if (!isEligible(tid, idx))
            return false;

        if (op_state.forwarded) {
            // Store-buffer forwarding is only bindable at commit while
            // the store is still buffered (TSO value axiom). Once the
            // store has committed, an external store may have
            // overwritten the location; behave like a fresh read.
            const auto still = forwardedValue(tid, idx);
            if (!still) {
                op_state.forwarded = false;
                op_state.captured = false;
                if (isValidState(line.state)) {
                    op_state.captured = true;
                    op_state.capturedValue =
                        line.data[op.loc % wordsPerLine];
                    op_state.capturedEpoch = line.epoch;
                } else {
                    issueReadRequest(tid, line_idx,
                                     static_cast<std::int32_t>(idx));
                    return false;
                }
            }
        }

        if (!op_state.forwarded && op_state.capturedEpoch != line.epoch) {
            // The line changed between speculative execution and
            // commit: a correct LSQ squashes and replays the load.
            const bool keep_stale =
                (cfg->bug == BugKind::LsqNoSquash ||
                 (cfg->bug == BugKind::StaleLoadOnUpgrade &&
                  inUpgradeWindow(line.state))) &&
                rng->nextBool(cfg->bugProbability);
            if (!keep_stale) {
                op_state.captured = false;
                if (isValidState(line.state)) {
                    op_state.captured = true;
                    op_state.capturedValue =
                        line.data[op.loc % wordsPerLine];
                    op_state.capturedEpoch = line.epoch;
                } else {
                    issueReadRequest(tid, line_idx,
                                     static_cast<std::int32_t>(idx));
                    return false;
                }
            }
        }

        result->loadValues[program->loadOrdinal(OpId{tid, idx})] =
            op_state.capturedValue;
        commit(tid, idx);
        return true;
    }

    void
    issueReadRequest(std::uint32_t tid, std::uint32_t line_idx,
                     std::int32_t initiator_idx)
    {
        CacheLineEntry &line = caches[tid].lines[line_idx];
        if (line.state != CState::I)
            return; // request already outstanding
        line.state = CState::IS_D;
        line.requesterIdx = initiator_idx;
        send(CohMessage{MsgType::GetS, line_idx,
                        static_cast<std::int32_t>(tid), kDirectoryId,
                        static_cast<std::int32_t>(tid), 0, {}});
    }

    void
    issueWriteRequest(std::uint32_t tid, std::uint32_t line_idx)
    {
        CacheLineEntry &line = caches[tid].lines[line_idx];
        if (line.state == CState::I) {
            line.state = CState::IM_AD;
        } else if (line.state == CState::S) {
            line.state = CState::SM_AD;
        } else {
            return; // transient: request already outstanding
        }
        line.dataSeen = false;
        line.acksReceived = 0;
        // The GetM drains from the store buffer after a delay, so
        // program-order-later loads hand their requests to the network
        // first (the store->load relaxation). The drain is modelled as
        // a core-internal event; the network FIFO applies only at
        // hand-off.
        schedule(CohMessage{MsgType::SbDrain, line_idx,
                            static_cast<std::int32_t>(tid),
                            static_cast<std::int32_t>(tid),
                            static_cast<std::int32_t>(tid), 0, {}},
                 cfg->storeBufferDelay
                     ? rng->nextBelow(cfg->storeBufferDelay + 1)
                     : 0);
    }

    void
    commit(std::uint32_t tid, std::uint32_t idx)
    {
        ++commitCount;
        completion.markCompleted(tid, idx);
        coreTime[tid] = std::max(coreTime[tid], now) + cfg->hitLatency;
        --remaining;
        const std::uint32_t size = static_cast<std::uint32_t>(
            program->threadBodies()[tid].size());
        while (head[tid] < size &&
               completion.isCompleted(tid, head[tid])) {
            ++head[tid];
        }
    }

    // --- members --------------------------------------------------------

    const TestProgram *program = nullptr;
    const CoherentConfig *cfg = nullptr;
    const OrderTable *order = nullptr;
    Rng *rng = nullptr;
    Execution *result = nullptr;

    /** Watchdog stop token of the current run (may be null). */
    const CancellationToken *cancel = nullptr;

    std::uint32_t numThreads = 0;
    std::uint32_t numLines = 0;
    std::uint32_t wordsPerLine = 1;

    CompletionBits completion;
    std::vector<std::uint32_t> head;
    std::vector<std::uint64_t> coreTime;
    std::vector<std::vector<OpState>> opStates;
    std::uint64_t remaining = 0;

    std::vector<L1> caches;
    std::vector<DirEntry> directory;
    /** Flat memory image, [line * wordsPerLine + word]. */
    std::vector<std::uint32_t> memData;

    /** Event min-heap over a reusable vector. */
    std::vector<Event> eventQueue;
    /** Last delivery time per (src+1, dst+1) pair; kNever = none. */
    std::vector<std::uint64_t> lastDelivery;

    std::vector<std::pair<std::uint32_t, std::uint32_t>>
        pendingFwdService;
    std::vector<CohMessage> fwdScratch;

    std::uint64_t now = 0;
    std::uint64_t commitCount = 0;
    std::uint64_t seqCounter = 0;
    std::uint64_t touchCounter = 0;
    bool forwardsDropped = false;
};

/** Cache of OrderTables keyed by (program fingerprint, model). */
const OrderTable &
cachedOrderTable(const TestProgram &program, MemoryModel model)
{
    thread_local std::uint64_t cached_fp = 0;
    thread_local MemoryModel cached_model = MemoryModel::SC;
    thread_local OrderTable table;
    if (program.fingerprint() != cached_fp || model != cached_model ||
        table.requiredPreds.empty()) {
        table.build(program, model);
        cached_fp = program.fingerprint();
        cached_model = model;
    }
    return table;
}

} // anonymous namespace

CoherentExecutor::CoherentExecutor(CoherentConfig cfg_arg) : cfg(cfg_arg)
{
    if (cfg.reorderWindow < 1 || cfg.reorderWindow > kMaxReorderWindow)
        throw ConfigError("reorder window must lie in [1, 32]");
    if (cfg.bugProbability < 0.0 || cfg.bugProbability > 1.0)
        throw ConfigError("bug probability must lie in [0,1]");
}

void
CoherentExecutor::runInto(const TestProgram &program, Rng &rng,
                          RunArena &arena,
                          const CancellationToken *cancel)
{
    const OrderTable &order = cachedOrderTable(program, cfg.model);
    Machine &machine = arena.stateAs<Machine>();
    machine.reset(program, cfg, order, rng, arena.execution);
    machine.armCancellation(cancel);
    machine.run();
}

CoherentConfig
gem5LikeConfig()
{
    CoherentConfig cfg;
    cfg.model = MemoryModel::TSO;
    cfg.reorderWindow = 16;
    return cfg;
}

} // namespace mtc
