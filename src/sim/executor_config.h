/**
 * @file
 * Configuration of the multicore platform substitute.
 *
 * The paper validates real silicon; we validate a simulated platform
 * whose non-determinism has the same knobs. Two scheduling policies are
 * provided:
 *
 *  - UniformRandom: every model-eligible memory operation is equally
 *    likely to perform next. This matches the paper's "in-house
 *    architectural simulator, which selects memory operations to
 *    execute in a uniformly random fashion" (Section 4.1, used for the
 *    k-medoids limit study) and is the workhorse for checker unit
 *    tests.
 *
 *  - Timed: a latency-driven model with per-core issue slots, private
 *    cache line states (MESI-lite), coherence-transfer latencies with
 *    random jitter, capacity evictions, and optional OS preemption
 *    noise. Silicon-like behaviour: interleavings are mostly
 *    repeatable, diversify under contention (more threads, fewer
 *    locations, false sharing), and the relative diversity across test
 *    configurations follows the paper's Figure 8.
 *
 * Bug-injection hooks reproduce the paper's Section 7 case studies.
 */

#ifndef MTC_SIM_EXECUTOR_CONFIG_H
#define MTC_SIM_EXECUTOR_CONFIG_H

#include <cstdint>

#include "mcm/memory_model.h"

namespace mtc
{

/** How the executor picks the next operation to perform. */
enum class SchedulingPolicy : std::uint8_t
{
    UniformRandom,
    Timed,
};

/** Injected design bugs (paper Section 7). */
enum class BugKind : std::uint8_t
{
    None,

    /**
     * Bug 1: load->load violation, protocol issue (Peekaboo variant).
     * A load is served a stale value when its line is invalidated while
     * transitioning from shared to modified (an own store to the same
     * line is in flight).
     */
    StaleLoadOnUpgrade,

    /**
     * Bug 2: load->load violation, LSQ issue. The LSQ fails to squash
     * a load when its line is invalidated between issue and
     * completion, regardless of transition state (easier to hit than
     * bug 1, matching the paper's detection counts).
     */
    LsqNoSquash,

    /**
     * Bug 3: PUTX/GETX race. A dirty-ownership transfer request that
     * races with the owner's concurrent writeback eviction is lost,
     * deadlocking the requester (the paper reports gem5 crashing on
     * all tests).
     */
    PutxGetxRace,
};

/** Latency model of the Timed policy, in arbitrary cycles. */
struct TimingParams
{
    std::uint64_t hitLatency = 2;        ///< L1 hit
    std::uint64_t missLatency = 40;      ///< fill from next level
    std::uint64_t transferLatency = 60;  ///< dirty transfer, other core
    std::uint64_t upgradeLatency = 30;   ///< invalidate sharers
    std::uint64_t jitterMax = 3;         ///< jitter magnitude bound

    /** Probability an op suffers latency jitter at all. Silicon is
     * mostly repeatable; only occasional arbitration/refresh noise
     * perturbs a memory access. */
    double jitterProbability = 0.1;
    std::uint64_t issueCost = 1;         ///< per-op slot occupancy
    std::uint64_t startSkewMax = 4;      ///< initial core misalignment

    /** Per-op probability of an OS preemption (OS-interference mode). */
    double preemptProbability = 0.0;

    /** Preemption slice length in cycles. */
    std::uint64_t preemptSlice = 2000;

    /** Per-core L1 capacity in cache lines (0 = unbounded, no
     * evictions; the bug-3 study shrinks this like the paper shrinks
     * gem5's L1 to 1 kB). */
    std::uint32_t cacheLines = 0;
};

/** Full executor configuration. */
struct ExecutorConfig
{
    MemoryModel model = MemoryModel::TSO;
    SchedulingPolicy policy = SchedulingPolicy::UniformRandom;

    /** Max in-flight window per thread (out-of-order lookahead). */
    std::uint32_t reorderWindow = 8;

    /** Export ground-truth coherence order into the Execution. */
    bool exportCoherenceOrder = false;

    TimingParams timing;

    BugKind bug = BugKind::None;

    /** Probability the bug fires when its trigger condition occurs. */
    double bugProbability = 1.0;

    /**
     * Liveness drill: after this many scheduler steps in one run the
     * platform wedges — it stops making progress and spins (sleeping)
     * until a cancellation token is observed, then raises
     * TestHungError. 0 (default) never stalls. This models the
     * infinite-stall hangs real silicon produces and exists so the
     * watchdog path can be exercised deterministically; without a
     * watchdog the run genuinely never returns, which is the point.
     */
    std::uint64_t stallAfterSteps = 0;

    /**
     * Crash drill: the Nth runInto() call on one executor instance
     * (1-based) throws ProtocolDeadlockError before executing. 0
     * (default) never fires. Used to schedule a crash into a specific
     * pipeline stage — e.g. a confirmation re-execution — which random
     * bug injection cannot target.
     */
    std::uint64_t crashOnRun = 0;

    /**
     * Hard-crash drill: the Nth runInto() call (1-based) raises a
     * real fatal signal (`dieSignal`, default SIGSEGV) instead of a
     * catchable exception. In-process this genuinely kills the
     * campaign — which is the point: only the sandbox
     * (src/harness/sandbox.h) survives it, and the drill is what
     * proves that end to end. 0 (default) never fires.
     */
    std::uint64_t dieAfterRuns = 0;

    /** Signal dieAfterRuns raises; 11 = SIGSEGV (SIGABRT = 6 drills
     * the abort path). Kept as a plain int so this header stays free
     * of <csignal>. */
    int dieSignal = 11;

    /**
     * Allocation-bomb drill: the Nth runInto() call retains and
     * touches heap until operator new fails (self-capped at 512 MB),
     * then lets std::bad_alloc fly. Under a sandbox RLIMIT_AS budget
     * the worker dies with the OOM exit sentinel and is classified as
     * a memory-budget breach. 0 (default) never fires.
     */
    std::uint64_t leakAfterRuns = 0;

    /**
     * Make the stallAfterSteps wedge non-cooperative: the stalled run
     * ignores its cancellation token, so only an out-of-process
     * reclaim (the sandbox's hard-deadline SIGKILL) can recover the
     * worker. Models firmware that wedges with interrupts masked.
     */
    bool stallIgnoresCancel = false;
};

} // namespace mtc

#endif // MTC_SIM_EXECUTOR_CONFIG_H
