/**
 * @file
 * The operational executor's engine: a batched lockstep dispatcher
 * over structure-of-arrays run state.
 *
 * One BatchState holds the run state of B independent lanes of the
 * same test program, laid out lane-contiguously (per-lane per-thread
 * PCs and window occupancy, a flat values memory image, lane-major
 * cache-line/LRU state), plus B caller-owned RNG streams. A single
 * dispatch loop advances every active lane one scheduler step per
 * round; program metadata (the FlatOrderTable) is computed once per
 * batch and shared read-only by all lanes.
 *
 * Bit-identity is the engine's hard contract: lanes never share
 * mutable state, and every lane consumes its own RNG stream in
 * exactly the order the scalar engine would, so lane i of a batch is
 * draw-for-draw identical to a scalar runInto() with stream i — at
 * any batch size, including B=1, which is precisely what the scalar
 * runInto() entry point runs. (The pre-batching scalar engine lives
 * on only as this special case; there is one engine, not two.)
 *
 * Lane divergence: lanes retire from the compacted active-lane list
 * as they complete. A lane whose platform crashes (injected protocol
 * deadlock, crash drill) is marked Crashed and retired without
 * disturbing its siblings; a watchdog cancellation marks every
 * still-active lane Hung while completed lanes keep their results.
 *
 * Cross-lane aliasing audit (the SoA hazard): every mutable array is
 * indexed through exactly one of the laneThread/laneOp/laneLoc/
 * laneLine helpers below, each of which multiplies by the full
 * per-lane stride — there is no partially-strided access path — and
 * resetLane() rewrites a lane's entire span of every array, so no
 * state can leak between lanes or across batches.
 */

#include "sim/executor.h"

#include <algorithm>
#include <csignal>
#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "graph/po_edges.h"
#include "sim/order_table.h"
#include "support/error.h"
#include "support/process.h"

namespace mtc
{

namespace
{

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/** Cache of OrderTables keyed by (program identity, model). */
class OrderTableCache
{
  public:
    const OrderTable &
    get(const TestProgram &program, MemoryModel model)
    {
        if (program.fingerprint() != cachedFingerprint ||
            model != cachedModel) {
            table.build(program, model);
            cachedFingerprint = program.fingerprint();
            cachedModel = model;
        }
        return table;
    }

  private:
    std::uint64_t cachedFingerprint = 0;
    MemoryModel cachedModel = MemoryModel::SC;
    OrderTable table;
};

OrderTableCache &
orderTableCache()
{
    thread_local OrderTableCache cache;
    return cache;
}

/** Cache lines whose coherence state one perform mutated: at most the
 * op's own line plus one LRU-eviction victim. Per-step transient. */
struct DirtySet
{
    std::uint32_t lines[2] = {0, 0};
    std::uint32_t n = 0;

    void
    add(std::uint32_t line_idx)
    {
        if (n < 2)
            lines[n++] = line_idx;
    }

    bool
    contains(std::uint32_t line_idx) const
    {
        for (std::uint32_t d = 0; d < n; ++d)
            if (lines[d] == line_idx)
                return true;
        return false;
    }
};

/**
 * Lane-contiguous SoA run state for a batch of B lockstep runs. Lives
 * in the caller's arena (RunArena for B=1, BatchRunArena otherwise)
 * and is re-bound in place between batches: every container is
 * refilled with resize()/assign() so capacity survives, keeping the
 * steady-state batched loop allocation-free after warm-up.
 */
struct BatchState : RunArena::State
{
    const TestProgram *program = nullptr;
    const ExecutorConfig *cfg = nullptr;
    const CancellationToken *cancel = nullptr;

    /** Lane-shared flat program metadata (see FlatOrderTable). */
    FlatOrderTable flat;
    std::uint64_t flatFingerprint = 0;
    MemoryModel flatModel = MemoryModel::SC;
    bool flatValid = false;

    std::uint32_t numLanes = 0;
    std::uint32_t numThreads = 0;
    std::uint32_t numLocs = 0;
    std::uint32_t numLoads = 0;
    std::uint32_t numLines = 0;

    /** Per-lane RNG stream / output buffer (caller-owned). */
    std::vector<Rng *> rngs;
    std::vector<Execution *> outs;

    // --- Per-lane mutable state, flat and lane-major ------------------
    std::vector<std::uint32_t> mem;            ///< [lane × numLocs]
    LaneCompletionBits completion;
    std::vector<std::uint32_t> head;           ///< [lane × T]
    std::vector<std::uint64_t> coreSlot;       ///< [lane × T]
    std::vector<std::uint64_t> completionTime; ///< [lane × totalOps]
    std::vector<std::uint8_t> blocked;         ///< [lane × T]
    std::vector<std::uint64_t> remaining;      ///< [lane]
    std::vector<std::uint64_t> stepsTaken;     ///< [lane]
    std::vector<std::uint64_t> uniformStep;    ///< [lane]

    // --- Timed-policy cache model -------------------------------------
    struct Line
    {
        std::int32_t owner = -1;   ///< core holding M/E, or -1
        std::uint32_t sharers = 0; ///< residency bitmask
        std::uint64_t lastStoreTime = 0;
        std::int32_t lastStoreTid = -1;
        std::uint64_t lastEvictTime = 0;
        bool everEvicted = false;
    };
    std::vector<Line> lines;             ///< [lane × numLines]
    std::vector<std::uint64_t> lruStamp; ///< [lane × T × numLines]
    std::vector<std::uint32_t> lruCount; ///< [lane × T]
    std::vector<std::uint64_t> jitter;   ///< [lane × totalOps]
    /**
     * Cached per-op max of the required predecessors' completion
     * times (kNever = not yet computed). candidateTimes() only ever
     * evaluates eligible ops, whose predecessors are all complete
     * with final times — so the mask-walk over predecessor bits runs
     * once per op instead of once per window re-scan.
     */
    std::vector<std::uint64_t> predIssue; ///< [lane × totalOps]
    /** Per-lane per-location (time, value) history (bug modes only). */
    std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>>
        history;                         ///< [lane × numLocs]

    /** Timed-policy per-thread cached best candidate (see
     * recomputeBest); the incremental-scheduler dirty-set machinery is
     * per lane — a perform only invalidates its own lane's caches. */
    std::vector<std::uint64_t> bestTime;  ///< [lane × T]
    std::vector<std::uint64_t> bestIssue; ///< [lane × T]
    std::vector<std::uint32_t> bestIdx;   ///< [lane × T]
    std::vector<std::uint8_t> bestValid;  ///< [lane × T]

    /**
     * Per-op cached candidate times (kNever in candComplete = op not
     * an eligible candidate right now). A thread's entries over its
     * current window are kept fresh: the performing thread's full
     * recompute rewrites its window, and other threads' entries can
     * only be invalidated through the ≤2 cache lines a perform
     * mutates — so the dirty refresh re-times exactly the window ops
     * on those lines and leaves the rest cached.
     */
    std::vector<std::uint64_t> candComplete; ///< [lane × totalOps]
    std::vector<std::uint64_t> candIssue;    ///< [lane × totalOps]
    /**
     * Cached issue-independent latency (issue cost + memory-system
     * latency + jitter) of each current candidate. Latency depends
     * only on the op's cache-line state, so it is computed when the
     * op first becomes a candidate and re-derived only when a perform
     * dirties the op's line; every other evaluation is one load and
     * one add instead of the residency branch tree.
     */
    std::vector<std::uint64_t> latCache; ///< [lane × totalOps]

    /** Uniform-policy candidate scratch — rebuilt from scratch every
     * step, so one buffer safely serves every lane in turn. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> eligibleScratch;

    /** Still-running lanes, compacted as lanes retire. */
    std::vector<std::uint32_t> activeLanes;

    // --- SoA addressing (the only cross-array index paths) ------------
    std::size_t
    laneThread(std::uint32_t lane, std::uint32_t tid) const
    {
        return static_cast<std::size_t>(lane) * numThreads + tid;
    }

    std::size_t
    laneOp(std::uint32_t lane) const
    {
        return static_cast<std::size_t>(lane) * flat.totalOps;
    }

    std::size_t
    laneLoc(std::uint32_t lane, std::uint32_t loc) const
    {
        return static_cast<std::size_t>(lane) * numLocs + loc;
    }

    std::size_t
    laneLine(std::uint32_t lane, std::uint32_t line_idx) const
    {
        return static_cast<std::size_t>(lane) * numLines + line_idx;
    }

    /**
     * Bind the batch to (program, cfg) and size every SoA array for
     * @p lanes lanes. The FlatOrderTable is rebuilt only when the
     * (program, model) pair changed, so per-batch rebinding of the
     * same test costs resize()/assign() calls and nothing else.
     */
    void
    bind(const TestProgram &program_arg, const ExecutorConfig &cfg_arg,
         std::uint32_t lanes)
    {
        program = &program_arg;
        cfg = &cfg_arg;
        numLanes = lanes;
        numThreads = program->numThreads();
        numLocs = program->config().numLocations;
        numLoads = static_cast<std::uint32_t>(program->loads().size());
        numLines = program->numLines();
        if (!flatValid || program->fingerprint() != flatFingerprint ||
            cfg->model != flatModel) {
            flat.build(program_arg,
                       orderTableCache().get(program_arg, cfg->model));
            flatFingerprint = program->fingerprint();
            flatModel = cfg->model;
            flatValid = true;
        }

        rngs.assign(lanes, nullptr);
        outs.assign(lanes, nullptr);
        mem.resize(static_cast<std::size_t>(lanes) * numLocs);
        completion.reset(*program, lanes);
        head.resize(static_cast<std::size_t>(lanes) * numThreads);
        coreSlot.resize(static_cast<std::size_t>(lanes) * numThreads);
        completionTime.resize(static_cast<std::size_t>(lanes) *
                              flat.totalOps);
        blocked.resize(static_cast<std::size_t>(lanes) * numThreads);
        remaining.resize(lanes);
        stepsTaken.resize(lanes);
        uniformStep.resize(lanes);

        if (cfg->policy == SchedulingPolicy::Timed) {
            lines.resize(static_cast<std::size_t>(lanes) * numLines);
            lruStamp.resize(static_cast<std::size_t>(lanes) *
                            numThreads * numLines);
            lruCount.resize(static_cast<std::size_t>(lanes) *
                            numThreads);
            jitter.resize(static_cast<std::size_t>(lanes) *
                          flat.totalOps);
            predIssue.resize(static_cast<std::size_t>(lanes) *
                             flat.totalOps);
            candComplete.resize(static_cast<std::size_t>(lanes) *
                                flat.totalOps);
            candIssue.resize(static_cast<std::size_t>(lanes) *
                             flat.totalOps);
            latCache.resize(static_cast<std::size_t>(lanes) *
                            flat.totalOps);
            bestTime.resize(static_cast<std::size_t>(lanes) *
                            numThreads);
            bestIssue.resize(static_cast<std::size_t>(lanes) *
                             numThreads);
            bestIdx.resize(static_cast<std::size_t>(lanes) *
                           numThreads);
            bestValid.resize(static_cast<std::size_t>(lanes) *
                             numThreads);
        } else {
            eligibleScratch.reserve(
                static_cast<std::size_t>(numThreads) *
                cfg->reorderWindow);
        }
        if (cfg->bug != BugKind::None)
            history.resize(static_cast<std::size_t>(lanes) * numLocs);
        activeLanes.reserve(lanes);
    }

    /**
     * Reinitialize one lane's span of every array, replaying the
     * scalar engine's construction order exactly: state refill, the
     * per-thread start-skew draws, then (Timed) the initial
     * recomputeBest pass whose lazily-drawn jitter consumes the lane
     * stream in (tid, idx) eligibility-scan order. rngs[lane] and
     * outs[lane] must be bound before the call.
     */
    void
    resetLane(std::uint32_t lane)
    {
        std::fill_n(mem.begin() + laneLoc(lane, 0), numLocs,
                    kInitValue);
        completion.resetLane(lane);
        std::fill_n(completionTime.begin() +
                        static_cast<std::ptrdiff_t>(laneOp(lane)),
                    flat.totalOps, std::uint64_t(0));
        std::fill_n(head.begin() + laneThread(lane, 0), numThreads,
                    std::uint32_t(0));
        std::fill_n(coreSlot.begin() + laneThread(lane, 0), numThreads,
                    std::uint64_t(0));
        std::fill_n(blocked.begin() + laneThread(lane, 0), numThreads,
                    std::uint8_t(0));
        remaining[lane] = flat.totalOps;
        stepsTaken[lane] = 0;
        uniformStep[lane] = 0;

        Execution &out = *outs[lane];
        out.loadValues.assign(numLoads, kInitValue);
        out.duration = 0;
        if (cfg->exportCoherenceOrder) {
            out.coherenceOrder.resize(numLocs);
            for (auto &per_loc : out.coherenceOrder)
                per_loc.clear();
        } else {
            out.coherenceOrder.clear();
        }

        if (cfg->policy == SchedulingPolicy::Timed) {
            std::fill_n(lines.begin() + laneLine(lane, 0), numLines,
                        Line{});
            std::fill_n(lruStamp.begin() +
                            laneThread(lane, 0) * numLines,
                        static_cast<std::size_t>(numThreads) * numLines,
                        kNever);
            std::fill_n(lruCount.begin() + laneThread(lane, 0),
                        numThreads, std::uint32_t(0));
            std::fill_n(jitter.begin() +
                            static_cast<std::ptrdiff_t>(laneOp(lane)),
                        flat.totalOps, kNever);
            std::fill_n(predIssue.begin() +
                            static_cast<std::ptrdiff_t>(laneOp(lane)),
                        flat.totalOps, kNever);
            std::fill_n(candComplete.begin() +
                            static_cast<std::ptrdiff_t>(laneOp(lane)),
                        flat.totalOps, kNever);
            std::fill_n(bestTime.begin() + laneThread(lane, 0),
                        numThreads, kNever);
            std::fill_n(bestIssue.begin() + laneThread(lane, 0),
                        numThreads, std::uint64_t(0));
            std::fill_n(bestIdx.begin() + laneThread(lane, 0),
                        numThreads, std::uint32_t(0));
            std::fill_n(bestValid.begin() + laneThread(lane, 0),
                        numThreads, std::uint8_t(0));
            Rng &rng = *rngs[lane];
            for (std::uint32_t tid = 0; tid < numThreads; ++tid) {
                coreSlot[laneThread(lane, tid)] =
                    rng.nextBelow(cfg->timing.startSkewMax + 1);
            }
        }
        if (cfg->bug != BugKind::None) {
            for (std::uint32_t loc = 0; loc < numLocs; ++loc)
                history[laneLoc(lane, loc)].clear();
        }
        if (cfg->policy == SchedulingPolicy::Timed) {
            for (std::uint32_t tid = 0; tid < numThreads; ++tid)
                recomputeBest(lane, tid, nullptr);
        }
    }

    // --- Shared primitives (both policies) ----------------------------

    /**
     * Polled once per scheduler step per lane: abandon the run when
     * the watchdog fired, and enter the injected infinite stall when
     * the drill's step budget is reached.
     */
    void
    checkLiveness(std::uint32_t lane)
    {
        ++stepsTaken[lane];
        if (cancel && cancel->stopRequested()) {
            throw TestHungError(
                "run abandoned by watchdog: test deadline expired");
        }
        if (cfg->stallAfterSteps &&
            stepsTaken[lane] >= cfg->stallAfterSteps) {
            // A non-cooperative wedge never looks at the token:
            // recovery then requires killing the process, which is
            // exactly what the sandbox's hard deadline drills.
            stallUntilCancelled(cfg->stallIgnoresCancel ? nullptr
                                                        : cancel);
        }
    }

    /**
     * Value forwarded from the latest po-earlier same-location store
     * of the same thread, O(1) via the precomputed priorStore table.
     */
    std::optional<std::uint32_t>
    forwardedValue(std::uint32_t lane, std::uint32_t tid,
                   std::uint32_t idx) const
    {
        const std::uint32_t base = flat.opOffset[tid];
        const std::uint32_t prior = flat.priorStore[base + idx];
        if (prior == kNoPriorStore)
            return std::nullopt;
        if (!completion.isCompleted(lane, tid, prior)) {
            // store-buffer forwarding
            return flat.opValue[base + prior];
        }
        return std::nullopt; // globally visible: read memory
    }

    void
    markCompleted(std::uint32_t lane, std::uint32_t tid,
                  std::uint32_t idx, std::uint64_t time)
    {
        completion.markCompleted(lane, tid, idx);
        completionTime[laneOp(lane) + flat.opOffset[tid] + idx] = time;
        Execution &out = *outs[lane];
        out.duration = std::max(out.duration, time);
        --remaining[lane];
        const std::uint32_t size =
            flat.opOffset[tid + 1] - flat.opOffset[tid];
        std::uint32_t &h = head[laneThread(lane, tid)];
        while (h < size && completion.isCompleted(lane, tid, h))
            ++h;
    }

    void
    completeStore(std::uint32_t lane, std::uint32_t tid,
                  std::uint32_t idx, std::uint64_t time)
    {
        const std::uint32_t fo = flat.opOffset[tid] + idx;
        const std::uint32_t loc = flat.opLoc[fo];
        mem[laneLoc(lane, loc)] = flat.opValue[fo];
        if (cfg->exportCoherenceOrder)
            outs[lane]->coherenceOrder[loc].push_back(OpId{tid, idx});
        if (cfg->bug != BugKind::None) {
            history[laneLoc(lane, loc)].emplace_back(time,
                                                     flat.opValue[fo]);
        }
        markCompleted(lane, tid, idx, time);
    }

    void
    completeLoad(std::uint32_t lane, std::uint32_t tid,
                 std::uint32_t idx, std::uint64_t time,
                 std::uint32_t value)
    {
        outs[lane]
            ->loadValues[flat.loadOrdinal[flat.opOffset[tid] + idx]] =
            value;
        markCompleted(lane, tid, idx, time);
    }

    /** Memory value of @p loc as of time @p when (stale-read lookup). */
    std::uint32_t
    valueAt(std::uint32_t lane, std::uint32_t loc,
            std::uint64_t when) const
    {
        std::uint32_t value = kInitValue;
        for (const auto &[time, stored] : history[laneLoc(lane, loc)]) {
            if (time > when)
                break;
            value = stored;
        }
        return value;
    }

    // --- Uniform-random policy ----------------------------------------

    void
    stepUniform(std::uint32_t lane)
    {
        checkLiveness(lane);
        auto &eligible = eligibleScratch;
        eligible.clear();
        const std::uint32_t window = cfg->reorderWindow;
        for (std::uint32_t tid = 0; tid < numThreads; ++tid) {
            if (blocked[laneThread(lane, tid)])
                continue;
            const std::uint32_t base = flat.opOffset[tid];
            const std::uint32_t size = flat.opOffset[tid + 1] - base;
            const std::uint32_t h = head[laneThread(lane, tid)];
            const std::uint32_t end = std::min(size, h + window);
            // Rolling window-completion mask: one O(1) bitset grab at
            // the head, then a shift-and-insert per candidate instead
            // of a fresh 64-bit window extraction each.
            std::uint32_t rolling =
                completion.windowCompleted(lane, tid, h);
            for (std::uint32_t idx = h; idx < end; ++idx) {
                const bool done =
                    completion.isCompleted(lane, tid, idx);
                const std::uint32_t window_mask = rolling;
                rolling = (rolling >> 1) |
                    (std::uint32_t(done) << 31);
                if (done)
                    continue;
                if (flat.requiredPreds[base + idx] & ~window_mask)
                    continue;
                eligible.emplace_back(tid, idx);
            }
        }
        if (eligible.empty())
            throw PlatformError(
                "uniform executor wedged (internal bug)");

        const auto [tid, idx] =
            eligible[rngs[lane]->pickIndex(eligible.size())];
        const std::uint32_t fo = flat.opOffset[tid] + idx;
        const std::uint64_t step = ++uniformStep[lane];
        switch (static_cast<OpKind>(flat.opKind[fo])) {
          case OpKind::Store:
            completeStore(lane, tid, idx, step);
            break;
          case OpKind::Load: {
            auto forwarded = forwardedValue(lane, tid, idx);
            completeLoad(lane, tid, idx, step,
                         forwarded ? *forwarded
                                   : mem[laneLoc(lane,
                                                 flat.opLoc[fo])]);
            break;
          }
          case OpKind::Fence:
            markCompleted(lane, tid, idx, step);
            break;
        }
    }

    // --- Timed (silicon-like) policy ----------------------------------

    bool
    resident(std::uint32_t tid, const Line &line) const
    {
        return line.owner == static_cast<std::int32_t>(tid) ||
            ((line.sharers >> tid) & 1);
    }

    bool
    bugGate(std::uint32_t lane)
    {
        return rngs[lane]->nextBool(cfg->bugProbability);
    }

    std::uint64_t
    opJitter(std::uint32_t lane, std::uint32_t tid, std::uint32_t idx)
    {
        std::uint64_t &cached =
            jitter[laneOp(lane) + flat.opOffset[tid] + idx];
        if (cached == kNever) {
            const TimingParams &timing = cfg->timing;
            cached = rngs[lane]->nextBool(timing.jitterProbability)
                ? 1 + rngs[lane]->nextBelow(timing.jitterMax)
                : 0;
        }
        return cached;
    }

    /** This lane+core's flat LRU timestamp row. */
    std::uint64_t *
    coreLru(std::uint32_t lane, std::uint32_t tid)
    {
        return lruStamp.data() + laneThread(lane, tid) * numLines;
    }

    /** Drop @p line_idx from @p tid's LRU (no-op when not resident). */
    void
    lruErase(std::uint32_t lane, std::uint32_t tid,
             std::uint32_t line_idx)
    {
        std::uint64_t &stamp = coreLru(lane, tid)[line_idx];
        if (stamp != kNever) {
            stamp = kNever;
            --lruCount[laneThread(lane, tid)];
        }
    }

    /**
     * Max of the required predecessors' completion times, cached per
     * op: only eligible ops are evaluated, and an eligible op's
     * predecessors are all complete with final times.
     */
    std::uint64_t
    predMaxOf(std::uint32_t lane, std::uint32_t tid, std::uint32_t idx)
    {
        const std::uint32_t base = flat.opOffset[tid];
        const std::uint32_t fo = base + idx;
        std::uint64_t pred_max = predIssue[laneOp(lane) + fo];
        if (pred_max == kNever) {
            pred_max = 0;
            std::uint32_t preds = flat.requiredPreds[fo];
            const std::uint64_t *lane_times =
                completionTime.data() + laneOp(lane) + base;
            while (preds) {
                const int b = __builtin_ctz(preds);
                preds &= preds - 1;
                const std::int64_t j =
                    static_cast<std::int64_t>(idx) - 32 + b;
                if (j >= 0)
                    pred_max = std::max(pred_max, lane_times[j]);
            }
            predIssue[laneOp(lane) + fo] = pred_max;
        }
        return pred_max;
    }

    /** Issue-independent candidate latency: issue cost + the memory
     * system's residency-dependent cost + the op's (cached) jitter. */
    std::uint64_t
    computeLatency(std::uint32_t lane, std::uint32_t tid,
                   std::uint32_t idx)
    {
        const std::uint32_t fo = flat.opOffset[tid] + idx;
        const TimingParams &timing = cfg->timing;
        std::uint64_t latency = timing.issueCost;
        const OpKind kind = static_cast<OpKind>(flat.opKind[fo]);
        if (kind != OpKind::Fence) {
            const Line &line = lines[laneLine(lane, flat.opLine[fo])];
            if (kind == OpKind::Load) {
                if (resident(tid, line))
                    latency += timing.hitLatency;
                else if (line.owner >= 0)
                    latency += timing.transferLatency;
                else
                    latency += timing.missLatency;
            } else {
                if (line.owner == static_cast<std::int32_t>(tid)) {
                    latency += timing.hitLatency;
                } else if (resident(tid, line)) {
                    latency += timing.upgradeLatency;
                } else if (line.owner >= 0) {
                    latency += timing.transferLatency;
                } else {
                    latency += timing.missLatency;
                    // Other sharers must also be invalidated.
                    if (line.sharers != 0)
                        latency += timing.upgradeLatency;
                }
            }
        }
        latency += opJitter(lane, tid, idx);
        return latency;
    }

    /**
     * Re-scan @p tid's reorder window, refresh its per-op candidate
     * caches, and cache its best candidate. Runs after the thread's
     * own performs (which shift its window, complete ops, and move
     * its core slot) and at lane seeding; lazily draws jitter for
     * newly eligible ops in idx order, exactly as the full-rescan
     * engine did.
     */
    void
    recomputeBest(std::uint32_t lane, std::uint32_t tid,
                  const DirtySet *dirty)
    {
        const std::uint32_t base = flat.opOffset[tid];
        const std::uint32_t size = flat.opOffset[tid + 1] - base;
        const std::uint32_t h = head[laneThread(lane, tid)];
        const std::uint32_t end =
            std::min(size, h + cfg->reorderWindow);
        std::uint64_t best_time = kNever;
        std::uint64_t best_issue = 0;
        std::uint32_t best_idx = 0;
        bool found = false;
        if (!blocked[laneThread(lane, tid)]) {
            const std::uint64_t core_slot =
                coreSlot[laneThread(lane, tid)];
            std::uint64_t *lane_cc =
                candComplete.data() + laneOp(lane);
            std::uint64_t *lane_ci = candIssue.data() + laneOp(lane);
            std::uint64_t *lane_lat = latCache.data() + laneOp(lane);
            std::uint32_t rolling =
                completion.windowCompleted(lane, tid, h);
            for (std::uint32_t idx = h; idx < end; ++idx) {
                const bool done =
                    completion.isCompleted(lane, tid, idx);
                const std::uint32_t window_mask = rolling;
                rolling = (rolling >> 1) |
                    (std::uint32_t(done) << 31);
                const std::uint32_t fo = base + idx;
                if (done ||
                    (flat.requiredPreds[fo] & ~window_mask)) {
                    lane_cc[fo] = kNever;
                    continue;
                }
                // First candidacy computes the latency (drawing the
                // op's jitter); the own perform's dirty lines force a
                // re-derivation; everything else reuses the cache.
                std::uint64_t lat;
                if (lane_cc[fo] == kNever ||
                    (dirty && dirty->contains(flat.opLine[fo]))) {
                    lat = computeLatency(lane, tid, idx);
                    lane_lat[fo] = lat;
                } else {
                    lat = lane_lat[fo];
                }
                const std::uint64_t issue =
                    std::max(core_slot, predMaxOf(lane, tid, idx));
                const std::uint64_t completes = issue + lat;
                lane_cc[fo] = completes;
                lane_ci[fo] = issue;
                // Strict < keeps the earliest idx on a tie,
                // reproducing the full scan's (tid, idx) preference.
                if (completes < best_time) {
                    best_time = completes;
                    best_issue = issue;
                    best_idx = idx;
                    found = true;
                }
            }
        }
        const std::size_t lt = laneThread(lane, tid);
        bestTime[lt] = best_time;
        bestIssue[lt] = best_issue;
        bestIdx[lt] = best_idx;
        bestValid[lt] = found ? 1 : 0;
    }

    /**
     * Re-time exactly the window candidates of @p tid sitting on a
     * cache line the last perform mutated, leaving the rest cached —
     * another thread's eligibility, core slot, and predecessor times
     * cannot have changed, only latencies through those ≤2 lines.
     * Draws nothing: every current candidate's jitter was drawn when
     * it first became eligible (its own thread's recompute), so this
     * refresh is invisible to the RNG stream, like the full-window
     * rescan it replaces.
     */
    void
    refreshDirty(std::uint32_t lane, std::uint32_t tid,
                 const DirtySet &dirty)
    {
        if (blocked[laneThread(lane, tid)])
            return;
        const std::uint32_t base = flat.opOffset[tid];
        const std::uint32_t size = flat.opOffset[tid + 1] - base;
        const std::uint32_t h = head[laneThread(lane, tid)];
        const std::uint32_t end =
            std::min(size, h + cfg->reorderWindow);
        std::uint64_t *lane_cc = candComplete.data() + laneOp(lane);
        std::uint64_t *lane_ci = candIssue.data() + laneOp(lane);
        std::uint64_t *lane_lat = latCache.data() + laneOp(lane);
        bool changed = false;
        for (std::uint32_t idx = h; idx < end; ++idx) {
            const std::uint32_t fo = base + idx;
            if (lane_cc[fo] == kNever)
                continue;
            if (!dirty.contains(flat.opLine[fo]))
                continue;
            // Issue inputs (core slot, predecessors) are untouched by
            // another thread's perform: only the latency re-derives.
            const std::uint64_t lat = computeLatency(lane, tid, idx);
            lane_lat[fo] = lat;
            lane_cc[fo] = lane_ci[fo] + lat;
            changed = true;
        }
        if (!changed)
            return;
        std::uint64_t best_time = kNever;
        std::uint64_t best_issue = 0;
        std::uint32_t best_idx = 0;
        bool found = false;
        for (std::uint32_t idx = h; idx < end; ++idx) {
            const std::uint64_t completes = lane_cc[base + idx];
            if (completes < best_time) {
                best_time = completes;
                best_issue = lane_ci[base + idx];
                best_idx = idx;
                found = true;
            }
        }
        const std::size_t lt = laneThread(lane, tid);
        bestTime[lt] = best_time;
        bestIssue[lt] = best_issue;
        bestIdx[lt] = best_idx;
        bestValid[lt] = found ? 1 : 0;
    }

    /** Touch the LRU and evict over-capacity lines for @p tid. */
    void
    touchLine(std::uint32_t lane, std::uint32_t tid,
              std::uint32_t line_idx, std::uint64_t now,
              DirtySet &dirty)
    {
        const std::uint32_t capacity = cfg->timing.cacheLines;
        std::uint64_t *stamps = coreLru(lane, tid);
        std::uint32_t &count = lruCount[laneThread(lane, tid)];
        if (stamps[line_idx] == kNever)
            ++count;
        stamps[line_idx] = now;
        if (capacity == 0 || count <= capacity)
            return;

        // Evict the least-recently-used other line (lowest line index
        // on a timestamp tie).
        std::uint32_t victim = line_idx;
        std::uint64_t oldest = kNever;
        for (std::uint32_t l = 0; l < numLines; ++l) {
            if (l != line_idx && stamps[l] < oldest) {
                oldest = stamps[l];
                victim = l;
            }
        }
        stamps[victim] = kNever;
        --count;
        dirty.add(victim); // owner/sharers change below
        Line &line = lines[laneLine(lane, victim)];
        if (line.owner == static_cast<std::int32_t>(tid)) {
            // Dirty eviction: writeback (PUTX). Values are already in
            // memory in this model; record the event for the bug-3
            // race window.
            line.owner = -1;
            line.lastEvictTime = now;
            line.everEvicted = true;
        }
        line.sharers &= ~(std::uint32_t(1) << tid);
    }

    /** Does thread @p tid have an incomplete po-earlier store to the
     * same cache line as the load at @p idx (S->M upgrade in flight)? */
    bool
    upgradeInFlight(std::uint32_t lane, std::uint32_t tid,
                    std::uint32_t idx, std::uint32_t line_idx) const
    {
        const std::uint32_t base = flat.opOffset[tid];
        for (std::uint32_t i = head[laneThread(lane, tid)]; i < idx;
             ++i) {
            if (!completion.isCompleted(lane, tid, i) &&
                static_cast<OpKind>(flat.opKind[base + i]) ==
                    OpKind::Store &&
                flat.opLine[base + i] == line_idx) {
                return true;
            }
        }
        return false;
    }

    void
    perform(std::uint32_t lane, std::uint32_t tid, std::uint32_t idx,
            std::uint64_t issue, std::uint64_t now, DirtySet &dirty)
    {
        const std::uint32_t fo = flat.opOffset[tid] + idx;
        const OpKind kind = static_cast<OpKind>(flat.opKind[fo]);
        const TimingParams &timing = cfg->timing;
        std::uint64_t &core_slot = coreSlot[laneThread(lane, tid)];

        if (kind == OpKind::Fence) {
            markCompleted(lane, tid, idx, now);
            core_slot = std::max(core_slot, issue) + timing.issueCost;
            return;
        }

        const std::uint32_t loc = flat.opLoc[fo];
        const std::uint32_t line_idx = flat.opLine[fo];
        Line &line = lines[laneLine(lane, line_idx)];
        dirty.add(line_idx);

        // Bug 3: the ownership-transfer request raced with the owner's
        // writeback and got lost; the requester spins forever.
        if (cfg->bug == BugKind::PutxGetxRace &&
            !resident(tid, line) && line.everEvicted &&
            line.lastEvictTime > issue && bugGate(lane)) {
            blocked[laneThread(lane, tid)] = 1;
            return;
        }

        if (kind == OpKind::Store) {
            // Invalidate all other copies; take ownership.
            if (line.owner >= 0 &&
                line.owner != static_cast<std::int32_t>(tid)) {
                lruErase(lane, static_cast<std::uint32_t>(line.owner),
                         line_idx);
            }
            for (std::uint32_t other = 0; other < numThreads;
                 ++other) {
                if (other != tid && ((line.sharers >> other) & 1))
                    lruErase(lane, other, line_idx);
            }
            line.owner = static_cast<std::int32_t>(tid);
            line.sharers = std::uint32_t(1) << tid;
            line.lastStoreTime = now;
            line.lastStoreTid = static_cast<std::int32_t>(tid);
            touchLine(lane, tid, line_idx, now, dirty);
            completeStore(lane, tid, idx, now);
        } else {
            std::uint32_t value;
            auto forwarded = forwardedValue(lane, tid, idx);
            if (forwarded) {
                value = *forwarded;
            } else {
                value = mem[laneLoc(lane, loc)];

                // Bugs 1/2: a remote store invalidated this line while
                // the load was in flight, but the load is not squashed
                // and returns the stale value it snooped at issue.
                const bool remote_inval = line.lastStoreTid >= 0 &&
                    line.lastStoreTid !=
                        static_cast<std::int32_t>(tid) &&
                    line.lastStoreTime > issue;
                if (remote_inval && cfg->bug != BugKind::None) {
                    const bool fire =
                        (cfg->bug == BugKind::LsqNoSquash ||
                         (cfg->bug == BugKind::StaleLoadOnUpgrade &&
                          upgradeInFlight(lane, tid, idx,
                                          line_idx))) &&
                        bugGate(lane);
                    if (fire)
                        value = valueAt(lane, loc, issue);
                }
            }

            // Owner (if another core) is downgraded to shared.
            if (line.owner >= 0 &&
                line.owner != static_cast<std::int32_t>(tid)) {
                line.sharers |= std::uint32_t(1) << line.owner;
                line.owner = -1;
            }
            line.sharers |= std::uint32_t(1) << tid;
            touchLine(lane, tid, line_idx, now, dirty);
            completeLoad(lane, tid, idx, now, value);
        }

        core_slot = std::max(core_slot, issue) + timing.issueCost;

        // OS-interference mode: occasionally the scheduler preempts
        // the core, stalling its subsequent issues for a full slice.
        if (timing.preemptProbability > 0.0 &&
            rngs[lane]->nextBool(timing.preemptProbability)) {
            core_slot += timing.preemptSlice;
        }
    }

    void
    stepTimed(std::uint32_t lane)
    {
        checkLiveness(lane);
        const std::uint64_t *lane_best = bestTime.data() +
            laneThread(lane, 0);
        const std::uint8_t *lane_valid = bestValid.data() +
            laneThread(lane, 0);
        std::uint32_t best_tid = 0;
        std::uint64_t best_time = kNever;
        bool found = false;
        // Deterministic tie-break (lowest thread id / oldest op):
        // silicon arbitration is stable, so equal-latency races
        // repeat the same winner.
        for (std::uint32_t tid = 0; tid < numThreads; ++tid) {
            if (lane_valid[tid] && lane_best[tid] < best_time) {
                best_time = lane_best[tid];
                best_tid = tid;
                found = true;
            }
        }
        if (!found) {
            // Only blocked threads have work left: the injected
            // protocol race wedged the platform.
            throw ProtocolDeadlockError(
                "coherence request lost (PUTX/GETX race): platform "
                "deadlocked");
        }

        DirtySet dirty;
        perform(lane, best_tid, bestIdx[laneThread(lane, best_tid)],
                bestIssue[laneThread(lane, best_tid)], best_time,
                dirty);

        // Eligibility and issue-time inputs are strictly intra-thread,
        // so only the performing thread's candidate set changed — and
        // its recompute runs first, drawing jitter for newly eligible
        // ops in idx order, matching the full rescan's draw sequence.
        // Other threads are affected only through the cache lines this
        // perform mutated; their dirty refresh draws nothing.
        recomputeBest(lane, best_tid, &dirty);
        if (dirty.n != 0) {
            for (std::uint32_t tid = 0; tid < numThreads; ++tid) {
                if (tid != best_tid)
                    refreshDirty(lane, tid, dirty);
            }
        }
    }

    // --- Lockstep dispatch --------------------------------------------

    /**
     * Advance every lane in activeLanes one step per round until all
     * retire. With @p capture set, per-lane faults become LaneStatus
     * entries (crash retires one lane; a hang retires them all);
     * without it (the scalar path) they propagate as the exceptions
     * scalar runInto() documents. Retirement swaps the last active
     * lane into the vacated slot, so each round still steps every
     * remaining lane exactly once.
     */
    void
    runLanes(LaneStatus *status, BatchRunArena *capture)
    {
        auto drive = [&](auto step) {
            auto &active = activeLanes;
            while (!active.empty()) {
                for (std::size_t i = 0; i < active.size();) {
                    const std::uint32_t lane = active[i];
                    if (remaining[lane] == 0) {
                        status[lane] = LaneStatus::Completed;
                        active[i] = active.back();
                        active.pop_back();
                        continue;
                    }
                    if (capture) {
                        try {
                            step(lane);
                        } catch (const TestHungError &err) {
                            capture->recordHang(err.what());
                            // A lane that already performed its last
                            // op is complete even if it has not been
                            // retired from the active list yet; only
                            // genuinely unfinished lanes are abandoned.
                            for (std::uint32_t pending : active) {
                                if (remaining[pending] != 0)
                                    status[pending] = LaneStatus::Hung;
                            }
                            active.clear();
                            return;
                        } catch (const ProtocolDeadlockError &err) {
                            capture->recordCrash(lane, err.what());
                            status[lane] = LaneStatus::Crashed;
                            active[i] = active.back();
                            active.pop_back();
                            continue;
                        }
                    } else {
                        step(lane);
                    }
                    ++i;
                }
            }
        };
        if (cfg->policy == SchedulingPolicy::UniformRandom) {
            drive([&](std::uint32_t lane) { stepUniform(lane); });
        } else {
            drive([&](std::uint32_t lane) { stepTimed(lane); });
        }
    }
};

} // anonymous namespace

OperationalExecutor::OperationalExecutor(ExecutorConfig cfg_arg)
    : cfg(cfg_arg)
{
    if (cfg.reorderWindow < 1 || cfg.reorderWindow > kMaxReorderWindow)
        throw ConfigError("reorder window must lie in [1, 32]");
    if (cfg.bugProbability < 0.0 || cfg.bugProbability > 1.0)
        throw ConfigError("bug probability must lie in [0,1]");
    if (cfg.bug != BugKind::None &&
        cfg.policy != SchedulingPolicy::Timed) {
        throw ConfigError("bug injection requires the Timed policy");
    }
}

void
OperationalExecutor::runInto(const TestProgram &program, Rng &rng,
                             RunArena &arena,
                             const CancellationToken *cancel)
{
    // Crash drill: fail the Nth run before touching any state, the
    // way a platform lockup kills a re-execution outright.
    ++runsStarted;
    if (cfg.crashOnRun && runsStarted == cfg.crashOnRun) {
        throw ProtocolDeadlockError(
            "crash drill: scheduled platform crash on run " +
            std::to_string(runsStarted));
    }
    // Hard-failure drills: a REAL fatal signal / allocation bomb, not
    // a catchable exception. In-process these kill the campaign; the
    // sandbox contains them — that asymmetry is what they exist to
    // demonstrate.
    if (cfg.dieAfterRuns && runsStarted == cfg.dieAfterRuns)
        ::raise(cfg.dieSignal);
    if (cfg.leakAfterRuns && runsStarted == cfg.leakAfterRuns)
        allocationBomb();

    // The scalar run is the batch engine at one lane: faults
    // propagate as exceptions instead of lane statuses.
    BatchState &state = arena.stateAs<BatchState>();
    state.bind(program, cfg, 1);
    state.cancel = cancel;
    state.rngs[0] = &rng;
    state.outs[0] = &arena.execution;
    state.resetLane(0);
    state.activeLanes.clear();
    state.activeLanes.push_back(0);
    LaneStatus status = LaneStatus::Completed;
    state.runLanes(&status, nullptr);
}

void
OperationalExecutor::runBatchInto(const TestProgram &program, Rng *rngs,
                                  std::uint32_t num_lanes,
                                  BatchRunArena &batch,
                                  const CancellationToken *cancel,
                                  LaneStatus *status)
{
    batch.beginBatch(num_lanes);
    BatchState &state = batch.stateAs<BatchState>();
    state.bind(program, cfg, num_lanes);
    state.cancel = cancel;
    state.activeLanes.clear();
    for (std::uint32_t lane = 0; lane < num_lanes; ++lane) {
        // Per-lane drill clock: lane k of a batch is run number
        // runsStarted+k, exactly as the scalar loop would count it,
        // and a crash drill fires before the lane consumes any state
        // or RNG draw (the scalar throw point).
        ++runsStarted;
        if (cfg.crashOnRun && runsStarted == cfg.crashOnRun) {
            batch.recordCrash(
                lane,
                "crash drill: scheduled platform crash on run " +
                    std::to_string(runsStarted));
            status[lane] = LaneStatus::Crashed;
            continue;
        }
        if (cfg.dieAfterRuns && runsStarted == cfg.dieAfterRuns)
            ::raise(cfg.dieSignal);
        if (cfg.leakAfterRuns && runsStarted == cfg.leakAfterRuns)
            allocationBomb();
        state.rngs[lane] = &rngs[lane];
        state.outs[lane] = &batch.executions[lane];
        state.resetLane(lane);
        status[lane] = LaneStatus::Completed; // until proven otherwise
        state.activeLanes.push_back(lane);
    }
    state.runLanes(status, &batch);
}

ExecutorConfig
bareMetalConfig(Isa isa)
{
    ExecutorConfig cfg;
    cfg.model = defaultModel(isa);
    cfg.policy = SchedulingPolicy::Timed;
    // The x86 part (Core 2 Quad) is a wider out-of-order machine than
    // the ARM big.LITTLE cores, but its TSO model restricts visible
    // reordering; window sizes are per-thread in-flight memory ops.
    cfg.reorderWindow = isa == Isa::X86 ? 16 : 8;
    return cfg;
}

ExecutorConfig
osConfig(Isa isa)
{
    ExecutorConfig cfg = bareMetalConfig(isa);
    cfg.timing.preemptProbability = 0.002;
    cfg.timing.startSkewMax = 64;
    return cfg;
}

ExecutorConfig
scReferenceConfig()
{
    ExecutorConfig cfg;
    cfg.model = MemoryModel::SC;
    cfg.policy = SchedulingPolicy::UniformRandom;
    cfg.reorderWindow = 1;
    cfg.exportCoherenceOrder = true;
    return cfg;
}

} // namespace mtc
