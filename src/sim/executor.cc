#include "sim/executor.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "graph/po_edges.h"
#include "sim/order_table.h"
#include "support/error.h"

namespace mtc
{

namespace
{

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/** Per-run mutable state shared by both scheduling policies. */
struct RunState
{
    const TestProgram &program;
    const ExecutorConfig &cfg;
    const OrderTable &order;
    Rng &rng;

    std::vector<std::uint32_t> mem;          ///< current value per loc
    CompletionBits completion;
    std::vector<std::uint32_t> head;         ///< lowest incomplete idx
    std::vector<std::uint64_t> coreSlot;     ///< next issue time (timed)
    std::vector<std::vector<std::uint64_t>> completionTime;
    std::vector<bool> blocked;               ///< bug-3 wedged threads
    std::uint64_t remaining = 0;

    Execution result;

    // --- Timed-policy cache model -------------------------------------
    struct Line
    {
        std::int32_t owner = -1;      ///< core holding M/E, or -1
        std::uint32_t sharers = 0;    ///< residency bitmask
        std::uint64_t lastStoreTime = 0;
        std::int32_t lastStoreTid = -1;
        std::uint64_t lastEvictTime = 0;
        bool everEvicted = false;
    };
    std::vector<Line> lines;
    /** Per-core LRU timestamps of resident lines (capacity evictions). */
    std::vector<std::unordered_map<std::uint32_t, std::uint64_t>> lru;
    /** Cached per-op latency jitter, drawn once per op. */
    std::vector<std::vector<std::uint64_t>> jitter;
    /** Per-location (time, value) history for stale-read injection. */
    std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>>
        history;

    RunState(const TestProgram &program_arg, const ExecutorConfig &cfg_arg,
             const OrderTable &order_arg, Rng &rng_arg)
        : program(program_arg), cfg(cfg_arg), order(order_arg),
          rng(rng_arg)
    {
        const auto &threads = program.threadBodies();
        mem.assign(program.config().numLocations, kInitValue);
        completion.reset(program);
        completionTime.resize(threads.size());
        jitter.resize(threads.size());
        head.assign(threads.size(), 0);
        coreSlot.assign(threads.size(), 0);
        blocked.assign(threads.size(), false);
        for (std::size_t t = 0; t < threads.size(); ++t) {
            completionTime[t].assign(threads[t].size(), 0);
            jitter[t].assign(threads[t].size(), kNever);
            remaining += threads[t].size();
        }
        result.loadValues.assign(program.loads().size(), kInitValue);
        if (cfg.exportCoherenceOrder) {
            result.coherenceOrder.assign(program.config().numLocations,
                                         {});
        }
        if (cfg.policy == SchedulingPolicy::Timed) {
            lines.resize(program.numLines());
            lru.resize(threads.size());
            for (std::size_t t = 0; t < threads.size(); ++t)
                coreSlot[t] = rng.nextBelow(cfg.timing.startSkewMax + 1);
        }
        if (cfg.bug != BugKind::None)
            history.resize(program.config().numLocations);
    }

    bool
    isCompleted(std::uint32_t tid, std::uint32_t idx) const
    {
        return completion.isCompleted(tid, idx);
    }

    /** May op idx perform now (all required predecessors complete)? */
    bool
    isEligible(std::uint32_t tid, std::uint32_t idx) const
    {
        if (blocked[tid])
            return false;
        if (idx >= head[tid] + cfg.reorderWindow)
            return false;
        return (order.requiredPreds[tid][idx] &
                ~completion.windowCompleted(tid, idx)) == 0;
    }

    /** Latest po-earlier same-location store of the same thread. */
    std::optional<std::uint32_t>
    forwardedValue(std::uint32_t tid, std::uint32_t idx,
                   std::uint32_t loc) const
    {
        const auto &body = program.threadBodies()[tid];
        for (std::uint32_t i = idx; i-- > 0;) {
            if (body[i].kind == OpKind::Store && body[i].loc == loc) {
                if (!isCompleted(tid, i))
                    return body[i].value; // store-buffer forwarding
                return std::nullopt;      // globally visible: read memory
            }
        }
        return std::nullopt;
    }

    void
    markCompleted(std::uint32_t tid, std::uint32_t idx, std::uint64_t time)
    {
        completion.markCompleted(tid, idx);
        completionTime[tid][idx] = time;
        result.duration = std::max(result.duration, time);
        --remaining;
        const std::uint32_t size =
            static_cast<std::uint32_t>(program.threadBodies()[tid].size());
        while (head[tid] < size && isCompleted(tid, head[tid]))
            ++head[tid];
    }

    void
    completeStore(std::uint32_t tid, std::uint32_t idx, std::uint64_t time)
    {
        const MemOp &op = program.threadBodies()[tid][idx];
        mem[op.loc] = op.value;
        if (cfg.exportCoherenceOrder)
            result.coherenceOrder[op.loc].push_back(OpId{tid, idx});
        if (cfg.bug != BugKind::None)
            history[op.loc].emplace_back(time, op.value);
        markCompleted(tid, idx, time);
    }

    void
    completeLoad(std::uint32_t tid, std::uint32_t idx, std::uint64_t time,
                 std::uint32_t value)
    {
        result.loadValues[program.loadOrdinal(OpId{tid, idx})] = value;
        markCompleted(tid, idx, time);
    }

    /** Memory value of @p loc as of time @p when (stale-read lookup). */
    std::uint32_t
    valueAt(std::uint32_t loc, std::uint64_t when) const
    {
        std::uint32_t value = kInitValue;
        for (const auto &[time, stored] : history[loc]) {
            if (time > when)
                break;
            value = stored;
        }
        return value;
    }
};

// ---------------------------------------------------------------------
// Uniform-random policy
// ---------------------------------------------------------------------

void
runUniform(RunState &state)
{
    const auto &threads = state.program.threadBodies();
    std::vector<std::pair<std::uint32_t, std::uint32_t>> eligible;
    std::uint64_t step = 0;

    while (state.remaining > 0) {
        eligible.clear();
        for (std::uint32_t tid = 0; tid < threads.size(); ++tid) {
            const std::uint32_t end = std::min<std::uint32_t>(
                static_cast<std::uint32_t>(threads[tid].size()),
                state.head[tid] + state.cfg.reorderWindow);
            for (std::uint32_t idx = state.head[tid]; idx < end; ++idx) {
                if (!state.isCompleted(tid, idx) &&
                    state.isEligible(tid, idx)) {
                    eligible.emplace_back(tid, idx);
                }
            }
        }
        if (eligible.empty())
            throw PlatformError("uniform executor wedged (internal bug)");

        const auto [tid, idx] =
            eligible[state.rng.pickIndex(eligible.size())];
        const MemOp &op = threads[tid][idx];
        ++step;
        switch (op.kind) {
          case OpKind::Store:
            state.completeStore(tid, idx, step);
            break;
          case OpKind::Load: {
            auto forwarded = state.forwardedValue(tid, idx, op.loc);
            state.completeLoad(tid, idx, step,
                               forwarded ? *forwarded
                                         : state.mem[op.loc]);
            break;
          }
          case OpKind::Fence:
            state.markCompleted(tid, idx, step);
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Timed (silicon-like) policy
// ---------------------------------------------------------------------

class TimedEngine
{
  public:
    explicit TimedEngine(RunState &state_arg) : state(state_arg) {}

    void
    run()
    {
        const auto &threads = state.program.threadBodies();
        while (state.remaining > 0) {
            std::uint32_t best_tid = 0, best_idx = 0;
            std::uint64_t best_time = kNever;
            std::uint64_t best_issue = 0;
            std::uint32_t candidates = 0;

            for (std::uint32_t tid = 0; tid < threads.size(); ++tid) {
                const std::uint32_t end = std::min<std::uint32_t>(
                    static_cast<std::uint32_t>(threads[tid].size()),
                    state.head[tid] + state.cfg.reorderWindow);
                for (std::uint32_t idx = state.head[tid]; idx < end;
                     ++idx) {
                    if (state.isCompleted(tid, idx) ||
                        !state.isEligible(tid, idx)) {
                        continue;
                    }
                    const auto [issue, completion] =
                        candidateTimes(tid, idx);
                    ++candidates;
                    // Deterministic tie-break (lowest thread id /
                    // oldest op): silicon arbitration is stable, so
                    // equal-latency races repeat the same winner.
                    if (completion < best_time) {
                        best_time = completion;
                        best_issue = issue;
                        best_tid = tid;
                        best_idx = idx;
                    }
                }
            }

            if (candidates == 0) {
                // Only blocked threads have work left: the injected
                // protocol race wedged the platform.
                throw ProtocolDeadlockError(
                    "coherence request lost (PUTX/GETX race): platform "
                    "deadlocked");
            }

            perform(best_tid, best_idx, best_issue, best_time);
        }
    }

  private:
    std::uint64_t
    opJitter(std::uint32_t tid, std::uint32_t idx)
    {
        std::uint64_t &cached = state.jitter[tid][idx];
        if (cached == kNever) {
            const TimingParams &timing = state.cfg.timing;
            cached = state.rng.nextBool(timing.jitterProbability)
                ? 1 + state.rng.nextBelow(timing.jitterMax)
                : 0;
        }
        return cached;
    }

    bool
    resident(std::uint32_t tid, const RunState::Line &line) const
    {
        return line.owner == static_cast<std::int32_t>(tid) ||
            ((line.sharers >> tid) & 1);
    }

    /** (issue, completion) candidate times for an eligible op. */
    std::pair<std::uint64_t, std::uint64_t>
    candidateTimes(std::uint32_t tid, std::uint32_t idx)
    {
        const MemOp &op = state.program.threadBodies()[tid][idx];
        const TimingParams &timing = state.cfg.timing;

        // Issue waits for the core slot and for every required-order
        // predecessor's completion (eligibility guarantees they are
        // complete, so their times are final).
        std::uint64_t issue = state.coreSlot[tid];
        std::uint32_t preds = state.order.requiredPreds[tid][idx];
        while (preds) {
            const int b = __builtin_ctz(preds);
            preds &= preds - 1;
            const std::int64_t j =
                static_cast<std::int64_t>(idx) - 32 + b;
            if (j >= 0) {
                issue = std::max(issue,
                                 state.completionTime[tid][j]);
            }
        }

        std::uint64_t latency = timing.issueCost;
        if (op.kind != OpKind::Fence) {
            const RunState::Line &line =
                state.lines[state.program.lineOf(op.loc)];
            if (op.kind == OpKind::Load) {
                if (resident(tid, line))
                    latency += timing.hitLatency;
                else if (line.owner >= 0)
                    latency += timing.transferLatency;
                else
                    latency += timing.missLatency;
            } else {
                if (line.owner == static_cast<std::int32_t>(tid)) {
                    latency += timing.hitLatency;
                } else if (resident(tid, line)) {
                    latency += timing.upgradeLatency;
                } else if (line.owner >= 0) {
                    latency += timing.transferLatency;
                } else {
                    latency += timing.missLatency;
                    // Other sharers must also be invalidated.
                    if (line.sharers != 0)
                        latency += timing.upgradeLatency;
                }
            }
        }
        latency += opJitter(tid, idx);
        return {issue, issue + latency};
    }

    /** Touch the LRU and evict over-capacity lines for @p tid. */
    void
    touchLine(std::uint32_t tid, std::uint32_t line_idx, std::uint64_t now)
    {
        const std::uint32_t capacity = state.cfg.timing.cacheLines;
        auto &core_lru = state.lru[tid];
        core_lru[line_idx] = now;
        if (capacity == 0 || core_lru.size() <= capacity)
            return;

        // Evict the least-recently-used other line.
        std::uint32_t victim = line_idx;
        std::uint64_t oldest = kNever;
        for (const auto &[line, last] : core_lru) {
            if (line != line_idx && last < oldest) {
                oldest = last;
                victim = line;
            }
        }
        core_lru.erase(victim);
        RunState::Line &line = state.lines[victim];
        if (line.owner == static_cast<std::int32_t>(tid)) {
            // Dirty eviction: writeback (PUTX). Values are already in
            // memory in this model; record the event for the bug-3
            // race window.
            line.owner = -1;
            line.lastEvictTime = now;
            line.everEvicted = true;
        }
        line.sharers &= ~(std::uint32_t(1) << tid);
    }

    bool
    bugGate()
    {
        return state.rng.nextBool(state.cfg.bugProbability);
    }

    /** Does thread @p tid have an incomplete po-earlier store to the
     * same cache line as the load at @p idx (S->M upgrade in flight)? */
    bool
    upgradeInFlight(std::uint32_t tid, std::uint32_t idx,
                    std::uint32_t line_idx) const
    {
        const auto &body = state.program.threadBodies()[tid];
        for (std::uint32_t i = state.head[tid]; i < idx; ++i) {
            if (!state.isCompleted(tid, i) &&
                body[i].kind == OpKind::Store &&
                state.program.lineOf(body[i].loc) == line_idx) {
                return true;
            }
        }
        return false;
    }

    void
    perform(std::uint32_t tid, std::uint32_t idx, std::uint64_t issue,
            std::uint64_t now)
    {
        const MemOp &op = state.program.threadBodies()[tid][idx];
        const TimingParams &timing = state.cfg.timing;

        if (op.kind == OpKind::Fence) {
            state.markCompleted(tid, idx, now);
            state.coreSlot[tid] = std::max(state.coreSlot[tid], issue) +
                timing.issueCost;
            return;
        }

        const std::uint32_t line_idx = state.program.lineOf(op.loc);
        RunState::Line &line = state.lines[line_idx];

        // Bug 3: the ownership-transfer request raced with the owner's
        // writeback and got lost; the requester spins forever.
        if (state.cfg.bug == BugKind::PutxGetxRace &&
            !resident(tid, line) && line.everEvicted &&
            line.lastEvictTime > issue && bugGate()) {
            state.blocked[tid] = true;
            return;
        }

        if (op.kind == OpKind::Store) {
            // Invalidate all other copies; take ownership.
            if (line.owner >= 0 &&
                line.owner != static_cast<std::int32_t>(tid)) {
                state.lru[line.owner].erase(line_idx);
            }
            for (std::uint32_t other = 0;
                 other < state.program.numThreads(); ++other) {
                if (other != tid && ((line.sharers >> other) & 1))
                    state.lru[other].erase(line_idx);
            }
            line.owner = static_cast<std::int32_t>(tid);
            line.sharers = std::uint32_t(1) << tid;
            line.lastStoreTime = now;
            line.lastStoreTid = static_cast<std::int32_t>(tid);
            touchLine(tid, line_idx, now);
            state.completeStore(tid, idx, now);
        } else {
            std::uint32_t value;
            auto forwarded = state.forwardedValue(tid, idx, op.loc);
            if (forwarded) {
                value = *forwarded;
            } else {
                value = state.mem[op.loc];

                // Bugs 1/2: a remote store invalidated this line while
                // the load was in flight, but the load is not squashed
                // and returns the stale value it snooped at issue.
                const bool remote_inval =
                    line.lastStoreTid >= 0 &&
                    line.lastStoreTid != static_cast<std::int32_t>(tid) &&
                    line.lastStoreTime > issue;
                if (remote_inval && state.cfg.bug != BugKind::None) {
                    const bool fire =
                        (state.cfg.bug == BugKind::LsqNoSquash ||
                         (state.cfg.bug == BugKind::StaleLoadOnUpgrade &&
                          upgradeInFlight(tid, idx, line_idx))) &&
                        bugGate();
                    if (fire)
                        value = state.valueAt(op.loc, issue);
                }
            }

            // Owner (if another core) is downgraded to shared.
            if (line.owner >= 0 &&
                line.owner != static_cast<std::int32_t>(tid)) {
                line.sharers |= std::uint32_t(1) << line.owner;
                line.owner = -1;
            }
            line.sharers |= std::uint32_t(1) << tid;
            touchLine(tid, line_idx, now);
            state.completeLoad(tid, idx, now, value);
        }

        state.coreSlot[tid] = std::max(state.coreSlot[tid], issue) +
            timing.issueCost;

        // OS-interference mode: occasionally the scheduler preempts the
        // core, stalling its subsequent issues for a full slice.
        if (timing.preemptProbability > 0.0 &&
            state.rng.nextBool(timing.preemptProbability)) {
            state.coreSlot[tid] += timing.preemptSlice;
        }
    }

    RunState &state;
};

/** Cache of OrderTables keyed by (program identity, model). */
class OrderTableCache
{
  public:
    const OrderTable &
    get(const TestProgram &program, MemoryModel model)
    {
        if (program.fingerprint() != cachedFingerprint ||
            model != cachedModel) {
            table.build(program, model);
            cachedFingerprint = program.fingerprint();
            cachedModel = model;
        }
        return table;
    }

  private:
    std::uint64_t cachedFingerprint = 0;
    MemoryModel cachedModel = MemoryModel::SC;
    OrderTable table;
};

OrderTableCache &
orderTableCache()
{
    thread_local OrderTableCache cache;
    return cache;
}

} // anonymous namespace

OperationalExecutor::OperationalExecutor(ExecutorConfig cfg_arg)
    : cfg(cfg_arg)
{
    if (cfg.reorderWindow < 1 || cfg.reorderWindow > kMaxReorderWindow)
        throw ConfigError("reorder window must lie in [1, 32]");
    if (cfg.bugProbability < 0.0 || cfg.bugProbability > 1.0)
        throw ConfigError("bug probability must lie in [0,1]");
    if (cfg.bug != BugKind::None &&
        cfg.policy != SchedulingPolicy::Timed) {
        throw ConfigError("bug injection requires the Timed policy");
    }
}

Execution
OperationalExecutor::run(const TestProgram &program, Rng &rng)
{
    const OrderTable &order = orderTableCache().get(program, cfg.model);
    RunState state(program, cfg, order, rng);
    if (cfg.policy == SchedulingPolicy::UniformRandom) {
        runUniform(state);
    } else {
        TimedEngine engine(state);
        engine.run();
    }
    return std::move(state.result);
}

ExecutorConfig
bareMetalConfig(Isa isa)
{
    ExecutorConfig cfg;
    cfg.model = defaultModel(isa);
    cfg.policy = SchedulingPolicy::Timed;
    // The x86 part (Core 2 Quad) is a wider out-of-order machine than
    // the ARM big.LITTLE cores, but its TSO model restricts visible
    // reordering; window sizes are per-thread in-flight memory ops.
    cfg.reorderWindow = isa == Isa::X86 ? 16 : 8;
    return cfg;
}

ExecutorConfig
osConfig(Isa isa)
{
    ExecutorConfig cfg = bareMetalConfig(isa);
    cfg.timing.preemptProbability = 0.002;
    cfg.timing.startSkewMax = 64;
    return cfg;
}

ExecutorConfig
scReferenceConfig()
{
    ExecutorConfig cfg;
    cfg.model = MemoryModel::SC;
    cfg.policy = SchedulingPolicy::UniformRandom;
    cfg.reorderWindow = 1;
    cfg.exportCoherenceOrder = true;
    return cfg;
}

} // namespace mtc
