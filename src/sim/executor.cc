#include "sim/executor.h"

#include <algorithm>
#include <csignal>
#include <limits>

#include "graph/po_edges.h"
#include "sim/order_table.h"
#include "support/error.h"
#include "support/process.h"

namespace mtc
{

namespace
{

constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

/**
 * Per-run mutable state shared by both scheduling policies. Lives in
 * the caller's RunArena and is reset in place between runs: every
 * container is re-filled with assign()/resize() so its capacity
 * survives, making the steady-state iteration loop allocation-free.
 * The reset replays the original construction order exactly — in
 * particular the per-thread start-skew draws — so arena reuse is
 * Rng-sequence-identical to fresh construction.
 */
struct RunState : RunArena::State
{
    const TestProgram *program = nullptr;
    const ExecutorConfig *cfg = nullptr;
    const OrderTable *order = nullptr;
    Rng *rng = nullptr;
    Execution *result = nullptr;

    std::vector<std::uint32_t> mem;          ///< current value per loc
    CompletionBits completion;
    std::vector<std::uint32_t> head;         ///< lowest incomplete idx
    std::vector<std::uint64_t> coreSlot;     ///< next issue time (timed)
    std::vector<std::vector<std::uint64_t>> completionTime;
    std::vector<bool> blocked;               ///< bug-3 wedged threads
    std::uint64_t remaining = 0;

    // --- Liveness layer (watchdog cancellation + stall drill) ---------
    const CancellationToken *cancel = nullptr;
    std::uint64_t stepsTaken = 0;

    /**
     * Polled once per scheduler step by both policies: abandon the
     * run when the watchdog fired, and enter the injected infinite
     * stall when the drill's step budget is reached. One relaxed load
     * plus two compares when idle — negligible against a step's work.
     */
    void
    checkLiveness()
    {
        ++stepsTaken;
        if (cancel && cancel->stopRequested()) {
            throw TestHungError(
                "run abandoned by watchdog: test deadline expired");
        }
        if (cfg->stallAfterSteps && stepsTaken >= cfg->stallAfterSteps) {
            // A non-cooperative wedge never looks at the token:
            // recovery then requires killing the process, which is
            // exactly what the sandbox's hard deadline drills.
            stallUntilCancelled(cfg->stallIgnoresCancel ? nullptr
                                                        : cancel);
        }
    }

    // --- Timed-policy cache model -------------------------------------
    struct Line
    {
        std::int32_t owner = -1;      ///< core holding M/E, or -1
        std::uint32_t sharers = 0;    ///< residency bitmask
        std::uint64_t lastStoreTime = 0;
        std::int32_t lastStoreTid = -1;
        std::uint64_t lastEvictTime = 0;
        bool everEvicted = false;
    };
    std::vector<Line> lines;
    std::uint32_t numLines = 0;
    /** loc -> cache line, hoisting lineOf()'s division off the hot
     * path. */
    std::vector<std::uint32_t> locLine;
    /**
     * Per-core last-touch timestamps, flat-indexed [tid * numLines +
     * line] (kNever = not resident), with per-core resident counts —
     * the former per-core unordered_map LRU without the per-run node
     * churn. Capacity-eviction victims are found by a bounded scan
     * over the line array; ties on the timestamp break toward the
     * lowest line index (deterministic, unlike map iteration order).
     */
    std::vector<std::uint64_t> lruStamp;
    std::vector<std::uint32_t> lruCount;
    /** Cached per-op latency jitter, drawn once per op. */
    std::vector<std::vector<std::uint64_t>> jitter;
    /** Per-location (time, value) history for stale-read injection. */
    std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>>
        history;

    /** Uniform-policy candidate scratch (rebuilt every step). */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> eligibleScratch;

    /**
     * Timed-policy per-thread cached best candidate (completion, issue,
     * idx, validity). A perform only invalidates its own thread's
     * times (core slot, intra-thread predecessors) and, through cache
     * lines it mutated, other threads' latencies — so the engine
     * recomputes per-thread bests selectively instead of rescanning
     * every candidate each step.
     */
    std::vector<std::uint64_t> bestTime;
    std::vector<std::uint64_t> bestIssue;
    std::vector<std::uint32_t> bestIdx;
    std::vector<std::uint8_t> bestValid;

    void
    reset(const TestProgram &program_arg, const ExecutorConfig &cfg_arg,
          const OrderTable &order_arg, Rng &rng_arg, Execution &out)
    {
        program = &program_arg;
        cfg = &cfg_arg;
        order = &order_arg;
        rng = &rng_arg;
        result = &out;

        const auto &threads = program->threadBodies();
        const std::uint32_t num_locs = program->config().numLocations;
        mem.assign(num_locs, kInitValue);
        completion.reset(*program);
        completionTime.resize(threads.size());
        head.assign(threads.size(), 0);
        coreSlot.assign(threads.size(), 0);
        blocked.assign(threads.size(), false);
        remaining = 0;
        for (std::size_t t = 0; t < threads.size(); ++t) {
            completionTime[t].assign(threads[t].size(), 0);
            remaining += threads[t].size();
        }

        result->loadValues.assign(program->loads().size(), kInitValue);
        result->duration = 0;
        if (cfg->exportCoherenceOrder) {
            result->coherenceOrder.resize(num_locs);
            for (auto &per_loc : result->coherenceOrder)
                per_loc.clear();
        } else {
            result->coherenceOrder.clear();
        }

        if (cfg->policy == SchedulingPolicy::Timed) {
            lines.assign(program->numLines(), Line{});
            numLines = static_cast<std::uint32_t>(lines.size());
            locLine.resize(num_locs);
            for (std::uint32_t loc = 0; loc < num_locs; ++loc)
                locLine[loc] = program->lineOf(loc);
            lruStamp.assign(
                static_cast<std::size_t>(threads.size()) * numLines,
                kNever);
            lruCount.assign(threads.size(), 0);
            // Jitter caches only exist under the timed policy (the
            // uniform path never reads them).
            jitter.resize(threads.size());
            for (std::size_t t = 0; t < threads.size(); ++t)
                jitter[t].assign(threads[t].size(), kNever);
            bestTime.assign(threads.size(), kNever);
            bestIssue.assign(threads.size(), 0);
            bestIdx.assign(threads.size(), 0);
            bestValid.assign(threads.size(), 0);
            for (std::size_t t = 0; t < threads.size(); ++t) {
                coreSlot[t] =
                    rng->nextBelow(cfg->timing.startSkewMax + 1);
            }
        } else {
            eligibleScratch.reserve(threads.size() *
                                    cfg->reorderWindow);
        }
        if (cfg->bug != BugKind::None) {
            history.resize(num_locs);
            for (auto &per_loc : history)
                per_loc.clear();
        }
    }

    bool
    isCompleted(std::uint32_t tid, std::uint32_t idx) const
    {
        return completion.isCompleted(tid, idx);
    }

    /** May op idx perform now (all required predecessors complete)? */
    bool
    isEligible(std::uint32_t tid, std::uint32_t idx) const
    {
        if (blocked[tid])
            return false;
        if (idx >= head[tid] + cfg->reorderWindow)
            return false;
        return (order->requiredPreds[tid][idx] &
                ~completion.windowCompleted(tid, idx)) == 0;
    }

    /**
     * Value forwarded from the latest po-earlier same-location store
     * of the same thread, O(1) via the precomputed priorStore table:
     * only the nearest prior store can forward (a completed one ends
     * the old backward scan immediately).
     */
    std::optional<std::uint32_t>
    forwardedValue(std::uint32_t tid, std::uint32_t idx) const
    {
        const std::uint32_t prior = order->priorStore[tid][idx];
        if (prior == kNoPriorStore)
            return std::nullopt;
        if (!isCompleted(tid, prior)) {
            // store-buffer forwarding
            return program->threadBodies()[tid][prior].value;
        }
        return std::nullopt; // globally visible: read memory
    }

    /** This core's flat LRU timestamp row. */
    std::uint64_t *
    coreLru(std::uint32_t tid)
    {
        return lruStamp.data() +
            static_cast<std::size_t>(tid) * numLines;
    }

    /** Drop @p line_idx from @p tid's LRU (no-op when not resident). */
    void
    lruErase(std::uint32_t tid, std::uint32_t line_idx)
    {
        std::uint64_t &stamp = coreLru(tid)[line_idx];
        if (stamp != kNever) {
            stamp = kNever;
            --lruCount[tid];
        }
    }

    void
    markCompleted(std::uint32_t tid, std::uint32_t idx, std::uint64_t time)
    {
        completion.markCompleted(tid, idx);
        completionTime[tid][idx] = time;
        result->duration = std::max(result->duration, time);
        --remaining;
        const std::uint32_t size = static_cast<std::uint32_t>(
            program->threadBodies()[tid].size());
        while (head[tid] < size && isCompleted(tid, head[tid]))
            ++head[tid];
    }

    void
    completeStore(std::uint32_t tid, std::uint32_t idx, std::uint64_t time)
    {
        const MemOp &op = program->threadBodies()[tid][idx];
        mem[op.loc] = op.value;
        if (cfg->exportCoherenceOrder)
            result->coherenceOrder[op.loc].push_back(OpId{tid, idx});
        if (cfg->bug != BugKind::None)
            history[op.loc].emplace_back(time, op.value);
        markCompleted(tid, idx, time);
    }

    void
    completeLoad(std::uint32_t tid, std::uint32_t idx, std::uint64_t time,
                 std::uint32_t value)
    {
        result->loadValues[program->loadOrdinal(OpId{tid, idx})] = value;
        markCompleted(tid, idx, time);
    }

    /** Memory value of @p loc as of time @p when (stale-read lookup). */
    std::uint32_t
    valueAt(std::uint32_t loc, std::uint64_t when) const
    {
        std::uint32_t value = kInitValue;
        for (const auto &[time, stored] : history[loc]) {
            if (time > when)
                break;
            value = stored;
        }
        return value;
    }
};

// ---------------------------------------------------------------------
// Uniform-random policy
// ---------------------------------------------------------------------

void
runUniform(RunState &state)
{
    const auto &threads = state.program->threadBodies();
    auto &eligible = state.eligibleScratch;
    std::uint64_t step = 0;

    while (state.remaining > 0) {
        state.checkLiveness();
        eligible.clear();
        for (std::uint32_t tid = 0; tid < threads.size(); ++tid) {
            const std::uint32_t end = std::min<std::uint32_t>(
                static_cast<std::uint32_t>(threads[tid].size()),
                state.head[tid] + state.cfg->reorderWindow);
            for (std::uint32_t idx = state.head[tid]; idx < end; ++idx) {
                if (!state.isCompleted(tid, idx) &&
                    state.isEligible(tid, idx)) {
                    eligible.emplace_back(tid, idx);
                }
            }
        }
        if (eligible.empty())
            throw PlatformError("uniform executor wedged (internal bug)");

        const auto [tid, idx] =
            eligible[state.rng->pickIndex(eligible.size())];
        const MemOp &op = threads[tid][idx];
        ++step;
        switch (op.kind) {
          case OpKind::Store:
            state.completeStore(tid, idx, step);
            break;
          case OpKind::Load: {
            auto forwarded = state.forwardedValue(tid, idx);
            state.completeLoad(tid, idx, step,
                               forwarded ? *forwarded
                                         : state.mem[op.loc]);
            break;
          }
          case OpKind::Fence:
            state.markCompleted(tid, idx, step);
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Timed (silicon-like) policy
// ---------------------------------------------------------------------

class TimedEngine
{
  public:
    explicit TimedEngine(RunState &state_arg) : state(state_arg) {}

    void
    run()
    {
        const std::uint32_t num_threads = state.program->numThreads();
        // Seed every thread's cached best. Jitter draws happen on each
        // op's first candidateTimes evaluation, so this initial pass
        // draws for the initially eligible ops in (tid, idx) order —
        // exactly the first scan of the full-rescan engine.
        for (std::uint32_t tid = 0; tid < num_threads; ++tid)
            recomputeBest(tid);

        while (state.remaining > 0) {
            state.checkLiveness();
            std::uint32_t best_tid = 0;
            std::uint64_t best_time = kNever;
            bool found = false;
            // Deterministic tie-break (lowest thread id / oldest op):
            // silicon arbitration is stable, so equal-latency races
            // repeat the same winner. Strict < here plus strict < in
            // recomputeBest reproduce the full scan's lexicographic
            // (tid, idx) preference.
            for (std::uint32_t tid = 0; tid < num_threads; ++tid) {
                if (state.bestValid[tid] &&
                    state.bestTime[tid] < best_time) {
                    best_time = state.bestTime[tid];
                    best_tid = tid;
                    found = true;
                }
            }

            if (!found) {
                // Only blocked threads have work left: the injected
                // protocol race wedged the platform.
                throw ProtocolDeadlockError(
                    "coherence request lost (PUTX/GETX race): platform "
                    "deadlocked");
            }

            numDirty = 0;
            perform(best_tid, state.bestIdx[best_tid],
                    state.bestIssue[best_tid], best_time);

            // Eligibility and issue-time inputs (required-predecessor
            // completions, core slot, head, blocked) are strictly
            // intra-thread, so only the performing thread's candidate
            // set changed — and its recompute runs first, drawing
            // jitter for newly eligible ops in idx order, matching the
            // full rescan's draw sequence. Other threads are affected
            // only through the cache lines this perform mutated; their
            // re-evaluations hit the jitter cache and draw nothing.
            recomputeBest(best_tid);
            if (numDirty != 0) {
                for (std::uint32_t tid = 0; tid < num_threads; ++tid) {
                    if (tid != best_tid && windowTouchesDirty(tid))
                        recomputeBest(tid);
                }
            }
        }
    }

  private:
    /** Re-scan @p tid's reorder window and cache its best candidate. */
    void
    recomputeBest(std::uint32_t tid)
    {
        const auto &body = state.program->threadBodies()[tid];
        const std::uint32_t end = std::min<std::uint32_t>(
            static_cast<std::uint32_t>(body.size()),
            state.head[tid] + state.cfg->reorderWindow);
        std::uint64_t best_time = kNever;
        std::uint64_t best_issue = 0;
        std::uint32_t best_idx = 0;
        bool found = false;
        for (std::uint32_t idx = state.head[tid]; idx < end; ++idx) {
            if (state.isCompleted(tid, idx) ||
                !state.isEligible(tid, idx)) {
                continue;
            }
            const auto [issue, completion] = candidateTimes(tid, idx);
            if (completion < best_time) {
                best_time = completion;
                best_issue = issue;
                best_idx = idx;
                found = true;
            }
        }
        state.bestTime[tid] = best_time;
        state.bestIssue[tid] = best_issue;
        state.bestIdx[tid] = best_idx;
        state.bestValid[tid] = found ? 1 : 0;
    }

    /** Mark a cache line whose coherence state this perform changed. */
    void
    markDirty(std::uint32_t line_idx)
    {
        if (numDirty < 2)
            dirtyLines[numDirty++] = line_idx;
    }

    /** Does any incomplete memory op in @p tid's window hit a line
     * dirtied by the last perform (so its cached latency is stale)? */
    bool
    windowTouchesDirty(std::uint32_t tid) const
    {
        const auto &body = state.program->threadBodies()[tid];
        const std::uint32_t end = std::min<std::uint32_t>(
            static_cast<std::uint32_t>(body.size()),
            state.head[tid] + state.cfg->reorderWindow);
        for (std::uint32_t idx = state.head[tid]; idx < end; ++idx) {
            if (state.isCompleted(tid, idx))
                continue;
            const MemOp &op = body[idx];
            if (op.kind == OpKind::Fence)
                continue;
            const std::uint32_t line = state.locLine[op.loc];
            for (std::uint32_t d = 0; d < numDirty; ++d) {
                if (line == dirtyLines[d])
                    return true;
            }
        }
        return false;
    }

    std::uint64_t
    opJitter(std::uint32_t tid, std::uint32_t idx)
    {
        std::uint64_t &cached = state.jitter[tid][idx];
        if (cached == kNever) {
            const TimingParams &timing = state.cfg->timing;
            cached = state.rng->nextBool(timing.jitterProbability)
                ? 1 + state.rng->nextBelow(timing.jitterMax)
                : 0;
        }
        return cached;
    }

    bool
    resident(std::uint32_t tid, const RunState::Line &line) const
    {
        return line.owner == static_cast<std::int32_t>(tid) ||
            ((line.sharers >> tid) & 1);
    }

    /** (issue, completion) candidate times for an eligible op. */
    std::pair<std::uint64_t, std::uint64_t>
    candidateTimes(std::uint32_t tid, std::uint32_t idx)
    {
        const MemOp &op = state.program->threadBodies()[tid][idx];
        const TimingParams &timing = state.cfg->timing;

        // Issue waits for the core slot and for every required-order
        // predecessor's completion (eligibility guarantees they are
        // complete, so their times are final).
        std::uint64_t issue = state.coreSlot[tid];
        std::uint32_t preds = state.order->requiredPreds[tid][idx];
        while (preds) {
            const int b = __builtin_ctz(preds);
            preds &= preds - 1;
            const std::int64_t j =
                static_cast<std::int64_t>(idx) - 32 + b;
            if (j >= 0) {
                issue = std::max(issue,
                                 state.completionTime[tid][j]);
            }
        }

        std::uint64_t latency = timing.issueCost;
        if (op.kind != OpKind::Fence) {
            const RunState::Line &line =
                state.lines[state.locLine[op.loc]];
            if (op.kind == OpKind::Load) {
                if (resident(tid, line))
                    latency += timing.hitLatency;
                else if (line.owner >= 0)
                    latency += timing.transferLatency;
                else
                    latency += timing.missLatency;
            } else {
                if (line.owner == static_cast<std::int32_t>(tid)) {
                    latency += timing.hitLatency;
                } else if (resident(tid, line)) {
                    latency += timing.upgradeLatency;
                } else if (line.owner >= 0) {
                    latency += timing.transferLatency;
                } else {
                    latency += timing.missLatency;
                    // Other sharers must also be invalidated.
                    if (line.sharers != 0)
                        latency += timing.upgradeLatency;
                }
            }
        }
        latency += opJitter(tid, idx);
        return {issue, issue + latency};
    }

    /** Touch the LRU and evict over-capacity lines for @p tid. */
    void
    touchLine(std::uint32_t tid, std::uint32_t line_idx, std::uint64_t now)
    {
        const std::uint32_t capacity = state.cfg->timing.cacheLines;
        std::uint64_t *stamps = state.coreLru(tid);
        if (stamps[line_idx] == kNever)
            ++state.lruCount[tid];
        stamps[line_idx] = now;
        if (capacity == 0 || state.lruCount[tid] <= capacity)
            return;

        // Evict the least-recently-used other line (lowest line index
        // on a timestamp tie).
        std::uint32_t victim = line_idx;
        std::uint64_t oldest = kNever;
        for (std::uint32_t l = 0; l < state.numLines; ++l) {
            if (l != line_idx && stamps[l] < oldest) {
                oldest = stamps[l];
                victim = l;
            }
        }
        stamps[victim] = kNever;
        --state.lruCount[tid];
        markDirty(victim); // owner/sharers change below
        RunState::Line &line = state.lines[victim];
        if (line.owner == static_cast<std::int32_t>(tid)) {
            // Dirty eviction: writeback (PUTX). Values are already in
            // memory in this model; record the event for the bug-3
            // race window.
            line.owner = -1;
            line.lastEvictTime = now;
            line.everEvicted = true;
        }
        line.sharers &= ~(std::uint32_t(1) << tid);
    }

    bool
    bugGate()
    {
        return state.rng->nextBool(state.cfg->bugProbability);
    }

    /** Does thread @p tid have an incomplete po-earlier store to the
     * same cache line as the load at @p idx (S->M upgrade in flight)? */
    bool
    upgradeInFlight(std::uint32_t tid, std::uint32_t idx,
                    std::uint32_t line_idx) const
    {
        const auto &body = state.program->threadBodies()[tid];
        for (std::uint32_t i = state.head[tid]; i < idx; ++i) {
            if (!state.isCompleted(tid, i) &&
                body[i].kind == OpKind::Store &&
                state.locLine[body[i].loc] == line_idx) {
                return true;
            }
        }
        return false;
    }

    void
    perform(std::uint32_t tid, std::uint32_t idx, std::uint64_t issue,
            std::uint64_t now)
    {
        const MemOp &op = state.program->threadBodies()[tid][idx];
        const TimingParams &timing = state.cfg->timing;

        if (op.kind == OpKind::Fence) {
            state.markCompleted(tid, idx, now);
            state.coreSlot[tid] = std::max(state.coreSlot[tid], issue) +
                timing.issueCost;
            return;
        }

        const std::uint32_t line_idx = state.locLine[op.loc];
        RunState::Line &line = state.lines[line_idx];
        markDirty(line_idx);

        // Bug 3: the ownership-transfer request raced with the owner's
        // writeback and got lost; the requester spins forever.
        if (state.cfg->bug == BugKind::PutxGetxRace &&
            !resident(tid, line) && line.everEvicted &&
            line.lastEvictTime > issue && bugGate()) {
            state.blocked[tid] = true;
            return;
        }

        if (op.kind == OpKind::Store) {
            // Invalidate all other copies; take ownership.
            if (line.owner >= 0 &&
                line.owner != static_cast<std::int32_t>(tid)) {
                state.lruErase(
                    static_cast<std::uint32_t>(line.owner), line_idx);
            }
            for (std::uint32_t other = 0;
                 other < state.program->numThreads(); ++other) {
                if (other != tid && ((line.sharers >> other) & 1))
                    state.lruErase(other, line_idx);
            }
            line.owner = static_cast<std::int32_t>(tid);
            line.sharers = std::uint32_t(1) << tid;
            line.lastStoreTime = now;
            line.lastStoreTid = static_cast<std::int32_t>(tid);
            touchLine(tid, line_idx, now);
            state.completeStore(tid, idx, now);
        } else {
            std::uint32_t value;
            auto forwarded = state.forwardedValue(tid, idx);
            if (forwarded) {
                value = *forwarded;
            } else {
                value = state.mem[op.loc];

                // Bugs 1/2: a remote store invalidated this line while
                // the load was in flight, but the load is not squashed
                // and returns the stale value it snooped at issue.
                const bool remote_inval =
                    line.lastStoreTid >= 0 &&
                    line.lastStoreTid != static_cast<std::int32_t>(tid) &&
                    line.lastStoreTime > issue;
                if (remote_inval && state.cfg->bug != BugKind::None) {
                    const bool fire =
                        (state.cfg->bug == BugKind::LsqNoSquash ||
                         (state.cfg->bug ==
                              BugKind::StaleLoadOnUpgrade &&
                          upgradeInFlight(tid, idx, line_idx))) &&
                        bugGate();
                    if (fire)
                        value = state.valueAt(op.loc, issue);
                }
            }

            // Owner (if another core) is downgraded to shared.
            if (line.owner >= 0 &&
                line.owner != static_cast<std::int32_t>(tid)) {
                line.sharers |= std::uint32_t(1) << line.owner;
                line.owner = -1;
            }
            line.sharers |= std::uint32_t(1) << tid;
            touchLine(tid, line_idx, now);
            state.completeLoad(tid, idx, now, value);
        }

        state.coreSlot[tid] = std::max(state.coreSlot[tid], issue) +
            timing.issueCost;

        // OS-interference mode: occasionally the scheduler preempts the
        // core, stalling its subsequent issues for a full slice.
        if (timing.preemptProbability > 0.0 &&
            state.rng->nextBool(timing.preemptProbability)) {
            state.coreSlot[tid] += timing.preemptSlice;
        }
    }

    RunState &state;

    /** Cache lines whose coherence state the last perform mutated: at
     * most the op's own line plus one LRU-eviction victim. */
    std::uint32_t dirtyLines[2] = {0, 0};
    std::uint32_t numDirty = 0;
};

/** Cache of OrderTables keyed by (program identity, model). */
class OrderTableCache
{
  public:
    const OrderTable &
    get(const TestProgram &program, MemoryModel model)
    {
        if (program.fingerprint() != cachedFingerprint ||
            model != cachedModel) {
            table.build(program, model);
            cachedFingerprint = program.fingerprint();
            cachedModel = model;
        }
        return table;
    }

  private:
    std::uint64_t cachedFingerprint = 0;
    MemoryModel cachedModel = MemoryModel::SC;
    OrderTable table;
};

OrderTableCache &
orderTableCache()
{
    thread_local OrderTableCache cache;
    return cache;
}

} // anonymous namespace

OperationalExecutor::OperationalExecutor(ExecutorConfig cfg_arg)
    : cfg(cfg_arg)
{
    if (cfg.reorderWindow < 1 || cfg.reorderWindow > kMaxReorderWindow)
        throw ConfigError("reorder window must lie in [1, 32]");
    if (cfg.bugProbability < 0.0 || cfg.bugProbability > 1.0)
        throw ConfigError("bug probability must lie in [0,1]");
    if (cfg.bug != BugKind::None &&
        cfg.policy != SchedulingPolicy::Timed) {
        throw ConfigError("bug injection requires the Timed policy");
    }
}

void
OperationalExecutor::runInto(const TestProgram &program, Rng &rng,
                             RunArena &arena,
                             const CancellationToken *cancel)
{
    // Crash drill: fail the Nth run before touching any state, the
    // way a platform lockup kills a re-execution outright.
    ++runsStarted;
    if (cfg.crashOnRun && runsStarted == cfg.crashOnRun) {
        throw ProtocolDeadlockError(
            "crash drill: scheduled platform crash on run " +
            std::to_string(runsStarted));
    }
    // Hard-failure drills: a REAL fatal signal / allocation bomb, not
    // a catchable exception. In-process these kill the campaign; the
    // sandbox contains them — that asymmetry is what they exist to
    // demonstrate.
    if (cfg.dieAfterRuns && runsStarted == cfg.dieAfterRuns)
        ::raise(cfg.dieSignal);
    if (cfg.leakAfterRuns && runsStarted == cfg.leakAfterRuns)
        allocationBomb();
    const OrderTable &order = orderTableCache().get(program, cfg.model);
    RunState &state = arena.stateAs<RunState>();
    state.reset(program, cfg, order, rng, arena.execution);
    state.cancel = cancel;
    state.stepsTaken = 0;
    if (cfg.policy == SchedulingPolicy::UniformRandom) {
        runUniform(state);
    } else {
        TimedEngine engine(state);
        engine.run();
    }
}

ExecutorConfig
bareMetalConfig(Isa isa)
{
    ExecutorConfig cfg;
    cfg.model = defaultModel(isa);
    cfg.policy = SchedulingPolicy::Timed;
    // The x86 part (Core 2 Quad) is a wider out-of-order machine than
    // the ARM big.LITTLE cores, but its TSO model restricts visible
    // reordering; window sizes are per-thread in-flight memory ops.
    cfg.reorderWindow = isa == Isa::X86 ? 16 : 8;
    return cfg;
}

ExecutorConfig
osConfig(Isa isa)
{
    ExecutorConfig cfg = bareMetalConfig(isa);
    cfg.timing.preemptProbability = 0.002;
    cfg.timing.startSkewMax = 64;
    return cfg;
}

ExecutorConfig
scReferenceConfig()
{
    ExecutorConfig cfg;
    cfg.model = MemoryModel::SC;
    cfg.policy = SchedulingPolicy::UniformRandom;
    cfg.reorderWindow = 1;
    cfg.exportCoherenceOrder = true;
    return cfg;
}

} // namespace mtc
