#include "testgen/test_program.h"

#include <sstream>

#include "support/error.h"

namespace mtc
{

namespace
{

inline std::uint64_t
packOpId(OpId id)
{
    return (static_cast<std::uint64_t>(id.tid) << 32) | id.idx;
}

} // anonymous namespace

std::uint32_t
storeValue(OpId id)
{
    // (tid+1) in the high bits keeps values non-zero and unique for any
    // test with < 2^12 threads and < 2^20 ops per thread.
    if (id.tid >= (1u << 12) || id.idx >= (1u << 20))
        throw ConfigError("test too large for store-value encoding");
    return ((id.tid + 1) << 20) | (id.idx + 1);
}

OpId
storeIdFromValue(std::uint32_t value)
{
    if (value == kInitValue)
        throw ConfigError("initial value has no producing store");
    OpId id;
    id.tid = (value >> 20) - 1;
    id.idx = (value & 0xfffffu) - 1;
    return id;
}

TestProgram::TestProgram(TestConfig cfg_arg,
                         std::vector<std::vector<MemOp>> threads_arg)
    : cfg(std::move(cfg_arg)), threads(std::move(threads_arg))
{
    rebuildIndex();
}

void
TestProgram::rebuildIndex()
{
    totalOps = 0;
    threadBase.assign(threads.size() + 1, 0);
    loadList.clear();
    storeList.clear();
    threadLoads.assign(threads.size(), {});
    storesPerLoc.assign(cfg.numLocations, {});
    valueToStore.clear();
    loadOrdinalMap.clear();

    contentHash = 1469598103934665603ull;
    auto mix = [this](std::uint64_t x) {
        contentHash ^= x;
        contentHash *= 1099511628211ull;
    };

    for (std::uint32_t tid = 0; tid < threads.size(); ++tid) {
        threadBase[tid] = totalOps;
        totalOps += static_cast<std::uint32_t>(threads[tid].size());
        for (std::uint32_t idx = 0; idx < threads[tid].size(); ++idx) {
            const MemOp &mem_op = threads[tid][idx];
            const OpId id{tid, idx};
            mix((static_cast<std::uint64_t>(mem_op.kind) << 56) ^
                (static_cast<std::uint64_t>(mem_op.loc) << 32) ^
                mem_op.value);
            switch (mem_op.kind) {
              case OpKind::Load:
                if (mem_op.loc >= cfg.numLocations)
                    throw ConfigError("load location out of range");
                loadOrdinalMap[packOpId(id)] =
                    static_cast<std::uint32_t>(loadList.size());
                loadList.push_back(id);
                threadLoads[tid].push_back(id);
                break;
              case OpKind::Store:
                if (mem_op.loc >= cfg.numLocations)
                    throw ConfigError("store location out of range");
                if (mem_op.value == kInitValue)
                    throw ConfigError("store value must be non-zero");
                if (!valueToStore.emplace(mem_op.value, id).second)
                    throw ConfigError("duplicate store value in test");
                storeList.push_back(id);
                storesPerLoc[mem_op.loc].push_back(id);
                break;
              case OpKind::Fence:
                break;
            }
        }
    }
    threadBase[threads.size()] = totalOps;
}

std::uint32_t
TestProgram::globalIndex(OpId id) const
{
    if (id.tid >= threads.size() || id.idx >= threads[id.tid].size())
        throw ConfigError("OpId out of range");
    return threadBase[id.tid] + id.idx;
}

OpId
TestProgram::opIdAt(std::uint32_t global_index) const
{
    if (global_index >= totalOps)
        throw ConfigError("global op index out of range");
    // threadBase is small (numThreads entries); linear scan suffices.
    std::uint32_t tid = 0;
    while (threadBase[tid + 1] <= global_index)
        ++tid;
    return OpId{tid, global_index - threadBase[tid]};
}

std::uint32_t
TestProgram::loadOrdinal(OpId id) const
{
    auto it = loadOrdinalMap.find(packOpId(id));
    if (it == loadOrdinalMap.end())
        throw ConfigError("loadOrdinal of a non-load operation");
    return it->second;
}

std::optional<OpId>
TestProgram::storeForValue(std::uint32_t value) const
{
    auto it = valueToStore.find(value);
    if (it == valueToStore.end())
        return std::nullopt;
    return it->second;
}

std::string
TestProgram::toString() const
{
    std::ostringstream os;
    os << "test " << cfg.name() << "\n";
    for (std::uint32_t tid = 0; tid < threads.size(); ++tid) {
        os << "  thread " << tid << ":\n";
        for (std::uint32_t idx = 0; idx < threads[tid].size(); ++idx) {
            const MemOp &mem_op = threads[tid][idx];
            os << "    [" << idx << "] " << opKindName(mem_op.kind);
            if (mem_op.kind != OpKind::Fence) {
                os << " loc" << mem_op.loc << " (0x" << std::hex
                   << byteAddress(mem_op.loc) << std::dec << ")";
            }
            if (mem_op.kind == OpKind::Store)
                os << " := " << mem_op.value;
            os << "\n";
        }
    }
    return os.str();
}

} // namespace mtc
