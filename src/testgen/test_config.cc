#include "testgen/test_config.h"

#include <sstream>

#include "support/error.h"

namespace mtc
{

std::string
TestConfig::name() const
{
    std::ostringstream os;
    os << isaName(isa) << "-" << numThreads << "-" << opsPerThread << "-"
       << numLocations;
    if (wordsPerLine > 1)
        os << " (" << wordsPerLine << " words/line)";
    return os.str();
}

void
TestConfig::validate() const
{
    if (numThreads < 1)
        throw ConfigError("test needs at least one thread");
    if (opsPerThread < 1)
        throw ConfigError("test needs at least one op per thread");
    if (numLocations < 1)
        throw ConfigError("test needs at least one shared location");
    if (loadFraction < 0.0 || loadFraction > 1.0)
        throw ConfigError("loadFraction must lie in [0,1]");
    if (wordsPerLine < 1 || wordsPerLine * bytesPerWord > lineBytes)
        throw ConfigError("wordsPerLine does not fit the cache line");
    if (fencePercent > 100)
        throw ConfigError("fencePercent must lie in [0,100]");
}

TestConfig
parseConfigName(const std::string &name)
{
    // Accept "ISA-T-O-A" with optional " (N words/line)" suffix.
    std::string base = name;
    unsigned words_per_line = 1;
    auto paren = name.find(" (");
    if (paren != std::string::npos) {
        base = name.substr(0, paren);
        std::istringstream suffix(name.substr(paren + 2));
        suffix >> words_per_line;
        if (!suffix)
            throw ConfigError("bad words/line suffix in: " + name);
    }

    std::vector<std::string> parts;
    std::istringstream is(base);
    std::string token;
    while (std::getline(is, token, '-'))
        parts.push_back(token);
    if (parts.size() != 4)
        throw ConfigError("config name must be ISA-T-O-A: " + name);

    TestConfig cfg;
    cfg.isa = parseIsa(parts[0]);
    cfg.numThreads = static_cast<unsigned>(std::stoul(parts[1]));
    cfg.opsPerThread = static_cast<unsigned>(std::stoul(parts[2]));
    cfg.numLocations = static_cast<unsigned>(std::stoul(parts[3]));
    cfg.wordsPerLine = words_per_line;
    cfg.validate();
    return cfg;
}

std::vector<TestConfig>
figure8Configs()
{
    // Order matches the x-axis of Figure 8 (ARM first, then x86).
    static const char *names[] = {
        "ARM-2-50-32",  "ARM-2-50-64",   "ARM-2-100-32", "ARM-2-100-64",
        "ARM-2-200-32", "ARM-2-200-64",  "ARM-4-50-64",  "ARM-4-100-64",
        "ARM-4-200-64", "ARM-7-50-64",   "ARM-7-50-128", "ARM-7-100-64",
        "ARM-7-100-128", "ARM-7-200-64", "ARM-7-200-128",
        "x86-2-50-32",  "x86-2-100-32",  "x86-2-200-32", "x86-4-50-64",
        "x86-4-100-64", "x86-4-200-64",
    };
    std::vector<TestConfig> configs;
    for (const char *name : names)
        configs.push_back(parseConfigName(name));
    return configs;
}

std::vector<TestConfig>
figure10Configs()
{
    std::vector<TestConfig> arm;
    for (const auto &cfg : figure8Configs())
        if (cfg.isa == Isa::ARMv7)
            arm.push_back(cfg);
    return arm;
}

} // namespace mtc
