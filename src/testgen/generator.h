/**
 * @file
 * Constrained-random test generation (paper Sections 2 and 5).
 *
 * Tests "perform load and store instructions with equal probability
 * (i.e., load 50% and store 50%)" over a pool of distinct shared
 * addresses chosen uniformly at random. Every store receives a unique
 * non-zero value so loads are fully disambiguated, which is what makes
 * the static load-value analysis of the instrumentation pass exact.
 */

#ifndef MTC_TESTGEN_GENERATOR_H
#define MTC_TESTGEN_GENERATOR_H

#include <cstdint>
#include <vector>

#include "testgen/test_program.h"

namespace mtc
{

/** Generate one constrained-random test for @p cfg from @p seed. */
TestProgram generateTest(const TestConfig &cfg, std::uint64_t seed);

/**
 * Generate the paper's per-configuration batch: @p count distinct
 * tests (the paper uses 10 per configuration) derived from @p seed.
 */
std::vector<TestProgram> generateTestBatch(const TestConfig &cfg,
                                           std::uint64_t seed,
                                           unsigned count);

} // namespace mtc

#endif // MTC_TESTGEN_GENERATOR_H
