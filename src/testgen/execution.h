/**
 * @file
 * Dynamic outcome of one run of a test program.
 *
 * An Execution records the value observed by every load, in load-list
 * order (see TestProgram::loads()). Because store values are unique,
 * this value vector *is* the set of reads-from relationships, which the
 * paper uses as the identity of an execution: "two executions have
 * experienced distinct memory access interleavings when they exhibit at
 * least one different reads-from relationship" (Section 2).
 *
 * Executors may additionally export the ground-truth per-location
 * coherence (write-serialization) order; the checker never relies on
 * it, but tests use it to validate the ws-inference pass.
 */

#ifndef MTC_TESTGEN_EXECUTION_H
#define MTC_TESTGEN_EXECUTION_H

#include <cstdint>
#include <optional>
#include <vector>

#include "testgen/test_program.h"

namespace mtc
{

/** Observed outcome of a single test run. */
struct Execution
{
    /** Value read by each load, indexed by TestProgram load ordinal. */
    std::vector<std::uint32_t> loadValues;

    /**
     * Platform-reported duration of the run: simulated cycles for the
     * Timed policy, scheduler steps for UniformRandom. Input to the
     * execution-overhead accounting of Figure 10.
     */
    std::uint64_t duration = 0;

    /**
     * Optional ground truth: for each location, the order in which
     * stores became globally visible. Empty when the platform does not
     * expose it (the post-silicon case).
     */
    std::vector<std::vector<OpId>> coherenceOrder;

    /** Store feeding load ordinal @p ordinal, or nullopt for init. */
    std::optional<OpId>
    readsFrom(const TestProgram &program, std::uint32_t ordinal) const
    {
        const std::uint32_t value = loadValues.at(ordinal);
        if (value == kInitValue)
            return std::nullopt;
        return program.storeForValue(value);
    }

    /**
     * Number of differing reads-from relationships versus @p other
     * (the k-medoids distance metric of Section 4.1).
     */
    std::uint32_t
    rfDistance(const Execution &other) const
    {
        std::uint32_t diff = 0;
        for (std::size_t i = 0; i < loadValues.size(); ++i)
            if (loadValues[i] != other.loadValues[i])
                ++diff;
        return diff;
    }

    bool
    operator==(const Execution &other) const
    {
        return loadValues == other.loadValues;
    }
};

} // namespace mtc

#endif // MTC_TESTGEN_EXECUTION_H
