#include "testgen/generator.h"

#include "support/rng.h"

namespace mtc
{

TestProgram
generateTest(const TestConfig &cfg, std::uint64_t seed)
{
    cfg.validate();
    Rng rng(seed);

    std::vector<std::vector<MemOp>> threads(cfg.numThreads);
    for (std::uint32_t tid = 0; tid < cfg.numThreads; ++tid) {
        threads[tid].reserve(cfg.opsPerThread);
        for (std::uint32_t idx = 0; idx < cfg.opsPerThread; ++idx) {
            MemOp mem_op;
            if (cfg.fencePercent &&
                rng.nextBelow(100) < cfg.fencePercent) {
                mem_op.kind = OpKind::Fence;
            } else {
                mem_op.kind = rng.nextBool(cfg.loadFraction)
                    ? OpKind::Load : OpKind::Store;
                mem_op.loc = static_cast<std::uint32_t>(
                    rng.nextBelow(cfg.numLocations));
                if (mem_op.kind == OpKind::Store)
                    mem_op.value = storeValue(OpId{tid, idx});
            }
            threads[tid].push_back(mem_op);
        }
    }
    return TestProgram(cfg, std::move(threads));
}

std::vector<TestProgram>
generateTestBatch(const TestConfig &cfg, std::uint64_t seed, unsigned count)
{
    Rng rng(seed);
    std::vector<TestProgram> batch;
    batch.reserve(count);
    for (unsigned i = 0; i < count; ++i)
        batch.push_back(generateTest(cfg, rng()));
    return batch;
}

} // namespace mtc
