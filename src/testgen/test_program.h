/**
 * @file
 * Multi-threaded test-program intermediate representation.
 *
 * A TestProgram is the static artifact produced by the test generator
 * and consumed by everything downstream: the executors run it, the
 * instrumentation pass analyzes it, and the constraint-graph builder
 * uses its operations as graph vertices. Every store is assigned a
 * unique non-zero value (Section 2 of the paper: "every store
 * operation is assigned a unique ID, which is the value actually
 * written into memory"), so a loaded value identifies the store it
 * reads from; value 0 denotes the initial memory contents.
 */

#ifndef MTC_TESTGEN_TEST_PROGRAM_H
#define MTC_TESTGEN_TEST_PROGRAM_H

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mcm/op_kind.h"
#include "testgen/test_config.h"

namespace mtc
{

/** Identity of one static operation: (thread, index within thread). */
struct OpId
{
    std::uint32_t tid = 0;
    std::uint32_t idx = 0;

    auto operator<=>(const OpId &) const = default;
};

/** The memory value denoting "initial contents" (no store read). */
constexpr std::uint32_t kInitValue = 0;

/** One static memory operation. */
struct MemOp
{
    OpKind kind = OpKind::Load;

    /** Shared-location index in [0, cfg.numLocations); 0 for fences. */
    std::uint32_t loc = 0;

    /** Unique non-zero store ID for stores; unused for loads/fences. */
    std::uint32_t value = 0;
};

/** Encode the unique value written by store (tid, idx). */
std::uint32_t storeValue(OpId id);

/** Decode a store value back into its OpId (value must be non-zero). */
OpId storeIdFromValue(std::uint32_t value);

/**
 * A complete multi-threaded test program plus derived lookup indexes.
 * Construct via the generator / litmus factories, or build the thread
 * bodies manually and call rebuildIndex().
 */
class TestProgram
{
  public:
    TestProgram() = default;
    TestProgram(TestConfig cfg_arg,
                std::vector<std::vector<MemOp>> threads_arg);

    /** Recompute all derived indexes after editing threads. */
    void rebuildIndex();

    const TestConfig &config() const { return cfg; }
    const std::vector<std::vector<MemOp>> &threadBodies() const
    {
        return threads;
    }

    std::uint32_t numThreads() const
    {
        return static_cast<std::uint32_t>(threads.size());
    }

    std::uint32_t opsInThread(std::uint32_t tid) const
    {
        return static_cast<std::uint32_t>(threads.at(tid).size());
    }

    /** Total static operations across all threads. */
    std::uint32_t numOps() const { return totalOps; }

    const MemOp &op(OpId id) const { return threads.at(id.tid).at(id.idx); }

    /** Dense vertex index of an operation (graph vertex id). */
    std::uint32_t globalIndex(OpId id) const;

    /** Inverse of globalIndex(). */
    OpId opIdAt(std::uint32_t global_index) const;

    /** All loads, ordered by (tid, idx). */
    const std::vector<OpId> &loads() const { return loadList; }

    /** Ordinal of a load within loads(); throws if not a load. */
    std::uint32_t loadOrdinal(OpId id) const;

    /** Loads of one thread, in program order. */
    const std::vector<OpId> &loadsOfThread(std::uint32_t tid) const
    {
        return threadLoads.at(tid);
    }

    /** All stores targeting @p loc, ordered by (tid, idx). */
    const std::vector<OpId> &storesTo(std::uint32_t loc) const
    {
        return storesPerLoc.at(loc);
    }

    /** All stores in the program, ordered by (tid, idx). */
    const std::vector<OpId> &stores() const { return storeList; }

    /** Resolve a loaded value to the store that produced it. */
    std::optional<OpId> storeForValue(std::uint32_t value) const;

    /** Cache line (index) a location maps to under the config layout. */
    std::uint32_t lineOf(std::uint32_t loc) const
    {
        return loc / cfg.wordsPerLine;
    }

    /** Simulated byte address of a location. */
    std::uint64_t
    byteAddress(std::uint32_t loc) const
    {
        return static_cast<std::uint64_t>(lineOf(loc)) * cfg.lineBytes +
            static_cast<std::uint64_t>(loc % cfg.wordsPerLine) *
            cfg.bytesPerWord;
    }

    /** Number of distinct cache lines the shared data occupies. */
    std::uint32_t
    numLines() const
    {
        return (cfg.numLocations + cfg.wordsPerLine - 1) /
            cfg.wordsPerLine;
    }

    /** Human-readable listing (used by examples and failure reports). */
    std::string toString() const;

    /**
     * Content hash over every operation (kind, location, value).
     * Used to key caches of per-program derived structures: pointer
     * identity alone is unsafe because short-lived programs can reuse
     * an address.
     */
    std::uint64_t fingerprint() const { return contentHash; }

  private:
    TestConfig cfg;
    std::vector<std::vector<MemOp>> threads;

    std::uint32_t totalOps = 0;
    std::vector<std::uint32_t> threadBase; ///< prefix sums for globalIndex
    std::vector<OpId> loadList;
    std::vector<OpId> storeList;
    std::vector<std::vector<OpId>> threadLoads;
    std::vector<std::vector<OpId>> storesPerLoc;
    std::unordered_map<std::uint32_t, OpId> valueToStore;
    std::unordered_map<std::uint64_t, std::uint32_t> loadOrdinalMap;
    std::uint64_t contentHash = 0;
};

} // namespace mtc

#endif // MTC_TESTGEN_TEST_PROGRAM_H
