/**
 * @file
 * Constrained-random test-generation parameters (Table 2 of the paper)
 * and the 21 evaluation configurations of Figure 8.
 *
 * Configuration names follow the paper's convention:
 * [ISA]-[threads]-[ops per thread]-[shared addresses], e.g.
 * "ARM-2-50-32" is a 2-thread ARM test with 50 memory operations per
 * thread over 32 distinct shared addresses.
 */

#ifndef MTC_TESTGEN_TEST_CONFIG_H
#define MTC_TESTGEN_TEST_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

#include "mcm/isa.h"
#include "mcm/memory_model.h"

namespace mtc
{

/** Parameters controlling constrained-random test generation. */
struct TestConfig
{
    /** Target ISA; selects memory model, register width, encodings. */
    Isa isa = Isa::X86;

    /** Number of test threads (paper: 2, 4, 7). */
    unsigned numThreads = 2;

    /** Static memory operations per thread (paper: 50, 100, 200). */
    unsigned opsPerThread = 50;

    /** Distinct shared memory locations (paper: 32, 64, 128). */
    unsigned numLocations = 32;

    /** Probability that an operation is a load (paper: 0.5). */
    double loadFraction = 0.5;

    /**
     * Shared words packed into one cache line. 1 means no false
     * sharing; the paper also evaluates 4 and 16 (Figure 8).
     */
    unsigned wordsPerLine = 1;

    /** Bytes transferred per operation (paper: 4). */
    unsigned bytesPerWord = 4;

    /** Cache line size in bytes (both evaluated systems: 64). */
    unsigned lineBytes = 64;

    /**
     * Percentage [0,100] of operations that are fences. The paper's
     * in-body tests contain none; this is the extension hook noted in
     * DESIGN.md Section 7.
     */
    unsigned fencePercent = 0;

    /** Memory model the platform should implement; defaults by ISA. */
    MemoryModel model() const { return defaultModel(isa); }

    /** Paper-style name, e.g.\ "ARM-2-50-32". */
    std::string name() const;

    /** Throw ConfigError if any parameter combination is invalid. */
    void validate() const;
};

/** Parse a paper-style configuration name into a TestConfig. */
TestConfig parseConfigName(const std::string &name);

/**
 * The 21 test configurations on the x-axis of Figures 8/9/11/12:
 * 15 ARM configurations followed by 6 x86 configurations.
 */
std::vector<TestConfig> figure8Configs();

/** The subset of ARM configurations (used by Figure 10). */
std::vector<TestConfig> figure10Configs();

} // namespace mtc

#endif // MTC_TESTGEN_TEST_CONFIG_H
