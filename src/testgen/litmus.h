/**
 * @file
 * Library of classic litmus tests expressed as TestPrograms.
 *
 * The paper motivates its constrained-random tests as being "much
 * larger than typical litmus tests" (Section 8); we provide the
 * classics both as documentation-grade examples and as ground truth for
 * unit-testing the executors and checkers: each litmus test has a
 * well-known set of forbidden outcomes per memory model.
 */

#ifndef MTC_TESTGEN_LITMUS_H
#define MTC_TESTGEN_LITMUS_H

#include "testgen/test_program.h"

namespace mtc
{
namespace litmus
{

/**
 * Store buffering (SB / Dekker):
 *   T0: st x=1; ld y      T1: st y=1; ld x
 * Both loads reading 0 is forbidden under SC, allowed under TSO/RMO.
 */
TestProgram storeBuffering(Isa isa = Isa::X86);

/** Store buffering with a full fence between the store and the load;
 * the relaxed outcome becomes forbidden under every supported model. */
TestProgram storeBufferingFenced(Isa isa = Isa::X86);

/**
 * Load buffering (LB) — the paper's Figure 2:
 *   T0: ld x; st y=1      T1: ld y; st x=1
 * Both loads reading 1 is forbidden under SC and TSO, allowed RMO.
 */
TestProgram loadBuffering(Isa isa = Isa::ARMv7);

/**
 * Message passing (MP):
 *   T0: st data=1; st flag=1     T1: ld flag; ld data
 * flag==1 && data==0 is forbidden under SC/TSO, allowed under RMO.
 */
TestProgram messagePassing(Isa isa = Isa::ARMv7);

/**
 * Coherence of read-read (CoRR):
 *   T0: st x=1       T1: ld x; ld x
 * Reading the new value then the initial value is forbidden under
 * every model (per-location coherence).
 */
TestProgram corr(Isa isa = Isa::ARMv7);

/**
 * Independent reads of independent writes (IRIW):
 *   T0: st x=1   T1: st y=1   T2: ld x; ld y   T3: ld y; ld x
 * The two readers disagreeing on the write order is forbidden under
 * SC (and under multi-copy-atomic models generally).
 */
TestProgram iriw(Isa isa = Isa::ARMv7);

/**
 * Write-to-read causality (WRC):
 *   T0: st x=1   T1: ld x; st y=1   T2: ld y; ld x
 */
TestProgram wrc(Isa isa = Isa::ARMv7);

} // namespace litmus
} // namespace mtc

#endif // MTC_TESTGEN_LITMUS_H
