#include "testgen/litmus.h"

namespace mtc
{
namespace litmus
{

namespace
{

MemOp
ld(std::uint32_t loc)
{
    MemOp op;
    op.kind = OpKind::Load;
    op.loc = loc;
    return op;
}

MemOp
st(OpId id, std::uint32_t loc)
{
    MemOp op;
    op.kind = OpKind::Store;
    op.loc = loc;
    op.value = storeValue(id);
    return op;
}

MemOp
fence()
{
    MemOp op;
    op.kind = OpKind::Fence;
    return op;
}

TestConfig
smallConfig(Isa isa, unsigned threads, unsigned ops, unsigned locs)
{
    TestConfig cfg;
    cfg.isa = isa;
    cfg.numThreads = threads;
    cfg.opsPerThread = ops;
    cfg.numLocations = locs;
    return cfg;
}

} // anonymous namespace

TestProgram
storeBuffering(Isa isa)
{
    // loc 0 = x, loc 1 = y.
    std::vector<std::vector<MemOp>> threads{
        {st({0, 0}, 0), ld(1)},
        {st({1, 0}, 1), ld(0)},
    };
    return TestProgram(smallConfig(isa, 2, 2, 2), std::move(threads));
}

TestProgram
storeBufferingFenced(Isa isa)
{
    std::vector<std::vector<MemOp>> threads{
        {st({0, 0}, 0), fence(), ld(1)},
        {st({1, 0}, 1), fence(), ld(0)},
    };
    return TestProgram(smallConfig(isa, 2, 3, 2), std::move(threads));
}

TestProgram
loadBuffering(Isa isa)
{
    std::vector<std::vector<MemOp>> threads{
        {ld(0), st({0, 1}, 1)},
        {ld(1), st({1, 1}, 0)},
    };
    return TestProgram(smallConfig(isa, 2, 2, 2), std::move(threads));
}

TestProgram
messagePassing(Isa isa)
{
    // loc 0 = data, loc 1 = flag.
    std::vector<std::vector<MemOp>> threads{
        {st({0, 0}, 0), st({0, 1}, 1)},
        {ld(1), ld(0)},
    };
    return TestProgram(smallConfig(isa, 2, 2, 2), std::move(threads));
}

TestProgram
corr(Isa isa)
{
    std::vector<std::vector<MemOp>> threads{
        {st({0, 0}, 0)},
        {ld(0), ld(0)},
    };
    return TestProgram(smallConfig(isa, 2, 2, 1), std::move(threads));
}

TestProgram
iriw(Isa isa)
{
    std::vector<std::vector<MemOp>> threads{
        {st({0, 0}, 0)},
        {st({1, 0}, 1)},
        {ld(0), ld(1)},
        {ld(1), ld(0)},
    };
    return TestProgram(smallConfig(isa, 4, 2, 2), std::move(threads));
}

TestProgram
wrc(Isa isa)
{
    std::vector<std::vector<MemOp>> threads{
        {st({0, 0}, 0)},
        {ld(0), st({1, 1}, 1)},
        {ld(1), ld(0)},
    };
    return TestProgram(smallConfig(isa, 3, 2, 2), std::move(threads));
}

} // namespace litmus
} // namespace mtc
