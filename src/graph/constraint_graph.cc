#include "graph/constraint_graph.h"

#include "support/error.h"

namespace mtc
{

std::string
edgeKindName(EdgeKind kind)
{
    switch (kind) {
      case EdgeKind::ProgramOrder:
        return "po";
      case EdgeKind::ReadsFrom:
        return "rf";
      case EdgeKind::FromRead:
        return "fr";
      case EdgeKind::WriteSerialization:
        return "ws";
    }
    return "?";
}

ConstraintGraph::ConstraintGraph(std::uint32_t num_vertices)
    : vertexCount(num_vertices), adjacency(num_vertices)
{
}

void
ConstraintGraph::addEdge(std::uint32_t from, std::uint32_t to,
                         EdgeKind kind)
{
    if (from >= vertexCount || to >= vertexCount)
        throw ConfigError("edge endpoint out of range");
    if (from == to)
        throw ConfigError("self-loop edges are not meaningful");
    if (!kinds.emplace(key(from, to), kind).second)
        return; // duplicate
    adjacency[from].push_back(to);
    ++edgeCount;
}

void
ConstraintGraph::addEdges(const std::vector<Edge> &edges)
{
    for (const Edge &edge : edges)
        addEdge(edge.from, edge.to, edge.kind);
}

EdgeKind
ConstraintGraph::edgeKind(std::uint32_t from, std::uint32_t to) const
{
    auto it = kinds.find(key(from, to));
    if (it == kinds.end())
        throw ConfigError("edgeKind of a missing edge");
    return it->second;
}

bool
ConstraintGraph::hasEdge(std::uint32_t from, std::uint32_t to) const
{
    return kinds.find(key(from, to)) != kinds.end();
}

std::vector<std::uint32_t>
ConstraintGraph::inDegrees() const
{
    std::vector<std::uint32_t> degrees(vertexCount, 0);
    for (const auto &succ : adjacency)
        for (std::uint32_t to : succ)
            ++degrees[to];
    return degrees;
}

} // namespace mtc
