#include "graph/cycle_report.h"

#include <sstream>

namespace mtc
{

namespace
{

enum class VisitState : std::uint8_t
{
    White,
    Grey,
    Black,
};

/** Iterative DFS looking for a back edge; fills @p cycle on success. */
bool
dfsFindCycle(const ConstraintGraph &graph, std::uint32_t root,
             std::vector<VisitState> &state,
             std::vector<std::uint32_t> &cycle)
{
    struct Frame
    {
        std::uint32_t vertex;
        std::size_t nextSucc;
    };
    std::vector<Frame> stack{{root, 0}};
    state[root] = VisitState::Grey;

    while (!stack.empty()) {
        Frame &frame = stack.back();
        const auto &succ = graph.successors(frame.vertex);
        if (frame.nextSucc < succ.size()) {
            const std::uint32_t next = succ[frame.nextSucc++];
            if (state[next] == VisitState::Grey) {
                // Found a back edge: unwind the grey path next..top.
                for (std::size_t i = 0; i < stack.size(); ++i) {
                    if (stack[i].vertex == next) {
                        for (std::size_t j = i; j < stack.size(); ++j)
                            cycle.push_back(stack[j].vertex);
                        return true;
                    }
                }
            } else if (state[next] == VisitState::White) {
                state[next] = VisitState::Grey;
                stack.push_back({next, 0});
            }
        } else {
            state[frame.vertex] = VisitState::Black;
            stack.pop_back();
        }
    }
    return false;
}

} // anonymous namespace

std::vector<std::uint32_t>
findCycle(const ConstraintGraph &graph)
{
    std::vector<VisitState> state(graph.numVertices(), VisitState::White);
    std::vector<std::uint32_t> cycle;
    for (std::uint32_t v = 0; v < graph.numVertices(); ++v) {
        if (state[v] == VisitState::White &&
            dfsFindCycle(graph, v, state, cycle)) {
            return cycle;
        }
    }
    return {};
}

std::string
describeCycle(const TestProgram &program, const ConstraintGraph &graph,
              const std::vector<std::uint32_t> &cycle)
{
    if (cycle.empty())
        return "(no cycle)";

    auto op_text = [&](std::uint32_t vertex) {
        const OpId id = program.opIdAt(vertex);
        const MemOp &mem_op = program.op(id);
        std::ostringstream os;
        os << "[t" << id.tid << " op" << id.idx << "] "
           << opKindName(mem_op.kind);
        if (mem_op.kind != OpKind::Fence)
            os << " loc" << mem_op.loc;
        return os.str();
    };

    std::ostringstream os;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
        const std::uint32_t from = cycle[i];
        const std::uint32_t to = cycle[(i + 1) % cycle.size()];
        os << op_text(from) << " --" << edgeKindName(graph.edgeKind(from, to))
           << "--> " << op_text(to) << "\n";
    }
    return os.str();
}

} // namespace mtc
