#include "graph/topo_sort.h"

namespace mtc
{

TopoResult
topologicalSort(const ConstraintGraph &graph)
{
    TopoResult result;
    const std::uint32_t n = graph.numVertices();
    std::vector<std::uint32_t> in_degree = graph.inDegrees();

    // FIFO worklist keeps the order stable for a given graph, which
    // makes re-sort behaviour reproducible across runs.
    std::vector<std::uint32_t> queue;
    queue.reserve(n);
    for (std::uint32_t v = 0; v < n; ++v)
        if (in_degree[v] == 0)
            queue.push_back(v);

    result.order.reserve(n);
    std::size_t head = 0;
    while (head < queue.size()) {
        const std::uint32_t v = queue[head++];
        ++result.verticesProcessed;
        result.order.push_back(v);
        for (std::uint32_t succ : graph.successors(v)) {
            ++result.edgesProcessed;
            if (--in_degree[succ] == 0)
                queue.push_back(succ);
        }
    }

    result.acyclic = result.order.size() == n;
    return result;
}

} // namespace mtc
