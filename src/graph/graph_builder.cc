#include "graph/graph_builder.h"

#include <algorithm>

#include "graph/po_edges.h"

namespace mtc
{

ConstraintGraph
buildStaticGraph(const TestProgram &program, MemoryModel model)
{
    ConstraintGraph graph(program.numOps());
    graph.addEdges(programOrderEdges(program, model));
    return graph;
}

DynamicEdgeSet
dynamicEdges(const TestProgram &program, const Execution &execution)
{
    // One inference workspace per worker thread: decoding a test's
    // unique signatures re-infers thousands of times over one program,
    // and the reused WsOrder keeps that loop off the allocator.
    thread_local WsOrder scratch;
    scratch.infer(program, execution);
    DynamicEdgeSet result;
    dynamicEdgesInto(program, execution, scratch, result);
    return result;
}

DynamicEdgeSet
dynamicEdges(const TestProgram &program, const Execution &execution,
             const WsOrder &ws_order)
{
    DynamicEdgeSet result;
    dynamicEdgesInto(program, execution, ws_order, result);
    return result;
}

void
dynamicEdgesInto(const TestProgram &program, const Execution &execution,
                 const WsOrder &ws_order, DynamicEdgeSet &result)
{
    result.edges.clear();
    result.coherenceViolation = ws_order.coherenceViolation();

    // rf and fr edges, one pass over the loads.
    const auto &loads = program.loads();
    for (std::uint32_t ordinal = 0; ordinal < loads.size(); ++ordinal) {
        const OpId load_id = loads[ordinal];
        const std::uint32_t load_vertex = program.globalIndex(load_id);
        const std::uint32_t loc = program.op(load_id).loc;
        const std::uint32_t value = execution.loadValues.at(ordinal);

        std::optional<OpId> writer;
        if (value != kInitValue) {
            writer = program.storeForValue(value);
            if (!writer) {
                result.coherenceViolation = true;
                continue;
            }
            // Only *external* reads-from edges are global ordering.
            // An intra-thread rf may be satisfied by store-buffer
            // forwarding before the store is globally visible, so it
            // must not order the load after the store (the same
            // reasoning as the paper's footnote 4 for intra-thread
            // store->load program-order edges). The load's fr edges
            // below remain sound for forwarded reads: the forwarding
            // store commits before every ws-successor.
            if (writer->tid != load_id.tid) {
                result.edges.push_back(
                    Edge{program.globalIndex(*writer), load_vertex,
                         EdgeKind::ReadsFrom});
            }
        }

        // fr: the load precedes every store coherence-after its writer.
        const auto &stores = ws_order.storesAt(loc);
        const std::uint32_t from = ws_order.indexOf(loc, writer);
        for (std::size_t i = 0; i < stores.size(); ++i) {
            if (!ws_order.orderedByIndex(
                    loc, from, static_cast<std::uint32_t>(i) + 1)) {
                continue;
            }
            if (writer && stores[i] == *writer)
                continue;
            result.edges.push_back(Edge{load_vertex,
                                        program.globalIndex(stores[i]),
                                        EdgeKind::FromRead});
        }
    }

    // ws edges from the (partial) coherence order.
    for (std::uint32_t loc = 0; loc < program.config().numLocations;
         ++loc) {
        const auto &stores = ws_order.storesAt(loc);
        for (std::size_t i = 0; i < stores.size(); ++i) {
            for (std::size_t j = 0; j < stores.size(); ++j) {
                if (i == j ||
                    !ws_order.orderedByIndex(
                        loc, static_cast<std::uint32_t>(i) + 1,
                        static_cast<std::uint32_t>(j) + 1)) {
                    continue;
                }
                result.edges.push_back(
                    Edge{program.globalIndex(stores[i]),
                         program.globalIndex(stores[j]),
                         EdgeKind::WriteSerialization});
            }
        }
    }

    // Sorted + de-duplicated so edge sets can be merged/diffed.
    std::sort(result.edges.begin(), result.edges.end());
    result.edges.erase(
        std::unique(result.edges.begin(), result.edges.end(),
                    [](const Edge &a, const Edge &b) {
                        return a.from == b.from && a.to == b.to;
                    }),
        result.edges.end());
}

ConstraintGraph
buildFullGraph(const TestProgram &program, const Execution &execution,
               MemoryModel model)
{
    ConstraintGraph graph = buildStaticGraph(program, model);
    graph.addEdges(dynamicEdges(program, execution).edges);
    return graph;
}

} // namespace mtc
