#include "graph/graph_builder.h"

#include <algorithm>

#include "graph/po_edges.h"

namespace mtc
{

ConstraintGraph
buildStaticGraph(const TestProgram &program, MemoryModel model)
{
    ConstraintGraph graph(program.numOps());
    graph.addEdges(programOrderEdges(program, model));
    return graph;
}

DynamicEdgeSet
dynamicEdges(const TestProgram &program, const Execution &execution)
{
    // One inference workspace per worker thread: decoding a test's
    // unique signatures re-infers thousands of times over one program,
    // and the reused WsOrder keeps that loop off the allocator.
    thread_local WsOrder scratch;
    scratch.infer(program, execution);
    DynamicEdgeSet result;
    dynamicEdgesInto(program, execution, scratch, result);
    return result;
}

DynamicEdgeSet
dynamicEdges(const TestProgram &program, const Execution &execution,
             const WsOrder &ws_order)
{
    DynamicEdgeSet result;
    dynamicEdgesInto(program, execution, ws_order, result);
    return result;
}

void
dynamicEdgesInto(const TestProgram &program, const Execution &execution,
                 const WsOrder &ws_order, DynamicEdgeSet &result)
{
    result.edges.clear();
    result.coherenceViolation = ws_order.coherenceViolation();

    // rf and fr edges, one pass over the loads.
    const auto &loads = program.loads();
    for (std::uint32_t ordinal = 0; ordinal < loads.size(); ++ordinal) {
        const OpId load_id = loads[ordinal];
        const std::uint32_t load_vertex = program.globalIndex(load_id);
        const std::uint32_t loc = program.op(load_id).loc;
        const std::uint32_t value = execution.loadValues.at(ordinal);

        std::optional<OpId> writer;
        if (value != kInitValue) {
            writer = program.storeForValue(value);
            if (!writer) {
                result.coherenceViolation = true;
                continue;
            }
            // Only *external* reads-from edges are global ordering.
            // An intra-thread rf may be satisfied by store-buffer
            // forwarding before the store is globally visible, so it
            // must not order the load after the store (the same
            // reasoning as the paper's footnote 4 for intra-thread
            // store->load program-order edges). The load's fr edges
            // below remain sound for forwarded reads: the forwarding
            // store commits before every ws-successor.
            if (writer->tid != load_id.tid) {
                result.edges.push_back(
                    Edge{program.globalIndex(*writer), load_vertex,
                         EdgeKind::ReadsFrom});
            }
        }

        // fr: the load precedes every store coherence-after its writer.
        const auto &stores = ws_order.storesAt(loc);
        const std::uint32_t from = ws_order.indexOf(loc, writer);
        for (std::size_t i = 0; i < stores.size(); ++i) {
            if (!ws_order.orderedByIndex(
                    loc, from, static_cast<std::uint32_t>(i) + 1)) {
                continue;
            }
            if (writer && stores[i] == *writer)
                continue;
            result.edges.push_back(Edge{load_vertex,
                                        program.globalIndex(stores[i]),
                                        EdgeKind::FromRead});
        }
    }

    // ws edges from the (partial) coherence order.
    for (std::uint32_t loc = 0; loc < program.config().numLocations;
         ++loc) {
        const auto &stores = ws_order.storesAt(loc);
        for (std::size_t i = 0; i < stores.size(); ++i) {
            for (std::size_t j = 0; j < stores.size(); ++j) {
                if (i == j ||
                    !ws_order.orderedByIndex(
                        loc, static_cast<std::uint32_t>(i) + 1,
                        static_cast<std::uint32_t>(j) + 1)) {
                    continue;
                }
                result.edges.push_back(
                    Edge{program.globalIndex(stores[i]),
                         program.globalIndex(stores[j]),
                         EdgeKind::WriteSerialization});
            }
        }
    }

    // Sorted + de-duplicated so edge sets can be merged/diffed.
    std::sort(result.edges.begin(), result.edges.end());
    result.edges.erase(
        std::unique(result.edges.begin(), result.edges.end(),
                    [](const Edge &a, const Edge &b) {
                        return a.from == b.from && a.to == b.to;
                    }),
        result.edges.end());
}

ConstraintGraph
buildFullGraph(const TestProgram &program, const Execution &execution,
               MemoryModel model)
{
    ConstraintGraph graph = buildStaticGraph(program, model);
    graph.addEdges(dynamicEdges(program, execution).edges);
    return graph;
}

namespace
{

std::uint64_t
edgeKey(const Edge &e)
{
    return (static_cast<std::uint64_t>(e.from) << 32) | e.to;
}

} // namespace

void
applyEdgeDiff(std::vector<Edge> &edges, const EdgeDiff &diff,
              std::vector<Edge> &scratch)
{
    scratch.clear();
    std::size_t i = 0, r = 0, a = 0;
    while (i < edges.size() || a < diff.added.size()) {
        if (i < edges.size() && r < diff.removed.size() &&
            edgeKey(edges[i]) == edgeKey(diff.removed[r])) {
            ++i;
            ++r;
            continue;
        }
        if (a == diff.added.size() ||
            (i < edges.size() &&
             edgeKey(edges[i]) < edgeKey(diff.added[a]))) {
            scratch.push_back(edges[i++]);
        } else {
            scratch.push_back(diff.added[a++]);
        }
    }
    edges.swap(scratch);
}

EdgeDeriver::EdgeDeriver(const TestProgram &program) : prog(program)
{
    const auto &loads = prog.loads();
    loadLoc.resize(loads.size());
    for (std::uint32_t ordinal = 0; ordinal < loads.size(); ++ordinal)
        loadLoc[ordinal] = prog.op(loads[ordinal]).loc;
    loadUnits.resize(loads.size());
    locUnits.resize(prog.config().numLocations);
    tidChangedFlag.assign(prog.numThreads(), 0);
}

void
EdgeDeriver::deriveLoadUnit(std::uint32_t ordinal,
                            const Execution &execution,
                            const WsOrder &ws,
                            std::vector<Edge> &unit) const
{
    // Mirrors the per-load body of dynamicEdgesInto() exactly,
    // including the unknown-writer early-out (no rf *and* no fr; the
    // coherence violation it implies is already ws.coherenceViolation()
    // because the ws walk saw the same unknown value).
    const OpId load_id = prog.loads()[ordinal];
    const std::uint32_t load_vertex = prog.globalIndex(load_id);
    const std::uint32_t loc = loadLoc[ordinal];
    const std::uint32_t value = execution.loadValues.at(ordinal);

    std::optional<OpId> writer;
    if (value != kInitValue) {
        writer = prog.storeForValue(value);
        if (!writer)
            return;
        if (writer->tid != load_id.tid) {
            unit.push_back(Edge{prog.globalIndex(*writer), load_vertex,
                                EdgeKind::ReadsFrom});
        }
    }

    const auto &stores = ws.storesAt(loc);
    const std::uint32_t from = ws.indexOf(loc, writer);
    for (std::size_t i = 0; i < stores.size(); ++i) {
        if (!ws.orderedByIndex(loc, from,
                               static_cast<std::uint32_t>(i) + 1)) {
            continue;
        }
        if (writer && stores[i] == *writer)
            continue;
        unit.push_back(Edge{load_vertex, prog.globalIndex(stores[i]),
                            EdgeKind::FromRead});
    }
    std::sort(unit.begin(), unit.end());
}

void
EdgeDeriver::deriveLocUnit(std::uint32_t loc, const WsOrder &ws,
                           std::vector<Edge> &unit) const
{
    const auto &stores = ws.storesAt(loc);
    for (std::size_t i = 0; i < stores.size(); ++i) {
        for (std::size_t j = 0; j < stores.size(); ++j) {
            if (i == j ||
                !ws.orderedByIndex(loc,
                                   static_cast<std::uint32_t>(i) + 1,
                                   static_cast<std::uint32_t>(j) + 1)) {
                continue;
            }
            unit.push_back(Edge{prog.globalIndex(stores[i]),
                                prog.globalIndex(stores[j]),
                                EdgeKind::WriteSerialization});
        }
    }
    std::sort(unit.begin(), unit.end());
}

void
EdgeDeriver::diffUnit(const std::vector<Edge> &before,
                      const std::vector<Edge> &after, EdgeDiff &out)
{
    std::size_t i = 0, j = 0;
    while (i < before.size() || j < after.size()) {
        if (j == after.size()) {
            out.removed.push_back(before[i++]);
        } else if (i == before.size()) {
            out.added.push_back(after[j++]);
        } else {
            const std::uint64_t ka = edgeKey(before[i]);
            const std::uint64_t kb = edgeKey(after[j]);
            if (ka < kb) {
                out.removed.push_back(before[i++]);
            } else if (kb < ka) {
                out.added.push_back(after[j++]);
            } else {
                ++i;
                ++j;
            }
        }
    }
}

void
EdgeDeriver::derive(const Execution &execution, const WsOrder &ws,
                    const std::uint32_t *changed_tids, std::size_t n,
                    EdgeDiff &out)
{
    out.removed.clear();
    out.added.clear();
    out.coherenceViolation = ws.coherenceViolation();

    std::fill(tidChangedFlag.begin(), tidChangedFlag.end(), 0);
    for (std::size_t k = 0; k < n; ++k)
        tidChangedFlag[changed_tids[k]] = 1;

    const auto &loads = prog.loads();
    for (std::uint32_t ordinal = 0; ordinal < loads.size(); ++ordinal) {
        const std::uint32_t loc = loadLoc[ordinal];
        if (!first && !tidChangedFlag[loads[ordinal].tid] &&
            !ws.locChanged(loc)) {
            continue;
        }
        unitScratch.clear();
        deriveLoadUnit(ordinal, execution, ws, unitScratch);
        diffUnit(loadUnits[ordinal], unitScratch, out);
        // Copy, don't swap: swapping would rotate one buffer across
        // units of different sizes and realloc on every pass; a copy
        // lets each unit's capacity reach its own high-water mark.
        loadUnits[ordinal].assign(unitScratch.begin(),
                                  unitScratch.end());
    }
    for (std::uint32_t loc = 0; loc < locUnits.size(); ++loc) {
        if (!first && !ws.locChanged(loc))
            continue;
        unitScratch.clear();
        deriveLocUnit(loc, ws, unitScratch);
        diffUnit(locUnits[loc], unitScratch, out);
        locUnits[loc].assign(unitScratch.begin(), unitScratch.end());
    }
    first = false;

    // Per-unit diffs are sorted, units never share keys, so one sort
    // over the concatenation yields the exact global diff.
    std::sort(out.removed.begin(), out.removed.end());
    std::sort(out.added.begin(), out.added.end());
}

void
EdgeDeriver::snapshotAdded(EdgeDiff &out) const
{
    out.removed.clear();
    out.added.clear();
    assembleInto(out.added);
}

void
EdgeDeriver::assembleInto(std::vector<Edge> &out) const
{
    out.clear();
    for (const auto &unit : loadUnits)
        out.insert(out.end(), unit.begin(), unit.end());
    for (const auto &unit : locUnits)
        out.insert(out.end(), unit.begin(), unit.end());
    std::sort(out.begin(), out.end());
}

} // namespace mtc
