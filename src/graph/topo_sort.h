/**
 * @file
 * Kahn topological sort with work accounting.
 *
 * Conventional MCM checking topologically sorts every execution's
 * constraint graph (Section 2 of the paper; complexity Theta(V+E)).
 * Both the conventional checker and the first / full re-sorts of the
 * collective checker use this routine; its work counters (vertices
 * dequeued, edges relaxed) provide the architecture-independent
 * computation metric reported alongside wall-clock in Figure 9.
 */

#ifndef MTC_GRAPH_TOPO_SORT_H
#define MTC_GRAPH_TOPO_SORT_H

#include <cstdint>
#include <vector>

#include "graph/constraint_graph.h"

namespace mtc
{

/** Outcome of a topological sort attempt. */
struct TopoResult
{
    /** False iff the graph contains a cycle (an MCM violation). */
    bool acyclic = false;

    /** Complete topological order when acyclic; partial otherwise. */
    std::vector<std::uint32_t> order;

    /** Vertices dequeued during the sort. */
    std::uint64_t verticesProcessed = 0;

    /** Edges relaxed during the sort. */
    std::uint64_t edgesProcessed = 0;
};

/** Sort the whole graph. */
TopoResult topologicalSort(const ConstraintGraph &graph);

} // namespace mtc

#endif // MTC_GRAPH_TOPO_SORT_H
