/**
 * @file
 * Intra-thread (program-order) constraint-edge construction.
 *
 * For each operation we emit a sparse set of edges whose transitive
 * closure equals the full set of orderings the MCM requires, instead
 * of the quadratic all-pairs set: for every op i and every target kind
 * k, one edge to the first later op of kind k that must stay ordered
 * after i. This is sound for SC/TSO/RMO because in those models,
 * whenever (a, k) must stay ordered so must (k, k), making the chain
 * transitive (verified by the exhaustive property test in
 * tests/po_edges_test.cpp).
 */

#ifndef MTC_GRAPH_PO_EDGES_H
#define MTC_GRAPH_PO_EDGES_H

#include <vector>

#include "graph/constraint_graph.h"
#include "mcm/memory_model.h"
#include "testgen/test_program.h"

namespace mtc
{

/**
 * Must op @p first stay globally ordered before the program-order-later
 * op @p second from the same thread under @p model? Combines the
 * different-address MCM matrix with the same-address coherence rules.
 * The executors in mtc::sim use this same predicate to decide which
 * operations may perform out of order, so platform and checker always
 * agree on the model.
 */
bool requiredOrder(MemoryModel model, const MemOp &first,
                   const MemOp &second);

/** Sparse program-order edges for @p program under @p model. */
std::vector<Edge> programOrderEdges(const TestProgram &program,
                                    MemoryModel model);

/**
 * Reference implementation emitting *every* required pair (quadratic);
 * exists only so tests can check the sparse set's transitive closure.
 */
std::vector<Edge> programOrderEdgesDense(const TestProgram &program,
                                         MemoryModel model);

} // namespace mtc

#endif // MTC_GRAPH_PO_EDGES_H
