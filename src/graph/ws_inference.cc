#include "graph/ws_inference.h"

#include "support/error.h"

namespace mtc
{

namespace
{

inline bool
testBit(const std::vector<std::uint64_t> &row, std::uint32_t bit)
{
    return (row[bit >> 6] >> (bit & 63)) & 1;
}

inline void
setBit(std::vector<std::uint64_t> &row, std::uint32_t bit)
{
    row[bit >> 6] |= std::uint64_t(1) << (bit & 63);
}

} // anonymous namespace

WsOrder::WsOrder(const TestProgram &program) : prog(&program)
{
    const std::uint32_t num_locs = program.config().numLocations;
    locs.resize(num_locs);
    rawEdges.resize(num_locs);
    for (std::uint32_t loc = 0; loc < num_locs; ++loc) {
        locs[loc].stores = program.storesTo(loc);
        // The virtual initial store is index 0 and precedes everything.
        const std::uint32_t n =
            static_cast<std::uint32_t>(locs[loc].stores.size()) + 1;
        for (std::uint32_t i = 1; i < n; ++i)
            rawEdges[loc].emplace_back(0, i);
    }
}

WsOrder::WsOrder(const TestProgram &program, const Execution &execution)
    : WsOrder(program)
{
    // Rule (a): program order among same-thread stores to one location.
    // storesTo() is ordered by (tid, idx), so adjacent same-tid entries
    // are program-ordered; chaining adjacent pairs is sufficient.
    for (std::uint32_t loc = 0; loc < locs.size(); ++loc) {
        const auto &stores = locs[loc].stores;
        for (std::size_t i = 0; i + 1 < stores.size(); ++i) {
            if (stores[i].tid == stores[i + 1].tid) {
                addConstraint(loc, indexOf(loc, stores[i]),
                              indexOf(loc, stores[i + 1]));
            }
        }
    }

    // Walk each thread once, tracking the last store and the last
    // load-observed value per location, to apply rules (b), (c), (d).
    const auto &threads = program.threadBodies();
    const std::uint32_t num_locs = program.config().numLocations;
    for (std::uint32_t tid = 0; tid < threads.size(); ++tid) {
        std::vector<std::optional<OpId>> last_store(num_locs);
        // Last value observed by a load of this thread per location,
        // and whether a store of this thread intervened since.
        std::vector<std::optional<std::uint32_t>> pending_read(num_locs);

        for (std::uint32_t idx = 0; idx < threads[tid].size(); ++idx) {
            const MemOp &mem_op = threads[tid][idx];
            if (mem_op.kind == OpKind::Fence)
                continue;
            const std::uint32_t loc = mem_op.loc;

            if (mem_op.kind == OpKind::Store) {
                // Rule (c): the store follows whatever the last load of
                // this location read.
                if (pending_read[loc]) {
                    const std::uint32_t read_value = *pending_read[loc];
                    std::optional<OpId> w;
                    if (read_value != kInitValue)
                        w = program.storeForValue(read_value);
                    const std::uint32_t from = indexOf(loc, w);
                    const std::uint32_t to =
                        indexOf(loc, OpId{tid, idx});
                    if (from == to) {
                        // A load read its own thread's future store.
                        violation = true;
                    } else {
                        addConstraint(loc, from, to);
                    }
                    pending_read[loc].reset();
                }
                last_store[loc] = OpId{tid, idx};
                continue;
            }

            // Load: find what it observed.
            const std::uint32_t ordinal =
                program.loadOrdinal(OpId{tid, idx});
            const std::uint32_t value = execution.loadValues.at(ordinal);
            std::optional<OpId> w;
            if (value != kInitValue) {
                w = program.storeForValue(value);
                if (!w) {
                    // Value produced by no store in the test: platform
                    // corruption; treat as a violation.
                    violation = true;
                    continue;
                }
            }

            // Rule (b): last same-thread store must be coherence-<= W.
            if (last_store[loc] && w != last_store[loc]) {
                addConstraint(loc, indexOf(loc, last_store[loc]),
                              indexOf(loc, w));
            }
            if (!w && last_store[loc]) {
                // Reading the initial value after this thread stored:
                // the (b) constraint above targets index 0 and closes a
                // cycle with the base init-first edges.
                violation = true;
            }

            // Rule (d): CoRR against the previous load of this loc, if
            // no own store intervened (an intervening store subsumes
            // the constraint through rules (b)+(c)).
            if (pending_read[loc] && *pending_read[loc] != value) {
                std::optional<OpId> w_old;
                if (*pending_read[loc] != kInitValue)
                    w_old = program.storeForValue(*pending_read[loc]);
                addConstraint(loc, indexOf(loc, w_old), indexOf(loc, w));
            }
            pending_read[loc] = value;
        }
    }

    close();
}

WsOrder
WsOrder::fromGroundTruth(const TestProgram &program,
                         const Execution &execution)
{
    WsOrder order(program);
    if (execution.coherenceOrder.size() !=
        program.config().numLocations) {
        throw ConfigError("execution has no coherence-order ground truth");
    }
    for (std::uint32_t loc = 0; loc < order.locs.size(); ++loc) {
        const auto &total = execution.coherenceOrder[loc];
        for (std::size_t i = 0; i + 1 < total.size(); ++i) {
            order.addConstraint(loc, order.indexOf(loc, total[i]),
                                order.indexOf(loc, total[i + 1]));
        }
    }
    order.close();
    return order;
}

std::uint32_t
WsOrder::indexOf(std::uint32_t loc, std::optional<OpId> w) const
{
    if (!w)
        return 0;
    const auto &stores = locs.at(loc).stores;
    for (std::size_t i = 0; i < stores.size(); ++i)
        if (stores[i] == *w)
            return static_cast<std::uint32_t>(i) + 1;
    throw ConfigError("store is not a writer of this location");
}

void
WsOrder::addConstraint(std::uint32_t loc, std::uint32_t from,
                       std::uint32_t to)
{
    rawEdges[loc].emplace_back(from, to);
}

void
WsOrder::close()
{
    for (std::uint32_t loc = 0; loc < locs.size(); ++loc) {
        LocOrder &order = locs[loc];
        const std::uint32_t n =
            static_cast<std::uint32_t>(order.stores.size()) + 1;
        const std::uint32_t words = (n + 63) / 64;
        order.reach.assign(n, std::vector<std::uint64_t>(words, 0));
        for (auto [from, to] : rawEdges[loc])
            setBit(order.reach[from], to);

        // Floyd-Warshall-style bitset closure: n is small (stores per
        // location), so O(n^2) word operations are cheap.
        for (std::uint32_t k = 0; k < n; ++k) {
            for (std::uint32_t i = 0; i < n; ++i) {
                if (!testBit(order.reach[i], k))
                    continue;
                for (std::uint32_t w = 0; w < words; ++w)
                    order.reach[i][w] |= order.reach[k][w];
            }
        }
        for (std::uint32_t i = 0; i < n; ++i)
            if (testBit(order.reach[i], i))
                violation = true;
    }
}

bool
WsOrder::before(std::uint32_t loc, std::optional<OpId> w1,
                std::optional<OpId> w2) const
{
    const std::uint32_t from = indexOf(loc, w1);
    const std::uint32_t to = indexOf(loc, w2);
    return testBit(locs.at(loc).reach[from], to);
}

std::vector<OpId>
WsOrder::successorsOf(std::uint32_t loc, std::optional<OpId> w) const
{
    const LocOrder &order = locs.at(loc);
    const std::uint32_t from = indexOf(loc, w);
    std::vector<OpId> result;
    for (std::size_t i = 0; i < order.stores.size(); ++i) {
        if (testBit(order.reach[from],
                    static_cast<std::uint32_t>(i) + 1)) {
            result.push_back(order.stores[i]);
        }
    }
    return result;
}

std::vector<std::pair<OpId, OpId>>
WsOrder::orderedPairs(std::uint32_t loc) const
{
    const LocOrder &order = locs.at(loc);
    std::vector<std::pair<OpId, OpId>> pairs;
    for (std::size_t i = 0; i < order.stores.size(); ++i) {
        for (std::size_t j = 0; j < order.stores.size(); ++j) {
            if (i != j &&
                testBit(order.reach[i + 1],
                        static_cast<std::uint32_t>(j) + 1)) {
                pairs.emplace_back(order.stores[i], order.stores[j]);
            }
        }
    }
    return pairs;
}

} // namespace mtc
