#include "graph/ws_inference.h"

#include <algorithm>
#include <cstring>

#include "support/error.h"

namespace mtc
{

void
WsOrder::bindProgram(const TestProgram &program)
{
    if (bound && boundFingerprint == program.fingerprint())
        return;

    const std::uint32_t num_locs = program.config().numLocations;
    locStores.resize(num_locs);
    locN.resize(num_locs);
    locWords.resize(num_locs);
    locOffset.resize(num_locs);
    std::size_t total = 0;
    for (std::uint32_t loc = 0; loc < num_locs; ++loc) {
        locStores[loc] = program.storesTo(loc);
        const std::uint32_t n =
            static_cast<std::uint32_t>(locStores[loc].size()) + 1;
        locN[loc] = n;
        locWords[loc] = (n + 63) / 64;
        locOffset[loc] = total;
        total += static_cast<std::size_t>(n) * locWords[loc];
    }
    reachSize = total;
    reach.assign(reachSize, 0);

    // Rule (a): program order among same-thread stores to one
    // location. storesTo() is ordered by (tid, idx), so adjacent
    // same-tid entries are program-ordered; chaining adjacent pairs is
    // sufficient. A property of the program alone, cached per bind.
    staticCons.assign(num_locs, {});
    for (std::uint32_t loc = 0; loc < num_locs; ++loc) {
        const auto &stores = locStores[loc];
        for (std::size_t i = 0; i + 1 < stores.size(); ++i) {
            if (stores[i].tid == stores[i + 1].tid) {
                staticCons[loc].emplace_back(
                    static_cast<std::uint32_t>(i) + 1,
                    static_cast<std::uint32_t>(i) + 2);
            }
        }
    }
    threadCons.assign(program.numThreads(), {});
    threadViol.assign(program.numThreads(), 0);
    locViol.assign(num_locs, 0);
    locDirty.assign(num_locs, 1);
    locPending.assign(num_locs, 0);
    haveState = false;

    bound = true;
    boundFingerprint = program.fingerprint();
}

void
WsOrder::resetOrders()
{
    reach.assign(reachSize, 0);
    violation = false;
    // The virtual initial store is index 0 and precedes everything.
    for (std::size_t loc = 0; loc < locN.size(); ++loc) {
        std::uint64_t *row0 = reach.data() + locOffset[loc];
        for (std::uint32_t i = 1; i < locN[loc]; ++i)
            row0[i >> 6] |= std::uint64_t(1) << (i & 63);
    }
}

void
WsOrder::addConstraint(std::uint32_t loc, std::uint32_t from,
                       std::uint32_t to)
{
    std::uint64_t *row = reach.data() + locOffset[loc] +
        static_cast<std::size_t>(from) * locWords[loc];
    row[to >> 6] |= std::uint64_t(1) << (to & 63);
}

void
WsOrder::close()
{
    for (std::size_t loc = 0; loc < locN.size(); ++loc) {
        const std::uint32_t n = locN[loc];
        const std::uint32_t words = locWords[loc];
        std::uint64_t *base = reach.data() + locOffset[loc];

        // Floyd-Warshall-style bitset closure: n is small (stores per
        // location), so O(n^2) word operations are cheap.
        for (std::uint32_t k = 0; k < n; ++k) {
            const std::uint64_t *row_k = base + k * words;
            for (std::uint32_t i = 0; i < n; ++i) {
                std::uint64_t *row_i = base + i * words;
                if ((row_i[k >> 6] >> (k & 63)) & 1) {
                    for (std::uint32_t w = 0; w < words; ++w)
                        row_i[w] |= row_k[w];
                }
            }
        }
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::uint64_t *row_i = base + i * words;
            if ((row_i[i >> 6] >> (i & 63)) & 1)
                violation = true;
        }
    }
}

void
WsOrder::walkThread(const TestProgram &program,
                    const Execution &execution, std::uint32_t tid)
{
    // Walk the thread once, tracking the last store and the last
    // load-observed value per location, to apply rules (b), (c), (d).
    // Walks only read the thread's own body and load values, so each
    // thread's constraint list is independent of every other thread.
    const auto &body = program.threadBodies()[tid];
    const std::uint32_t num_locs = program.config().numLocations;
    std::vector<ThreadConstraint> &cons = threadCons[tid];
    cons.clear();
    threadViol[tid] = 0;
    lastStore.assign(num_locs, std::nullopt);
    // Last value observed by a load of this thread per location,
    // and whether a store of this thread intervened since.
    pendingRead.assign(num_locs, std::nullopt);

    for (std::uint32_t idx = 0; idx < body.size(); ++idx) {
        const MemOp &mem_op = body[idx];
        if (mem_op.kind == OpKind::Fence)
            continue;
        const std::uint32_t loc = mem_op.loc;

        if (mem_op.kind == OpKind::Store) {
            // Rule (c): the store follows whatever the last load of
            // this location read.
            if (pendingRead[loc]) {
                const std::uint32_t read_value = *pendingRead[loc];
                std::optional<OpId> w;
                if (read_value != kInitValue)
                    w = program.storeForValue(read_value);
                const std::uint32_t from = indexOf(loc, w);
                const std::uint32_t to = indexOf(loc, OpId{tid, idx});
                if (from == to) {
                    // A load read its own thread's future store.
                    threadViol[tid] = 1;
                } else {
                    cons.push_back({loc, from, to});
                }
                pendingRead[loc].reset();
            }
            lastStore[loc] = OpId{tid, idx};
            continue;
        }

        // Load: find what it observed.
        const std::uint32_t ordinal =
            program.loadOrdinal(OpId{tid, idx});
        const std::uint32_t value = execution.loadValues.at(ordinal);
        std::optional<OpId> w;
        if (value != kInitValue) {
            w = program.storeForValue(value);
            if (!w) {
                // Value produced by no store in the test: platform
                // corruption; treat as a violation.
                threadViol[tid] = 1;
                continue;
            }
        }

        // Rule (b): last same-thread store must be coherence-<= W.
        if (lastStore[loc] && w != lastStore[loc]) {
            cons.push_back({loc, indexOf(loc, lastStore[loc]),
                            indexOf(loc, w)});
        }
        if (!w && lastStore[loc]) {
            // Reading the initial value after this thread stored:
            // the (b) constraint above targets index 0 and closes a
            // cycle with the base init-first edges.
            threadViol[tid] = 1;
        }

        // Rule (d): CoRR against the previous load of this loc, if
        // no own store intervened (an intervening store subsumes
        // the constraint through rules (b)+(c)).
        if (pendingRead[loc] && *pendingRead[loc] != value) {
            std::optional<OpId> w_old;
            if (*pendingRead[loc] != kInitValue)
                w_old = program.storeForValue(*pendingRead[loc]);
            cons.push_back({loc, indexOf(loc, w_old), indexOf(loc, w)});
        }
        pendingRead[loc] = value;
    }
}

void
WsOrder::rebuildLoc(std::uint32_t loc)
{
    const std::uint32_t n = locN[loc];
    const std::uint32_t words = locWords[loc];
    std::uint64_t *base = reach.data() + locOffset[loc];
    std::fill(base, base + static_cast<std::size_t>(n) * words, 0);

    // The virtual initial store is index 0 and precedes everything.
    for (std::uint32_t i = 1; i < n; ++i)
        base[i >> 6] |= std::uint64_t(1) << (i & 63);

    const auto set_bit = [&](std::uint32_t from, std::uint32_t to) {
        std::uint64_t *row =
            base + static_cast<std::size_t>(from) * words;
        row[to >> 6] |= std::uint64_t(1) << (to & 63);
    };
    for (const auto &edge : staticCons[loc])
        set_bit(edge.first, edge.second);
    for (const auto &cons : threadCons) {
        for (const ThreadConstraint &c : cons) {
            if (c.loc == loc)
                set_bit(c.from, c.to);
        }
    }

    // Floyd-Warshall-style bitset closure: n is small (stores per
    // location), so O(n^2) word operations are cheap. The closed bits
    // depend only on the constraint *set* above, never on insertion
    // order, which is what makes incremental rebuilds bit-identical.
    for (std::uint32_t k = 0; k < n; ++k) {
        const std::uint64_t *row_k = base + k * words;
        for (std::uint32_t i = 0; i < n; ++i) {
            std::uint64_t *row_i = base + i * words;
            if ((row_i[k >> 6] >> (k & 63)) & 1) {
                for (std::uint32_t w = 0; w < words; ++w)
                    row_i[w] |= row_k[w];
            }
        }
    }
    locViol[loc] = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint64_t *row_i = base + i * words;
        if ((row_i[i >> 6] >> (i & 63)) & 1)
            locViol[loc] = 1;
    }
}

void
WsOrder::recomputeViolation()
{
    violation = false;
    for (const std::uint8_t flag : threadViol)
        violation = violation || flag != 0;
    for (const std::uint8_t flag : locViol)
        violation = violation || flag != 0;
}

void
WsOrder::infer(const TestProgram &program, const Execution &execution)
{
    bindProgram(program);

    const std::uint32_t num_threads = program.numThreads();
    for (std::uint32_t tid = 0; tid < num_threads; ++tid)
        walkThread(program, execution, tid);
    for (std::uint32_t loc = 0; loc < locN.size(); ++loc) {
        rebuildLoc(static_cast<std::uint32_t>(loc));
        locDirty[loc] = 1;
    }
    recomputeViolation();
    haveState = true;
}

void
WsOrder::inferDelta(const TestProgram &program,
                    const Execution &execution,
                    const std::uint32_t *changed_tids, std::size_t n)
{
    if (!haveState || !bound ||
        boundFingerprint != program.fingerprint()) {
        infer(program, execution);
        return;
    }

    std::fill(locDirty.begin(), locDirty.end(), 0);
    std::fill(locPending.begin(), locPending.end(), 0);

    for (std::size_t k = 0; k < n; ++k) {
        const std::uint32_t tid = changed_tids[k];
        // Copy (not swap) into the scratch: swapping would rotate one
        // buffer across threads of different sizes and realloc forever,
        // defeating the steady-state zero-allocation guarantee.
        oldCons.assign(threadCons[tid].begin(), threadCons[tid].end());
        walkThread(program, execution, tid);
        if (threadCons[tid] == oldCons)
            continue; // same constraints: no location can move
        for (const ThreadConstraint &c : oldCons)
            locPending[c.loc] = 1;
        for (const ThreadConstraint &c : threadCons[tid])
            locPending[c.loc] = 1;
    }

    for (std::uint32_t loc = 0; loc < locN.size(); ++loc) {
        if (!locPending[loc])
            continue;
        const std::size_t row_words =
            static_cast<std::size_t>(locN[loc]) * locWords[loc];
        const std::uint64_t *base = reach.data() + locOffset[loc];
        prevRows.assign(base, base + row_words);
        rebuildLoc(loc);
        locDirty[loc] =
            std::memcmp(prevRows.data(), base,
                        row_words * sizeof(std::uint64_t)) != 0
            ? 1
            : 0;
    }
    recomputeViolation();
}

WsOrder
WsOrder::fromGroundTruth(const TestProgram &program,
                         const Execution &execution)
{
    WsOrder order;
    order.bindProgram(program);
    order.resetOrders();
    if (execution.coherenceOrder.size() !=
        program.config().numLocations) {
        throw ConfigError("execution has no coherence-order ground truth");
    }
    for (std::uint32_t loc = 0; loc < order.locStores.size(); ++loc) {
        const auto &total = execution.coherenceOrder[loc];
        for (std::size_t i = 0; i + 1 < total.size(); ++i) {
            order.addConstraint(loc, order.indexOf(loc, total[i]),
                                order.indexOf(loc, total[i + 1]));
        }
    }
    order.close();
    return order;
}

std::uint32_t
WsOrder::indexOf(std::uint32_t loc, std::optional<OpId> w) const
{
    if (!w)
        return 0;
    const auto &stores = locStores.at(loc);
    for (std::size_t i = 0; i < stores.size(); ++i)
        if (stores[i] == *w)
            return static_cast<std::uint32_t>(i) + 1;
    throw ConfigError("store is not a writer of this location");
}

bool
WsOrder::before(std::uint32_t loc, std::optional<OpId> w1,
                std::optional<OpId> w2) const
{
    return orderedByIndex(loc, indexOf(loc, w1), indexOf(loc, w2));
}

std::vector<OpId>
WsOrder::successorsOf(std::uint32_t loc, std::optional<OpId> w) const
{
    const auto &stores = locStores.at(loc);
    const std::uint32_t from = indexOf(loc, w);
    std::vector<OpId> result;
    for (std::size_t i = 0; i < stores.size(); ++i) {
        if (orderedByIndex(loc, from,
                           static_cast<std::uint32_t>(i) + 1)) {
            result.push_back(stores[i]);
        }
    }
    return result;
}

std::vector<std::pair<OpId, OpId>>
WsOrder::orderedPairs(std::uint32_t loc) const
{
    const auto &stores = locStores.at(loc);
    std::vector<std::pair<OpId, OpId>> pairs;
    for (std::size_t i = 0; i < stores.size(); ++i) {
        for (std::size_t j = 0; j < stores.size(); ++j) {
            if (i != j &&
                orderedByIndex(loc, static_cast<std::uint32_t>(i) + 1,
                               static_cast<std::uint32_t>(j) + 1)) {
                pairs.emplace_back(stores[i], stores[j]);
            }
        }
    }
    return pairs;
}

} // namespace mtc
