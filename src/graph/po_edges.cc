#include "graph/po_edges.h"

namespace mtc
{

bool
requiredOrder(MemoryModel model, const MemOp &first, const MemOp &second)
{
    const bool same_loc = first.kind != OpKind::Fence &&
        second.kind != OpKind::Fence && first.loc == second.loc;
    if (same_loc)
        return sameAddressOrderRequired(model, first.kind, second.kind);
    return programOrderRequired(model, first.kind, second.kind);
}

std::vector<Edge>
programOrderEdges(const TestProgram &program, MemoryModel model)
{
    std::vector<Edge> edges;
    const auto &threads = program.threadBodies();
    for (std::uint32_t tid = 0; tid < threads.size(); ++tid) {
        const auto &body = threads[tid];
        for (std::uint32_t i = 0; i < body.size(); ++i) {
            const MemOp &a = body[i];

            if (a.kind == OpKind::Fence) {
                // A fence orders before *every* later op. Chains through
                // a later op cannot be relied upon in weak models (e.g.
                // RMO load->load at different addresses), so emit edges
                // to each op up to and including the next fence; ops
                // beyond it are reached through that fence (fence->fence
                // ordering is required in every model).
                for (std::uint32_t j = i + 1; j < body.size(); ++j) {
                    edges.push_back(Edge{
                        program.globalIndex(OpId{tid, i}),
                        program.globalIndex(OpId{tid, j}),
                        EdgeKind::ProgramOrder});
                    if (body[j].kind == OpKind::Fence)
                        break;
                }
                continue;
            }

            // Non-fence source: for each category (target kind x
            // same/different address), one edge to the category's first
            // later member. Later members are reached through it: both
            // (ld, ld) and (st, st) stay ordered within a category in
            // every model where the (a, category) pair is ordered, and
            // same-address categories share one location.
            bool found_load = false, found_store = false;
            bool found_fence = false;
            bool found_same_loc_load = false, found_same_loc_store = false;

            for (std::uint32_t j = i + 1; j < body.size(); ++j) {
                const MemOp &b = body[j];
                bool *slot = nullptr;
                const bool same_loc = b.kind != OpKind::Fence &&
                    a.loc == b.loc;
                if (same_loc) {
                    slot = b.kind == OpKind::Load ? &found_same_loc_load
                        : &found_same_loc_store;
                } else {
                    switch (b.kind) {
                      case OpKind::Load:
                        slot = &found_load;
                        break;
                      case OpKind::Store:
                        slot = &found_store;
                        break;
                      case OpKind::Fence:
                        slot = &found_fence;
                        break;
                    }
                }
                if (*slot)
                    continue;
                // Within a category the ordering predicate is constant,
                // so skipping an unordered first member is safe: every
                // later member is equally unordered.
                if (requiredOrder(model, a, b)) {
                    edges.push_back(Edge{
                        program.globalIndex(OpId{tid, i}),
                        program.globalIndex(OpId{tid, j}),
                        EdgeKind::ProgramOrder});
                }
                *slot = true;
                if (found_load && found_store && found_fence &&
                    found_same_loc_load && found_same_loc_store) {
                    break;
                }
            }
        }
    }
    return edges;
}

std::vector<Edge>
programOrderEdgesDense(const TestProgram &program, MemoryModel model)
{
    std::vector<Edge> edges;
    const auto &threads = program.threadBodies();
    for (std::uint32_t tid = 0; tid < threads.size(); ++tid) {
        const auto &body = threads[tid];
        for (std::uint32_t i = 0; i < body.size(); ++i) {
            for (std::uint32_t j = i + 1; j < body.size(); ++j) {
                if (requiredOrder(model, body[i], body[j])) {
                    edges.push_back(Edge{
                        program.globalIndex(OpId{tid, i}),
                        program.globalIndex(OpId{tid, j}),
                        EdgeKind::ProgramOrder});
                }
            }
        }
    }
    return edges;
}

} // namespace mtc
