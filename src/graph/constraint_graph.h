/**
 * @file
 * Constraint graph over the operations of one test program.
 *
 * Vertices are the static memory operations (dense TestProgram global
 * indices); edges are ordering constraints of four kinds following the
 * notation of the paper's Section 2: program-order/MCM edges (po),
 * reads-from (rf), from-read (fr) and write-serialization (ws). A cycle
 * proves the observed execution violates the memory model.
 */

#ifndef MTC_GRAPH_CONSTRAINT_GRAPH_H
#define MTC_GRAPH_CONSTRAINT_GRAPH_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mtc
{

/** Dependency categories from the paper (Section 2). */
enum class EdgeKind : std::uint8_t
{
    ProgramOrder,       ///< intra-thread edge required by the MCM
    ReadsFrom,          ///< store -> load that observed it
    FromRead,           ///< load -> store that overwrote what it read
    WriteSerialization, ///< store -> coherence-later store, same loc
};

/** Single-character tag used in reports ("po", "rf", "fr", "ws"). */
std::string edgeKindName(EdgeKind kind);

/** One directed constraint edge. */
struct Edge
{
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    EdgeKind kind = EdgeKind::ProgramOrder;

    auto operator<=>(const Edge &) const = default;
};

/**
 * Adjacency-list constraint graph. Parallel edges between the same
 * vertex pair are collapsed (the first kind wins; multiplicity never
 * affects acyclicity).
 */
class ConstraintGraph
{
  public:
    explicit ConstraintGraph(std::uint32_t num_vertices);

    std::uint32_t numVertices() const { return vertexCount; }
    std::uint64_t numEdges() const { return edgeCount; }

    /** Add one edge; self-loops are rejected, duplicates ignored. */
    void addEdge(std::uint32_t from, std::uint32_t to, EdgeKind kind);

    /** Add a batch of edges. */
    void addEdges(const std::vector<Edge> &edges);

    /** Successors of @p vertex. */
    const std::vector<std::uint32_t> &
    successors(std::uint32_t vertex) const
    {
        return adjacency.at(vertex);
    }

    /** Kind of the (from, to) edge; throws if absent. */
    EdgeKind edgeKind(std::uint32_t from, std::uint32_t to) const;

    /** True if the (from, to) edge exists. */
    bool hasEdge(std::uint32_t from, std::uint32_t to) const;

    /** In-degree array (recomputed on demand; used by Kahn's sort). */
    std::vector<std::uint32_t> inDegrees() const;

  private:
    static std::uint64_t
    key(std::uint32_t from, std::uint32_t to)
    {
        return (static_cast<std::uint64_t>(from) << 32) | to;
    }

    std::uint32_t vertexCount;
    std::uint64_t edgeCount = 0;
    std::vector<std::vector<std::uint32_t>> adjacency;
    std::unordered_map<std::uint64_t, EdgeKind> kinds;
};

} // namespace mtc

#endif // MTC_GRAPH_CONSTRAINT_GRAPH_H
