/**
 * @file
 * Assembly of constraint graphs from a program and an observed (or
 * signature-decoded) execution.
 *
 * The static part (program-order/MCM edges) is shared by all
 * executions of one test; the dynamic part (rf, fr, ws) is derived per
 * execution. The collective checker exploits exactly this split:
 * static edges are built once, dynamic edge sets are diffed between
 * adjacent signatures.
 */

#ifndef MTC_GRAPH_GRAPH_BUILDER_H
#define MTC_GRAPH_GRAPH_BUILDER_H

#include <vector>

#include "graph/constraint_graph.h"
#include "graph/ws_inference.h"
#include "mcm/memory_model.h"
#include "testgen/execution.h"
#include "testgen/test_program.h"

namespace mtc
{

/** Observed-edge set (rf + fr + ws) for one execution. */
struct DynamicEdgeSet
{
    std::vector<Edge> edges;

    /**
     * The ws inference found contradictory coherence constraints (or a
     * load observed a value no store produced). This is already a
     * violation regardless of graph cyclicity.
     */
    bool coherenceViolation = false;
};

/** Static graph: vertices for every op, program-order edges only. */
ConstraintGraph buildStaticGraph(const TestProgram &program,
                                 MemoryModel model);

/**
 * Dynamic (observed) edges for @p execution, using ws inferred from
 * the execution's reads-from set. Edges are returned sorted and
 * de-duplicated so adjacent executions can be diffed with a single
 * merge pass.
 */
DynamicEdgeSet dynamicEdges(const TestProgram &program,
                            const Execution &execution);

/** As above but with a caller-provided ws order (e.g. ground truth). */
DynamicEdgeSet dynamicEdges(const TestProgram &program,
                            const Execution &execution,
                            const WsOrder &ws_order);

/**
 * Zero-allocation variant: derives into @p out (cleared first, capacity
 * kept) from an already-inferred @p ws_order. The two dynamicEdges
 * overloads wrap this.
 */
void dynamicEdgesInto(const TestProgram &program,
                      const Execution &execution,
                      const WsOrder &ws_order, DynamicEdgeSet &out);

/** Convenience: static + dynamic edges in one graph. */
ConstraintGraph buildFullGraph(const TestProgram &program,
                               const Execution &execution,
                               MemoryModel model);

/**
 * Dynamic-edge difference between two adjacent executions, both lists
 * sorted by (from, to). `removed` is a subset of the previous edge
 * set, `added` is disjoint from it — exactly the presentation
 * CollectiveChecker::checkNextDiff() applies.
 */
struct EdgeDiff
{
    std::vector<Edge> removed;
    std::vector<Edge> added;

    /** Same meaning as DynamicEdgeSet::coherenceViolation, for the
     * execution the diff leads *to*. */
    bool coherenceViolation = false;

    void
    clear()
    {
        removed.clear();
        added.clear();
        coherenceViolation = false;
    }
};

/**
 * Apply a sorted @p diff to a sorted edge list in place (one merge
 * pass; @p scratch is the swap buffer, reused across calls). The
 * streaming pipeline uses this to maintain the full edge list for the
 * conventional per-execution baseline without re-deriving it.
 */
void applyEdgeDiff(std::vector<Edge> &edges, const EdgeDiff &diff,
                   std::vector<Edge> &scratch);

/**
 * Incremental dynamic-edge derivation over a stream of executions.
 *
 * The global edge list of dynamicEdgesInto() partitions into
 * independent units: per-load units (that load's external rf edge plus
 * its fr edges) and per-location units (the ws pairs of that
 * location). A load's unit depends only on the load's own decoded
 * value and its location's closed ws order; a location's unit depends
 * only on that order. So when the delta decoder reports which threads
 * changed and WsOrder::locChanged() reports which location orders
 * moved, only those units are re-derived, and per-unit diffs compose
 * into the exact global (from, to)-sorted diff: (from, to) keys are
 * unique across the whole edge set — rf targets a load, fr leaves a
 * load, ws connects two stores of one location — so no two units ever
 * produce the same key.
 *
 * Results are bit-identical to re-running dynamicEdgesInto() per
 * execution and diffing the sorted lists.
 */
class EdgeDeriver
{
  public:
    /** @p program must outlive the deriver. */
    explicit EdgeDeriver(const TestProgram &program);

    /**
     * Derive the edges of @p execution (whose ws order is @p ws, as
     * produced by infer()/inferDelta() on the same execution) and
     * emit the sorted diff versus the previous derive() into @p out.
     * The first call diffs against the empty set. @p changed_tids is
     * the delta decoder's changed-thread list; it is ignored on the
     * first call (everything derives).
     */
    void derive(const Execution &execution, const WsOrder &ws,
                const std::uint32_t *changed_tids, std::size_t n,
                EdgeDiff &out);

    /**
     * The current full edge set as an added-only diff (removed empty,
     * added sorted) — what a freshly reset checker consumes at a
     * shard boundary. coherenceViolation is left to the caller.
     */
    void snapshotAdded(EdgeDiff &out) const;

    /** Materialize the current full sorted edge list (tests and the
     * violation-witness path). */
    void assembleInto(std::vector<Edge> &out) const;

  private:
    void deriveLoadUnit(std::uint32_t ordinal,
                        const Execution &execution, const WsOrder &ws,
                        std::vector<Edge> &unit) const;
    void deriveLocUnit(std::uint32_t loc, const WsOrder &ws,
                       std::vector<Edge> &unit) const;
    static void diffUnit(const std::vector<Edge> &before,
                         const std::vector<Edge> &after, EdgeDiff &out);

    const TestProgram &prog;
    std::vector<std::uint32_t> loadLoc; ///< [ordinal] location
    std::vector<std::vector<Edge>> loadUnits; ///< [ordinal] sorted
    std::vector<std::vector<Edge>> locUnits;  ///< [loc] sorted
    std::vector<std::uint8_t> tidChangedFlag; ///< scratch
    std::vector<Edge> unitScratch;
    bool first = true;
};

} // namespace mtc

#endif // MTC_GRAPH_GRAPH_BUILDER_H
