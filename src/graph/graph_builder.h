/**
 * @file
 * Assembly of constraint graphs from a program and an observed (or
 * signature-decoded) execution.
 *
 * The static part (program-order/MCM edges) is shared by all
 * executions of one test; the dynamic part (rf, fr, ws) is derived per
 * execution. The collective checker exploits exactly this split:
 * static edges are built once, dynamic edge sets are diffed between
 * adjacent signatures.
 */

#ifndef MTC_GRAPH_GRAPH_BUILDER_H
#define MTC_GRAPH_GRAPH_BUILDER_H

#include <vector>

#include "graph/constraint_graph.h"
#include "graph/ws_inference.h"
#include "mcm/memory_model.h"
#include "testgen/execution.h"
#include "testgen/test_program.h"

namespace mtc
{

/** Observed-edge set (rf + fr + ws) for one execution. */
struct DynamicEdgeSet
{
    std::vector<Edge> edges;

    /**
     * The ws inference found contradictory coherence constraints (or a
     * load observed a value no store produced). This is already a
     * violation regardless of graph cyclicity.
     */
    bool coherenceViolation = false;
};

/** Static graph: vertices for every op, program-order edges only. */
ConstraintGraph buildStaticGraph(const TestProgram &program,
                                 MemoryModel model);

/**
 * Dynamic (observed) edges for @p execution, using ws inferred from
 * the execution's reads-from set. Edges are returned sorted and
 * de-duplicated so adjacent executions can be diffed with a single
 * merge pass.
 */
DynamicEdgeSet dynamicEdges(const TestProgram &program,
                            const Execution &execution);

/** As above but with a caller-provided ws order (e.g. ground truth). */
DynamicEdgeSet dynamicEdges(const TestProgram &program,
                            const Execution &execution,
                            const WsOrder &ws_order);

/**
 * Zero-allocation variant: derives into @p out (cleared first, capacity
 * kept) from an already-inferred @p ws_order. The two dynamicEdges
 * overloads wrap this.
 */
void dynamicEdgesInto(const TestProgram &program,
                      const Execution &execution,
                      const WsOrder &ws_order, DynamicEdgeSet &out);

/** Convenience: static + dynamic edges in one graph. */
ConstraintGraph buildFullGraph(const TestProgram &program,
                               const Execution &execution,
                               MemoryModel model);

} // namespace mtc

#endif // MTC_GRAPH_GRAPH_BUILDER_H
