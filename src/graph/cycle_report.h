/**
 * @file
 * Cycle extraction and human-readable violation reports.
 *
 * When a constraint graph fails to sort, validation engineers need the
 * witness, not just a verdict: the paper's Figure 13 walks through a
 * detected load->load ordering violation as a cycle of rf / po / fr
 * edges. findCycle() extracts one minimal-ish cycle and
 * describeCycle() renders it in that style.
 */

#ifndef MTC_GRAPH_CYCLE_REPORT_H
#define MTC_GRAPH_CYCLE_REPORT_H

#include <string>
#include <vector>

#include "graph/constraint_graph.h"
#include "testgen/test_program.h"

namespace mtc
{

/**
 * Find one directed cycle in @p graph. Returns the cycle's vertices in
 * order (the edge from the last vertex back to the first closes it);
 * empty if the graph is acyclic.
 */
std::vector<std::uint32_t> findCycle(const ConstraintGraph &graph);

/**
 * Render a cycle as one line per hop:
 *   [t0 op3] st loc2 --rf--> [t1 op0] ld loc2
 */
std::string describeCycle(const TestProgram &program,
                          const ConstraintGraph &graph,
                          const std::vector<std::uint32_t> &cycle);

} // namespace mtc

#endif // MTC_GRAPH_CYCLE_REPORT_H
