/**
 * @file
 * Write-serialization (coherence-order) inference.
 *
 * The checker needs ws edges to derive from-read (fr) edges, but a
 * purely software post-silicon flow cannot observe the coherence order
 * directly. The paper states the write-serialization order is gathered
 * during instrumentation; literally static knowledge is impossible for
 * cross-thread stores, so — as documented in DESIGN.md — we infer a
 * sound partial order from the observed reads-from relationships in the
 * style of TSOtool [Hangal et al., ISCA'04]:
 *
 *  (a) same-thread stores to one location are coherence-ordered in
 *      program order;
 *  (b) if load L reads store W, the last same-thread store W_prev to
 *      that location preceding L must be coherence-before W;
 *  (c) if load L reads W, the first same-thread store to that location
 *      following L must be coherence-after W;
 *  (d) two program-ordered loads of one location in one thread must
 *      read coherence-non-decreasing stores (CoRR).
 *
 * The initial value is modelled as a virtual store that precedes every
 * real store. A contradiction among these constraints (a cycle in the
 * per-location order) is itself a coherence violation and is reported
 * via coherenceViolation().
 */

#ifndef MTC_GRAPH_WS_INFERENCE_H
#define MTC_GRAPH_WS_INFERENCE_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "testgen/execution.h"
#include "testgen/test_program.h"

namespace mtc
{

/**
 * Per-location partial coherence order over stores (plus the virtual
 * initial store). Build either by inference from an execution or from
 * simulator ground truth.
 *
 * Built for reuse: infer() resets the order in place, and the
 * per-program layout (store lists, reachability-row geometry) is
 * rebuilt only when the program changes, so re-inferring over the
 * unique signatures of one test touches no allocator in steady state.
 */
class WsOrder
{
  public:
    WsOrder() = default;

    /** Infer from the observed reads-from of @p execution. */
    WsOrder(const TestProgram &program, const Execution &execution)
    {
        infer(program, execution);
    }

    /**
     * Re-infer in place from another execution, reusing every buffer.
     * The store lists are copied (not aliased) from the program, so a
     * long-lived WsOrder never dangles into a dead TestProgram.
     */
    void infer(const TestProgram &program, const Execution &execution);

    /**
     * Incrementally re-infer from @p execution when only the threads
     * in [changed_tids, changed_tids + n) may have different load
     * values than the execution of the previous infer()/inferDelta()
     * on this object: only those threads are re-walked, and only
     * locations whose constraint set moved are re-closed. Falls back
     * to a full infer() when there is no previous state or the
     * program changed. Bit-identical to infer() — the closed reach
     * bits depend only on the constraint *set*, and per-thread walks
     * are independent, so re-walking unchanged threads cannot change
     * anything.
     */
    void inferDelta(const TestProgram &program,
                    const Execution &execution,
                    const std::uint32_t *changed_tids, std::size_t n);

    /**
     * After infer()/inferDelta(): may @p loc's closed order (or its
     * per-location violation flag) differ from the previous
     * inference? infer() marks every location; inferDelta() marks the
     * locations whose closed reach rows actually changed.
     */
    bool locChanged(std::uint32_t loc) const
    {
        return locDirty[loc] != 0;
    }

    /** Adopt the executor-exported total order (testing only). */
    static WsOrder fromGroundTruth(const TestProgram &program,
                                   const Execution &execution);

    /**
     * Is @p w1 known to be coherence-before @p w2 at @p loc?
     * std::nullopt denotes the virtual initial store.
     */
    bool before(std::uint32_t loc, std::optional<OpId> w1,
                std::optional<OpId> w2) const;

    /** All stores known to be coherence-after @p w at @p loc. */
    std::vector<OpId> successorsOf(std::uint32_t loc,
                                   std::optional<OpId> w) const;

    /**
     * Ordered store pairs (w1 coherence-before w2) at @p loc,
     * including only real stores (fr/ws edge material).
     */
    std::vector<std::pair<OpId, OpId>>
    orderedPairs(std::uint32_t loc) const;

    /** Did the constraints contradict each other? */
    bool coherenceViolation() const { return violation; }

    // --- Allocation-free access (the graph builder's hot path) --------

    /** Real stores of @p loc; order index i+1 maps to storesAt(loc)[i]. */
    const std::vector<OpId> &
    storesAt(std::uint32_t loc) const
    {
        return locStores[loc];
    }

    /**
     * Order index of @p w at @p loc (0 = virtual initial store).
     * Throws ConfigError when @p w does not write @p loc.
     */
    std::uint32_t indexOf(std::uint32_t loc, std::optional<OpId> w) const;

    /** before() on raw order indices (0 = virtual initial store). */
    bool
    orderedByIndex(std::uint32_t loc, std::uint32_t from,
                   std::uint32_t to) const
    {
        const std::uint64_t *row =
            reach.data() + locOffset[loc] +
            static_cast<std::size_t>(from) * locWords[loc];
        return (row[to >> 6] >> (to & 63)) & 1;
    }

  private:
    /** One rule-(b)/(c)/(d) constraint discovered by a thread walk. */
    struct ThreadConstraint
    {
        std::uint32_t loc = 0;
        std::uint32_t from = 0;
        std::uint32_t to = 0;

        bool
        operator==(const ThreadConstraint &other) const
        {
            return loc == other.loc && from == other.from &&
                to == other.to;
        }
    };

    /** Rebuild the per-program layout when the program changed. */
    void bindProgram(const TestProgram &program);

    /** Zero all reachability bits, seed init-store edges. */
    void resetOrders();

    void addConstraint(std::uint32_t loc, std::uint32_t from,
                       std::uint32_t to);

    /** Transitive closure of every per-location order. */
    void close();

    /** Re-derive threadCons/threadViol of one thread from scratch. */
    void walkThread(const TestProgram &program,
                    const Execution &execution, std::uint32_t tid);

    /** Rebuild and re-close one location's order from the cached
     * constraint lists (zero rows, seed init, apply, closure). */
    void rebuildLoc(std::uint32_t loc);

    /** violation = any thread-walk or per-location contradiction. */
    void recomputeViolation();

    bool bound = false;
    std::uint64_t boundFingerprint = 0;

    // Per-program layout: per-location store lists and the geometry of
    // the flat reachability bitset (row count n = stores + 1 virtual
    // init, words per row, row-0 offset into `reach`).
    std::vector<std::vector<OpId>> locStores;
    std::vector<std::uint32_t> locN;
    std::vector<std::uint32_t> locWords;
    std::vector<std::size_t> locOffset;
    std::size_t reachSize = 0;

    /** reach bit (loc, i, j): i coherence-before j. */
    std::vector<std::uint64_t> reach;

    // Per-thread walk scratch of infer(), reused across threads/calls.
    std::vector<std::optional<OpId>> lastStore;
    std::vector<std::optional<std::uint32_t>> pendingRead;

    // Incremental state: rule-(a) constraints per location (program
    // property), the last walk's constraints/contradiction per thread,
    // and per-location violation/changed flags from the last closure.
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        staticCons;
    std::vector<std::vector<ThreadConstraint>> threadCons;
    std::vector<std::uint8_t> threadViol;
    std::vector<std::uint8_t> locViol;
    std::vector<std::uint8_t> locDirty;
    std::vector<std::uint8_t> locPending;      ///< delta scratch
    std::vector<ThreadConstraint> oldCons;     ///< delta scratch
    std::vector<std::uint64_t> prevRows;       ///< delta scratch
    bool haveState = false; ///< an infer() ran since the last bind

    bool violation = false;
};

} // namespace mtc

#endif // MTC_GRAPH_WS_INFERENCE_H
