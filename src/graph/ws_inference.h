/**
 * @file
 * Write-serialization (coherence-order) inference.
 *
 * The checker needs ws edges to derive from-read (fr) edges, but a
 * purely software post-silicon flow cannot observe the coherence order
 * directly. The paper states the write-serialization order is gathered
 * during instrumentation; literally static knowledge is impossible for
 * cross-thread stores, so — as documented in DESIGN.md — we infer a
 * sound partial order from the observed reads-from relationships in the
 * style of TSOtool [Hangal et al., ISCA'04]:
 *
 *  (a) same-thread stores to one location are coherence-ordered in
 *      program order;
 *  (b) if load L reads store W, the last same-thread store W_prev to
 *      that location preceding L must be coherence-before W;
 *  (c) if load L reads W, the first same-thread store to that location
 *      following L must be coherence-after W;
 *  (d) two program-ordered loads of one location in one thread must
 *      read coherence-non-decreasing stores (CoRR).
 *
 * The initial value is modelled as a virtual store that precedes every
 * real store. A contradiction among these constraints (a cycle in the
 * per-location order) is itself a coherence violation and is reported
 * via coherenceViolation().
 */

#ifndef MTC_GRAPH_WS_INFERENCE_H
#define MTC_GRAPH_WS_INFERENCE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "testgen/execution.h"
#include "testgen/test_program.h"

namespace mtc
{

/**
 * Per-location partial coherence order over stores (plus the virtual
 * initial store). Build either by inference from an execution or from
 * simulator ground truth.
 */
class WsOrder
{
  public:
    /** Infer from the observed reads-from of @p execution. */
    WsOrder(const TestProgram &program, const Execution &execution);

    /** Adopt the executor-exported total order (testing only). */
    static WsOrder fromGroundTruth(const TestProgram &program,
                                   const Execution &execution);

    /**
     * Is @p w1 known to be coherence-before @p w2 at @p loc?
     * std::nullopt denotes the virtual initial store.
     */
    bool before(std::uint32_t loc, std::optional<OpId> w1,
                std::optional<OpId> w2) const;

    /** All stores known to be coherence-after @p w at @p loc. */
    std::vector<OpId> successorsOf(std::uint32_t loc,
                                   std::optional<OpId> w) const;

    /**
     * Ordered store pairs (w1 coherence-before w2) at @p loc,
     * including only real stores (fr/ws edge material).
     */
    std::vector<std::pair<OpId, OpId>>
    orderedPairs(std::uint32_t loc) const;

    /** Did the constraints contradict each other? */
    bool coherenceViolation() const { return violation; }

  private:
    explicit WsOrder(const TestProgram &program);

    struct LocOrder
    {
        std::vector<OpId> stores;          ///< index 1.. maps here
        /** reach[i] bitset: j reachable from i (i before j). */
        std::vector<std::vector<std::uint64_t>> reach;
    };

    std::uint32_t indexOf(std::uint32_t loc, std::optional<OpId> w) const;
    void addConstraint(std::uint32_t loc, std::uint32_t from,
                       std::uint32_t to);
    void close();

    const TestProgram *prog;
    std::vector<LocOrder> locs;
    /** Raw constraint edges per loc gathered before closure. */
    std::vector<std::vector<std::pair<std::uint32_t, std::uint32_t>>>
        rawEdges;
    bool violation = false;
};

} // namespace mtc

#endif // MTC_GRAPH_WS_INFERENCE_H
