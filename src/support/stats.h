/**
 * @file
 * Lightweight statistics accumulators used by the experiment harness.
 *
 * RunningStat implements Welford's online algorithm so means and
 * variances over millions of samples remain numerically stable.
 * Histogram is a fixed-bucket counter used for signature-size and
 * re-sort-window distributions.
 */

#ifndef MTC_SUPPORT_STATS_H
#define MTC_SUPPORT_STATS_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mtc
{

/** Online mean/variance/min/max accumulator (Welford). */
class RunningStat
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one (parallel-safe combine). */
    void merge(const RunningStat &other);

    /**
     * Rebuild an accumulator from journaled (sum, count) alone — the
     * two moments the campaign summary consumes. Variance, min and max
     * are NOT recoverable from a sum and are left zeroed; replayed
     * stats must only ever feed sum()/count()/mean() readers (which is
     * all `summarize` uses).
     */
    static RunningStat fromSumCount(double sum, std::size_t count);

    std::size_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? runningMean : 0.0; }

    /** Population variance; zero with fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    double minimum() const;
    double maximum() const;

    /** One-line human-readable summary, e.g.\ for log output. */
    std::string summary() const;

  private:
    std::size_t n = 0;
    double runningMean = 0.0;
    double m2 = 0.0;
    double total = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/** Fixed-width-bucket histogram over non-negative integer samples. */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket (>= 1).
     * @param num_buckets  Number of buckets; samples beyond the last
     *                     bucket are accumulated in an overflow bin.
     */
    Histogram(std::uint64_t bucket_width, std::size_t num_buckets);

    void add(std::uint64_t x);

    std::size_t count() const { return samples; }
    std::uint64_t bucketCount(std::size_t idx) const;
    std::uint64_t overflowCount() const { return overflow; }
    std::size_t numBuckets() const { return buckets.size(); }
    std::uint64_t bucketWidth() const { return width; }

    /** Smallest sample value falling into bucket @p idx. */
    std::uint64_t bucketLow(std::size_t idx) const { return idx * width; }

    /** Render as "lo-hi: count" lines; empty buckets are skipped. */
    std::string render() const;

  private:
    std::uint64_t width;
    std::vector<std::uint64_t> buckets;
    std::uint64_t overflow = 0;
    std::size_t samples = 0;
};

/** Geometric mean of a list of strictly positive values. */
double geometricMean(const std::vector<double> &values);

} // namespace mtc

#endif // MTC_SUPPORT_STATS_H
