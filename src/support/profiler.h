/**
 * @file
 * Lightweight phase profiler for the validation hot path.
 *
 * The flow's inner loop is the product the paper sells (signature
 * collection must stay cheap relative to execution), so its cost
 * structure has to be measurable, not folklore. A PhaseProfiler hands
 * out scoped steady-clock timers for the named pipeline phases;
 * per-phase nanoseconds and entry counts aggregate into a
 * PhaseBreakdown that FlowResult carries, `mtc_validate --profile`
 * prints, and `bench/hotpath` records into BENCH_hotpath.json.
 *
 * Profiling is opt-in: a disabled profiler's scopes never touch the
 * clock, so the default flow pays one predictable branch per scope and
 * nothing else.
 */

#ifndef MTC_SUPPORT_PROFILER_H
#define MTC_SUPPORT_PROFILER_H

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace mtc
{

/** Pipeline phases of one flow run (see ValidationFlow::runTest). */
enum class Phase : std::uint8_t
{
    Instrument,    ///< static analysis + plan + codec construction
    BatchDispatch, ///< lane-seed derivation + batch bookkeeping
    Execute,       ///< platform run (per batch dispatch)
    Encode,        ///< signature encoding + perturbation model
    Accumulate,    ///< readout faults + hash accumulation
    SortUnique,    ///< final sort of the unique signatures
    Decode,        ///< decode + observed-edge derivation
    Check,         ///< collective (+ conventional) checking + witness
    Confirm,       ///< K-re-execution confirmation
};

constexpr std::size_t kPhaseCount = 9;

/** Short stable name of a phase ("execute", "encode", ...). */
const char *phaseName(Phase phase);

/** Aggregated per-phase timings of one or more flow runs. */
struct PhaseBreakdown
{
    std::array<std::uint64_t, kPhaseCount> ns{};
    std::array<std::uint64_t, kPhaseCount> count{};

    /** Wall-clock of the run(s) the phases were carved from. */
    std::uint64_t totalNs = 0;

    /** True when at least one phase was ever entered. */
    bool
    enabled() const
    {
        for (std::uint64_t c : count)
            if (c)
                return true;
        return false;
    }

    std::uint64_t
    phaseNs(Phase phase) const
    {
        return ns[static_cast<std::size_t>(phase)];
    }

    std::uint64_t
    phaseCount(Phase phase) const
    {
        return count[static_cast<std::size_t>(phase)];
    }

    /** Sum of all phase times (excludes unattributed glue). */
    std::uint64_t
    sumNs() const
    {
        std::uint64_t total = 0;
        for (std::uint64_t v : ns)
            total += v;
        return total;
    }

    /** Fraction of the total wall-clock the phases account for. */
    double
    coverage() const
    {
        return totalNs
            ? static_cast<double>(sumNs()) / static_cast<double>(totalNs)
            : 0.0;
    }

    /** Fold another breakdown (e.g. another test's) into this one. */
    void merge(const PhaseBreakdown &other);
};

/**
 * Scoped-timer factory for one flow run. Construct enabled, wrap each
 * phase in a `scope(...)`, and call take() at the end to collect the
 * breakdown (with the profiler's own lifetime as the total).
 */
class PhaseProfiler
{
  public:
    using Clock = std::chrono::steady_clock;

    explicit PhaseProfiler(bool enabled_arg) : on(enabled_arg)
    {
        if (on)
            birth = Clock::now();
    }

    bool enabled() const { return on; }

    /** RAII timer attributing its lifetime to @p phase. */
    class Scope
    {
      public:
        Scope(PhaseProfiler &profiler, Phase phase_arg)
            : prof(profiler.on ? &profiler : nullptr), phase(phase_arg)
        {
            if (prof)
                start = Clock::now();
        }

        ~Scope()
        {
            if (prof)
                prof->add(phase, Clock::now() - start);
        }

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        PhaseProfiler *prof;
        Phase phase;
        Clock::time_point start;
    };

    Scope scope(Phase phase) { return Scope(*this, phase); }

    /**
     * Credit @p ns_arg of pre-measured work to @p phase as
     * @p calls entries. The overlapped streaming pipeline accrues
     * per-item times (possibly off-thread) and records them once,
     * because a Scope cannot span a producer/consumer hand-off.
     */
    void
    record(Phase phase, std::uint64_t ns_arg, std::uint64_t calls = 1)
    {
        if (!on)
            return;
        const std::size_t i = static_cast<std::size_t>(phase);
        breakdown.ns[i] += ns_arg;
        breakdown.count[i] += calls;
    }

    /**
     * The breakdown accumulated so far; totalNs spans from
     * construction to this call. Disabled profilers return an
     * all-zero breakdown.
     */
    PhaseBreakdown
    take() const
    {
        PhaseBreakdown out = breakdown;
        if (on) {
            out.totalNs = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - birth)
                    .count());
        }
        return out;
    }

  private:
    void
    add(Phase phase, Clock::duration elapsed)
    {
        const std::size_t i = static_cast<std::size_t>(phase);
        breakdown.ns[i] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count());
        ++breakdown.count[i];
    }

    bool on;
    Clock::time_point birth{};
    PhaseBreakdown breakdown;
};

} // namespace mtc

#endif // MTC_SUPPORT_PROFILER_H
