/**
 * @file
 * Minimal TCP plumbing for the distributed campaign fabric.
 *
 * A connected socket is just a file descriptor, so the length+FNV-1a
 * frame codec (src/support/framing.h) that already serves the journal
 * and the sandbox pipes serves the network unchanged — this layer only
 * establishes connections. Loopback-first by design: the coordinator
 * binds 127.0.0.1 unless told otherwise; exposing a routable interface
 * is an operator decision that should come with a pre-shared fabric
 * key (src/support/transport.h grows per-frame HMAC + sequencing once
 * the authenticated handshake completes).
 */

#ifndef MTC_SUPPORT_SOCKET_H
#define MTC_SUPPORT_SOCKET_H

#include <cstdint>
#include <string>

#include "support/error.h"

namespace mtc
{

/** A failed socket-layer syscall (socket, bind, listen, connect). */
class SocketError : public Error
{
  public:
    explicit SocketError(const std::string &what_arg) : Error(what_arg)
    {}
};

/**
 * Listening TCP socket, RAII. Port 0 asks the kernel for an ephemeral
 * port; port() reports what was actually bound so scripts and tests
 * never race over fixed port numbers.
 */
class TcpListener
{
  public:
    /**
     * Bind @p host:@p port and listen.
     * @throws SocketError if any step fails (port in use, bad host).
     */
    explicit TcpListener(std::uint16_t port,
                         const std::string &host = "127.0.0.1");
    ~TcpListener();

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** The bound port (the kernel's pick when constructed with 0). */
    std::uint16_t port() const { return boundPort; }

    /** The listening descriptor, for poll(). */
    int fd() const { return listenFd; }

    /**
     * Accept one connection (blocking, EINTR-retried). The returned
     * descriptor is the caller's to close; TCP_NODELAY is set so
     * small request/response frames are not Nagle-delayed.
     * @throws SocketError on failure.
     */
    int acceptClient();

    /**
     * Stop listening (idempotent; the destructor also closes). After
     * this, connection attempts are refused outright and anything
     * still queued in the accept backlog is reset by the kernel —
     * a definitive "no" instead of an unanswered wait.
     */
    void close();

  private:
    int listenFd = -1;
    std::uint16_t boundPort = 0;
};

/**
 * Connect to @p host:@p port (blocking, EINTR-retried, TCP_NODELAY).
 * Returns the connected descriptor, owned by the caller.
 * @throws SocketError when the peer is unreachable or refuses.
 */
int connectTcp(const std::string &host, std::uint16_t port);

} // namespace mtc

#endif // MTC_SUPPORT_SOCKET_H
