#include "support/profiler.h"

namespace mtc
{

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Instrument:
        return "instrument";
      case Phase::BatchDispatch:
        return "batch-dispatch";
      case Phase::Execute:
        return "execute";
      case Phase::Encode:
        return "encode";
      case Phase::Accumulate:
        return "accumulate";
      case Phase::SortUnique:
        return "sort-unique";
      case Phase::Decode:
        return "decode";
      case Phase::Check:
        return "check";
      case Phase::Confirm:
        return "confirm";
    }
    return "unknown";
}

void
PhaseBreakdown::merge(const PhaseBreakdown &other)
{
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
        ns[i] += other.ns[i];
        count[i] += other.count[i];
    }
    totalNs += other.totalNs;
}

} // namespace mtc
