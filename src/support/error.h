/**
 * @file
 * Exception hierarchy shared by all MTraceCheck libraries.
 *
 * We distinguish errors that indicate a misuse of the library by its
 * caller (ConfigError) from errors raised by the platform under
 * validation (PlatformError and its descendants). The latter category
 * is load-bearing: the bug-injection case studies of the paper
 * (Section 7) report "crash" outcomes for protocol deadlocks, which we
 * surface as ProtocolDeadlockError from the timed simulator.
 */

#ifndef MTC_SUPPORT_ERROR_H
#define MTC_SUPPORT_ERROR_H

#include <stdexcept>
#include <string>

namespace mtc
{

/** Base class for every exception thrown by MTraceCheck. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** The caller supplied an invalid configuration or argument. */
class ConfigError : public Error
{
  public:
    explicit ConfigError(const std::string &what_arg) : Error(what_arg) {}
};

/** Something went wrong inside the platform under validation. */
class PlatformError : public Error
{
  public:
    explicit PlatformError(const std::string &what_arg) : Error(what_arg) {}
};

/**
 * The simulated coherence protocol stopped making forward progress.
 * This is the observable for bug 3 of the paper's Section 7 ("crashing
 * all gem5 simulations with internal error messages").
 */
class ProtocolDeadlockError : public PlatformError
{
  public:
    explicit ProtocolDeadlockError(const std::string &what_arg)
        : PlatformError(what_arg)
    {}
};

/**
 * The platform run was abandoned by cooperative cancellation: the
 * watchdog's per-test deadline expired and the scheduler loop observed
 * the stop request. Distinct from ProtocolDeadlockError — a hang is a
 * liveness verdict about wall-clock, not a protocol-level crash — so
 * the campaign can report the unit as Hung rather than crashed.
 */
class TestHungError : public PlatformError
{
  public:
    explicit TestHungError(const std::string &what_arg)
        : PlatformError(what_arg)
    {}
};

/**
 * The tail assertion of the instrumented signature-computation code
 * fired: a load observed a value outside its statically computed
 * candidate set (Section 3.1, Figure 4 of the paper).
 */
class SignatureAssertError : public PlatformError
{
  public:
    explicit SignatureAssertError(const std::string &what_arg)
        : PlatformError(what_arg)
    {}
};

} // namespace mtc

#endif // MTC_SUPPORT_ERROR_H
