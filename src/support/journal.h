/**
 * @file
 * Write-ahead campaign journal: append-only, checksum-framed records.
 *
 * Long post-silicon campaigns die for boring reasons — operator
 * preemption, OOM kills, power events — and losing a million completed
 * iterations to a SIGKILL is a throughput disaster (the paper's
 * Section 5 campaigns run for hours). The journal makes completed
 * (config, test) units durable: each record is framed as
 *
 *     [u32 payload length][u32 FNV-1a checksum][payload bytes]
 *
 * (little-endian, the shared codec in src/support/framing.h), appended
 * with batched fsync. On resume the reader walks the file from the
 * front and keeps the longest prefix of intact frames; a tail torn by
 * the kill — a partial length word, a partial payload, a checksum
 * mismatch — is detected and dropped, the file is truncated back to
 * the valid prefix, and appending continues from there. Nothing in
 * this layer knows what a payload means; record semantics (campaign
 * identity, unit results) live in src/harness/campaign_journal.h,
 * keeping this file free of harness dependencies.
 */

#ifndef MTC_SUPPORT_JOURNAL_H
#define MTC_SUPPORT_JOURNAL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/framing.h"

namespace mtc
{

/** An I/O or framing failure in the journal layer. */
class JournalError : public Error
{
  public:
    explicit JournalError(const std::string &what_arg) : Error(what_arg)
    {}
};

/**
 * Little-endian payload encoder. Fixed-width fields only: a record
 * must decode bit-identically on any host, and doubles are stored as
 * their IEEE-754 bit patterns so a replayed summary reproduces the
 * original run's arithmetic inputs exactly.
 */
class ByteWriter
{
  public:
    void u8(std::uint8_t v) { buf.push_back(v); }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    /** Stored as the IEEE-754 bit pattern (bit-exact round trip). */
    void f64(double v);

    /** u32 length prefix + raw bytes. */
    void str(const std::string &v);

    const std::vector<std::uint8_t> &bytes() const { return buf; }

  private:
    std::vector<std::uint8_t> buf;
};

/** Decoder matching ByteWriter; underruns throw JournalError. */
class ByteReader
{
  public:
    explicit ByteReader(const std::vector<std::uint8_t> &bytes)
        : p(bytes.data()), end(bytes.data() + bytes.size())
    {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    std::string str();

    bool exhausted() const { return p == end; }

    /** Bytes left to read. Callers decoding untrusted length prefixes
     * must bound their allocations by this — a forged count must be
     * rejected as truncation, never attempted as an allocation. */
    std::size_t remaining() const
    {
        return static_cast<std::size_t>(end - p);
    }

  private:
    void need(std::size_t n) const;

    const std::uint8_t *p;
    const std::uint8_t *end;
};

/**
 * Append-only journal writer with batched fsync.
 *
 * Every append is written (frame header + payload) with one write();
 * fsync is issued every `fsync_every` records and on destruction, so
 * a crash loses at most the last batch — and whatever it loses is a
 * clean record boundary or a torn tail the reader recovers from
 * either way. Thread-compatible, not thread-safe: callers serialize
 * appends (CampaignJournal holds the mutex).
 */
class JournalWriter
{
  public:
    /**
     * Open @p path for appending, creating it if absent.
     *
     * @param fsync_every Records between fsyncs; 0 syncs every record.
     * @throws JournalError if the file cannot be opened.
     */
    explicit JournalWriter(std::string path, unsigned fsync_every = 8);

    /** Flushes (fsync) and closes; I/O errors here are swallowed —
     * throwing from a destructor mid-unwind would abort the campaign
     * the journal exists to protect. */
    ~JournalWriter();

    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Frame @p payload and append it. @throws JournalError on I/O
     * failure (short write, disk full). */
    void append(const std::vector<std::uint8_t> &payload);

    /** Force an fsync now (end-of-campaign barrier). */
    void sync();

    std::uint64_t recordsWritten() const { return records; }

  private:
    std::string path;
    int fd = -1;
    unsigned fsyncEvery;
    unsigned sinceSync = 0;
    std::uint64_t records = 0;
};

/** Result of scanning a journal file for its valid prefix. */
struct JournalRecovery
{
    /** Payloads of every intact record, in file order. */
    std::vector<std::vector<std::uint8_t>> records;

    /** Byte length of the valid prefix (torn tail starts here). */
    std::uint64_t validBytes = 0;

    /** Bytes dropped behind the last intact record (0 = clean file). */
    std::uint64_t droppedBytes = 0;
};

/**
 * Scan @p path front to back, keeping the longest prefix of intact
 * frames. A missing file yields an empty recovery (a campaign that
 * never checkpointed resumes from nothing). Corruption past the valid
 * prefix is reported, not thrown: a torn tail is the expected product
 * of a SIGKILL, not an error.
 */
JournalRecovery readJournal(const std::string &path);

/**
 * Truncate @p path to @p recovery's valid prefix so a writer can
 * append after the last intact record. No-op when nothing was torn.
 * @throws JournalError on I/O failure.
 */
void truncateToValidPrefix(const std::string &path,
                           const JournalRecovery &recovery);

} // namespace mtc

#endif // MTC_SUPPORT_JOURNAL_H
