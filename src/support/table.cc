#include "support/table.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "support/error.h"

namespace mtc
{

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : header(std::move(headers))
{
    if (header.empty())
        throw ConfigError("TablePrinter needs at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != header.size())
        throw ConfigError("TablePrinter row width mismatch");
    rows.push_back(std::move(cells));
}

std::string
TablePrinter::fmt(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
TablePrinter::fmt(std::uint64_t value)
{
    return std::to_string(value);
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << fraction * 100.0
       << "%";
    return os.str();
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << (c ? "  " : "");
            // Left-align the first column (labels), right-align the rest.
            if (c == 0)
                os << std::left;
            else
                os << std::right;
            os << std::setw(static_cast<int>(widths[c])) << row[c];
        }
        os << "\n";
    };

    print_row(header);
    std::size_t total = header.size() * 2 - 2;
    for (auto w : widths)
        total += w;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows)
        print_row(row);
}

std::string
TablePrinter::toCsv() const
{
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            // Quote cells containing commas.
            if (row[c].find(',') != std::string::npos)
                os << '"' << row[c] << '"';
            else
                os << row[c];
        }
        os << "\n";
    };
    emit(header);
    for (const auto &row : rows)
        emit(row);
    return os.str();
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::ofstream out(path);
    if (!out)
        throw ConfigError("cannot open output file: " + path);
    out << contents;
}

} // namespace mtc
