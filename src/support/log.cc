#include "support/log.h"

#include <cerrno>
#include <iostream>

#include <unistd.h>

namespace mtc
{

namespace
{

LogLevel global_level = LogLevel::Warn;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      default:
        return "?";
    }
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

void
logMessage(LogLevel level, const std::string &text)
{
    if (level < global_level || global_level == LogLevel::Silent)
        return;
    std::cerr << "[mtc:" << levelTag(level) << "] " << text << "\n";
}

void
EmergencyLine::put(char c) noexcept
{
    // Reserve one byte for the trailing '\n' writeTo appends.
    if (len + 1 < sizeof(buf) - 1)
        buf[len++] = c;
    buf[len] = '\0';
}

EmergencyLine &
EmergencyLine::text(const char *s) noexcept
{
    if (s)
        while (*s)
            put(*s++);
    return *this;
}

EmergencyLine &
EmergencyLine::num(unsigned long long v) noexcept
{
    char digits[24];
    std::size_t n = 0;
    do {
        digits[n++] = static_cast<char>('0' + v % 10);
        v /= 10;
    } while (v);
    while (n)
        put(digits[--n]);
    return *this;
}

EmergencyLine &
EmergencyLine::hex(unsigned long long v) noexcept
{
    static const char map[] = "0123456789abcdef";
    char digits[16];
    std::size_t n = 0;
    do {
        digits[n++] = map[v & 0xf];
        v >>= 4;
    } while (v);
    put('0');
    put('x');
    while (n)
        put(digits[--n]);
    return *this;
}

void
EmergencyLine::writeTo(int fd) noexcept
{
    const int saved_errno = errno;
    buf[len] = '\n';
    std::size_t total = len + 1;
    const char *p = buf;
    while (total) {
        const ssize_t n = ::write(fd, p, total);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break; // nowhere safe to report a failed crash report
        }
        p += n;
        total -= static_cast<std::size_t>(n);
    }
    buf[len] = '\0';
    errno = saved_errno;
}

void
emergencyLog(const char *msg) noexcept
{
    EmergencyLine line;
    line.text("[mtc:fatal] ").text(msg);
    line.writeTo(2);
}

} // namespace mtc
