#include "support/log.h"

#include <iostream>

namespace mtc
{

namespace
{

LogLevel global_level = LogLevel::Warn;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      default:
        return "?";
    }
}

} // anonymous namespace

void
setLogLevel(LogLevel level)
{
    global_level = level;
}

LogLevel
logLevel()
{
    return global_level;
}

void
logMessage(LogLevel level, const std::string &text)
{
    if (level < global_level || global_level == LogLevel::Silent)
        return;
    std::cerr << "[mtc:" << levelTag(level) << "] " << text << "\n";
}

} // namespace mtc
