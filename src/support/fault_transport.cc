#include "support/fault_transport.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include <poll.h>

namespace mtc
{

namespace
{

void
sleepMs(std::uint32_t ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // anonymous namespace

FaultyTransport::FaultyTransport(Transport &&inner_transport,
                                 const NetFaultConfig &fault_config)
    : inner(std::move(inner_transport)), cfg(fault_config),
      rng(fault_config.seed)
{}

void
FaultyTransport::writeWithFaults(std::vector<std::uint8_t> frame)
{
    const NetFaultRates &r = cfg.send;

    if (rng.nextBool(r.drop)) {
        ++faultStats.sendDrops;
        return;
    }

    if (rng.nextBool(r.disconnect)) {
        // Cut the wire mid-frame: the peer sees a torn frame, and this
        // endpoint's connection is gone. Half the bytes go out first
        // so the tear lands inside the frame, not at a boundary.
        ++faultStats.sendDisconnects;
        const std::size_t half = std::max<std::size_t>(1, frame.size() / 2);
        try {
            inner.sendRaw(frame.data(), half);
        } catch (const FramingError &) {
            // The wire was already dead; the close below still runs.
        }
        inner.close();
        throw FramingError("fault injection: mid-frame disconnect");
    }

    if (rng.nextBool(r.delay)) {
        ++faultStats.sendDelays;
        sleepMs(cfg.delayMs);
    }

    if (rng.nextBool(r.corrupt)) {
        ++faultStats.sendCorrupts;
        const std::size_t bit = rng.pickIndex(frame.size() * 8);
        frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }

    if (rng.nextBool(r.drip)) {
        // Trickle the frame out in small chunks with pauses between —
        // a slow or congested peer, not a dead one.
        ++faultStats.sendDrips;
        const std::size_t chunk =
            std::max<std::size_t>(1, frame.size() / 4);
        std::size_t off = 0;
        while (off < frame.size()) {
            const std::size_t n =
                std::min(chunk, frame.size() - off);
            inner.sendRaw(frame.data() + off, n);
            off += n;
            if (off < frame.size())
                sleepMs(1);
        }
    } else {
        inner.sendRaw(frame.data(), frame.size());
    }

    if (rng.nextBool(r.duplicate)) {
        ++faultStats.sendDuplicates;
        inner.sendRaw(frame.data(), frame.size());
    }
}

void
FaultyTransport::send(const std::vector<std::uint8_t> &payload)
{
    // Serialize through the inner transport so the auth envelope (when
    // armed) is applied exactly once, before fault mangling.
    std::vector<std::uint8_t> frame = inner.buildFrame(payload);

    if (holdingFrame) {
        // A previous frame is held back by a reorder fault: send the
        // new frame first, then release the held one — the swap IS
        // the reorder.
        std::vector<std::uint8_t> held = std::move(heldFrame);
        holdingFrame = false;
        writeWithFaults(std::move(frame));
        writeWithFaults(std::move(held));
        return;
    }
    if (rng.nextBool(cfg.send.reorder)) {
        ++faultStats.sendReorders;
        heldFrame = std::move(frame);
        holdingFrame = true;
        return;
    }
    writeWithFaults(std::move(frame));
}

bool
FaultyTransport::receive(std::vector<std::uint8_t> &payload)
{
    if (duplicatePending) {
        duplicatePending = false;
        payload = std::move(duplicatedRecv);
        return true;
    }
    const NetFaultRates &r = cfg.recv;
    for (;;) {
        if (!inner.receive(payload))
            return false;
        if (rng.nextBool(r.drop) && inputPending()) {
            // Drop only when more input is already on the wire. This
            // receive() is blocking, and the fabric's event loops call
            // it only when data is pending — if the discarded frame
            // was the last one in flight (its sender now waiting for a
            // reply), looping into a blocking read would freeze the
            // caller. Frozen in a coordinator, that stops the very
            // timer loop (handshake / lease / heartbeat deadlines)
            // whose job is to recover from losses, deadlocking the
            // whole fabric. The RNG draw happens either way, so the
            // fault schedule stays seed-deterministic.
            ++faultStats.recvDrops;
            continue; // the frame never arrived
        }
        if (rng.nextBool(r.corrupt)) {
            // Wire corruption on the inbound path surfaces as the
            // checksum failure the codec would have raised.
            ++faultStats.recvCorrupts;
            throw FramingError(
                "fault injection: inbound frame corrupted");
        }
        if (rng.nextBool(r.delay)) {
            ++faultStats.recvDelays;
            sleepMs(cfg.delayMs);
        }
        if (rng.nextBool(r.duplicate)) {
            ++faultStats.recvDuplicates;
            duplicatedRecv = payload;
            duplicatePending = true;
        }
        return true;
    }
}

bool
FaultyTransport::inputPending() const
{
    const int fd = inner.receiveFd();
    if (fd < 0)
        return false;
    pollfd pfd{fd, POLLIN, 0};
    // POLLHUP/POLLERR count as pending too: the next read resolves
    // immediately (EOF / error), so dropping cannot block the caller.
    return ::poll(&pfd, 1, 0) > 0 &&
           (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

void
FaultyTransport::closeSend()
{
    if (holdingFrame) {
        // Don't let a reorder fault swallow the last frame before a
        // half-close — flush it (faults still apply).
        holdingFrame = false;
        try {
            writeWithFaults(std::move(heldFrame));
        } catch (const FramingError &) {
            // Best-effort flush; the close still proceeds.
        }
    }
    inner.closeSend();
}

void
FaultyTransport::close()
{
    inner.close();
}

} // namespace mtc
