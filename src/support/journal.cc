#include "support/journal.h"

#include <cerrno>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

namespace mtc
{

void
ByteWriter::f64(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
}

void
ByteWriter::str(const std::string &v)
{
    u32(static_cast<std::uint32_t>(v.size()));
    buf.insert(buf.end(), v.begin(), v.end());
}

void
ByteReader::need(std::size_t n) const
{
    if (static_cast<std::size_t>(end - p) < n)
        throw JournalError("journal record payload truncated");
}

std::uint8_t
ByteReader::u8()
{
    need(1);
    return *p++;
}

std::uint32_t
ByteReader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(*p++) << (8 * i);
    return v;
}

std::uint64_t
ByteReader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(*p++) << (8 * i);
    return v;
}

double
ByteReader::f64()
{
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
ByteReader::str()
{
    const std::uint32_t len = u32();
    need(len);
    std::string v(reinterpret_cast<const char *>(p), len);
    p += len;
    return v;
}

namespace
{

void
writeAll(int fd, const std::uint8_t *data, std::size_t len,
         const std::string &path)
{
    while (len) {
        const ssize_t n = ::write(fd, data, len);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            throw JournalError("journal write failed: " + path + ": " +
                               std::strerror(errno));
        }
        data += n;
        len -= static_cast<std::size_t>(n);
    }
}

} // anonymous namespace

JournalWriter::JournalWriter(std::string path_arg, unsigned fsync_every)
    : path(std::move(path_arg)), fsyncEvery(fsync_every)
{
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd < 0) {
        throw JournalError("cannot open journal: " + path + ": " +
                           std::strerror(errno));
    }
}

JournalWriter::~JournalWriter()
{
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}

void
JournalWriter::append(const std::vector<std::uint8_t> &payload)
{
    // Header and payload go out in one buffer so a crash tears at
    // most one frame — exactly the failure readJournal recovers from.
    std::vector<std::uint8_t> frame;
    appendFrame(frame, payload.data(), payload.size());
    writeAll(fd, frame.data(), frame.size(), path);
    ++records;
    if (++sinceSync >= fsyncEvery) {
        sinceSync = 0;
        if (::fsync(fd) != 0) {
            throw JournalError("journal fsync failed: " + path + ": " +
                               std::strerror(errno));
        }
    }
}

void
JournalWriter::sync()
{
    sinceSync = 0;
    if (fd >= 0 && ::fsync(fd) != 0) {
        throw JournalError("journal fsync failed: " + path + ": " +
                           std::strerror(errno));
    }
}

JournalRecovery
readJournal(const std::string &path)
{
    JournalRecovery recovery;
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return recovery; // no journal yet: resume from nothing

    std::vector<std::uint8_t> contents(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    const std::size_t size = contents.size();

    std::size_t off = 0;
    while (off < size) {
        const FrameView frame =
            parseFrame(contents.data() + off, size - off);
        if (frame.status != FrameStatus::Complete)
            break; // torn or corrupted frame: tail starts here
        recovery.records.emplace_back(frame.payload,
                                      frame.payload + frame.length);
        off += frame.frameBytes;
    }
    recovery.validBytes = off;
    recovery.droppedBytes = size - off;
    return recovery;
}

void
truncateToValidPrefix(const std::string &path,
                      const JournalRecovery &recovery)
{
    if (recovery.droppedBytes == 0)
        return;
    if (::truncate(path.c_str(),
                   static_cast<off_t>(recovery.validBytes)) != 0) {
        throw JournalError("cannot truncate torn journal tail: " + path +
                           ": " + std::strerror(errno));
    }
}

} // namespace mtc
