/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in MTraceCheck (test generation, executor
 * scheduling, interconnect latency jitter, ...) flows through Rng so
 * that every experiment is reproducible from a single 64-bit seed. The
 * generator is xoshiro256**, seeded through SplitMix64 as recommended
 * by its authors; it is small, fast and of far higher quality than
 * std::minstd_rand while avoiding the heavyweight state of mt19937.
 */

#ifndef MTC_SUPPORT_RNG_H
#define MTC_SUPPORT_RNG_H

#include <cstdint>
#include <vector>

#include "support/error.h"

namespace mtc
{

/** SplitMix64 step, used for seeding and for hashing seeds together. */
std::uint64_t splitMix64(std::uint64_t &state);

/**
 * xoshiro256** pseudo-random generator with convenience sampling
 * helpers. Satisfies the essentials of UniformRandomBitGenerator so it
 * can also drive standard-library distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~result_type(0); }

    /** Next raw 64-bit value. */
    result_type operator()();

    /** Uniform integer in [0, bound), bound must be > 0. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextInRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p of returning true. */
    bool nextBool(double p = 0.5);

    /** Uniformly pick an index into a non-empty container size. */
    std::size_t pickIndex(std::size_t size);

    /** Uniformly pick an element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &items)
    {
        if (items.empty())
            throw ConfigError("Rng::pick on empty vector");
        return items[pickIndex(items.size())];
    }

    /** Fisher-Yates shuffle of a vector, in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (std::size_t i = items.size(); i > 1; --i) {
            std::size_t j = pickIndex(i);
            std::swap(items[i - 1], items[j]);
        }
    }

    /**
     * Derive an independent child generator. Used to give each test /
     * iteration / core its own stream while remaining reproducible.
     */
    Rng split();

  private:
    std::uint64_t s[4];
};

} // namespace mtc

#endif // MTC_SUPPORT_RNG_H
