/**
 * @file
 * Length + FNV-1a record framing, shared by the journal and the
 * sandbox pipe IPC.
 *
 * A frame is
 *
 *     [u32 payload length][u32 header check][u32 FNV-1a checksum]
 *     [payload bytes]
 *
 * (little-endian), where the header check is FNV-1a over the four
 * length bytes. The length word steers how many bytes the reader
 * consumes next, so it must be validatable BEFORE those bytes are
 * read: without the check, a single corrupted length bit makes a
 * blocking reader wait for payload that was never sent — a stall no
 * payload checksum can catch, because that checksum is only testable
 * after the payload arrives. With it, a mangled header is classified
 * Corrupt immediately.
 *
 * The same codec serves two transports with two failure models: an
 * append-only journal file, where a torn tail is the expected product
 * of a SIGKILL and is recovered from silently (src/support/journal.h),
 * and a parent<->worker pipe, where a torn frame means the peer died
 * mid-record and is reported as an error so the sandbox can classify
 * the loss (src/harness/sandbox.h). This layer knows nothing about
 * payload semantics; it only frames bytes.
 */

#ifndef MTC_SUPPORT_FRAMING_H
#define MTC_SUPPORT_FRAMING_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"

namespace mtc
{

/** An I/O or integrity failure on a framed stream. */
class FramingError : public Error
{
  public:
    explicit FramingError(const std::string &what_arg) : Error(what_arg)
    {}
};

/** FNV-1a over @p len bytes — the frame checksum. */
std::uint32_t fnv1a32(const void *data, std::size_t len);

/** 64-bit FNV-1a, seedable so digests can be chained. */
std::uint64_t fnv1a64(const void *data, std::size_t len,
                      std::uint64_t seed = 0xcbf29ce484222325ull);

/** Bytes of frame header preceding every payload. */
constexpr std::size_t kFrameHeaderBytes = 12;

/** Frames larger than this are treated as corruption, not records: a
 * torn length word must not make a reader try to allocate gigabytes.
 * Unit records are a few KB. This is the default ceiling; readers on
 * untrusted streams (network transports) may tighten it per call. */
constexpr std::uint32_t kMaxFramePayloadBytes = 64u << 20;

void putLe32(std::uint8_t *out, std::uint32_t v);
std::uint32_t getLe32(const std::uint8_t *in);

/** Append [len][header check][checksum][payload] for @p payload. */
void appendFrame(std::vector<std::uint8_t> &out,
                 const std::uint8_t *payload, std::size_t len);

/** Outcome of scanning a byte range for one frame. */
enum class FrameStatus : std::uint8_t
{
    Complete,   ///< an intact frame starts at the scan position
    Incomplete, ///< header or payload extends past the range
    Corrupt     ///< absurd length or checksum mismatch
};

/** One parsed frame (valid only while the scanned bytes live). */
struct FrameView
{
    FrameStatus status = FrameStatus::Incomplete;
    const std::uint8_t *payload = nullptr;
    std::uint32_t length = 0;

    /** Header + payload bytes consumed when status is Complete. */
    std::size_t frameBytes = 0;
};

/**
 * Parse the frame starting at @p data (up to @p size bytes).
 *
 * @param max_payload Length ceiling: a header advertising more than
 *        this is classified Corrupt before any allocation happens —
 *        the defense against a forged or torn length word.
 */
FrameView parseFrame(const std::uint8_t *data, std::size_t size,
                     std::uint32_t max_payload = kMaxFramePayloadBytes);

/**
 * Write one frame to @p fd, retrying short writes and EINTR.
 *
 * @param what Stream name used in error messages.
 * @throws FramingError on I/O failure (EPIPE when the peer died).
 */
void writeFrame(int fd, const std::vector<std::uint8_t> &payload,
                const std::string &what);

/**
 * Write pre-built frame bytes to @p fd verbatim, retrying short
 * writes and EINTR — writeFrame() minus the framing, for callers
 * that already hold a serialized frame (fault-injection decorators).
 * @throws FramingError on I/O failure.
 */
void writeFrameBytes(int fd, const std::uint8_t *data, std::size_t len,
                     const std::string &what);

/**
 * Blocking-read one frame from @p fd into @p payload.
 *
 * @param max_payload Length ceiling, as for parseFrame(): an
 *        oversized header is a framing fault, never an allocation.
 * @param frame_deadline_ms When nonzero, the whole frame must arrive
 *        within this many milliseconds of its FIRST byte. Waiting for
 *        a frame to start still blocks indefinitely (an idle peer is
 *        not a fault), but a peer that starts a frame and then
 *        withholds the rest — a slow-loris, or a length word the
 *        header check somehow missed — is a framing fault, not a
 *        caller frozen forever. Mandatory hygiene for network streams
 *        whose reader is a single-threaded event loop.
 * @return true on a complete frame; false on clean EOF at a frame
 *         boundary (the peer closed its end between records).
 * @throws FramingError on EOF mid-frame (the peer died while
 *         writing), a header-check or checksum mismatch, an absurd
 *         length, a blown frame deadline, or an I/O error.
 */
bool readFrame(int fd, std::vector<std::uint8_t> &payload,
               const std::string &what,
               std::uint32_t max_payload = kMaxFramePayloadBytes,
               std::uint32_t frame_deadline_ms = 0);

} // namespace mtc

#endif // MTC_SUPPORT_FRAMING_H
