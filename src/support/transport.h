/**
 * @file
 * Framed record transport over file descriptors.
 *
 * One codec, two wires: the sandbox's parent<->worker pipe pair and
 * the fabric's TCP socket both move length+FNV-1a framed byte vectors
 * (src/support/framing.h). A Transport owns the descriptor(s) and
 * exposes exactly the send/receive/half-close surface both need, so
 * the pipe and network paths cannot drift apart — a framing fix or a
 * hardening rule (max frame size) lands in both at once.
 *
 * Thread-compatible, not thread-safe: concurrent senders serialize
 * outside (the worker client's heartbeat thread holds a send mutex).
 */

#ifndef MTC_SUPPORT_TRANSPORT_H
#define MTC_SUPPORT_TRANSPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/framing.h"

namespace mtc
{

/** Framed duplex channel over owned descriptor(s); see file comment. */
class Transport
{
  public:
    /** An unconnected transport; valid() is false. */
    Transport() = default;

    /** Pipe pair: distinct read and write descriptors, both owned. */
    Transport(int read_fd, int write_fd, std::string stream_name);

    /** Socket: one full-duplex descriptor, owned (closed once). */
    Transport(int socket_fd, std::string stream_name);

    ~Transport();

    Transport(const Transport &) = delete;
    Transport &operator=(const Transport &) = delete;
    Transport(Transport &&other) noexcept;
    Transport &operator=(Transport &&other) noexcept;

    bool valid() const { return rfd >= 0 || wfd >= 0; }

    /** Frame and send @p payload. @throws FramingError on I/O failure
     * (EPIPE / ECONNRESET when the peer died). */
    void send(const std::vector<std::uint8_t> &payload);

    /** Blocking-receive one frame. @return false on clean EOF at a
     * frame boundary; @throws FramingError on a torn or oversized
     * frame, a checksum mismatch, or an I/O error. */
    bool receive(std::vector<std::uint8_t> &payload);

    /**
     * Half-close the send direction while keeping receive open — the
     * shutdown signal both wires use (the peer sees clean EOF at its
     * next frame boundary). Closes the write fd for a pipe pair,
     * shutdown(SHUT_WR) for a socket.
     */
    void closeSend();

    /** Close everything now (destructor behavior, on demand). */
    void close();

    /** Descriptor the receive side reads, for poll(); -1 if closed. */
    int receiveFd() const { return rfd; }

    /**
     * Tighten the per-frame payload ceiling (default
     * kMaxFramePayloadBytes). A received header advertising more is a
     * framing fault, not an allocation — mandatory hygiene on network
     * streams where a corrupt or hostile peer writes the length word.
     */
    void setMaxFramePayload(std::uint32_t bytes) { maxPayload = bytes; }

  private:
    int rfd = -1;
    int wfd = -1;
    bool duplex = false; ///< rfd and wfd are the same socket
    std::string name = "transport";
    std::uint32_t maxPayload = kMaxFramePayloadBytes;
};

} // namespace mtc

#endif // MTC_SUPPORT_TRANSPORT_H
