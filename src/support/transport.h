/**
 * @file
 * Framed record transport over file descriptors.
 *
 * One codec, two wires: the sandbox's parent<->worker pipe pair and
 * the fabric's TCP socket both move length+FNV-1a framed byte vectors
 * (src/support/framing.h). A Transport owns the descriptor(s) and
 * exposes exactly the send/receive/half-close surface both need, so
 * the pipe and network paths cannot drift apart — a framing fix or a
 * hardening rule (max frame size) lands in both at once.
 *
 * The surface is virtual so decorators can interpose: FaultyTransport
 * (src/support/fault_transport.h) injects seeded network faults for
 * chaos drills without either endpoint knowing.
 *
 * After a fabric handshake derives a session key, enableFrameAuth()
 * arms a per-frame envelope: every payload is extended with a
 * monotonic 8-byte sequence number and a truncated HMAC-SHA256 tag
 * before framing. The checksum in the frame header catches accidents;
 * the MAC catches forgery, and the sequence number catches replayed
 * or reordered frames — either failure is an AuthError and the
 * connection is torn down.
 *
 * Thread-compatible, not thread-safe: concurrent senders serialize
 * outside (the worker client's heartbeat thread holds a send mutex).
 */

#ifndef MTC_SUPPORT_TRANSPORT_H
#define MTC_SUPPORT_TRANSPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/framing.h"

namespace mtc
{

/** A per-frame MAC or sequence-number failure on an authenticated
 * transport. Subtype of FramingError so every existing drop/reconnect
 * path treats it as the connection-fatal fault it is. */
class AuthError : public FramingError
{
  public:
    explicit AuthError(const std::string &what_arg)
        : FramingError(what_arg)
    {}
};

/** Bytes the auth envelope appends to every framed payload. */
constexpr std::size_t kFrameSeqBytes = 8;
constexpr std::size_t kFrameMacBytes = 16;
constexpr std::size_t kFrameAuthBytes =
    kFrameSeqBytes + kFrameMacBytes;

/** Framed duplex channel over owned descriptor(s); see file comment. */
class Transport
{
  public:
    /** An unconnected transport; valid() is false. */
    Transport() = default;

    /** Pipe pair: distinct read and write descriptors, both owned. */
    Transport(int read_fd, int write_fd, std::string stream_name);

    /** Socket: one full-duplex descriptor, owned (closed once). */
    Transport(int socket_fd, std::string stream_name);

    virtual ~Transport();

    Transport(const Transport &) = delete;
    Transport &operator=(const Transport &) = delete;
    Transport(Transport &&other) noexcept;
    Transport &operator=(Transport &&other) noexcept;

    virtual bool valid() const { return rfd >= 0 || wfd >= 0; }

    /** Frame and send @p payload. @throws FramingError on I/O failure
     * (EPIPE / ECONNRESET when the peer died). */
    virtual void send(const std::vector<std::uint8_t> &payload);

    /** Blocking-receive one frame. @return false on clean EOF at a
     * frame boundary; @throws FramingError on a torn or oversized
     * frame, a checksum mismatch, or an I/O error; @throws AuthError
     * on a MAC or sequence failure when frame auth is armed. */
    virtual bool receive(std::vector<std::uint8_t> &payload);

    /**
     * Half-close the send direction while keeping receive open — the
     * shutdown signal both wires use (the peer sees clean EOF at its
     * next frame boundary). Closes the write fd for a pipe pair,
     * shutdown(SHUT_WR) for a socket.
     */
    virtual void closeSend();

    /** Close everything now (destructor behavior, on demand). */
    virtual void close();

    /** Descriptor the receive side reads, for poll(); -1 if closed. */
    virtual int receiveFd() const { return rfd; }

    /**
     * Tighten the per-frame payload ceiling (default
     * kMaxFramePayloadBytes). A received header advertising more is a
     * framing fault, not an allocation — mandatory hygiene on network
     * streams where a corrupt or hostile peer writes the length word.
     */
    virtual void setMaxFramePayload(std::uint32_t bytes)
    {
        maxPayload = bytes;
    }

    /**
     * Bound how long a frame may take to arrive once its first byte
     * has (0 = forever, the default). Waiting for a frame to start
     * still blocks indefinitely — an idle peer is healthy — but a
     * started frame that stalls is a FramingError, not a caller
     * frozen mid-read. Mandatory on fabric sockets, whose coordinator
     * side is a single-threaded event loop: a peer that withholds
     * payload bytes would otherwise freeze the very timer loop whose
     * deadlines are supposed to remove it.
     */
    virtual void setReceiveDeadlineMs(std::uint32_t ms)
    {
        recvDeadlineMs = ms;
    }

    /**
     * Arm the per-frame auth envelope with @p session_key. The two
     * sides of a connection MAC under direction-distinct labels so a
     * frame echoed back at its author never verifies; @p is_client
     * picks which direction this endpoint sends under. Sequence
     * counters start at zero on both sides when this is called, so
     * both endpoints must arm at the same point in their handshake.
     */
    virtual void enableFrameAuth(std::vector<std::uint8_t> session_key,
                                 bool is_client);

    /**
     * Serialize @p payload into a complete wire frame (auth envelope
     * applied and the send sequence number consumed when auth is
     * armed) without writing it. Building block for fault decorators
     * that need to mangle bytes-on-the-wire.
     */
    std::vector<std::uint8_t>
    buildFrame(const std::vector<std::uint8_t> &payload);

    /** Write pre-built frame bytes verbatim. @throws FramingError on
     * I/O failure. */
    void sendRaw(const std::uint8_t *data, std::size_t len);

  private:
    int rfd = -1;
    int wfd = -1;
    bool duplex = false; ///< rfd and wfd are the same socket
    std::string name = "transport";
    std::uint32_t maxPayload = kMaxFramePayloadBytes;
    std::uint32_t recvDeadlineMs = 0;

    bool authOn = false;
    bool authClient = false;
    std::vector<std::uint8_t> authKey;
    std::uint64_t sendSeq = 0;
    std::uint64_t recvSeq = 0;
};

} // namespace mtc

#endif // MTC_SUPPORT_TRANSPORT_H
