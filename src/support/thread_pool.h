/**
 * @file
 * Fixed-size worker pool for the parallel validation engine.
 *
 * Post-silicon campaigns are embarrassingly parallel across tests (the
 * paper runs one test thread per core), and inside one test both the
 * decode/observed-edge loop and the sharded collective checker fan out
 * over independent slices. All of that parallelism flows through this
 * one pool type so the engine has a single, TSan-clean place where
 * threads are created, fed, and joined.
 *
 * Design constraints (and why):
 *  - fixed worker count, resolved once: campaign results must be
 *    bit-identical at any thread count, so nothing may depend on how
 *    many workers happen to exist;
 *  - bounded task queue: a campaign can enqueue hundreds of thousands
 *    of units; the submitter blocks instead of buffering them all;
 *  - exception capture: a worker must never terminate the process —
 *    the first exception of a parallelFor is rethrown on the caller,
 *    matching what a serial loop would have done;
 *  - deterministic shutdown: the destructor drains and joins every
 *    worker, so sanitizer runs see a clean happens-before edge.
 */

#ifndef MTC_SUPPORT_THREAD_POOL_H
#define MTC_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mtc
{

/** Fixed-size worker pool with a bounded queue (see file comment). */
class ThreadPool
{
  public:
    /**
     * @param threads        Worker count; 0 resolves to the hardware
     *                       concurrency (at least 1).
     * @param queue_capacity Maximum queued (not yet running) tasks;
     *                       0 resolves to 4x the worker count. submit()
     *                       blocks while the queue is full.
     */
    explicit ThreadPool(unsigned threads = 0,
                        std::size_t queue_capacity = 0);

    /** Drains the queue and joins all workers (stop(true)). */
    ~ThreadPool();

    /**
     * Shut the pool down. `drain=true` is the destructor's behavior:
     * every queued task still runs before the workers join. `drain=
     * false` is the cancellation path a tripped circuit breaker or a
     * watchdog abort takes: queued-but-unstarted tasks are discarded
     * (their destructors run, which is how a pending parallelFor
     * chunk reports itself done-without-running), only in-flight
     * tasks finish, and the workers join. Idempotent; submit() after
     * stop() drops the task. A parallelFor in flight during
     * stop(false) returns once its running chunks finish — dropped
     * indices never execute and their slots keep their initial state;
     * captured exceptions are rethrown as usual.
     */
    void stop(bool drain = true);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    unsigned size() const { return static_cast<unsigned>(workers.size()); }

    /**
     * Enqueue one task; blocks while the queue is at capacity. The
     * task must not throw — use parallelFor for exception-carrying
     * work (a throwing submit() task terminates, as with std::thread).
     */
    void submit(std::function<void()> task);

    /**
     * Run body(0..count-1) across the workers and wait for all of
     * them. Indices are handed out through a shared counter, so any
     * assignment of index to worker is possible — the body must write
     * only to its own index's slot for deterministic results. If one
     * or more bodies throw, every remaining index still runs (slots
     * stay fully populated) and the first captured exception is
     * rethrown on the calling thread afterwards.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /** Map a user-facing thread knob to a worker count: 0 means "use
     * the hardware", anything else is taken literally. */
    static unsigned resolveThreads(unsigned requested);

  private:
    void workerLoop();

    std::mutex mtx;
    std::condition_variable taskReady;   ///< queue became non-empty
    std::condition_variable queueSpace;  ///< queue dropped below capacity
    std::deque<std::function<void()>> queue;
    std::size_t capacity;
    bool stopping = false;
    bool joined = false;
    std::vector<std::thread> workers;
};

} // namespace mtc

#endif // MTC_SUPPORT_THREAD_POOL_H
