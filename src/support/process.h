/**
 * @file
 * POSIX process plumbing for the execution sandbox.
 *
 * Everything here is harness-agnostic: pipe RAII, child exit
 * classification, per-child resource budgets, and the async-signal-
 * safe crash reporter a sandbox worker installs so a real SIGSEGV
 * still produces a one-line report (signal, unit, seed) on a pipe the
 * parent can read. The pool logic that uses these lives in
 * src/harness/sandbox.h.
 */

#ifndef MTC_SUPPORT_PROCESS_H
#define MTC_SUPPORT_PROCESS_H

#include <cstdint>
#include <string>

#include <sys/types.h>

#include "support/error.h"

namespace mtc
{

/** A failed process-layer syscall (fork, pipe, waitpid, setrlimit). */
class ProcessError : public Error
{
  public:
    explicit ProcessError(const std::string &what_arg) : Error(what_arg)
    {}
};

/** Worker exit sentinel: allocation failure under the memory budget
 * (std::bad_alloc escaped the unit). */
constexpr int kWorkerExitOom = 97;

/** Worker exit sentinel: unclassified internal error (a non-OOM
 * exception escaped the worker loop, or its stream tore). */
constexpr int kWorkerExitInternal = 98;

/** RAII pipe: both ends closed on destruction unless released. */
class Pipe
{
  public:
    /** @throws ProcessError if pipe(2) fails. */
    Pipe();
    ~Pipe();

    Pipe(const Pipe &) = delete;
    Pipe &operator=(const Pipe &) = delete;
    Pipe(Pipe &&other) noexcept;
    Pipe &operator=(Pipe &&other) noexcept;

    int readFd() const { return fds[0]; }
    int writeFd() const { return fds[1]; }

    void closeRead();
    void closeWrite();

    /** Detach and return an end; the caller owns the fd from then
     * on (it will not be closed by the destructor). */
    int releaseRead();
    int releaseWrite();

  private:
    int fds[2];
};

/** How a reaped child terminated. */
struct ChildExit
{
    bool signaled = false;
    int signal = 0;   ///< terminating signal when signaled
    int exitCode = 0; ///< exit status when not signaled
};

/**
 * read(2), retrying EINTR. Returns read's result: bytes read, 0 on
 * EOF, or -1 with errno set for any failure other than EINTR. Every
 * blocking read in the harness goes through this (or the framing
 * layer, which uses it): a signal delivered mid-I/O — a watchdog
 * alarm, a profiler tick, a shell-forwarded SIGWINCH — must never be
 * misread as an I/O failure.
 */
ssize_t readEintr(int fd, void *buf, std::size_t len);

/** write(2), retrying EINTR; see readEintr(). May still return a
 * short count — callers loop for full writes. */
ssize_t writeEintr(int fd, const void *buf, std::size_t len);

/**
 * Register @p fd as parent-only: every worker child forked after this
 * closes its inherited copy first thing (closeParentOnlyFds()). For
 * descriptors whose kernel-side state must die with the parent — the
 * campaign journal's advisory flock lives on the open-file
 * description, so a forked worker's inherited copy keeps the journal
 * "locked by another campaign" for as long as the worker lives, even
 * after the parent was SIGKILLed and a resume is trying to take over.
 * Bounded registry; @throws ProcessError when full.
 */
void registerParentOnlyFd(int fd);

/** Remove @p fd from the parent-only registry (call before closing
 * it); unknown fds are ignored. */
void unregisterParentOnlyFd(int fd);

/** Close every registered parent-only fd in the calling process.
 * Called by worker children immediately after fork; uses only close()
 * on a lock-free table, so it is safe in the post-fork child of a
 * multithreaded parent. */
void closeParentOnlyFds();

/** Blocking waitpid for @p pid. @throws ProcessError on failure. */
ChildExit waitChild(pid_t pid);

/** Non-blocking reap; @return false if @p pid has not exited yet. */
bool tryWaitChild(pid_t pid, ChildExit &out);

/**
 * Apply the sandbox resource budgets to the calling process (a worker
 * child, post-fork). @p mem_mb caps RLIMIT_AS so a runaway allocation
 * fails with std::bad_alloc instead of an OOM kill; under a sanitizer
 * build (MTC_SANITIZE) the address-space cap is skipped, because ASan
 * reserves terabytes of shadow mappings that an AS limit would break.
 * @p cpu_s caps RLIMIT_CPU (soft = N, hard = N + 2) so a spinning
 * child dies with SIGXCPU the parent can classify. Zero disables the
 * respective budget.
 */
void applySandboxLimits(std::uint64_t mem_mb, std::uint64_t cpu_s);

/** True when the binary was built with MTC_SANITIZE (the address-
 * space budget is then a warn-and-ignore no-op). */
bool sandboxMemLimitSupported();

/**
 * Install fatal-signal handlers (SIGSEGV, SIGABRT, SIGBUS, SIGFPE,
 * SIGILL) that write a one-line crash report to @p report_fd using
 * only async-signal-safe calls, then re-raise with the default
 * disposition so the parent still observes the real signal.
 */
void installCrashReporter(int report_fd);

/** Label the unit the calling worker is about to run; the crash
 * reporter includes it (with @p seed) in the report line. Copies into
 * static storage — async-signal-safe to read at crash time. */
void setCrashContext(const std::string &unit, std::uint64_t seed);

/** Clear the crash context (unit finished cleanly). */
void clearCrashContext();

/**
 * Allocation-bomb drill: retain and touch heap chunks until operator
 * new fails. Self-capped (512 MB) so that even without an RLIMIT_AS
 * budget — e.g. under ASan — it terminates by throwing.
 *
 * @throws std::bad_alloc always (either from new or the cap).
 */
void allocationBomb();

} // namespace mtc

#endif // MTC_SUPPORT_PROCESS_H
